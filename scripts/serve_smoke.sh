#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the ccrd daemon and ccrctl client:
# start a daemon on a private unix socket, exercise the request surface
# (ping, simulate, streaming batch, verify), run a short loadgen pass with
# the BENCH_serve.json gates, then SIGTERM-drain and require a clean exit
# and a flushed manifest.
#
# Usage:
#   scripts/serve_smoke.sh [outdir]
#
# Environment:
#   SCALE     workload scale (default tiny; CI uses tiny, the committed
#             BENCH_serve.json record is captured at small)
#   CLIENTS   loadgen concurrent clients (default 8)
#   REQUESTS  loadgen hammer-phase requests (default 200)
#   MINWARM   required cold/warm median latency ratio (default 5)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-serve-smoke}"
SCALE="${SCALE:-tiny}"
CLIENTS="${CLIENTS:-8}"
REQUESTS="${REQUESTS:-200}"
MINWARM="${MINWARM:-5}"

mkdir -p "$OUT"
SOCK="$OUT/ccrd.sock"
ADDR="unix:$SOCK"

go build -o "$OUT/ccrd" ./cmd/ccrd
go build -o "$OUT/ccrctl" ./cmd/ccrctl

"$OUT/ccrd" -addr "$ADDR" -manifest "$OUT/manifest.json" &
CCRD_PID=$!
trap 'kill -9 "$CCRD_PID" 2>/dev/null || true' EXIT

# Wait for the socket to accept: the client retries the connect itself.
"$OUT/ccrctl" ping -addr "$ADDR" -connect-timeout 10s

# One cell, then the same cell again — the daemon must answer both.
"$OUT/ccrctl" simulate -addr "$ADDR" -bench compress -scale "$SCALE" -digest \
  > "$OUT/simulate.json"
"$OUT/ccrctl" simulate -addr "$ADDR" -bench compress -scale "$SCALE" -digest \
  > "$OUT/simulate-warm.json"

# Streaming batch across several benchmarks.
cat > "$OUT/cells.json" <<EOF
[
  {"bench": "compress", "scale": "$SCALE"},
  {"bench": "compress", "scale": "$SCALE", "base": true},
  {"bench": "lex", "scale": "$SCALE"},
  {"bench": "m88ksim", "scale": "$SCALE", "dataset": "ref"},
  {"bench": "vortex", "scale": "$SCALE", "crb": {"entries": 32, "instances": 4}}
]
EOF
"$OUT/ccrctl" batch -addr "$ADDR" -cells "$OUT/cells.json" \
  -stream -heartbeat 20 > "$OUT/batch.json"

# The transparency sweep through the daemon (exit 1 on any failing point).
"$OUT/ccrctl" verify -addr "$ADDR" -scale "$SCALE" > "$OUT/verify.json"

# Load test with the BENCH_serve gates (warm speedup, zero errors, cache
# hit rate); the record is the uploadable artifact.
"$OUT/ccrctl" bench -addr "$ADDR" -scale "$SCALE" \
  -clients "$CLIENTS" -requests "$REQUESTS" \
  -check -minwarm "$MINWARM" -out "$OUT/BENCH_serve.json" \
  -commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
  -note "serve_smoke.sh ($SCALE scale)"

# Graceful drain: SIGTERM, then the process must exit 0 by itself and
# leave a flushed manifest behind.
kill -TERM "$CCRD_PID"
DRAIN_STATUS=0
wait "$CCRD_PID" || DRAIN_STATUS=$?
if [[ "$DRAIN_STATUS" -ne 0 ]]; then
  echo "serve_smoke: ccrd exited $DRAIN_STATUS after SIGTERM" >&2
  exit 1
fi
trap - EXIT

python3 - "$OUT" <<'PY'
import json, sys, os
out = sys.argv[1]
cold = json.load(open(os.path.join(out, "simulate.json")))
warm = json.load(open(os.path.join(out, "simulate-warm.json")))
assert cold["result"] == warm["result"], "warm result diverged from cold"
assert cold["digest"] == warm["digest"], "warm digest diverged from cold"
batch = json.load(open(os.path.join(out, "batch.json")))
assert batch["failed"] == 0 and len(batch["results"]) == 5
verify = json.load(open(os.path.join(out, "verify.json")))
assert verify["checked"] > 0 and not verify.get("rows")
bench = json.load(open(os.path.join(out, "BENCH_serve.json")))
assert bench["report"]["errors"] == 0
manifest = json.load(open(os.path.join(out, "manifest.json")))
assert manifest["version"]["module"] == "ccr"
assert manifest["caches"], "drained manifest has no cache stats"
print("serve smoke OK: %d verify points, warm speedup %.1fx" %
      (verify["checked"], bench["report"]["warm_speedup"]))
PY
