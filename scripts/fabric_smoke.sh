#!/usr/bin/env bash
# fabric_smoke.sh — end-to-end crash drill of the resumable sweep fabric:
# run a serial reference sweep, then the same sweep with workers and a
# persistent artifact store SIGKILLed mid-flight (-fabric-die-after),
# resume it, and require digests.json byte-identical to the reference.
# A third run over the warm store in a fresh state dir must be mostly
# store hits and faster than the cold run.
#
# Usage:
#   scripts/fabric_smoke.sh [outdir]
#
# Environment:
#   SCALE      workload scale (default tiny)
#   BENCHES    comma-separated benchmark subset (default compress,lex)
#   WORKERS    local worker subprocesses for the sharded runs (default 2)
#   DIE_AFTER  journaled cells before the crash drill SIGKILLs (default 8)
#   MINHITS    required store hit rate on the warm run (default 0.9)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-fabric-smoke}"
SCALE="${SCALE:-tiny}"
BENCHES="${BENCHES:-compress,lex}"
WORKERS="${WORKERS:-2}"
DIE_AFTER="${DIE_AFTER:-8}"
MINHITS="${MINHITS:-0.9}"

rm -rf "$OUT"
mkdir -p "$OUT"

go build -o "$OUT/ccrpaper" ./cmd/ccrpaper

run() { # run <state-dir> <extra flags...>
  local dir="$1"; shift
  "$OUT/ccrpaper" -scale "$SCALE" -fabric "$dir" -fabric-benches "$BENCHES" "$@"
}

# 1. Serial inline reference: no workers, no store. This digests.json is
#    the byte-identity target every other mode must hit.
echo "fabric_smoke: serial reference sweep"
run "$OUT/serial"

# 2. Crash drill: workers + store, SIGKILL self after DIE_AFTER journaled
#    cells. The process must die by signal (exit 137), not exit cleanly.
echo "fabric_smoke: cold sharded sweep, SIGKILL after $DIE_AFTER cells"
KILL_STATUS=0
run "$OUT/sweep" -fabric-workers "$WORKERS" -store "$OUT/store" \
  -fabric-die-after "$DIE_AFTER" || KILL_STATUS=$?
if [[ "$KILL_STATUS" -ne 137 ]]; then
  echo "fabric_smoke: crash drill exited $KILL_STATUS, want 137 (SIGKILL)" >&2
  exit 1
fi
if [[ -f "$OUT/sweep/digests.json" ]]; then
  echo "fabric_smoke: killed sweep left a digests.json — died too late" >&2
  exit 1
fi

# 3. Resume over the same journal and store: completed cells are skipped,
#    the rest computed, and the digests must byte-match the reference.
echo "fabric_smoke: resuming killed sweep"
run "$OUT/sweep" -fabric-workers "$WORKERS" -store "$OUT/store"
cmp "$OUT/serial/digests.json" "$OUT/sweep/digests.json" || {
  echo "fabric_smoke: resumed digests diverged from serial reference" >&2
  exit 1
}

# 4. Warm rerun: fresh state dir, same store. Everything should be a store
#    hit, and the wall time must beat the (killed) cold run's full sweep.
echo "fabric_smoke: warm rerun over the populated store"
run "$OUT/warm" -fabric-workers "$WORKERS" -store "$OUT/store"
cmp "$OUT/serial/digests.json" "$OUT/warm/digests.json" || {
  echo "fabric_smoke: warm digests diverged from serial reference" >&2
  exit 1
}

python3 - "$OUT" "$MINHITS" <<'PY'
import json, sys, os
out, minhits = sys.argv[1], float(sys.argv[2])
resumed = json.load(open(os.path.join(out, "sweep", "manifest.json")))
warm = json.load(open(os.path.join(out, "warm", "manifest.json")))
serial = json.load(open(os.path.join(out, "serial", "manifest.json")))

# The resume skipped the journaled cells and computed only the remainder.
assert resumed["resumed"] > 0, "resume skipped nothing — journal not used"
assert resumed["resumed"] + resumed["computed"] == resumed["cells"], resumed
assert not resumed.get("failed"), resumed["failed"]

# The warm run recomputed every cell but fed them from the store.
st = warm["store"]
rate = warm.get("store_hit_rate", 0.0)
assert st["puts"] == 0, "warm run wrote %d store entries" % st["puts"]
assert rate >= minhits, "warm store hit rate %.2f < %.2f" % (rate, minhits)
assert warm["wall_seconds"] < serial["wall_seconds"], \
    "warm run (%.2fs) not faster than cold serial (%.2fs)" % (
        warm["wall_seconds"], serial["wall_seconds"])

print("fabric smoke OK: %d cells, resume skipped %d, warm hit rate %.2f, "
      "%.2fs warm vs %.2fs cold" % (
          serial["cells"], resumed["resumed"], rate,
          warm["wall_seconds"], serial["wall_seconds"]))
PY
