#!/usr/bin/env bash
# obs_smoke.sh — end-to-end smoke of the observability plane (DESIGN.md
# §14): start ccrd with the -http sidecar on an ephemeral port, scrape
# /metrics before and after a streamed batch and require the request /
# reuse counters to have advanced, fetch a pprof profile, check /healthz
# flips on drain, then run a span-recording fabric sweep and require
# `ccrviz timeline` to merge its logs into valid Chrome trace JSON with
# exactly-once commit coverage.
#
# Usage:
#   scripts/obs_smoke.sh [outdir]
#
# Environment:
#   SCALE    workload scale (default tiny)
#   BENCHES  fabric benchmark subset (default compress,lex)
#   WORKERS  fabric worker subprocesses (default 2)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-obs-smoke}"
SCALE="${SCALE:-tiny}"
BENCHES="${BENCHES:-compress,lex}"
WORKERS="${WORKERS:-2}"

rm -rf "$OUT"
mkdir -p "$OUT"
SOCK="$OUT/ccrd.sock"
ADDR="unix:$SOCK"

go build -o "$OUT/ccrd" ./cmd/ccrd
go build -o "$OUT/ccrctl" ./cmd/ccrctl
go build -o "$OUT/ccrpaper" ./cmd/ccrpaper
go build -o "$OUT/ccrviz" ./cmd/ccrviz

# --- 1. Daemon with the metrics/pprof sidecar on an ephemeral port. ---
"$OUT/ccrd" -addr "$ADDR" -http 127.0.0.1:0 -spans "$OUT/ccrd-spans" \
  2> "$OUT/ccrd.log" &
CCRD_PID=$!
trap 'kill -9 "$CCRD_PID" 2>/dev/null || true' EXIT

"$OUT/ccrctl" ping -addr "$ADDR" -connect-timeout 10s

# The daemon logs its bound sidecar address; grep it out of the log.
HTTP=""
for _ in $(seq 50); do
  HTTP="$(sed -n 's/.*observability sidecar.*http=\([0-9.:]*\).*/\1/p' "$OUT/ccrd.log" | head -1)"
  [[ -n "$HTTP" ]] && break
  sleep 0.1
done
if [[ -z "$HTTP" ]]; then
  echo "obs_smoke: no sidecar address in ccrd.log" >&2
  cat "$OUT/ccrd.log" >&2
  exit 1
fi
echo "obs_smoke: sidecar at $HTTP"

curl -sf "http://$HTTP/healthz" > /dev/null
curl -sf "http://$HTTP/metrics" > "$OUT/metrics-before.txt"

# --- 2. Streamed batch; counters must advance. ---
cat > "$OUT/cells.json" <<EOF
[
  {"bench": "compress", "scale": "$SCALE"},
  {"bench": "compress", "scale": "$SCALE", "base": true},
  {"bench": "lex", "scale": "$SCALE", "scheme": "dtm"},
  {"bench": "lex", "scale": "$SCALE"}
]
EOF
"$OUT/ccrctl" batch -addr "$ADDR" -cells "$OUT/cells.json" \
  -stream -heartbeat 20 > "$OUT/batch.json"
"$OUT/ccrctl" status -addr "$ADDR" -json > "$OUT/status.json"

curl -sf "http://$HTTP/metrics" > "$OUT/metrics-after.txt"

# --- 3. pprof must serve a parseable CPU profile. ---
curl -sf "http://$HTTP/debug/pprof/profile?seconds=1" > "$OUT/cpu.pprof"
go tool pprof -top "$OUT/cpu.pprof" > /dev/null
curl -sf "http://$HTTP/debug/pprof/goroutine" > "$OUT/goroutine.pprof"

# --- 4. Drain: /healthz must stop reporting ready; exit must be clean. ---
kill -TERM "$CCRD_PID"
DRAIN_STATUS=0
wait "$CCRD_PID" || DRAIN_STATUS=$?
if [[ "$DRAIN_STATUS" -ne 0 ]]; then
  echo "obs_smoke: ccrd exited $DRAIN_STATUS after SIGTERM" >&2
  exit 1
fi
trap - EXIT

# --- 5. Span-recording fabric sweep -> merged timeline. ---
"$OUT/ccrpaper" -scale "$SCALE" -fabric "$OUT/sweep" \
  -fabric-benches "$BENCHES" -fabric-workers "$WORKERS" -fabric-spans
"$OUT/ccrviz" timeline -dir "$OUT/sweep/spans" \
  -journal "$OUT/sweep/journal.jsonl" -o "$OUT/timeline.json"

python3 - "$OUT" <<'PY'
import json, re, sys, os
out = sys.argv[1]

def counters(path):
    vals = {}
    for line in open(path):
        if line.startswith("#") or not line.strip():
            continue
        name, val = line.rsplit(None, 1)
        vals[name] = float(val)
    return vals

before = counters(os.path.join(out, "metrics-before.txt"))
after = counters(os.path.join(out, "metrics-after.txt"))

# Exposition sanity: the families the plane promises are present.
for want in ("ccrd_uptime_seconds", "go_goroutines", "ccrd_draining"):
    assert want in after, "missing metric %s" % want

# The streamed batch advanced the op counters...
batch = after.get('ccrd_requests_total{op="batch"}', 0)
assert batch >= before.get('ccrd_requests_total{op="batch"}', 0) + 1, \
    "batch counter did not advance: %s" % batch
lat = after.get('ccrd_request_seconds_count{op="batch"}', 0)
assert lat >= 1, "no batch latency observations"

# ...and the per-scheme reuse totals (4 cells: base, ccr x2, dtm).
def total(vals, name):
    return sum(v for k, v in vals.items() if k.startswith(name))
assert total(after, "ccrd_reuse_cells_total") - \
    total(before, "ccrd_reuse_cells_total") >= 4, "reuse cells did not advance"
assert total(after, "ccrd_suite_cache_misses_total") > 0, "no suite cache traffic"
assert 'ccrd_reuse_cells_total{scheme="dtm"}' in after, "dtm scheme not tracked"

# ccrctl status saw the same daemon state over the wire protocol.
status = json.load(open(os.path.join(out, "status.json")))
assert status["requests"].get("batch", 0) >= 1, status["requests"]
assert status["reuse"], "status has no reuse totals"

# The daemon's own span log recorded the serves.
spans = []
for name in os.listdir(os.path.join(out, "ccrd-spans")):
    for line in open(os.path.join(out, "ccrd-spans", name)):
        if line.strip():
            spans.append(json.loads(line))
assert any(s["cell"] == "batch" for s in spans), "no batch span in ccrd log"

# The merged fabric timeline is valid Chrome trace JSON with exactly-once
# commit coverage (ccrviz already validated; re-check independently).
tl = json.load(open(os.path.join(out, "timeline.json")))
assert tl["traceEvents"], "empty timeline"
commits = [e for e in tl["traceEvents"]
           if e.get("name") == "commit" and e.get("ph") == "X"]
cells = set(e["args"]["cell"] for e in commits)
assert len(commits) == len(cells) == tl["otherData"]["journal_cells"], \
    (len(commits), len(cells), tl["otherData"])
procs = tl["otherData"]["procs"]
assert procs >= 2, "timeline merged %d procs, want coord + workers" % procs

print("obs smoke OK: batch=%d reuse_cells+=%d, %d commits, %d procs"
      % (batch, total(after, "ccrd_reuse_cells_total") -
         total(before, "ccrd_reuse_cells_total"), len(commits), procs))
PY
