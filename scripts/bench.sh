#!/usr/bin/env bash
# bench.sh — run the emulator benchmark suite and gate or record the
# results against BENCH_emu.json (see cmd/ccrbench and EXPERIMENTS.md).
#
# Usage:
#   scripts/bench.sh [check|update-current|update-baseline]
#
#   check            run the suite and gate against the committed record
#                    (regression gate vs "current", speedup + zero-alloc
#                    gate vs "baseline"); the default, used by CI
#   update-current   run the suite and rewrite the "current" section
#   update-baseline  run the suite and rewrite the "baseline" section
#                    (only meaningful on the pre-optimization engine, e.g.
#                    CCR_ENGINE=interp scripts/bench.sh update-baseline)
#
# Environment:
#   COUNT   repetitions per benchmark (default 6)
#   BENCH   benchmark regex (default: the fast emulator/CRB suite; the
#           Figure* end-to-end benchmarks take ~1s/op — opt in with
#           BENCH='Figure8a' etc.)
#   GATE    max ns/op regression vs "current", percent (default 25)
#   MINSPEEDUP  required MachineRun speedup vs "baseline" (default 1.5)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-check}"
COUNT="${COUNT:-6}"
BENCH="${BENCH:-MachineRun$|MachineRunFused$|MachineRunCCR$|MachineRunDTM$|Emulator$|CRBLookup$|DTMLookup$|TelemetrySink$}"
GATE="${GATE:-25}"
MINSPEEDUP="${MINSPEEDUP:-1.5}"

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" . | tee "$OUT"

# benchstat (if installed) gives the statistically honest per-benchmark
# delta against the committed raw baseline capture; the ccrbench gate
# below never depends on it.
if command -v benchstat >/dev/null 2>&1 && [[ -f bench/baseline_emu.txt ]]; then
  benchstat bench/baseline_emu.txt "$OUT" || true
fi

case "$MODE" in
check)
  go run ./cmd/ccrbench -bench "$OUT" -check -gate "$GATE" -minspeedup "$MINSPEEDUP"
  ;;
update-current)
  # ccrbench stamps HEAD itself (and refuses to write an unstamped record).
  go run ./cmd/ccrbench -bench "$OUT" -update current \
    -note "${NOTE:-predecoded engine}"
  ;;
update-baseline)
  go run ./cmd/ccrbench -bench "$OUT" -update baseline \
    -note "${NOTE:-pre-predecode interpreter}"
  ;;
*)
  echo "bench.sh: unknown mode $MODE (want check|update-current|update-baseline)" >&2
  exit 2
  ;;
esac
