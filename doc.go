// Package ccr is the root of a from-scratch Go reproduction of
// "Compiler-Directed Dynamic Computation Reuse: Rationale and Initial
// Results" (Connors & Hwu, MICRO-32, 1999).
//
// The library lives under internal/: the IR and compiler analyses, the
// Reuse Profiling System, region formation, the CCR transformation, the
// Computation Reuse Buffer model, the cycle-level 6-issue timing model,
// the 13-benchmark synthetic workload suite, and the experiment drivers
// that regenerate every figure of the paper's evaluation. See README.md
// for the tour and DESIGN.md for the system inventory.
package ccr
