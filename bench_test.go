package ccr

// The benchmarks below regenerate each table and figure of the paper's
// evaluation (§5) through the experiment drivers, at Tiny workload scale so
// a full -bench=. run stays fast. The publication-scale numbers recorded in
// EXPERIMENTS.md come from `go run ./cmd/ccrpaper -scale medium`.

import (
	"fmt"
	"runtime"
	"testing"

	"ccr/internal/core"
	"ccr/internal/crb"
	"ccr/internal/emu"
	"ccr/internal/experiments"
	"ccr/internal/ir"
	"ccr/internal/reuse"
	"ccr/internal/telemetry"
	"ccr/internal/uarch"
	"ccr/internal/workloads"
)

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = workloads.Tiny
	return cfg
}

// BenchmarkFigure4 regenerates the block- vs region-level reuse-potential
// limit study (paper Figure 4).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := experiments.Figure4(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8a regenerates the computation-instance sweep
// (paper Figure 8(a): 128 entries × {4, 8, 16} CIs).
func BenchmarkFigure8a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := experiments.Figure8a(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8b regenerates the computation-entry sweep
// (paper Figure 8(b): {32, 64, 128} entries × 8 CIs).
func BenchmarkFigure8b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := experiments.Figure8b(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9 regenerates the static and dynamic computation-group
// distributions (paper Figures 9(a) and 9(b)).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := experiments.Figure9(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10 regenerates the TOP-N% reuse-concentration study
// (paper Figure 10).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := experiments.Figure10(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11 regenerates the training- vs reference-input study
// (paper Figure 11).
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := experiments.Figure11(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalars regenerates the §5.2 headline numbers (average speedup,
// repetition eliminated, static-region statistics).
func BenchmarkScalars(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := experiments.Scalars(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAssoc and BenchmarkAblationNoMem regenerate the §6
// design-variation studies (DESIGN.md extensions).
func BenchmarkAblationAssoc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := experiments.AblationAssoc(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNoMem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := experiments.AblationNoMem(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteParallel compares the serial and parallel execution paths
// of the internal/runner engine on the Figure 8(a) sweep, so the speedup
// from fanning the (benchmark × configuration) cells across workers is
// tracked in the bench trajectory. On a single-core machine the two
// sub-benchmarks should be within noise of each other (the parallel path
// adds only goroutine scheduling); with more cores jobs=GOMAXPROCS wins.
func BenchmarkSuiteParallel(b *testing.B) {
	for _, jobs := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Jobs = jobs
				s := experiments.NewSuite(cfg)
				if _, err := experiments.Figure8a(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Component micro-benchmarks: the substrate costs behind the figures.
// ---------------------------------------------------------------------

// BenchmarkMachineRun measures the steady-state cost of the emulator hot
// loop alone: one Machine is built up front and Reset+Run between
// iterations, so per-iteration cost is pure instruction interpretation —
// no construction, no tracer, no CRB. This is the microbenchmark the
// BENCH_emu.json regression gate tracks (scripts/bench.sh); with no tracer
// it must report 0 allocs/op.
func BenchmarkMachineRun(b *testing.B) {
	w := workloads.Load("m88ksim", workloads.Tiny)
	m := emu.New(w.Prog)
	if _, err := m.Run(w.Train...); err != nil {
		b.Fatal(err)
	}
	dyn := m.Stats.DynInstrs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if _, err := m.Run(w.Train...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(dyn), "instrs/run")
}

// BenchmarkMachineRunFused is BenchmarkMachineRun with the specialization
// tier disabled (NoSpec): the generic batch tier with superinstruction
// fusion only. The gap between this and MachineRun is what hot-region
// specialization buys; the gap to the PR 5 record is what pair fusion
// buys. Gated for 0 allocs/op like MachineRun.
func BenchmarkMachineRunFused(b *testing.B) {
	w := workloads.Load("m88ksim", workloads.Tiny)
	m := emu.New(w.Prog)
	m.NoSpec = true
	if _, err := m.Run(w.Train...); err != nil {
		b.Fatal(err)
	}
	dyn := m.Stats.DynInstrs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if _, err := m.Run(w.Train...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(dyn), "instrs/run")
}

// BenchmarkMachineRunCCR is BenchmarkMachineRun on the transformed program
// with a warm default-geometry CRB attached: the steady-state cost of the
// reuse-enabled hot loop (lookup fast path included, recording mostly
// warmed out).
func BenchmarkMachineRunCCR(b *testing.B) {
	w := workloads.Load("m88ksim", workloads.Tiny)
	opts := core.DefaultOptions()
	cr, err := core.Compile(w.Prog, w.Train, opts)
	if err != nil {
		b.Fatal(err)
	}
	m := emu.New(cr.Prog)
	m.CRB = crb.New(opts.CRB, cr.Prog)
	if _, err := m.Run(w.Train...); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if _, err := m.Run(w.Train...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmulator measures raw functional-emulation throughput
// (instructions per op reported as one m88ksim training run per iteration).
func BenchmarkEmulator(b *testing.B) {
	w := workloads.Load("m88ksim", workloads.Tiny)
	b.ReportAllocs()
	b.ResetTimer()
	var dyn int64
	for i := 0; i < b.N; i++ {
		m := emu.New(w.Prog)
		if _, err := m.Run(w.Train...); err != nil {
			b.Fatal(err)
		}
		dyn = m.Stats.DynInstrs
	}
	b.ReportMetric(float64(dyn), "instrs/run")
}

// BenchmarkTimingSimulation measures the cycle-level model's overhead on
// top of functional emulation.
func BenchmarkTimingSimulation(b *testing.B) {
	w := workloads.Load("m88ksim", workloads.Tiny)
	cfg := uarch.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := emu.New(w.Prog)
		sim := uarch.NewSimulator(cfg, w.Prog)
		m.Trace = sim.Tracer()
		if _, err := m.Run(w.Train...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompilePipeline measures the whole compiler support: alias
// analysis, profiling run, region formation and transformation.
func BenchmarkCompilePipeline(b *testing.B) {
	opts := core.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := workloads.Load("m88ksim", workloads.Tiny)
		if _, err := core.Compile(w.Prog, w.Train, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCRBLookup measures the hardware model's lookup path.
func BenchmarkCRBLookup(b *testing.B) {
	c := crb.New(crb.Config{Entries: 128, Instances: 8}, nil)
	regs := make([]int64, 16)
	for r := ir.RegionID(0); r < 64; r++ {
		c.Commit(r, crb.Instance{
			Inputs:  []crb.RegVal{{Reg: 1, Val: int64(r)}, {Reg: 2, Val: 7}},
			Outputs: []crb.RegVal{{Reg: 3, Val: int64(r) * 3}},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regs[1] = int64(i % 64)
		regs[2] = 7
		c.Lookup(ir.RegionID(i%64), regs)
	}
}

// BenchmarkMachineRunDTM is BenchmarkMachineRun on the *base* program with
// a warm default-geometry trace-memoization buffer attached: the
// steady-state cost of the batch tier with the DTM reuse scheme enabled.
// Like the bare run it must report 0 allocs/op — the DTM's lookup,
// recording and invalidation paths all work out of preallocated entry
// storage (scripts/bench.sh gates this).
func BenchmarkMachineRunDTM(b *testing.B) {
	w := workloads.Load("m88ksim", workloads.Tiny)
	m := emu.New(w.Prog)
	m.DTM = reuse.NewDTM(reuse.DefaultDTMConfig(), w.Prog)
	if _, err := m.Run(w.Train...); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if _, err := m.Run(w.Train...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDTMLookup measures the trace buffer's lookup hit path alone: a
// small program with one hot DTM-eligible run is executed once to warm the
// buffer, then the hot head is probed directly with a recorded input
// context.
func BenchmarkDTMLookup(b *testing.B) {
	pb := ir.NewProgramBuilder("dtm-lookup-bench")
	out := pb.Object("out", 1, []int64{0})
	f := pb.Func("main", 1)
	b0, b1, b2, b3, b4, b5 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	k, acc, sel, x, ptr := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	b0.MovI(k, 0)
	b0.MovI(acc, 0)
	b1.Bge(k, f.Param(0), b5.ID())
	b2.AndI(sel, k, 3)
	b2.Jmp(b3.ID())
	b3.MulI(x, sel, 3)
	b3.AddI(x, x, 7)
	b3.Add(x, x, sel)
	b3.Jmp(b4.ID())
	b4.Add(acc, acc, x)
	b4.Lea(ptr, out, 0)
	b4.St(ptr, 0, acc, out)
	b4.AddI(k, k, 1)
	b4.Jmp(b1.ID())
	b5.Ret(acc)
	p := pb.Build()
	p.Link()
	ir.MustVerify(p)

	d := reuse.NewDTM(reuse.DefaultDTMConfig(), p)
	m := emu.New(p)
	m.DTM = d
	if _, err := m.Run(64); err != nil {
		b.Fatal(err)
	}
	heads := d.HeadStats()
	if len(heads) == 0 || heads[0].Hits == 0 {
		b.Fatal("no warm trace head to probe")
	}
	hot := heads[0]
	regs := make([]int64, 32)
	regs[sel] = 1
	if _, ok := d.Lookup(hot.Fn, hot.PC, regs); !ok {
		b.Fatal("warm lookup missed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regs[sel] = int64(i & 3)
		d.Lookup(hot.Fn, hot.PC, regs)
	}
}

// BenchmarkTelemetrySink measures the cost of the observability seam on a
// full m88ksim CCR simulation under three sink configurations: nil (the
// default fast path, which must stay free — DESIGN.md §9), NopSink (the
// interface-call cost of the seam alone) and the real Metrics collector.
// nil vs nop isolates what merely *having* the instrumentation costs when
// disabled; it should be within noise.
func BenchmarkTelemetrySink(b *testing.B) {
	w := workloads.Load("m88ksim", workloads.Tiny)
	opts := core.DefaultOptions()
	cr, err := core.Compile(w.Prog, w.Train, opts)
	if err != nil {
		b.Fatal(err)
	}
	sinks := []struct {
		name string
		make func() telemetry.Sink
	}{
		{"nil", func() telemetry.Sink { return nil }},
		{"nop", func() telemetry.Sink { return telemetry.NopSink{} }},
		{"metrics", func() telemetry.Sink { return telemetry.NewMetrics() }},
	}
	for _, s := range sinks {
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := emu.New(cr.Prog)
				buf := crb.New(opts.CRB, cr.Prog)
				buf.SetSink(s.make())
				m.CRB = buf
				if _, err := m.Run(w.Train...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFuncLevel regenerates the §6 function-level extension
// study.
func BenchmarkAblationFuncLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := experiments.AblationFuncLevel(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComparison regenerates the §2.1 related-work positioning table
// (instruction reuse vs block reuse vs CCR).
func BenchmarkComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if _, err := experiments.Comparison(s); err != nil {
			b.Fatal(err)
		}
	}
}
