// Breakpoints reproduces the paper's Figure 3: the 124.m88ksim ckbrkpts
// function — a loop scanning a breakpoint table — is reusable as a whole
// region because the table only changes when one of a few update functions
// runs, and because the common executed path (no breakpoints armed) never
// reads the varying address operand. The example shows both effects: near-
// total reuse between updates, and the invalidation triggered by the
// compiler-placed computation-invalidate instruction after each update.
//
//	go run ./examples/breakpoints
package main

import (
	"fmt"
	"log"

	"ccr/internal/core"
	"ccr/internal/ir"
)

// buildBreakpoints models the ckbrkpts pattern: main simulates
// instructions, checking the table before each one; every `updateEvery`
// instructions a breakpoint is toggled (the paper's settmpbrk/rsttmpbrk).
func buildBreakpoints(updateEvery int64) *ir.Program {
	pb := ir.NewProgramBuilder("breakpoints")
	// 16 entries of [code, adr]: code 0 means unarmed.
	brktable := pb.Object("brktable", 32, nil)

	// ckbrkpts(addr): Figure 3(a), restructured without the break by
	// branching to a found block outside the loop.
	ck := pb.Func("ckbrkpts", 1)
	addr := ck.Param(0)
	entry := ck.NewBlock()
	head := ck.NewBlock()
	body := ck.NewBlock()
	cmp := ck.NewBlock()
	latch := ck.NewBlock()
	found := ck.NewBlock()
	exit := ck.NewBlock()
	hit, i, base, p, code, a := ck.NewReg(), ck.NewReg(), ck.NewReg(), ck.NewReg(), ck.NewReg(), ck.NewReg()
	entry.MovI(hit, 0)
	entry.MovI(i, 0)
	entry.Lea(base, brktable, 0)
	head.BgeI(i, 16, exit.ID())
	body.ShlI(p, i, 1)
	body.Add(p, base, p)
	body.Ld(code, p, 0, brktable)
	body.BeqI(code, 0, latch.ID()) // short-circuit: addr never read
	cmp.Ld(a, p, 1, brktable)
	cmp.AndI(a, a, ^int64(3))
	cmp.Beq(a, addr, found.ID())
	latch.AddI(i, i, 1)
	latch.Jmp(head.ID())
	found.MovI(hit, 1)
	found.Jmp(exit.ID())
	exit.Ret(hit)

	// main(n): per simulated instruction, check breakpoints at a varying
	// pc; toggle a temporary breakpoint every updateEvery instructions.
	f := pb.Func("main", 1)
	e := f.NewBlock()
	h := f.NewBlock()
	b := f.NewBlock()
	upd := f.NewBlock()
	la := f.NewBlock()
	x := f.NewBlock()
	k, total, pc, r, tmp, tb, z := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(total, 0)
	h.Bge(k, f.Param(0), x.ID())
	b.ShlI(pc, k, 2) // a different address every time
	b.Call(r, ck.ID(), pc)
	b.Add(total, total, r)
	b.RemI(tmp, k, updateEvery)
	b.BneI(tmp, 0, la.ID())
	// settmpbrk then rsttmpbrk: arm and immediately disarm entry 3.
	upd.Lea(tb, brktable, 6)
	upd.St(tb, 0, k, brktable)
	upd.MovI(z, 0)
	upd.St(tb, 0, z, brktable)
	la.AddI(k, k, 1)
	la.Jmp(h.ID())
	x.Ret(total)

	return ir.MustVerify(pb.Build())
}

func main() {
	fmt.Println("Figure 3 reproduction: the ckbrkpts region-level memory reuse")
	fmt.Printf("\n%-18s %12s %10s %10s %8s %8s\n",
		"update interval", "base cyc", "ccr cyc", "hits", "invals", "speedup")
	for _, every := range []int64{8192, 1024, 128, 16, 2} {
		prog := buildBreakpoints(every)
		opts := core.DefaultOptions()
		cr, err := core.Compile(prog, []int64{4096}, opts)
		if err != nil {
			log.Fatal(err)
		}
		base, err := core.Simulate(prog, nil, opts.Uarch, []int64{4096}, 0)
		if err != nil {
			log.Fatal(err)
		}
		ccr, err := core.Simulate(cr.Prog, &opts.CRB, opts.Uarch, []int64{4096}, 0)
		if err != nil {
			log.Fatal(err)
		}
		if ccr.Result != base.Result {
			log.Fatal("architectural mismatch")
		}
		fmt.Printf("%-18d %12d %10d %10d %8d %8.3f\n",
			every, base.Cycles, ccr.Cycles, ccr.Emu.ReuseHits,
			ccr.Emu.Invalidations, core.Speedup(base, ccr))
	}
	fmt.Println("\nThe scan reuses perfectly while brktable is untouched (the address")
	fmt.Println("argument is never read on the unarmed path, so it is not an input of")
	fmt.Println("the recorded instance); each update invalidates the recorded instance")
	fmt.Println("and forces one re-recording, so dense updates erode the speedup —")
	fmt.Println("the paper's equivalence-of-memory argument in action.")
}
