// Sumloop reproduces the paper's Figure 1: a loop summing an array can be
// reused across invocations when the array is unchanged between them —
// redundancy that neither classical compiler optimization (the equivalence
// is dynamic, not static) nor instruction-level reuse (the index variable
// changes every iteration, so no instruction repeats within an invocation)
// can capture. The example contrasts the reuse-potential limit study's
// block and region views on exactly this code, then shows the CCR speedup.
//
//	go run ./examples/sumloop
package main

import (
	"fmt"
	"log"

	"ccr/internal/core"
	"ccr/internal/ir"
	"ccr/internal/potential"
)

const max = 64 // the paper's MAX

func buildSumLoop() *ir.Program {
	pb := ir.NewProgramBuilder("sumloop")
	arr := pb.Object("A", max, func() []int64 {
		a := make([]int64, max)
		for i := range a {
			a[i] = int64(i*i%97 + 1)
		}
		return a
	}())

	// sum(): Figure 1's loop — sum = 0; for i < MAX { sum += A[i] }.
	g := pb.Func("sum", 0)
	ge := g.NewBlock()
	gh := g.NewBlock()
	gb := g.NewBlock()
	gl := g.NewBlock()
	gx := g.NewBlock()
	s, i, base, v := g.NewReg(), g.NewReg(), g.NewReg(), g.NewReg()
	ge.MovI(s, 0)
	ge.MovI(i, 0)
	ge.Lea(base, arr, 0)
	gh.BgeI(i, max, gx.ID())
	gb.Add(v, base, i)
	gb.Ld(v, v, 0, arr)
	gb.Add(s, s, v)
	gl.AddI(i, i, 1)
	gl.Jmp(gh.ID())
	gx.Ret(s)

	// main(n): invoke the loop at time τ, τ+δ, ... — A unchanged except
	// for a rare write, exactly the paper's scenario.
	f := pb.Func("main", 1)
	e := f.NewBlock()
	h := f.NewBlock()
	b := f.NewBlock()
	mu := f.NewBlock()
	la := f.NewBlock()
	x := f.NewBlock()
	k, total, r, tmp, p := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(total, 0)
	h.Bge(k, f.Param(0), x.ID())
	b.Call(r, g.ID())
	b.Add(total, total, r)
	b.RemI(tmp, k, 100)
	b.BneI(tmp, 0, la.ID())
	mu.Lea(p, arr, 7)
	mu.St(p, 0, k, arr)
	la.AddI(k, k, 1)
	la.Jmp(h.ID())
	x.Ret(total)

	return ir.MustVerify(pb.Build())
}

func main() {
	prog := buildSumLoop()
	args := []int64{2000}

	// First, the §2.3 limit study on the base program.
	lim, err := potential.Measure(prog, args, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 1 reproduction: the array-sum loop")
	fmt.Printf("\nreuse potential (8-record histories, base program):\n")
	fmt.Printf("  block-level  : %5.1f%% of dynamic execution\n", lim.BlockPct())
	fmt.Printf("  region-level : %5.1f%% — the whole-invocation recurrence\n", lim.RegionPct())
	fmt.Printf("  instr-level repetition: %5.1f%%\n", lim.InstrRepetitionPct())

	// Then the CCR pipeline.
	opts := core.DefaultOptions()
	cr, err := core.Compile(prog, args, opts)
	if err != nil {
		log.Fatal(err)
	}
	var cyc *ir.Region
	for _, rg := range cr.Prog.Regions {
		if rg.Kind == ir.Cyclic {
			cyc = rg
		}
	}
	if cyc == nil {
		log.Fatal("expected the sum loop to form a cyclic region")
	}
	fmt.Printf("\nformed cyclic region: class %s, %d static instructions,\n",
		cyc.Class, cyc.StaticSize)
	fmt.Printf("  inputs %v, outputs %v, registered objects %v\n",
		cyc.Inputs, cyc.Outputs, cyc.MemObjects)

	base, err := core.Simulate(prog, nil, opts.Uarch, args, 0)
	if err != nil {
		log.Fatal(err)
	}
	ccr, err := core.Simulate(cr.Prog, &opts.CRB, opts.Uarch, args, 0)
	if err != nil {
		log.Fatal(err)
	}
	if base.Result != ccr.Result {
		log.Fatal("architectural mismatch")
	}
	fmt.Printf("\nbase: %d cycles   CCR: %d cycles   speedup %.2f×\n",
		base.Cycles, ccr.Cycles, core.Speedup(base, ccr))
	fmt.Printf("each reuse hit eliminates the loop's ~%d dynamic instructions at once\n",
		ccr.Emu.ReusedInstrs/maxI64(ccr.Emu.ReuseHits, 1))
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
