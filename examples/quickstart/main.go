// Quickstart: the minimal end-to-end use of the CCR framework.
//
// It builds a tiny program in the IR (a table-driven kernel called in a
// loop with recurring inputs), runs the CCR compilation pipeline — alias
// analysis, value profiling, region formation, transformation — and then
// compares cycle-level simulations of the base and CCR machines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ccr/internal/core"
	"ccr/internal/ir"
)

func buildProgram() *ir.Program {
	pb := ir.NewProgramBuilder("quickstart")

	// A small read-only lookup table.
	table := pb.ReadOnlyObject("table", []int64{7, 11, 13, 17, 19, 23, 29, 31})

	// kernel(x): several dependent operations on a table entry — the
	// computation we want the hardware to reuse.
	kern := pb.Func("kernel", 1)
	kHot := kern.NewBlock()
	kExit := kern.NewBlock()
	x := kern.Param(0)
	v, addr := kern.NewReg(), kern.NewReg()
	kHot.AndI(v, x, 7)
	kHot.Lea(addr, table, 0)
	kHot.Add(addr, addr, v)
	kHot.Ld(v, addr, 0, table)
	kHot.MulI(v, v, 3)
	kHot.MulI(v, v, 5)
	kHot.AddI(v, v, 1)
	kHot.Jmp(kExit.ID())
	kExit.Ret(v)

	// main(n): call the kernel n times with inputs drawn from a small
	// recurring set (i & 3 — four distinct values, well within the
	// profile's top-5 invariance gate).
	f := pb.Func("main", 1)
	entry := f.NewBlock()
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	i, sum, sel, r := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	entry.MovI(i, 0)
	entry.MovI(sum, 0)
	head.Bge(i, f.Param(0), exit.ID())
	body.AndI(sel, i, 3)
	body.Call(r, kern.ID(), sel)
	body.Add(sum, sum, r)
	body.AddI(i, i, 1)
	body.Jmp(head.ID())
	exit.Ret(sum)

	return ir.MustVerify(pb.Build())
}

func main() {
	prog := buildProgram()
	opts := core.DefaultOptions() // paper heuristics, 128×8 CRB, 6-issue machine

	// Compile: profile on a training run, form reusable computation
	// regions, insert reuse/invalidate instructions.
	cr, err := core.Compile(prog, []int64{4096}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("formed %d reusable computation region(s):\n", len(cr.Plans))
	for _, pl := range cr.Plans {
		fmt.Printf("  %s %s region, %d instrs, inputs=%d outputs=%d\n",
			pl.Kind, pl.Class, pl.StaticSize, len(pl.Inputs), len(pl.Outputs))
	}

	// Simulate base vs CCR on the same input.
	args := []int64{4096}
	base, err := core.Simulate(prog, nil, opts.Uarch, args, 0)
	if err != nil {
		log.Fatal(err)
	}
	ccr, err := core.Simulate(cr.Prog, &opts.CRB, opts.Uarch, args, 0)
	if err != nil {
		log.Fatal(err)
	}
	if base.Result != ccr.Result {
		log.Fatalf("architectural mismatch: %d vs %d", base.Result, ccr.Result)
	}

	fmt.Printf("\nresult          : %d (identical on both machines)\n", base.Result)
	fmt.Printf("base machine    : %d cycles, %d instructions (IPC %.2f)\n",
		base.Cycles, base.Uarch.Instrs, base.Uarch.IPC())
	fmt.Printf("CCR machine     : %d cycles, %d instructions (IPC %.2f)\n",
		ccr.Cycles, ccr.Uarch.Instrs, ccr.Uarch.IPC())
	fmt.Printf("reuse           : %d hits, %d misses, %d instructions eliminated\n",
		ccr.Emu.ReuseHits, ccr.Emu.ReuseMisses, ccr.Emu.ReusedInstrs)
	fmt.Printf("speedup         : %.3f×\n", core.Speedup(base, ccr))
}
