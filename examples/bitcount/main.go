// Bitcount reproduces the paper's Figure 2: the 008.espresso count_ones
// macro — a straight-line population count through a byte table — becomes
// a single-input, single-output stateless reuse region. The example prints
// the dependence structure the paper describes (one live-in register, one
// live-out register, static bit_count array) and shows the reuse behaviour
// under a range of computation-instance counts.
//
//	go run ./examples/bitcount
package main

import (
	"fmt"
	"log"

	"ccr/internal/core"
	"ccr/internal/ir"
)

func buildBitcount() *ir.Program {
	pb := ir.NewProgramBuilder("bitcount")

	// bit_count[v] = number of set bits in byte v — static data, so its
	// loads need no memory validation (paper §2.2.1).
	bc := make([]int64, 256)
	for i := range bc {
		n := int64(0)
		for v := i; v != 0; v >>= 1 {
			n += int64(v & 1)
		}
		bc[i] = n
	}
	bitCount := pb.ReadOnlyObject("bit_count", bc)

	// Word stream with strong value locality (few distinct words).
	words := make([]int64, 512)
	vals := []int64{0xDEAD, 0xBEEF, 0x1234, 0xFFFF0000, 0x0F0F0F0F, 0x80000001}
	for i := range words {
		// A skewed pick: value 0 half the time, then a tail.
		k := (i * i) % 11
		if k >= len(vals) {
			k = 0
		}
		words[i] = vals[k]
	}
	input := pb.ReadOnlyObject("words", words)

	// count_ones(v): the Figure 2(a) macro, verbatim shape — four byte
	// extractions, four table loads, three adds. One basic block; the
	// whole sequence depends on the single input register and defines a
	// single live-out register.
	co := pb.Func("count_ones", 1)
	hot := co.NewBlock()
	exit := co.NewBlock()
	v := co.Param(0)
	sum, base := co.NewReg(), co.NewReg()
	hot.Lea(base, bitCount, 0)
	hot.AndI(sum, v, 255)
	hot.Add(sum, base, sum)
	hot.Ld(sum, sum, 0, bitCount)
	for _, sh := range []int64{8, 16, 24} {
		b := co.NewReg()
		hot.ShrI(b, v, sh)
		hot.AndI(b, b, 255)
		hot.Add(b, base, b)
		hot.Ld(b, b, 0, bitCount)
		hot.Add(sum, sum, b)
	}
	hot.Jmp(exit.ID())
	exit.Ret(sum)

	// main(rounds): pop-count the word stream repeatedly.
	f := pb.Func("main", 1)
	e := f.NewBlock()
	rh := f.NewBlock()
	ji := f.NewBlock()
	jh := f.NewBlock()
	jb := f.NewBlock()
	jl := f.NewBlock()
	rl := f.NewBlock()
	x := f.NewBlock()
	r, j, total, base, w, ones := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(r, 0)
	e.MovI(total, 0)
	e.Lea(base, input, 0)
	rh.Bge(r, f.Param(0), x.ID())
	ji.MovI(j, 0)
	jh.BgeI(j, 512, rl.ID())
	jb.Add(w, base, j)
	jb.Ld(w, w, 0, input)
	jb.Call(ones, co.ID(), w)
	jb.Add(total, total, ones)
	jl.AddI(j, j, 1)
	jl.Jmp(jh.ID())
	rl.AddI(r, r, 1)
	rl.Jmp(rh.ID())
	x.Ret(total)

	return ir.MustVerify(pb.Build())
}

func main() {
	prog := buildBitcount()
	opts := core.DefaultOptions()
	cr, err := core.Compile(prog, []int64{8}, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 2 reproduction: the count_ones block-level reuse region")
	for _, rg := range cr.Prog.Regions {
		fmt.Printf("  region %d: %s %s, group %s, %d instructions\n",
			rg.ID, rg.Kind, rg.Class, rg.Group(), rg.StaticSize)
		fmt.Printf("    live-in registers : %v  (the paper's r3)\n", rg.Inputs)
		fmt.Printf("    live-out registers: %v  (the paper's r26)\n", rg.Outputs)
		fmt.Printf("    memory objects    : %v  (bit_count is static: none needed)\n", rg.MemObjects)
	}

	base, err := core.Simulate(prog, nil, opts.Uarch, []int64{8}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-22s %12s %10s %8s\n", "configuration", "cycles", "hits", "speedup")
	fmt.Printf("%-22s %12d %10s %8s\n", "base (no CCR)", base.Cycles, "-", "1.000")
	for _, cis := range []int{1, 2, 4, 8} {
		cfg := opts.CRB
		cfg.Instances = cis
		ccr, err := core.Simulate(cr.Prog, &cfg, opts.Uarch, []int64{8}, 0)
		if err != nil {
			log.Fatal(err)
		}
		if ccr.Result != base.Result {
			log.Fatal("architectural mismatch")
		}
		fmt.Printf("%-22s %12d %10d %8.3f\n",
			fmt.Sprintf("CCR 128 entries, %d CI", cis), ccr.Cycles,
			ccr.Emu.ReuseHits, core.Speedup(base, ccr))
	}
	fmt.Println("\nWith six distinct words in flight, a single instance keeps missing;")
	fmt.Println("a few instances per entry capture the whole working set — the paper's")
	fmt.Println("argument for multi-instance computation entries.")
}
