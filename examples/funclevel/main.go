// Funclevel demonstrates the paper's §6 future-work idea, implemented as
// an option in this reproduction: directing the CCR at the *function*
// level, so a single reuse hit eliminates an entire call — argument setup,
// callee body and return together. The example builds a program whose hot
// path is a call to a pure scoring function with recurring arguments and
// compares three machines: base, region-level CCR, and function-level CCR.
//
//	go run ./examples/funclevel
package main

import (
	"fmt"
	"log"

	"ccr/internal/core"
	"ccr/internal/ir"
)

func buildProgram() *ir.Program {
	pb := ir.NewProgramBuilder("funclevel")
	weights := pb.ReadOnlyObject("weights", []int64{3, 8, 2, 9, 5, 7, 1, 6})

	// score(kind, level): a pure function — table lookups and arithmetic,
	// no stores anywhere. Its body also contains branches, so the whole
	// call covers multiple basic blocks that region-level CCR must carve
	// separately while function-level CCR memoizes in one shot.
	sc := pb.Func("score", 2)
	kind, level := sc.Param(0), sc.Param(1)
	b0 := sc.NewBlock()
	b1 := sc.NewBlock()
	b2 := sc.NewBlock()
	b3 := sc.NewBlock()
	w, p, acc := sc.NewReg(), sc.NewReg(), sc.NewReg()
	b0.AndI(w, kind, 7)
	b0.LeaIdx(p, weights, w, 0)
	b0.Ld(w, p, 0, weights)
	b0.Mul(acc, w, level)
	b0.BgtI(acc, 40, b2.ID())
	b1.MulI(acc, acc, 3)
	b1.Jmp(b3.ID())
	b2.AddI(acc, acc, 100)
	b3.MulI(acc, acc, 5)
	b3.RemI(acc, acc, 1009)
	b3.Ret(acc)

	// main(n): score a recurring stream of (kind, level) pairs.
	f := pb.Func("main", 1)
	e := f.NewBlock()
	h := f.NewBlock()
	bo := f.NewBlock()
	x := f.NewBlock()
	k, total, kd, lv, r := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(total, 0)
	h.Bge(k, f.Param(0), x.ID())
	// Six recurring (kind, level) combinations — comfortably within the
	// top-5 invariance gate's reach.
	bo.RemI(kd, k, 3)
	bo.AndI(lv, k, 1)
	bo.AddI(lv, lv, 1)
	bo.Call(r, sc.ID(), kd, lv)
	bo.Add(total, total, r)
	bo.AddI(k, k, 1)
	bo.Jmp(h.ID())
	x.Ret(total)
	return ir.MustVerify(pb.Build())
}

func main() {
	prog := buildProgram()
	args := []int64{8192}

	regionOpts := core.DefaultOptions()
	funcOpts := core.DefaultOptions()
	funcOpts.Region.FunctionLevel = true

	base, err := core.Simulate(prog, nil, regionOpts.Uarch, args, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("§6 extension: function-level computation reuse")
	fmt.Printf("\n%-22s %12s %10s %10s %9s\n", "machine", "cycles", "hits", "regions", "speedup")
	fmt.Printf("%-22s %12d %10s %10s %9s\n", "base", base.Cycles, "-", "-", "1.000")

	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"region-level CCR", regionOpts},
		{"function-level CCR", funcOpts},
	} {
		cr, err := core.Compile(prog, args, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Simulate(cr.Prog, &cfg.opts.CRB, cfg.opts.Uarch, args, 0)
		if err != nil {
			log.Fatal(err)
		}
		if res.Result != base.Result {
			log.Fatal("architectural mismatch")
		}
		kinds := map[ir.RegionKind]int{}
		for _, rg := range cr.Prog.Regions {
			kinds[rg.Kind]++
		}
		fmt.Printf("%-22s %12d %10d %10s %9.3f\n",
			cfg.name, res.Cycles, res.Emu.ReuseHits,
			fmt.Sprintf("%v", kinds), core.Speedup(base, res))
	}
	fmt.Println("\nRegion-level CCR memoizes the score function's hot block; the call")
	fmt.Println("itself — argument moves, frame setup, branches, return — still")
	fmt.Println("executes. Function-level CCR records (arguments → result) instances")
	fmt.Println("for the whole call, which is what the paper's §6 anticipated:")
	fmt.Println("\"directing the CCR architecture at the function level could reduce")
	fmt.Println("a significant amount of time spent executing calling convention\".")
}
