module ccr

go 1.22
