// Command ccrgen regenerates the committed hot-region specializations in
// internal/specgen/gen: it profiles each workload's training input on the
// careful tier (vprof), ranks straight-line runs by dynamic weight,
// selects specialization regions, and emits them as Go source registered
// in internal/spec. The output is deterministic for a fixed workload set,
// which is what the CI gen-check step verifies.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ccr/internal/core"
	"ccr/internal/specgen"
	"ccr/internal/workloads"
)

func main() {
	out := flag.String("out", "internal/specgen/gen", "output directory for generated *_gen.go files")
	scaleName := flag.String("scale", "tiny", "workload scale to profile (tiny|small|medium)")
	topk := flag.Int("topk", 24, "ranked runs seeding region growth per workload")
	maxInstrs := flag.Int("maxinstrs", 512, "max member instructions per region")
	benches := flag.String("bench", "", "comma-separated workload names (default: all)")
	flag.Parse()

	scale, err := workloads.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	names := workloads.Names()
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	for _, name := range names {
		b, err := workloads.Lookup(strings.TrimSpace(name), scale)
		if err != nil {
			fatal(err)
		}
		prof, _, err := core.ProfileRun(b.Prog, b.Train, 0)
		if err != nil {
			fatal(fmt.Errorf("%s: profile: %w", b.Name, err))
		}
		ranks := prof.TopRuns(*topk)
		regions := specgen.SelectRegions(b.Prog.Decoded(), ranks,
			specgen.Options{TopK: *topk, MaxInstrs: *maxInstrs})
		src, err := specgen.Generate("gen", b.Name, *scaleName, regions)
		if err != nil {
			fatal(fmt.Errorf("%s: generate: %w", b.Name, err))
		}
		path := filepath.Join(*out, b.Name+"_gen.go")
		if src == nil {
			// No specializable hot region: make sure no stale file lingers.
			if err := os.Remove(path); err == nil {
				fmt.Printf("ccrgen: %-10s no regions, removed %s\n", b.Name, path)
			} else {
				fmt.Printf("ccrgen: %-10s no regions\n", b.Name)
			}
			continue
		}
		if err := os.WriteFile(path, src, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("ccrgen: %-10s %d region(s) -> %s\n", b.Name, len(regions), path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccrgen:", err)
	os.Exit(1)
}
