// Command ccrviz renders a function's control-flow graph in Graphviz dot
// form, with reuse regions drawn as clusters: inception blocks as
// diamonds, region members shaded, finish edges labelled. Pipe through
// `dot -Tsvg` to draw.
//
//	ccrviz -bench m88ksim -func ckbrkpts -ccr | dot -Tsvg > ckbrkpts.svg
//	ccrviz -run prog.ccr -func main
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ccr/internal/analysis"
	"ccr/internal/buildinfo"
	"ccr/internal/core"
	"ccr/internal/ir"
	"ccr/internal/workloads"
)

func main() {
	bench := flag.String("bench", "", "benchmark to visualize")
	scale := flag.String("scale", "tiny", "workload scale")
	ccrForm := flag.Bool("ccr", false, "visualize the CCR-transformed program")
	runFile := flag.String("run", "", "visualize a textual program file instead")
	fn := flag.String("func", "main", "function to draw")
	showVersion := flag.Bool("version", false, "print build/version info and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.String())
		return
	}

	var prog *ir.Program
	switch {
	case *runFile != "":
		text, err := os.ReadFile(*runFile)
		if err != nil {
			log.Fatal(err)
		}
		prog, err = ir.Parse(string(text))
		if err != nil {
			log.Fatal(err)
		}
	case *bench != "":
		sc, err := workloads.ParseScale(*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		b, err := workloads.Lookup(*bench, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		prog = b.Prog
		if *ccrForm {
			cr, err := core.Compile(b.Prog, b.Train, core.DefaultOptions())
			if err != nil {
				log.Fatal(err)
			}
			prog = cr.Prog
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: ccrviz -bench NAME [-ccr] -func F | ccrviz -run FILE -func F")
		os.Exit(2)
	}

	f := prog.FuncByName(*fn)
	if f == nil {
		log.Fatalf("no function %q; available:", *fn)
	}
	fmt.Print(dot(prog, f))
}

// dot renders one function as a Graphviz digraph.
func dot(p *ir.Program, f *ir.Func) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", f.Name)
	sb.WriteString("  node [shape=box fontname=monospace fontsize=9];\n")

	// Region membership for shading; inception blocks for shaping.
	memberOf := map[ir.BlockID]ir.RegionID{}
	inceptionOf := map[ir.BlockID]ir.RegionID{}
	for _, rg := range p.Regions {
		if rg.Func != f.ID {
			continue
		}
		inceptionOf[rg.Inception] = rg.ID
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Region == rg.ID && b.Instrs[i].Op != ir.Reuse {
					memberOf[b.ID] = rg.ID
					break
				}
			}
		}
		if rg.Kind == ir.FuncLevel {
			memberOf[rg.Body] = rg.ID
		}
	}

	for _, b := range f.Blocks {
		var lines []string
		for i := range b.Instrs {
			lines = append(lines, b.Instrs[i].String())
		}
		label := fmt.Sprintf("b%d\\l%s\\l", b.ID, strings.Join(lines, "\\l"))
		var attrs string
		if rid, ok := inceptionOf[b.ID]; ok {
			attrs = fmt.Sprintf("label=\"b%d: reuse region%d\" shape=diamond style=filled fillcolor=gold", b.ID, rid)
		} else if rid, ok := memberOf[b.ID]; ok {
			attrs = fmt.Sprintf("label=%q style=filled fillcolor=lightblue tooltip=\"region %d\"", label, rid)
		} else {
			attrs = fmt.Sprintf("label=%q", label)
		}
		fmt.Fprintf(&sb, "  b%d [%s];\n", b.ID, attrs)
	}

	g := analysis.BuildCFG(f)
	for _, b := range f.Blocks {
		t := b.Terminator()
		for _, s := range g.Succs[b.ID] {
			attr := ""
			if t != nil {
				switch {
				case t.Op == ir.Reuse && s == t.Target:
					attr = " [label=hit color=darkgreen]"
				case t.Op == ir.Reuse:
					attr = " [label=miss color=red]"
				case t.Attr.Has(ir.AttrRegionEnd) && s == regionCont(p, t.Region):
					attr = " [label=finish color=darkgreen]"
				case t.Attr.Has(ir.AttrRegionExit) && !sameRegion(p, f, t.Region, s):
					attr = " [label=exit color=red style=dashed]"
				}
			}
			fmt.Fprintf(&sb, "  b%d -> b%d%s;\n", b.ID, s, attr)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func regionCont(p *ir.Program, id ir.RegionID) ir.BlockID {
	if r := p.Region(id); r != nil {
		return r.Continuation
	}
	return ir.NoBlock
}

func sameRegion(p *ir.Program, f *ir.Func, id ir.RegionID, b ir.BlockID) bool {
	blk := f.Block(b)
	if blk == nil {
		return false
	}
	for i := range blk.Instrs {
		if blk.Instrs[i].Region == id {
			return true
		}
	}
	return false
}
