// Command ccrviz renders a function's control-flow graph in Graphviz dot
// form, with reuse regions drawn as clusters: inception blocks as
// diamonds, region members shaded, finish edges labelled. Pipe through
// `dot -Tsvg` to draw.
//
//	ccrviz -bench m88ksim -func ckbrkpts -ccr | dot -Tsvg > ckbrkpts.svg
//	ccrviz -run prog.ccr -func main
//
// The timeline subcommand merges the span logs of a distributed fabric
// sweep — every coordinator incarnation, every worker — into one Chrome
// trace-event JSON file, ordered by the journal's commit sequence so the
// picture survives kill/resume seams. Open the output in Perfetto or
// chrome://tracing.
//
//	ccrviz timeline -dir RUN/spans -journal RUN/journal.jsonl -o timeline.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ccr/internal/analysis"
	"ccr/internal/buildinfo"
	"ccr/internal/core"
	"ccr/internal/fabric"
	"ccr/internal/ir"
	"ccr/internal/obsv"
	"ccr/internal/workloads"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "timeline" {
		timelineMain(os.Args[2:])
		return
	}
	bench := flag.String("bench", "", "benchmark to visualize")
	scale := flag.String("scale", "tiny", "workload scale")
	ccrForm := flag.Bool("ccr", false, "visualize the CCR-transformed program")
	runFile := flag.String("run", "", "visualize a textual program file instead")
	fn := flag.String("func", "main", "function to draw")
	showVersion := flag.Bool("version", false, "print build/version info and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.String())
		return
	}

	var prog *ir.Program
	switch {
	case *runFile != "":
		text, err := os.ReadFile(*runFile)
		if err != nil {
			log.Fatal(err)
		}
		prog, err = ir.Parse(string(text))
		if err != nil {
			log.Fatal(err)
		}
	case *bench != "":
		sc, err := workloads.ParseScale(*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		b, err := workloads.Lookup(*bench, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		prog = b.Prog
		if *ccrForm {
			cr, err := core.Compile(b.Prog, b.Train, core.DefaultOptions())
			if err != nil {
				log.Fatal(err)
			}
			prog = cr.Prog
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: ccrviz -bench NAME [-ccr] -func F | ccrviz -run FILE -func F")
		os.Exit(2)
	}

	f := prog.FuncByName(*fn)
	if f == nil {
		log.Fatalf("no function %q; available:", *fn)
	}
	fmt.Print(dot(prog, f))
}

// timelineMain merges span logs into a Chrome trace-event document.
func timelineMain(args []string) {
	fs := flag.NewFlagSet("ccrviz timeline", flag.ExitOnError)
	dir := fs.String("dir", "", "span-log directory (fabric -spans / ccrd -spans)")
	journal := fs.String("journal", "", "fabric journal.jsonl supplying the commit-order time axis")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "ccrviz timeline: -dir is required")
		os.Exit(2)
	}

	procs, err := obsv.ReadSpanDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccrviz timeline:", err)
		os.Exit(1)
	}
	if len(procs) == 0 {
		fmt.Fprintf(os.Stderr, "ccrviz timeline: no span logs under %s\n", *dir)
		os.Exit(1)
	}

	var cells []string
	if *journal != "" {
		var torn bool
		cells, torn, err = fabric.JournalCellOrder(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccrviz timeline:", err)
			os.Exit(1)
		}
		if torn {
			fmt.Fprintf(os.Stderr, "ccrviz timeline: journal %s has a torn tail; using the valid prefix (%d cells)\n",
				*journal, len(cells))
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccrviz timeline:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := obsv.WriteTimeline(w, procs, cells); err != nil {
		fmt.Fprintln(os.Stderr, "ccrviz timeline:", err)
		os.Exit(1)
	}
	if *out != "" {
		var spans int
		for _, p := range procs {
			spans += len(p.Spans)
		}
		fmt.Fprintf(os.Stderr, "ccrviz timeline: %d procs, %d spans, %d journal cells -> %s\n",
			len(procs), spans, len(cells), *out)
	}
}

// dot renders one function as a Graphviz digraph.
func dot(p *ir.Program, f *ir.Func) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", f.Name)
	sb.WriteString("  node [shape=box fontname=monospace fontsize=9];\n")

	// Region membership for shading; inception blocks for shaping.
	memberOf := map[ir.BlockID]ir.RegionID{}
	inceptionOf := map[ir.BlockID]ir.RegionID{}
	for _, rg := range p.Regions {
		if rg.Func != f.ID {
			continue
		}
		inceptionOf[rg.Inception] = rg.ID
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Region == rg.ID && b.Instrs[i].Op != ir.Reuse {
					memberOf[b.ID] = rg.ID
					break
				}
			}
		}
		if rg.Kind == ir.FuncLevel {
			memberOf[rg.Body] = rg.ID
		}
	}

	for _, b := range f.Blocks {
		var lines []string
		for i := range b.Instrs {
			lines = append(lines, b.Instrs[i].String())
		}
		label := fmt.Sprintf("b%d\\l%s\\l", b.ID, strings.Join(lines, "\\l"))
		var attrs string
		if rid, ok := inceptionOf[b.ID]; ok {
			attrs = fmt.Sprintf("label=\"b%d: reuse region%d\" shape=diamond style=filled fillcolor=gold", b.ID, rid)
		} else if rid, ok := memberOf[b.ID]; ok {
			attrs = fmt.Sprintf("label=%q style=filled fillcolor=lightblue tooltip=\"region %d\"", label, rid)
		} else {
			attrs = fmt.Sprintf("label=%q", label)
		}
		fmt.Fprintf(&sb, "  b%d [%s];\n", b.ID, attrs)
	}

	g := analysis.BuildCFG(f)
	for _, b := range f.Blocks {
		t := b.Terminator()
		for _, s := range g.Succs[b.ID] {
			attr := ""
			if t != nil {
				switch {
				case t.Op == ir.Reuse && s == t.Target:
					attr = " [label=hit color=darkgreen]"
				case t.Op == ir.Reuse:
					attr = " [label=miss color=red]"
				case t.Attr.Has(ir.AttrRegionEnd) && s == regionCont(p, t.Region):
					attr = " [label=finish color=darkgreen]"
				case t.Attr.Has(ir.AttrRegionExit) && !sameRegion(p, f, t.Region, s):
					attr = " [label=exit color=red style=dashed]"
				}
			}
			fmt.Fprintf(&sb, "  b%d -> b%d%s;\n", b.ID, s, attr)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func regionCont(p *ir.Program, id ir.RegionID) ir.BlockID {
	if r := p.Region(id); r != nil {
		return r.Continuation
	}
	return ir.NoBlock
}

func sameRegion(p *ir.Program, f *ir.Func, id ir.RegionID, b ir.BlockID) bool {
	blk := f.Block(b)
	if blk == nil {
		return false
	}
	for i := range blk.Instrs {
		if blk.Instrs[i].Region == id {
			return true
		}
	}
	return false
}
