// Command ccrd is the resident CCR simulation daemon: it keeps prepared
// programs, CCR compilations, simulation results and oracle digests in
// single-flight caches across requests and serves compile / simulate /
// batch / sweep / verify / phases requests over the internal/serve wire
// protocol on a unix socket or TCP address.
//
// With -store, the content-addressed artifact store is layered under every
// resident suite, so compilation and simulation results survive daemon
// restarts (entries are revision-stamped; a rebuilt daemon recomputes).
//
// SIGTERM (or SIGINT) drains gracefully: the listener closes, in-flight
// requests finish and are answered, the run manifest (with -manifest) is
// flushed, and the process exits 0. A second signal force-exits.
//
// Usage:
//
//	ccrd [-addr unix:/tmp/ccrd.sock] [-jobs N] [-manifest run.json] [-store DIR] [-version]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"syscall"

	"ccr/internal/buildinfo"
	"ccr/internal/serve"
	"ccr/internal/store"
)

func main() {
	addr := flag.String("addr", "unix:/tmp/ccrd.sock",
		"listen address: unix:/path, tcp:host:port, a socket path, or host:port")
	jobs := flag.Int("jobs", 0, "default pool width for request fan-outs (0 = GOMAXPROCS)")
	manifest := flag.String("manifest", "", "accumulate a JSON run manifest, flushed on drain")
	storeDir := flag.String("store", "", "root a persistent artifact store here (survives restarts)")
	showVersion := flag.Bool("version", false, "print build/version info and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.String())
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ccrd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: *storeDir, Revision: store.DefaultRevision()})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccrd:", err)
			os.Exit(2)
		}
	}

	ln, err := serve.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccrd:", err)
		os.Exit(2)
	}

	srv := serve.NewServer(serve.Config{
		Jobs:         *jobs,
		ManifestPath: *manifest,
		Store:        st,
		Logger:       slog.Default(),
	})
	srv.HandleSignals(syscall.SIGTERM, syscall.SIGINT)

	slog.Info("ccrd: serving", "addr", *addr, "build", buildinfo.String())
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "ccrd:", err)
		os.Exit(1)
	}
	// Serve returned because a drain began; wait for in-flight work.
	srv.Wait()
	slog.Info("ccrd: drained")
}
