// Command ccrd is the resident CCR simulation daemon: it keeps prepared
// programs, CCR compilations, simulation results and oracle digests in
// single-flight caches across requests and serves compile / simulate /
// batch / sweep / verify / phases requests over the internal/serve wire
// protocol on a unix socket or TCP address.
//
// With -store, the content-addressed artifact store is layered under every
// resident suite, so compilation and simulation results survive daemon
// restarts (entries are revision-stamped; a rebuilt daemon recomputes).
//
// With -http, an observability sidecar serves a Prometheus-text /metrics
// endpoint (per-op request counters and latency histograms, suite-cache
// and store counters, per-scheme reuse totals, Go runtime stats),
// /debug/pprof/* for live profiling, and /healthz reflecting drain
// state. Without -http none of this is registered — the daemon carries
// nil instruments and stays bit-transparent.
//
// SIGTERM (or SIGINT) drains gracefully: the listener closes, in-flight
// requests finish and are answered, the run manifest (with -manifest) is
// flushed, and the process exits 0. A second signal force-exits.
//
// Usage:
//
//	ccrd [-addr unix:/tmp/ccrd.sock] [-jobs N] [-manifest run.json] [-store DIR]
//	     [-http host:port] [-spans DIR] [-version]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"syscall"

	"ccr/internal/buildinfo"
	"ccr/internal/obsv"
	"ccr/internal/serve"
	"ccr/internal/store"
)

func main() {
	addr := flag.String("addr", "unix:/tmp/ccrd.sock",
		"listen address: unix:/path, tcp:host:port, a socket path, or host:port")
	jobs := flag.Int("jobs", 0, "default pool width for request fan-outs (0 = GOMAXPROCS)")
	manifest := flag.String("manifest", "", "accumulate a JSON run manifest, flushed on drain")
	storeDir := flag.String("store", "", "root a persistent artifact store here (survives restarts)")
	httpAddr := flag.String("http", "", "serve /metrics, /healthz and /debug/pprof on this host:port")
	spanDir := flag.String("spans", "", "record per-request span logs under this directory")
	showVersion := flag.Bool("version", false, "print build/version info and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.String())
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ccrd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: *storeDir, Revision: store.DefaultRevision()})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccrd:", err)
			os.Exit(2)
		}
	}

	cfg := serve.Config{
		Jobs:         *jobs,
		ManifestPath: *manifest,
		Store:        st,
		Logger:       slog.Default(),
	}
	if *httpAddr != "" {
		cfg.Metrics = obsv.New()
		if err := obsv.RegisterGoStats(cfg.Metrics); err != nil {
			fmt.Fprintln(os.Stderr, "ccrd:", err)
			os.Exit(2)
		}
	}
	if *spanDir != "" {
		spans, err := obsv.OpenSpanLog(*spanDir, fmt.Sprintf("ccrd-%d", os.Getpid()))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccrd:", err)
			os.Exit(2)
		}
		defer spans.Close()
		cfg.Spans = spans
	}

	ln, err := serve.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccrd:", err)
		os.Exit(2)
	}

	srv := serve.NewServer(cfg)
	srv.HandleSignals(syscall.SIGTERM, syscall.SIGINT)

	if *httpAddr != "" {
		h, err := obsv.Serve(*httpAddr, obsv.HTTPConfig{
			Registry: cfg.Metrics,
			Ready:    func() bool { return !srv.Draining() },
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccrd:", err)
			os.Exit(2)
		}
		defer h.Close()
		// The bound address line is load-bearing: the obs-smoke script
		// greps it to find an ephemeral (-http 127.0.0.1:0) port.
		slog.Info("ccrd: observability sidecar", "http", h.Addr())
	}

	slog.Info("ccrd: serving", "addr", *addr, "build", buildinfo.String())
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "ccrd:", err)
		os.Exit(1)
	}
	// Serve returned because a drain began; wait for in-flight work.
	srv.Wait()
	slog.Info("ccrd: drained")
}
