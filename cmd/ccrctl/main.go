// Command ccrctl is the thin client for the ccrd simulation daemon.
//
// Every subcommand dials the daemon, performs the version handshake —
// refusing (exit status 2) a server built from a different commit unless
// -force — and issues one request:
//
//	ccrctl ping     [-addr A]                         liveness + handshake check
//	ccrctl compile  [-addr A] -bench B [-scale S]     compilation summary
//	ccrctl simulate [-addr A] -bench B [flags]        one simulation cell
//	ccrctl batch    [-addr A] -cells F [-stream]      many cells, one round trip
//	ccrctl sweep    [-addr A] [-scale S] [-stream]    full speedup grid
//	ccrctl verify   [-addr A] [-scale S]              §3.1 transparency sweep
//	ccrctl phases   [-addr A] -bench B                warm-buffer train→ref study
//	ccrctl stats    [-addr A]                         daemon self-report
//	ccrctl top      [-addr A] [-interval D] [-n N]    live refreshing status view
//	ccrctl status   [-addr A] [-json]                 one status snapshot
//	ccrctl drain    [-addr A]                         graceful shutdown
//	ccrctl bench    [-addr A] [-clients N] [...]      load test, BENCH_serve.json
//
// Unknown subcommands and malformed -addr values exit 2 with usage;
// operational failures (failed cells, failed verification, failed load
// gates) exit 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ccr/internal/buildinfo"
	"ccr/internal/serve"
	"ccr/internal/serve/loadgen"
)

const defaultAddr = "unix:/tmp/ccrd.sock"

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: ccrctl <command> [flags]

commands:
  ping      check daemon liveness and version handshake
  compile   request a benchmark's CCR compilation summary
  simulate  run one simulation cell
  batch     run many cells in one round trip (cells JSON via -cells)
  sweep     run the full speedup grid
  verify    run the transparency-verification sweep
  phases    run the warm-buffer train-then-ref study
  stats     print the daemon's self-report
  top       live refreshing status view (in-flight requests, reuse rates)
  status    print one status snapshot (text, or -json)
  drain     ask the daemon to shut down gracefully
  bench     load-test the daemon and gate/record BENCH_serve.json

common flags: -addr (default `+defaultAddr+`), -connect-timeout, -force, -version
run 'ccrctl <command> -h' for command flags`)
}

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "-version", "--version", "version":
		fmt.Println(buildinfo.String())
		return
	case "-h", "--help", "help":
		usage(os.Stdout)
		return
	case "ping", "compile", "simulate", "batch", "sweep", "verify",
		"phases", "stats", "top", "status", "drain", "bench":
		run(cmd, args)
	default:
		fmt.Fprintf(os.Stderr, "ccrctl: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
}

// run executes one subcommand; it owns the flag set, the dial and the
// exit-status policy.
func run(cmd string, args []string) {
	fs := flag.NewFlagSet("ccrctl "+cmd, flag.ExitOnError)
	addr := fs.String("addr", defaultAddr, "daemon address (unix:/path, tcp:host:port, path, or host:port)")
	force := fs.Bool("force", false, "accept a server built from a different commit")
	connectTimeout := fs.Duration("connect-timeout", 0,
		"retry a failed connect with exponential backoff for this long, e.g. 10s (0 = fail fast)")
	showVersion := fs.Bool("version", false, "print build/version info and exit")

	// Per-command flags (registered up front so -h lists them).
	bench := fs.String("bench", "", "benchmark name")
	scale := fs.String("scale", "", "workload scale: tiny, small, medium, large (default small)")
	dataset := fs.String("dataset", "", "input dataset: train or ref (default train)")
	base := fs.Bool("base", false, "simulate the base program without a CRB")
	scheme := fs.String("scheme", "", "reuse scheme: off, ccr, dtm, both (default ccr)")
	entries := fs.Int("entries", 0, "CRB entries (0 = paper default)")
	cis := fs.Int("cis", 0, "computation instances per entry (0 = default)")
	assoc := fs.Int("assoc", 0, "CRB set associativity (0 = default)")
	nomem := fs.Float64("nomem", 0, "fraction of entries without memory-valid hardware")
	tentries := fs.Int("tentries", 0, "DTM trace entries (0 = default; dtm/both schemes)")
	tinstances := fs.Int("tinstances", 0, "DTM trace instances per entry (0 = default)")
	tassoc := fs.Int("tassoc", 0, "DTM set associativity (0 = default)")
	minrun := fs.Int("minrun", 0, "DTM minimum run length worth memoizing (0 = default)")
	digest := fs.Bool("digest", false, "also return the functional oracle digest")
	notiming := fs.Bool("notiming", false, "skip the timing model (digest-only run)")
	jobs := fs.Int("jobs", 0, "server-side pool width for fan-outs (0 = server default)")
	stream := fs.Bool("stream", false, "print server progress heartbeats to stderr")
	heartbeat := fs.Int("heartbeat", 0, "streaming heartbeat interval, ms (0 = 500)")
	cellsPath := fs.String("cells", "", "batch cells JSON file ('-' = stdin): [{\"bench\":...},...]")
	strict := fs.Bool("strict", true, "exit 1 when verification fails at any point")

	// top/status-only flags.
	topInterval := fs.Duration("interval", 0, "top: snapshot interval (default 1s)")
	topN := fs.Int("n", -1, "top: stop after N snapshots (-1 = stream until interrupted)")
	jsonOut := fs.Bool("json", false, "status: print the raw snapshot JSON")

	// bench-only flags.
	clients := fs.Int("clients", 8, "bench: concurrent client connections")
	requests := fs.Int("requests", 400, "bench: total mixed requests in the hammer phase")
	seed := fs.Int64("seed", 1, "bench: interleaving seed")
	out := fs.String("out", "", "bench: write the BENCH_serve.json record to this file")
	check := fs.Bool("check", false, "bench: gate the run (exit 1 on violation)")
	minwarm := fs.Float64("minwarm", 5, "bench: required cold/warm median latency ratio")
	maxerr := fs.Float64("maxerr", 0, "bench: tolerated fraction of failed requests")
	minhit := fs.Float64("minhit", 0.5, "bench: required resident-cache hit rate")
	commit := fs.String("commit", "", "bench: commit stamp for the record")
	note := fs.String("note", "", "bench: note stamp for the record")

	fs.Parse(args)
	if *showVersion {
		fmt.Println(buildinfo.String())
		return
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ccrctl %s: unexpected argument %q\n", cmd, fs.Arg(0))
		os.Exit(2)
	}
	if _, _, err := serve.ParseAddr(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "ccrctl:", err)
		os.Exit(2)
	}

	geom := func() *serve.CRBGeom {
		if *entries == 0 && *cis == 0 && *assoc == 0 && *nomem == 0 {
			return nil
		}
		return &serve.CRBGeom{Entries: *entries, Instances: *cis, Assoc: *assoc, NoMemFrac: *nomem}
	}
	dtmGeom := func() *serve.DTMGeom {
		if *tentries == 0 && *tinstances == 0 && *tassoc == 0 && *minrun == 0 {
			return nil
		}
		return &serve.DTMGeom{Entries: *tentries, Instances: *tinstances, Assoc: *tassoc, MinRun: *minrun}
	}

	// bench dials through loadgen itself.
	if cmd == "bench" {
		doBench(loadgen.Config{
			Addr: *addr, Clients: *clients, Requests: *requests,
			Scale: scaleOrDefault(*scale), Seed: *seed, Force: *force,
		}, *out, *check, loadgen.Gates{
			MinWarmSpeedup: *minwarm, MaxErrorFrac: *maxerr, MinCacheHitRate: *minhit,
		}, *commit, *note)
		return
	}

	cl, err := serve.DialRetry(*addr, serve.DialOptions{Force: *force}, *connectTimeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccrctl:", err)
		if serve.IsVersionMismatch(err) {
			os.Exit(2)
		}
		os.Exit(1)
	}
	defer cl.Close()

	onProgress := func(p serve.ProgressBody) {}
	if *stream {
		onProgress = func(p serve.ProgressBody) {
			fmt.Fprintf(os.Stderr, "progress: %d/%d failed=%d elapsed=%.1fs eta=%.1fs util=%.2f\n",
				p.Done, p.Total, p.Failed, p.ElapsedMS/1e3, p.EtaMS/1e3, p.Utilization)
		}
	}

	switch cmd {
	case "ping":
		if err := cl.Ping(int64(os.Getpid())); err != nil {
			fatal(err)
		}
		fmt.Printf("ok: %s\n", cl.ServerBuild().String())

	case "compile":
		requireBench(*bench)
		resp, err := cl.Compile(serve.CompileReq{Bench: *bench, Scale: *scale})
		if err != nil {
			fatal(err)
		}
		emit(resp)

	case "simulate":
		requireBench(*bench)
		resp, err := cl.Simulate(serve.SimulateReq{
			Bench: *bench, Scale: *scale, Dataset: *dataset, Base: *base,
			Scheme: *scheme, CRB: geom(), DTM: dtmGeom(),
			Digest: *digest, NoTiming: *notiming,
		})
		if err != nil {
			fatal(err)
		}
		emit(resp)

	case "batch":
		cells, err := readCells(*cellsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccrctl:", err)
			os.Exit(2)
		}
		resp, err := cl.Batch(serve.BatchReq{
			Cells: cells, Jobs: *jobs, Stream: *stream, HeartbeatMS: *heartbeat,
		}, onProgress)
		if err != nil {
			fatal(err)
		}
		emit(resp)
		if resp.Failed > 0 {
			fmt.Fprintf(os.Stderr, "ccrctl: %d/%d cells failed\n", resp.Failed, len(resp.Results))
			os.Exit(1)
		}

	case "sweep":
		resp, err := cl.Sweep(serve.SweepReq{
			Scale: *scale, Jobs: *jobs, Stream: *stream, HeartbeatMS: *heartbeat,
		}, onProgress)
		if err != nil {
			fatal(err)
		}
		emit(resp)
		if resp.Failed > 0 {
			fmt.Fprintf(os.Stderr, "ccrctl: %d sweep points failed\n", resp.Failed)
			os.Exit(1)
		}

	case "verify":
		resp, err := cl.Verify(serve.VerifyReq{
			Scale: *scale, Jobs: *jobs, Stream: *stream, HeartbeatMS: *heartbeat,
		}, onProgress)
		if err != nil {
			fatal(err)
		}
		emit(resp)
		if len(resp.Rows) > 0 {
			fmt.Fprintf(os.Stderr, "ccrctl: transparency FAILED at %d/%d points\n",
				len(resp.Rows), resp.Checked)
			if *strict {
				os.Exit(1)
			}
		} else {
			fmt.Fprintf(os.Stderr, "ccrctl: transparency verified at all %d points\n", resp.Checked)
		}

	case "phases":
		requireBench(*bench)
		resp, err := cl.Phases(serve.PhasesReq{Bench: *bench, Scale: *scale, CRB: geom()})
		if err != nil {
			fatal(err)
		}
		emit(resp)

	case "stats":
		resp, err := cl.Stats()
		if err != nil {
			fatal(err)
		}
		emit(resp)

	case "top":
		doTop(cl, *topInterval, *topN)

	case "status":
		doStatus(cl, *jsonOut)

	case "drain":
		if err := cl.Drain(); err != nil {
			fatal(err)
		}
		fmt.Println("draining")
	}
}

// doBench runs the load test and applies the record/gate policy.
func doBench(cfg loadgen.Config, out string, check bool, gates loadgen.Gates,
	commit, note string) {
	rep, err := loadgen.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccrctl bench:", err)
		if serve.IsVersionMismatch(err) {
			os.Exit(2)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"bench: %d requests, %d clients, %.1f req/s, %d errors\n"+
			"bench: cold %.3fms, warm %.3fms -> warm speedup %.1fx (server-side %.1fx)\n"+
			"bench: cache hit rate %.3f\n",
		rep.Requests, rep.Clients, rep.ThroughputRPS, rep.Errors,
		rep.ColdMS, rep.WarmMS, rep.WarmSpeedup, rep.WarmSpeedupServer,
		rep.CacheHitRate)
	if out != "" {
		rec := loadgen.NewRecord(cfg, rep, commit, note)
		if err := rec.WriteFile(out); err != nil {
			fmt.Fprintln(os.Stderr, "ccrctl bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: record -> %s\n", out)
	} else {
		emit(loadgen.NewRecord(cfg, rep, commit, note))
	}
	if check {
		if err := gates.Check(rep); err != nil {
			fmt.Fprintln(os.Stderr, "ccrctl bench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "bench: gates passed")
	}
}

// readCells loads the batch cell list from a JSON file or stdin.
func readCells(path string) ([]serve.SimulateReq, error) {
	if path == "" {
		return nil, fmt.Errorf("batch requires -cells <file|->")
	}
	var b []byte
	var err error
	if path == "-" {
		b, err = io.ReadAll(os.Stdin)
	} else {
		b, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var cells []serve.SimulateReq
	if err := json.Unmarshal(b, &cells); err != nil {
		return nil, fmt.Errorf("cells %s: %w", path, err)
	}
	return cells, nil
}

func requireBench(b string) {
	if b == "" {
		fmt.Fprintln(os.Stderr, "ccrctl: -bench is required")
		os.Exit(2)
	}
}

func scaleOrDefault(s string) string {
	if s == "" {
		return "small"
	}
	return s
}

func emit(v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(b))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccrctl:", err)
	os.Exit(1)
}
