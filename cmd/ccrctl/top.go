package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ccr/internal/serve"
)

// doTop streams live status snapshots and renders each as a full-screen
// refresh (home + clear-to-end ANSI codes), htop-style. n bounds the
// stream (-1 = until interrupted or the daemon drains).
func doTop(cl *serve.Client, interval time.Duration, n int) {
	ms := int(interval / time.Millisecond)
	first := true
	resp, err := cl.Top(serve.TopReq{IntervalMS: ms, Count: n}, func(snap serve.TopSnapshot) {
		if first {
			fmt.Print("\x1b[2J") // clear once; afterwards overdraw in place
			first = false
		}
		fmt.Print("\x1b[H", renderSnapshot(snap), "\x1b[J")
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ccrctl top: stream closed after %d snapshots\n", resp.Snapshots)
}

// doStatus fetches exactly one snapshot and prints it, as text or JSON.
func doStatus(cl *serve.Client, asJSON bool) {
	var got *serve.TopSnapshot
	_, err := cl.Top(serve.TopReq{Count: 1}, func(snap serve.TopSnapshot) {
		got = &snap
	})
	if err != nil {
		fatal(err)
	}
	if got == nil {
		fatal(fmt.Errorf("daemon sent no snapshot"))
	}
	if asJSON {
		emit(got)
		return
	}
	fmt.Print(renderSnapshot(*got))
}

// renderSnapshot formats one TopSnapshot as an aligned text block.
func renderSnapshot(s serve.TopSnapshot) string {
	var b strings.Builder
	drain := ""
	if s.Draining {
		drain = "  DRAINING"
	}
	fmt.Fprintf(&b, "ccrd up %s  conns %d  in-flight %d  goroutines %d  heap %s%s\n",
		fmtDur(s.UptimeSeconds), s.Conns, s.InFlight, s.Goroutines, fmtBytes(s.HeapBytes), drain)

	if len(s.Requests) > 0 {
		ops := make([]string, 0, len(s.Requests))
		for op := range s.Requests {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		b.WriteString("requests ")
		for _, op := range ops {
			fmt.Fprintf(&b, " %s=%d", op, s.Requests[op])
		}
		b.WriteString("\n")
	}

	for i, a := range s.Active {
		tag := "active   "
		if i > 0 {
			tag = "         "
		}
		fmt.Fprintf(&b, "%s %-9s %8.0fms\n", tag, a.Op, a.ElapsedMS)
	}

	if st := s.Store; st != nil {
		fmt.Fprintf(&b, "store     puts=%d hits=%d misses=%d stale=%d corrupt=%d\n",
			st.Puts, st.Hits, st.Misses, st.Stale, st.Corrupt)
	}

	scales := make([]string, 0, len(s.Suites))
	for sc := range s.Suites {
		scales = append(scales, sc)
	}
	sort.Strings(scales)
	for _, sc := range scales {
		su := s.Suites[sc]
		caches := make([]string, 0, len(su.Caches))
		for c := range su.Caches {
			caches = append(caches, c)
		}
		sort.Strings(caches)
		fmt.Fprintf(&b, "suite     %s: %d benches;", sc, su.Benches)
		for _, c := range caches {
			cs := su.Caches[c]
			fmt.Fprintf(&b, " %s=%d/%d", c, cs.Hits, cs.Hits+cs.Misses)
		}
		b.WriteString("\n")
	}

	schemes := make([]string, 0, len(s.Reuse))
	for sc := range s.Reuse {
		schemes = append(schemes, sc)
	}
	sort.Strings(schemes)
	for i, sc := range schemes {
		t := s.Reuse[sc]
		tag := "reuse    "
		if i > 0 {
			tag = "         "
		}
		fmt.Fprintf(&b, "%s %-5s cells=%d instrs=%d", tag, sc, t.Cells, t.DynInstrs)
		if t.ReuseHits+t.ReuseMisses > 0 {
			fmt.Fprintf(&b, "  crb %d/%d (%s reused)",
				t.ReuseHits, t.ReuseHits+t.ReuseMisses, fmtPct(t.ReusedInstrs, t.DynInstrs))
		}
		if t.DTMLookups > 0 || t.DTMHits > 0 {
			fmt.Fprintf(&b, "  dtm %d/%d (%s reused)",
				t.DTMHits, t.DTMLookups, fmtPct(t.DTMReusedInstrs, t.DynInstrs))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func fmtDur(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(time.Second).String()
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func fmtPct(num, den int64) string {
	if den == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
