// Command ccrdump serializes programs to the textual IR form and executes
// textual programs, demonstrating the Dump/Parse round trip.
//
// Dump a benchmark (base or CCR-transformed):
//
//	ccrdump -bench m88ksim -scale tiny > m88ksim.ccr
//	ccrdump -bench m88ksim -scale tiny -ccr > m88ksim-ccr.ccr
//
// Execute a textual program (functionally, optionally with a CRB):
//
//	ccrdump -run m88ksim-ccr.ccr -args 0 -entries 128 -cis 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"ccr/internal/buildinfo"
	"ccr/internal/core"
	"ccr/internal/crb"
	"ccr/internal/ir"
	"ccr/internal/workloads"
)

func main() {
	bench := flag.String("bench", "", "benchmark to dump")
	scale := flag.String("scale", "tiny", "workload scale: tiny, small, medium, large")
	ccrForm := flag.Bool("ccr", false, "dump the CCR-transformed program instead of the base")
	runFile := flag.String("run", "", "parse and execute a textual program file")
	argList := flag.String("args", "", "comma-separated integer arguments for -run")
	entries := flag.Int("entries", 0, "attach a CRB with this many entries when running (0 = none)")
	cis := flag.Int("cis", 8, "computation instances per entry for -entries")
	showVersion := flag.Bool("version", false, "print build/version info and exit")
	flag.Parse()

	switch {
	case *showVersion:
		fmt.Println(buildinfo.String())
	case *runFile != "":
		runProgram(*runFile, *argList, *entries, *cis)
	case *bench != "":
		dumpBench(*bench, *scale, *ccrForm)
	default:
		fmt.Fprintln(os.Stderr, "usage: ccrdump -bench NAME [-ccr] | ccrdump -run FILE [-args a,b]")
		os.Exit(2)
	}
}

func dumpBench(name, scale string, transformed bool) {
	sc, err := workloads.ParseScale(scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	b, err := workloads.Lookup(name, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prog := b.Prog
	if transformed {
		cr, err := core.Compile(b.Prog, b.Train, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		prog = cr.Prog
	}
	fmt.Print(prog.Dump())
}

func runProgram(path, argList string, entries, cis int) {
	text, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := ir.Parse(string(text))
	if err != nil {
		log.Fatal(err)
	}
	if err := ir.Verify(prog); err != nil {
		log.Fatalf("verify: %v", err)
	}
	var args []int64
	if argList != "" {
		for _, f := range strings.Split(argList, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				log.Fatal(err)
			}
			args = append(args, v)
		}
	}
	var cfg *crb.Config
	if entries > 0 {
		cfg = &crb.Config{Entries: entries, Instances: cis}
	}
	res, err := core.RunFunctional(prog, cfg, args, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result: %d\n", res.Result)
	fmt.Printf("dynamic instructions: %d\n", res.Emu.DynInstrs)
	if cfg != nil {
		fmt.Printf("reuse: %d hits, %d misses, %d instructions eliminated\n",
			res.Emu.ReuseHits, res.Emu.ReuseMisses, res.Emu.ReusedInstrs)
	}
}
