// Command ccrbench maintains BENCH_emu.json, the repository's committed
// record of emulator benchmark results, and gates changes against it.
//
// It parses raw `go test -bench` output (one or more -count repetitions per
// benchmark), reduces each benchmark to per-unit medians, and then either
//
//	-update baseline|current   writes the medians into that section of the
//	                           JSON file (baseline = the pre-optimization
//	                           engine, current = the engine as committed)
//	-check                     compares the medians against the file:
//	                           fails if any benchmark regressed more than
//	                           -gate percent over its "current" entry, or
//	                           if MachineRun is less than -minspeedup times
//	                           faster than its "baseline" entry, or if
//	                           MachineRun allocates.
//
// scripts/bench.sh is the intended driver; see EXPERIMENTS.md for how to
// read the file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// Result is the median record of one benchmark in one section.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Samples     int                `json:"samples"`
}

// Section is one snapshot: the benchmark set measured at one commit.
type Section struct {
	Commit     string            `json:"commit,omitempty"`
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// File is the whole BENCH_emu.json document.
type File struct {
	CPU      string   `json:"cpu,omitempty"`
	Goos     string   `json:"goos,omitempty"`
	Goarch   string   `json:"goarch,omitempty"`
	Baseline *Section `json:"baseline,omitempty"`
	Current  *Section `json:"current,omitempty"`
}

func main() {
	var (
		benchPath  = flag.String("bench", "-", "raw `go test -bench` output file (- for stdin)")
		jsonPath   = flag.String("json", "BENCH_emu.json", "benchmark record file")
		update     = flag.String("update", "", "write medians into this section (baseline|current)")
		check      = flag.Bool("check", false, "gate the parsed run against the record file")
		gatePct    = flag.Float64("gate", 25, "max allowed ns/op regression vs current, percent")
		minSpeedup = flag.Float64("minspeedup", 1.5, "required MachineRun speedup vs baseline")
		commit     = flag.String("commit", "", "commit id to stamp on an updated section")
		note       = flag.String("note", "", "note to stamp on an updated section")
	)
	flag.Parse()

	run, env, err := parseBench(*benchPath)
	if err != nil {
		fatal("parse %s: %v", *benchPath, err)
	}
	if len(run) == 0 {
		fatal("no benchmark lines found in %s", *benchPath)
	}

	switch {
	case *update != "":
		if *update != "baseline" && *update != "current" {
			fatal("-update must be baseline or current, got %q", *update)
		}
		doUpdate(*jsonPath, *update, run, env, *commit, *note)
	case *check:
		doCheck(*jsonPath, run, *gatePct, *minSpeedup)
	default:
		report(run)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ccrbench: "+format+"\n", args...)
	os.Exit(1)
}

// sample is one `BenchmarkX  iters  v unit  v unit ...` line.
type sample map[string]float64

// parseBench reads raw benchmark output and groups repeated runs by
// benchmark name (the -cpu suffix, if any, is stripped).
func parseBench(path string) (map[string][]sample, map[string]string, error) {
	var in *os.File
	if path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		in = f
	}
	runs := make(map[string][]sample)
	env := make(map[string]string)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		for _, k := range []string{"goos", "goarch", "cpu"} {
			if v, ok := strings.CutPrefix(line, k+": "); ok {
				env[k] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := sample{}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			s[fields[i+1]] = v
		}
		if ok && len(s) > 0 {
			runs[name] = append(runs[name], s)
		}
	}
	return runs, env, sc.Err()
}

// median reduces the repeated samples of one benchmark, unit by unit.
func median(samples []sample, unit string) (float64, bool) {
	var vs []float64
	for _, s := range samples {
		if v, ok := s[unit]; ok {
			vs = append(vs, v)
		}
	}
	if len(vs) == 0 {
		return 0, false
	}
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2], true
	}
	return (vs[n/2-1] + vs[n/2]) / 2, true
}

// reduce turns raw grouped samples into the per-benchmark median Results.
func reduce(run map[string][]sample) map[string]Result {
	out := make(map[string]Result, len(run))
	for name, samples := range run {
		r := Result{Samples: len(samples)}
		r.NsPerOp, _ = median(samples, "ns/op")
		r.BytesPerOp, _ = median(samples, "B/op")
		r.AllocsPerOp, _ = median(samples, "allocs/op")
		units := map[string]bool{}
		for _, s := range samples {
			for u := range s {
				units[u] = true
			}
		}
		for u := range units {
			switch u {
			case "ns/op", "B/op", "allocs/op":
				continue
			}
			if v, ok := median(samples, u); ok {
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[u] = v
			}
		}
		out[name] = r
	}
	return out
}

func load(path string) *File {
	f := &File{}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return f
		}
		fatal("read %s: %v", path, err)
	}
	if err := json.Unmarshal(data, f); err != nil {
		fatal("decode %s: %v", path, err)
	}
	return f
}

// headCommit asks git for the short id of HEAD; empty when unavailable
// (not a git checkout, no git binary).
func headCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func doUpdate(path, section string, run map[string][]sample, env map[string]string, commit, note string) {
	// A record without a commit id is useless for archaeology (and -check
	// refuses to gate against one), so stamp HEAD when the caller didn't.
	if commit == "" {
		if commit = headCommit(); commit == "" {
			fatal("-update %s: no -commit given and git rev-parse failed; a section must record the commit it measures", section)
		}
	}
	f := load(path)
	f.Goos, f.Goarch, f.CPU = env["goos"], env["goarch"], env["cpu"]
	sec := &Section{Commit: commit, Note: note, Benchmarks: reduce(run)}
	if section == "baseline" {
		f.Baseline = sec
	} else {
		f.Current = sec
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal("encode: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal("write %s: %v", path, err)
	}
	fmt.Printf("ccrbench: wrote %d benchmarks into %s section %q\n", len(run), path, section)
}

func doCheck(path string, run map[string][]sample, gatePct, minSpeedup float64) {
	f := load(path)
	got := reduce(run)
	failed := false

	// Regression gate: nothing may be more than gatePct slower than the
	// committed "current" record. A record that doesn't say which commit
	// it measured can't be trusted as a gate.
	if f.Current != nil && f.Current.Commit == "" {
		fatal("%s: current section has no commit stamp; re-record it (scripts/bench.sh update-current)", path)
	}
	if f.Current != nil {
		for name, want := range f.Current.Benchmarks {
			g, ok := got[name]
			if !ok || want.NsPerOp <= 0 {
				continue
			}
			pct := (g.NsPerOp - want.NsPerOp) / want.NsPerOp * 100
			mark := "ok"
			if pct > gatePct {
				mark = "FAIL"
				failed = true
			}
			fmt.Printf("%-18s %12.1f ns/op  vs current %12.1f  (%+6.1f%%, gate %.0f%%) %s\n",
				name, g.NsPerOp, want.NsPerOp, pct, gatePct, mark)
		}
	}

	// Tentpole gate: the predecoded engine must hold its speedup over the
	// committed pre-optimization baseline, allocation-free.
	if f.Baseline != nil {
		if base, ok := f.Baseline.Benchmarks["MachineRun"]; ok {
			if g, ok := got["MachineRun"]; ok && g.NsPerOp > 0 {
				sp := base.NsPerOp / g.NsPerOp
				mark := "ok"
				if sp < minSpeedup {
					mark = "FAIL"
					failed = true
				}
				fmt.Printf("MachineRun speedup vs baseline: %.2fx (min %.2fx) %s\n", sp, minSpeedup, mark)
				if g.AllocsPerOp != 0 {
					fmt.Printf("MachineRun allocs/op: %v, want 0 FAIL\n", g.AllocsPerOp)
					failed = true
				}
			}
		}
	}

	// The batch tier must stay allocation-free with the trace-memoization
	// buffer attached (DTM lookup, recording and invalidation all work out
	// of preallocated entry storage), and likewise with the specialization
	// tier disabled (generic fused batch execution).
	for _, name := range []string{"MachineRunDTM", "MachineRunFused"} {
		if g, ok := got[name]; ok && g.AllocsPerOp != 0 {
			fmt.Printf("%s allocs/op: %v, want 0 FAIL\n", name, g.AllocsPerOp)
			failed = true
		}
	}

	if failed {
		fatal("benchmark gate failed")
	}
	fmt.Println("ccrbench: gate passed")
}

func report(run map[string][]sample) {
	got := reduce(run)
	names := make([]string, 0, len(got))
	for n := range got {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := got[n]
		fmt.Printf("%-20s %14.1f ns/op %10.0f B/op %8.0f allocs/op  (n=%d)\n",
			n, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Samples)
	}
}
