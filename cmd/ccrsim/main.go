// Command ccrsim runs one benchmark through the full CCR pipeline and
// prints a side-by-side cycle-level comparison of the base and CCR
// machines, with the detailed stall and reuse breakdown of the timing
// model.
//
// -verify additionally digests a CRB-off run of the base program and a
// CRB-on run of the transformed program (internal/oracle) and fails with
// exit status 1 if any architectural observable diverged — the paper's
// §3.1 transparency contract for this benchmark, input and CRB geometry.
//
// -trace records the CCR run's reuse-relevant events (region entries,
// reuse hits with eliminated-instruction counts, invalidations with
// fan-out) with cycle timestamps and writes them as Chrome trace-event
// JSON — load the file in chrome://tracing or https://ui.perfetto.dev.
// -trace-jsonl writes the same events as a compact JSONL stream, and
// -metrics writes the cause-attributed per-region CRB counters (misses
// split cold/conflict/input/mem-invalid, evictions split capacity vs
// invalidation, per-object invalidation fan-out) as JSON.
//
// -scheme selects the reuse scheme under test: "ccr" (the default,
// compiler-directed regions + CRB), "dtm" (dynamic trace memoization on
// the unmodified base program — no compiler support), "both" (CRB and DTM
// on the transformed program), or "off" (no reuse hardware at all). The
// -tentries/-tinstances/-tassoc/-minrun flags size the DTM geometry the
// same way -entries/-cis/-assoc size the CRB.
//
// Usage:
//
//	ccrsim -bench m88ksim [-scale medium] [-scheme ccr] [-entries 128]
//	       [-cis 8] [-assoc 1] [-nomem 0] [-tentries 256] [-tinstances 4]
//	       [-tassoc 2] [-minrun 3] [-ref] [-list] [-jobs N] [-manifest run.json]
//	       [-trace out.json] [-trace-jsonl out.jsonl] [-metrics out.metrics.json]
//	       [-verify] [-cell-timeout 30s] [-retries 1] [-version]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"ccr/internal/buildinfo"
	"ccr/internal/core"
	"ccr/internal/opt"
	"ccr/internal/oracle"
	"ccr/internal/reuse"
	"ccr/internal/runner"
	"ccr/internal/telemetry"
	"ccr/internal/workloads"
)

func main() {
	bench := flag.String("bench", "m88ksim", "benchmark name (see -list)")
	scale := flag.String("scale", "small", "workload scale: tiny, small, medium, large")
	schemeFlag := flag.String("scheme", "ccr", "reuse scheme: ccr, dtm, both, off")
	entries := flag.Int("entries", 128, "CRB computation entries")
	cis := flag.Int("cis", 8, "computation instances per entry")
	assoc := flag.Int("assoc", 1, "CRB set associativity (1 = paper)")
	nomem := flag.Float64("nomem", 0, "fraction of entries without memory-valid hardware")
	tentries := flag.Int("tentries", 256, "DTM trace entries (schemes dtm/both)")
	tinstances := flag.Int("tinstances", 4, "trace instances per DTM entry")
	tassoc := flag.Int("tassoc", 2, "DTM set associativity")
	minrun := flag.Int("minrun", 3, "minimum run length the DTM will memoize")
	useRef := flag.Bool("ref", false, "simulate the reference input instead of training")
	optimize := flag.Bool("O", false, "run the classic optimizer on the base program first")
	list := flag.Bool("list", false, "list benchmarks and exit")
	jobs := flag.Int("jobs", 0, "workers for the base/CCR simulation pair (0 = GOMAXPROCS)")
	manifest := flag.String("manifest", "", "write a JSON run manifest to this file")
	verify := flag.Bool("verify", false, "differentially check the §3.1 transparency contract")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell wall-time bound (0 = none)")
	retries := flag.Int("retries", 0, "re-run a failed cell up to N more times")
	tracePath := flag.String("trace", "", "write the CCR run's reuse events as Chrome trace JSON to this file")
	traceJSONL := flag.String("trace-jsonl", "", "write the CCR run's reuse events as JSONL to this file")
	traceCap := flag.Int("trace-cap", 0, "trace ring-buffer capacity in events (0 = default)")
	metricsPath := flag.String("metrics", "", "write cause-attributed per-region CRB metrics JSON to this file")
	showVersion := flag.Bool("version", false, "print build/version info and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.String())
		return
	}
	if *list {
		for _, n := range workloads.Names() {
			b := workloads.Load(n, workloads.Tiny)
			fmt.Printf("%-10s %-14s %s\n", b.Name, b.Paper, b.About)
		}
		return
	}

	sc, err := workloads.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	b, err := workloads.Lookup(*bench, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *optimize {
		st := opt.Optimize(b.Prog)
		fmt.Printf("optimizer: folded %d, propagated %d, eliminated %d\n",
			st.Folded, st.Propagated, st.Eliminated)
	}
	scheme, err := reuse.ParseScheme(*schemeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := core.DefaultOptions()
	opts.CRB.Entries = *entries
	opts.CRB.Instances = *cis
	opts.CRB.Assoc = *assoc
	opts.CRB.NoMemEntriesFrac = *nomem
	opts.DTM.Entries = *tentries
	opts.DTM.Instances = *tinstances
	opts.DTM.Assoc = *tassoc
	opts.DTM.MinRun = *minrun

	var rc reuse.Config
	switch scheme {
	case reuse.Off:
		rc = reuse.Config{Scheme: reuse.Off}
	case reuse.CCRScheme:
		rc = reuse.CCR(opts.CRB)
	case reuse.DTMScheme:
		rc = reuse.DTMOnly(opts.DTM)
	case reuse.BothSchemes:
		rc = reuse.Both(opts.CRB, opts.DTM)
	}

	// The CCR schemes run the compiler-transformed program; the pure-DTM
	// and off schemes run the unmodified base program (trace memoization
	// needs no compiler support — that is its point).
	var cr *core.CompileResult
	prog := b.Prog
	if rc.Scheme.UsesCCR() {
		cr, err = core.Compile(b.Prog, b.Train, opts)
		if err != nil {
			log.Fatal(err)
		}
		prog = cr.Prog
	}
	args := b.Train
	which := "training"
	if *useRef {
		args = b.Ref
		which = "reference"
	}
	// The base and CCR simulations are independent; run them as two cells
	// of a runner pool (Compile above already annotated b.Prog, so both
	// only read their programs).
	pool := runner.Pool{
		Jobs:        *jobs,
		CellTimeout: *cellTimeout,
		Retries:     *retries,
		Manifest:    runner.NewManifest(fmt.Sprintf("ccrsim -bench %s -scale %s", b.Name, *scale), *jobs),
	}
	var tel *core.Telemetry
	if *tracePath != "" || *traceJSONL != "" || *metricsPath != "" {
		tel = &core.Telemetry{}
		if *metricsPath != "" {
			tel.Metrics = telemetry.NewMetrics()
		}
		if *tracePath != "" || *traceJSONL != "" {
			tel.Trace = telemetry.NewTrace(*traceCap)
		}
	}
	ccrCellID := string(scheme) + "/" + b.Name + "/" + rc.Key()
	var base, ccr *core.SimResult
	var baseDigest, ccrDigest oracle.Digest
	cells := []runner.Cell{
		{ID: "base/" + b.Name, Do: func(context.Context) error {
			var err error
			base, err = core.Simulate(b.Prog, nil, opts.Uarch, args, 0)
			return err
		}},
		{ID: ccrCellID, Do: func(context.Context) error {
			var err error
			ccr, err = core.SimulateReuse(prog, rc, opts.Uarch, args, 0, tel)
			return err
		}},
	}
	if *verify {
		cells = append(cells,
			runner.Cell{ID: "digest/base/" + b.Name, Do: func(context.Context) error {
				var err error
				baseDigest, err = core.DigestRun(b.Prog, nil, args, 0)
				return err
			}},
			runner.Cell{ID: "digest/" + ccrCellID, Do: func(context.Context) error {
				var err error
				ccrDigest, err = core.DigestRunReuse(prog, rc, args, 0)
				return err
			}})
	}
	results := pool.Run(context.Background(), cells)
	if err := runner.Errs(results); err != nil {
		log.Fatal(err)
	}
	if tel != nil && tel.Metrics != nil {
		pool.Manifest.SetTelemetry(ccrCellID, tel.Metrics.Summary())
	}
	if *manifest != "" {
		pool.Manifest.Finish()
		if err := pool.Manifest.WriteFile(*manifest); err != nil {
			log.Fatal(err)
		}
	}
	writeTelemetry(tel, *tracePath, *traceJSONL, *metricsPath)
	if base.Result != ccr.Result {
		log.Fatalf("architectural mismatch: base %d, ccr %d", base.Result, ccr.Result)
	}

	fmt.Printf("benchmark %s (%s), %s input, scheme %s (%s)\n",
		b.Name, b.Paper, which, scheme, rc.Key())
	if cr != nil {
		fmt.Printf("regions formed: %d (%d static instructions inside regions)\n",
			len(cr.Prog.Regions), regionInstrs(cr))
	}
	fmt.Println()

	row := func(name string, r *core.SimResult) {
		fmt.Printf("%-6s %12d cycles  %12d instrs  IPC %.2f  I$%6d  D$%6d  mpred%7d\n",
			name, r.Cycles, r.Uarch.Instrs, r.Uarch.IPC(),
			r.Uarch.ICacheMisses, r.Uarch.DCacheMisses, r.Uarch.Mispredicts)
	}
	row("base", base)
	row(string(scheme), ccr)
	if rc.Scheme.UsesCCR() {
		fmt.Printf("\nreuse: %d hits, %d misses, %d aborts, %d invalidations\n",
			ccr.Emu.ReuseHits, ccr.Emu.ReuseMisses, ccr.Emu.MemoAborts, ccr.Emu.Invalidations)
	}
	reused := ccr.Emu.ReusedInstrs + ccr.Emu.DTMReusedInstrs
	fmt.Printf("eliminated %d dynamic instructions (%.1f%% of base execution)\n",
		reused, 100*float64(reused)/float64(base.Emu.DynInstrs))
	if ccr.CRB != nil {
		fmt.Printf("CRB: %d records, %d evictions, %d record-rejects, %d instance invalidates\n",
			ccr.CRB.Records, ccr.CRB.Evictions, ccr.CRB.RecordFails, ccr.CRB.Invalidates)
	}
	if ccr.DTM != nil {
		fmt.Printf("DTM: %d trace hits, %d records, %d evictions, %d store invalidates\n",
			ccr.DTM.Hits, ccr.DTM.Records, ccr.DTM.Evictions, ccr.DTM.Invalidates)
	}
	fmt.Printf("\nspeedup: %.3f×\n", core.Speedup(base, ccr))

	if *verify {
		if err := oracle.Compare(baseDigest, ccrDigest); err != nil {
			fmt.Fprintf(os.Stderr, "ccrsim: transparency verification FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("transparency verified: %d stores, %d rets, %d mem words identical to base\n",
			baseDigest.StoreCount, baseDigest.RetCount, baseDigest.MemWords)
	}
}

// writeTelemetry flushes the requested trace and metrics exports.
func writeTelemetry(tel *core.Telemetry, tracePath, traceJSONL, metricsPath string) {
	if tel == nil {
		return
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tel.Trace.WriteChrome(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: %d events (%d dropped) -> %s\n", tel.Trace.Len(), tel.Trace.Dropped(), tracePath)
	}
	if traceJSONL != "" {
		f, err := os.Create(traceJSONL)
		if err != nil {
			log.Fatal(err)
		}
		if err := tel.Trace.WriteJSONL(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if metricsPath != "" {
		data, err := tel.Metrics.JSON()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(metricsPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

func regionInstrs(cr *core.CompileResult) int {
	n := 0
	for _, rg := range cr.Prog.Regions {
		n += rg.StaticSize
	}
	return n
}
