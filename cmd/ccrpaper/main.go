// Command ccrpaper regenerates every figure and table of the paper's
// evaluation on the synthetic benchmark suite and prints them as text
// tables (the data behind EXPERIMENTS.md).
//
// The simulation cells of each figure fan out across -jobs workers
// (default: GOMAXPROCS) through internal/runner; shared artifacts —
// compilations, baseline simulations, limit studies — are computed exactly
// once per benchmark across the whole run. -manifest writes a JSON record
// of the run: per-cell wall times, cache hit/miss counters and worker
// utilization.
//
// Usage:
//
//	ccrpaper [-scale tiny|small|medium|large]
//	         [-fig 4|8a|8b|9|10|11|scalars|compare|ablations|all]
//	         [-jobs N] [-manifest run.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ccr/internal/experiments"
	"ccr/internal/runner"
	"ccr/internal/workloads"
)

// knownFigs lists the -fig values in print order; "all" selects every one.
var knownFigs = []string{"4", "8a", "8b", "9", "10", "11", "scalars", "compare", "ablations"}

func main() {
	scale := flag.String("scale", "medium", "workload scale: tiny, small, medium, large")
	fig := flag.String("fig", "all", "which figure to regenerate: "+strings.Join(knownFigs, ", ")+", all")
	jobs := flag.Int("jobs", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	manifest := flag.String("manifest", "", "write a JSON run manifest to this file")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	switch *scale {
	case "tiny":
		cfg.Scale = workloads.Tiny
	case "small":
		cfg.Scale = workloads.Small
	case "medium":
		cfg.Scale = workloads.Medium
	case "large":
		cfg.Scale = workloads.Large
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *fig != "all" && !validFig(*fig) {
		fmt.Fprintf(os.Stderr, "unknown -fig %q; known figures: %s, all\n",
			*fig, strings.Join(knownFigs, ", "))
		os.Exit(2)
	}
	cfg.Jobs = *jobs

	suite := experiments.NewSuite(cfg)
	m := runner.NewManifest(
		fmt.Sprintf("ccrpaper -scale %s -fig %s -jobs %d", *scale, *fig, suite.Jobs()),
		suite.Jobs())
	suite.AttachManifest(m)

	want := func(f string) bool { return *fig == "all" || *fig == f }
	if want("4") {
		r, err := experiments.Figure4(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want("8a") {
		r, err := experiments.Figure8a(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render("Figure 8(a): speedup vs computation instances"))
	}
	if want("8b") {
		r, err := experiments.Figure8b(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render("Figure 8(b): speedup vs computation entries"))
	}
	if want("9") {
		r, err := experiments.Figure9(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want("10") {
		r, err := experiments.Figure10(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want("11") {
		r, err := experiments.Figure11(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want("scalars") {
		r, err := experiments.Scalars(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want("compare") {
		c, err := experiments.Comparison(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(c.Render())
	}
	if want("ablations") {
		a, err := experiments.AblationAssoc(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(a.Render())
		n, err := experiments.AblationNoMem(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(n.Render())
		sp, err := experiments.AblationSpeculation(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(sp.Render())
		fl, err := experiments.AblationFuncLevel(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(fl.Render())
		oo, err := experiments.AblationOutOfOrder(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(oo.Render())
		h, err := experiments.AblationHeuristics(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderHeuristics(h))
	}

	suite.FlushCacheStats(m)
	m.Finish()
	if *manifest != "" {
		if err := m.WriteFile(*manifest); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "ccrpaper: %.2fs wall, %d jobs, %d cells; compile %d misses / %d hits\n",
		m.WallSeconds, m.Jobs, len(m.Cells),
		m.Caches["compile"].Misses, m.Caches["compile"].Hits)
}

func validFig(f string) bool {
	for _, k := range knownFigs {
		if f == k {
			return true
		}
	}
	return false
}
