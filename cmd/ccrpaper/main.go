// Command ccrpaper regenerates every figure and table of the paper's
// evaluation on the synthetic benchmark suite and prints them as text
// tables (the data behind EXPERIMENTS.md).
//
// The simulation cells of each figure fan out across -jobs workers
// (default: GOMAXPROCS) through internal/runner; shared artifacts —
// compilations, baseline simulations, limit studies — are computed exactly
// once per benchmark across the whole run. -manifest writes a JSON record
// of the run: per-cell wall times, cache hit/miss counters and worker
// utilization.
//
// A failing simulation cell no longer aborts the run: its figure renders a
// FAILED(<reason>) entry and every other cell completes normally. -strict
// turns any such failure into exit status 1. -verify additionally runs the
// §3.1 transparency sweep (internal/oracle) over every benchmark, dataset
// and CRB configuration, exiting 1 on any architectural divergence.
// -cell-timeout and -retries bound and retry individual cells.
//
// Usage:
//
// -heartbeat makes the worker pool emit a structured progress log line
// (cells done/total, failures, elapsed, ETA, worker utilization) to
// stderr at the given interval so long sweeps are not silent; -telemetry
// attaches a cause-attributed CRB metrics sink to every CCR simulation
// and embeds the per-cell summaries in the -manifest output.
//
// -store roots a persistent content-addressed artifact store: compile,
// simulation, limit and digest results are reused across process runs
// (and shared with ccrd daemons pointed at the same directory).
//
// -fabric DIR switches to the crash-safe sweep fabric instead of figure
// rendering: the verification sweep's cells are journaled under DIR,
// sharded across -fabric-workers subprocesses and/or -fabric-remotes ccrd
// daemons, and a rerun after any interruption (including SIGKILL) resumes
// from the journal, skipping completed cells. digests.json is
// byte-identical however the sweep is sharded or interrupted.
// -fabric-spans additionally records per-process span logs under
// DIR/spans; merge them with `ccrviz timeline -dir DIR/spans -journal
// DIR/journal.jsonl` into a Perfetto-loadable trace of the whole sweep,
// kill/resume seams included.
//
//	ccrpaper [-scale tiny|small|medium|large]
//	         [-fig 4|8a|8b|9|10|11|scalars|compare|ablations|decant|all]
//	         [-jobs N] [-manifest run.json] [-telemetry] [-heartbeat 30s]
//	         [-verify] [-strict] [-cell-timeout 30s] [-retries 1]
//	         [-store DIR]
//	         [-fabric DIR] [-fabric-workers N] [-fabric-remotes a,b]
//	         [-fabric-benches x,y] [-fabric-lease 2m] [-fabric-spans]
//	         [-version]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ccr/internal/buildinfo"
	"ccr/internal/experiments"
	"ccr/internal/fabric"
	"ccr/internal/runner"
	"ccr/internal/store"
	"ccr/internal/workloads"
)

// knownFigs lists the -fig values in print order; "all" selects every one.
var knownFigs = []string{"4", "8a", "8b", "9", "10", "11", "scalars", "compare", "ablations", "decant"}

func main() {
	fabric.MaybeWorker() // fabric worker re-exec: never returns when spawned as one
	scale := flag.String("scale", "medium", "workload scale: tiny, small, medium, large")
	fig := flag.String("fig", "all", "which figure to regenerate: "+strings.Join(knownFigs, ", ")+", all")
	jobs := flag.Int("jobs", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	manifest := flag.String("manifest", "", "write a JSON run manifest to this file")
	verify := flag.Bool("verify", false, "run the transparency-verification sweep (exit 1 on divergence)")
	strict := flag.Bool("strict", false, "exit 1 if any simulation cell failed")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell wall-time bound (0 = none)")
	retries := flag.Int("retries", 0, "re-run a failed cell up to N more times")
	heartbeat := flag.Duration("heartbeat", 30*time.Second, "progress-log interval for long sweeps (0 = silent)")
	telem := flag.Bool("telemetry", false, "embed per-cell CRB telemetry summaries in the manifest")
	storeDir := flag.String("store", "", "root a persistent artifact store here (reused across runs)")
	fabricDir := flag.String("fabric", "", "run the resumable sweep fabric with this state directory instead of figures")
	fabricWorkers := flag.Int("fabric-workers", 0, "fabric: local worker subprocesses (0 = compute inline)")
	fabricRemotes := flag.String("fabric-remotes", "", "fabric: comma-separated ccrd daemon addresses to shard onto")
	fabricBenches := flag.String("fabric-benches", "", "fabric: restrict the sweep to these comma-separated benchmarks")
	fabricLease := flag.Duration("fabric-lease", 0, "fabric: per-cell lease before the cell is requeued (0 = default 2m)")
	fabricDieAfter := flag.Int("fabric-die-after", 0, "fabric: SIGKILL self after N journaled cells (crash-drill knob)")
	fabricSpans := flag.Bool("fabric-spans", false, "fabric: record span logs under DIR/spans for 'ccrviz timeline'")
	showVersion := flag.Bool("version", false, "print build/version info and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.String())
		return
	}
	if *fabricDir != "" {
		os.Exit(runFabric(fabricConfig{
			dir: *fabricDir, scale: *scale, storeDir: *storeDir,
			workers: *fabricWorkers, remotes: *fabricRemotes,
			benches: *fabricBenches, lease: *fabricLease, dieAfter: *fabricDieAfter,
			spans: *fabricSpans,
		}))
	}
	cfg := experiments.DefaultConfig()
	sc, err := workloads.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Scale = sc
	if *fig != "all" && !validFig(*fig) {
		fmt.Fprintf(os.Stderr, "unknown -fig %q; known figures: %s, all\n",
			*fig, strings.Join(knownFigs, ", "))
		os.Exit(2)
	}
	cfg.Jobs = *jobs
	cfg.CellTimeout = *cellTimeout
	cfg.Retries = *retries
	cfg.Heartbeat = *heartbeat
	cfg.Telemetry = *telem
	if *storeDir != "" {
		st, err := store.Open(store.Options{Dir: *storeDir, Revision: store.DefaultRevision()})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccrpaper:", err)
			os.Exit(2)
		}
		cfg.Store = st
	}

	suite := experiments.NewSuite(cfg)
	m := runner.NewManifest(
		fmt.Sprintf("ccrpaper -scale %s -fig %s -jobs %d", *scale, *fig, suite.Jobs()),
		suite.Jobs())
	suite.AttachManifest(m)

	exitCode := 0
	want := func(f string) bool { return *fig == "all" || *fig == f }
	if want("4") {
		r, err := experiments.Figure4(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want("8a") {
		r, err := experiments.Figure8a(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render("Figure 8(a): speedup vs computation instances"))
	}
	if want("8b") {
		r, err := experiments.Figure8b(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render("Figure 8(b): speedup vs computation entries"))
	}
	if want("9") {
		r, err := experiments.Figure9(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want("10") {
		r, err := experiments.Figure10(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want("11") {
		r, err := experiments.Figure11(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want("scalars") {
		r, err := experiments.Scalars(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want("compare") {
		c, err := experiments.Comparison(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(c.Render())
	}
	if want("ablations") {
		a, err := experiments.AblationAssoc(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(a.Render())
		n, err := experiments.AblationNoMem(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(n.Render())
		sp, err := experiments.AblationSpeculation(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(sp.Render())
		fl, err := experiments.AblationFuncLevel(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(fl.Render())
		oo, err := experiments.AblationOutOfOrder(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(oo.Render())
		h, err := experiments.AblationHeuristics(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderHeuristics(h))
	}
	if want("decant") {
		d, err := experiments.Decant(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(d.Render())
	}
	if *verify {
		v, err := experiments.Verify(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(v.Render())
		if v.Failed() > 0 {
			fmt.Fprintf(os.Stderr, "ccrpaper: transparency verification failed at %d points\n", v.Failed())
			exitCode = 1
		}
	}

	suite.FlushCacheStats(m)
	m.Finish()
	if *manifest != "" {
		if err := m.WriteFile(*manifest); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "ccrpaper: %.2fs wall, %d jobs, %d cells; compile %d misses / %d hits\n",
		m.WallSeconds, m.Jobs, len(m.Cells),
		m.Caches["compile"].Misses, m.Caches["compile"].Hits)
	if n := suite.FailedCells(); n > 0 {
		fmt.Fprintf(os.Stderr, "ccrpaper: %d cells failed (see FAILED entries above)\n", n)
		if *strict {
			exitCode = 1
		}
	}
	os.Exit(exitCode)
}

// fabricConfig carries the -fabric* flag values into runFabric.
type fabricConfig struct {
	dir, scale, storeDir, remotes, benches string
	workers, dieAfter                      int
	lease                                  time.Duration
	spans                                  bool
}

// runFabric runs (or resumes) a resumable sweep and returns the exit code.
func runFabric(fc fabricConfig) int {
	cfg := fabric.Config{
		Dir:       fc.dir,
		ScaleName: fc.scale,
		Workers:   fc.workers,
		StoreDir:  fc.storeDir,
		Lease:     fc.lease,
	}
	if fc.spans {
		cfg.SpanDir = filepath.Join(fc.dir, "spans")
	}
	if fc.remotes != "" {
		cfg.Remotes = strings.Split(fc.remotes, ",")
	}
	if fc.benches != "" {
		cfg.Benches = strings.Split(fc.benches, ",")
	}
	if fc.dieAfter > 0 {
		cfg.HookAfterCell = func(done int) {
			if done >= fc.dieAfter {
				fmt.Fprintf(os.Stderr, "ccrpaper: crash drill, SIGKILL self after %d cells\n", done)
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	res, err := fabric.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccrpaper: fabric:", err)
		return 1
	}
	m := res.Manifest
	fmt.Fprintf(os.Stderr,
		"ccrpaper: fabric %s: %d cells (%d resumed, %d computed) in %.2fs; requeues %d, restarts %d\n",
		m.Scale, m.Cells, m.Resumed, m.Computed, m.WallSeconds, m.Requeues, m.Restarts)
	if m.Store != nil {
		fmt.Fprintf(os.Stderr, "ccrpaper: fabric store: %d puts, %d hits, %d misses (hit rate %.2f)\n",
			m.Store.Puts, m.Store.Hits, m.Store.Misses, m.StoreHitRate)
	}
	return 0
}

func validFig(f string) bool {
	for _, k := range knownFigs {
		if f == k {
			return true
		}
	}
	return false
}
