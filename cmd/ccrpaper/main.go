// Command ccrpaper regenerates every figure and table of the paper's
// evaluation on the synthetic benchmark suite and prints them as text
// tables (the data behind EXPERIMENTS.md).
//
// Usage:
//
//	ccrpaper [-scale tiny|small|medium|large] [-fig 4|8a|8b|9|10|11|scalars|all]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ccr/internal/experiments"
	"ccr/internal/workloads"
)

func main() {
	scale := flag.String("scale", "medium", "workload scale: tiny, small, medium, large")
	fig := flag.String("fig", "all", "which figure to regenerate: 4, 8a, 8b, 9, 10, 11, scalars, compare, ablations, all")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	switch *scale {
	case "tiny":
		cfg.Scale = workloads.Tiny
	case "small":
		cfg.Scale = workloads.Small
	case "medium":
		cfg.Scale = workloads.Medium
	case "large":
		cfg.Scale = workloads.Large
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	suite := experiments.NewSuite(cfg)

	want := func(f string) bool { return *fig == "all" || *fig == f }
	if want("4") {
		r, err := experiments.Figure4(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want("8a") {
		r, err := experiments.Figure8a(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render("Figure 8(a): speedup vs computation instances"))
	}
	if want("8b") {
		r, err := experiments.Figure8b(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render("Figure 8(b): speedup vs computation entries"))
	}
	if want("9") {
		r, err := experiments.Figure9(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want("10") {
		r, err := experiments.Figure10(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want("11") {
		r, err := experiments.Figure11(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want("scalars") {
		r, err := experiments.Scalars(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want("compare") {
		c, err := experiments.Comparison(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(c.Render())
	}
	if want("ablations") {
		a, err := experiments.AblationAssoc(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(a.Render())
		n, err := experiments.AblationNoMem(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(n.Render())
		sp, err := experiments.AblationSpeculation(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(sp.Render())
		fl, err := experiments.AblationFuncLevel(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(fl.Render())
		oo, err := experiments.AblationOutOfOrder(suite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(oo.Render())
		h, err := experiments.AblationHeuristics(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderHeuristics(h))
	}
}
