// Command ccrprof runs the CCR compiler support on one benchmark and
// reports the profile-guided region formation outcome: every region with
// its class, group, interface and weight, plus the per-region dynamic
// reuse behaviour under a chosen CRB configuration.
//
// Usage:
//
//	ccrprof -bench m88ksim [-scale small] [-entries 128] [-cis 8] [-dump]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ccr/internal/core"
	"ccr/internal/experiments"
	"ccr/internal/stats"
	"ccr/internal/workloads"
)

func main() {
	bench := flag.String("bench", "m88ksim", "benchmark name")
	scale := flag.String("scale", "small", "workload scale: tiny, small, medium, large")
	entries := flag.Int("entries", 128, "CRB computation entries")
	cis := flag.Int("cis", 8, "computation instances per entry")
	dump := flag.Bool("dump", false, "dump the transformed program IR")
	flag.Parse()

	sc, err := workloads.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	b, err := workloads.Lookup(*bench, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := core.DefaultOptions()
	opts.CRB.Entries = *entries
	opts.CRB.Instances = *cis
	cr, err := core.Compile(b.Prog, b.Train, opts)
	if err != nil {
		log.Fatal(err)
	}
	base, err := core.Simulate(b.Prog, nil, opts.Uarch, b.Train, 0)
	if err != nil {
		log.Fatal(err)
	}
	ccr, err := core.Simulate(cr.Prog, &opts.CRB, opts.Uarch, b.Train, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s (%s): %d regions\n", b.Name, b.Paper, len(cr.Prog.Regions))
	t := stats.Table{Header: []string{"region", "fn", "kind", "group", "size", "in", "out", "mem", "hits", "misses", "aborts", "reused"}}
	for _, rg := range cr.Prog.Regions {
		rs := ccr.Emu.Regions[rg.ID]
		var hits, misses, aborts, reused int64
		if rs != nil {
			hits, misses, aborts, reused = rs.Hits, rs.Misses, rs.Aborts, rs.ReusedInstrs
		}
		t.Add(fmt.Sprintf("%d", rg.ID), cr.Prog.Func(rg.Func).Name, rg.Kind.String(),
			experiments.GroupOf(rg),
			fmt.Sprintf("%d", rg.StaticSize),
			fmt.Sprintf("%d", len(rg.Inputs)), fmt.Sprintf("%d", len(rg.Outputs)),
			fmt.Sprintf("%d", len(rg.MemObjects)),
			fmt.Sprintf("%d", hits), fmt.Sprintf("%d", misses),
			fmt.Sprintf("%d", aborts), fmt.Sprintf("%d", reused))
	}
	fmt.Println(t.String())
	fmt.Printf("base:  %12d cycles  %12d instrs  IPC %.2f\n", base.Cycles, base.Uarch.Instrs, base.Uarch.IPC())
	fmt.Printf("ccr:   %12d cycles  %12d instrs  IPC %.2f  (reused %d instrs, %d invals)\n",
		ccr.Cycles, ccr.Uarch.Instrs, ccr.Uarch.IPC(), ccr.Emu.ReusedInstrs, ccr.Emu.Invalidations)
	fmt.Printf("speedup: %.3f   reuse eliminated %.1f%% of base execution\n",
		core.Speedup(base, ccr), 100*float64(ccr.Emu.ReusedInstrs)/float64(base.Emu.DynInstrs))
	if *dump {
		fmt.Println(cr.Prog.Dump())
	}
}
