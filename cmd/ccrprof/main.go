// Command ccrprof runs the CCR compiler support on one benchmark and
// reports the profile-guided region formation outcome: every region with
// its class, group, interface and weight, plus the per-region dynamic
// reuse behaviour under a chosen CRB configuration.
//
// -regions ranks the regions by dynamic reuse benefit (eliminated
// instructions) and breaks every miss and eviction down by cause —
// cold vs conflict vs input-mismatch vs memory-invalidation — from the
// telemetry layer's attribution. -phases runs the training and reference
// inputs back-to-back against one warm CRB, resetting the counter block
// between phases, so the two phases report separately.
//
// -scheme selects the reuse scheme (ccr, dtm, both, off). Schemes with a
// DTM component additionally rank the trace-memoization head PCs by
// eliminated instructions (-heads bounds the ranking); the pure dtm
// scheme profiles the unmodified base program, so the region machinery is
// skipped entirely.
//
// Usage:
//
//	ccrprof -bench m88ksim [-scale small] [-scheme ccr|dtm|both|off]
//	        [-entries 128] [-cis 8] [-heads 10] [-dump]
//	        [-regions] [-phases] [-version]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"ccr/internal/buildinfo"
	"ccr/internal/core"
	"ccr/internal/experiments"
	"ccr/internal/ir"
	"ccr/internal/reuse"
	"ccr/internal/stats"
	"ccr/internal/telemetry"
	"ccr/internal/workloads"
)

func main() {
	bench := flag.String("bench", "m88ksim", "benchmark name")
	scale := flag.String("scale", "small", "workload scale: tiny, small, medium, large")
	schemeFlag := flag.String("scheme", "ccr", "reuse scheme: off, ccr, dtm, both")
	entries := flag.Int("entries", 128, "CRB computation entries")
	cis := flag.Int("cis", 8, "computation instances per entry")
	headN := flag.Int("heads", 10, "DTM head-ranking rows (dtm/both schemes)")
	dump := flag.Bool("dump", false, "dump the transformed program IR")
	regions := flag.Bool("regions", false, "rank regions by reuse benefit with cause-attributed breakdowns")
	phases := flag.Bool("phases", false, "report train/ref phases separately on one warm CRB")
	showVersion := flag.Bool("version", false, "print build/version info and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.String())
		return
	}
	sc, err := workloads.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	b, err := workloads.Lookup(*bench, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	sch, err := reuse.ParseScheme(*schemeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := core.DefaultOptions()
	opts.CRB.Entries = *entries
	opts.CRB.Instances = *cis
	var rc reuse.Config
	switch sch {
	case reuse.Off:
		rc = reuse.Config{Scheme: reuse.Off}
	case reuse.CCRScheme:
		rc = reuse.CCR(opts.CRB)
	case reuse.DTMScheme:
		rc = reuse.DTMOnly(opts.DTM)
	case reuse.BothSchemes:
		rc = reuse.Both(opts.CRB, opts.DTM)
	}

	prog := b.Prog
	var cr *core.CompileResult
	if sch.UsesCCR() {
		cr, err = core.Compile(b.Prog, b.Train, opts)
		if err != nil {
			log.Fatal(err)
		}
		prog = cr.Prog
	}
	base, err := core.Simulate(b.Prog, nil, opts.Uarch, b.Train, 0)
	if err != nil {
		log.Fatal(err)
	}
	var tel *core.Telemetry
	if *regions && sch.UsesCCR() {
		tel = &core.Telemetry{Metrics: telemetry.NewMetrics()}
	}
	run, err := core.SimulateReuse(prog, rc, opts.Uarch, b.Train, 0, tel)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s (%s): scheme %s\n", b.Name, b.Paper, rc.Key())
	if cr != nil {
		fmt.Printf("%d regions\n", len(cr.Prog.Regions))
		t := stats.Table{Header: []string{"region", "fn", "kind", "group", "size", "in", "out", "mem", "hits", "misses", "aborts", "reused"}}
		for _, rg := range cr.Prog.Regions {
			rs := run.Emu.Regions[rg.ID]
			var hits, misses, aborts, reused int64
			if rs != nil {
				hits, misses, aborts, reused = rs.Hits, rs.Misses, rs.Aborts, rs.ReusedInstrs
			}
			t.Add(fmt.Sprintf("%d", rg.ID), cr.Prog.Func(rg.Func).Name, rg.Kind.String(),
				experiments.GroupOf(rg),
				fmt.Sprintf("%d", rg.StaticSize),
				fmt.Sprintf("%d", len(rg.Inputs)), fmt.Sprintf("%d", len(rg.Outputs)),
				fmt.Sprintf("%d", len(rg.MemObjects)),
				fmt.Sprintf("%d", hits), fmt.Sprintf("%d", misses),
				fmt.Sprintf("%d", aborts), fmt.Sprintf("%d", reused))
		}
		fmt.Println(t.String())
	}
	eliminated := run.Emu.ReusedInstrs + run.Emu.DTMReusedInstrs
	fmt.Printf("base:  %12d cycles  %12d instrs  IPC %.2f\n", base.Cycles, base.Uarch.Instrs, base.Uarch.IPC())
	fmt.Printf("%-6s %12d cycles  %12d instrs  IPC %.2f  (reused %d instrs, %d invals)\n",
		string(sch)+":", run.Cycles, run.Uarch.Instrs, run.Uarch.IPC(), eliminated, run.Emu.Invalidations)
	fmt.Printf("speedup: %.3f   reuse eliminated %.1f%% of base execution\n",
		core.Speedup(base, run), 100*float64(eliminated)/float64(base.Emu.DynInstrs))
	if run.DTM != nil {
		st := run.DTM
		fmt.Printf("dtm:   %d lookups, %d hits, %d records, %d invalidated traces, %d evictions\n",
			st.Lookups, st.Hits, st.Records, st.Invalidates, st.Evictions)
		fmt.Println()
		fmt.Print(headReport(prog, run, base, *headN))
	}
	if *regions && tel != nil {
		fmt.Println()
		fmt.Print(regionReport(cr, base, run, tel.Metrics))
	}
	if *phases && sch.UsesCCR() {
		cfg := experiments.DefaultConfig()
		cfg.Scale = sc
		cfg.Opts = opts
		suite := experiments.NewSuite(cfg)
		pb, err := workloads.Lookup(*bench, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		pr, err := experiments.TrainRefPhases(suite, pb, opts.CRB)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(pr.Render())
	}
	if *dump {
		fmt.Println(prog.Dump())
	}
}

// headReport ranks the DTM trace heads by eliminated dynamic instructions,
// locating each head in its function and block.
func headReport(prog *ir.Program, run, base *core.SimResult, n int) string {
	heads := append([]reuse.HeadStat(nil), run.DTMHeads...)
	sort.SliceStable(heads, func(i, j int) bool {
		if heads[i].Reused != heads[j].Reused {
			return heads[i].Reused > heads[j].Reused
		}
		if heads[i].Fn != heads[j].Fn {
			return heads[i].Fn < heads[j].Fn
		}
		return heads[i].PC < heads[j].PC
	})
	if n > 0 && len(heads) > n {
		heads = heads[:n]
	}
	dec := prog.Decoded()
	t := stats.Table{Header: []string{"head", "fn", "block", "hits", "reused", "benefit"}}
	for _, hs := range heads {
		blk := dec.Funcs[hs.Fn].Meta[hs.PC].Block
		benefit := 0.0
		if base.Emu.DynInstrs > 0 {
			benefit = float64(hs.Reused) / float64(base.Emu.DynInstrs)
		}
		t.Add(fmt.Sprintf("%d@%d", hs.Fn, hs.PC), prog.Func(hs.Fn).Name,
			fmt.Sprintf("b%d", blk), fmt.Sprintf("%d", hs.Hits),
			fmt.Sprintf("%d", hs.Reused), stats.Pct(benefit))
	}
	return fmt.Sprintf("DTM heads by dynamic reuse benefit (%d of %d):\n", len(heads), len(run.DTMHeads)) + t.String()
}

// regionReport ranks regions by eliminated dynamic instructions and
// attributes every miss and eviction to its cause.
func regionReport(cr *core.CompileResult, base, ccr *core.SimResult, m *telemetry.Metrics) string {
	type row struct {
		rg     *ir.Region
		reused int64
		rm     telemetry.RegionMetrics
	}
	rows := make([]row, 0, len(cr.Prog.Regions))
	for _, rg := range cr.Prog.Regions {
		r := row{rg: rg}
		if rs := ccr.Emu.Regions[rg.ID]; rs != nil {
			r.reused = rs.ReusedInstrs
		}
		if rm := m.Region(rg.ID); rm != nil {
			r.rm = *rm
		}
		rows = append(rows, r)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].reused > rows[j].reused })
	t := stats.Table{Header: []string{"region", "fn", "reused", "benefit", "hits",
		"cold", "conflict", "input", "meminv", "commits", "evict", "slot-lru", "inval'd"}}
	for _, r := range rows {
		benefit := 0.0
		if base.Emu.DynInstrs > 0 {
			benefit = float64(r.reused) / float64(base.Emu.DynInstrs)
		}
		t.Add(fmt.Sprintf("%d", r.rg.ID), cr.Prog.Func(r.rg.Func).Name,
			fmt.Sprintf("%d", r.reused), stats.Pct(benefit),
			fmt.Sprintf("%d", r.rm.Hits),
			fmt.Sprintf("%d", r.rm.MissCold), fmt.Sprintf("%d", r.rm.MissConflict),
			fmt.Sprintf("%d", r.rm.MissInput), fmt.Sprintf("%d", r.rm.MissMemInvalid),
			fmt.Sprintf("%d", r.rm.Commits),
			fmt.Sprintf("%d", r.rm.EvictionsCapacity), fmt.Sprintf("%d", r.rm.SlotOverwrites),
			fmt.Sprintf("%d", r.rm.InvalidatedInstances))
	}
	return "Regions by dynamic reuse benefit (cause-attributed):\n" + t.String()
}
