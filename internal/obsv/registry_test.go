package obsv

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c, err := r.Counter("reqs_total", "Requests.", L("op", "ping"))
	if err != nil {
		t.Fatal(err)
	}
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters never decrease
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g, err := r.Gauge("inflight", "In-flight requests.")
	if err != nil {
		t.Fatal(err)
	}
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	// The zero-overhead seam: uninstrumented processes hold nil pointers
	// and call them unconditionally.
	var c *Counter
	var g *Gauge
	var h *Histogram
	var l *SpanLog
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	l.Emit(Span{Cell: "x"})
	l.EmitPhase("x", "compute", "", -1, l.Now(), "")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments returned non-zero values")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h, err := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
		want += v
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// le semantics: 0.01 lands in the le="0.01" bucket.
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestRegistrationErrors(t *testing.T) {
	r := New()
	if _, err := r.Counter("x", "ok"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		fn   func() error
	}{
		{"empty name", func() error { _, err := r.Counter("", "h"); return err }},
		{"bad name", func() error { _, err := r.Counter("1x", "h"); return err }},
		{"bad rune", func() error { _, err := r.Counter("a-b", "h"); return err }},
		{"dup series", func() error { _, err := r.Counter("x", "h"); return err }},
		{"type clash", func() error { _, err := r.Gauge("x", "h", L("a", "1")); return err }},
		{"key clash", func() error { _, err := r.Counter("x", "h", L("a", "1")); return err }},
		{"bad label", func() error { _, err := r.Counter("y", "h", L("0a", "1")); return err }},
		{"reserved label", func() error { _, err := r.Counter("y", "h", L("__n", "1")); return err }},
		{"dup label", func() error { _, err := r.Counter("y", "h", L("a", "1"), L("a", "2")); return err }},
		{"le on histogram", func() error { _, err := r.Histogram("hh", "h", nil, L("le", "1")); return err }},
		{"inf bucket", func() error {
			_, err := r.Histogram("hh", "h", []float64{1, inf()})
			return err
		}},
		{"empty buckets", func() error { _, err := r.Histogram("hh", "h", []float64{}); return err }},
		{"nil func", func() error { return r.GaugeFunc("z", "h", nil) }},
	}
	for _, tc := range cases {
		if err := tc.fn(); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// Distinct label values on the same family are fine.
	if _, err := r.Counter("x", "h2"); err == nil {
		t.Error("duplicate unlabeled series accepted")
	}
	if _, err := r.Counter("labeled", "h", L("op", "a")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Counter("labeled", "h", L("op", "b")); err != nil {
		t.Fatal(err)
	}
}

func inf() float64 {
	var z float64
	return 1 / z
}

// TestExpositionGolden pins the full exposition byte-for-byte: header
// order, label escaping, histogram expansion, float formatting.
func TestExpositionGolden(t *testing.T) {
	r := New()
	reqs, _ := r.Counter("ccrd_requests_total", "Requests received, by operation.", L("op", "ping"))
	reqs.Add(3)
	sim, _ := r.Counter("ccrd_requests_total", "", L("op", "simulate"))
	sim.Add(12)
	g, _ := r.Gauge("ccrd_inflight_requests", "Requests currently being handled.")
	g.Set(2)
	r.GaugeFunc("ccrd_uptime_seconds", "Seconds since the daemon started.",
		func() float64 { return 42.5 })
	esc, _ := r.Counter("weird_total", "Help with \\ and\nnewline.",
		L("path", `a"b\c`+"\n"))
	esc.Inc()
	h, _ := r.Histogram("ccrd_request_seconds", "Request latency.",
		[]float64{0.001, 0.01, 0.1}, L("op", "simulate"))
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 3} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		os.MkdirAll("testdata", 0o755)
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestConcurrentInstruments hammers one counter and one histogram from
// many goroutines while scraping; totals must be exact (run under -race
// in CI).
func TestConcurrentInstruments(t *testing.T) {
	r := New()
	c, _ := r.Counter("hits_total", "h")
	h, _ := r.Histogram("lat", "h", []float64{1, 10})
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
			}
		}()
	}
	// Concurrent scrapes must not disturb the totals.
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*each)
	}
	if h.Count() != workers*each {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*each)
	}
}

func TestRegisterGoStats(t *testing.T) {
	r := New()
	if err := RegisterGoStats(r); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"go_goroutines", "go_mem_heap_alloc_bytes", "go_gc_runs_total"} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("missing %s in:\n%s", name, out)
		}
	}
	if err := RegisterGoStats(r); err == nil {
		t.Error("double registration did not error")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c, _ := r.Counter("bench_total", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h, _ := r.Histogram("bench_lat", "b", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 1000)
	}
}
