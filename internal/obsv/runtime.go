package obsv

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches one runtime.ReadMemStats snapshot per scrape window
// so the several go_* gauges sampled during a single /metrics render
// share a single (briefly stop-the-world) read.
type memSampler struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

func (s *memSampler) read(f func(*runtime.MemStats) float64) func() float64 {
	return func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if time.Since(s.at) > 100*time.Millisecond {
			runtime.ReadMemStats(&s.ms)
			s.at = time.Now()
		}
		return f(&s.ms)
	}
}

// RegisterGoStats registers the Go runtime gauges (goroutines, heap and
// total allocation, GC activity) on r. It returns the first registration
// error, which can only occur if the go_* names are already taken.
func RegisterGoStats(r *Registry) error {
	s := &memSampler{}
	regs := []struct {
		name, help string
		fn         func() float64
	}{
		{"go_goroutines", "Number of live goroutines.",
			func() float64 { return float64(runtime.NumGoroutine()) }},
		{"go_mem_heap_alloc_bytes", "Bytes of allocated heap objects.",
			s.read(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) })},
		{"go_mem_sys_bytes", "Bytes of memory obtained from the OS.",
			s.read(func(m *runtime.MemStats) float64 { return float64(m.Sys) })},
		{"go_mem_total_alloc_bytes", "Cumulative bytes allocated for heap objects.",
			s.read(func(m *runtime.MemStats) float64 { return float64(m.TotalAlloc) })},
		{"go_gc_runs_total", "Completed GC cycles.",
			s.read(func(m *runtime.MemStats) float64 { return float64(m.NumGC) })},
		{"go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
			s.read(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 })},
	}
	for _, g := range regs {
		if err := r.GaugeFunc(g.name, g.help, g.fn); err != nil {
			return err
		}
	}
	return nil
}
