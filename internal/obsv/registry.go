// Package obsv is the live observability plane: a hand-rolled metrics
// registry with a Prometheus text exposition, an HTTP sidecar serving
// /metrics, /healthz and /debug/pprof, per-process span logs for
// distributed sweeps, and the journal-ordered timeline merge.
//
// The registry follows the telemetry sink's zero-overhead contract
// (DESIGN.md §9): every instrument type is nil-receiver safe, so
// instrumented code paths hold possibly-nil *Counter/*Gauge/*Histogram
// fields and call them unconditionally — a process that never built a
// Registry pays a nil check and nothing else, and stays bit-transparent.
package obsv

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// A Label is one name="value" pair on a metric series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing metric. The fast path is one
// atomic add; a nil *Counter drops the update.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds d; negative deltas are ignored (counters never decrease).
func (c *Counter) Add(d int64) {
	if c != nil && d > 0 {
		c.n.Add(d)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a settable instantaneous value stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by d (CAS loop; contended gauges should prefer
// Set from a single owner).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Observe is one
// binary search plus two atomic adds; bucket bounds are immutable after
// registration. A nil *Histogram drops the observation.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	counts  []atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the le bucket
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DefBuckets is the default latency bucket layout, in seconds.
var DefBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// collector is one registered series' sampling interface; histograms
// expand to multiple exposition lines.
type collector interface {
	value() float64
}

type funcGauge func() float64

func (f funcGauge) value() float64 { return f() }

func (c *Counter) value() float64   { return float64(c.Value()) }
func (g *Gauge) value() float64     { return g.Value() }
func (h *Histogram) value() float64 { return 0 } // unused: histograms render specially

// series is one labeled instance within a family.
type series struct {
	labels []Label // sorted by name
	col    collector
	hist   *Histogram // non-nil iff the family is a histogram
}

// family groups every series sharing a metric name: one HELP/TYPE header
// in the exposition, consistent label keys and type across instances.
type family struct {
	name, help, typ string
	keys            []string // sorted label names all series must carry
	series          []*series
	bySig           map[string]bool
}

// Registry holds registered metric families and renders them in the
// Prometheus text exposition format (version 0.0.4). Registration takes
// a mutex; the returned instruments are lock-free on their hot paths.
// All registration errors are returned, never panicked.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	byNm map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byNm: map[string]*family{}}
}

// Counter registers (or errors) one counter series.
func (r *Registry) Counter(name, help string, labels ...Label) (*Counter, error) {
	c := &Counter{}
	if err := r.register(name, help, "counter", labels, c, nil); err != nil {
		return nil, err
	}
	return c, nil
}

// Gauge registers one settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) (*Gauge, error) {
	g := &Gauge{}
	if err := r.register(name, help, "gauge", labels, g, nil); err != nil {
		return nil, err
	}
	return g, nil
}

// GaugeFunc registers a gauge sampled by calling fn at scrape time. fn
// must be safe to call from the scrape goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) error {
	if fn == nil {
		return fmt.Errorf("obsv: gauge func %s: nil sampler", name)
	}
	return r.register(name, help, "gauge", labels, funcGauge(fn), nil)
}

// CounterFunc registers a counter sampled by calling fn at scrape time —
// for monotonic totals a subsystem already maintains (cache and store
// stats) that would be double-counted by a separate Counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) error {
	if fn == nil {
		return fmt.Errorf("obsv: counter func %s: nil sampler", name)
	}
	return r.register(name, help, "counter", labels, funcGauge(fn), nil)
}

// Histogram registers one histogram series over the given ascending
// bucket upper bounds (nil = DefBuckets). Bounds are sorted and
// de-duplicated; a trailing +Inf is implicit and must not be supplied.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) (*Histogram, error) {
	if buckets == nil {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	uniq := bounds[:0]
	for _, b := range bounds {
		if math.IsInf(b, +1) {
			return nil, fmt.Errorf("obsv: histogram %s: +Inf bucket is implicit", name)
		}
		if math.IsNaN(b) {
			return nil, fmt.Errorf("obsv: histogram %s: NaN bucket bound", name)
		}
		if len(uniq) == 0 || b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("obsv: histogram %s: no buckets", name)
	}
	h := &Histogram{bounds: uniq, counts: make([]atomic.Int64, len(uniq)+1)}
	if err := r.register(name, help, "histogram", labels, h, h); err != nil {
		return nil, err
	}
	return h, nil
}

// register validates one series and files it under its family.
func (r *Registry) register(name, help, typ string, labels []Label, col collector, hist *Histogram) error {
	if !validMetricName(name) {
		return fmt.Errorf("obsv: invalid metric name %q", name)
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	keys := make([]string, len(ls))
	for i, l := range ls {
		if !validLabelName(l.Name) {
			return fmt.Errorf("obsv: metric %s: invalid label name %q", name, l.Name)
		}
		if typ == "histogram" && l.Name == "le" {
			return fmt.Errorf("obsv: histogram %s: label %q is reserved", name, l.Name)
		}
		if i > 0 && ls[i-1].Name == l.Name {
			return fmt.Errorf("obsv: metric %s: duplicate label name %q", name, l.Name)
		}
		keys[i] = l.Name
	}
	sig := labelString(ls)

	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.byNm[name]
	if fam == nil {
		fam = &family{name: name, help: help, typ: typ, keys: keys, bySig: map[string]bool{}}
		r.byNm[name] = fam
		r.fams = append(r.fams, fam)
	} else {
		if fam.typ != typ {
			return fmt.Errorf("obsv: metric %s already registered as %s, not %s", name, fam.typ, typ)
		}
		if !equalKeys(fam.keys, keys) {
			return fmt.Errorf("obsv: metric %s: label keys %v do not match existing %v", name, keys, fam.keys)
		}
		if fam.bySig[sig] {
			return fmt.Errorf("obsv: duplicate series %s{%s}", name, sig)
		}
	}
	fam.bySig[sig] = true
	fam.series = append(fam.series, &series{labels: ls, col: col, hist: hist})
	return nil
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]* and is
// not a reserved double-underscore name.
func validLabelName(s string) bool {
	if s == "" || (len(s) >= 2 && s[0] == '_' && s[1] == '_') {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
