package obsv

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteText renders every registered family in the Prometheus text
// exposition format, version 0.0.4: a # HELP / # TYPE header per family
// (families in registration order, series in registration order within
// each), histograms expanded to cumulative _bucket{le=...} lines plus
// _sum and _count. Output is deterministic for a fixed registration
// sequence, which is what the golden test pins.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	// Snapshot under the lock — concurrent registrations append to the
	// family slices — then sample and render lock-free: sampler funcs may
	// take their own locks, and series internals are immutable once
	// registered.
	type famSnap struct {
		name, help, typ string
		series          []*series
	}
	r.mu.Lock()
	fams := make([]famSnap, len(r.fams))
	for i, f := range r.fams {
		fams[i] = famSnap{name: f.name, help: f.help, typ: f.typ,
			series: append([]*series(nil), f.series...)}
	}
	r.mu.Unlock()
	for _, fam := range fams {
		if fam.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fam.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(fam.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fam.name)
		bw.WriteByte(' ')
		bw.WriteString(fam.typ)
		bw.WriteByte('\n')
		for _, s := range fam.series {
			if s.hist != nil {
				writeHistogram(bw, fam.name, s)
				continue
			}
			writeSample(bw, fam.name, "", s.labels, "", s.col.value())
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative bucket lines, +Inf, _sum, _count.
// Bucket counts are read once so the cumulative sums are self-consistent
// even while Observe runs concurrently ( _count may trail by in-flight
// observations; it always equals the +Inf bucket of the same scrape).
func writeHistogram(bw *bufio.Writer, name string, s *series) {
	h := s.hist
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(bw, name, "_bucket", s.labels, formatFloat(bound), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(bw, name, "_bucket", s.labels, "+Inf", float64(cum))
	writeSample(bw, name, "_sum", s.labels, "", h.Sum())
	writeSample(bw, name, "_count", s.labels, "", float64(cum))
}

// writeSample emits one exposition line; le, when non-empty, is appended
// as the trailing le="..." label of a histogram bucket.
func writeSample(bw *bufio.Writer, name, suffix string, labels []Label, le string, v float64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Name)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// formatFloat renders a sample value: integral values without exponent
// or fraction, specials as +Inf/-Inf/NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders sorted labels as a canonical signature (also the
// duplicate-series key).
func labelString(labels []Label) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
