package obsv

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string, http.Header) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, _ := io.ReadAll(res.Body)
	return res.StatusCode, string(body), res.Header
}

func TestHandlerMetrics(t *testing.T) {
	r := New()
	c, _ := r.Counter("up_total", "h")
	c.Add(7)
	h := Handler(HTTPConfig{Registry: r})
	code, body, hdr := get(t, h, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(body, "up_total 7") {
		t.Errorf("metrics body:\n%s", body)
	}
}

func TestHandlerHealthz(t *testing.T) {
	ready := true
	h := Handler(HTTPConfig{Registry: New(), Ready: func() bool { return ready }})
	if code, body, _ := get(t, h, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("ready /healthz = %d %q", code, body)
	}
	ready = false
	if code, body, _ := get(t, h, "/healthz"); code != 503 || !strings.Contains(body, "draining") {
		t.Fatalf("draining /healthz = %d %q", code, body)
	}
	// nil Ready: always ok.
	h2 := Handler(HTTPConfig{Registry: New()})
	if code, _, _ := get(t, h2, "/healthz"); code != 200 {
		t.Fatalf("nil-Ready /healthz = %d", code)
	}
}

func TestHandlerPprof(t *testing.T) {
	h := Handler(HTTPConfig{Registry: New()})
	if code, body, _ := get(t, h, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index = %d", code)
	}
	if code, body, _ := get(t, h, "/debug/pprof/goroutine?debug=1"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("goroutine profile = %d %q", code, body[:min(len(body), 80)])
	}
	if code, _, _ := get(t, h, "/no-such"); code != 404 {
		t.Fatal("unknown path not 404")
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	s, err := Serve("127.0.0.1:0", HTTPConfig{Registry: New()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("live /healthz = %d", res.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
