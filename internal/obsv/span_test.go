package obsv

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSpanLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSpanLog(dir, "coord-123")
	if err != nil {
		t.Fatal(err)
	}
	start := l.Now()
	time.Sleep(time.Millisecond)
	l.EmitPhase("a/train/ccr/default", "compute", "inline", -1, start, "")
	l.Emit(Span{Cell: "a/train/ccr/default", Phase: "commit", Slot: "inline", Seq: 0, StartUS: 10, DurUS: 1})
	l.EmitPhase("b/ref/dtm/default", "attempt", "w0", -1, l.Now(), "boom")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	spans, torn, err := ReadSpanLog(filepath.Join(dir, "coord-123.jsonl"))
	if err != nil || torn {
		t.Fatalf("read: torn=%v err=%v", torn, err)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Phase != "compute" || spans[0].DurUS < 900 {
		t.Errorf("first span %+v: duration not measured", spans[0])
	}
	if spans[1].Seq != 0 || spans[1].Phase != "commit" {
		t.Errorf("commit span %+v", spans[1])
	}
	if spans[2].Err != "boom" {
		t.Errorf("attempt span lost its error: %+v", spans[2])
	}
}

func TestSpanLogTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := OpenSpanLog(dir, "w-1")
	l.Emit(Span{Cell: "x", Phase: "compute", Seq: -1})
	l.Close()
	path := filepath.Join(dir, "w-1.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"cell":"y","ph`) // mid-append SIGKILL shape
	f.Close()

	spans, torn, err := ReadSpanLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if !torn || len(spans) != 1 || spans[0].Cell != "x" {
		t.Fatalf("torn tail mishandled: torn=%v spans=%+v", torn, spans)
	}
}

func TestSpanLogRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.jsonl")
	os.WriteFile(path, []byte("not json\n"), 0o644)
	if _, _, err := ReadSpanLog(path); err == nil {
		t.Fatal("terminated garbage line accepted")
	}
}

func TestReadSpanDir(t *testing.T) {
	dir := t.TempDir()
	for _, proc := range []string{"w-2", "coord-1"} {
		l, _ := OpenSpanLog(dir, proc)
		l.Emit(Span{Cell: "c", Phase: "compute", Slot: proc, Seq: -1})
		l.Close()
	}
	procs, err := ReadSpanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 2 || procs[0].Proc != "coord-1" || procs[1].Proc != "w-2" {
		t.Fatalf("procs %+v: want sorted coord-1, w-2", procs)
	}
	// Process names with path separators are sanitized, not traversed.
	l, err := OpenSpanLog(dir, "remote:unix/tmp/x.sock")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := os.Stat(filepath.Join(dir, "remote:unix_tmp_x.sock.jsonl")); err != nil {
		t.Fatal("sanitized span log not created in dir")
	}
}
