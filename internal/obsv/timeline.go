package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The timeline merge turns per-process span logs into one Chrome
// trace-event (Perfetto-loadable) document. Wall clocks of different
// processes — possibly different machines, possibly separated by a
// SIGKILL and a resume — are never compared: the journal's append order
// is the only cross-process sequence authority. Each journaled cell gets
// one fixed-width virtual time slot in journal order, and every span is
// drawn inside its cell's slot at a phase-deterministic offset. The
// process-local measured duration is preserved in args.ms.
//
// Virtual layout within a cell's 1000µs slot:
//
//	lease/retry   [  0, 950)   slot holds the cell
//	attempt       [ 50, 900)   a failed execution
//	compute       [100, 900)   the work (store-hit when served from store)
//	requeue        900         instant: cell went back to the queue
//	commit        [950,1000)   journal append — the durability point
const cellSlotUS = 1000

// phaseGeom returns the virtual offset and duration of a phase inside
// its cell slot, and whether it renders as an instant event.
func phaseGeom(phase string) (offset, dur float64, instant bool) {
	switch phase {
	case "lease", "retry":
		return 0, 950, false
	case "attempt":
		return 50, 850, false
	case "requeue":
		return 900, 0, true
	case "commit":
		return 950, 50, false
	default: // compute, store-hit, request spans, unknown phases
		return 100, 800, false
	}
}

// chromeEvent is one trace-event line; struct (not map) args keep the
// marshaled output deterministic for the schema golden.
type chromeEvent struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat,omitempty"`
	Ph    string  `json:"ph"`
	TS    float64 `json:"ts"`
	Dur   float64 `json:"dur,omitempty"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
	Scope string  `json:"s,omitempty"`
	Args  any     `json:"args,omitempty"`
}

type spanArgs struct {
	Cell string  `json:"cell"`
	Slot string  `json:"slot,omitempty"`
	Seq  int64   `json:"seq"`
	MS   float64 `json:"ms"`
	Err  string  `json:"err,omitempty"`
}

type metaArgs struct {
	Name string `json:"name"`
}

type timelineDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	OtherData       timelineMeta  `json:"otherData"`
}

type timelineMeta struct {
	JournalCells int  `json:"journal_cells"`
	ExtraCells   int  `json:"extra_cells"`
	Procs        int  `json:"procs"`
	Spans        int  `json:"spans"`
	Torn         bool `json:"torn,omitempty"`
}

// mergeTimeline lays the span logs out on the journal's sequence axis
// and validates exactly-once coverage: every cell in journalCells must
// carry exactly one commit span across all logs, and no commit span may
// name a cell outside the journal. Cells that appear only in non-commit
// spans (e.g. failed attempts never journaled, or request spans) are
// placed in deterministic extra slots after the journaled range.
func mergeTimeline(procs []ProcSpans, journalCells []string) (*timelineDoc, error) {
	slot := make(map[string]int, len(journalCells))
	for i, cell := range journalCells {
		if _, dup := slot[cell]; dup {
			return nil, fmt.Errorf("obsv: timeline: journal cell %q listed twice", cell)
		}
		slot[cell] = i
	}

	// Exactly-once commit coverage against the journal union.
	commits := map[string]int{}
	var extras []string
	seenExtra := map[string]bool{}
	for _, p := range procs {
		for _, s := range p.Spans {
			if s.Phase == "commit" {
				commits[s.Cell]++
			}
			if _, ok := slot[s.Cell]; !ok && !seenExtra[s.Cell] {
				seenExtra[s.Cell] = true
				extras = append(extras, s.Cell)
			}
		}
	}
	for cell, n := range commits {
		if _, ok := slot[cell]; !ok {
			return nil, fmt.Errorf("obsv: timeline: commit span for cell %q absent from journal", cell)
		}
		if n != 1 {
			return nil, fmt.Errorf("obsv: timeline: cell %q committed %d times", cell, n)
		}
	}
	for _, cell := range journalCells {
		if commits[cell] != 1 {
			return nil, fmt.Errorf("obsv: timeline: journal cell %q has no commit span", cell)
		}
	}
	sort.Strings(extras)
	for i, cell := range extras {
		slot[cell] = len(journalCells) + i
	}

	// procs arrive sorted from ReadSpanDir; sort defensively so direct
	// callers get the same deterministic pid assignment.
	ps := append([]ProcSpans(nil), procs...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Proc < ps[j].Proc })

	doc := &timelineDoc{DisplayTimeUnit: "ms"}
	doc.OtherData = timelineMeta{JournalCells: len(journalCells), ExtraCells: len(extras), Procs: len(ps)}
	for pi, p := range ps {
		pid := pi + 1
		doc.OtherData.Torn = doc.OtherData.Torn || p.Torn
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid, Args: metaArgs{Name: p.Proc},
		})
		// One lane per slot name within the process, sorted.
		lanes := map[string]int{}
		var names []string
		for _, s := range p.Spans {
			if _, ok := lanes[s.Slot]; !ok {
				lanes[s.Slot] = 0
				names = append(names, s.Slot)
			}
		}
		sort.Strings(names)
		for ti, n := range names {
			lanes[n] = ti + 1
			label := n
			if label == "" {
				label = p.Proc
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: ti + 1, Args: metaArgs{Name: label},
			})
		}
		for _, s := range p.Spans {
			off, dur, instant := phaseGeom(s.Phase)
			ts := float64(slot[s.Cell]*cellSlotUS) + off
			ev := chromeEvent{
				Name: s.Phase, Cat: "sweep", Ph: "X", TS: ts, Dur: dur,
				PID: pid, TID: lanes[s.Slot],
				Args: spanArgs{
					Cell: s.Cell, Slot: s.Slot, Seq: s.Seq,
					MS: float64(s.DurUS) / 1000, Err: s.Err,
				},
			}
			if instant {
				ev.Ph, ev.Dur, ev.Scope = "i", 0, "t"
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
			doc.OtherData.Spans++
		}
	}
	return doc, nil
}

// WriteTimeline merges and writes the trace as indented JSON — the form
// chrome://tracing and ui.perfetto.dev load directly, and the schema the
// golden test pins.
func WriteTimeline(w io.Writer, procs []ProcSpans, journalCells []string) error {
	doc, err := mergeTimeline(procs, journalCells)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
