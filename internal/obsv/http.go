package obsv

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// HTTPConfig configures the observability sidecar handler.
type HTTPConfig struct {
	// Registry backs /metrics (required).
	Registry *Registry
	// Ready backs /healthz: nil means always ready; false answers 503,
	// which is how a draining daemon tells its load balancer to back off.
	Ready func() bool
}

// Handler builds the sidecar's mux: /metrics (Prometheus text format),
// /healthz (readiness), /debug/pprof/* (profiling), and a / index. The
// pprof handlers are mounted explicitly on this private mux — nothing is
// registered on http.DefaultServeMux.
func Handler(cfg HTTPConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if cfg.Registry != nil {
			cfg.Registry.WriteText(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Ready != nil && !cfg.Ready() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "ccr observability plane\n/metrics\n/healthz\n/debug/pprof/\n")
	})
	return mux
}

// HTTP is a running observability sidecar.
type HTTP struct {
	srv *http.Server
	ln  net.Listener
}

// Serve binds addr (host:port; :0 picks a free port) and serves the
// sidecar handler on it until Close.
func Serve(addr string, cfg HTTPConfig) (*HTTP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsv: listen %s: %w", addr, err)
	}
	h := &HTTP{
		srv: &http.Server{Handler: Handler(cfg), ReadHeaderTimeout: 10 * time.Second},
		ln:  ln,
	}
	go h.srv.Serve(ln)
	return h, nil
}

// Addr returns the bound address (with the resolved port).
func (h *HTTP) Addr() string { return h.ln.Addr().String() }

// Close stops the sidecar listener and in-flight handlers.
func (h *HTTP) Close() error { return h.srv.Close() }
