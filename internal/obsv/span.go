package obsv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// A Span is one timed phase of distributed work, recorded by whichever
// process did it. Times are microseconds on the emitting process's own
// monotonic clock (relative to its SpanLog open) — they order spans
// within one process and measure durations, but are never compared
// across processes: the timeline merge lays spans out by journal
// sequence number instead (see timeline.go).
type Span struct {
	// Cell is the unit of work (a fabric cell ID, or a request tag for
	// daemon-side request spans).
	Cell string `json:"cell"`
	// Phase is the span kind: lease, retry, attempt, compute, store-hit,
	// commit, requeue — or any process-private vocabulary.
	Phase string `json:"phase"`
	// Slot names the lane doing the work (w0, remote:addr, inline...).
	Slot string `json:"slot,omitempty"`
	// Seq is the cell's journal sequence number when the emitter knows it
	// (commit spans); -1 otherwise.
	Seq int64 `json:"seq"`
	// StartUS/DurUS are the process-local monotonic start and duration.
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
	// Err carries the failure cause for attempt/requeue spans.
	Err string `json:"err,omitempty"`
}

// SpanLog appends spans to one per-process JSONL file. Every span is one
// marshal and one contiguous write, so a SIGKILL leaves at most a torn
// final line — the same durability shape as the fabric journal. A nil
// *SpanLog drops everything: callers hold a possibly-nil field and emit
// unconditionally.
type SpanLog struct {
	mu    sync.Mutex
	f     *os.File
	start time.Time
}

// OpenSpanLog creates dir if needed and opens (appending) the span log
// for the named process, conventionally "<role>-<pid>".
func OpenSpanLog(dir, proc string) (*SpanLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obsv: span dir: %w", err)
	}
	name := strings.Map(func(r rune) rune {
		if r == '/' || r == os.PathSeparator {
			return '_'
		}
		return r
	}, proc)
	f, err := os.OpenFile(filepath.Join(dir, name+".jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obsv: open span log: %w", err)
	}
	return &SpanLog{f: f, start: time.Now()}, nil
}

// Now returns the process-local time to stamp a span start with.
func (l *SpanLog) Now() time.Duration {
	if l == nil {
		return 0
	}
	return time.Since(l.start)
}

// Emit appends one span. Spans are best-effort telemetry: write errors
// are swallowed rather than failing the work being observed.
func (l *SpanLog) Emit(s Span) {
	if l == nil {
		return
	}
	line, err := json.Marshal(s)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	l.f.Write(line)
	l.mu.Unlock()
}

// EmitPhase records a span that started at start (from Now) and ends now.
func (l *SpanLog) EmitPhase(cell, phase, slot string, seq int64, start time.Duration, errMsg string) {
	if l == nil {
		return
	}
	l.Emit(Span{
		Cell: cell, Phase: phase, Slot: slot, Seq: seq,
		StartUS: start.Microseconds(),
		DurUS:   (l.Now() - start).Microseconds(),
		Err:     errMsg,
	})
}

// Close closes the underlying file.
func (l *SpanLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// ProcSpans is one process's span log, identified by its file basename.
type ProcSpans struct {
	Proc  string
	Spans []Span
	// Torn reports that the log ended in an unterminated line (the
	// process was killed mid-append); the complete prefix is still used.
	Torn bool
}

// ReadSpanLog parses one span log. An unterminated final line — a
// mid-append kill — is discarded and reported via torn; a terminated
// line that does not decode means the file is not a span log, and that
// is an error, never a panic.
func ReadSpanLog(path string) (spans []Span, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("obsv: read span log: %w", err)
	}
	off, lineno := 0, 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return spans, true, nil
		}
		line := bytes.TrimSpace(data[off : off+nl])
		lineno++
		if len(line) > 0 {
			var s Span
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, false, fmt.Errorf("obsv: span log %s line %d: %v",
					filepath.Base(path), lineno, err)
			}
			spans = append(spans, s)
		}
		off += nl + 1
	}
	return spans, false, nil
}

// ReadSpanDir loads every *.jsonl span log under dir, sorted by process
// name so downstream rendering is deterministic.
func ReadSpanDir(dir string) ([]ProcSpans, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var procs []ProcSpans
	for _, p := range paths {
		spans, torn, err := ReadSpanLog(p)
		if err != nil {
			return nil, err
		}
		procs = append(procs, ProcSpans{
			Proc:  strings.TrimSuffix(filepath.Base(p), ".jsonl"),
			Spans: spans,
			Torn:  torn,
		})
	}
	return procs, nil
}
