package obsv

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// FuzzExposition drives metric-name validation and the text exposition
// writer with arbitrary names, labels and samples: registration must
// error — never panic — on anything invalid, and whatever registers must
// render to a well-formed exposition with no duplicate series lines and
// a parseable value on every sample.
func FuzzExposition(f *testing.F) {
	f.Add("reqs_total", "help text", "op", "ping", int64(3), 0.25)
	f.Add("", "", "", "", int64(0), 0.0)
	f.Add("1bad", "h", "le", "x", int64(-1), -1.5)
	f.Add("a:b_c", "multi\nline \\help", "lab", `quote"back\slash`+"\n", int64(9), 1e18)
	f.Add("x", "h", "__reserved", "v", int64(1), 0.001)
	f.Add("x", "h", "op", "v", int64(1), 1e-9)

	f.Fuzz(func(t *testing.T, name, help, lname, lval string, n int64, obs float64) {
		r := New()
		var labels []Label
		if lname != "" || lval != "" {
			labels = []Label{L(lname, lval)}
		}
		c, err := r.Counter(name, help, labels...)
		if err == nil {
			c.Add(n)
			c.Inc()
			// The same series again must be rejected, not doubled.
			if _, dup := r.Counter(name, help, labels...); dup == nil {
				t.Fatalf("duplicate series %s{%v} accepted", name, labels)
			}
		}
		if h, err := r.Histogram(name+"_hist", help, []float64{0.01, 1}, labels...); err == nil {
			h.Observe(obs)
		}
		if g, err := r.Gauge(name+"_g", help, labels...); err == nil {
			g.Set(obs)
		}

		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		seen := map[string]bool{}
		sc := bufio.NewScanner(&buf)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if line == "" || strings.HasPrefix(line, "# ") {
				continue
			}
			sp := strings.LastIndexByte(line, ' ')
			if sp <= 0 {
				t.Fatalf("malformed sample line %q", line)
			}
			id, val := line[:sp], line[sp+1:]
			if seen[id] {
				t.Fatalf("duplicate series line %q", id)
			}
			seen[id] = true
			if val != "+Inf" && val != "-Inf" && val != "NaN" {
				if _, err := strconv.ParseFloat(val, 64); err != nil {
					t.Fatalf("unparseable sample value %q in %q", val, line)
				}
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scan: %v", err)
		}
	})
}
