package obsv

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixedProcs models a kill/resume sweep: coord-100 commits cell a, leases
// cell b to a worker that dies mid-compute (requeue, no commit), then the
// resumed coord-200 recomputes and commits b and c.
func fixedProcs() ([]ProcSpans, []string) {
	cells := []string{"a", "b", "c"}
	procs := []ProcSpans{
		{Proc: "coord-100", Spans: []Span{
			{Cell: "a", Phase: "lease", Slot: "w0", Seq: -1, StartUS: 0, DurUS: 1500},
			{Cell: "a", Phase: "commit", Slot: "w0", Seq: 0, StartUS: 1500, DurUS: 40},
			{Cell: "b", Phase: "lease", Slot: "w0", Seq: -1, StartUS: 1600, DurUS: 900},
			{Cell: "b", Phase: "requeue", Slot: "w0", Seq: -1, StartUS: 2500, DurUS: 0, Err: "worker died"},
		}, Torn: true},
		{Proc: "coord-200", Spans: []Span{
			{Cell: "b", Phase: "retry", Slot: "w0", Seq: -1, StartUS: 0, DurUS: 1200},
			{Cell: "b", Phase: "commit", Slot: "w0", Seq: 1, StartUS: 1200, DurUS: 30},
			{Cell: "c", Phase: "store-hit", Slot: "inline", Seq: -1, StartUS: 1300, DurUS: 80},
			{Cell: "c", Phase: "commit", Slot: "inline", Seq: 2, StartUS: 1400, DurUS: 25},
		}},
		{Proc: "worker-150", Spans: []Span{
			{Cell: "a", Phase: "compute", Slot: "worker", Seq: -1, StartUS: 100, DurUS: 1300},
			{Cell: "b", Phase: "attempt", Slot: "worker", Seq: -1, StartUS: 1700, DurUS: 600, Err: "killed"},
		}},
	}
	return procs, cells
}

// TestTimelineGolden pins the merged Perfetto JSON schema byte-for-byte.
func TestTimelineGolden(t *testing.T) {
	procs, cells := fixedProcs()
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, procs, cells); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "timeline.golden.json")
	if *update {
		os.MkdirAll("testdata", 0o755)
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("timeline drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestTimelineShape(t *testing.T) {
	procs, cells := fixedProcs()
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, procs, cells); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   struct {
			JournalCells int  `json:"journal_cells"`
			Spans        int  `json:"spans"`
			Torn         bool `json:"torn"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged timeline is not JSON: %v", err)
	}
	if doc.OtherData.JournalCells != 3 || doc.OtherData.Spans != 10 || !doc.OtherData.Torn {
		t.Fatalf("otherData %+v", doc.OtherData)
	}
	// Spans from both sides of the kill share one trace, laid out by
	// journal sequence: cell b's retry (coord-200) must start in slot 1.
	var sawRetry, sawMeta bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			sawMeta = true
		case "X":
			if ev["name"] == "retry" {
				sawRetry = true
				if ts := ev["ts"].(float64); ts < 1000 || ts >= 2000 {
					t.Errorf("retry of cell b at ts %v, want within slot [1000,2000)", ts)
				}
			}
		}
	}
	if !sawRetry || !sawMeta {
		t.Fatalf("missing events: retry=%v meta=%v", sawRetry, sawMeta)
	}
}

func TestTimelineExactlyOnce(t *testing.T) {
	procs, cells := fixedProcs()

	// A journal cell with no commit span.
	if _, err := mergeTimeline(procs, append(append([]string(nil), cells...), "ghost")); err == nil ||
		!strings.Contains(err.Error(), "no commit span") {
		t.Errorf("uncommitted journal cell accepted: %v", err)
	}
	// A duplicate commit (two processes claim the same cell).
	dup := append([]ProcSpans(nil), procs...)
	dup = append(dup, ProcSpans{Proc: "rogue", Spans: []Span{
		{Cell: "a", Phase: "commit", Seq: 0},
	}})
	if _, err := mergeTimeline(dup, cells); err == nil ||
		!strings.Contains(err.Error(), "committed 2 times") {
		t.Errorf("duplicate commit accepted: %v", err)
	}
	// A commit for a cell the journal never recorded.
	rogue := append([]ProcSpans(nil), procs...)
	rogue = append(rogue, ProcSpans{Proc: "rogue", Spans: []Span{
		{Cell: "phantom", Phase: "commit", Seq: 9},
	}})
	if _, err := mergeTimeline(rogue, cells); err == nil ||
		!strings.Contains(err.Error(), "absent from journal") {
		t.Errorf("out-of-journal commit accepted: %v", err)
	}
	// Duplicate journal cell list is a caller bug, reported not paniced.
	if _, err := mergeTimeline(procs, []string{"a", "a"}); err == nil {
		t.Error("duplicate journal cell accepted")
	}
	// Non-commit spans for unjournaled cells (failed attempts) are laid
	// out in extra slots, not rejected.
	extra := append([]ProcSpans(nil), procs...)
	extra = append(extra, ProcSpans{Proc: "zz", Spans: []Span{
		{Cell: "never-finished", Phase: "attempt", Seq: -1, Err: "oom"},
	}})
	doc, err := mergeTimeline(extra, cells)
	if err != nil {
		t.Fatalf("failed-attempt-only cell rejected: %v", err)
	}
	if doc.OtherData.ExtraCells != 1 {
		t.Fatalf("extra cells %d, want 1", doc.OtherData.ExtraCells)
	}
}
