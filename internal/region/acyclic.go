package region

import (
	"sort"

	"ccr/internal/ir"
)

// seedScore orders candidate seed blocks by execution weight, reuse
// potential, and block size — the seed-selection criteria of §4.4.
func (c *funcCtx) seedScore(b ir.BlockID) float64 {
	blk := c.f.Blocks[b]
	w := float64(c.prof.BlockExec(c.f.ID, b))
	if w == 0 {
		return 0
	}
	inv := 0.0
	judged := 0
	for i := range blk.Instrs {
		in := &blk.Instrs[i]
		if trivialInvariance(in.Op) {
			continue
		}
		judged++
		inv += c.prof.Invariance(c.ref(b, i), c.opts.InvariantValues)
	}
	avgInv := 1.0
	if judged > 0 {
		avgInv = inv / float64(judged)
	}
	return w * avgInv * float64(len(blk.Instrs))
}

// likelySucc returns the successor of block b whose edge weight is at
// least the LikelyEdge fraction of b's weight, or NoBlock.
func (c *funcCtx) likelySucc(b ir.BlockID) ir.BlockID {
	w := c.prof.BlockExec(c.f.ID, b)
	if w == 0 {
		return ir.NoBlock
	}
	blk := c.f.Blocks[b]
	t := blk.Terminator()
	for _, succ := range c.g.Succs[b] {
		var ew int64
		if t != nil && t.Op.IsCondBranch() {
			ew = c.prof.EdgeWeight(c.ref(b, len(blk.Instrs)-1), t.Target == succ)
		} else {
			ew = w
		}
		if float64(ew) >= c.opts.LikelyEdge*float64(w) {
			return succ
		}
	}
	return ir.NoBlock
}

// growable reports whether block nb can join the region tentatively rooted
// at entry: admissible, unclaimed, keeps the subgraph acyclic and the
// input bank within capacity.
func (c *funcCtx) growable(blocks map[ir.BlockID]bool, entry, nb ir.BlockID) bool {
	if nb == ir.NoBlock || blocks[nb] || c.claimed[nb] || !c.blockAdmissible(nb) {
		return false
	}
	blocks[nb] = true
	defer delete(blocks, nb)
	if !c.acyclicSubgraph(blocks) {
		return false
	}
	cont, found := c.bestContinuation(blocks)
	if !found {
		return false
	}
	s, ok := c.summarize(blocks, entry, cont)
	if !ok {
		return false
	}
	return len(s.Inputs) <= c.opts.MaxInputs && len(s.Mems) <= c.opts.MaxMemObjects
}

// formAcyclic runs the five-step acyclic formation of §4.4 at block
// granularity: seed selection, successor growth, predecessor growth,
// subordinate-path growth, and reiteration until the region stops growing.
func (c *funcCtx) formAcyclic(minWeight int64, budget int) []*Plan {
	type scored struct {
		b ir.BlockID
		s float64
	}
	var seeds []scored
	for _, blk := range c.f.Blocks {
		b := blk.ID
		if c.claimed[b] || !c.blockAdmissible(b) {
			continue
		}
		if c.prof.BlockExec(c.f.ID, b) < minWeight {
			continue
		}
		if s := c.seedScore(b); s > 0 {
			seeds = append(seeds, scored{b, s})
		}
	}
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].s != seeds[j].s {
			return seeds[i].s > seeds[j].s
		}
		return seeds[i].b < seeds[j].b
	})

	var plans []*Plan
	for _, sd := range seeds {
		if budget == 0 {
			break
		}
		if c.claimed[sd.b] {
			continue
		}
		if p := c.growRegion(sd.b); p != nil {
			plans = append(plans, p)
			if budget > 0 {
				budget--
			}
		}
	}
	return plans
}

// growRegion grows one acyclic region from seed and finalizes it, or
// returns nil when the result fails the size, cap or weight conditions.
func (c *funcCtx) growRegion(seed ir.BlockID) *Plan {
	blocks := map[ir.BlockID]bool{seed: true}
	entry := seed

	for grew := true; grew; {
		grew = false
		// Step 2: extend the principal path with likely, reusable
		// successors.
		for {
			tail := c.pathTail(blocks)
			next := ir.NoBlock
			if tail != ir.NoBlock {
				next = c.likelySucc(tail)
			}
			if next == ir.NoBlock || !c.growable(blocks, entry, next) {
				break
			}
			blocks[next] = true
			grew = true
		}
		// Step 3: extend upward through predecessors that likely flow
		// into the current entry.
		for {
			p := c.likelyPred(entry)
			if p == ir.NoBlock || !c.growable(blocks, entry, p) {
				break
			}
			// The predecessor must still expose a single starting
			// point: after adding p, every region block must be
			// reachable from p within the region.
			blocks[p] = true
			if !c.singleEntry(blocks, p) {
				delete(blocks, p)
				break
			}
			entry = p
			grew = true
		}
		// Step 4: add subordinate paths — off-path blocks whose every
		// successor rejoins the region (or its continuation), enabling
		// reuse across both arms of a hammock.
		for {
			added := false
			for b := range blocks {
				for _, s := range c.g.Succs[b] {
					if blocks[s] || !c.rejoins(blocks, s) {
						continue
					}
					if c.growable(blocks, entry, s) {
						blocks[s] = true
						added = true
					}
				}
			}
			if !added {
				break
			}
			grew = true
		}
	}

	cont, found := c.bestContinuation(blocks)
	if !found {
		return nil
	}
	// Finish-probability gate: executions leaving through a side exit
	// abort memoization and reuse nothing, so a region must leave toward
	// its continuation on the clearly-likely path. Without this, blocks
	// whose hot exit is conditional form regions that mostly abort —
	// pure reuse-instruction overhead.
	outs := c.outsideSuccs(blocks)
	var total int64
	for _, w := range outs {
		total += w
	}
	if total > 0 && float64(outs[cont]) < c.opts.LikelyEdge*float64(total) {
		return nil
	}
	s, ok := c.summarize(blocks, entry, cont)
	if !ok || !c.fitsCaps(s) {
		return nil
	}
	if s.Size < c.opts.MinStaticSize {
		return nil
	}
	ids := make([]ir.BlockID, 0, len(blocks))
	for b := range blocks {
		ids = append(ids, b)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, b := range ids {
		c.claimed[b] = true
	}
	return &Plan{
		Func:            c.f.ID,
		Kind:            ir.Acyclic,
		Class:           s.Class,
		Blocks:          ids,
		Entry:           entry,
		Continuation:    cont,
		Inputs:          s.Inputs,
		Outputs:         s.Outputs,
		MemObjects:      s.Mems,
		StaticSize:      s.Size,
		EstimatedWeight: c.prof.BlockExec(c.f.ID, entry),
	}
}

// pathTail returns the region block with no in-region successors along the
// likely path — the natural point to extend. With several such blocks the
// heaviest is chosen.
func (c *funcCtx) pathTail(blocks map[ir.BlockID]bool) ir.BlockID {
	best := ir.NoBlock
	var bestW int64 = -1
	for b := range blocks {
		hasInner := false
		for _, s := range c.g.Succs[b] {
			if blocks[s] {
				hasInner = true
				break
			}
		}
		if hasInner {
			continue
		}
		if w := c.prof.BlockExec(c.f.ID, b); w > bestW || (w == bestW && b < best) {
			best, bestW = b, w
		}
	}
	return best
}

// likelyPred returns the predecessor of entry that most likely flows into
// it (edge weight ≥ LikelyEdge of the predecessor's weight), or NoBlock.
func (c *funcCtx) likelyPred(entry ir.BlockID) ir.BlockID {
	best := ir.NoBlock
	var bestW int64 = -1
	for _, p := range c.g.Preds[entry] {
		pw := c.prof.BlockExec(c.f.ID, p)
		if pw == 0 {
			continue
		}
		blk := c.f.Blocks[p]
		t := blk.Terminator()
		var ew int64
		if t != nil && t.Op.IsCondBranch() {
			ew = c.prof.EdgeWeight(c.ref(p, len(blk.Instrs)-1), t.Target == entry)
		} else {
			ew = pw
		}
		if float64(ew) < c.opts.LikelyEdge*float64(pw) {
			continue
		}
		if ew > bestW {
			best, bestW = p, ew
		}
	}
	return best
}

// singleEntry reports whether every region block is reachable from entry
// through region-internal edges (so the inception point covers the region).
func (c *funcCtx) singleEntry(blocks map[ir.BlockID]bool, entry ir.BlockID) bool {
	seen := map[ir.BlockID]bool{entry: true}
	stack := []ir.BlockID{entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range c.g.Succs[b] {
			if blocks[s] && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return len(seen) == len(blocks)
}

// rejoins reports whether block s flows only back into the region: every
// successor of s is a region member. (Continuation rejoining is handled by
// region growth itself; requiring full rejoin keeps subordinate paths
// conservative.)
func (c *funcCtx) rejoins(blocks map[ir.BlockID]bool, s ir.BlockID) bool {
	succs := c.g.Succs[s]
	if len(succs) == 0 {
		return false
	}
	for _, x := range succs {
		if !blocks[x] {
			return false
		}
	}
	return true
}
