package region

import (
	"testing"

	"ccr/internal/alias"
	"ccr/internal/emu"
	"ccr/internal/ir"
	"ccr/internal/vprof"
)

// profileOf runs the RPS profiler over p with the given argument.
func profileOf(t *testing.T, p *ir.Program, arg int64) (*vprof.Profile, *alias.Result) {
	t.Helper()
	ar := alias.Analyze(p)
	ar.Annotate()
	pr := vprof.NewProfiler(p)
	m := emu.New(p)
	m.Trace = pr.Tracer()
	if _, err := m.Run(arg); err != nil {
		t.Fatalf("profile run: %v", err)
	}
	return pr.Finish(), ar
}

// buildKernelCaller builds main(n) calling kern(sel) with sel = i & mask;
// kern's body is a straight-line table computation of `size` operations.
func buildKernelCaller(t *testing.T, mask int64, size int) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("kc")
	tab := pb.ReadOnlyObject("tab", []int64{2, 4, 6, 8, 10, 12, 14, 16})
	g := pb.Func("kern", 1)
	gb := g.NewBlock()
	gx := g.NewBlock()
	y, b := g.NewReg(), g.NewReg()
	gb.AndI(y, g.Param(0), 7)
	gb.Lea(b, tab, 0)
	gb.Add(b, b, y)
	gb.Ld(y, b, 0, tab)
	for i := 0; i < size; i++ {
		gb.MulI(y, y, int64(3+i%4))
	}
	gb.Jmp(gx.ID())
	gx.Ret(y)
	f := pb.Func("main", 1)
	pb.SetMain(f.ID())
	e := f.NewBlock()
	h := f.NewBlock()
	bo := f.NewBlock()
	x := f.NewBlock()
	k, acc, r, sel := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(acc, 0)
	h.Bge(k, f.Param(0), x.ID())
	bo.And(sel, k, k)
	bo.AndI(sel, sel, mask)
	bo.Call(r, g.ID(), sel)
	bo.Add(acc, acc, r)
	bo.AddI(k, k, 1)
	bo.Jmp(h.ID())
	x.Ret(acc)
	return ir.MustVerify(pb.Build())
}

func TestAcyclicFormationSelectsHotKernel(t *testing.T) {
	p := buildKernelCaller(t, 3, 8)
	prof, ar := profileOf(t, p, 512)
	plans := Form(p, prof, ar, DefaultOptions())
	if len(plans) == 0 {
		t.Fatal("expected the kernel block to form a region")
	}
	pl := plans[0]
	if pl.Kind != ir.Acyclic || pl.Class != ir.Stateless {
		t.Fatalf("plan = %+v", pl)
	}
	if len(pl.Inputs) != 1 {
		t.Fatalf("inputs = %v, want the single selector", pl.Inputs)
	}
	if len(pl.Outputs) != 1 {
		t.Fatalf("outputs = %v", pl.Outputs)
	}
	if pl.StaticSize < 8 {
		t.Fatalf("size = %d", pl.StaticSize)
	}
}

func TestInvarianceGateRejectsWideDomain(t *testing.T) {
	// With a selector spanning 64 values, top-5 invariance is far below
	// 0.65 and no region may form under paper thresholds.
	p := buildKernelCaller(t, 63, 8)
	prof, ar := profileOf(t, p, 512)
	plans := Form(p, prof, ar, DefaultOptions())
	for _, pl := range plans {
		if pl.Func == 0 { // the kernel function
			t.Fatalf("wide-domain kernel must be rejected, got %+v", pl)
		}
	}
	// Lowering R admits it.
	opts := DefaultOptions()
	opts.R = 0
	opts.MinLiveInInvariance = 0
	opts.BlockReusableFrac = 0
	plans = Form(p, prof, ar, opts)
	found := false
	for _, pl := range plans {
		if pl.Func == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("zero thresholds should admit the kernel")
	}
}

// buildLoopProgram: a deterministic inner loop, invoked repeatedly with
// recurring inputs and rare invalidating stores.
func buildLoopProgram(t *testing.T, storeEvery int64) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("lp")
	tab := pb.Object("tab", 8, []int64{1, 2, 3, 4, 5, 6, 7, 8})
	g := pb.Func("scan", 0)
	ge := g.NewBlock()
	gh := g.NewBlock()
	gb := g.NewBlock()
	gl := g.NewBlock()
	gx := g.NewBlock()
	s, i, base, v := g.NewReg(), g.NewReg(), g.NewReg(), g.NewReg()
	ge.MovI(s, 0)
	ge.MovI(i, 0)
	ge.Lea(base, tab, 0)
	gh.BgeI(i, 8, gx.ID())
	gb.Add(v, base, i)
	gb.Ld(v, v, 0, tab)
	gb.Add(s, s, v)
	gl.AddI(i, i, 1)
	gl.Jmp(gh.ID())
	gx.Ret(s)
	f := pb.Func("main", 1)
	pb.SetMain(f.ID())
	e := f.NewBlock()
	h := f.NewBlock()
	bo := f.NewBlock()
	mu := f.NewBlock()
	la := f.NewBlock()
	x := f.NewBlock()
	k, acc, r, tmp, p0 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(acc, 0)
	h.Bge(k, f.Param(0), x.ID())
	bo.Call(r, g.ID())
	bo.Add(acc, acc, r)
	bo.RemI(tmp, k, storeEvery)
	bo.BneI(tmp, 0, la.ID())
	mu.Lea(p0, tab, 0)
	mu.St(p0, 2, k, tab)
	la.AddI(k, k, 1)
	la.Jmp(h.ID())
	x.Ret(acc)
	return ir.MustVerify(pb.Build())
}

func TestCyclicFormationAndClass(t *testing.T) {
	p := buildLoopProgram(t, 64)
	prof, ar := profileOf(t, p, 512)
	plans := Form(p, prof, ar, DefaultOptions())
	var cyc *Plan
	for _, pl := range plans {
		if pl.Kind == ir.Cyclic {
			cyc = pl
		}
	}
	if cyc == nil {
		t.Fatal("expected a cyclic region for the scan loop")
	}
	if cyc.Class != ir.MemoryDependent || len(cyc.MemObjects) != 1 {
		t.Fatalf("plan = %+v", cyc)
	}
	if cyc.Entry != 1 {
		t.Fatalf("entry = b%d, want the loop header b1", cyc.Entry)
	}
}

func TestCyclicGateRejectsVolatileMemory(t *testing.T) {
	// Mutating the table every invocation destroys the recurrence gate.
	p := buildLoopProgram(t, 1)
	prof, ar := profileOf(t, p, 256)
	plans := Form(p, prof, ar, DefaultOptions())
	for _, pl := range plans {
		if pl.Kind == ir.Cyclic && pl.Func == 0 {
			t.Fatalf("volatile loop must not form: %+v", pl)
		}
	}
}

func TestInputCapRejectsWideInterface(t *testing.T) {
	// A kernel block consuming 9 live-in registers must be rejected even
	// with perfect invariance.
	pb := ir.NewProgramBuilder("wide")
	g := pb.Func("kern", 8)
	gb := g.NewBlock()
	gx := g.NewBlock()
	extra := g.NewReg()
	y := g.NewReg()
	gb.Mov(y, g.Param(0))
	for i := 1; i < 8; i++ {
		gb.Add(y, y, g.Param(i))
	}
	gb.Add(y, y, extra) // ninth live-in (uninitialized scratch, value 0)
	gb.MulI(y, y, 3)
	gb.MulI(y, y, 5)
	gb.Jmp(gx.ID())
	gx.Ret(y)
	f := pb.Func("main", 1)
	pb.SetMain(f.ID())
	e := f.NewBlock()
	h := f.NewBlock()
	bo := f.NewBlock()
	x := f.NewBlock()
	k, acc, r, one := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(acc, 0)
	e.MovI(one, 1)
	h.Bge(k, f.Param(0), x.ID())
	bo.Call(r, g.ID(), one, one, one, one, one, one, one, one)
	bo.Add(acc, acc, r)
	bo.AddI(k, k, 1)
	bo.Jmp(h.ID())
	x.Ret(acc)
	p := ir.MustVerify(pb.Build())
	prof, ar := profileOf(t, p, 256)
	plans := Form(p, prof, ar, DefaultOptions())
	for _, pl := range plans {
		if pl.Func == 0 {
			t.Fatalf("9-input kernel must exceed the bank cap: inputs=%v", pl.Inputs)
		}
	}
}

func TestPlansAreDisjointAndOrdered(t *testing.T) {
	p := buildLoopProgram(t, 64)
	prof, ar := profileOf(t, p, 512)
	plans := Form(p, prof, ar, DefaultOptions())
	seen := map[[2]int64]bool{}
	var prevW int64 = 1 << 62
	for _, pl := range plans {
		if pl.EstimatedWeight > prevW {
			t.Fatal("plans must be ordered by weight")
		}
		prevW = pl.EstimatedWeight
		for _, b := range pl.Blocks {
			key := [2]int64{int64(pl.Func), int64(b)}
			if seen[key] {
				t.Fatalf("block b%d claimed twice", b)
			}
			seen[key] = true
		}
	}
}

func TestMaxRegionsCap(t *testing.T) {
	p := buildLoopProgram(t, 64)
	prof, ar := profileOf(t, p, 512)
	opts := DefaultOptions()
	opts.MaxRegions = 1
	plans := Form(p, prof, ar, opts)
	if len(plans) > 1 {
		t.Fatalf("MaxRegions=1 but got %d plans", len(plans))
	}
}
