package region

import "ccr/internal/ir"

// formCyclic selects cyclic reusable regions: inner-nested loops whose
// bodies are deterministic computation and whose profiled invocations both
// recur (> 40 % reuse opportunity) and iterate (> 60 % multi-iteration),
// per §4.4.
func (c *funcCtx) formCyclic(minWeight int64) []*Plan {
	var plans []*Plan
	for _, l := range c.loops {
		if !l.Inner() {
			continue
		}
		blocks := map[ir.BlockID]bool{}
		ok := true
		for _, b := range l.Blocks {
			if c.claimed[b] {
				ok = false
				break
			}
			blocks[b] = true
		}
		if !ok {
			continue
		}
		// Deterministic computation: every member block must be free of
		// stores, calls and non-determinable loads.
		for _, b := range l.Blocks {
			if !c.deterministicBlock(b) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		lp := c.prof.Loop(c.f.ID, l.Header)
		if lp == nil || lp.Invocations == 0 {
			continue
		}
		if lp.ReuseOpportunity() <= c.opts.CyclicReuseOpportunity {
			continue
		}
		if lp.MultiIterRatio() <= c.opts.CyclicMultiIter {
			continue
		}
		headerWeight := c.prof.BlockExec(c.f.ID, l.Header)
		if headerWeight < minWeight {
			continue
		}
		cont, found := c.bestContinuation(blocks)
		if !found {
			continue
		}
		s, detOK := c.summarize(blocks, l.Header, cont)
		if !detOK || !c.fitsCaps(s) {
			continue
		}
		for _, b := range l.Blocks {
			c.claimed[b] = true
		}
		plans = append(plans, &Plan{
			Func:            c.f.ID,
			Kind:            ir.Cyclic,
			Class:           s.Class,
			Blocks:          append([]ir.BlockID(nil), l.Blocks...),
			Entry:           l.Header,
			Continuation:    cont,
			Inputs:          s.Inputs,
			Outputs:         s.Outputs,
			MemObjects:      s.Mems,
			StaticSize:      s.Size,
			EstimatedWeight: lp.Invocations,
		})
	}
	return plans
}

// deterministicBlock checks only the hard region-legality conditions
// (no stores, calls, returns; loads determinable), without the profile
// heuristics — cyclic regions are gated by the loop recurrence profile
// instead of per-instruction invariance.
func (c *funcCtx) deterministicBlock(b ir.BlockID) bool {
	blk := c.f.Blocks[b]
	for i := range blk.Instrs {
		in := &blk.Instrs[i]
		switch in.Op {
		case ir.St, ir.Call, ir.Ret, ir.Inval, ir.Reuse:
			return false
		case ir.Ld:
			if !in.Attr.Has(ir.AttrDeterminable) || in.Mem == ir.NoMem {
				return false
			}
		}
	}
	return true
}
