package region

import (
	"ccr/internal/analysis"
	"ccr/internal/ir"
	"ccr/internal/vprof"
)

// funcCtx bundles the per-function analyses formation consults.
type funcCtx struct {
	prog  *ir.Program
	f     *ir.Func
	g     *analysis.CFG
	dom   *analysis.DomTree
	loops []*analysis.Loop
	lv    *analysis.Liveness
	prof  *vprof.Profile
	opts  Options

	// claimed marks blocks already owned by a selected region.
	claimed []bool
	// use/def are per-block upward-exposed uses and definitions.
	use, def []analysis.RegSet
	// admissibleMemo caches blockAdmissible results.
	admissibleMemo []int8 // 0 unknown, 1 yes, -1 no
}

func newFuncCtx(prog *ir.Program, f *ir.Func, prof *vprof.Profile, opts Options) *funcCtx {
	g := analysis.BuildCFG(f)
	dom := analysis.BuildDomTree(g)
	c := &funcCtx{
		prog:           prog,
		f:              f,
		g:              g,
		dom:            dom,
		loops:          analysis.FindLoops(g, dom),
		lv:             analysis.ComputeLiveness(g),
		prof:           prof,
		opts:           opts,
		claimed:        make([]bool, len(f.Blocks)),
		use:            make([]analysis.RegSet, len(f.Blocks)),
		def:            make([]analysis.RegSet, len(f.Blocks)),
		admissibleMemo: make([]int8, len(f.Blocks)),
	}
	var uses []ir.Reg
	for _, b := range f.Blocks {
		u := analysis.NewRegSet(f.NumRegs)
		d := analysis.NewRegSet(f.NumRegs)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			uses = in.Uses(uses[:0])
			for _, r := range uses {
				if !d.Has(r) {
					u.Add(r)
				}
			}
			if dr := in.Def(); dr != ir.NoReg {
				d.Add(dr)
			}
		}
		c.use[b.ID] = u
		c.def[b.ID] = d
	}
	return c
}

func (c *funcCtx) ref(b ir.BlockID, i int) ir.InstrRef {
	return ir.InstrRef{Func: c.f.ID, Block: b, Index: i}
}

// trivialInvariance reports opcodes whose reuse requires no value profile:
// they always produce the same result for the same position in a path.
func trivialInvariance(op ir.Opcode) bool {
	switch op {
	case ir.MovI, ir.Lea, ir.Nop, ir.Jmp:
		return true
	}
	return false
}

// blockAdmissible reports whether every instruction of block b may live in
// a deterministic computation region and enough of them individually
// satisfy the reuse heuristics (§4.4, adapted to block granularity).
func (c *funcCtx) blockAdmissible(b ir.BlockID) bool {
	switch c.admissibleMemo[b] {
	case 1:
		return true
	case -1:
		return false
	}
	ok := c.blockAdmissibleUncached(b)
	if ok {
		c.admissibleMemo[b] = 1
	} else {
		c.admissibleMemo[b] = -1
	}
	return ok
}

func (c *funcCtx) blockAdmissibleUncached(b ir.BlockID) bool {
	blk := c.f.Blocks[b]
	reusable, judged := 0, 0
	defined := analysis.NewRegSet(c.f.NumRegs)
	var uses []ir.Reg
	for i := range blk.Instrs {
		in := &blk.Instrs[i]
		// Live-in consumer gate: the first instruction to consume each
		// upward-exposed register must itself see recurring operands,
		// or no computation instance could ever match.
		uses = in.Uses(uses[:0])
		for _, u := range uses {
			if defined.Has(u) {
				continue
			}
			defined.Add(u) // judge each live-in at its first consumer only
			if trivialInvariance(in.Op) || in.Op == ir.Ld {
				continue
			}
			if c.prof.Invariance(c.ref(b, i), c.opts.InvariantValues) < c.opts.MinLiveInInvariance {
				return false
			}
		}
		if d := in.Def(); d != ir.NoReg {
			defined.Add(d)
		}
		switch in.Op {
		case ir.St, ir.Call, ir.Ret, ir.Inval, ir.Reuse:
			// Deterministic regions may not change memory or leave the
			// function (§4.1).
			return false
		case ir.Ld:
			if !in.Attr.Has(ir.AttrDeterminable) || in.Mem == ir.NoMem {
				return false
			}
			judged++
			obj := c.prog.Object(in.Mem)
			memOK := obj.ReadOnly || c.prof.MemReuse(c.ref(b, i)) >= c.opts.Rm
			if memOK && c.prof.Invariance(c.ref(b, i), c.opts.InvariantValues) >= c.opts.R {
				reusable++
			} else if !memOK {
				// A load of unstable memory poisons the whole block:
				// its instances would be invalidated constantly.
				return false
			}
		default:
			if trivialInvariance(in.Op) {
				continue
			}
			judged++
			if c.prof.Invariance(c.ref(b, i), c.opts.InvariantValues) >= c.opts.R {
				reusable++
			}
		}
	}
	if judged == 0 {
		return true
	}
	return float64(reusable)/float64(judged) >= c.opts.BlockReusableFrac
}

// summary describes the register and memory interface of a candidate
// region.
type summary struct {
	Inputs  []ir.Reg
	Outputs []ir.Reg
	Mems    []ir.MemID
	Size    int
	Class   ir.RegionClass
}

// summarize computes the live-in, live-out and memory-object interface of
// the candidate region formed by blocks with the given entry and
// continuation. It reports ok=false when the region reads memory it may
// not (non-determinable loads).
//
// Inputs are the registers upward-exposed at the entry along region paths
// (a region-local backward dataflow, so cyclic regions account for values
// flowing around back edges). Outputs are registers defined in the region
// that are live at the continuation.
func (c *funcCtx) summarize(blocks map[ir.BlockID]bool, entry, cont ir.BlockID) (summary, bool) {
	var s summary
	n := c.f.NumRegs
	liveIn := map[ir.BlockID]analysis.RegSet{}
	for b := range blocks {
		liveIn[b] = analysis.NewRegSet(n)
	}
	tmp := analysis.NewRegSet(n)
	for changed := true; changed; {
		changed = false
		for b := range blocks {
			tmp.Clear()
			for _, succ := range c.g.Succs[b] {
				if blocks[succ] {
					tmp.Union(liveIn[succ])
				}
			}
			tmp.Subtract(c.def[b])
			tmp.Union(c.use[b])
			if !tmp.Equal(liveIn[b]) {
				liveIn[b].CopyFrom(tmp)
				changed = true
			}
		}
	}
	s.Inputs = liveIn[entry].Members()

	defs := analysis.NewRegSet(n)
	memSeen := map[ir.MemID]bool{}
	for b := range blocks {
		defs.Union(c.def[b])
		blk := c.f.Blocks[b]
		s.Size += len(blk.Instrs)
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if in.Op != ir.Ld {
				continue
			}
			if !in.Attr.Has(ir.AttrDeterminable) || in.Mem == ir.NoMem {
				return s, false
			}
			obj := c.prog.Object(in.Mem)
			if obj.ReadOnly {
				// Static data needs no validation (§2.2's bit_count
				// array): it does not count as a distinguishable
				// memory dependence.
				continue
			}
			if !memSeen[in.Mem] {
				memSeen[in.Mem] = true
				s.Mems = append(s.Mems, in.Mem)
			}
		}
	}
	out := c.lv.LiveIn[cont].Clone()
	outs := make([]ir.Reg, 0, 8)
	for _, r := range out.Members() {
		if defs.Has(r) {
			outs = append(outs, r)
		}
	}
	s.Outputs = outs
	if len(s.Mems) == 0 {
		s.Class = ir.Stateless
	} else {
		s.Class = ir.MemoryDependent
	}
	return s, true
}

// fitsCaps checks the bank-size and accordance limits.
func (c *funcCtx) fitsCaps(s summary) bool {
	return len(s.Inputs) <= c.opts.MaxInputs &&
		len(s.Outputs) <= c.opts.MaxOutputs &&
		len(s.Mems) <= c.opts.MaxMemObjects
}

// acyclicSubgraph reports whether the region subgraph restricted to blocks
// has no cycles.
func (c *funcCtx) acyclicSubgraph(blocks map[ir.BlockID]bool) bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[ir.BlockID]int{}
	var dfs func(ir.BlockID) bool
	dfs = func(b ir.BlockID) bool {
		color[b] = grey
		for _, s := range c.g.Succs[b] {
			if !blocks[s] {
				continue
			}
			switch color[s] {
			case grey:
				return false
			case white:
				if !dfs(s) {
					return false
				}
			}
		}
		color[b] = black
		return true
	}
	for b := range blocks {
		if color[b] == white {
			if !dfs(b) {
				return false
			}
		}
	}
	return true
}

// outsideSuccs returns, for each block outside the region that region
// blocks branch or fall through to, the total profiled edge weight into it.
func (c *funcCtx) outsideSuccs(blocks map[ir.BlockID]bool) map[ir.BlockID]int64 {
	out := map[ir.BlockID]int64{}
	for b := range blocks {
		blk := c.f.Blocks[b]
		t := blk.Terminator()
		for _, succ := range c.g.Succs[b] {
			if blocks[succ] {
				continue
			}
			var w int64
			switch {
			case t != nil && t.Op.IsCondBranch():
				taken := t.Target == succ
				w = c.prof.EdgeWeight(c.ref(b, len(blk.Instrs)-1), taken)
			default:
				w = c.prof.BlockExec(c.f.ID, b)
			}
			out[succ] += w
		}
	}
	return out
}

// bestContinuation picks the highest-weight outside successor.
func (c *funcCtx) bestContinuation(blocks map[ir.BlockID]bool) (ir.BlockID, bool) {
	outs := c.outsideSuccs(blocks)
	best := ir.NoBlock
	var bestW int64 = -1
	for b, w := range outs {
		if w > bestW || (w == bestW && b < best) {
			best, bestW = b, w
		}
	}
	return best, best != ir.NoBlock
}
