package region

import (
	"sort"

	"ccr/internal/alias"
	"ccr/internal/ir"
	"ccr/internal/vprof"
)

// Form runs RCR formation over the whole program: function-level
// formation first (when enabled), then cyclic and acyclic formation per
// function (§4.4). The returned plans are ordered by descending estimated
// weight; the transformer assigns region identifiers in plan order, so the
// hottest regions receive the least conflict-prone CRB indices.
//
// The program must already carry alias annotations (alias.Analyze +
// Annotate) — formation trusts the AttrDeterminable bits; ar supplies the
// interprocedural summaries function-level selection needs (it may be nil
// when FunctionLevel is off).
func Form(prog *ir.Program, prof *vprof.Profile, ar *alias.Result, opts Options) []*Plan {
	minWeight := int64(opts.MinExecFrac * float64(prof.TotalDyn))
	if minWeight < 1 {
		minWeight = 1
	}
	var plans []*Plan
	if opts.FunctionLevel && ar != nil {
		plans = append(plans, formFuncLevel(prog, prof, ar, opts, minWeight)...)
	}
	for _, f := range prog.Funcs {
		if len(f.Blocks) == 0 {
			continue
		}
		c := newFuncCtx(prog, f, prof, opts)
		plans = append(plans, c.formCyclic(minWeight)...)
		// Grow without a per-function budget; the global MaxRegions cap
		// is applied after weight ordering below.
		plans = append(plans, c.formAcyclic(minWeight, -1)...)
	}
	sort.SliceStable(plans, func(i, j int) bool {
		if plans[i].EstimatedWeight != plans[j].EstimatedWeight {
			return plans[i].EstimatedWeight > plans[j].EstimatedWeight
		}
		if plans[i].Func != plans[j].Func {
			return plans[i].Func < plans[j].Func
		}
		return plans[i].Entry < plans[j].Entry
	})
	if opts.MaxRegions > 0 && len(plans) > opts.MaxRegions {
		plans = plans[:opts.MaxRegions]
	}
	return plans
}
