// Package region implements Reusable Computation Region (RCR) formation
// (paper §4.3–4.4): profile-guided selection of cyclic and acyclic code
// regions whose computation the CCR hardware should memoize and reuse.
//
// The paper grows regions at instruction granularity inside the IMPACT
// compiler (including instruction reordering to enlarge reuse sequences).
// This implementation adapts the same seed/successor/predecessor/
// subordinate-path growth procedure to basic-block granularity: regions are
// connected sets of whole basic blocks with a single inception point and a
// single designated continuation, which is exactly the "single starting
// point and a single ending point" contract §2.2 argues is the most
// practical to convey to hardware. Side entrances (entry points) and side
// exits are permitted and annotated, as in the paper.
package region

import "ccr/internal/ir"

// Options are the formation thresholds. The defaults are the paper's
// empirical settings (§4.4): R = Rm = 0.65 with five invariant values, at
// most eight live-in and eight live-out registers, at most four
// distinguishable memory objects, and the 40 % / 60 % cyclic gates.
type Options struct {
	// R is the minimum instruction invariance for a reusable instruction
	// (heuristic function 1).
	R float64
	// Rm is the minimum memory-reuse ratio for a reusable load
	// (heuristic function 2).
	Rm float64
	// InvariantValues is k in Invariance_R[k] (the paper uses five).
	InvariantValues int
	// MaxInputs and MaxOutputs bound the region live-in/live-out register
	// counts to the computation-instance bank size.
	MaxInputs, MaxOutputs int
	// MaxMemObjects is the region-accordance cap on distinguishable
	// memory objects.
	MaxMemObjects int
	// LikelyEdge is the control-flow-likely threshold: a successor is
	// followed when its edge carries at least this fraction of the
	// branch's weight (the paper uses 60 %).
	LikelyEdge float64
	// CyclicReuseOpportunity and CyclicMultiIter gate cyclic regions:
	// reuse opportunity > 40 % and multi-iteration invocations > 60 %.
	CyclicReuseOpportunity float64
	CyclicMultiIter        float64
	// MinStaticSize discards trivially small acyclic regions.
	MinStaticSize int
	// MinExecFrac discards seeds whose block weight is below this
	// fraction of the profiled dynamic instruction count.
	MinExecFrac float64
	// MaxRegions caps the number of regions formed per program
	// (0 = unlimited). Region identifiers index the CRB directly, so
	// forming vastly more regions than CRB entries only creates conflict
	// misses.
	MaxRegions int
	// BlockReusableFrac is the fraction of a block's instructions that
	// must individually satisfy the reuse heuristics for the block to be
	// admissible to a region at block granularity.
	BlockReusableFrac float64
	// FunctionLevel enables the §6 extension: calls to pure functions
	// with recurring arguments become function-level reuse regions. Off
	// by default (the paper's evaluated configuration).
	FunctionLevel bool
	// MinLiveInInvariance gates the instructions that consume a block's
	// upward-exposed (live-in) registers: a reuse hit requires *all*
	// recorded inputs to match, so if any live-in consumer almost never
	// sees repeated operands the region would miss on every lookup. This
	// is the region-input side of §4.4's input-overlap heuristic.
	MinLiveInInvariance float64
}

// DefaultOptions returns the paper's empirical settings.
func DefaultOptions() Options {
	return Options{
		R:                      0.65,
		Rm:                     0.65,
		InvariantValues:        5,
		MaxInputs:              ir.RegionBankSize,
		MaxOutputs:             ir.RegionBankSize,
		MaxMemObjects:          ir.RegionMaxMemObjects,
		LikelyEdge:             0.60,
		CyclicReuseOpportunity: 0.40,
		CyclicMultiIter:        0.60,
		MinStaticSize:          6,
		MinExecFrac:            0.000003,
		MaxRegions:             0,
		BlockReusableFrac:      0.5,
		MinLiveInInvariance:    0.40,
	}
}

// Plan describes one selected region on the *base* program; the xform
// package realizes plans by rewriting the code. Blocks lists the member
// blocks; Entry is the single starting block (the inception block is
// inserted immediately before it); Continuation is the block finish edges
// lead to.
type Plan struct {
	Func         ir.FuncID
	Kind         ir.RegionKind
	Class        ir.RegionClass
	Blocks       []ir.BlockID
	Entry        ir.BlockID
	Continuation ir.BlockID
	Inputs       []ir.Reg
	Outputs      []ir.Reg
	MemObjects   []ir.MemID
	StaticSize   int

	// Function-level plans (Kind == FuncLevel) memoize the call at
	// CallSite to Callee; Blocks/Entry/Continuation are assigned by the
	// transformer after it splits the call into its own block.
	CallSite ir.InstrRef
	Callee   ir.FuncID

	// EstimatedWeight is the profiled execution weight of the region
	// (entry block executions), used for reporting and seed ordering.
	EstimatedWeight int64
}

// HasBlock reports whether b is a member block of the plan.
func (p *Plan) HasBlock(b ir.BlockID) bool {
	for _, x := range p.Blocks {
		if x == b {
			return true
		}
	}
	return false
}
