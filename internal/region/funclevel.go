package region

import (
	"ccr/internal/alias"
	"ccr/internal/ir"
	"ccr/internal/vprof"
)

// formFuncLevel implements the paper's §6 compiler-domain future work:
// directing the CCR at the function level, so one reuse eliminates an
// entire call — calling convention, body and return included.
//
// A callee qualifies when it is *pure computation* under the same rules as
// region membership, applied transitively: no stores (named or anonymous),
// no anonymous loads, at most MaxMemObjects writable objects read, and at
// most MaxInputs parameters. A call site is selected when it is hot and
// its argument values recur (the Reuse(i) heuristic applied to the call).
func formFuncLevel(prog *ir.Program, prof *vprof.Profile, ar *alias.Result, opts Options, minWeight int64) []*Plan {
	pure := map[ir.FuncID][]ir.MemID{}
	for _, g := range prog.Funcs {
		if g.ID == prog.Main {
			continue
		}
		if ar.AnonMayStore[g.ID] || ar.MayStore[g.ID].Count() > 0 || ar.AnonMayLoad[g.ID] {
			continue
		}
		if g.NumParams > opts.MaxInputs {
			continue
		}
		// The whole call must be worth memoizing.
		if g.NumInstrs() < opts.MinStaticSize {
			continue
		}
		var writable []ir.MemID
		for _, m := range ar.MayLoad[g.ID].Members() {
			if !prog.Object(m).ReadOnly {
				writable = append(writable, m)
			}
		}
		if len(writable) > opts.MaxMemObjects {
			continue
		}
		pure[g.ID] = writable
	}
	if len(pure) == 0 {
		return nil
	}

	var plans []*Plan
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.Call {
					continue
				}
				mems, ok := pure[in.Callee]
				if !ok {
					continue
				}
				ref := ir.InstrRef{Func: f.ID, Block: b.ID, Index: i}
				w := prof.Exec(ref)
				if w < minWeight {
					continue
				}
				if prof.Invariance(ref, opts.InvariantValues) < opts.R {
					continue
				}
				inputs := dedupRegs(in.Args)
				if len(inputs) > opts.MaxInputs {
					continue
				}
				var outputs []ir.Reg
				if in.Dest != ir.NoReg {
					outputs = []ir.Reg{in.Dest}
				}
				class := ir.Stateless
				if len(mems) > 0 {
					class = ir.MemoryDependent
				}
				plans = append(plans, &Plan{
					Func:            f.ID,
					Kind:            ir.FuncLevel,
					Class:           class,
					CallSite:        ref,
					Callee:          in.Callee,
					Inputs:          inputs,
					Outputs:         outputs,
					MemObjects:      append([]ir.MemID(nil), mems...),
					StaticSize:      prog.Func(in.Callee).NumInstrs(),
					EstimatedWeight: w,
				})
			}
		}
	}
	return plans
}

func dedupRegs(rs []ir.Reg) []ir.Reg {
	var out []ir.Reg
	for _, r := range rs {
		dup := false
		for _, o := range out {
			if o == r {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, r)
		}
	}
	return out
}
