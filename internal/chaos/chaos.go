// Package chaos is a deterministic, seeded fault injector for the
// Computation Reuse Buffer. An Injector wraps the real *crb.CRB behind the
// emulator's ReuseBuffer interface and perturbs one class of hardware
// fault per run: corrupted recorded outputs, dropped invalidations, stale
// memory-valid bits, spurious input matches, or entries reclaimed while
// being read.
//
// The injector exists to prove the transparency oracle (internal/oracle)
// is non-vacuous: every fault class it can introduce violates the paper's
// §3.1 architectural-invisibility contract in a way the oracle's
// differential check must detect. It is a test instrument — nothing in
// the production pipeline constructs one.
package chaos

import (
	"fmt"

	"ccr/internal/crb"
	"ccr/internal/ir"
)

// Fault selects the injected fault class.
type Fault int

const (
	// None delegates every operation unchanged (control runs).
	None Fault = iota
	// CorruptOutput flips a bit in one recorded output value at commit,
	// modelling a bad write into the instance's output bank.
	CorruptOutput
	// DropInvalidation swallows computation-invalidate operations,
	// modelling a lost invalidation message.
	DropInvalidation
	// StaleMemValid resurrects a properly invalidated memory-dependent
	// instance on a later input-matching lookup, modelling a stuck
	// memory-valid bit.
	StaleMemValid
	// SpuriousHit satisfies a missing lookup from a recorded instance
	// whose inputs do NOT match, modelling a broken input comparator.
	SpuriousHit
	// EvictDuringRead returns a hit whose output bank was already
	// reclaimed, modelling an entry evicted while being read.
	EvictDuringRead
)

// AllFaults lists every injectable fault class (excluding None).
var AllFaults = []Fault{CorruptOutput, DropInvalidation, StaleMemValid, SpuriousHit, EvictDuringRead}

func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case CorruptOutput:
		return "corrupt-output"
	case DropInvalidation:
		return "drop-invalidation"
	case StaleMemValid:
		return "stale-mem-valid"
	case SpuriousHit:
		return "spurious-hit"
	case EvictDuringRead:
		return "evict-during-read"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Config selects what to inject and when. Injection sites are chosen by a
// seeded splitmix64 stream, so a (Fault, Seed, Rate) triple reproduces the
// exact same fault schedule on every run.
type Config struct {
	Fault Fault
	Seed  uint64
	// Rate is the probability an eligible operation is faulted; the zero
	// value means 1 (every eligible operation).
	Rate float64
}

// Stats counts injector activity.
type Stats struct {
	// Eligible counts operations the fault class could have perturbed;
	// Injected counts the ones actually perturbed.
	Eligible, Injected int
}

// sampler is the seeded fault scheduler shared by the CRB and DTM
// injectors: a splitmix64 stream plus the Rate gate and counters.
type sampler struct {
	cfg   Config
	state uint64
	stats Stats
}

// next advances the seeded splitmix64 stream.
func (s *sampler) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// fire decides whether the current eligible operation is faulted.
func (s *sampler) fire() bool {
	s.stats.Eligible++
	rate := s.cfg.Rate
	if rate <= 0 {
		rate = 1
	}
	if rate < 1 && float64(s.next()>>11)/float64(1<<53) >= rate {
		return false
	}
	s.stats.Injected++
	return true
}

// Injector wraps a CRB, injecting the configured fault class. It
// implements emu.ReuseBuffer.
type Injector struct {
	sampler
	crb *crb.CRB
	// shadow holds copies of committed instances per region, the raw
	// material for StaleMemValid and SpuriousHit resurrections.
	shadow map[ir.RegionID][]crb.Instance
}

// shadowCap bounds the retained instance copies per region.
const shadowCap = 64

// Wrap builds an injector around c.
func Wrap(c *crb.CRB, cfg Config) *Injector {
	return &Injector{sampler: sampler{cfg: cfg, state: cfg.Seed}, crb: c, shadow: map[ir.RegionID][]crb.Instance{}}
}

// Stats returns the injection counters.
func (in *Injector) Stats() Stats { return in.stats }

// cloneInstance deep-copies an instance so perturbing the copy never
// corrupts real CRB state.
func cloneInstance(ci *crb.Instance) crb.Instance {
	out := *ci
	out.Inputs = append([]crb.RegVal(nil), ci.Inputs...)
	out.Outputs = append([]crb.RegVal(nil), ci.Outputs...)
	return out
}

// Lookup delegates to the CRB, then perturbs the outcome for the
// lookup-side fault classes.
func (in *Injector) Lookup(region ir.RegionID, regs []int64) (*crb.Instance, bool) {
	ci, ok := in.crb.Lookup(region, regs)
	switch in.cfg.Fault {
	case EvictDuringRead:
		if ok && in.fire() {
			// The entry was reclaimed mid-read: the output bank the
			// hardware latched is already zeroed.
			ghost := cloneInstance(ci)
			for i := range ghost.Outputs {
				ghost.Outputs[i].Val = 0
			}
			return &ghost, true
		}
	case SpuriousHit:
		if !ok {
			if sh := in.shadow[region]; len(sh) > 0 && in.fire() {
				// Input comparator failure: any recorded instance
				// "matches", inputs be damned.
				ghost := cloneInstance(&sh[0])
				return &ghost, true
			}
		}
	case StaleMemValid:
		if !ok {
			for i := range in.shadow[region] {
				sh := &in.shadow[region][i]
				if !sh.UsesMem || !inputsMatch(sh, regs) {
					continue
				}
				if in.fire() {
					// The memory-valid bit never cleared: a properly
					// invalidated instance satisfies the lookup.
					ghost := cloneInstance(sh)
					return &ghost, true
				}
				break
			}
		}
	}
	return ci, ok
}

func inputsMatch(ci *crb.Instance, regs []int64) bool {
	for _, rv := range ci.Inputs {
		if regs[rv.Reg] != rv.Val {
			return false
		}
	}
	return true
}

// Commit perturbs the recorded instance for CorruptOutput, records shadow
// copies for the resurrection faults, and delegates.
func (in *Injector) Commit(region ir.RegionID, inst crb.Instance) bool {
	if in.cfg.Fault == CorruptOutput && len(inst.Outputs) > 0 && in.fire() {
		inst = cloneInstance(&inst)
		slot := int(in.next() % uint64(len(inst.Outputs)))
		inst.Outputs[slot].Val ^= int64(in.next() | 1)
	}
	if in.cfg.Fault == StaleMemValid || in.cfg.Fault == SpuriousHit {
		if sh := in.shadow[region]; len(sh) < shadowCap {
			in.shadow[region] = append(sh, cloneInstance(&inst))
		}
	}
	return in.crb.Commit(region, inst)
}

// Invalidate swallows the operation under DropInvalidation, else
// delegates.
func (in *Injector) Invalidate(m ir.MemID) int {
	if in.cfg.Fault == DropInvalidation && in.fire() {
		return 0
	}
	return in.crb.Invalidate(m)
}
