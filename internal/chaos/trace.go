package chaos

import (
	"ccr/internal/ir"
	"ccr/internal/reuse"
)

// TraceInjector is the DTM-side fault instrument: the same five fault
// classes as the CRB Injector, expressed against the dynamic trace
// memoization buffer behind the emulator's TraceBuffer interface. It
// exists for the same reason — to prove the transparency oracle detects
// every way a trace buffer can lie — and, like the CRB injector, nothing
// in the production pipeline constructs one.
type TraceInjector struct {
	sampler
	dtm *reuse.DTM
	// scratch holds perturbed copies of hit traces so a fault never
	// corrupts real DTM state (the DTM's own scratch included).
	scratch reuse.Trace
}

// WrapTrace builds a trace injector around d.
func WrapTrace(d *reuse.DTM, cfg Config) *TraceInjector {
	return &TraceInjector{sampler: sampler{cfg: cfg, state: cfg.Seed}, dtm: d}
}

// Stats returns the injection counters.
func (in *TraceInjector) Stats() Stats { return in.stats }

// clone copies a trace into the injector's scratch so perturbations never
// write through to the DTM's internal scratch buffer.
func (in *TraceInjector) clone(tr *reuse.Trace) *reuse.Trace {
	out := &in.scratch
	out.Outputs = append(out.Outputs[:0], tr.Outputs...)
	out.NextPC = tr.NextPC
	out.Len = tr.Len
	out.UsesMem = tr.UsesMem
	return out
}

// Lookup delegates to the DTM, then perturbs the outcome for the
// lookup-side fault classes: corrupted or reclaimed output banks on a
// hit, comparator and memory-valid-bit failures resurrecting a trace on
// a miss (through the DTM's chaos seams — those states cannot be reached
// via the architectural interface).
func (in *TraceInjector) Lookup(fn ir.FuncID, head int32, regs []int64) (*reuse.Trace, bool) {
	tr, ok := in.dtm.Lookup(fn, head, regs)
	switch in.cfg.Fault {
	case CorruptOutput:
		if ok && len(tr.Outputs) > 0 && in.fire() {
			ghost := in.clone(tr)
			slot := int(in.next() % uint64(len(ghost.Outputs)))
			ghost.Outputs[slot].Val ^= int64(in.next() | 1)
			return ghost, true
		}
	case EvictDuringRead:
		if ok && in.fire() {
			ghost := in.clone(tr)
			for i := range ghost.Outputs {
				ghost.Outputs[i].Val = 0
			}
			return ghost, true
		}
	case SpuriousHit:
		if !ok {
			if any, found := in.dtm.LookupAny(fn, head); found && in.fire() {
				return in.clone(any), true
			}
		}
	case StaleMemValid:
		if !ok {
			if stale, found := in.dtm.LookupStale(fn, head, regs); found && in.fire() {
				return in.clone(stale), true
			}
		}
	}
	return tr, ok
}

// Begin delegates unchanged.
func (in *TraceInjector) Begin(fn ir.FuncID, head int32, regs []int64) bool {
	return in.dtm.Begin(fn, head, regs)
}

// Complete delegates unchanged.
func (in *TraceInjector) Complete(fn ir.FuncID, landing int32, regs []int64) bool {
	return in.dtm.Complete(fn, landing, regs)
}

// Abort delegates unchanged.
func (in *TraceInjector) Abort() { in.dtm.Abort() }

// Store swallows the invalidation channel under DropInvalidation —
// a lost store notification, the DTM analogue of a lost invalidate
// message — else delegates.
func (in *TraceInjector) Store(m ir.MemID) int {
	if in.cfg.Fault == DropInvalidation && in.fire() {
		return 0
	}
	return in.dtm.Store(m)
}
