package chaos_test

import (
	"testing"

	"ccr/internal/chaos"
	"ccr/internal/crb"
	"ccr/internal/emu"
	"ccr/internal/ir"
	"ccr/internal/oracle"
)

// buildStatelessProg hand-assembles a transformed program with one
// stateless acyclic region whose live-out feeds both the final result and
// a store stream, so an injected fault surfaces in several digest
// components:
//
//	main(n):
//	  b0: k=0; acc=0
//	  b1: if k>=n goto b7
//	  b2: sel = k & 3
//	  b3: REUSE region0 → b5
//	  b4: x = sel*3; x = x+7     (region body; x live-out, end marker)
//	  b5: acc += x; out[0] = acc (continuation, store outside the region)
//	  b6: k++; goto b1
//	  b7: ret acc
func buildStatelessProg(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("chaos-stateless")
	out := pb.Object("out", 1, []int64{0})
	f := pb.Func("main", 1)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b4 := f.NewBlock()
	b5 := f.NewBlock()
	b6 := f.NewBlock()
	b7 := f.NewBlock()
	k, acc, sel, x, ptr := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	b0.MovI(k, 0)
	b0.MovI(acc, 0)
	b1.Bge(k, f.Param(0), b7.ID())
	b2.AndI(sel, k, 3)
	b3.Emit(ir.Instr{Op: ir.Reuse, Region: 0, Target: b5.ID(), Mem: ir.NoMem})
	mul := b4.MulI(x, sel, 3)
	mul.Region = 0
	mul.Attr |= ir.AttrLiveOut
	add := b4.AddI(x, x, 7)
	add.Region = 0
	add.Attr |= ir.AttrLiveOut | ir.AttrRegionEnd
	b5.Add(acc, acc, x)
	b5.Lea(ptr, out, 0)
	b5.St(ptr, 0, acc, out)
	b6.AddI(k, k, 1)
	b6.Jmp(b1.ID())
	b7.Ret(acc)
	p := pb.Build()
	p.Regions = []*ir.Region{{
		ID: 0, Func: f.ID(), Class: ir.Stateless, Kind: ir.Acyclic,
		Inception: b3.ID(), Body: b4.ID(), Continuation: b5.ID(),
		Inputs: []ir.Reg{sel}, Outputs: []ir.Reg{x}, StaticSize: 2,
	}}
	p.Link()
	return ir.MustVerify(p)
}

// buildMemDepProg is the invalidation scenario: a memory-dependent region
// loads tab[sel], and every 16th iteration a store mutates tab[1] followed
// by the compiler-placed Inval. Dropping the invalidation or resurrecting
// an invalidated instance makes the region return stale loads.
func buildMemDepProg(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("chaos-memdep")
	tab := pb.Object("tab", 4, []int64{10, 20, 30, 40})
	f := pb.Func("main", 1)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b4 := f.NewBlock()
	b5 := f.NewBlock()
	b6 := f.NewBlock()
	bm := f.NewBlock()
	b7 := f.NewBlock()
	k, acc, sel, x, ptr := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	b0.MovI(k, 0)
	b0.MovI(acc, 0)
	b1.Bge(k, f.Param(0), b7.ID())
	b2.AndI(sel, k, 3)
	b3.Emit(ir.Instr{Op: ir.Reuse, Region: 0, Target: b5.ID(), Mem: ir.NoMem})
	lea := b4.LeaIdx(ptr, tab, sel, 0)
	lea.Region = 0
	ld := b4.Ld(x, ptr, 0, tab)
	ld.Region = 0
	ld.Attr |= ir.AttrDeterminable | ir.AttrLiveOut
	end := b4.AddI(x, x, 0)
	end.Region = 0
	end.Attr |= ir.AttrLiveOut | ir.AttrRegionEnd
	b5.Add(acc, acc, x)
	tail := f.NewReg()
	b6.AndI(tail, k, 15)
	b6.AddI(k, k, 1)
	b6.BneI(tail, 15, b1.ID())
	bm.Lea(ptr, tab, 1)
	bm.St(ptr, 0, k, tab)
	bm.Emit(ir.Instr{Op: ir.Inval, Mem: tab})
	bm.Jmp(b1.ID())
	b7.Ret(acc)
	p := pb.Build()
	p.Regions = []*ir.Region{{
		ID: 0, Func: f.ID(), Class: ir.MemoryDependent, Kind: ir.Acyclic,
		Inception: b3.ID(), Body: b4.ID(), Continuation: b5.ID(),
		Inputs: []ir.Reg{sel}, Outputs: []ir.Reg{x},
		MemObjects: []ir.MemID{tab}, StaticSize: 3,
	}}
	p.Link()
	return ir.MustVerify(p)
}

// digest runs p with the given reuse buffer (nil = CRB off) and returns
// its architectural digest.
func digest(t *testing.T, p *ir.Program, buf emu.ReuseBuffer, n int64) oracle.Digest {
	t.Helper()
	m := emu.New(p)
	if buf != nil {
		m.CRB = buf
	}
	col := oracle.NewCollector(p)
	m.Trace = col.Tracer()
	res, err := m.Run(n)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return col.Finish(res, m.Mem)
}

func crbConfig() crb.Config { return crb.Config{Entries: 8, Instances: 4} }

// TestOracleDetectsEveryFaultClass is the non-vacuousness proof of the
// transparency oracle: for every injectable fault class, a seeded injector
// perturbs at least one operation and the differential check reports a
// divergence against the CRB-off reference run.
func TestOracleDetectsEveryFaultClass(t *testing.T) {
	for _, fault := range chaos.AllFaults {
		fault := fault
		t.Run(fault.String(), func(t *testing.T) {
			var p *ir.Program
			var n int64
			switch fault {
			case chaos.DropInvalidation, chaos.StaleMemValid:
				p, n = buildMemDepProg(t), 128
			default:
				p, n = buildStatelessProg(t), 100
			}
			ref := digest(t, p, nil, n)
			inj := chaos.Wrap(crb.New(crbConfig(), p), chaos.Config{Fault: fault, Seed: 1})
			got := digest(t, p, inj, n)
			if st := inj.Stats(); st.Injected == 0 {
				t.Fatalf("injector never fired (eligible %d)", st.Eligible)
			}
			err := oracle.Compare(ref, got)
			if err == nil {
				t.Fatalf("oracle missed fault %v: digest %+v", fault, got)
			}
			t.Logf("detected: %v", err)
		})
	}
}

// TestCleanRunsPassTheOracle is the control: without faults — a bare CRB
// and a None-configured injector — the transparency check holds, and the
// injector is bit-transparent (identical digest to the bare CRB, trace
// checksum included).
func TestCleanRunsPassTheOracle(t *testing.T) {
	for _, build := range []struct {
		name string
		prog func(*testing.T) *ir.Program
		n    int64
	}{
		{"stateless", buildStatelessProg, 100},
		{"memdep", buildMemDepProg, 128},
	} {
		t.Run(build.name, func(t *testing.T) {
			p := build.prog(t)
			ref := digest(t, p, nil, build.n)
			clean := digest(t, p, crb.New(crbConfig(), p), build.n)
			if err := oracle.Compare(ref, clean); err != nil {
				t.Fatalf("clean CRB run diverged: %v", err)
			}
			inj := chaos.Wrap(crb.New(crbConfig(), p), chaos.Config{Fault: chaos.None, Seed: 1})
			none := digest(t, p, inj, build.n)
			if err := oracle.Compare(ref, none); err != nil {
				t.Fatalf("None injector diverged: %v", err)
			}
			if !none.Equal(clean) {
				t.Fatalf("None injector not bit-transparent:\nclean %+v\nnone  %+v", clean, none)
			}
			if st := inj.Stats(); st.Injected != 0 {
				t.Fatalf("None injector injected %d faults", st.Injected)
			}
		})
	}
}

// TestInjectionRateSampling checks the seeded Rate gate: at Rate 0.5 the
// injector fires on some but not all eligible operations, and the same
// seed reproduces the same schedule.
func TestInjectionRateSampling(t *testing.T) {
	p := buildStatelessProg(t)
	run := func(seed uint64) (chaos.Stats, oracle.Digest) {
		inj := chaos.Wrap(crb.New(crbConfig(), p), chaos.Config{
			Fault: chaos.EvictDuringRead, Seed: seed, Rate: 0.5,
		})
		d := digest(t, p, inj, 400)
		return inj.Stats(), d
	}
	st, d1 := run(7)
	if st.Injected == 0 || st.Injected == st.Eligible {
		t.Fatalf("rate 0.5 should fire on some but not all: %+v", st)
	}
	st2, d2 := run(7)
	if st != st2 || !d1.Equal(d2) {
		t.Fatalf("same seed not reproducible: %+v vs %+v", st, st2)
	}
}
