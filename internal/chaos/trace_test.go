package chaos_test

import (
	"testing"

	"ccr/internal/chaos"
	"ccr/internal/emu"
	"ccr/internal/ir"
	"ccr/internal/oracle"
	"ccr/internal/reuse"
)

// buildRunProg hand-assembles a base program (no compiler regions) whose
// hot loop contains one DTM-eligible straight-line run with a small,
// recurring input domain, so the trace buffer forms and replays traces:
//
//	main(n):
//	  b0: k=0; acc=0
//	  b1: if k>=n goto b5
//	  b2: sel = k & 3; jmp b3
//	  b3: x = sel*3; x = x+7; x = x+sel; jmp b4   (the eligible run)
//	  b4: acc += x; out[0] = acc; k++; jmp b1     (St keeps b4 ineligible)
//	  b5: ret acc
func buildRunProg(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("chaos-run")
	out := pb.Object("out", 1, []int64{0})
	f := pb.Func("main", 1)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b4 := f.NewBlock()
	b5 := f.NewBlock()
	k, acc, sel, x, ptr := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	b0.MovI(k, 0)
	b0.MovI(acc, 0)
	b1.Bge(k, f.Param(0), b5.ID())
	b2.AndI(sel, k, 3)
	b2.Jmp(b3.ID())
	b3.MulI(x, sel, 3)
	b3.AddI(x, x, 7)
	b3.Add(x, x, sel)
	b3.Jmp(b4.ID())
	b4.Add(acc, acc, x)
	b4.Lea(ptr, out, 0)
	b4.St(ptr, 0, acc, out)
	b4.AddI(k, k, 1)
	b4.Jmp(b1.ID())
	b5.Ret(acc)
	p := pb.Build()
	p.Link()
	return ir.MustVerify(p)
}

// buildMemRunProg is the store-invalidation scenario: the eligible run
// loads tab[sel], and every 16th iteration a store mutates tab[1]. A
// correct DTM kills the memory-valid bits on that store and recomputes;
// dropping the store notification or resurrecting an invalidated trace
// serves stale loads.
//
//	main(n):
//	  b0: k=0; acc=0
//	  b1: if k>=n goto b6
//	  b2: sel = k & 3; jmp b3
//	  b3: ptr = &tab[sel]; x = tab[sel]; x = x+0; jmp b4   (the run)
//	  b4: acc += x; tail = k & 15; k++; if tail != 15 goto b1
//	  b5: tab[1] = k; jmp b1
//	  b6: ret acc
func buildMemRunProg(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("chaos-memrun")
	tab := pb.Object("tab", 4, []int64{10, 20, 30, 40})
	f := pb.Func("main", 1)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b4 := f.NewBlock()
	b5 := f.NewBlock()
	b6 := f.NewBlock()
	k, acc, sel, x, ptr, tail := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	b0.MovI(k, 0)
	b0.MovI(acc, 0)
	b1.Bge(k, f.Param(0), b6.ID())
	b2.AndI(sel, k, 3)
	b2.Jmp(b3.ID())
	b3.LeaIdx(ptr, tab, sel, 0)
	b3.Ld(x, ptr, 0, tab)
	b3.AddI(x, x, 0)
	b3.Jmp(b4.ID())
	b4.Add(acc, acc, x)
	b4.AndI(tail, k, 15)
	b4.AddI(k, k, 1)
	b4.BneI(tail, 15, b1.ID())
	b5.Lea(ptr, tab, 1)
	b5.St(ptr, 0, k, tab)
	b5.Jmp(b1.ID())
	b6.Ret(acc)
	p := pb.Build()
	p.Link()
	return ir.MustVerify(p)
}

// digestDTM runs p with the given trace buffer (nil = DTM off) and
// returns its architectural digest.
func digestDTM(t *testing.T, p *ir.Program, buf emu.TraceBuffer, n int64) oracle.Digest {
	t.Helper()
	m := emu.New(p)
	if buf != nil {
		m.DTM = buf
	}
	col := oracle.NewCollector(p)
	m.Trace = col.Tracer()
	res, err := m.Run(n)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return col.Finish(res, m.Mem)
}

func dtmConfig() reuse.DTMConfig { return reuse.DefaultDTMConfig() }

// TestOracleDetectsEveryTraceFaultClass extends the non-vacuousness proof
// to the DTM backend: for every fault class, a seeded trace injector
// perturbs at least one operation and the differential check against the
// DTM-off reference run reports the divergence.
func TestOracleDetectsEveryTraceFaultClass(t *testing.T) {
	for _, fault := range chaos.AllFaults {
		fault := fault
		t.Run(fault.String(), func(t *testing.T) {
			var p *ir.Program
			var n int64
			switch fault {
			case chaos.DropInvalidation, chaos.StaleMemValid:
				p, n = buildMemRunProg(t), 256
			default:
				p, n = buildRunProg(t), 100
			}
			ref := digestDTM(t, p, nil, n)
			inj := chaos.WrapTrace(reuse.NewDTM(dtmConfig(), p), chaos.Config{Fault: fault, Seed: 1})
			got := digestDTM(t, p, inj, n)
			if st := inj.Stats(); st.Injected == 0 {
				t.Fatalf("injector never fired (eligible %d)", st.Eligible)
			}
			err := oracle.Compare(ref, got)
			if err == nil {
				t.Fatalf("oracle missed trace fault %v: digest %+v", fault, got)
			}
			t.Logf("detected: %v", err)
		})
	}
}

// TestCleanTraceRunsPassTheOracle is the DTM control: a bare DTM passes
// the transparency check, and a None-configured trace injector is
// bit-transparent — the identical digest, trace checksum and instruction
// count included, as the bare DTM run.
func TestCleanTraceRunsPassTheOracle(t *testing.T) {
	for _, build := range []struct {
		name string
		prog func(*testing.T) *ir.Program
		n    int64
	}{
		{"run", buildRunProg, 100},
		{"memrun", buildMemRunProg, 256},
	} {
		t.Run(build.name, func(t *testing.T) {
			p := build.prog(t)
			ref := digestDTM(t, p, nil, build.n)
			bare := reuse.NewDTM(dtmConfig(), p)
			clean := digestDTM(t, p, bare, build.n)
			if err := oracle.Compare(ref, clean); err != nil {
				t.Fatalf("clean DTM run diverged: %v", err)
			}
			if bare.Stats().Hits == 0 {
				t.Fatal("clean DTM run never reused a trace — the control is vacuous")
			}
			inj := chaos.WrapTrace(reuse.NewDTM(dtmConfig(), p), chaos.Config{Fault: chaos.None, Seed: 1})
			none := digestDTM(t, p, inj, build.n)
			if err := oracle.Compare(ref, none); err != nil {
				t.Fatalf("None trace injector diverged: %v", err)
			}
			if !none.Equal(clean) {
				t.Fatalf("None trace injector not bit-transparent:\nclean %+v\nnone  %+v", clean, none)
			}
			if st := inj.Stats(); st.Injected != 0 {
				t.Fatalf("None trace injector injected %d faults", st.Injected)
			}
		})
	}
}
