package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ccr/internal/buildinfo"
	"ccr/internal/core"
	"ccr/internal/crb"
	"ccr/internal/experiments"
	"ccr/internal/obsv"
	"ccr/internal/oracle"
	"ccr/internal/reuse"
	"ccr/internal/runner"
	"ccr/internal/serve/wire"
	"ccr/internal/store"
	"ccr/internal/workloads"
)

// Config configures a daemon instance.
type Config struct {
	// Jobs is the default pool width for request fan-outs (0 = GOMAXPROCS).
	Jobs int
	// ManifestPath, when set, accumulates every request fan-out into one
	// run manifest and flushes it on drain.
	ManifestPath string
	// Store, when set, layers the content-addressed artifact store under
	// every resident suite, so simulation results survive daemon restarts.
	// Scales share the one store safely: keys are content-addressed by
	// program digest, so entries from different scales never collide.
	Store *store.Store
	// Metrics, when set, registers the daemon's instruments (per-op request
	// counters and latency histograms, suite-cache and store samplers,
	// per-scheme reuse totals) on the registry the -http sidecar scrapes.
	// A nil Metrics leaves every instrument pointer nil — the zero-overhead
	// contract of DESIGN.md §9/§14.
	Metrics *obsv.Registry
	// Spans, when set, records one "serve" span per handled request into
	// the process's span log (ccrd -spans).
	Spans *obsv.SpanLog
	// Logger receives structured server logs (nil = slog.Default).
	Logger *slog.Logger
	// build overrides the handshake identity (tests only).
	build *buildinfo.Info
}

// Server is the resident simulation service. One Server owns one listener;
// connections are handled concurrently, requests within one connection in
// order (progress frames interleave with their own request only).
type Server struct {
	cfg   Config
	log   *slog.Logger
	build buildinfo.Info
	start time.Time

	mu     sync.Mutex
	suites map[string]*suiteEntry // by scale name
	conns  map[*srvConn]struct{}
	ln     net.Listener

	reqMu sync.Mutex
	reqs  map[string]int64

	// met is the registry instrumentation (nil without Config.Metrics; all
	// methods are nil-safe).
	met *srvMetrics

	// totals aggregates per-scheme reuse statistics of timed simulations;
	// always on — the top/stats ops report it with or without -http.
	totalsMu sync.Mutex
	totals   map[string]*ReuseTotals

	// active is the live table of in-flight requests behind the top op.
	activeMu sync.Mutex
	active   map[uint64]activeEntry
	activeID uint64

	inflight atomic.Int64 // requests being processed right now
	connN    atomic.Int64 // open connections
	reqWG    sync.WaitGroup
	draining atomic.Bool
	drained  chan struct{} // closed when drain completes
	drainOne sync.Once

	manifest *runner.Manifest
}

// suiteEntry is one scale's resident state: the shared experiments.Suite
// (prepare/compile/base-sim/ccr-sim/limit/digest caches over the benchmark
// set) plus a service-side cache for CCR oracle digests, which the suite
// deliberately does not cache (its verify sweep wants each point checked
// fresh) but a server hammered with identical digest requests does.
type suiteEntry struct {
	scale      workloads.Scale
	suite      *experiments.Suite
	ccrDigests *runner.Cache
}

// NewServer builds a daemon with empty caches.
func NewServer(cfg Config) *Server {
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	b := buildinfo.Get()
	if cfg.build != nil {
		b = *cfg.build
	}
	s := &Server{
		cfg:     cfg,
		log:     log,
		build:   b,
		start:   time.Now(),
		suites:  map[string]*suiteEntry{},
		conns:   map[*srvConn]struct{}{},
		reqs:    map[string]int64{},
		totals:  map[string]*ReuseTotals{},
		active:  map[uint64]activeEntry{},
		drained: make(chan struct{}),
	}
	s.manifest = runner.NewManifest("ccrd", cfg.Jobs)
	if cfg.Metrics != nil {
		s.met = newSrvMetrics(s, cfg.Metrics)
	}
	return s
}

// ParseAddr maps a CLI -addr value onto a (network, address) pair:
//
//	unix:/path/to.sock   explicit unix socket
//	tcp:host:port        explicit TCP
//	/path or ./path      unix socket (contains a path separator)
//	host:port            TCP
//
// Anything else is an error — the CLIs turn it into exit status 2.
func ParseAddr(s string) (network, addr string, err error) {
	switch {
	case s == "":
		return "", "", errors.New("serve: empty address")
	case strings.HasPrefix(s, "unix:"):
		p := strings.TrimPrefix(s, "unix:")
		if p == "" {
			return "", "", errors.New("serve: unix: address missing socket path")
		}
		return "unix", p, nil
	case strings.HasPrefix(s, "tcp:"):
		p := strings.TrimPrefix(s, "tcp:")
		if _, _, err := net.SplitHostPort(p); err != nil {
			return "", "", fmt.Errorf("serve: malformed tcp address %q: %w", p, err)
		}
		return "tcp", p, nil
	case strings.ContainsAny(s, "/\\"):
		return "unix", s, nil
	default:
		if _, _, err := net.SplitHostPort(s); err != nil {
			return "", "", fmt.Errorf("serve: address %q is neither host:port nor a socket path: %w", s, err)
		}
		return "tcp", s, nil
	}
}

// Listen opens the listener for addr (see ParseAddr). A stale unix socket
// file from a dead daemon is removed iff nothing is accepting on it.
func Listen(addrSpec string) (net.Listener, error) {
	network, addr, err := ParseAddr(addrSpec)
	if err != nil {
		return nil, err
	}
	if network == "unix" {
		if c, err := net.DialTimeout("unix", addr, 100*time.Millisecond); err == nil {
			c.Close()
			return nil, fmt.Errorf("serve: %s: another daemon is already listening", addr)
		}
		os.Remove(addr)
	}
	return net.Listen(network, addr)
}

// Serve accepts connections on ln until Drain (or a listener error). It
// returns after the accept loop stops; in-flight requests may still be
// completing — Wait for full drain.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		if s.draining.Load() {
			nc.Close()
			continue
		}
		c := &srvConn{srv: s, nc: nc, codec: wire.NewCodec(nc)}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connN.Add(1)
		go c.run()
	}
}

// ListenAndServe combines Listen and Serve.
func (s *Server) ListenAndServe(addrSpec string) error {
	ln, err := Listen(addrSpec)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// HandleSignals installs the graceful-drain handler: the first SIGTERM or
// SIGINT initiates Drain, a second one force-exits.
func (s *Server) HandleSignals(sigs ...os.Signal) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, sigs...)
	go func() {
		<-ch
		s.log.Info("ccrd: signal received, draining")
		s.Drain()
		<-ch
		s.log.Warn("ccrd: second signal, exiting immediately")
		os.Exit(1)
	}()
}

// Drain initiates graceful shutdown: the listener closes (no new
// connections), idle connections are closed, busy connections finish their
// in-flight request, send its response and close, and the run manifest is
// flushed. Drain returns immediately; Wait blocks until completion.
func (s *Server) Drain() {
	s.drainOne.Do(func() {
		s.draining.Store(true)
		s.mu.Lock()
		ln := s.ln
		conns := make([]*srvConn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		if ln != nil {
			ln.Close()
		}
		for _, c := range conns {
			c.closeIfIdle()
		}
		go func() {
			s.reqWG.Wait()
			// Whatever is left is idle now; close it so connection
			// goroutines unblock from Read.
			s.mu.Lock()
			for c := range s.conns {
				c.nc.Close()
			}
			s.mu.Unlock()
			s.flushManifest()
			close(s.drained)
		}()
	})
}

// Wait blocks until a started Drain has completed: every in-flight request
// answered, every connection closed, manifests flushed.
func (s *Server) Wait() { <-s.drained }

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) flushManifest() {
	if s.cfg.ManifestPath == "" {
		return
	}
	s.mu.Lock()
	for name, e := range s.suites {
		for cache, st := range e.suite.CacheStats() {
			s.manifest.SetCache(name+"/"+cache, st)
		}
	}
	s.mu.Unlock()
	if s.cfg.Store != nil {
		s.manifest.SetStore(s.cfg.Store.Stats())
	}
	s.manifest.Finish()
	if err := s.manifest.WriteFile(s.cfg.ManifestPath); err != nil {
		s.log.Error("ccrd: manifest flush failed", "err", err)
		return
	}
	s.log.Info("ccrd: manifest flushed", "path", s.cfg.ManifestPath)
}

// countReq bumps the per-op request counter.
func (s *Server) countReq(op string) {
	s.reqMu.Lock()
	s.reqs[op]++
	s.reqMu.Unlock()
}

// entry returns (creating on first use) the resident suite for a scale.
func (s *Server) entry(scale string) (*suiteEntry, error) {
	sc, err := workloads.ParseScale(scaleName(scale))
	if err != nil {
		return nil, err
	}
	name := scaleName(scale)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.suites[name]; ok {
		return e, nil
	}
	scfg := suiteConfig(sc, s.cfg.Jobs)
	scfg.Store = s.cfg.Store
	e := &suiteEntry{
		scale:      sc,
		suite:      experiments.NewSuite(scfg),
		ccrDigests: runner.NewCache(),
	}
	s.suites[name] = e
	s.met.registerSuite(s, name, e)
	return e, nil
}

// pool builds a per-request pool over the shared manifest, with an
// optional progress sink for streaming requests.
func (s *Server) pool(jobs int, sink runner.ProgressSink, heartbeatMS int) runner.Pool {
	if jobs <= 0 {
		jobs = s.cfg.Jobs
	}
	p := runner.Pool{Jobs: jobs, Manifest: s.manifest}
	if sink != nil {
		hb := time.Duration(heartbeatMS) * time.Millisecond
		if hb <= 0 {
			hb = 500 * time.Millisecond
		}
		if hb < 10*time.Millisecond {
			hb = 10 * time.Millisecond
		}
		p.Heartbeat = hb
		p.Sink = sink
	}
	return p
}

// srvConn is one client connection.
type srvConn struct {
	srv   *Server
	nc    net.Conn
	codec *wire.Codec
	busy  atomic.Bool
}

// closeIfIdle closes the connection unless a request is in flight; a busy
// connection instead closes itself after responding (run checks Draining).
func (c *srvConn) closeIfIdle() {
	if !c.busy.Load() {
		c.nc.Close()
	}
}

func (c *srvConn) run() {
	defer func() {
		c.nc.Close()
		s := c.srv
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.connN.Add(-1)
	}()
	if !c.handshake() {
		return
	}
	for {
		m, err := c.codec.Read()
		if err != nil {
			return // disconnect or malformed frame; the conn is done
		}
		c.busy.Store(true)
		c.srv.inflight.Add(1)
		c.srv.reqWG.Add(1)
		c.handle(m)
		c.srv.reqWG.Done()
		c.srv.inflight.Add(-1)
		c.busy.Store(false)
		if c.srv.draining.Load() {
			return
		}
	}
}

// handshake performs the hello exchange: the client speaks first, the
// server echoes its own identity. A protocol-generation mismatch is
// refused server-side; build-identity policy is the client's call.
func (c *srvConn) handshake() bool {
	m, err := c.codec.Read()
	if err != nil || m.Type != wire.TypeHello {
		c.codec.WriteError(m.ID, errors.New("serve: expected hello frame"))
		return false
	}
	var h Hello
	if err := m.Decode(&h); err != nil {
		c.codec.WriteError(m.ID, err)
		return false
	}
	if err := c.codec.Write(wire.TypeHello, "", m.ID, Hello{
		Proto: wire.ProtoVersion, Build: c.srv.build,
	}); err != nil {
		return false
	}
	if h.Proto != wire.ProtoVersion {
		c.codec.WriteError(m.ID, fmt.Errorf(
			"serve: protocol version %d unsupported (server speaks %d)", h.Proto, wire.ProtoVersion))
		return false
	}
	return true
}

// handle dispatches one request and always answers with exactly one
// result or error frame (plus progress frames for streaming requests).
// A panicking handler answers with the panic as an error — one poisoned
// request must not take the daemon down.
func (c *srvConn) handle(m wire.Msg) {
	if m.Type != wire.TypeRequest {
		c.codec.WriteError(m.ID, fmt.Errorf("serve: unexpected frame type %q", m.Type))
		return
	}
	s := c.srv
	s.countReq(m.Op)
	began := time.Now()
	spanStart := s.cfg.Spans.Now()
	aid := s.trackActive(m.Op)
	failed := false
	// Registered before the recover defer so it runs after recovery and
	// observes panics as failures too.
	defer func() {
		s.untrackActive(aid)
		s.met.observe(m.Op, time.Since(began), failed)
		errMsg := ""
		if failed {
			errMsg = "error"
		}
		s.cfg.Spans.EmitPhase(m.Op, "serve", "", -1, spanStart, errMsg)
	}()
	defer func() {
		if r := recover(); r != nil {
			failed = true
			s.log.Error("ccrd: handler panic", "op", m.Op, "panic", r,
				"stack", string(debug.Stack()))
			c.codec.WriteError(m.ID, fmt.Errorf("serve: %s handler panicked: %v", m.Op, r))
		}
	}()
	var (
		resp any
		err  error
	)
	switch m.Op {
	case OpPing:
		var b PingBody
		if err = m.Decode(&b); err == nil {
			resp = b
		}
	case OpCompile:
		var req CompileReq
		if err = m.Decode(&req); err == nil {
			resp, err = s.doCompile(req)
		}
	case OpSimulate:
		var req SimulateReq
		if err = m.Decode(&req); err == nil {
			resp, err = s.doSimulate(req)
		}
	case OpBatch:
		var req BatchReq
		if err = m.Decode(&req); err == nil {
			resp, err = s.doBatch(req, c.progressSink(m.ID, req.Stream), req.HeartbeatMS)
		}
	case OpSweep:
		var req SweepReq
		if err = m.Decode(&req); err == nil {
			resp, err = s.doSweep(req, c.progressSink(m.ID, req.Stream))
		}
	case OpVerify:
		var req VerifyReq
		if err = m.Decode(&req); err == nil {
			resp, err = s.doVerify(req, c.progressSink(m.ID, req.Stream))
		}
	case OpPhases:
		var req PhasesReq
		if err = m.Decode(&req); err == nil {
			resp, err = s.doPhases(req)
		}
	case OpStats:
		resp = s.doStats()
	case OpTop:
		var req TopReq
		if err = m.Decode(&req); err == nil {
			resp, err = s.doTop(req, func(snap TopSnapshot) error {
				return c.codec.Write(wire.TypeProgress, "", m.ID, snap)
			})
		}
	case OpDrain:
		resp = DrainResp{Draining: true}
		// Answer first, then begin shutdown: the requester gets its ack.
		if werr := c.codec.Write(wire.TypeResult, m.Op, m.ID, resp); werr != nil {
			s.log.Warn("ccrd: drain ack failed", "err", werr)
		}
		s.Drain()
		return
	default:
		err = fmt.Errorf("serve: unknown operation %q", m.Op)
	}
	if err != nil {
		failed = true
		c.codec.WriteError(m.ID, err)
		return
	}
	if werr := c.codec.Write(wire.TypeResult, m.Op, m.ID, resp); werr != nil {
		s.log.Warn("ccrd: response write failed", "op", m.Op, "err", werr)
	}
}

// progressSink returns a sink writing progress frames for request id, or
// nil when the request did not ask to stream.
func (c *srvConn) progressSink(id uint64, stream bool) runner.ProgressSink {
	if !stream {
		return nil
	}
	return runner.ProgressFunc(func(p runner.Progress) {
		// Progress is best-effort; a failed write surfaces on the final
		// response write anyway.
		c.codec.Write(wire.TypeProgress, "", id, progressBody(p))
	})
}

// doCompile serves a compilation summary from the resident compile cache.
func (s *Server) doCompile(req CompileReq) (*CompileResp, error) {
	start := time.Now()
	e, b, err := s.bench(req.Scale, req.Bench)
	if err != nil {
		return nil, err
	}
	cr, err := e.suite.Compiled(b)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, rg := range cr.Prog.Regions {
		n += rg.StaticSize
	}
	return &CompileResp{
		Bench: b.Name, Regions: len(cr.Prog.Regions), RegionInstrs: n,
		TrainResult: cr.TrainResult, ServerNS: time.Since(start).Nanoseconds(),
	}, nil
}

// bench resolves (scale, name) onto the resident benchmark instance.
func (s *Server) bench(scale, name string) (*suiteEntry, *workloads.Benchmark, error) {
	e, err := s.entry(scale)
	if err != nil {
		return nil, nil, err
	}
	for _, b := range e.suite.Benches {
		if b.Name == name {
			return e, b, nil
		}
	}
	return nil, nil, fmt.Errorf("serve: unknown benchmark %q (known: %s)",
		name, strings.Join(workloads.Names(), ", "))
}

// doSimulate executes one cell against the resident caches.
func (s *Server) doSimulate(req SimulateReq) (*SimulateResp, error) {
	start := time.Now()
	e, b, err := s.bench(req.Scale, req.Bench)
	if err != nil {
		return nil, err
	}
	args, dsName, err := datasetArgs(b, req.Dataset)
	if err != nil {
		return nil, err
	}
	rc, err := reuseConfig(req)
	if err != nil {
		return nil, err
	}
	resp := &SimulateResp{Bench: b.Name, Dataset: dsName, Config: "base"}
	if !req.Base {
		resp.Config = rc.Key()
	}

	if !req.NoTiming {
		var sim *core.SimResult
		if req.Base {
			sim, err = e.suite.BaseSim(b, args)
		} else {
			sim, err = e.suite.ReuseSim(b, args, rc)
		}
		if err != nil {
			return nil, err
		}
		scheme := "base"
		if !req.Base {
			scheme = string(rc.Scheme)
		}
		s.recordSim(scheme, sim)
		resp.Result = sim.Result
		resp.Cycles = sim.Cycles
		resp.Emu = EmuStats{
			DynInstrs: sim.Emu.DynInstrs, ReuseHits: sim.Emu.ReuseHits,
			ReuseMisses: sim.Emu.ReuseMisses, ReusedInstrs: sim.Emu.ReusedInstrs,
			DTMHits: sim.Emu.DTMHits, DTMReusedInstrs: sim.Emu.DTMReusedInstrs,
			MemoAborts: sim.Emu.MemoAborts, Invalidations: sim.Emu.Invalidations,
		}
		resp.CRB = sim.CRB
		resp.DTM = sim.DTM
	}
	if req.Digest || req.NoTiming {
		d, err := s.cellDigest(e, b, args, dsName, req.Base, rc)
		if err != nil {
			return nil, err
		}
		resp.Digest = &d
		if req.NoTiming {
			resp.Result = d.Result
			resp.Emu.DynInstrs = d.DynInstrs
		}
	}
	resp.ServerNS = time.Since(start).Nanoseconds()
	return resp, nil
}

// cellDigest returns the cell's functional oracle digest: the suite's
// cached base digest for baseline cells, or the server-cached scheme-run
// digest keyed by the full scheme key.
func (s *Server) cellDigest(e *suiteEntry, b *workloads.Benchmark,
	args []int64, dsName string, base bool, rc reuse.Config) (oracle.Digest, error) {
	if base {
		return e.suite.BaseDigest(b, args)
	}
	key := b.Name + "|" + dsName + "|" + rc.Key()
	v, err := e.ccrDigests.Do(key, func() (any, error) {
		d, err := e.suite.ReuseDigest(b, args, rc)
		if err != nil {
			return nil, err
		}
		return d, nil
	})
	if err != nil {
		return oracle.Digest{}, err
	}
	return v.(oracle.Digest), nil
}

// doBatch fans the cells out on a per-request pool; every cell reads (and
// warms) the shared resident caches.
func (s *Server) doBatch(req BatchReq, sink runner.ProgressSink, heartbeatMS int) (*BatchResp, error) {
	if len(req.Cells) == 0 {
		return nil, errors.New("serve: batch with no cells")
	}
	start := time.Now()
	pool := s.pool(req.Jobs, sink, heartbeatMS)
	out := make([]BatchCell, len(req.Cells))
	cells := make([]runner.Cell, len(req.Cells))
	for i := range req.Cells {
		i := i
		creq := req.Cells[i]
		cells[i] = runner.Cell{
			ID: "batch/" + simKey(creq),
			Do: func(context.Context) error {
				r, err := s.doSimulate(creq)
				if err != nil {
					return err
				}
				out[i].SimulateResp = *r
				return nil
			},
		}
	}
	results := pool.Run(context.Background(), cells)
	failed := 0
	for i := range results {
		if results[i].Err != nil {
			out[i].Err = results[i].Err.Error()
			failed++
		}
	}
	return &BatchResp{
		Results: out, Failed: failed, Jobs: pool.Jobs,
		WallSeconds: time.Since(start).Seconds(),
	}, nil
}

// doSweep runs the standard geometry grid over every benchmark × dataset.
func (s *Server) doSweep(req SweepReq, sink runner.ProgressSink) (*SweepResp, error) {
	start := time.Now()
	e, err := s.entry(req.Scale)
	if err != nil {
		return nil, err
	}
	view := e.suite.WithPool(s.pool(req.Jobs, sink, req.HeartbeatMS))
	points := experiments.VerifySweepPoints(view)
	datasets := []string{"train", "ref"}
	benches := view.Benches
	n := len(benches) * len(datasets) * len(points)
	rows := make([]SweepRow, n)
	decode := func(i int) (int, int, int) {
		np := len(points)
		return i / (len(datasets) * np), (i / np) % len(datasets), i % np
	}
	errs := view.MapErrs(n,
		func(i int) string {
			bi, di, pi := decode(i)
			return fmt.Sprintf("sweep/%s/%s/%s", benches[bi].Name, datasets[di], points[pi].Label)
		},
		func(i int) error {
			bi, di, pi := decode(i)
			b := benches[bi]
			args := b.Train
			if datasets[di] == "ref" {
				args = b.Ref
			}
			sp, err := view.SpeedupPoint(b, args, points[pi].Reuse)
			if err != nil {
				return err
			}
			rows[i] = SweepRow{Bench: b.Name, Dataset: datasets[di],
				Config: points[pi].Reuse.Key(), Speedup: sp}
			return nil
		})
	failed := 0
	for i := range errs {
		if errs[i] != nil {
			bi, di, pi := decode(i)
			rows[i] = SweepRow{Bench: benches[bi].Name, Dataset: datasets[di],
				Config: points[pi].Reuse.Key(), Err: errs[i].Error()}
			failed++
		}
	}
	return &SweepResp{Rows: rows, Failed: failed, WallSeconds: time.Since(start).Seconds()}, nil
}

// doVerify runs the transparency-verification sweep — the same
// experiments.Verify the CLI's -verify flag runs, on the resident caches.
func (s *Server) doVerify(req VerifyReq, sink runner.ProgressSink) (*VerifyResp, error) {
	start := time.Now()
	e, err := s.entry(req.Scale)
	if err != nil {
		return nil, err
	}
	view := e.suite.WithPool(s.pool(req.Jobs, sink, req.HeartbeatMS))
	v, err := experiments.Verify(view)
	if err != nil {
		return nil, err
	}
	return &VerifyResp{
		Checked: v.Checked, Rows: v.Rows,
		WallSeconds: time.Since(start).Seconds(),
	}, nil
}

// doPhases runs the warm-buffer train→ref study of one benchmark.
func (s *Server) doPhases(req PhasesReq) (*PhasesResp, error) {
	e, b, err := s.bench(req.Scale, req.Bench)
	if err != nil {
		return nil, err
	}
	cfg := crb.DefaultConfig()
	if req.CRB != nil {
		cfg = req.CRB.Config()
	}
	r, err := experiments.TrainRefPhases(e.suite, b, cfg)
	if err != nil {
		return nil, err
	}
	return &PhasesResp{Bench: r.Bench, Phases: r.Phases}, nil
}

// doStats snapshots the daemon's counters.
func (s *Server) doStats() *StatsResp {
	resp := &StatsResp{
		Build:         s.build,
		Proto:         wire.ProtoVersion,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      map[string]int64{},
		InFlight:      s.inflight.Load(),
		Conns:         s.connN.Load(),
		Draining:      s.draining.Load(),
		Suites:        map[string]SuiteStats{},
	}
	s.reqMu.Lock()
	for op, n := range s.reqs {
		resp.Requests[op] = n
	}
	s.reqMu.Unlock()
	s.mu.Lock()
	for name, e := range s.suites {
		caches := e.suite.CacheStats()
		caches["ccr_digest"] = e.ccrDigests.Stats()
		resp.Suites[name] = SuiteStats{Benches: len(e.suite.Benches), Caches: caches}
	}
	s.mu.Unlock()
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		resp.Store = &st
	}
	resp.Reuse = s.reuseSnapshot()
	return resp
}
