package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ccr/internal/buildinfo"
	"ccr/internal/serve/wire"
)

// ErrVersionMismatch marks a refused handshake: the server was built from
// a different commit than this client. ccrctl maps it to exit status 2;
// DialOptions.Force overrides it.
var ErrVersionMismatch = errors.New("serve: client/server build mismatch")

// IsVersionMismatch reports whether err is a refused version handshake.
func IsVersionMismatch(err error) bool { return errors.Is(err, ErrVersionMismatch) }

// DialError marks a connection-establishment failure — the daemon is not
// (yet) listening, the socket path is absent, the port refuses. It is the
// only error class DialRetry treats as transient: everything after the
// connect (handshake, protocol, version policy) fails fast.
type DialError struct {
	Addr string
	Err  error
}

func (e *DialError) Error() string { return fmt.Sprintf("serve: dial %s: %v", e.Addr, e.Err) }

// Unwrap exposes the underlying net error to errors.Is/As.
func (e *DialError) Unwrap() error { return e.Err }

// IsDialError reports whether err is a failure to establish the
// connection (as opposed to a refused handshake or protocol error).
func IsDialError(err error) bool {
	var de *DialError
	return errors.As(err, &de)
}

// DialOptions tunes Dial.
type DialOptions struct {
	// Force accepts a server whose build identity differs from this
	// client's (the byte-identity guarantee is then the operator's risk).
	Force bool
	// Timeout bounds the dial and the handshake (0 = 5s).
	Timeout time.Duration
	// build overrides the client's handshake identity (tests only).
	build *buildinfo.Info
}

// Client is a thin synchronous client for one daemon connection. One
// request is in flight at a time per client; open several clients for
// concurrency (the daemon handles connections concurrently).
type Client struct {
	mu     sync.Mutex
	nc     net.Conn
	codec  *wire.Codec
	nextID uint64
	server Hello
}

// Dial connects, performs the hello handshake and enforces the version
// policy: a protocol mismatch is always fatal, a build-identity mismatch
// is ErrVersionMismatch unless opts.Force.
func Dial(addrSpec string, opts DialOptions) (*Client, error) {
	network, addr, err := ParseAddr(addrSpec)
	if err != nil {
		return nil, err
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	nc, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, &DialError{Addr: addrSpec, Err: err}
	}
	cl := &Client{nc: nc, codec: wire.NewCodec(nc)}
	nc.SetDeadline(time.Now().Add(timeout))
	if err := cl.handshake(opts); err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetDeadline(time.Time{})
	return cl, nil
}

// DialRetry dials like Dial but retries connection-establishment
// failures with exponential backoff (50ms base, 1s cap) until total has
// elapsed. Only DialError failures are retried: a daemon that answers but
// refuses the handshake (wrong protocol, wrong build) fails immediately —
// waiting cannot fix a version mismatch. With total <= 0 it degenerates
// to a single Dial. This is what lets a client race a daemon it just
// spawned: connect as soon as the socket exists instead of sleeping a
// guessed interval.
func DialRetry(addrSpec string, opts DialOptions, total time.Duration) (*Client, error) {
	deadline := time.Now().Add(total)
	backoff := 50 * time.Millisecond
	for {
		cl, err := Dial(addrSpec, opts)
		if err == nil || !IsDialError(err) {
			return cl, err
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if total > 0 {
				return nil, fmt.Errorf("serve: no daemon after %v: %w", total, err)
			}
			return nil, err
		}
		sleep := backoff
		if sleep > remaining {
			sleep = remaining
		}
		time.Sleep(sleep)
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

func (c *Client) handshake(opts DialOptions) error {
	me := buildinfo.Get()
	if opts.build != nil {
		me = *opts.build
	}
	if err := c.codec.Write(wire.TypeHello, "", 0, Hello{
		Proto: wire.ProtoVersion, Build: me,
	}); err != nil {
		return err
	}
	m, err := c.codec.Read()
	if err != nil {
		return fmt.Errorf("serve: handshake read: %w", err)
	}
	if m.Type == wire.TypeError {
		var e wire.ErrorBody
		m.Decode(&e)
		return fmt.Errorf("serve: server refused handshake: %s", e.Error)
	}
	if m.Type != wire.TypeHello {
		return fmt.Errorf("serve: handshake got %q frame, want hello", m.Type)
	}
	if err := m.Decode(&c.server); err != nil {
		return err
	}
	if c.server.Proto != wire.ProtoVersion {
		return fmt.Errorf("serve: server speaks protocol %d, client %d",
			c.server.Proto, wire.ProtoVersion)
	}
	if reason := buildinfo.Mismatch(me, c.server.Build); reason != "" && !opts.Force {
		return fmt.Errorf("%w: %s (server: %s; rerun with -force to override)",
			ErrVersionMismatch, reason, c.server.Build.String())
	}
	return nil
}

// ServerBuild returns the server's handshake identity.
func (c *Client) ServerBuild() buildinfo.Info { return c.server.Build }

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

// do issues one request and decodes the final response into resp,
// forwarding any progress frames to onProgress.
func (c *Client) do(op string, req, resp any, onProgress func(ProgressBody)) error {
	var onFrame func(wire.Msg)
	if onProgress != nil {
		onFrame = func(m wire.Msg) {
			var p ProgressBody
			if err := m.Decode(&p); err == nil {
				onProgress(p)
			}
		}
	}
	return c.doRaw(op, req, resp, onFrame)
}

// doRaw issues one request and decodes the final response into resp,
// handing raw progress frames for this request to onFrame — the seam
// that lets top decode its frames as TopSnapshot rather than
// ProgressBody.
func (c *Client) doRaw(op string, req, resp any, onFrame func(wire.Msg)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := c.nextID
	if err := c.codec.Write(wire.TypeRequest, op, id, req); err != nil {
		return err
	}
	for {
		m, err := c.codec.Read()
		if err != nil {
			return fmt.Errorf("serve: %s response: %w", op, err)
		}
		switch m.Type {
		case wire.TypeProgress:
			if m.ID == id && onFrame != nil {
				onFrame(m)
			}
		case wire.TypeResult:
			if m.ID != id {
				return fmt.Errorf("serve: response id %d for request %d", m.ID, id)
			}
			if resp == nil {
				return nil
			}
			return m.Decode(resp)
		case wire.TypeError:
			var e wire.ErrorBody
			if err := m.Decode(&e); err != nil {
				return err
			}
			return fmt.Errorf("serve: %s: %s", op, e.Error)
		default:
			return fmt.Errorf("serve: unexpected %q frame", m.Type)
		}
	}
}

// Ping round-trips a nonce.
func (c *Client) Ping(nonce int64) error {
	var back PingBody
	if err := c.do(OpPing, PingBody{Nonce: nonce}, &back, nil); err != nil {
		return err
	}
	if back.Nonce != nonce {
		return fmt.Errorf("serve: ping echoed %d, want %d", back.Nonce, nonce)
	}
	return nil
}

// Compile requests a compilation summary.
func (c *Client) Compile(req CompileReq) (*CompileResp, error) {
	var resp CompileResp
	if err := c.do(OpCompile, req, &resp, nil); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Simulate requests one simulation cell.
func (c *Client) Simulate(req SimulateReq) (*SimulateResp, error) {
	var resp SimulateResp
	if err := c.do(OpSimulate, req, &resp, nil); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Batch requests many cells in one round trip; onProgress (optional)
// receives streaming heartbeats when req.Stream is set.
func (c *Client) Batch(req BatchReq, onProgress func(ProgressBody)) (*BatchResp, error) {
	var resp BatchResp
	if err := c.do(OpBatch, req, &resp, onProgress); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Sweep requests the full speedup grid.
func (c *Client) Sweep(req SweepReq, onProgress func(ProgressBody)) (*SweepResp, error) {
	var resp SweepResp
	if err := c.do(OpSweep, req, &resp, onProgress); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Verify requests the transparency-verification sweep.
func (c *Client) Verify(req VerifyReq, onProgress func(ProgressBody)) (*VerifyResp, error) {
	var resp VerifyResp
	if err := c.do(OpVerify, req, &resp, onProgress); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Phases requests the warm-buffer train→ref study.
func (c *Client) Phases(req PhasesReq) (*PhasesResp, error) {
	var resp PhasesResp
	if err := c.do(OpPhases, req, &resp, nil); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats requests the daemon's self-report.
func (c *Client) Stats() (*StatsResp, error) {
	var resp StatsResp
	if err := c.do(OpStats, nil, &resp, nil); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Top streams live-status snapshots: onSnap receives each TopSnapshot as
// it arrives (req.Count bounds how many; -1 streams until the daemon
// drains or the connection drops).
func (c *Client) Top(req TopReq, onSnap func(TopSnapshot)) (*TopResp, error) {
	var resp TopResp
	err := c.doRaw(OpTop, req, &resp, func(m wire.Msg) {
		var snap TopSnapshot
		if err := m.Decode(&snap); err == nil && onSnap != nil {
			onSnap(snap)
		}
	})
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Drain asks the daemon to shut down gracefully.
func (c *Client) Drain() error {
	var resp DrainResp
	return c.do(OpDrain, nil, &resp, nil)
}
