package loadgen

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"ccr/internal/serve"
)

// startDaemon brings an in-process daemon up on a unix socket.
func startDaemon(t *testing.T) string {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "ccrd.sock")
	srv := serve.NewServer(serve.Config{Jobs: 2})
	ln, err := serve.Listen("unix:" + sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Drain()
		srv.Wait()
	})
	return "unix:" + sock
}

func TestRunAgainstLiveDaemon(t *testing.T) {
	addr := startDaemon(t)
	cfg := Config{Addr: addr, Clients: 4, Requests: 80, Scale: "tiny", Seed: 1}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load run had %d errors: %+v", rep.Errors, rep.Classes)
	}
	if rep.Requests < cfg.Requests {
		t.Errorf("Requests = %d, want >= %d", rep.Requests, cfg.Requests)
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("ThroughputRPS = %v", rep.ThroughputRPS)
	}
	for class, cs := range rep.Classes {
		if cs.Count == 0 {
			t.Errorf("class %s saw no requests", class)
		}
		if cs.P50MS > cs.P95MS || cs.P95MS > cs.P99MS || cs.P99MS > cs.MaxMS {
			t.Errorf("class %s percentiles out of order: %+v", class, cs)
		}
	}
	for _, class := range []string{"simulate", "digest", "batch", "compile", "stats"} {
		if _, ok := rep.Classes[class]; !ok {
			t.Errorf("class %s missing from mix", class)
		}
	}
	if rep.ColdMS <= 0 || rep.WarmMS <= 0 || rep.WarmSpeedup <= 0 {
		t.Errorf("cold/warm medians missing: cold=%v warm=%v speedup=%v",
			rep.ColdMS, rep.WarmMS, rep.WarmSpeedup)
	}
	if rep.WarmSpeedupServer < 1 {
		t.Errorf("server-side warm speedup %v < 1 — caches not serving hits",
			rep.WarmSpeedupServer)
	}
	// The hammer phase re-requests cells the cold phase already computed,
	// so the resident caches must be mostly hitting.
	if rep.CacheHitRate < 0.5 {
		t.Errorf("CacheHitRate = %v, want >= 0.5 (caches: %+v)", rep.CacheHitRate, rep.Caches)
	}
}

func TestGates(t *testing.T) {
	good := &Report{
		Requests: 100, Errors: 0,
		ColdMS: 50, WarmMS: 1, WarmSpeedup: 50,
		CacheHitRate: 0.9,
	}
	if err := DefaultGates().Check(good); err != nil {
		t.Errorf("good report failed gates: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Report)
	}{
		{"errors", func(r *Report) { r.Errors = 1 }},
		{"warm speedup", func(r *Report) { r.WarmSpeedup = 2 }},
		{"hit rate", func(r *Report) { r.CacheHitRate = 0.1 }},
		{"empty", func(r *Report) { r.Requests = 0 }},
	}
	for _, c := range cases {
		r := *good
		c.mutate(&r)
		if err := DefaultGates().Check(&r); err == nil {
			t.Errorf("%s violation passed gates", c.name)
		}
	}
	if err := DefaultGates().Check(nil); err == nil {
		t.Error("nil report passed gates")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := NewRecord(
		Config{Clients: 8, Requests: 400, Scale: "small"},
		&Report{Requests: 400, WarmSpeedup: 12.5, CacheHitRate: 0.93,
			Classes: map[string]ClassStats{"simulate": {Count: 240, P50MS: 0.4}}},
		"abc1234", "initial capture")
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rec)
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Errorf("record diverged through the file:\n%s\n%s", a, b)
	}
	if back.GOOS == "" || back.GOARCH == "" {
		t.Errorf("record not stamped: %+v", back)
	}
	if _, err := ReadRecord(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing record did not error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{{0.50, 5}, {0.90, 9}, {0.95, 10}, {0.99, 10}, {1.0, 10}}
	for _, c := range cases {
		if got := percentile(xs, c.q); got != c.want {
			t.Errorf("percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(nil) = %v", got)
	}
}
