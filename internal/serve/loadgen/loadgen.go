// Package loadgen is the ccrd load-test harness: it hammers a running
// daemon with many concurrent clients issuing a deterministic mix of
// request classes (simulate, digest, batch, compile, stats), measures
// client-observed latency percentiles, throughput and error counts per
// class, and reads the daemon's own cache counters before and after the
// run to report the resident caches' hit rate.
//
// The headline number is WarmSpeedup: the median cold (first-ever) latency
// of a simulate cell divided by the median warm (resident-cache) latency
// of the same cells under load. BENCH_serve.json records it and CI gates
// on it — a daemon that recomputes instead of serving from its caches
// fails the gate.
package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ccr/internal/runner"
	"ccr/internal/serve"
	"ccr/internal/workloads"
)

// Config parameterizes one load-test run.
type Config struct {
	// Addr is the daemon address (serve.ParseAddr syntax).
	Addr string `json:"addr,omitempty"`
	// Clients is the number of concurrent client connections (default 8).
	Clients int `json:"clients"`
	// Requests is the total number of mixed requests across all clients in
	// the hammer phase (default 400), on top of the cold phase that first
	// touches every distinct cell once.
	Requests int `json:"requests"`
	// Scale selects the workload scale (default small).
	Scale string `json:"scale"`
	// Seed makes the per-client request interleaving reproducible.
	Seed int64 `json:"seed,omitempty"`
	// Force forwards serve.DialOptions.Force.
	Force bool `json:"-"`
}

// ClassStats aggregates one request class's client-observed latencies.
type ClassStats struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors,omitempty"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Report is one load-test run's outcome.
type Report struct {
	Clients  int    `json:"clients"`
	Requests int    `json:"requests"`
	Scale    string `json:"scale"`

	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Errors        int     `json:"errors"`

	Classes map[string]ClassStats `json:"classes"`

	// ColdMS and WarmMS are the median client-observed latencies of the
	// first-ever request per cell vs the same cells served warm under
	// load; WarmSpeedup is their ratio (the resident-cache win).
	ColdMS      float64 `json:"cold_ms"`
	WarmMS      float64 `json:"warm_ms"`
	WarmSpeedup float64 `json:"warm_speedup"`
	// WarmSpeedupServer is the same ratio measured from the daemon's own
	// per-request wall time, excluding wire and scheduling noise.
	WarmSpeedupServer float64 `json:"warm_speedup_server"`

	// CacheHitRate is hits/(hits+misses) over every resident cache during
	// the run (deltas between the before and after stats snapshots).
	CacheHitRate float64                      `json:"cache_hit_rate"`
	Caches       map[string]runner.CacheStats `json:"caches,omitempty"`
}

// cell is one distinct simulate point of the load grid.
type cell struct {
	req serve.SimulateReq
}

// grid is the distinct-cell universe the generator draws from: every
// benchmark × dataset, as base runs, default-geometry CCR runs and one
// alternate geometry.
func grid(scale string) []cell {
	geoms := []*serve.CRBGeom{nil, {Entries: 32, Instances: 4}}
	var cells []cell
	for _, bn := range workloads.Names() {
		for _, ds := range []string{"train", "ref"} {
			cells = append(cells, cell{req: serve.SimulateReq{
				Bench: bn, Scale: scale, Dataset: ds, Base: true}})
			for _, g := range geoms {
				cells = append(cells, cell{req: serve.SimulateReq{
					Bench: bn, Scale: scale, Dataset: ds, CRB: g}})
			}
		}
	}
	return cells
}

// The hammer-phase class mix, as a fixed pattern (deterministic given the
// request index): mostly warm simulates, plus digests, small batches,
// compiles and stats polls.
var classPattern = []string{
	"simulate", "simulate", "simulate", "simulate", "simulate", "simulate",
	"simulate", "simulate", "simulate", "simulate", "simulate", "simulate",
	"digest", "digest", "digest",
	"batch", "batch",
	"compile", "compile",
	"stats",
}

// sample is one timed request.
type sample struct {
	class    string
	ms       float64
	serverNS int64
	err      error
}

// Run executes the load test against a running daemon.
func Run(cfg Config) (*Report, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 400
	}
	scale := cfg.Scale
	if scale == "" {
		scale = "small"
	}
	dial := func() (*serve.Client, error) {
		return serve.Dial(cfg.Addr, serve.DialOptions{Force: cfg.Force})
	}
	ctl, err := dial()
	if err != nil {
		return nil, err
	}
	defer ctl.Close()
	statsBefore, err := ctl.Stats()
	if err != nil {
		return nil, fmt.Errorf("loadgen: stats before: %w", err)
	}

	cells := grid(scale)

	// Cold phase: touch every distinct cell exactly once, serially, and
	// time each first-ever computation.
	var cold []sample
	for _, c := range cells {
		t0 := time.Now()
		resp, err := ctl.Simulate(c.req)
		s := sample{class: "cold", ms: msSince(t0), err: err}
		if err == nil {
			s.serverNS = resp.ServerNS
		}
		cold = append(cold, s)
	}

	// Hammer phase: Clients concurrent connections issue Requests mixed
	// requests; each client walks the cell grid in its own seeded order so
	// the daemon sees overlapping, interleaved keys.
	start := time.Now()
	perClient := (cfg.Requests + cfg.Clients - 1) / cfg.Clients
	sampleCh := make(chan sample, cfg.Requests+cfg.Clients)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := dial()
			if err != nil {
				sampleCh <- sample{class: "dial", err: err}
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			order := rng.Perm(len(cells))
			for i := 0; i < perClient; i++ {
				class := classPattern[(i*cfg.Clients+w)%len(classPattern)]
				c := cells[order[i%len(order)]]
				t0 := time.Now()
				var (
					serverNS int64
					err      error
				)
				switch class {
				case "simulate":
					var r *serve.SimulateResp
					r, err = cl.Simulate(c.req)
					if err == nil {
						serverNS = r.ServerNS
					}
				case "digest":
					req := c.req
					req.Base = false
					req.Digest = true
					var r *serve.SimulateResp
					r, err = cl.Simulate(req)
					if err == nil {
						serverNS = r.ServerNS
					}
				case "batch":
					n := 4
					if n > len(cells) {
						n = len(cells)
					}
					breq := serve.BatchReq{Jobs: 2}
					for j := 0; j < n; j++ {
						breq.Cells = append(breq.Cells, cells[order[(i+j)%len(order)]].req)
					}
					var r *serve.BatchResp
					r, err = cl.Batch(breq, nil)
					if err == nil && r.Failed > 0 {
						err = fmt.Errorf("loadgen: batch reported %d failed cells", r.Failed)
					}
				case "compile":
					_, err = cl.Compile(serve.CompileReq{Bench: c.req.Bench, Scale: scale})
				case "stats":
					_, err = cl.Stats()
				}
				sampleCh <- sample{class: class, ms: msSince(t0), serverNS: serverNS, err: err}
			}
		}(w)
	}
	wg.Wait()
	close(sampleCh)
	wall := time.Since(start).Seconds()

	var samples []sample
	for s := range sampleCh {
		samples = append(samples, s)
	}

	statsAfter, err := ctl.Stats()
	if err != nil {
		return nil, fmt.Errorf("loadgen: stats after: %w", err)
	}

	return build(cfg, scale, wall, cold, samples, statsBefore, statsAfter), nil
}

// build aggregates the raw samples into the report.
func build(cfg Config, scale string, wall float64, cold, samples []sample,
	before, after *serve.StatsResp) *Report {
	r := &Report{
		Clients:     cfg.Clients,
		Requests:    len(samples),
		Scale:       scale,
		WallSeconds: wall,
		Classes:     map[string]ClassStats{},
	}
	if wall > 0 {
		r.ThroughputRPS = float64(len(samples)) / wall
	}

	byClass := map[string][]float64{}
	var warmMS []float64
	var warmSrv []float64
	for _, s := range samples {
		if s.err != nil {
			r.Errors++
			cs := r.Classes[s.class]
			cs.Errors++
			r.Classes[s.class] = cs
			continue
		}
		byClass[s.class] = append(byClass[s.class], s.ms)
		if s.class == "simulate" {
			warmMS = append(warmMS, s.ms)
			if s.serverNS > 0 {
				warmSrv = append(warmSrv, float64(s.serverNS))
			}
		}
	}
	for class, lats := range byClass {
		cs := r.Classes[class]
		cs.Count = len(lats)
		sort.Float64s(lats)
		cs.P50MS = percentile(lats, 0.50)
		cs.P95MS = percentile(lats, 0.95)
		cs.P99MS = percentile(lats, 0.99)
		cs.MaxMS = lats[len(lats)-1]
		cs.MeanMS = mean(lats)
		r.Classes[class] = cs
	}

	var coldMS, coldSrv []float64
	for _, s := range cold {
		if s.err != nil {
			r.Errors++
			continue
		}
		coldMS = append(coldMS, s.ms)
		if s.serverNS > 0 {
			coldSrv = append(coldSrv, float64(s.serverNS))
		}
	}
	sort.Float64s(coldMS)
	sort.Float64s(warmMS)
	sort.Float64s(coldSrv)
	sort.Float64s(warmSrv)
	r.ColdMS = percentile(coldMS, 0.50)
	r.WarmMS = percentile(warmMS, 0.50)
	if r.WarmMS > 0 {
		r.WarmSpeedup = r.ColdMS / r.WarmMS
	}
	if ws := percentile(warmSrv, 0.50); ws > 0 {
		r.WarmSpeedupServer = percentile(coldSrv, 0.50) / ws
	}

	// Cache effectiveness: counter deltas across the run, summed over
	// every resident cache of every scale.
	var hits, misses int64
	r.Caches = map[string]runner.CacheStats{}
	for scaleName, su := range after.Suites {
		for cacheName, st := range su.Caches {
			key := scaleName + "/" + cacheName
			prev := runner.CacheStats{}
			if b, ok := before.Suites[scaleName]; ok {
				prev = b.Caches[cacheName]
			}
			d := runner.CacheStats{Hits: st.Hits - prev.Hits, Misses: st.Misses - prev.Misses}
			r.Caches[key] = d
			hits += d.Hits
			misses += d.Misses
		}
	}
	if hits+misses > 0 {
		r.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return r
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Microseconds()) / 1e3
}

// percentile reads quantile q from an ascending-sorted slice (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
