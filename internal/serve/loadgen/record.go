package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
)

// Record is the BENCH_serve.json schema: one machine-stamped load-test
// report plus the gates CI enforces over it. Like BENCH_emu.json it is a
// committed artifact — `ccrctl bench -update` rewrites it, `ccrctl bench
// -check` regenerates a fresh report on the same machine class and gates.
type Record struct {
	CPU    string `json:"cpu,omitempty"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	Commit string `json:"commit,omitempty"`
	Note   string `json:"note,omitempty"`

	Config Config  `json:"config"`
	Report *Report `json:"report"`
}

// NewRecord stamps a report with the runtime environment.
func NewRecord(cfg Config, rep *Report, commit, note string) *Record {
	return &Record{
		CPU:    cpuModel(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Commit: commit,
		Note:   note,
		Config: cfg,
		Report: rep,
	}
}

// Gates are the pass/fail thresholds over a report.
type Gates struct {
	// MinWarmSpeedup is the required cold/warm median-latency ratio
	// (default 5 — the resident caches must be worth at least 5×).
	MinWarmSpeedup float64
	// MaxErrorFrac is the tolerated fraction of failed requests
	// (default 0 — any error fails).
	MaxErrorFrac float64
	// MinCacheHitRate is the required resident-cache hit rate under the
	// mixed load (default 0.5).
	MinCacheHitRate float64
}

// DefaultGates returns the CI thresholds.
func DefaultGates() Gates {
	return Gates{MinWarmSpeedup: 5, MaxErrorFrac: 0, MinCacheHitRate: 0.5}
}

// Check gates a report; the error lists every violated gate.
func (g Gates) Check(r *Report) error {
	var viol []string
	if r == nil {
		return fmt.Errorf("loadgen: no report")
	}
	if r.Requests == 0 {
		viol = append(viol, "no requests completed")
	}
	frac := 0.0
	if r.Requests > 0 {
		frac = float64(r.Errors) / float64(r.Requests)
	}
	if frac > g.MaxErrorFrac {
		viol = append(viol, fmt.Sprintf("error fraction %.4f > %.4f (%d errors)",
			frac, g.MaxErrorFrac, r.Errors))
	}
	if r.WarmSpeedup < g.MinWarmSpeedup {
		viol = append(viol, fmt.Sprintf("warm speedup %.2fx < required %.2fx (cold %.3fms, warm %.3fms)",
			r.WarmSpeedup, g.MinWarmSpeedup, r.ColdMS, r.WarmMS))
	}
	if r.CacheHitRate < g.MinCacheHitRate {
		viol = append(viol, fmt.Sprintf("cache hit rate %.3f < required %.3f",
			r.CacheHitRate, g.MinCacheHitRate))
	}
	if len(viol) > 0 {
		return fmt.Errorf("loadgen: gates failed:\n  %s", strings.Join(viol, "\n  "))
	}
	return nil
}

// WriteFile writes the record as indented JSON.
func (r *Record) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadRecord loads a committed record.
func ReadRecord(path string) (*Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	return &r, nil
}

// cpuModel best-effort reads the CPU model name (linux); empty elsewhere.
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
