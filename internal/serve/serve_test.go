package serve

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ccr/internal/buildinfo"
	"ccr/internal/core"
	"ccr/internal/crb"
	"ccr/internal/oracle"
	"ccr/internal/reuse"
	"ccr/internal/serve/wire"
	"ccr/internal/workloads"
)

// startServer brings a daemon up on a fresh unix socket and tears it down
// (graceful drain) with the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "ccrd.sock")
	srv := NewServer(cfg)
	ln, err := Listen("unix:" + sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Drain()
		srv.Wait()
	})
	return srv, "unix:" + sock
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	cl, err := Dial(addr, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestPingAndStats(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 2})
	cl := dial(t, addr)
	if err := cl.Ping(42); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Proto != wire.ProtoVersion {
		t.Errorf("Proto = %d, want %d", st.Proto, wire.ProtoVersion)
	}
	if st.Requests[OpPing] != 1 {
		t.Errorf("ping count = %d, want 1", st.Requests[OpPing])
	}
	if st.Conns != 1 {
		t.Errorf("Conns = %d, want 1", st.Conns)
	}
	if st.Draining {
		t.Error("fresh server reports draining")
	}
}

func TestHandshakeVersionMismatch(t *testing.T) {
	other := buildinfo.Info{Module: "ccr", GoVersion: "go1.22", Revision: "deadbeef"}
	_, addr := startServer(t, Config{build: &other})

	// Default policy: refuse a server from a different build.
	if _, err := Dial(addr, DialOptions{}); err == nil {
		t.Fatal("Dial accepted a version-mismatched server")
	} else if !IsVersionMismatch(err) {
		t.Fatalf("mismatch error = %v, want ErrVersionMismatch", err)
	}

	// -force overrides.
	cl, err := Dial(addr, DialOptions{Force: true})
	if err != nil {
		t.Fatalf("forced dial failed: %v", err)
	}
	defer cl.Close()
	if err := cl.Ping(1); err != nil {
		t.Fatal(err)
	}
	if cl.ServerBuild().Revision != "deadbeef" {
		t.Errorf("ServerBuild = %+v", cl.ServerBuild())
	}
}

func TestCompileAndSimulateMatchInProcess(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 2})
	cl := dial(t, addr)

	const bench, scale = "compress", "tiny"
	comp, err := cl.Compile(CompileReq{Bench: bench, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Regions == 0 {
		t.Error("compile reports no regions")
	}

	// In-process reference: the single-shot CLI path.
	b := workloads.Load(bench, workloads.Tiny)
	opts := core.DefaultOptions()
	cr, err := core.Compile(b.Prog, b.Train, opts)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Regions != len(cr.Prog.Regions) || comp.TrainResult != cr.TrainResult {
		t.Errorf("compile diverged: daemon %+v, local regions=%d train=%d",
			comp, len(cr.Prog.Regions), cr.TrainResult)
	}

	wantBase, err := core.Simulate(b.Prog, nil, opts.Uarch, b.Ref, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantCCR, err := core.Simulate(cr.Prog, &opts.CRB, opts.Uarch, b.Ref, 0)
	if err != nil {
		t.Fatal(err)
	}

	gotBase, err := cl.Simulate(SimulateReq{Bench: bench, Scale: scale, Dataset: "ref", Base: true})
	if err != nil {
		t.Fatal(err)
	}
	gotCCR, err := cl.Simulate(SimulateReq{Bench: bench, Scale: scale, Dataset: "ref"})
	if err != nil {
		t.Fatal(err)
	}
	if gotBase.Result != wantBase.Result || gotBase.Cycles != wantBase.Cycles {
		t.Errorf("base run diverged: daemon (%d, %d cyc), local (%d, %d cyc)",
			gotBase.Result, gotBase.Cycles, wantBase.Result, wantBase.Cycles)
	}
	if gotCCR.Result != wantCCR.Result || gotCCR.Cycles != wantCCR.Cycles {
		t.Errorf("ccr run diverged: daemon (%d, %d cyc), local (%d, %d cyc)",
			gotCCR.Result, gotCCR.Cycles, wantCCR.Result, wantCCR.Cycles)
	}
	if gotCCR.Emu.ReuseHits != wantCCR.Emu.ReuseHits ||
		gotCCR.Emu.ReusedInstrs != wantCCR.Emu.ReusedInstrs {
		t.Errorf("ccr reuse stats diverged: daemon %+v, local hits=%d reused=%d",
			gotCCR.Emu, wantCCR.Emu.ReuseHits, wantCCR.Emu.ReusedInstrs)
	}
	if gotCCR.Config != reuse.CCR(opts.CRB).Key() {
		t.Errorf("Config = %q, want %q", gotCCR.Config, reuse.CCR(opts.CRB).Key())
	}
}

// TestConcurrentClientsByteIdentical is the oracle gate of the service: N
// parallel clients hammering overlapping (bench, dataset, config) digest
// requests must each receive exactly the digest an isolated in-process run
// computes — resident caches and request concurrency must be invisible.
func TestConcurrentClientsByteIdentical(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 4})

	benches := []string{"compress", "lex", "m88ksim"}
	datasets := []string{"train", "ref"}
	geoms := []*CRBGeom{nil, {Entries: 32, Instances: 4}}

	// In-process reference digests, computed independently per point.
	type point struct {
		bench, dataset string
		geom           *CRBGeom
	}
	var points []point
	want := map[string]oracle.Digest{}
	for _, bn := range benches {
		b := workloads.Load(bn, workloads.Tiny)
		opts := core.DefaultOptions()
		cr, err := core.Compile(b.Prog, b.Train, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, ds := range datasets {
			args := b.Train
			if ds == "ref" {
				args = b.Ref
			}
			for _, g := range geoms {
				cc := crb.DefaultConfig()
				if g != nil {
					cc = g.Config()
				}
				d, err := core.DigestRun(cr.Prog, &cc, args, 0)
				if err != nil {
					t.Fatal(err)
				}
				p := point{bench: bn, dataset: ds, geom: g}
				points = append(points, p)
				want[fmt.Sprintf("%s/%s/%s", bn, ds, reuse.CCR(cc).Key())] = d
			}
		}
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients*len(points))
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(addr, DialOptions{})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			// Each client walks the points at a different phase so the
			// cache sees genuinely interleaved cold and warm requests.
			for i := range points {
				p := points[(i+w)%len(points)]
				resp, err := cl.Simulate(SimulateReq{
					Bench: p.bench, Scale: "tiny", Dataset: p.dataset,
					CRB: p.geom, Digest: true, NoTiming: true,
				})
				if err != nil {
					errs <- fmt.Errorf("client %d %s/%s: %w", w, p.bench, p.dataset, err)
					continue
				}
				key := fmt.Sprintf("%s/%s/%s", p.bench, p.dataset, resp.Config)
				wantD, ok := want[key]
				if !ok {
					errs <- fmt.Errorf("client %d: unexpected key %s", w, key)
					continue
				}
				if resp.Digest == nil || *resp.Digest != wantD {
					errs <- fmt.Errorf("client %d: digest diverged at %s:\n got %+v\nwant %+v",
						w, key, resp.Digest, wantD)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBatchEqualsSerial: one batch request must return exactly what the
// same cells return when issued one at a time.
func TestBatchEqualsSerial(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 4})
	cl := dial(t, addr)

	var cells []SimulateReq
	for _, bn := range []string{"compress", "lex"} {
		for _, ds := range []string{"train", "ref"} {
			cells = append(cells,
				SimulateReq{Bench: bn, Scale: "tiny", Dataset: ds, Base: true},
				SimulateReq{Bench: bn, Scale: "tiny", Dataset: ds},
				SimulateReq{Bench: bn, Scale: "tiny", Dataset: ds, CRB: &CRBGeom{Entries: 32, Instances: 4}})
		}
	}
	batch, err := cl.Batch(BatchReq{Cells: cells, Jobs: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(cells) {
		t.Fatalf("batch returned %d results for %d cells", len(batch.Results), len(cells))
	}
	if batch.Failed != 0 {
		t.Fatalf("batch reports %d failures: %+v", batch.Failed, batch.Results)
	}
	cl2 := dial(t, addr)
	for i, req := range cells {
		serial, err := cl2.Simulate(req)
		if err != nil {
			t.Fatalf("serial cell %d: %v", i, err)
		}
		got := batch.Results[i]
		if got.Result != serial.Result || got.Cycles != serial.Cycles ||
			got.Config != serial.Config || got.Emu != serial.Emu {
			t.Errorf("cell %d diverged:\nbatch  %+v\nserial %+v", i, got, serial)
		}
	}
}

// TestBatchStreamingProgress: a streaming batch emits progress frames
// carrying the right cell total before the final result.
func TestBatchStreamingProgress(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 1})
	cl := dial(t, addr)
	var cells []SimulateReq
	for _, bn := range workloads.Names()[:6] {
		cells = append(cells, SimulateReq{Bench: bn, Scale: "tiny"})
	}
	var mu sync.Mutex
	var snaps []ProgressBody
	resp, err := cl.Batch(BatchReq{Cells: cells, Stream: true, HeartbeatMS: 10},
		func(p ProgressBody) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Failed != 0 {
		t.Fatalf("batch failed cells: %+v", resp)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("no progress frames from a streaming batch (cold compile of 6 benchmarks)")
	}
	for i, p := range snaps {
		if p.Total != len(cells) {
			t.Errorf("progress %d Total = %d, want %d", i, p.Total, len(cells))
		}
		if p.Done < 0 || p.Done > len(cells) {
			t.Errorf("progress %d Done = %d", i, p.Done)
		}
	}
}

// TestWarmCacheServesHits: a repeated identical simulate is answered from
// the resident caches (hit counters move, not miss counters) and reports a
// server-side latency far below the cold request's.
func TestWarmCacheServesHits(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 2})
	cl := dial(t, addr)
	req := SimulateReq{Bench: "m88ksim", Scale: "tiny", Dataset: "ref"}

	cold, err := cl.Simulate(req)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	ccr1 := st1.Suites["tiny"].Caches["ccr_sim"]

	warm, err := cl.Simulate(req)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	ccr2 := st2.Suites["tiny"].Caches["ccr_sim"]

	if warm.Result != cold.Result || warm.Cycles != cold.Cycles {
		t.Errorf("warm response diverged from cold: %+v vs %+v", warm, cold)
	}
	if ccr2.Hits != ccr1.Hits+1 || ccr2.Misses != ccr1.Misses {
		t.Errorf("second request did not hit the resident cache: %+v -> %+v", ccr1, ccr2)
	}
	// The wall-clock warm/cold ratio is asserted loosely here (the strict
	// ≥5× gate lives in the loadgen bench, measured over many samples).
	if warm.ServerNS > cold.ServerNS {
		t.Errorf("warm request slower than cold: %dns vs %dns", warm.ServerNS, cold.ServerNS)
	}
}

// TestVerifySweepOverWire runs the §3.1 transparency sweep through the
// daemon — the same sweep `ccrpaper -verify -strict` runs in-process —
// and requires zero failing points.
func TestVerifySweepOverWire(t *testing.T) {
	if testing.Short() {
		t.Skip("full verify sweep in -short mode")
	}
	_, addr := startServer(t, Config{Jobs: 4})
	cl := dial(t, addr)
	v, err := cl.Verify(VerifyReq{Scale: "tiny"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Checked == 0 {
		t.Fatal("verify checked no points")
	}
	if len(v.Rows) != 0 {
		t.Fatalf("transparency failed at %d points over the wire: %+v", len(v.Rows), v.Rows)
	}
}

// TestPhasesWarmBuffer: the phases endpoint keeps CRB state across the
// train→ref boundary within one request.
func TestPhasesWarmBuffer(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 2})
	cl := dial(t, addr)
	r, err := cl.Phases(PhasesReq{Bench: "m88ksim", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Phases[0].Name != "train" || r.Phases[1].Name != "ref" {
		t.Fatalf("phases = %q/%q", r.Phases[0].Name, r.Phases[1].Name)
	}
	if r.Phases[0].CRB.Lookups == 0 {
		t.Error("train phase saw no CRB lookups")
	}
}

// TestBadRequestsKeepDaemonAlive: unknown operations, malformed bodies and
// garbage frames hurt only their own connection.
func TestBadRequestsKeepDaemonAlive(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 1})
	cl := dial(t, addr)

	if err := cl.do("no-such-op", nil, nil, nil); err == nil {
		t.Error("unknown op did not error")
	}
	if _, err := cl.Simulate(SimulateReq{Bench: "nope", Scale: "tiny"}); err == nil {
		t.Error("unknown benchmark did not error")
	}
	if _, err := cl.Simulate(SimulateReq{Bench: "lex", Scale: "galactic"}); err == nil {
		t.Error("unknown scale did not error")
	}
	if _, err := cl.Simulate(SimulateReq{Bench: "lex", Scale: "tiny", Dataset: "validation"}); err == nil {
		t.Error("unknown dataset did not error")
	}
	// The same connection still works after errors…
	if err := cl.Ping(7); err != nil {
		t.Fatal(err)
	}
	// …and the daemon still accepts new ones.
	cl2 := dial(t, addr)
	if err := cl2.Ping(8); err != nil {
		t.Fatal(err)
	}
}

// TestDrainFinishesInFlight: a drain initiated mid-batch lets the batch
// finish and answer, refuses new connections, and Wait completes.
func TestDrainFinishesInFlight(t *testing.T) {
	srv, addr := startServer(t, Config{Jobs: 2})
	cl := dial(t, addr)

	var cells []SimulateReq
	for _, bn := range workloads.Names() {
		cells = append(cells, SimulateReq{Bench: bn, Scale: "tiny"})
	}
	type batchOut struct {
		resp *BatchResp
		err  error
	}
	done := make(chan batchOut, 1)
	go func() {
		resp, err := cl.Batch(BatchReq{Cells: cells}, nil)
		done <- batchOut{resp, err}
	}()

	// Give the batch a moment to be in flight, then drain.
	time.Sleep(50 * time.Millisecond)
	srv.Drain()

	out := <-done
	if out.err != nil {
		t.Fatalf("in-flight batch did not survive drain: %v", out.err)
	}
	if out.resp.Failed != 0 || len(out.resp.Results) != len(cells) {
		t.Fatalf("drained batch incomplete: failed=%d results=%d",
			out.resp.Failed, len(out.resp.Results))
	}

	srv.Wait()
	if _, err := Dial(addr, DialOptions{}); err == nil {
		t.Error("drained server accepted a new connection")
	}
}

// TestDrainViaClient: the drain op acks, then the server drains.
func TestDrainViaClient(t *testing.T) {
	srv, addr := startServer(t, Config{Jobs: 1})
	cl := dial(t, addr)
	if err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	srv.Wait()
	if !srv.Draining() {
		t.Error("server not draining after drain op")
	}
}

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in, network, addr string
		bad               bool
	}{
		{in: "unix:/tmp/x.sock", network: "unix", addr: "/tmp/x.sock"},
		{in: "/tmp/x.sock", network: "unix", addr: "/tmp/x.sock"},
		{in: "./x.sock", network: "unix", addr: "./x.sock"},
		{in: "tcp:localhost:7777", network: "tcp", addr: "localhost:7777"},
		{in: "localhost:7777", network: "tcp", addr: "localhost:7777"},
		{in: "127.0.0.1:0", network: "tcp", addr: "127.0.0.1:0"},
		{in: "", bad: true},
		{in: "unix:", bad: true},
		{in: "tcp:nonsense", bad: true},
		{in: "justaword", bad: true},
	}
	for _, c := range cases {
		network, addr, err := ParseAddr(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseAddr(%q) accepted", c.in)
			}
			continue
		}
		if err != nil || network != c.network || addr != c.addr {
			t.Errorf("ParseAddr(%q) = (%q, %q, %v), want (%q, %q)",
				c.in, network, addr, err, c.network, c.addr)
		}
	}
}

// TestTCPTransport: the same protocol works over TCP.
func TestTCPTransport(t *testing.T) {
	srv := NewServer(Config{Jobs: 1})
	ln, err := Listen("tcp:127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Drain(); srv.Wait() })
	cl, err := Dial("tcp:"+ln.Addr().String(), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(99); err != nil {
		t.Fatal(err)
	}
}

// TestDialRetryWaitsForListener races DialRetry against a daemon that
// starts listening only after a delay — the spawned-daemon pattern every
// smoke script and fabric remote slot depends on.
func TestDialRetryWaitsForListener(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "late.sock")
	addr := "unix:" + sock

	// Fail fast (no retry window): nobody is listening yet.
	if _, err := Dial(addr, DialOptions{}); err == nil {
		t.Fatal("Dial succeeded with no listener")
	} else if !IsDialError(err) {
		t.Fatalf("absent-listener error = %v, want DialError", err)
	}
	if _, err := DialRetry(addr, DialOptions{}, 0); err == nil {
		t.Fatal("DialRetry(total=0) succeeded with no listener")
	}

	srv := NewServer(Config{Jobs: 1})
	go func() {
		time.Sleep(150 * time.Millisecond)
		ln, err := Listen(addr)
		if err != nil {
			t.Error(err)
			return
		}
		srv.Serve(ln)
	}()
	t.Cleanup(func() {
		srv.Drain()
		srv.Wait()
	})

	cl, err := DialRetry(addr, DialOptions{}, 10*time.Second)
	if err != nil {
		t.Fatalf("DialRetry did not outwait the late listener: %v", err)
	}
	defer cl.Close()
	if err := cl.Ping(7); err != nil {
		t.Fatal(err)
	}
}

// TestDialRetryFailsFastOnHandshake: a reachable daemon that refuses the
// version handshake must not be retried — backoff cannot fix a build
// mismatch, so the error surfaces immediately and keeps its class.
func TestDialRetryFailsFastOnHandshake(t *testing.T) {
	other := buildinfo.Info{Module: "ccr", GoVersion: "go1.22", Revision: "deadbeef"}
	_, addr := startServer(t, Config{build: &other})

	start := time.Now()
	_, err := DialRetry(addr, DialOptions{}, 10*time.Second)
	if err == nil {
		t.Fatal("DialRetry accepted a version-mismatched server")
	}
	if !IsVersionMismatch(err) {
		t.Fatalf("error = %v, want ErrVersionMismatch", err)
	}
	if IsDialError(err) {
		t.Fatalf("handshake refusal classified as DialError: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("DialRetry burned %v retrying a permanent failure", elapsed)
	}
}
