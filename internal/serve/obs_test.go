package serve

import (
	"bytes"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"ccr/internal/obsv"
	"ccr/internal/store"
)

// TestTopStreams exercises the top op end to end: bounded snapshot
// counts, the always-on reuse totals, and the final TopResp accounting.
func TestTopStreams(t *testing.T) {
	_, addr := startServer(t, Config{Jobs: 2})
	cl := dial(t, addr)

	// Serve one timed cell so the reuse totals have content.
	if _, err := cl.Simulate(SimulateReq{Bench: "compress", Scale: "tiny"}); err != nil {
		t.Fatal(err)
	}

	var snaps []TopSnapshot
	resp, err := cl.Top(TopReq{IntervalMS: 50, Count: 2}, func(s TopSnapshot) {
		snaps = append(snaps, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Snapshots != 2 || len(snaps) != 2 {
		t.Fatalf("snapshots = %d (resp %d), want 2", len(snaps), resp.Snapshots)
	}
	s := snaps[1]
	if s.Requests[OpSimulate] != 1 {
		t.Errorf("snapshot simulate count = %d, want 1", s.Requests[OpSimulate])
	}
	// The top request itself is in flight while the snapshot is taken.
	if s.InFlight < 1 || len(s.Active) < 1 || s.Active[0].Op != OpTop {
		t.Errorf("active table = %+v in_flight=%d, want the top request", s.Active, s.InFlight)
	}
	ccr, ok := s.Reuse["ccr"]
	if !ok || ccr.Cells != 1 || ccr.DynInstrs == 0 {
		t.Errorf("reuse totals = %+v, want 1 ccr cell with instructions", s.Reuse)
	}
	if s.Goroutines <= 0 || s.HeapBytes == 0 || s.UptimeSeconds <= 0 {
		t.Errorf("runtime fields empty: %+v", s)
	}

	// Count 0 means exactly one snapshot.
	n := 0
	if _, err := cl.Top(TopReq{Count: 0}, func(TopSnapshot) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("count 0 streamed %d snapshots, want 1", n)
	}
	if _, err := cl.Top(TopReq{Count: -2}, nil); err == nil {
		t.Error("count -2 accepted")
	}
}

// TestStatsStoreAndReuse pins the stats-op extension: artifact-store
// counters and per-scheme reuse totals, including the DTM trace/head
// counters.
func TestStatsStoreAndReuse(t *testing.T) {
	st, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, Config{Jobs: 2, Store: st})
	cl := dial(t, addr)

	for _, req := range []SimulateReq{
		{Bench: "compress", Scale: "tiny", Base: true},
		{Bench: "compress", Scale: "tiny"},
		{Bench: "compress", Scale: "tiny", Scheme: "dtm"},
	} {
		if _, err := cl.Simulate(req); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Store == nil || stats.Store.Puts == 0 {
		t.Fatalf("Store = %+v, want non-nil with puts", stats.Store)
	}
	for _, scheme := range []string{"base", "ccr", "dtm"} {
		tot, ok := stats.Reuse[scheme]
		if !ok || tot.Cells != 1 || tot.DynInstrs == 0 {
			t.Errorf("Reuse[%q] = %+v (ok=%v), want 1 cell", scheme, tot, ok)
		}
	}
	if ccr := stats.Reuse["ccr"]; ccr.ReuseHits+ccr.ReuseMisses == 0 {
		t.Errorf("ccr totals carry no CRB activity: %+v", stats.Reuse["ccr"])
	}
	dtm := stats.Reuse["dtm"]
	if dtm.DTMLookups == 0 || dtm.DTMRecords == 0 || dtm.DTMHeads == 0 {
		t.Errorf("dtm totals missing trace counters: %+v", dtm)
	}
}

// TestMetricsTransparent is the zero-overhead proof at the functional
// level: the same cell served by an instrumented daemon (Metrics + Spans
// + HTTP sidecar) and a bare one yields byte-identical oracle digests,
// and the sidecar's /metrics reflects the served requests.
func TestMetricsTransparent(t *testing.T) {
	reg := obsv.New()
	if err := obsv.RegisterGoStats(reg); err != nil {
		t.Fatal(err)
	}
	spanDir := t.TempDir()
	spans, err := obsv.OpenSpanLog(spanDir, "ccrd-test")
	if err != nil {
		t.Fatal(err)
	}
	defer spans.Close()

	srvA, addrA := startServer(t, Config{Jobs: 2, Metrics: reg, Spans: spans})
	_, addrB := startServer(t, Config{Jobs: 2})

	req := SimulateReq{Bench: "lex", Scale: "tiny", Digest: true}
	a, err := dial(t, addrA).Simulate(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dial(t, addrB).Simulate(req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == nil || b.Digest == nil || *a.Digest != *b.Digest {
		t.Fatalf("digest diverged under instrumentation:\n  with: %+v\n  bare: %+v", a.Digest, b.Digest)
	}
	if a.Result != b.Result || a.Cycles != b.Cycles || a.Emu != b.Emu {
		t.Fatalf("timing diverged under instrumentation:\n  with: %+v\n  bare: %+v", a, b)
	}

	// The sidecar scrape reflects the served request.
	h, err := obsv.Serve("127.0.0.1:0", obsv.HTTPConfig{
		Registry: reg,
		Ready:    func() bool { return !srvA.Draining() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	res, err := http.Get("http://" + h.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	for _, want := range []string{
		`ccrd_requests_total{op="simulate"} 1`,
		`ccrd_request_seconds_count{op="simulate"} 1`,
		`ccrd_reuse_cells_total{scheme="ccr"} 1`,
		`ccrd_suite_cache_hits_total{cache="ccr_digest",scale="tiny"}`,
		"go_goroutines ",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The request span log recorded the serve spans.
	if err := spans.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn, err := obsv.ReadSpanLog(filepath.Join(spanDir, "ccrd-test.jsonl"))
	if err != nil || torn {
		t.Fatalf("span log: torn=%v err=%v", torn, err)
	}
	found := false
	for _, sp := range got {
		if sp.Cell == OpSimulate && sp.Phase == "serve" && sp.DurUS >= 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no serve span for simulate in %+v", got)
	}
	if strings.Contains(string(body), "ccrd_requests_unknown_total 0\n") == false {
		t.Errorf("unknown-op counter series absent")
	}
}
