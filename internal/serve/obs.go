package serve

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"ccr/internal/core"
	"ccr/internal/obsv"
	"ccr/internal/runner"
)

// This file is the server side of the observability plane: the obsv
// registry instrumentation behind -http, the always-on (constant-cost)
// live-status state behind the top op, and the per-request span hook.
//
// The split matters for the zero-overhead contract: everything keyed on
// s.met / s.cfg.Spans is nil-guarded and completely absent without
// -http/-spans; the always-on state (request counts, active table, reuse
// totals) is a few mutex-protected integer updates per request — never
// per instruction — and feeds the wire-level stats/top ops that must
// work on an uninstrumented daemon too.

// knownOps enumerates the dispatchable operations; per-op series are
// registered up front so /metrics exposes a stable set from the first
// scrape.
var knownOps = []string{OpPing, OpCompile, OpSimulate, OpBatch, OpSweep,
	OpVerify, OpPhases, OpStats, OpTop, OpDrain}

// srvMetrics holds the registry instruments. A nil *srvMetrics (daemon
// without -http) makes every method a no-op.
type srvMetrics struct {
	reg     *obsv.Registry
	reqs    map[string]*obsv.Counter
	errs    map[string]*obsv.Counter
	lat     map[string]*obsv.Histogram
	unknown *obsv.Counter
}

// newSrvMetrics registers the daemon's instruments on reg. Registration
// errors are impossible for the static names used here; any that do
// occur (e.g. a caller pre-registered a colliding name) are logged once
// and leave the corresponding instrument nil — which is safe to use.
func newSrvMetrics(s *Server, reg *obsv.Registry) *srvMetrics {
	m := &srvMetrics{
		reg:  reg,
		reqs: map[string]*obsv.Counter{},
		errs: map[string]*obsv.Counter{},
		lat:  map[string]*obsv.Histogram{},
	}
	fail := func(err error) {
		if err != nil {
			s.log.Warn("ccrd: metric registration failed", "err", err)
		}
	}
	for _, op := range knownOps {
		c, err := reg.Counter("ccrd_requests_total",
			"Requests received, by operation.", obsv.L("op", op))
		fail(err)
		m.reqs[op] = c
		e, err := reg.Counter("ccrd_request_errors_total",
			"Requests answered with an error frame, by operation.", obsv.L("op", op))
		fail(err)
		m.errs[op] = e
		h, err := reg.Histogram("ccrd_request_seconds",
			"Request handling latency in seconds, by operation.", nil, obsv.L("op", op))
		fail(err)
		m.lat[op] = h
	}
	var err error
	m.unknown, err = reg.Counter("ccrd_requests_unknown_total",
		"Requests for an operation the daemon does not implement.")
	fail(err)
	fail(reg.GaugeFunc("ccrd_uptime_seconds", "Seconds since the daemon started.",
		func() float64 { return time.Since(s.start).Seconds() }))
	fail(reg.GaugeFunc("ccrd_inflight_requests", "Requests being handled right now.",
		func() float64 { return float64(s.inflight.Load()) }))
	fail(reg.GaugeFunc("ccrd_open_connections", "Open client connections.",
		func() float64 { return float64(s.connN.Load()) }))
	fail(reg.GaugeFunc("ccrd_draining", "1 while graceful shutdown is in progress.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		}))
	if st := s.cfg.Store; st != nil {
		samples := []struct {
			name, help string
			fn         func() float64
		}{
			{"ccrd_store_puts_total", "Artifact-store entries written.",
				func() float64 { return float64(st.Stats().Puts) }},
			{"ccrd_store_hits_total", "Artifact-store reads served.",
				func() float64 { return float64(st.Stats().Hits) }},
			{"ccrd_store_misses_total", "Artifact-store reads missed.",
				func() float64 { return float64(st.Stats().Misses) }},
			{"ccrd_store_stale_total", "Store misses from a revision mismatch.",
				func() float64 { return float64(st.Stats().Stale) }},
			{"ccrd_store_quarantined_total", "Corrupt store entries quarantined.",
				func() float64 { return float64(st.Stats().Corrupt) }},
		}
		for _, sm := range samples {
			fail(reg.CounterFunc(sm.name, sm.help, sm.fn))
		}
	}
	return m
}

// observe records one handled request's op, latency and outcome.
func (m *srvMetrics) observe(op string, d time.Duration, failed bool) {
	if m == nil {
		return
	}
	c, ok := m.reqs[op]
	if !ok {
		m.unknown.Inc()
		return
	}
	c.Inc()
	m.lat[op].Observe(d.Seconds())
	if failed {
		m.errs[op].Inc()
	}
}

// registerSuite exposes one resident suite's cache counters. Called from
// entry() under s.mu at suite creation; the sampler closures read the
// suite's own atomic counters at scrape time, so no double accounting.
func (m *srvMetrics) registerSuite(s *Server, scale string, e *suiteEntry) {
	if m == nil {
		return
	}
	fams := make([]string, 0, 8)
	for fam := range e.suite.CacheStats() {
		fams = append(fams, fam)
	}
	fams = append(fams, "ccr_digest")
	sort.Strings(fams)
	stats := func(fam string) runner.CacheStats {
		if fam == "ccr_digest" {
			return e.ccrDigests.Stats()
		}
		return e.suite.CacheStats()[fam]
	}
	for _, fam := range fams {
		fam := fam
		err := m.reg.CounterFunc("ccrd_suite_cache_hits_total",
			"Resident suite cache hits, by scale and cache family.",
			func() float64 { return float64(stats(fam).Hits) },
			obsv.L("scale", scale), obsv.L("cache", fam))
		if err != nil {
			s.log.Warn("ccrd: metric registration failed", "err", err)
		}
		err = m.reg.CounterFunc("ccrd_suite_cache_misses_total",
			"Resident suite cache misses, by scale and cache family.",
			func() float64 { return float64(stats(fam).Misses) },
			obsv.L("scale", scale), obsv.L("cache", fam))
		if err != nil {
			s.log.Warn("ccrd: metric registration failed", "err", err)
		}
	}
}

// registerReuse exposes one scheme's reuse totals the first time the
// scheme is served. Called under s.totalsMu; the samplers re-take it.
func (m *srvMetrics) registerReuse(s *Server, scheme string, t *ReuseTotals) {
	if m == nil {
		return
	}
	samples := []struct {
		name, help string
		fn         func(*ReuseTotals) int64
	}{
		{"ccrd_reuse_cells_total", "Timed simulate cells served, by scheme.",
			func(t *ReuseTotals) int64 { return t.Cells }},
		{"ccrd_reuse_dyn_instrs_total", "Dynamic instructions simulated, by scheme.",
			func(t *ReuseTotals) int64 { return t.DynInstrs }},
		{"ccrd_reuse_hits_total", "CRB reuse hits, by scheme.",
			func(t *ReuseTotals) int64 { return t.ReuseHits }},
		{"ccrd_reuse_misses_total", "CRB reuse misses, by scheme.",
			func(t *ReuseTotals) int64 { return t.ReuseMisses }},
		{"ccrd_reuse_reused_instrs_total", "Instructions eliminated by CRB reuse, by scheme.",
			func(t *ReuseTotals) int64 { return t.ReusedInstrs }},
		{"ccrd_dtm_hits_total", "DTM trace hits, by scheme.",
			func(t *ReuseTotals) int64 { return t.DTMHits }},
		{"ccrd_dtm_reused_instrs_total", "Instructions eliminated by DTM traces, by scheme.",
			func(t *ReuseTotals) int64 { return t.DTMReusedInstrs }},
		{"ccrd_dtm_records_total", "DTM traces committed, by scheme.",
			func(t *ReuseTotals) int64 { return t.DTMRecords }},
	}
	for _, sm := range samples {
		fn := sm.fn
		err := m.reg.CounterFunc(sm.name, sm.help, func() float64 {
			s.totalsMu.Lock()
			defer s.totalsMu.Unlock()
			return float64(fn(t))
		}, obsv.L("scheme", scheme))
		if err != nil {
			s.log.Warn("ccrd: metric registration failed", "err", err)
		}
	}
}

// recordSim folds one timed simulation into the per-scheme totals (and,
// on a scheme's first appearance, registers its registry series).
func (s *Server) recordSim(scheme string, sim *core.SimResult) {
	s.totalsMu.Lock()
	t := s.totals[scheme]
	if t == nil {
		t = &ReuseTotals{}
		s.totals[scheme] = t
		s.met.registerReuse(s, scheme, t)
	}
	t.Cells++
	t.DynInstrs += sim.Emu.DynInstrs
	t.ReuseHits += sim.Emu.ReuseHits
	t.ReuseMisses += sim.Emu.ReuseMisses
	t.ReusedInstrs += sim.Emu.ReusedInstrs
	t.Invalidations += sim.Emu.Invalidations
	t.DTMHits += sim.Emu.DTMHits
	t.DTMReusedInstrs += sim.Emu.DTMReusedInstrs
	if d := sim.DTM; d != nil {
		t.DTMLookups += d.Lookups
		t.DTMRecords += d.Records
		t.DTMInvalidates += d.Invalidates
	}
	t.DTMHeads += int64(len(sim.DTMHeads))
	s.totalsMu.Unlock()
}

// reuseSnapshot copies the per-scheme totals for a stats/top reply.
func (s *Server) reuseSnapshot() map[string]ReuseTotals {
	s.totalsMu.Lock()
	defer s.totalsMu.Unlock()
	if len(s.totals) == 0 {
		return nil
	}
	out := make(map[string]ReuseTotals, len(s.totals))
	for k, t := range s.totals {
		out[k] = *t
	}
	return out
}

// trackActive files one in-flight request in the live table and returns
// a handle for untrackActive.
func (s *Server) trackActive(op string) uint64 {
	s.activeMu.Lock()
	s.activeID++
	id := s.activeID
	s.active[id] = activeEntry{op: op, start: time.Now()}
	s.activeMu.Unlock()
	return id
}

func (s *Server) untrackActive(id uint64) {
	s.activeMu.Lock()
	delete(s.active, id)
	s.activeMu.Unlock()
}

type activeEntry struct {
	op    string
	start time.Time
}

// activeSnapshot lists in-flight requests, oldest first, capped at 32.
func (s *Server) activeSnapshot() []ActiveReq {
	now := time.Now()
	s.activeMu.Lock()
	entries := make([]activeEntry, 0, len(s.active))
	for _, e := range s.active {
		entries = append(entries, e)
	}
	s.activeMu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].start.Before(entries[j].start) })
	if len(entries) > 32 {
		entries = entries[:32]
	}
	out := make([]ActiveReq, len(entries))
	for i, e := range entries {
		out[i] = ActiveReq{Op: e.op, ElapsedMS: float64(now.Sub(e.start).Microseconds()) / 1e3}
	}
	return out
}

// suitesSnapshot copies every resident suite's cache stats.
func (s *Server) suitesSnapshot() map[string]SuiteStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.suites) == 0 {
		return nil
	}
	out := make(map[string]SuiteStats, len(s.suites))
	for name, e := range s.suites {
		caches := e.suite.CacheStats()
		caches["ccr_digest"] = e.ccrDigests.Stats()
		out[name] = SuiteStats{Benches: len(e.suite.Benches), Caches: caches}
	}
	return out
}

// topSnapshot assembles one live-status frame.
func (s *Server) topSnapshot() TopSnapshot {
	snap := TopSnapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Conns:         s.connN.Load(),
		InFlight:      s.inflight.Load(),
		Draining:      s.draining.Load(),
		Requests:      map[string]int64{},
		Active:        s.activeSnapshot(),
		Suites:        s.suitesSnapshot(),
		Reuse:         s.reuseSnapshot(),
		Goroutines:    runtime.NumGoroutine(),
	}
	s.reqMu.Lock()
	for op, n := range s.reqs {
		snap.Requests[op] = n
	}
	s.reqMu.Unlock()
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		snap.Store = &st
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap.HeapBytes = ms.HeapAlloc
	return snap
}

// doTop streams periodic snapshots through emit until the requested
// count is reached, the client vanishes, or the daemon drains.
func (s *Server) doTop(req TopReq, emit func(TopSnapshot) error) (*TopResp, error) {
	interval := time.Duration(req.IntervalMS) * time.Millisecond
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	count := req.Count
	if count == 0 {
		count = 1
	}
	if count < -1 {
		return nil, fmt.Errorf("serve: top count %d (want -1, 0 or a positive bound)", req.Count)
	}
	n := 0
	for {
		if err := emit(s.topSnapshot()); err != nil {
			break // client gone; the final write will fail too, and that's fine
		}
		n++
		if count > 0 && n >= count {
			break
		}
		// An unbounded top must not wedge a drain: sleep in slices and
		// re-check, so Drain waits at most ~100ms on this request.
		deadline := time.Now().Add(interval)
		for !s.draining.Load() && time.Now().Before(deadline) {
			d := time.Until(deadline)
			if d > 100*time.Millisecond {
				d = 100 * time.Millisecond
			}
			time.Sleep(d)
		}
		if s.draining.Load() {
			break
		}
	}
	return &TopResp{Snapshots: n}, nil
}
