// Package wire is the framing layer of the ccrd protocol: length-prefixed
// JSON messages over any byte stream (unix socket or TCP). Each frame is a
// 4-byte big-endian payload length followed by exactly that many bytes of
// JSON encoding one Msg — a typed, id-correlated envelope.
//
// The codec is deliberately boring: self-delimiting frames make request
// pipelining and interleaved streaming-progress frames trivial, a hard
// frame-size bound keeps a malformed or hostile peer from ballooning the
// daemon's memory, and every decode failure surfaces as an error — never a
// panic — so one bad client cannot take the daemon down (FuzzWireRoundTrip
// pins this).
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// ProtoVersion is the wire-protocol generation, exchanged (alongside the
// build identity) in the hello handshake. Bump it on any incompatible
// framing or envelope change.
const ProtoVersion = 1

// MaxFrame bounds one frame's payload; larger announced lengths are
// rejected before any allocation. Batch responses carry at most a few
// thousand cells of a few hundred bytes each, so 64 MiB is generous.
const MaxFrame = 64 << 20

// Envelope types. Request op names (simulate, batch, ...) are the serve
// package's vocabulary; the framing layer only distinguishes the message
// kinds that affect conversation flow.
const (
	// TypeHello opens a connection in both directions: the client's build
	// identity and protocol version, then the server's.
	TypeHello = "hello"
	// TypeRequest carries an operation request; Msg.Op names the operation.
	TypeRequest = "request"
	// TypeResult carries a request's successful final response.
	TypeResult = "result"
	// TypeError carries a request's failure as a string.
	TypeError = "error"
	// TypeProgress carries an intermediate progress snapshot for a
	// streaming request; zero or more precede the final result/error.
	TypeProgress = "progress"
)

// Msg is one frame's envelope. ID correlates a request with its progress
// and final frames; the client chooses it, the server echoes it.
type Msg struct {
	Type string `json:"type"`
	// Op is the requested operation for TypeRequest frames.
	Op string `json:"op,omitempty"`
	ID uint64 `json:"id,omitempty"`
	// Body is the operation-specific payload.
	Body json.RawMessage `json:"body,omitempty"`
}

// Decode unmarshals the message body into v; an absent body decodes only
// into pointers happy with empty input.
func (m Msg) Decode(v any) error {
	body := m.Body
	if len(body) == 0 {
		body = []byte("{}")
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("wire: decode %s body: %w", m.Type, err)
	}
	return nil
}

// Framing errors, classifiable with errors.Is.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size bound")
	ErrEmptyFrame    = errors.New("wire: zero-length frame")
)

// Codec frames messages over one stream. Reads must come from a single
// goroutine; writes are internally serialized so a streaming request's
// progress frames (written from a heartbeat goroutine) can interleave
// safely with responses.
type Codec struct {
	r    *bufio.Reader
	w    *bufio.Writer
	wmu  sync.Mutex
	lim  int
	rbuf [4]byte
}

// NewCodec wraps a byte stream. The read and write halves are independent;
// rw is typically a net.Conn.
func NewCodec(rw io.ReadWriter) *Codec {
	return &Codec{r: bufio.NewReader(rw), w: bufio.NewWriter(rw), lim: MaxFrame}
}

// SetLimit overrides the frame-size bound (tests only; the default is
// MaxFrame).
func (c *Codec) SetLimit(n int) { c.lim = n }

// Read reads the next frame. io.EOF is returned bare when the stream ends
// cleanly between frames; any truncation mid-frame is io.ErrUnexpectedEOF.
func (c *Codec) Read() (Msg, error) {
	var m Msg
	if _, err := io.ReadFull(c.r, c.rbuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return m, io.EOF
		}
		return m, fmt.Errorf("wire: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(c.rbuf[:])
	if n == 0 {
		return m, ErrEmptyFrame
	}
	if int64(n) > int64(c.lim) {
		return m, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, c.lim)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return m, fmt.Errorf("wire: read %d-byte frame: %w", n, err)
	}
	if err := json.Unmarshal(buf, &m); err != nil {
		return m, fmt.Errorf("wire: decode frame: %w", err)
	}
	return m, nil
}

// WriteMsg frames and flushes one message.
func (c *Codec) WriteMsg(m Msg) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: encode frame: %w", err)
	}
	if len(payload) > c.lim {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, len(payload), c.lim)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := c.w.Write(payload); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush frame: %w", err)
	}
	return nil
}

// Write marshals body and sends it under the given envelope.
func (c *Codec) Write(typ, op string, id uint64, body any) error {
	var raw json.RawMessage
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("wire: encode %s body: %w", typ, err)
		}
		raw = data
	}
	return c.WriteMsg(Msg{Type: typ, Op: op, ID: id, Body: raw})
}

// WriteError sends a TypeError frame carrying the error text for id.
func (c *Codec) WriteError(id uint64, err error) error {
	return c.Write(TypeError, "", id, ErrorBody{Error: err.Error()})
}

// ErrorBody is the body of a TypeError frame.
type ErrorBody struct {
	Error string `json:"error"`
}
