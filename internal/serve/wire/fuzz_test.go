package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzWireRoundTrip drives the codec from both ends with arbitrary bytes:
//
//  1. the bytes are fed to Read as a raw stream — a malformed frame must
//     produce an error, never a panic (the daemon shares its process with
//     every other client's connection);
//  2. the bytes are wrapped into a well-formed message and round-tripped —
//     whatever Write produced, Read must reproduce exactly.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add([]byte(`{"type":"request","op":"simulate","id":3}`))
	seed := func(m Msg) {
		var buf bytes.Buffer
		c := NewCodec(&buf)
		if err := c.WriteMsg(m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(Msg{Type: TypeHello})
	seed(Msg{Type: TypeRequest, Op: "batch", ID: 99, Body: []byte(`{"cells":[{"bench":"lex"}]}`)})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Malicious-stream half: decode until the stream errors or ends.
		// The only accepted outcomes are messages and errors.
		c := NewCodec(bytes.NewBuffer(data))
		for i := 0; i < 64; i++ {
			if _, err := c.Read(); err != nil {
				if errors.Is(err, io.EOF) && i == 0 && len(data) > 0 && len(data) < 4 {
					t.Fatal("short header must be ErrUnexpectedEOF, not clean EOF")
				}
				break
			}
		}

		// Round-trip half: any bytes become a valid body via JSON string
		// encoding (base64), and the envelope must survive bit-exactly.
		id := uint64(len(data))
		var buf bytes.Buffer
		enc := NewCodec(&buf)
		if err := enc.Write(TypeRequest, "fuzz", id, data); err != nil {
			t.Fatalf("write: %v", err)
		}
		// The frame header must announce exactly the bytes that follow.
		raw := buf.Bytes()
		if len(raw) < 4 {
			t.Fatalf("frame shorter than header: %d bytes", len(raw))
		}
		if n := binary.BigEndian.Uint32(raw); int(n) != len(raw)-4 {
			t.Fatalf("header announces %d bytes, frame has %d", n, len(raw)-4)
		}
		m, err := NewCodec(bytes.NewBuffer(raw)).Read()
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if m.Type != TypeRequest || m.Op != "fuzz" || m.ID != id {
			t.Fatalf("envelope diverged: %+v", m)
		}
		var back []byte
		if err := m.Decode(&back); err != nil {
			t.Fatalf("decode body: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("body diverged: %x vs %x", back, data)
		}
	})
}
