package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// pipeBuffer is an in-memory ReadWriter: writes append, reads consume.
type pipeBuffer struct {
	bytes.Buffer
}

func roundTrip(t *testing.T, msgs []Msg) []Msg {
	t.Helper()
	var buf pipeBuffer
	c := NewCodec(&buf)
	for _, m := range msgs {
		if err := c.WriteMsg(m); err != nil {
			t.Fatalf("write %+v: %v", m, err)
		}
	}
	var out []Msg
	for {
		m, err := c.Read()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		out = append(out, m)
	}
}

func TestRoundTrip(t *testing.T) {
	in := []Msg{
		{Type: TypeHello, Body: json.RawMessage(`{"proto":1}`)},
		{Type: TypeRequest, Op: "simulate", ID: 7, Body: json.RawMessage(`{"bench":"compress"}`)},
		{Type: TypeProgress, ID: 7, Body: json.RawMessage(`{"done":3,"total":9}`)},
		{Type: TypeResult, ID: 7},
		{Type: TypeError, ID: 8, Body: json.RawMessage(`{"error":"boom"}`)},
	}
	out := roundTrip(t, in)
	if len(out) != len(in) {
		t.Fatalf("got %d messages, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i].Type != out[i].Type || in[i].Op != out[i].Op || in[i].ID != out[i].ID {
			t.Errorf("msg %d envelope diverged: %+v vs %+v", i, out[i], in[i])
		}
		if len(in[i].Body) > 0 && !bytes.Equal(in[i].Body, out[i].Body) {
			t.Errorf("msg %d body diverged: %s vs %s", i, out[i].Body, in[i].Body)
		}
	}
}

func TestWriteHelperAndDecode(t *testing.T) {
	var buf pipeBuffer
	c := NewCodec(&buf)
	type payload struct {
		Bench string `json:"bench"`
		N     int    `json:"n"`
	}
	if err := c.Write(TypeRequest, "simulate", 3, payload{Bench: "lex", N: 42}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeRequest || m.Op != "simulate" || m.ID != 3 {
		t.Fatalf("envelope = %+v", m)
	}
	var p payload
	if err := m.Decode(&p); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, payload{Bench: "lex", N: 42}) {
		t.Fatalf("decoded %+v", p)
	}
}

func TestDecodeEmptyBody(t *testing.T) {
	var p struct{ X int }
	if err := (Msg{Type: TypeResult}).Decode(&p); err != nil {
		t.Fatalf("empty body must decode into a struct: %v", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf pipeBuffer
	c := NewCodec(&buf)
	c.SetLimit(64)
	big := strings.Repeat("x", 200)
	if err := c.Write(TypeResult, "", 1, map[string]string{"v": big}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize write error = %v, want ErrFrameTooLarge", err)
	}
	// An announced length over the bound must be rejected before reading
	// the payload.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	buf.Write(hdr[:])
	if _, err := c.Read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize read error = %v, want ErrFrameTooLarge", err)
	}
}

func TestMalformedFrames(t *testing.T) {
	cases := map[string][]byte{
		"zero length":       {0, 0, 0, 0},
		"truncated header":  {0, 0},
		"truncated payload": {0, 0, 0, 9, '{', '}'},
		"invalid json":      {0, 0, 0, 3, 'z', 'z', 'z'},
	}
	for name, raw := range cases {
		c := NewCodec(bytes.NewBuffer(raw))
		if _, err := c.Read(); err == nil {
			t.Errorf("%s: Read accepted malformed input", name)
		}
	}
	// A clean EOF between frames is bare io.EOF — the signal a connection
	// closed normally.
	c := NewCodec(bytes.NewBuffer(nil))
	if _, err := c.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("empty stream error = %v, want io.EOF", err)
	}
}

// lockstepRW serializes concurrent writes so the interleaving test can use
// one shared buffer from many goroutines.
type lockstepRW struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *lockstepRW) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *lockstepRW) Read(p []byte) (int, error) { return l.buf.Read(p) }

// TestConcurrentWrites: frames written from many goroutines through one
// codec never interleave mid-frame — every frame decodes intact.
func TestConcurrentWrites(t *testing.T) {
	rw := &lockstepRW{}
	c := NewCodec(rw)
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := c.Write(TypeProgress, "", uint64(w), map[string]int{"i": i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	seen := 0
	for {
		m, err := c.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("frame %d corrupted: %v", seen, err)
		}
		if m.Type != TypeProgress || m.ID >= writers {
			t.Fatalf("frame %d envelope mangled: %+v", seen, m)
		}
		seen++
	}
	if seen != writers*per {
		t.Fatalf("read %d frames, want %d", seen, writers*per)
	}
}
