// Package serve is the ccrd simulation service: a long-running daemon that
// keeps the expensive artifacts of the CCR pipeline — prepared (alias-
// annotated) benchmark programs, predecoded ir code, CCR compilations,
// baseline and CCR timing runs, limit studies and oracle digests — resident
// in single-flight caches across requests, and serves compile / simulate /
// sweep / verify / phases requests from many concurrent clients over the
// length-prefixed JSON protocol of internal/serve/wire.
//
// The resident state is exactly the experiments.Suite cache family, shared
// by every request at the same workload scale, so the daemon's answers are
// byte-identical to a fresh single-shot CLI run: caches only ever memoize
// deterministic pure computations keyed by their full inputs (benchmark,
// dataset, crb.Config.Key()). Warm requests skip recomputation entirely —
// the latency gap between the first and second identical request is the
// service's reason to exist (BENCH_serve.json records it).
package serve

import (
	"fmt"

	"ccr/internal/buildinfo"
	"ccr/internal/core"
	"ccr/internal/crb"
	"ccr/internal/experiments"
	"ccr/internal/oracle"
	"ccr/internal/reuse"
	"ccr/internal/runner"
	"ccr/internal/store"
	"ccr/internal/workloads"
)

// Operation names carried in wire.Msg.Op.
const (
	OpPing     = "ping"
	OpCompile  = "compile"
	OpSimulate = "simulate"
	OpBatch    = "batch"
	OpSweep    = "sweep"
	OpVerify   = "verify"
	OpPhases   = "phases"
	OpStats    = "stats"
	OpTop      = "top"
	OpDrain    = "drain"
)

// Hello is the handshake body, sent client-first and echoed by the server
// with its own identity. The server refuses a protocol-generation mismatch
// outright; the client refuses a build-identity mismatch (exit 2) unless
// forced, because a version-skewed pair silently voids the byte-identity
// guarantee the service advertises.
type Hello struct {
	Proto int            `json:"proto"`
	Build buildinfo.Info `json:"build"`
}

// CRBGeom selects a CRB geometry on the wire; the zero value means the
// paper's default configuration.
type CRBGeom struct {
	Entries   int     `json:"entries,omitempty"`
	Instances int     `json:"instances,omitempty"`
	Assoc     int     `json:"assoc,omitempty"`
	NoMemFrac float64 `json:"nomem_frac,omitempty"`
}

// Config materializes the geometry over the default configuration.
func (g CRBGeom) Config() crb.Config {
	c := crb.DefaultConfig()
	if g.Entries > 0 {
		c.Entries = g.Entries
	}
	if g.Instances > 0 {
		c.Instances = g.Instances
	}
	if g.Assoc > 0 {
		c.Assoc = g.Assoc
	}
	if g.NoMemFrac > 0 {
		c.NoMemEntriesFrac = g.NoMemFrac
	}
	return c
}

// DTMGeom selects a trace-memoization buffer geometry on the wire; the
// zero value means the default configuration.
type DTMGeom struct {
	Entries   int `json:"entries,omitempty"`
	Instances int `json:"instances,omitempty"`
	Assoc     int `json:"assoc,omitempty"`
	MinRun    int `json:"min_run,omitempty"`
}

// Config materializes the geometry over the default configuration.
func (g DTMGeom) Config() reuse.DTMConfig {
	c := reuse.DefaultDTMConfig()
	if g.Entries > 0 {
		c.Entries = g.Entries
	}
	if g.Instances > 0 {
		c.Instances = g.Instances
	}
	if g.Assoc > 0 {
		c.Assoc = g.Assoc
	}
	if g.MinRun > 0 {
		c.MinRun = g.MinRun
	}
	return c
}

// SimulateReq asks for one simulation cell: a (benchmark, scale, dataset)
// point run either as the base program without reuse hardware (Base) or
// under the requested reuse scheme and geometry.
type SimulateReq struct {
	Bench   string `json:"bench"`
	Scale   string `json:"scale,omitempty"`   // tiny|small|medium|large; default small
	Dataset string `json:"dataset,omitempty"` // train|ref; default train
	Base    bool   `json:"base,omitempty"`
	// Scheme selects the reuse scheme for non-Base cells: ccr (default),
	// dtm, both or off.
	Scheme string `json:"scheme,omitempty"`
	// CRB overrides the default geometry for runs with a CCR component;
	// ignored with Base or a pure-DTM scheme.
	CRB *CRBGeom `json:"crb,omitempty"`
	// DTM overrides the default trace-buffer geometry for runs with a DTM
	// component; ignored otherwise.
	DTM *DTMGeom `json:"dtm,omitempty"`
	// Digest additionally runs the functional oracle digest of the cell
	// (cached server-side) — the client-checkable transparency receipt.
	Digest bool `json:"digest,omitempty"`
	// NoTiming skips the cycle-level timing model; only meaningful
	// together with Digest (a functional-only request).
	NoTiming bool `json:"no_timing,omitempty"`
}

// reuseConfig resolves a request's scheme selection. Base requests map to
// the off scheme; non-Base requests default to the classic CCR scheme.
func reuseConfig(req SimulateReq) (reuse.Config, error) {
	if req.Base {
		return reuse.Config{Scheme: reuse.Off}, nil
	}
	sch := reuse.CCRScheme
	if req.Scheme != "" {
		var err error
		if sch, err = reuse.ParseScheme(req.Scheme); err != nil {
			return reuse.Config{}, fmt.Errorf("serve: %w", err)
		}
	}
	rc := reuse.Config{Scheme: sch}
	if sch.UsesCCR() {
		rc.CRB = crb.DefaultConfig()
		if req.CRB != nil {
			rc.CRB = req.CRB.Config()
		}
	}
	if sch.UsesDTM() {
		rc.DTM = reuse.DefaultDTMConfig()
		if req.DTM != nil {
			rc.DTM = req.DTM.Config()
		}
	}
	return rc, nil
}

// EmuStats is the wire subset of the emulator's run statistics.
type EmuStats struct {
	DynInstrs       int64 `json:"dyn_instrs"`
	ReuseHits       int64 `json:"reuse_hits,omitempty"`
	ReuseMisses     int64 `json:"reuse_misses,omitempty"`
	ReusedInstrs    int64 `json:"reused_instrs,omitempty"`
	DTMHits         int64 `json:"dtm_hits,omitempty"`
	DTMReusedInstrs int64 `json:"dtm_reused_instrs,omitempty"`
	MemoAborts      int64 `json:"memo_aborts,omitempty"`
	Invalidations   int64 `json:"invalidations,omitempty"`
}

// SimulateResp is one cell's answer.
type SimulateResp struct {
	Bench   string `json:"bench"`
	Dataset string `json:"dataset"`
	// Config is the canonical reuse.Config.Key() of the simulated scheme
	// point, or "base" for a reuse-off baseline run.
	Config string `json:"config"`
	Result int64  `json:"result"`
	// Cycles is the timing model's cycle count (0 with NoTiming).
	Cycles int64        `json:"cycles,omitempty"`
	Emu    EmuStats     `json:"emu"`
	CRB    *crb.Stats   `json:"crb,omitempty"`
	DTM    *reuse.Stats `json:"dtm,omitempty"`
	// Digest is the functional run's architectural digest when requested.
	Digest *oracle.Digest `json:"digest,omitempty"`
	// ServerNS is the server-side wall time of this cell, nanoseconds —
	// the cache-warmth signal (a warm cell is orders of magnitude faster).
	ServerNS int64 `json:"server_ns"`
}

// CompileReq asks for the CCR compilation summary of one benchmark.
type CompileReq struct {
	Bench string `json:"bench"`
	Scale string `json:"scale,omitempty"`
}

// CompileResp summarizes a compilation.
type CompileResp struct {
	Bench        string `json:"bench"`
	Regions      int    `json:"regions"`
	RegionInstrs int    `json:"region_instrs"`
	TrainResult  int64  `json:"train_result"`
	ServerNS     int64  `json:"server_ns"`
}

// BatchReq is the batch endpoint: one request, many cells, executed on a
// per-request runner.Pool over the shared resident caches.
type BatchReq struct {
	Cells []SimulateReq `json:"cells"`
	// Jobs is the pool width for this batch (0 = server default).
	Jobs int `json:"jobs,omitempty"`
	// Stream asks for progress frames while the batch runs; HeartbeatMS
	// sets their interval (default 500ms).
	Stream      bool `json:"stream,omitempty"`
	HeartbeatMS int  `json:"heartbeat_ms,omitempty"`
}

// BatchCell is one cell's outcome inside a batch response.
type BatchCell struct {
	SimulateResp
	Err string `json:"err,omitempty"`
}

// BatchResp answers a batch: results in cell order, plus pool accounting.
type BatchResp struct {
	Results     []BatchCell `json:"results"`
	Failed      int         `json:"failed"`
	Jobs        int         `json:"jobs"`
	WallSeconds float64     `json:"wall_seconds"`
}

// SweepReq runs the full speedup grid — every benchmark × dataset × the
// standard sweep geometries (the Figure 8 + ablation matrix) — on the
// resident caches.
type SweepReq struct {
	Scale       string `json:"scale,omitempty"`
	Jobs        int    `json:"jobs,omitempty"`
	Stream      bool   `json:"stream,omitempty"`
	HeartbeatMS int    `json:"heartbeat_ms,omitempty"`
}

// SweepRow is one grid point's speedup.
type SweepRow struct {
	Bench   string  `json:"bench"`
	Dataset string  `json:"dataset"`
	Config  string  `json:"config"`
	Speedup float64 `json:"speedup,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// SweepResp answers a sweep.
type SweepResp struct {
	Rows        []SweepRow `json:"rows"`
	Failed      int        `json:"failed"`
	WallSeconds float64    `json:"wall_seconds"`
}

// VerifyReq runs the §3.1 transparency-verification sweep (the same code
// path as `ccrpaper -verify`) on the resident suite.
type VerifyReq struct {
	Scale       string `json:"scale,omitempty"`
	Jobs        int    `json:"jobs,omitempty"`
	Stream      bool   `json:"stream,omitempty"`
	HeartbeatMS int    `json:"heartbeat_ms,omitempty"`
}

// VerifyResp reports the sweep outcome; Rows is empty when the
// transparency contract held at every point.
type VerifyResp struct {
	Checked     int                     `json:"checked"`
	Rows        []experiments.VerifyRow `json:"rows,omitempty"`
	WallSeconds float64                 `json:"wall_seconds"`
}

// PhasesReq runs the warm-buffer train→ref phase study of one benchmark —
// the one endpoint whose CRB state deliberately persists across program
// runs (within the request; the buffer never leaks between requests).
type PhasesReq struct {
	Bench string   `json:"bench"`
	Scale string   `json:"scale,omitempty"`
	CRB   *CRBGeom `json:"crb,omitempty"`
}

// PhasesResp carries the per-phase counters.
type PhasesResp struct {
	Bench  string                    `json:"bench"`
	Phases [2]experiments.PhaseStats `json:"phases"`
}

// ProgressBody is a streaming-progress frame's payload: one heartbeat
// snapshot of the request's pool (runner.Progress over the wire).
type ProgressBody struct {
	Done        int     `json:"done"`
	Total       int     `json:"total"`
	Failed      int     `json:"failed,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	EtaMS       float64 `json:"eta_ms,omitempty"`
	Utilization float64 `json:"utilization"`
}

func progressBody(p runner.Progress) ProgressBody {
	return ProgressBody{
		Done: p.Done, Total: p.Total, Failed: p.Failed,
		ElapsedMS:   float64(p.Elapsed.Microseconds()) / 1e3,
		EtaMS:       float64(p.ETA.Microseconds()) / 1e3,
		Utilization: p.Utilization,
	}
}

// SuiteStats reports one resident suite's cache effectiveness.
type SuiteStats struct {
	Benches int                          `json:"benches"`
	Caches  map[string]runner.CacheStats `json:"caches"`
}

// ReuseTotals aggregates the emulator and DTM statistics of every timed
// simulation the daemon has served, by scheme key ("base", "off", "ccr",
// "dtm", "both") — the per-scheme reuse-rate view of stats and top.
type ReuseTotals struct {
	// Cells counts the timed simulate cells aggregated here.
	Cells           int64 `json:"cells"`
	DynInstrs       int64 `json:"dyn_instrs"`
	ReuseHits       int64 `json:"reuse_hits,omitempty"`
	ReuseMisses     int64 `json:"reuse_misses,omitempty"`
	ReusedInstrs    int64 `json:"reused_instrs,omitempty"`
	Invalidations   int64 `json:"invalidations,omitempty"`
	DTMHits         int64 `json:"dtm_hits,omitempty"`
	DTMReusedInstrs int64 `json:"dtm_reused_instrs,omitempty"`
	// DTM trace-buffer counters (dtm/both schemes): buffer lookups and
	// hits, traces committed, instances invalidated by store watching,
	// and distinct heads observed (summed over cells).
	DTMLookups     int64 `json:"dtm_lookups,omitempty"`
	DTMRecords     int64 `json:"dtm_records,omitempty"`
	DTMInvalidates int64 `json:"dtm_invalidates,omitempty"`
	DTMHeads       int64 `json:"dtm_heads,omitempty"`
}

// StatsResp is the daemon's self-report.
type StatsResp struct {
	Build         buildinfo.Info        `json:"build"`
	Proto         int                   `json:"proto"`
	UptimeSeconds float64               `json:"uptime_seconds"`
	Requests      map[string]int64      `json:"requests"`
	InFlight      int64                 `json:"in_flight"`
	Conns         int64                 `json:"conns"`
	Draining      bool                  `json:"draining"`
	Suites        map[string]SuiteStats `json:"suites,omitempty"`
	// Store reports the artifact-store counters when the daemon runs with
	// -store (warm-store visibility from the client).
	Store *store.Stats `json:"store,omitempty"`
	// Reuse reports the per-scheme reuse totals of every timed simulation
	// served so far, including the DTM head/trace counters.
	Reuse map[string]ReuseTotals `json:"reuse,omitempty"`
}

// TopReq asks the daemon to stream periodic live-status snapshots as
// progress frames, answered by a final TopResp.
type TopReq struct {
	// IntervalMS is the snapshot period (default 1000, clamped to
	// [50ms, 60s]).
	IntervalMS int `json:"interval_ms,omitempty"`
	// Count bounds the stream: 0 means one snapshot, n > 0 means n
	// snapshots, -1 streams until the connection drops or the daemon
	// drains.
	Count int `json:"count,omitempty"`
}

// ActiveReq is one in-flight request in a top snapshot.
type ActiveReq struct {
	Op        string  `json:"op"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// TopSnapshot is one live-status frame: what the daemon is doing right
// now plus its cumulative counters.
type TopSnapshot struct {
	UptimeSeconds float64                `json:"uptime_seconds"`
	Conns         int64                  `json:"conns"`
	InFlight      int64                  `json:"in_flight"`
	Draining      bool                   `json:"draining,omitempty"`
	Requests      map[string]int64       `json:"requests"`
	Active        []ActiveReq            `json:"active,omitempty"`
	Suites        map[string]SuiteStats  `json:"suites,omitempty"`
	Store         *store.Stats           `json:"store,omitempty"`
	Reuse         map[string]ReuseTotals `json:"reuse,omitempty"`
	Goroutines    int                    `json:"goroutines"`
	HeapBytes     uint64                 `json:"heap_bytes"`
}

// TopResp closes a top stream.
type TopResp struct {
	Snapshots int `json:"snapshots"`
}

// PingBody is echoed verbatim.
type PingBody struct {
	Nonce int64 `json:"nonce,omitempty"`
}

// DrainResp acknowledges a drain request before shutdown begins.
type DrainResp struct {
	Draining bool `json:"draining"`
}

// datasetArgs resolves a wire dataset name onto a benchmark's argument
// vector.
func datasetArgs(b *workloads.Benchmark, dataset string) ([]int64, string, error) {
	switch dataset {
	case "", "train":
		return b.Train, "train", nil
	case "ref":
		return b.Ref, "ref", nil
	}
	return nil, "", fmt.Errorf("serve: unknown dataset %q (want train or ref)", dataset)
}

// simKey canonically names a simulate cell for manifests. The scheme key
// embeds the scheme name, so cells of different schemes never alias.
func simKey(req SimulateReq) string {
	cfg := "base"
	if !req.Base {
		if rc, err := reuseConfig(req); err == nil {
			cfg = rc.Key()
		} else {
			cfg = "invalid"
		}
	}
	ds := req.Dataset
	if ds == "" {
		ds = "train"
	}
	return fmt.Sprintf("%s/%s/%s/%s", req.Bench, scaleName(req.Scale), ds, cfg)
}

// scaleName normalizes the wire scale field.
func scaleName(s string) string {
	if s == "" {
		return "small"
	}
	return s
}

// suiteConfig is the fixed pipeline configuration a resident suite runs:
// the paper's defaults at the requested scale. Geometry variations come in
// per request and key the ccr-sim cache, so one suite serves them all.
func suiteConfig(sc workloads.Scale, jobs int) experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = sc
	cfg.Jobs = jobs
	cfg.Opts = core.DefaultOptions()
	return cfg
}
