package progen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccr/internal/emu"
	"ccr/internal/ir"
)

// TestGeneratedProgramsTerminate checks that generated programs verify and
// run cleanly across many seeds. Structured counted loops guarantee
// termination, but nesting can make a program legitimately exceed any
// fixed budget, so hitting the instruction limit is acceptable — every
// other error (faults, verification failures) is not.
func TestGeneratedProgramsTerminate(t *testing.T) {
	f := func(seed uint64, arg uint8) bool {
		p := Generate(seed, DefaultConfig())
		if err := ir.Verify(p); err != nil {
			t.Logf("seed %d: verify: %v", seed, err)
			return false
		}
		m := emu.New(p)
		m.Limit = 5_000_000
		if _, err := m.Run(int64(arg)); err != nil && err != emu.ErrLimit {
			t.Logf("seed %d: run: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

// TestGenerationDeterministic: identical seeds yield identical programs.
func TestGenerationDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		a := Generate(seed, DefaultConfig())
		b := Generate(seed, DefaultConfig())
		return a.Dump() == b.Dump()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(32))}); err != nil {
		t.Fatal(err)
	}
}
