// Package progen generates random, verified, always-terminating IR
// programs for property-based testing. The generator builds structured
// control flow only — sequences, if/else hammocks and counted loops — so
// every generated program halts, while still exercising branches, nested
// calls, loads, stores and multi-block dataflow. The CCR equivalence
// property (transformed program + any CRB ≡ base program) is tested
// against these programs with deliberately aggressive region formation.
package progen

import "ccr/internal/ir"

// Config bounds the generated program shape.
type Config struct {
	Funcs      int // number of functions (≥1)
	Objects    int // number of memory objects (≥1)
	MaxDepth   int // structured-control nesting depth
	MaxStmts   int // statements per nesting level
	MaxLoop    int // maximum counted-loop trip count
	ObjWords   int // words per object (power of two)
	ValueCard  int // cardinality of immediate pools (drives value locality)
	StoreBias  int // percent of memory statements that are stores
	CallBias   int // percent chance a statement is a call (when callees exist)
	ReadOnly   int // percent of objects that are read-only
	MaxParams  int
	MaxRegions int // unused by generation; callers size formation with it
}

// DefaultConfig returns moderate bounds suitable for quick-style tests.
func DefaultConfig() Config {
	return Config{
		Funcs:     4,
		Objects:   4,
		MaxDepth:  3,
		MaxStmts:  6,
		MaxLoop:   5,
		ObjWords:  32,
		ValueCard: 7,
		StoreBias: 30,
		CallBias:  25,
		ReadOnly:  40,
		MaxParams: 3,
	}
}

type gen struct {
	cfg  Config
	rs   uint64
	pb   *ir.ProgramBuilder
	objs []ir.MemID
	ro   []bool
	// funcs built so far (callable from later functions).
	funcs []builtFunc
}

type builtFunc struct {
	id      ir.FuncID
	nparams int
}

func (g *gen) next() uint64 {
	g.rs += 0x9E3779B97F4A7C15
	z := g.rs
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (g *gen) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(g.next() % uint64(n))
}

func (g *gen) pct(p int) bool { return g.intn(100) < p }

// Generate builds a random verified program from the seed.
func Generate(seed uint64, cfg Config) *ir.Program {
	g := &gen{cfg: cfg, rs: seed, pb: ir.NewProgramBuilder("progen")}
	for i := 0; i < cfg.Objects; i++ {
		init := make([]int64, cfg.ObjWords)
		for j := range init {
			init[j] = int64(g.intn(64)) - 16
		}
		if g.pct(cfg.ReadOnly) {
			g.objs = append(g.objs, g.pb.ReadOnlyObject(objName(i), init))
			g.ro = append(g.ro, true)
		} else {
			g.objs = append(g.objs, g.pb.Object(objName(i), int64(cfg.ObjWords), init))
			g.ro = append(g.ro, false)
		}
	}
	// Leaf functions first; later functions may call earlier ones.
	for i := 0; i < cfg.Funcs-1; i++ {
		np := 1 + g.intn(cfg.MaxParams)
		g.buildFunc(funcName(i), np)
	}
	g.buildFunc("main", 1)
	p := g.pb.Build()
	return ir.MustVerify(p)
}

func objName(i int) string  { return "obj" + string(rune('a'+i%26)) }
func funcName(i int) string { return "fn" + string(rune('a'+i%26)) }

// fctx is the per-function emission state.
type fctx struct {
	g    *gen
	fb   *ir.FuncBuilder
	cur  *ir.BlockBuilder
	regs []ir.Reg // general-purpose value registers
}

func (g *gen) buildFunc(name string, nparams int) {
	fb := g.pb.Func(name, nparams)
	c := &fctx{g: g, fb: fb}
	for i := 0; i < nparams; i++ {
		c.regs = append(c.regs, fb.Param(i))
	}
	// A few extra scratch registers seeded with immediates.
	c.cur = fb.NewBlock()
	for i := 0; i < 3; i++ {
		r := fb.NewReg()
		c.cur.MovI(r, int64(g.intn(g.cfg.ValueCard)))
		c.regs = append(c.regs, r)
	}
	c.emitStmts(g.cfg.MaxDepth)
	c.cur.Ret(c.pick())
	g.funcs = append(g.funcs, builtFunc{id: fb.ID(), nparams: nparams})
}

// pick returns a random live register.
func (c *fctx) pick() ir.Reg { return c.regs[c.g.intn(len(c.regs))] }

// fresh allocates a new register, registering it in the pool so later
// statements can consume it.
func (c *fctx) fresh() ir.Reg {
	r := c.fb.NewReg()
	c.regs = append(c.regs, r)
	return r
}

func (c *fctx) emitStmts(depth int) {
	g := c.g
	n := 1 + g.intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		switch {
		case depth > 0 && g.pct(20):
			c.emitLoop(depth - 1)
		case depth > 0 && g.pct(25):
			c.emitIf(depth - 1)
		case g.pct(30):
			c.emitMem()
		case g.pct(g.cfg.CallBias) && len(g.funcs) > 0:
			c.emitCall()
		default:
			c.emitALU()
		}
	}
}

var aluOps = []ir.Opcode{
	ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.And, ir.Or, ir.Xor,
	ir.Shl, ir.Shr, ir.Sra, ir.Slt, ir.Sle, ir.Seq, ir.Sne, ir.Mov,
}

func (c *fctx) emitALU() {
	g := c.g
	op := aluOps[g.intn(len(aluOps))]
	d := c.fresh()
	if op == ir.Mov {
		c.cur.Mov(d, c.pick())
		return
	}
	if g.pct(40) {
		c.cur.Emit(ir.Instr{Op: op, Dest: d, Src1: c.pick(), Src2: ir.NoReg,
			Imm: int64(g.intn(g.cfg.ValueCard)) - 2, Mem: ir.NoMem, Region: ir.NoRegion})
		return
	}
	c.cur.Emit(ir.Instr{Op: op, Dest: d, Src1: c.pick(), Src2: c.pick(),
		Mem: ir.NoMem, Region: ir.NoRegion})
}

// emitMem emits a masked, hinted load or store: idx = v & (words-1);
// addr = base(obj) + idx.
func (c *fctx) emitMem() {
	g := c.g
	oi := g.intn(len(g.objs))
	obj := g.objs[oi]
	mask := int64(g.cfg.ObjWords - 1)
	idx := c.fresh()
	c.cur.AndI(idx, c.pick(), mask)
	addr := c.fresh()
	c.cur.LeaIdx(addr, obj, idx, 0)
	if !g.ro[oi] && g.pct(g.cfg.StoreBias) {
		c.cur.St(addr, 0, c.pick(), obj)
		return
	}
	d := c.fresh()
	c.cur.Ld(d, addr, 0, obj)
}

func (c *fctx) emitCall() {
	g := c.g
	callee := g.funcs[g.intn(len(g.funcs))]
	args := make([]ir.Reg, callee.nparams)
	for i := range args {
		args[i] = c.pick()
	}
	d := c.fresh()
	c.cur.Call(d, callee.id, args...)
}

// emitIf builds a structured conditional: cur ends with a branch that
// skips the arm when taken; the arm falls through into the join block.
// The branch target is patched after the arm is emitted (the branch
// terminates its block, so the instruction pointer stays valid).
func (c *fctx) emitIf(depth int) {
	g := c.g
	fb := c.fb
	condOps := []ir.Opcode{ir.Beq, ir.Bne, ir.Blt, ir.Bge, ir.Ble, ir.Bgt}
	op := condOps[g.intn(len(condOps))]
	br := c.cur.Emit(ir.Instr{Op: op, Src1: c.pick(), Src2: ir.NoReg,
		Imm: int64(g.intn(g.cfg.ValueCard)), Mem: ir.NoMem, Region: ir.NoRegion})
	arm := fb.NewBlock()
	c.cur = arm
	c.emitStmts(depth)
	join := fb.NewBlock()
	br.Target = join.ID()
	c.cur = join
}

// emitLoop builds a counted loop: i = 0; while i < k { body; i++ }.
func (c *fctx) emitLoop(depth int) {
	g := c.g
	fb := c.fb
	trip := 1 + g.intn(g.cfg.MaxLoop)
	i := fb.NewReg()
	c.cur.MovI(i, 0)
	head := fb.NewBlock()
	body := fb.NewBlock()
	c.regs = append(c.regs, i)
	// head is entered by fallthrough from cur.
	// Loop exit target is created after the body.
	c.cur = body
	c.emitStmts(depth)
	latch := c.cur
	latch.AddI(i, i, 1)
	latch.Jmp(head.ID())
	exit := fb.NewBlock()
	head.BgeI(i, int64(trip), exit.ID())
	c.cur = exit
}
