package analysis

import (
	"testing"
	"testing/quick"

	"ccr/internal/ir"
)

// diamond builds:  b0 → (b1 | b2) → b3 → ret
func diamond(t *testing.T) *ir.Func {
	t.Helper()
	pb := ir.NewProgramBuilder("diamond")
	f := pb.Func("main", 1)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	x, y := f.NewReg(), f.NewReg()
	b0.BgtI(f.Param(0), 10, b2.ID())
	b1.MovI(x, 1)
	b1.Jmp(b3.ID())
	b2.MovI(x, 2)
	b3.Add(y, x, f.Param(0))
	b3.Ret(y)
	p := pb.Build()
	if err := ir.Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return p.Funcs[0]
}

// loopFunc builds: b0(entry) → b1(head) → b2(body) → b1 ; b1 → b3(exit)
func loopFunc(t *testing.T) *ir.Func {
	t.Helper()
	pb := ir.NewProgramBuilder("loop")
	f := pb.Func("main", 1)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	i, s := f.NewReg(), f.NewReg()
	b0.MovI(i, 0)
	b0.MovI(s, 0)
	b1.Bge(i, f.Param(0), b3.ID())
	b2.Add(s, s, i)
	b2.AddI(i, i, 1)
	b2.Jmp(b1.ID())
	b3.Ret(s)
	p := pb.Build()
	if err := ir.Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return p.Funcs[0]
}

func TestCFGEdges(t *testing.T) {
	f := diamond(t)
	g := BuildCFG(f)
	cases := []struct {
		b    ir.BlockID
		want []ir.BlockID
	}{
		{0, []ir.BlockID{2, 1}}, // taken target first, then fall-through
		{1, []ir.BlockID{3}},
		{2, []ir.BlockID{3}},
		{3, nil},
	}
	for _, tc := range cases {
		got := g.Succs[tc.b]
		if len(got) != len(tc.want) {
			t.Fatalf("succs(b%d) = %v, want %v", tc.b, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("succs(b%d) = %v, want %v", tc.b, got, tc.want)
			}
		}
	}
	if len(g.Preds[3]) != 2 {
		t.Fatalf("preds(b3) = %v, want 2 predecessors", g.Preds[3])
	}
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	f := diamond(t)
	g := BuildCFG(f)
	rpo := g.ReversePostorder()
	if len(rpo) != 4 || rpo[0] != 0 {
		t.Fatalf("rpo = %v", rpo)
	}
	// b3 must come after both b1 and b2.
	pos := map[ir.BlockID]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	if pos[3] < pos[1] || pos[3] < pos[2] {
		t.Fatalf("join precedes its predecessors: %v", rpo)
	}
}

func TestDominators(t *testing.T) {
	f := diamond(t)
	g := BuildCFG(f)
	d := BuildDomTree(g)
	if d.IDom(1) != 0 || d.IDom(2) != 0 || d.IDom(3) != 0 {
		t.Fatalf("idoms: b1=%d b2=%d b3=%d, want all 0", d.IDom(1), d.IDom(2), d.IDom(3))
	}
	if !d.Dominates(0, 3) || d.Dominates(1, 3) || !d.Dominates(3, 3) {
		t.Fatal("dominance relation wrong on diamond")
	}
}

func TestNaturalLoop(t *testing.T) {
	f := loopFunc(t)
	g := BuildCFG(f)
	d := BuildDomTree(g)
	loops := FindLoops(g, d)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 {
		t.Fatalf("header = b%d, want b1", l.Header)
	}
	if !l.Contains(1) || !l.Contains(2) || l.Contains(0) || l.Contains(3) {
		t.Fatalf("loop blocks = %v", l.Blocks)
	}
	if !l.Inner() {
		t.Fatal("single loop should be inner")
	}
	exits := l.Exits(g)
	if len(exits) != 1 || exits[0] != 3 {
		t.Fatalf("exits = %v, want [3]", exits)
	}
}

func TestNestedLoops(t *testing.T) {
	pb := ir.NewProgramBuilder("nested")
	f := pb.Func("main", 1)
	b0 := f.NewBlock()  // entry
	oh := f.NewBlock()  // outer head
	ib0 := f.NewBlock() // inner init
	ih := f.NewBlock()  // inner head
	ib := f.NewBlock()  // inner body
	ol := f.NewBlock()  // outer latch
	ex := f.NewBlock()
	i, j, s := f.NewReg(), f.NewReg(), f.NewReg()
	b0.MovI(i, 0)
	b0.MovI(s, 0)
	oh.BgeI(i, 3, ex.ID())
	ib0.MovI(j, 0)
	ih.BgeI(j, 4, ol.ID())
	ib.Add(s, s, j)
	ib.AddI(j, j, 1)
	ib.Jmp(ih.ID())
	ol.AddI(i, i, 1)
	ol.Jmp(oh.ID())
	ex.Ret(s)
	p := pb.Build()
	if err := ir.Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	g := BuildCFG(p.Funcs[0])
	loops := FindLoops(g, BuildDomTree(g))
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	var inner, outer *Loop
	for _, l := range loops {
		if l.Header == ih.ID() {
			inner = l
		}
		if l.Header == oh.ID() {
			outer = l
		}
	}
	if inner == nil || outer == nil {
		t.Fatal("missing inner or outer loop")
	}
	if !inner.Inner() || outer.Inner() {
		t.Fatal("nesting classification wrong")
	}
	if inner.Parent != outer {
		t.Fatal("inner loop's parent should be the outer loop")
	}
}

func TestLiveness(t *testing.T) {
	f := loopFunc(t)
	g := BuildCFG(f)
	lv := ComputeLiveness(g)
	// At the loop head, i, s and the bound (param r1) are live.
	in := lv.LiveIn[1]
	if !in.Has(2) || !in.Has(3) || !in.Has(1) {
		t.Fatalf("LiveIn(head) = %v", in.Members())
	}
	// At entry, only the parameter is live-in.
	if got := lv.LiveIn[0].Members(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("LiveIn(entry) = %v, want [r1]", got)
	}
	// After the exit block nothing is live.
	if lv.LiveOut[3].Count() != 0 {
		t.Fatalf("LiveOut(exit) = %v", lv.LiveOut[3].Members())
	}
}

func TestLiveBefore(t *testing.T) {
	f := loopFunc(t)
	g := BuildCFG(f)
	lv := ComputeLiveness(g)
	// Before b2[0] (s = s+i): s, i live (and param for the back-edge test).
	live := lv.LiveBefore(2, 0)
	if !live.Has(2) || !live.Has(3) {
		t.Fatalf("LiveBefore(b2[0]) = %v", live.Members())
	}
}

func TestRegSetQuick(t *testing.T) {
	add := func(vals []uint8) bool {
		s := NewRegSet(300)
		seen := map[ir.Reg]bool{}
		for _, v := range vals {
			r := ir.Reg(int(v)%300 + 1)
			s.Add(r)
			seen[r] = true
		}
		for r := ir.Reg(1); r <= 300; r++ {
			if s.Has(r) != seen[r] {
				return false
			}
		}
		return s.Count() == len(seen)
	}
	if err := quick.Check(add, nil); err != nil {
		t.Fatal(err)
	}

	unionSubtract := func(a, b []uint8) bool {
		sa, sb := NewRegSet(300), NewRegSet(300)
		for _, v := range a {
			sa.Add(ir.Reg(int(v)%300 + 1))
		}
		for _, v := range b {
			sb.Add(ir.Reg(int(v)%300 + 1))
		}
		u := sa.Clone()
		u.Union(sb)
		for _, r := range sa.Members() {
			if !u.Has(r) {
				return false
			}
		}
		for _, r := range sb.Members() {
			if !u.Has(r) {
				return false
			}
		}
		u.Subtract(sb)
		for _, r := range u.Members() {
			if sb.Has(r) || !sa.Has(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(unionSubtract, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegSetMembersSorted(t *testing.T) {
	s := NewRegSet(128)
	for _, r := range []ir.Reg{100, 3, 64, 65, 1} {
		s.Add(r)
	}
	m := s.Members()
	for i := 1; i < len(m); i++ {
		if m[i-1] >= m[i] {
			t.Fatalf("members not sorted: %v", m)
		}
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 4 {
		t.Fatal("remove failed")
	}
}

func TestDefUse(t *testing.T) {
	f := loopFunc(t)
	du := ComputeDefUse(f)
	// i (r2) is defined in entry and body.
	if du.DefCount[2] != 2 {
		t.Fatalf("DefCount(i) = %d, want 2", du.DefCount[2])
	}
	if len(du.UseBlocks[2]) == 0 {
		t.Fatal("i has uses")
	}
}
