package analysis

import "ccr/internal/ir"

// Liveness holds per-block live-register information computed by backward
// iterative dataflow.
type Liveness struct {
	Func *ir.Func
	// LiveIn[b] is the set of registers live at entry to block b.
	LiveIn []RegSet
	// LiveOut[b] is the set of registers live at exit of block b.
	LiveOut []RegSet
	// use[b] / def[b] are the block-local upward-exposed uses and
	// definitions.
	use, def []RegSet
}

// ComputeLiveness runs liveness analysis over the CFG.
func ComputeLiveness(g *CFG) *Liveness {
	f := g.Func
	n := len(f.Blocks)
	lv := &Liveness{
		Func:    f,
		LiveIn:  make([]RegSet, n),
		LiveOut: make([]RegSet, n),
		use:     make([]RegSet, n),
		def:     make([]RegSet, n),
	}
	var uses []ir.Reg
	for _, b := range f.Blocks {
		u := NewRegSet(f.NumRegs)
		d := NewRegSet(f.NumRegs)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			uses = in.Uses(uses[:0])
			for _, r := range uses {
				if !d.Has(r) {
					u.Add(r)
				}
			}
			if dr := in.Def(); dr != ir.NoReg {
				d.Add(dr)
			}
		}
		lv.use[b.ID] = u
		lv.def[b.ID] = d
		lv.LiveIn[b.ID] = NewRegSet(f.NumRegs)
		lv.LiveOut[b.ID] = NewRegSet(f.NumRegs)
	}
	// Iterate to fixpoint, visiting blocks in reverse order for fast
	// convergence on mostly-forward CFGs.
	tmp := NewRegSet(f.NumRegs)
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := ir.BlockID(i)
			out := lv.LiveOut[b]
			for _, s := range g.Succs[b] {
				if out.Union(lv.LiveIn[s]) {
					changed = true
				}
			}
			// in = use ∪ (out − def)
			tmp.CopyFrom(out)
			tmp.Subtract(lv.def[b])
			tmp.Union(lv.use[b])
			if !tmp.Equal(lv.LiveIn[b]) {
				lv.LiveIn[b].CopyFrom(tmp)
				changed = true
			}
		}
	}
	return lv
}

// LiveBefore computes the set of registers live immediately before the
// instruction at position pos in block b, by walking backward from the
// block's live-out set.
func (lv *Liveness) LiveBefore(b ir.BlockID, pos int) RegSet {
	blk := lv.Func.Block(b)
	live := lv.LiveOut[b].Clone()
	var uses []ir.Reg
	for i := len(blk.Instrs) - 1; i >= pos; i-- {
		in := &blk.Instrs[i]
		if d := in.Def(); d != ir.NoReg {
			live.Remove(d)
		}
		uses = in.Uses(uses[:0])
		for _, r := range uses {
			live.Add(r)
		}
	}
	return live
}

// DefUse summarizes which blocks define and use each register; it backs the
// region-input heuristic (overlap of instruction inputs, §4.4).
type DefUse struct {
	// DefBlocks[r] lists blocks containing a definition of register r.
	DefBlocks map[ir.Reg][]ir.BlockID
	// UseBlocks[r] lists blocks containing a use of register r.
	UseBlocks map[ir.Reg][]ir.BlockID
	// DefCount[r] is the number of static definitions of r.
	DefCount map[ir.Reg]int
}

// ComputeDefUse builds def/use summaries for f.
func ComputeDefUse(f *ir.Func) *DefUse {
	du := &DefUse{
		DefBlocks: map[ir.Reg][]ir.BlockID{},
		UseBlocks: map[ir.Reg][]ir.BlockID{},
		DefCount:  map[ir.Reg]int{},
	}
	var uses []ir.Reg
	for _, b := range f.Blocks {
		defSeen := map[ir.Reg]bool{}
		useSeen := map[ir.Reg]bool{}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			uses = in.Uses(uses[:0])
			for _, r := range uses {
				if !useSeen[r] {
					useSeen[r] = true
					du.UseBlocks[r] = append(du.UseBlocks[r], b.ID)
				}
			}
			if d := in.Def(); d != ir.NoReg {
				du.DefCount[d]++
				if !defSeen[d] {
					defSeen[d] = true
					du.DefBlocks[d] = append(du.DefBlocks[d], b.ID)
				}
			}
		}
	}
	return du
}
