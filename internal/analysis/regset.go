package analysis

import (
	"math/bits"

	"ccr/internal/ir"
)

// RegSet is a bit set over virtual registers, sized for a particular
// function's register count.
type RegSet []uint64

// NewRegSet returns an empty set able to hold registers 1..numRegs.
func NewRegSet(numRegs int) RegSet {
	return make(RegSet, (numRegs+64)/64+1)
}

// Has reports whether r is in the set.
func (s RegSet) Has(r ir.Reg) bool {
	if r <= 0 {
		return false
	}
	w, b := int(r)/64, uint(r)%64
	return w < len(s) && s[w]&(1<<b) != 0
}

// Add inserts r.
func (s RegSet) Add(r ir.Reg) {
	if r <= 0 {
		return
	}
	s[int(r)/64] |= 1 << (uint(r) % 64)
}

// Remove deletes r.
func (s RegSet) Remove(r ir.Reg) {
	if r <= 0 {
		return
	}
	s[int(r)/64] &^= 1 << (uint(r) % 64)
}

// Union adds every member of t, reporting whether s changed.
func (s RegSet) Union(t RegSet) bool {
	changed := false
	for i := range t {
		old := s[i]
		s[i] |= t[i]
		if s[i] != old {
			changed = true
		}
	}
	return changed
}

// Subtract removes every member of t.
func (s RegSet) Subtract(t RegSet) {
	for i := range t {
		s[i] &^= t[i]
	}
}

// CopyFrom overwrites s with t.
func (s RegSet) CopyFrom(t RegSet) {
	copy(s, t)
}

// Clone returns an independent copy.
func (s RegSet) Clone() RegSet {
	t := make(RegSet, len(s))
	copy(t, s)
	return t
}

// Clear empties the set.
func (s RegSet) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Count returns the number of members.
func (s RegSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Members returns the registers in ascending order.
func (s RegSet) Members() []ir.Reg {
	var out []ir.Reg
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, ir.Reg(wi*64+b))
			w &= w - 1
		}
	}
	return out
}

// Equal reports whether the two sets have identical membership.
func (s RegSet) Equal(t RegSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}
