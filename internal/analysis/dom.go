package analysis

import "ccr/internal/ir"

// DomTree holds immediate-dominator information for a CFG, computed with
// the Cooper-Harvey-Kennedy iterative algorithm.
type DomTree struct {
	g *CFG
	// idom[b] is the immediate dominator of b; the entry's idom is itself.
	// Unreachable blocks have idom NoBlock.
	idom []ir.BlockID
	// rpoNum[b] is b's position in reverse postorder (-1 if unreachable).
	rpoNum []int
}

// BuildDomTree computes the dominator tree of g.
func BuildDomTree(g *CFG) *DomTree {
	n := len(g.Succs)
	d := &DomTree{
		g:      g,
		idom:   make([]ir.BlockID, n),
		rpoNum: make([]int, n),
	}
	for i := range d.idom {
		d.idom[i] = ir.NoBlock
		d.rpoNum[i] = -1
	}
	rpo := g.ReversePostorder()
	for i, b := range rpo {
		d.rpoNum[b] = i
	}
	if len(rpo) == 0 {
		return d
	}
	entry := rpo[0]
	d.idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			newIdom := ir.NoBlock
			for _, p := range g.Preds[b] {
				if d.idom[p] == ir.NoBlock {
					continue // predecessor not yet processed
				}
				if newIdom == ir.NoBlock {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != ir.NoBlock && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

func (d *DomTree) intersect(a, b ir.BlockID) ir.BlockID {
	for a != b {
		for d.rpoNum[a] > d.rpoNum[b] {
			a = d.idom[a]
		}
		for d.rpoNum[b] > d.rpoNum[a] {
			b = d.idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator of b (the entry dominates itself);
// NoBlock for unreachable blocks.
func (d *DomTree) IDom(b ir.BlockID) ir.BlockID { return d.idom[b] }

// Dominates reports whether a dominates b (reflexively).
func (d *DomTree) Dominates(a, b ir.BlockID) bool {
	if d.rpoNum[a] == -1 || d.rpoNum[b] == -1 {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := d.idom[b]
		if next == b || next == ir.NoBlock {
			return false
		}
		b = next
	}
}
