package analysis

import (
	"sort"

	"ccr/internal/ir"
)

// Loop describes one natural loop: the header block, the set of member
// blocks, and the back edges that define it. Loops with the same header are
// merged, matching the usual natural-loop construction.
type Loop struct {
	Header ir.BlockID
	// Blocks is the sorted set of member blocks, including the header.
	Blocks []ir.BlockID
	// Latches are the sources of the back edges into the header.
	Latches []ir.BlockID
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop
	// Children are the loops nested immediately inside this one.
	Children []*Loop
}

// Contains reports whether block b is a member of the loop.
func (l *Loop) Contains(b ir.BlockID) bool {
	i := sort.Search(len(l.Blocks), func(i int) bool { return l.Blocks[i] >= b })
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// Inner reports whether the loop has no nested loops.
func (l *Loop) Inner() bool { return len(l.Children) == 0 }

// Exits returns the sorted set of blocks outside the loop that are branch
// targets or fall-through successors of loop members.
func (l *Loop) Exits(g *CFG) []ir.BlockID {
	seen := map[ir.BlockID]bool{}
	for _, b := range l.Blocks {
		for _, s := range g.Succs[b] {
			if !l.Contains(s) {
				seen[s] = true
			}
		}
	}
	out := make([]ir.BlockID, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FindLoops detects the natural loops of g using back edges identified by
// dominance: an edge t→h is a back edge when h dominates t. The returned
// loops are sorted by header block and linked into a nesting forest.
func FindLoops(g *CFG, dom *DomTree) []*Loop {
	byHeader := map[ir.BlockID]*Loop{}
	for t := range g.Succs {
		for _, h := range g.Succs[t] {
			if dom.Dominates(h, ir.BlockID(t)) {
				l := byHeader[h]
				if l == nil {
					l = &Loop{Header: h}
					byHeader[h] = l
				}
				l.Latches = append(l.Latches, ir.BlockID(t))
			}
		}
	}
	var loops []*Loop
	for _, l := range byHeader {
		collectLoopBody(g, l)
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Header < loops[j].Header })
	linkNesting(loops)
	return loops
}

// collectLoopBody fills l.Blocks with the natural-loop body: the header
// plus every block that can reach a latch without passing through the
// header (standard backward reachability from the latches).
func collectLoopBody(g *CFG, l *Loop) {
	inLoop := map[ir.BlockID]bool{l.Header: true}
	var stack []ir.BlockID
	for _, t := range l.Latches {
		if !inLoop[t] {
			inLoop[t] = true
			stack = append(stack, t)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Preds[b] {
			if !inLoop[p] {
				inLoop[p] = true
				stack = append(stack, p)
			}
		}
	}
	l.Blocks = make([]ir.BlockID, 0, len(inLoop))
	for b := range inLoop {
		l.Blocks = append(l.Blocks, b)
	}
	sort.Slice(l.Blocks, func(i, j int) bool { return l.Blocks[i] < l.Blocks[j] })
}

// linkNesting builds the loop forest: loop A is the parent of loop B when
// A contains B's header and A ≠ B, choosing the smallest such container.
func linkNesting(loops []*Loop) {
	for _, inner := range loops {
		var best *Loop
		for _, outer := range loops {
			if outer == inner || !outer.Contains(inner.Header) {
				continue
			}
			// Exclude self-containment of distinct same-header loops
			// (cannot happen: loops are merged by header).
			if best == nil || len(outer.Blocks) < len(best.Blocks) {
				best = outer
			}
		}
		if best != nil {
			inner.Parent = best
			best.Children = append(best.Children, inner)
		}
	}
}
