// Package analysis provides the intra-procedural compiler analyses the CCR
// region-formation pass depends on: CFG edges and orderings, dominators,
// natural-loop detection, liveness, and def-use information.
package analysis

import "ccr/internal/ir"

// CFG holds the successor/predecessor edges of a function, derived from
// block terminators and fall-through order.
type CFG struct {
	Func  *ir.Func
	Succs [][]ir.BlockID
	Preds [][]ir.BlockID
}

// BuildCFG computes the control-flow graph of f.
func BuildCFG(f *ir.Func) *CFG {
	n := len(f.Blocks)
	g := &CFG{
		Func:  f,
		Succs: make([][]ir.BlockID, n),
		Preds: make([][]ir.BlockID, n),
	}
	for _, b := range f.Blocks {
		g.Succs[b.ID] = blockSuccs(f, b)
	}
	for id, ss := range g.Succs {
		for _, s := range ss {
			g.Preds[s] = append(g.Preds[s], ir.BlockID(id))
		}
	}
	return g
}

// blockSuccs returns the successor blocks of b in deterministic order:
// branch target first, fall-through second.
func blockSuccs(f *ir.Func, b *ir.Block) []ir.BlockID {
	t := b.Terminator()
	next := ir.NoBlock
	if int(b.ID)+1 < len(f.Blocks) {
		next = b.ID + 1
	}
	if t == nil {
		if next == ir.NoBlock {
			return nil
		}
		return []ir.BlockID{next}
	}
	switch {
	case t.Op == ir.Jmp:
		return []ir.BlockID{t.Target}
	case t.Op == ir.Ret:
		return nil
	case t.Op.IsCondBranch():
		if next == ir.NoBlock {
			return []ir.BlockID{t.Target}
		}
		if t.Target == next {
			return []ir.BlockID{next}
		}
		return []ir.BlockID{t.Target, next}
	default:
		if next == ir.NoBlock {
			return nil
		}
		return []ir.BlockID{next}
	}
}

// ReversePostorder returns the block IDs of the CFG in reverse postorder
// from the entry block. Unreachable blocks are omitted.
func (g *CFG) ReversePostorder() []ir.BlockID {
	n := len(g.Succs)
	seen := make([]bool, n)
	var order []ir.BlockID
	var dfs func(ir.BlockID)
	dfs = func(b ir.BlockID) {
		seen[b] = true
		for _, s := range g.Succs[b] {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	if n > 0 {
		dfs(0)
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Reachable returns the set of blocks reachable from the entry.
func (g *CFG) Reachable() []bool {
	n := len(g.Succs)
	seen := make([]bool, n)
	if n == 0 {
		return seen
	}
	stack := []ir.BlockID{0}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succs[b] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}
