package crb_test

import (
	"fmt"
	"testing"

	"ccr/internal/crb"
	"ccr/internal/ir"
	"ccr/internal/telemetry"
)

// recSink records every telemetry callback as a printable event line so
// tests can assert both the cause classification and the order of emission.
type recSink struct {
	events []string
}

func (r *recSink) Lookup(region ir.RegionID, outcome telemetry.LookupOutcome) {
	r.events = append(r.events, fmt.Sprintf("lookup r%d %s", region, outcome))
}

func (r *recSink) Commit(region ir.RegionID, stored bool) {
	r.events = append(r.events, fmt.Sprintf("commit r%d %v", region, stored))
}

func (r *recSink) Evict(region ir.RegionID, cause telemetry.EvictCause, instances int) {
	r.events = append(r.events, fmt.Sprintf("evict r%d %s %d", region, cause, instances))
}

func (r *recSink) Invalidate(mem ir.MemID, fanout int) {
	r.events = append(r.events, fmt.Sprintf("inval m%d %d", mem, fanout))
}

func (r *recSink) take() []string {
	ev := r.events
	r.events = nil
	return ev
}

func expectEvents(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d events %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestSinkMissCauseClassification walks one entry through the full miss
// taxonomy: a never-resident region is a cold miss, a wrong-input lookup on
// a resident entry is an input miss, an evicted-then-relooked region is a
// conflict miss, and a lookup whose inputs match an instance that only an
// invalidation made unreusable is a memory-invalid miss.
func TestSinkMissCauseClassification(t *testing.T) {
	// Entries:1 forces regions 0 and 1 to conflict on the single entry.
	c := crb.New(crb.Config{Entries: 1, Instances: 2}, memProg())
	sink := &recSink{}
	c.SetSink(sink)

	// Never resident: cold miss.
	c.Lookup(0, readFrom(map[ir.Reg]int64{1: 10}))
	expectEvents(t, sink.take(), []string{"lookup r0 miss-cold"})

	// Resident with a non-matching instance: input miss. Matching: hit.
	c.Commit(0, inst(true, 10, 100))
	c.Lookup(0, readFrom(map[ir.Reg]int64{1: 99}))
	c.Lookup(0, readFrom(map[ir.Reg]int64{1: 10}))
	expectEvents(t, sink.take(), []string{
		"commit r0 true",
		"lookup r0 miss-input",
		"lookup r0 hit",
	})

	// Region 1 steals the entry (capacity eviction of region 0's one valid
	// instance); region 0's next lookup is a conflict miss, not cold.
	c.Commit(1, inst(false, 12, 120))
	c.Lookup(0, readFrom(map[ir.Reg]int64{1: 10}))
	expectEvents(t, sink.take(), []string{
		"evict r0 capacity 1",
		"commit r1 true",
		"lookup r0 miss-conflict",
	})

	// Re-install region 0 with a memory-using instance, invalidate its
	// object: inputs still match, so the miss is attributed to the cleared
	// memory-valid bit.
	c.Commit(0, inst(true, 10, 100))
	c.Invalidate(1)
	c.Lookup(0, readFrom(map[ir.Reg]int64{1: 10}))
	expectEvents(t, sink.take(), []string{
		"evict r1 capacity 1",
		"commit r0 true",
		"evict r0 invalidation 1",
		"inval m1 1",
		"lookup r0 miss-mem-invalid",
	})
}

// TestSinkSlotLRUOverwrite pins the instance-level eviction attribution: a
// commit into a full entry overwrites the LRU slot and reports it as a
// slot-LRU eviction of exactly one instance.
func TestSinkSlotLRUOverwrite(t *testing.T) {
	c := crb.New(crb.Config{Entries: 8, Instances: 1}, memProg())
	sink := &recSink{}
	c.SetSink(sink)

	c.Commit(1, inst(false, 1, 10))
	c.Commit(1, inst(false, 2, 20))
	expectEvents(t, sink.take(), []string{
		"commit r1 true",
		"evict r1 slot-lru 1",
		"commit r1 true",
	})
}

// TestSinkCommitRejected: a memory-dependent instance mapping to an entry
// without memory-valid hardware is rejected, and the sink sees stored=false.
func TestSinkCommitRejected(t *testing.T) {
	c := crb.New(crb.Config{Entries: 4, Instances: 2, NoMemEntriesFrac: 1}, memProg())
	sink := &recSink{}
	c.SetSink(sink)

	if c.Commit(0, inst(true, 10, 100)) {
		t.Fatal("UsesMem commit stored despite NoMemEntriesFrac=1")
	}
	expectEvents(t, sink.take(), []string{"commit r0 false"})
}

// TestSinkInvalidateFanout: one store-triggered invalidation reports the
// total fan-out across regions plus a per-region instance count, and an
// invalidation that kills nothing still reports fan-out 0 (the instruction
// executed) without any per-region eviction events.
func TestSinkInvalidateFanout(t *testing.T) {
	prog := &ir.Program{Regions: []*ir.Region{
		{ID: 0, Class: ir.MemoryDependent, MemObjects: []ir.MemID{1}},
		{ID: 1, Class: ir.MemoryDependent, MemObjects: []ir.MemID{1}},
	}}
	c := crb.New(crb.Config{Entries: 8, Instances: 4}, prog)
	sink := &recSink{}
	c.SetSink(sink)

	c.Commit(0, inst(true, 10, 100))
	c.Commit(0, inst(true, 11, 110))
	c.Commit(1, inst(true, 12, 120))
	sink.take()

	if n := c.Invalidate(1); n != 3 {
		t.Fatalf("Invalidate fan-out %d, want 3", n)
	}
	expectEvents(t, sink.take(), []string{
		"evict r0 invalidation 2",
		"evict r1 invalidation 1",
		"inval m1 3",
	})

	// All instances already dead: no per-region evictions, fan-out 0.
	c.Invalidate(1)
	expectEvents(t, sink.take(), []string{"inval m1 0"})
}

// TestSinkDoesNotPerturbStats replays the same operation sequence against a
// bare CRB and a sink-attached CRB and requires bit-identical flat counters
// — the architectural half of the zero-overhead invariant (DESIGN.md §9).
func TestSinkDoesNotPerturbStats(t *testing.T) {
	drive := func(c *crb.CRB) {
		c.Lookup(0, readFrom(map[ir.Reg]int64{1: 10}))
		c.Commit(0, inst(true, 10, 100))
		c.Commit(0, inst(false, 11, 110))
		c.Lookup(0, readFrom(map[ir.Reg]int64{1: 10}))
		c.Lookup(0, readFrom(map[ir.Reg]int64{1: 77}))
		c.Commit(1, inst(false, 5, 50))
		c.Invalidate(1)
		c.Lookup(0, readFrom(map[ir.Reg]int64{1: 10}))
	}
	bare := crb.New(crb.Config{Entries: 1, Instances: 2}, memProg())
	drive(bare)

	instrumented := crb.New(crb.Config{Entries: 1, Instances: 2}, memProg())
	instrumented.SetSink(telemetry.NewMetrics())
	drive(instrumented)

	if bare.Stats() != instrumented.Stats() {
		t.Fatalf("sink perturbed stats:\nbare:         %+v\ninstrumented: %+v",
			bare.Stats(), instrumented.Stats())
	}
}

// TestResetStatsKeepsContents: ResetStats zeroes counters but leaves the
// buffer warm — the next matching lookup still hits.
func TestResetStatsKeepsContents(t *testing.T) {
	c := crb.New(crb.Config{Entries: 8, Instances: 2}, memProg())
	c.Commit(0, inst(false, 10, 100))
	c.Lookup(0, readFrom(map[ir.Reg]int64{1: 10}))
	if s := c.Stats(); s.Hits != 1 || s.Records != 1 {
		t.Fatalf("pre-reset stats %+v", s)
	}

	c.ResetStats()
	if s := c.Stats(); s != (crb.Stats{}) {
		t.Fatalf("ResetStats left %+v", s)
	}
	if _, ok := c.Lookup(0, readFrom(map[ir.Reg]int64{1: 10})); !ok {
		t.Fatal("warm instance lost across ResetStats")
	}
	if s := c.Stats(); s.Lookups != 1 || s.Hits != 1 {
		t.Fatalf("post-reset stats %+v, want exactly one hit", s)
	}
}
