// Package crb models the Computation Reuse Buffer of the CCR architecture
// (paper Figure 5): a cache-like structure of computation entries, indexed
// by the compiler-assigned region identifier, where each entry holds several
// computation instances. A computation instance records the input register
// values a region execution consumed, the output register values it
// produced, and whether it depended on (still-valid) memory state.
package crb

import (
	"fmt"

	"ccr/internal/ir"
	"ccr/internal/telemetry"
)

// RegVal is one register entry of a computation-instance bank: the register
// index and the value it must hold (input bank) or will receive (output
// bank).
type RegVal struct {
	Reg ir.Reg
	Val int64
}

// Instance is one computation instance (Figure 5, "CI"): the reusable
// record of a single region execution along one path.
type Instance struct {
	Valid bool
	// UsesMem is the memory-valid field's "accesses memory" half: the
	// recorded path executed at least one load.
	UsesMem bool
	// MemOK is the validity half: false once an invalidation for any of
	// the region's objects arrives, making the instance unreusable.
	MemOK   bool
	Inputs  []RegVal
	Outputs []RegVal
	// ReplacedInstrs is the dynamic instruction count of the recorded
	// execution — the number of instructions a reuse of this instance
	// eliminates (used for reporting, not by the hardware).
	ReplacedInstrs int

	// sig is a hash of the instance's input values taken in the region's
	// static input-list order; it is valid only when fullSig is set,
	// meaning the input bank covers the complete static list so a
	// signature mismatch proves the full comparison would fail. Both are
	// computed by Commit — external constructors leave them unset and the
	// instance simply takes the slow comparison path.
	sig     uint64
	fullSig bool
}

// Reusable reports whether the instance can satisfy a lookup whose current
// register values are in regs (indexed by ir.Reg; it must cover every
// register the instance's input bank names).
func (ci *Instance) Reusable(regs []int64) bool {
	if !ci.Valid || (ci.UsesMem && !ci.MemOK) {
		return false
	}
	return ci.inputsMatch(regs)
}

// inputsMatch reports whether every input-bank register holds its recorded
// value in regs.
func (ci *Instance) inputsMatch(regs []int64) bool {
	for _, in := range ci.Inputs {
		if regs[in.Reg] != in.Val {
			return false
		}
	}
	return true
}

// FNV-1a constants for the input-value signature.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// entry is one computation entry: a tagged slot holding the instances
// recorded for a single region.
type entry struct {
	tag     ir.RegionID
	valid   bool
	memCap  bool // entry hardware supports memory-dependent instances
	cis     []Instance
	lastUse []uint64 // LRU timestamps per instance
}

// Config selects the CRB geometry. The paper evaluates direct-mapped
// buffers of 32/64/128 entries with 4/8/16 instances; Assoc > 1 and
// NoMemEntriesFrac > 0 are the design-enhancement ablations of §3.1/§6.
type Config struct {
	Entries   int // number of computation entries (power of two expected)
	Instances int // computation instances per entry
	// Assoc is the set associativity of the entry array; 1 (the paper's
	// configuration) means region IDs map to entries direct-mapped.
	Assoc int
	// NoMemEntriesFrac is the fraction of entries *without* memory-valid
	// tracking hardware (the nonuniform-capacity design of §6's future
	// work); memory-dependent instances mapping to such an entry cannot
	// be recorded. 0 — the zero value — reproduces the paper's uniform
	// CRB.
	NoMemEntriesFrac float64
}

// DefaultConfig is the paper's most cost-effective point: a 128-entry
// direct-mapped CRB with 8 computation instances per entry (§5.2).
func DefaultConfig() Config {
	return Config{Entries: 128, Instances: 8, Assoc: 1}
}

// Key returns a canonical string identifying the configuration, for use
// wherever a Config keys a cache or map. Unlike fmt's struct formatting it
// names every field explicitly, so reordering or adding Config fields can
// never silently alias two distinct configurations under one key.
func (c Config) Key() string {
	return fmt.Sprintf("e%d.i%d.a%d.nm%g", c.Entries, c.Instances, c.Assoc, c.NoMemEntriesFrac)
}

func (c Config) normalized() Config {
	if c.Entries <= 0 {
		c.Entries = 128
	}
	if c.Instances <= 0 {
		c.Instances = 8
	}
	if c.Assoc <= 0 {
		c.Assoc = 1
	}
	if c.Assoc > c.Entries {
		c.Assoc = c.Entries
	}
	if c.NoMemEntriesFrac < 0 {
		c.NoMemEntriesFrac = 0
	}
	if c.NoMemEntriesFrac > 1 {
		c.NoMemEntriesFrac = 1
	}
	return c
}

// Stats counts CRB events.
type Stats struct {
	Lookups     int64 // reuse-instruction accesses
	Hits        int64 // lookups satisfied by a valid instance
	TagMisses   int64 // entry not resident (or not memory-capable)
	InputMisses int64 // entry resident but no instance matched
	Records     int64 // instances committed
	RecordFails int64 // commits rejected (non-capable entry)
	Evictions   int64 // entry replacements (tag conflicts)
	Invalidates int64 // instances discarded by invalidation
}

// CRB is the Computation Reuse Buffer.
type CRB struct {
	cfg     Config
	sets    int
	entries []entry // sets × assoc
	clock   uint64
	stats   Stats

	// memRegions maps an object to the regions whose instances an
	// invalidation of that object must discard. It is the hardware image
	// of the compiler's region registration table.
	memRegions map[ir.MemID][]ir.RegionID

	// regionInputs[r] is region r's static input-register list, the basis
	// of the signature fast path: Lookup hashes the current values of
	// these registers once and skips any instance whose full-bank
	// signature differs. Empty (no program table) disables the filter.
	regionInputs [][]ir.Reg

	// sink, when non-nil, receives the cause-attributed telemetry stream.
	// Every instrumented path is guarded by a nil check so the zero-sink
	// configuration stays allocation-free and byte-identical (DESIGN.md §9).
	sink telemetry.Sink
	// everResident marks regions that have held a computation entry at
	// some point, distinguishing cold misses from conflict misses. Only
	// maintained while a sink is attached.
	everResident map[ir.RegionID]bool
}

// New builds a CRB for the given configuration and program region table.
func New(cfg Config, prog *ir.Program) *CRB {
	cfg = cfg.normalized()
	c := &CRB{
		cfg:        cfg,
		sets:       cfg.Entries / cfg.Assoc,
		entries:    make([]entry, cfg.Entries),
		memRegions: map[ir.MemID][]ir.RegionID{},
	}
	if c.sets == 0 {
		c.sets = 1
	}
	capCount := int((1-cfg.NoMemEntriesFrac)*float64(cfg.Entries) + 0.5)
	// One flat backing array each for the instance and LRU stores keeps
	// the whole buffer contiguous (cache-friendly scans, one allocation).
	cisAll := make([]Instance, cfg.Entries*cfg.Instances)
	useAll := make([]uint64, cfg.Entries*cfg.Instances)
	for i := range c.entries {
		e := &c.entries[i]
		lo, hi := i*cfg.Instances, (i+1)*cfg.Instances
		e.cis = cisAll[lo:hi:hi]
		e.lastUse = useAll[lo:hi:hi]
		// Spread memory-capable entries evenly (Bresenham-style) so a
		// fraction of every set has the capability.
		e.memCap = (i+1)*capCount/cfg.Entries != i*capCount/cfg.Entries
	}
	if prog != nil {
		c.regionInputs = make([][]ir.Reg, len(prog.Regions))
		for _, r := range prog.Regions {
			c.regionInputs[r.ID] = r.Inputs
			for _, m := range r.MemObjects {
				c.memRegions[m] = append(c.memRegions[m], r.ID)
			}
		}
	}
	return c
}

// Config returns the normalized configuration.
func (c *CRB) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *CRB) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching buffer contents,
// so multi-phase runs (e.g. training then reference on one warm buffer)
// can report each phase separately.
func (c *CRB) ResetStats() { c.stats = Stats{} }

// SetSink attaches (or, with nil, detaches) the telemetry sink receiving
// the cause-attributed event stream. Attach before the first operation:
// cold/conflict miss attribution is derived from the residence history
// observed while a sink is present.
func (c *CRB) SetSink(s telemetry.Sink) {
	c.sink = s
	if s != nil && c.everResident == nil {
		c.everResident = map[ir.RegionID]bool{}
	}
}

// setOf returns the entry slice forming the set a region maps to.
func (c *CRB) setOf(region ir.RegionID) []entry {
	set := int(region) % c.sets
	return c.entries[set*c.cfg.Assoc : (set+1)*c.cfg.Assoc]
}

// findEntry returns the resident entry for region, or nil.
func (c *CRB) findEntry(region ir.RegionID) *entry {
	set := c.setOf(region)
	for i := range set {
		if set[i].valid && set[i].tag == region {
			return &set[i]
		}
	}
	return nil
}

// sigOfRegs hashes the current values of the given registers in order.
// ok is false when regs does not cover every named register (arbitrary
// register files in tests), in which case the filter is skipped.
func sigOfRegs(ins []ir.Reg, regs []int64) (sig uint64, ok bool) {
	h := fnvOffset
	for _, r := range ins {
		if int(r) >= len(regs) {
			return 0, false
		}
		h = (h ^ uint64(regs[r])) * fnvPrime
	}
	return h, true
}

// sigOfInstance hashes an instance's recorded input values in the
// region's static input-list order. ok is false when the instance's input
// bank does not cover the full static list (partial recordings, unknown
// regions), in which case the instance cannot carry a signature and takes
// the slow comparison path on every lookup.
func (c *CRB) sigOfInstance(region ir.RegionID, inst *Instance) (sig uint64, ok bool) {
	if region < 0 || int(region) >= len(c.regionInputs) {
		return 0, false
	}
	ins := c.regionInputs[region]
	if len(ins) == 0 || len(inst.Inputs) != len(ins) {
		return 0, false
	}
	h := fnvOffset
	for _, r := range ins {
		found := false
		for _, in := range inst.Inputs {
			if in.Reg == r {
				h = (h ^ uint64(in.Val)) * fnvPrime
				found = true
				break
			}
		}
		if !found {
			return 0, false
		}
	}
	return h, true
}

// Lookup performs the reuse-instruction access: it searches the region's
// computation entry for an instance whose inputs match the current
// register values in regs (indexed by ir.Reg). On a hit it returns the
// matching instance and refreshes its LRU state.
//
// The scan is a single pass: each instance is first screened by the
// input-value signature (one uint64 compare; a mismatch proves the bank
// walk would fail), and instances blocked only by a cleared memory-valid
// bit are detected in the same pass so the MissMemInvalid attribution
// needs no second walk.
func (c *CRB) Lookup(region ir.RegionID, regs []int64) (*Instance, bool) {
	c.clock++
	c.stats.Lookups++
	e := c.findEntry(region)
	if e == nil {
		c.stats.TagMisses++
		if c.sink != nil {
			cause := telemetry.MissCold
			if c.everResident[region] {
				cause = telemetry.MissConflict
			}
			c.sink.Lookup(region, cause)
		}
		return nil, false
	}
	var sig uint64
	sigOK := false
	if int(region) < len(c.regionInputs) {
		if ins := c.regionInputs[region]; len(ins) > 0 {
			sig, sigOK = sigOfRegs(ins, regs)
		}
	}
	memBlocked := false
	for i := range e.cis {
		ci := &e.cis[i]
		if !ci.Valid {
			continue
		}
		if sigOK && ci.fullSig && ci.sig != sig {
			// Certain input mismatch: neither a hit nor a mem-blocked
			// would-be match.
			continue
		}
		if ci.UsesMem && !ci.MemOK {
			// Unreusable regardless of inputs; under a sink, check
			// whether the inputs would have matched so the miss can be
			// attributed to invalidation rather than input divergence.
			if c.sink != nil && !memBlocked && ci.inputsMatch(regs) {
				memBlocked = true
			}
			continue
		}
		if ci.inputsMatch(regs) {
			e.lastUse[i] = c.clock
			c.stats.Hits++
			if c.sink != nil {
				c.sink.Lookup(region, telemetry.Hit)
			}
			return ci, true
		}
	}
	c.stats.InputMisses++
	if c.sink != nil {
		cause := telemetry.MissInput
		if memBlocked {
			cause = telemetry.MissMemInvalid
		}
		c.sink.Lookup(region, cause)
	}
	return nil, false
}

// Commit installs a freshly recorded instance for region, allocating or
// replacing the computation entry as needed and evicting the LRU instance.
// It reports whether the instance was stored (false when the region is
// memory-dependent but maps to an entry without memory-valid hardware).
func (c *CRB) Commit(region ir.RegionID, inst Instance) bool {
	c.clock++
	e := c.findEntry(region)
	if e == nil {
		e = c.victim(region)
		if inst.UsesMem && !e.memCap {
			c.stats.RecordFails++
			if c.sink != nil {
				c.sink.Commit(region, false)
			}
			return false
		}
		if e.valid {
			c.stats.Evictions++
			if c.sink != nil {
				c.sink.Evict(e.tag, telemetry.EvictCapacity, validInstances(e))
			}
		}
		e.tag = region
		e.valid = true
		for i := range e.cis {
			e.cis[i] = Instance{}
			e.lastUse[i] = 0
		}
		if c.sink != nil {
			c.everResident[region] = true
		}
	} else if inst.UsesMem && !e.memCap {
		c.stats.RecordFails++
		if c.sink != nil {
			c.sink.Commit(region, false)
		}
		return false
	}
	// Choose an invalid instance slot if one exists, else the LRU slot.
	slot := -1
	for i := range e.cis {
		if !e.cis[i].Valid {
			slot = i
			break
		}
	}
	if slot == -1 {
		slot = 0
		for i := 1; i < len(e.cis); i++ {
			if e.lastUse[i] < e.lastUse[slot] {
				slot = i
			}
		}
	}
	if c.sink != nil {
		if e.cis[slot].Valid {
			c.sink.Evict(region, telemetry.EvictSlotLRU, 1)
		}
		c.sink.Commit(region, true)
	}
	inst.Valid = true
	inst.MemOK = true
	inst.sig, inst.fullSig = c.sigOfInstance(region, &inst)
	e.cis[slot] = inst
	e.lastUse[slot] = c.clock
	c.stats.Records++
	return true
}

// validInstances counts the valid instances of e (telemetry attribution
// for entry-level evictions).
func validInstances(e *entry) int {
	n := 0
	for i := range e.cis {
		if e.cis[i].Valid {
			n++
		}
	}
	return n
}

// victim selects the entry to replace for a region not resident: an invalid
// way if available, else the way whose most recent use is oldest.
func (c *CRB) victim(region ir.RegionID) *entry {
	set := c.setOf(region)
	best := &set[0]
	bestUse := lastTouch(best)
	for i := range set {
		e := &set[i]
		if !e.valid {
			return e
		}
		if u := lastTouch(e); u < bestUse {
			best, bestUse = e, u
		}
	}
	return best
}

func lastTouch(e *entry) uint64 {
	var m uint64
	for _, u := range e.lastUse {
		if u > m {
			m = u
		}
	}
	return m
}

// Invalidate executes the computation-invalidate instruction for object m:
// every resident instance of a region registered against m that accessed
// memory is discarded. Returns the number of instances invalidated.
func (c *CRB) Invalidate(m ir.MemID) int {
	n := 0
	for _, region := range c.memRegions[m] {
		e := c.findEntry(region)
		if e == nil {
			continue
		}
		k := 0
		for i := range e.cis {
			ci := &e.cis[i]
			if ci.Valid && ci.UsesMem && ci.MemOK {
				ci.MemOK = false
				k++
			}
		}
		n += k
		if c.sink != nil && k > 0 {
			c.sink.Evict(region, telemetry.EvictInvalidation, k)
		}
	}
	c.stats.Invalidates += int64(n)
	if c.sink != nil {
		c.sink.Invalidate(m, n)
	}
	return n
}

// InvalidateAll discards every resident instance (used by tests and by
// context-switch modelling).
func (c *CRB) InvalidateAll() {
	for i := range c.entries {
		e := &c.entries[i]
		e.valid = false
		for j := range e.cis {
			e.cis[j] = Instance{}
			e.lastUse[j] = 0
		}
	}
}

// ResidentInstances returns the number of valid instances currently stored,
// for occupancy reporting.
func (c *CRB) ResidentInstances() int {
	n := 0
	for i := range c.entries {
		if !c.entries[i].valid {
			continue
		}
		for j := range c.entries[i].cis {
			if c.entries[i].cis[j].Valid {
				n++
			}
		}
	}
	return n
}
