package crb

import (
	"testing"
	"testing/quick"

	"ccr/internal/ir"
)

// regRead builds a register file holding the given values (Lookup takes
// the frame's register slice, indexed by ir.Reg).
func regRead(vals map[ir.Reg]int64) []int64 {
	regs := make([]int64, 32)
	for r, v := range vals {
		regs[r] = v
	}
	return regs
}

func inst(usesMem bool, inputs, outputs []RegVal) Instance {
	return Instance{UsesMem: usesMem, Inputs: inputs, Outputs: outputs, ReplacedInstrs: 10}
}

func TestLookupMissThenHit(t *testing.T) {
	c := New(Config{Entries: 8, Instances: 2}, nil)
	if _, ok := c.Lookup(3, regRead(nil)); ok {
		t.Fatal("empty CRB must miss")
	}
	c.Commit(3, inst(false, []RegVal{{Reg: 1, Val: 42}}, []RegVal{{Reg: 2, Val: 7}}))
	ci, ok := c.Lookup(3, regRead(map[ir.Reg]int64{1: 42}))
	if !ok {
		t.Fatal("expected hit after commit")
	}
	if len(ci.Outputs) != 1 || ci.Outputs[0].Val != 7 {
		t.Fatalf("outputs = %+v", ci.Outputs)
	}
	if _, ok := c.Lookup(3, regRead(map[ir.Reg]int64{1: 43})); ok {
		t.Fatal("different input must miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Lookups != 3 || st.InputMisses != 1 || st.TagMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInstanceLRU(t *testing.T) {
	c := New(Config{Entries: 4, Instances: 2}, nil)
	mk := func(v int64) Instance {
		return inst(false, []RegVal{{Reg: 1, Val: v}}, nil)
	}
	c.Commit(0, mk(10))
	c.Commit(0, mk(20))
	// Touch 10 so 20 becomes LRU.
	if _, ok := c.Lookup(0, regRead(map[ir.Reg]int64{1: 10})); !ok {
		t.Fatal("expected hit on 10")
	}
	c.Commit(0, mk(30)) // evicts 20
	if _, ok := c.Lookup(0, regRead(map[ir.Reg]int64{1: 20})); ok {
		t.Fatal("20 should have been evicted (LRU)")
	}
	for _, v := range []int64{10, 30} {
		if _, ok := c.Lookup(0, regRead(map[ir.Reg]int64{1: v})); !ok {
			t.Fatalf("expected %d resident", v)
		}
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := New(Config{Entries: 4, Instances: 2}, nil)
	c.Commit(1, inst(false, nil, nil))
	// Region 5 maps to the same entry (5 mod 4 == 1) and must evict it.
	c.Commit(5, inst(false, nil, nil))
	if _, ok := c.Lookup(1, regRead(nil)); ok {
		t.Fatal("conflicting region should have evicted region 1")
	}
	if _, ok := c.Lookup(5, regRead(nil)); !ok {
		t.Fatal("region 5 should be resident")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestAssociativityAvoidsConflict(t *testing.T) {
	c := New(Config{Entries: 4, Instances: 2, Assoc: 2}, nil)
	c.Commit(1, inst(false, nil, nil))
	c.Commit(3, inst(false, nil, nil)) // 3 mod 2 == 1: same set, second way
	if _, ok := c.Lookup(1, regRead(nil)); !ok {
		t.Fatal("2-way set should hold both regions")
	}
	if _, ok := c.Lookup(3, regRead(nil)); !ok {
		t.Fatal("region 3 resident")
	}
	if c.Stats().Evictions != 0 {
		t.Fatalf("unexpected evictions: %d", c.Stats().Evictions)
	}
}

func regionProg() *ir.Program {
	// Minimal program with one MD region over object 0 and one SL region.
	pb := ir.NewProgramBuilder("p")
	obj := pb.Object("tab", 8, nil)
	f := pb.Func("main", 0)
	b := f.NewBlock()
	b.RetI(0)
	p := pb.Build()
	p.Regions = []*ir.Region{
		{ID: 0, Func: f.ID(), Class: ir.MemoryDependent, MemObjects: []ir.MemID{obj},
			Inception: 0, Body: 0, Continuation: 0},
		{ID: 1, Func: f.ID(), Class: ir.Stateless,
			Inception: 0, Body: 0, Continuation: 0},
	}
	return p
}

func TestInvalidation(t *testing.T) {
	p := regionProg()
	c := New(Config{Entries: 8, Instances: 2}, p)
	c.Commit(0, inst(true, nil, nil))  // memory-dependent instance
	c.Commit(0, inst(false, nil, nil)) // same region, path without loads
	c.Commit(1, inst(false, nil, nil)) // stateless region
	n := c.Invalidate(0)
	if n != 1 {
		t.Fatalf("invalidated %d instances, want 1 (only the memory-using one)", n)
	}
	// The non-memory instance of region 0 and region 1 must survive.
	if _, ok := c.Lookup(0, regRead(nil)); !ok {
		t.Fatal("register-only instance of region 0 must survive invalidation")
	}
	if _, ok := c.Lookup(1, regRead(nil)); !ok {
		t.Fatal("stateless region unaffected by invalidation")
	}
	// Repeat invalidation is idempotent.
	if c.Invalidate(0) != 0 {
		t.Fatal("second invalidation should find nothing")
	}
}

func TestNoMemEntries(t *testing.T) {
	p := regionProg()
	c := New(Config{Entries: 8, Instances: 2, NoMemEntriesFrac: 1}, p)
	if c.Commit(0, inst(true, nil, nil)) {
		t.Fatal("memory-dependent instance must be rejected with no capable entries")
	}
	if !c.Commit(0, inst(false, nil, nil)) {
		t.Fatal("register-only instance must still be storable")
	}
	if c.Stats().RecordFails != 1 {
		t.Fatalf("record fails = %d", c.Stats().RecordFails)
	}
}

func TestInvalidateAllAndOccupancy(t *testing.T) {
	c := New(Config{Entries: 8, Instances: 4}, nil)
	for r := ir.RegionID(0); r < 6; r++ {
		c.Commit(r, inst(false, []RegVal{{Reg: 1, Val: int64(r)}}, nil))
	}
	if got := c.ResidentInstances(); got != 6 {
		t.Fatalf("resident = %d, want 6", got)
	}
	c.InvalidateAll()
	if got := c.ResidentInstances(); got != 0 {
		t.Fatalf("resident after flush = %d", got)
	}
}

func TestConfigNormalization(t *testing.T) {
	c := New(Config{}, nil)
	cfg := c.Config()
	if cfg.Entries != 128 || cfg.Instances != 8 || cfg.Assoc != 1 || cfg.NoMemEntriesFrac != 0 {
		t.Fatalf("normalized config = %+v", cfg)
	}
	c2 := New(Config{Entries: 4, Instances: 1, Assoc: 99}, nil)
	if c2.Config().Assoc != 4 {
		t.Fatalf("assoc should clamp to entries: %+v", c2.Config())
	}
}

// TestCommitLookupRoundTrip (property): any committed instance is
// immediately reusable with exactly its recorded inputs and returns
// exactly its recorded outputs.
func TestCommitLookupRoundTrip(t *testing.T) {
	f := func(region uint8, inVals, outVals []int16) bool {
		c := New(Config{Entries: 16, Instances: 4}, nil)
		if len(inVals) > 8 {
			inVals = inVals[:8]
		}
		if len(outVals) > 8 {
			outVals = outVals[:8]
		}
		var ins, outs []RegVal
		regs := map[ir.Reg]int64{}
		for i, v := range inVals {
			r := ir.Reg(i + 1)
			ins = append(ins, RegVal{Reg: r, Val: int64(v)})
			regs[r] = int64(v)
		}
		for i, v := range outVals {
			outs = append(outs, RegVal{Reg: ir.Reg(i + 9), Val: int64(v)})
		}
		id := ir.RegionID(region)
		if !c.Commit(id, Instance{Inputs: ins, Outputs: outs, ReplacedInstrs: 5}) {
			return false
		}
		ci, ok := c.Lookup(id, regRead(regs))
		if !ok || len(ci.Outputs) != len(outs) {
			return false
		}
		for i := range outs {
			if ci.Outputs[i] != outs[i] {
				return false
			}
		}
		// Perturbing any input value must miss.
		for i := range ins {
			regs2 := map[ir.Reg]int64{}
			for k, v := range regs {
				regs2[k] = v
			}
			regs2[ins[i].Reg] += 1
			if _, ok := c.Lookup(id, regRead(regs2)); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestConfigKeyCanonical checks Key distinguishes every field and is
// stable for equal configurations.
func TestConfigKeyCanonical(t *testing.T) {
	base := Config{Entries: 128, Instances: 8, Assoc: 1, NoMemEntriesFrac: 0}
	variants := []Config{
		{Entries: 64, Instances: 8, Assoc: 1},
		{Entries: 128, Instances: 16, Assoc: 1},
		{Entries: 128, Instances: 8, Assoc: 2},
		{Entries: 128, Instances: 8, Assoc: 1, NoMemEntriesFrac: 0.5},
		// The %+v-formatting hazard Key replaces: two fields swapping
		// values must not alias.
		{Entries: 8, Instances: 128, Assoc: 1},
	}
	seen := map[string]bool{base.Key(): true}
	for _, v := range variants {
		k := v.Key()
		if seen[k] {
			t.Fatalf("config %+v aliases an earlier key %q", v, k)
		}
		seen[k] = true
	}
	if base.Key() != (Config{Entries: 128, Instances: 8, Assoc: 1}).Key() {
		t.Fatal("equal configs produced different keys")
	}
}
