package crb_test

import (
	"testing"

	"ccr/internal/crb"
	"ccr/internal/ir"
)

// memProg fabricates the minimal region table the CRB needs: two regions,
// region 0 memory-dependent on object 1, region 1 stateless. Only
// prog.Regions is consulted by crb.New.
func memProg() *ir.Program {
	return &ir.Program{Regions: []*ir.Region{
		{ID: 0, Class: ir.MemoryDependent, MemObjects: []ir.MemID{1}},
		{ID: 1, Class: ir.Stateless},
	}}
}

// readFrom builds a register file holding the given values (Lookup takes
// the frame's register slice, indexed by ir.Reg).
func readFrom(vals map[ir.Reg]int64) []int64 {
	regs := make([]int64, 32)
	for r, v := range vals {
		regs[r] = v
	}
	return regs
}

func inst(usesMem bool, in, out int64) crb.Instance {
	return crb.Instance{
		UsesMem: usesMem,
		Inputs:  []crb.RegVal{{Reg: 1, Val: in}},
		Outputs: []crb.RegVal{{Reg: 2, Val: out}},
	}
}

// TestInvalidateIsObjectGranular pins the memory-valid-bit semantics under
// overlapping and partial-word stores: the hardware tracks validity per
// object, not per address, so a store anywhere into a region's object —
// even to words the recorded path never loaded — must kill every
// memory-using instance of that region. Instances whose recorded path
// executed no load (UsesMem false) survive, as do instances of regions not
// registered against the stored object.
func TestInvalidateIsObjectGranular(t *testing.T) {
	c := crb.New(crb.Config{Entries: 8, Instances: 4}, memProg())
	// Region 0: one memory-using instance and one pure-register instance
	// (a side path that never loaded).
	c.Commit(0, inst(true, 10, 100))
	c.Commit(0, inst(false, 11, 110))
	// Region 1 is stateless; object 1 is not registered against it.
	c.Commit(1, inst(false, 12, 120))

	// A store into object 2 (not region 0's object) invalidates nothing.
	if n := c.Invalidate(2); n != 0 {
		t.Fatalf("unrelated object invalidated %d instances", n)
	}
	// A store into object 1 — regardless of which word, including words the
	// recorded execution never touched — kills exactly the memory-using
	// instance.
	if n := c.Invalidate(1); n != 1 {
		t.Fatalf("invalidated %d instances, want 1 (the UsesMem one)", n)
	}
	if _, ok := c.Lookup(0, readFrom(map[ir.Reg]int64{1: 10})); ok {
		t.Fatal("memory-using instance reusable after its object was stored to")
	}
	if ci, ok := c.Lookup(0, readFrom(map[ir.Reg]int64{1: 11})); !ok || ci.Outputs[0].Val != 110 {
		t.Fatalf("register-only instance must survive invalidation: %v %v", ci, ok)
	}
	if _, ok := c.Lookup(1, readFrom(map[ir.Reg]int64{1: 12})); !ok {
		t.Fatal("unrelated region's instance lost to invalidation")
	}
	// Repeating the invalidation finds nothing left to kill: the valid bit
	// clears once, it does not double-count.
	if n := c.Invalidate(1); n != 0 {
		t.Fatalf("second invalidation killed %d more instances", n)
	}
}

// TestInvalidationRacesSameCycleLookup serializes the §4.3 race: when a
// computation-invalidate and a reuse lookup for the same region arrive
// back-to-back, the invalidation wins — the very next lookup with exactly
// matching inputs must miss, with no stale window. Re-recording afterwards
// restores reuse.
func TestInvalidationRacesSameCycleLookup(t *testing.T) {
	c := crb.New(crb.Config{Entries: 8, Instances: 4}, memProg())
	read := readFrom(map[ir.Reg]int64{1: 10})
	c.Commit(0, inst(true, 10, 100))
	if _, ok := c.Lookup(0, read); !ok {
		t.Fatal("instance not reusable before invalidation")
	}
	c.Invalidate(1)
	if ci, ok := c.Lookup(0, read); ok {
		t.Fatalf("lookup immediately after invalidation hit stale instance %+v", ci)
	}
	// The path re-executes and re-records; the fresh instance is reusable.
	c.Commit(0, inst(true, 10, 101))
	ci, ok := c.Lookup(0, read)
	if !ok || ci.Outputs[0].Val != 101 {
		t.Fatalf("re-recorded instance not reusable: %v %v", ci, ok)
	}
	st := c.Stats()
	if st.Invalidates != 1 {
		t.Fatalf("Invalidates = %d, want 1", st.Invalidates)
	}
}

// TestEvictionMidRecording covers an entry evicted between a region's
// recording-arming miss and its commit: with a single computation entry,
// region 1 claims the entry while region 0's execution is still recording.
// Region 0's commit must transparently re-allocate (evicting region 1) and
// the committed instance must be reusable — recording in progress holds no
// reference into the entry array.
func TestEvictionMidRecording(t *testing.T) {
	c := crb.New(crb.Config{Entries: 1, Instances: 4}, memProg())
	read0 := readFrom(map[ir.Reg]int64{1: 10})

	// Region 0 misses and arms recording.
	if _, ok := c.Lookup(0, read0); ok {
		t.Fatal("cold lookup hit")
	}
	// While region 0's body executes, region 1 records into the only entry,
	// evicting region 0's (empty) allocation.
	if !c.Commit(1, inst(false, 12, 120)) {
		t.Fatal("region 1 commit rejected")
	}
	// Region 0's recording completes; its commit must re-claim the entry.
	if !c.Commit(0, inst(true, 10, 100)) {
		t.Fatal("mid-recording eviction lost region 0's commit")
	}
	ci, ok := c.Lookup(0, read0)
	if !ok || ci.Outputs[0].Val != 100 {
		t.Fatalf("instance committed after eviction not reusable: %v %v", ci, ok)
	}
	// Region 1's instance was evicted in turn; its lookup misses cleanly.
	if _, ok := c.Lookup(1, readFrom(map[ir.Reg]int64{1: 12})); ok {
		t.Fatal("evicted region 1 instance still resident")
	}
	if st := c.Stats(); st.Evictions < 1 {
		t.Fatalf("Evictions = %d, want ≥ 1", st.Evictions)
	}
	// The invalidation plumbing still targets the re-claimed entry.
	if n := c.Invalidate(1); n != 1 {
		t.Fatalf("invalidation after mid-recording eviction killed %d, want 1", n)
	}
}
