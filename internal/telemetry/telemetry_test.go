package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ccr/internal/ir"
)

func TestMetricsAccumulation(t *testing.T) {
	m := NewMetrics()
	m.Lookup(3, MissCold)
	m.Lookup(3, Hit)
	m.Lookup(3, Hit)
	m.Lookup(3, MissInput)
	m.Lookup(7, MissConflict)
	m.Lookup(7, MissMemInvalid)
	m.Commit(3, true)
	m.Commit(3, false)
	m.Evict(3, EvictCapacity, 2)
	m.Evict(3, EvictSlotLRU, 1)
	m.Evict(7, EvictInvalidation, 3)
	m.Invalidate(1, 3)
	m.Invalidate(1, 0)

	r3 := m.Region(3)
	if r3 == nil {
		t.Fatal("region 3 never materialized")
	}
	want3 := RegionMetrics{Lookups: 4, Hits: 2, MissCold: 1, MissInput: 1,
		Commits: 1, CommitFails: 1,
		EvictionsCapacity: 1, EvictedInstances: 2, SlotOverwrites: 1}
	if *r3 != want3 {
		t.Errorf("region 3 = %+v, want %+v", *r3, want3)
	}
	r7 := m.Region(7)
	want7 := RegionMetrics{Lookups: 2, MissConflict: 1, MissMemInvalid: 1,
		InvalidatedInstances: 3}
	if r7 == nil || *r7 != want7 {
		t.Errorf("region 7 = %+v, want %+v", r7, want7)
	}
	mm := m.Mem(1)
	if mm == nil || *mm != (MemMetrics{Invalidations: 2, Fanout: 3}) {
		t.Errorf("mem 1 = %+v", mm)
	}
	if m.Region(99) != nil || m.Mem(99) != nil {
		t.Error("unobserved IDs materialized counters")
	}

	s := m.Summary()
	want := Summary{Regions: 2, Lookups: 6, Hits: 2,
		MissCold: 1, MissConflict: 1, MissInput: 1, MissMemInvalid: 1,
		Commits: 1, CommitFails: 1, Evictions: 1, Invalidated: 3, Invalidations: 2}
	if s != want {
		t.Errorf("Summary = %+v, want %+v", s, want)
	}
}

func TestReportSortedAndSerializable(t *testing.T) {
	m := NewMetrics()
	m.Lookup(9, Hit)
	m.Lookup(2, MissCold)
	m.Lookup(5, MissCold)
	m.Invalidate(4, 1)
	m.Invalidate(2, 0)

	r := m.Report()
	for i := 1; i < len(r.Regions); i++ {
		if r.Regions[i-1].Region >= r.Regions[i].Region {
			t.Fatalf("regions not strictly ascending: %v", r.Regions)
		}
	}
	for i := 1; i < len(r.Mem); i++ {
		if r.Mem[i-1].Mem >= r.Mem[i].Mem {
			t.Fatalf("mem rows not strictly ascending: %v", r.Mem)
		}
	}

	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Totals  Summary          `json:"totals"`
		Regions []map[string]any `json:"regions"`
		Mem     []map[string]any `json:"mem"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("metrics JSON does not parse: %v\n%s", err, data)
	}
	if decoded.Totals != m.Summary() {
		t.Errorf("totals round-trip: %+v != %+v", decoded.Totals, m.Summary())
	}
	if len(decoded.Regions) != 3 || len(decoded.Mem) != 2 {
		t.Errorf("decoded %d regions, %d mem rows", len(decoded.Regions), len(decoded.Mem))
	}
}

func TestTraceSequenceStamping(t *testing.T) {
	tr := NewTrace(8)
	tr.Add(TraceEvent{Kind: EventRegionEnter, Region: 1})
	tr.Add(TraceEvent{Kind: EventReuseHit, Region: 1, Reused: 5})
	ev := tr.Events()
	if ev[0].When != 0 || ev[1].When != 1 {
		t.Errorf("sequence stamps = %d,%d, want 0,1", ev[0].When, ev[1].When)
	}

	// With a clock installed, When comes from the clock, ignoring the
	// caller-supplied value.
	cycles := int64(100)
	tr.SetClock(func() int64 { return cycles })
	tr.Add(TraceEvent{Kind: EventReuseHit, Region: 2, When: -7})
	if got := tr.Events()[2].When; got != 100 {
		t.Errorf("clock stamp = %d, want 100", got)
	}
}

func TestTraceRingOverwritesOldest(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Add(TraceEvent{Kind: EventRegionEnter, Region: ir.RegionID(i)})
	}
	if tr.Len() != 4 || tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("len=%d total=%d dropped=%d, want 4/10/6", tr.Len(), tr.Total(), tr.Dropped())
	}
	ev := tr.Events()
	for i, e := range ev {
		if want := ir.RegionID(6 + i); e.Region != want {
			t.Errorf("event %d region %d, want %d (most recent window)", i, e.Region, want)
		}
		if i > 0 && ev[i].When <= ev[i-1].When {
			t.Errorf("events out of chronological order: %v", ev)
		}
	}
}

func TestTraceDefaultCapacity(t *testing.T) {
	for _, capacity := range []int{0, -5} {
		tr := NewTrace(capacity)
		tr.Add(TraceEvent{})
		if got := cap(tr.buf); got != DefaultTraceCap {
			t.Errorf("NewTrace(%d) capacity %d, want DefaultTraceCap %d", capacity, got, DefaultTraceCap)
		}
	}
}

// TestWriteChromeFormat pins the container shape the trace viewers require:
// a top-level traceEvents array whose entries all carry ph/pid/ts, with
// process/thread metadata and the dropped-event accounting when the ring
// overflowed.
func TestWriteChromeFormat(t *testing.T) {
	tr := NewTrace(2)
	tr.Add(TraceEvent{Kind: EventRegionEnter, Region: 3, PC: 40})
	tr.Add(TraceEvent{Kind: EventReuseHit, Region: 3, Reused: 12, PC: 40})
	tr.Add(TraceEvent{Kind: EventInvalidate, Mem: 2, Fanout: 1, PC: 96})

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    *int64         `json:"ts"`
			Dur   int64          `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace does not parse: %v\n%s", err, buf.String())
	}
	if out.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}
	var hits, instants, meta int
	for _, ev := range out.TraceEvents {
		if ev.Phase == "" {
			t.Fatalf("event %q missing ph", ev.Name)
		}
		switch ev.Phase {
		case "X":
			hits++
			if ev.Dur != 12 {
				t.Errorf("hit span dur = %d, want 12 (eliminated instrs)", ev.Dur)
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	// The capacity-2 ring dropped the enter event: one hit span, one
	// invalidation instant, and metadata for both processes plus the two
	// named tracks.
	if hits != 1 || instants != 1 {
		t.Errorf("got %d spans, %d instants (events: %s)", hits, instants, buf.String())
	}
	if meta < 3 {
		t.Errorf("only %d metadata events; want process and thread names", meta)
	}
	if out.OtherData["dropped_events"] == nil {
		t.Error("overflowed trace did not report dropped_events")
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTrace(8)
	tr.Add(TraceEvent{Kind: EventRegionEnter, Region: 3, PC: 40})
	tr.Add(TraceEvent{Kind: EventReuseHit, Region: 3, Reused: 12, PC: 40})
	tr.Add(TraceEvent{Kind: EventInvalidate, Mem: 2, Fanout: 1, PC: 96})

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var kinds []string
	for sc.Scan() {
		var je map[string]any
		if err := json.Unmarshal(sc.Bytes(), &je); err != nil {
			t.Fatalf("line %q does not parse: %v", sc.Text(), err)
		}
		kind, _ := je["kind"].(string)
		kinds = append(kinds, kind)
		if kind == "inval" {
			if je["mem"] == nil || je["region"] != nil {
				t.Errorf("inval line fields wrong: %q", sc.Text())
			}
		} else if je["region"] == nil || je["mem"] != nil {
			t.Errorf("reuse line fields wrong: %q", sc.Text())
		}
	}
	if got := strings.Join(kinds, ","); got != "enter,hit,inval" {
		t.Errorf("kinds = %s, want enter,hit,inval", got)
	}
}
