package telemetry

import (
	"sync"
	"testing"
)

// TestTraceConcurrentWriters hammers one ring from many writers while a
// reader snapshots it, then checks the overwrite/drop accounting closed
// exactly. Run under -race this also proves the synchronization claim in
// the Trace doc comment — the observability plane snapshots traces that
// simulations are still appending to.
func TestTraceConcurrentWriters(t *testing.T) {
	const (
		capacity = 64
		writers  = 8
		perW     = 1000
	)
	tr := NewTrace(capacity)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := len(tr.Events()); n > capacity {
				t.Errorf("snapshot holds %d events, cap %d", n, capacity)
				return
			}
			if tr.Dropped() != tr.Total()-int64(tr.Len()) {
				// Tolerated: the three reads are not one atomic snapshot.
				// Each value alone must still be monotone and sane, which
				// the final checks below verify.
				continue
			}
		}
	}()

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perW; i++ {
				tr.Add(TraceEvent{Kind: EventReuseHit, Region: 1, Reused: w*perW + i})
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	if got := tr.Total(); got != writers*perW {
		t.Errorf("Total = %d, want %d (no Add lost)", got, writers*perW)
	}
	if got := tr.Len(); got != capacity {
		t.Errorf("Len = %d, want full ring %d", got, capacity)
	}
	if got := tr.Dropped(); got != writers*perW-capacity {
		t.Errorf("Dropped = %d, want %d", got, writers*perW-capacity)
	}
	// The retained window is exactly capacity distinct events — ring
	// overwrite never duplicates a slot in one snapshot.
	seen := map[int]bool{}
	for _, ev := range tr.Events() {
		if seen[ev.Reused] {
			t.Errorf("event payload %d appears twice in one snapshot", ev.Reused)
		}
		seen[ev.Reused] = true
	}
	if len(seen) != capacity {
		t.Errorf("snapshot has %d distinct events, want %d", len(seen), capacity)
	}
}

// TestTraceSequenceStamps pins the no-clock stamping rule under the ring:
// with no clock installed, When is the event's global sequence number,
// so the retained window of an overflowed ring holds the newest total-cap
// stamps in ascending order.
func TestTraceSequenceStamps(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Add(TraceEvent{Kind: EventRegionEnter, Region: 1})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.When != want {
			t.Errorf("event %d stamped %d, want %d", i, ev.When, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", tr.Dropped())
	}
}
