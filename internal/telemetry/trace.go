package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"ccr/internal/ir"
)

// EventKind classifies one trace event.
type EventKind uint8

const (
	// EventRegionEnter: a reuse instruction missed, so the region body
	// executes (and typically memoizes).
	EventRegionEnter EventKind = iota
	// EventReuseHit: a reuse instruction hit; the region body was skipped.
	EventReuseHit
	// EventInvalidate: a computation-invalidate instruction executed.
	EventInvalidate
)

// String names the kind (also the JSONL "kind" value).
func (k EventKind) String() string {
	switch k {
	case EventRegionEnter:
		return "enter"
	case EventReuseHit:
		return "hit"
	case EventInvalidate:
		return "inval"
	}
	return "unknown"
}

// TraceEvent is one recorded reuse-relevant dynamic event.
type TraceEvent struct {
	// When is the cycle timestamp (or the event sequence number when the
	// collector has no cycle clock, e.g. on functional runs).
	When int64
	Kind EventKind
	// Region is set for enter/hit events, Mem for invalidations.
	Region ir.RegionID
	Mem    ir.MemID
	// Reused is the eliminated dynamic instruction count of a hit.
	Reused int
	// Fanout is the instance count an invalidation killed.
	Fanout int
	// PC is the byte address of the triggering instruction.
	PC int64
}

// DefaultTraceCap bounds the ring buffer when no capacity is given.
const DefaultTraceCap = 1 << 16

// Trace is a bounded ring buffer of reuse-relevant events. When full, the
// oldest events are overwritten — a long run keeps its most recent window
// and reports how much was dropped. Safe for concurrent use: the
// observability plane may snapshot (Len/Total/Dropped/Events) a Trace
// that a simulation is still appending to.
type Trace struct {
	mu    sync.Mutex
	clock func() int64
	buf   []TraceEvent
	next  int   // ring write index
	total int64 // events ever added
}

// NewTrace builds a collector holding up to capacity events
// (DefaultTraceCap when capacity <= 0).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{buf: make([]TraceEvent, 0, capacity)}
}

// SetClock installs the timestamp source (e.g. the timing model's cycle
// counter). With no clock, events are stamped with their sequence number.
func (t *Trace) SetClock(clock func() int64) {
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// Add stamps and records one event.
func (t *Trace) Add(ev TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.clock != nil {
		ev.When = t.clock()
	} else {
		ev.When = t.total
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.next++
		if t.next == len(t.buf) {
			t.next = 0
		}
	}
	t.total++
}

// Len reports the number of retained events; Total the number ever added;
// Dropped how many the ring overwrote.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

func (t *Trace) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - int64(len(t.buf))
}

// Events returns a copy of the retained events in chronological order.
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form Perfetto and
// chrome://tracing both accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Chrome trace process IDs: reuse activity on one track group,
// invalidation traffic on another.
const (
	chromePIDReuse = 1
	chromePIDInval = 2
)

// WriteChrome renders the retained events as Chrome trace-event JSON.
// Cycles map to microseconds (one trace "us" per cycle); each region gets
// its own thread track, hits draw as spans whose duration is the
// eliminated instruction count, misses and invalidations as instants.
func (t *Trace) WriteChrome(w io.Writer) error {
	events := t.Events()
	out := chromeTrace{
		DisplayTimeUnit: "ms",
		TraceEvents: []chromeEvent{
			{Name: "process_name", Phase: "M", PID: chromePIDReuse,
				Args: map[string]any{"name": "reuse"}},
			{Name: "process_name", Phase: "M", PID: chromePIDInval,
				Args: map[string]any{"name": "invalidation"}},
		},
	}
	namedRegion := map[int]bool{}
	namedMem := map[int]bool{}
	for _, ev := range events {
		switch ev.Kind {
		case EventReuseHit, EventRegionEnter:
			tid := int(ev.Region)
			if !namedRegion[tid] {
				namedRegion[tid] = true
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "thread_name", Phase: "M", PID: chromePIDReuse, TID: tid,
					Args: map[string]any{"name": fmt.Sprintf("region %d", ev.Region)}})
			}
			if ev.Kind == EventReuseHit {
				dur := int64(ev.Reused)
				if dur < 1 {
					dur = 1
				}
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "reuse hit", Cat: "reuse", Phase: "X",
					TS: ev.When, Dur: dur, PID: chromePIDReuse, TID: tid,
					Args: map[string]any{"region": ev.Region, "reused_instrs": ev.Reused, "pc": ev.PC}})
			} else {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "region enter", Cat: "reuse", Phase: "i",
					TS: ev.When, PID: chromePIDReuse, TID: tid, Scope: "t",
					Args: map[string]any{"region": ev.Region, "pc": ev.PC}})
			}
		case EventInvalidate:
			tid := int(ev.Mem)
			if !namedMem[tid] {
				namedMem[tid] = true
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "thread_name", Phase: "M", PID: chromePIDInval, TID: tid,
					Args: map[string]any{"name": fmt.Sprintf("mem %d", ev.Mem)}})
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "invalidate", Cat: "invalidation", Phase: "i",
				TS: ev.When, PID: chromePIDInval, TID: tid, Scope: "t",
				Args: map[string]any{"mem": ev.Mem, "fanout": ev.Fanout, "pc": ev.PC}})
		}
	}
	if d := t.Dropped(); d > 0 {
		out.OtherData = map[string]any{"dropped_events": d, "total_events": t.Total()}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// jsonlEvent is the compact JSONL form of one event.
type jsonlEvent struct {
	T      int64  `json:"t"`
	Kind   string `json:"kind"`
	Region *int32 `json:"region,omitempty"`
	Mem    *int32 `json:"mem,omitempty"`
	Reused int    `json:"reused,omitempty"`
	Fanout int    `json:"fanout,omitempty"`
	PC     int64  `json:"pc"`
}

// WriteJSONL streams the retained events, one JSON object per line.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		je := jsonlEvent{T: ev.When, Kind: ev.Kind.String(), PC: ev.PC}
		switch ev.Kind {
		case EventInvalidate:
			mem := int32(ev.Mem)
			je.Mem = &mem
			je.Fanout = ev.Fanout
		default:
			region := int32(ev.Region)
			je.Region = &region
			je.Reused = ev.Reused
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}
