// Package telemetry is the opt-in observability layer of the CCR stack:
// cause-attributed Computation Reuse Buffer metrics (which region hit, why
// an instance died, where invalidations fan out) and a ring-buffered trace
// of reuse-relevant dynamic events, exportable as Chrome trace-event JSON
// (chrome://tracing, Perfetto) or as a compact JSONL stream.
//
// The layer is wired into the hardware model through the Sink interface:
// crb.CRB calls a Sink, when one is attached, at every architectural CRB
// operation. With no sink attached (the default), the instrumented paths
// are never taken — the zero-sink run is allocation-free and byte-identical
// to an uninstrumented one, an invariant DESIGN.md §9 pins and the
// transparency tests enforce.
package telemetry

import "ccr/internal/ir"

// LookupOutcome classifies one CRB lookup: a hit, or one of the four miss
// causes the paper's rationale distinguishes.
type LookupOutcome uint8

const (
	// Hit: a valid instance matched the current inputs.
	Hit LookupOutcome = iota
	// MissCold: the region has never had a computation entry allocated —
	// the first-execution miss every region pays.
	MissCold
	// MissConflict: the region had an entry once, but a tag conflict
	// evicted it — the capacity/mapping pressure miss.
	MissConflict
	// MissInput: the entry is resident but no instance matched the current
	// input register values.
	MissInput
	// MissMemInvalid: an instance matched the current inputs but was
	// unreusable only because an invalidation cleared its memory-valid bit.
	MissMemInvalid

	numOutcomes
)

// String names the outcome for reports.
func (o LookupOutcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case MissCold:
		return "miss-cold"
	case MissConflict:
		return "miss-conflict"
	case MissInput:
		return "miss-input"
	case MissMemInvalid:
		return "miss-mem-invalid"
	}
	return "unknown"
}

// EvictCause classifies why recorded state left the CRB.
type EvictCause uint8

const (
	// EvictCapacity: a whole computation entry was replaced by a tag
	// conflict (the LRU victim of crb.Stats.Evictions).
	EvictCapacity EvictCause = iota
	// EvictSlotLRU: one instance slot inside a full entry was overwritten
	// by a fresh recording of the same region.
	EvictSlotLRU
	// EvictInvalidation: an instance was discarded because a
	// computation-invalidate instruction named one of its objects.
	EvictInvalidation

	numEvictCauses
)

// String names the cause for reports.
func (c EvictCause) String() string {
	switch c {
	case EvictCapacity:
		return "capacity"
	case EvictSlotLRU:
		return "slot-lru"
	case EvictInvalidation:
		return "invalidation"
	}
	return "unknown"
}

// Sink receives the CRB's architectural event stream. Implementations must
// be cheap: every method is called from the simulation hot path, once per
// CRB operation. The CRB guards every call behind a nil check, so the
// zero-sink configuration pays nothing; attach the sink before the first
// operation — cold/conflict attribution needs the full residence history.
type Sink interface {
	// Lookup reports one reuse-instruction access and its outcome.
	Lookup(region ir.RegionID, outcome LookupOutcome)
	// Commit reports one instance recording; stored is false when the
	// region was memory-dependent but mapped to a non-capable entry.
	Commit(region ir.RegionID, stored bool)
	// Evict reports recorded state leaving the buffer: instances valid
	// instances of region discarded for the given cause. Entry
	// replacements attribute the eviction to the *victim* region.
	Evict(region ir.RegionID, cause EvictCause, instances int)
	// Invalidate reports one executed computation-invalidate of object
	// mem, with the number of instances it killed (its fan-out).
	Invalidate(mem ir.MemID, fanout int)
}

// TraceSink receives the trace buffer's architectural event stream — the
// DTM analogue of Sink, with heads (packed function+PC keys, see
// reuse.EncodeHead) in place of region IDs. The same contract applies:
// methods are hot-path cheap, every call is nil-guarded by the buffer, and
// the sink must be attached before the first operation for cold/conflict
// attribution to be complete.
type TraceSink interface {
	// TraceLookup reports one landing at an eligible trace head and its
	// outcome, classified with the same LookupOutcome vocabulary as CRB
	// lookups.
	TraceLookup(head uint64, outcome LookupOutcome)
	// TraceCommit reports one trace recording.
	TraceCommit(head uint64, stored bool)
	// TraceEvict reports recorded traces leaving the buffer.
	TraceEvict(head uint64, cause EvictCause, instances int)
	// TraceStore reports one watched store that killed traces, with its
	// fan-out. Stores with zero fan-out — the overwhelmingly common case
	// — are not reported; the flat counters still see them.
	TraceStore(mem ir.MemID, fanout int)
}

// NopSink is a Sink whose methods do nothing. It exists to measure the
// cost of the instrumentation seam itself (an interface call per CRB
// operation) against the nil-sink fast path — see BenchmarkTelemetrySink.
type NopSink struct{}

// Lookup implements Sink.
func (NopSink) Lookup(ir.RegionID, LookupOutcome) {}

// Commit implements Sink.
func (NopSink) Commit(ir.RegionID, bool) {}

// Evict implements Sink.
func (NopSink) Evict(ir.RegionID, EvictCause, int) {}

// Invalidate implements Sink.
func (NopSink) Invalidate(ir.MemID, int) {}
