package telemetry

import (
	"encoding/json"
	"sort"

	"ccr/internal/ir"
)

// RegionMetrics is the cause-attributed counter block of one region.
// The per-cause counters partition the flat crb.Stats totals exactly:
// summed over all regions, Hits equals Stats.Hits, MissCold+MissConflict
// equals Stats.TagMisses, MissInput+MissMemInvalid equals
// Stats.InputMisses, Commits/CommitFails equal Records/RecordFails,
// EvictionsCapacity equals Stats.Evictions and InvalidatedInstances
// equals Stats.Invalidates (TestMetricsSumToFlatStats enforces this).
type RegionMetrics struct {
	Lookups int64 `json:"lookups"`
	Hits    int64 `json:"hits"`

	MissCold       int64 `json:"miss_cold"`
	MissConflict   int64 `json:"miss_conflict"`
	MissInput      int64 `json:"miss_input"`
	MissMemInvalid int64 `json:"miss_mem_invalid"`

	Commits     int64 `json:"commits"`
	CommitFails int64 `json:"commit_fails,omitempty"`

	// EvictionsCapacity counts entry replacements that victimized this
	// region; EvictedInstances the valid instances those replacements
	// dropped. SlotOverwrites counts single-instance LRU overwrites inside
	// a full entry, and InvalidatedInstances the instances killed by
	// computation-invalidate instructions.
	EvictionsCapacity    int64 `json:"evictions_capacity,omitempty"`
	EvictedInstances     int64 `json:"evicted_instances,omitempty"`
	SlotOverwrites       int64 `json:"slot_overwrites,omitempty"`
	InvalidatedInstances int64 `json:"invalidated_instances,omitempty"`
}

// MemMetrics aggregates the invalidation traffic of one memory object.
type MemMetrics struct {
	// Invalidations counts executed computation-invalidate instructions
	// naming this object; Fanout sums the instances they killed.
	Invalidations int64 `json:"invalidations"`
	Fanout        int64 `json:"fanout"`
}

// Metrics is the Sink (and TraceSink) that accumulates cause-attributed
// per-region CRB counters, per-head DTM trace counters and per-object
// invalidation fan-out. It is not synchronized: attach one Metrics per
// simulated machine (the suite and CLIs allocate a fresh one per run
// cell).
type Metrics struct {
	regions map[ir.RegionID]*RegionMetrics
	mems    map[ir.MemID]*MemMetrics
	// traces reuses the RegionMetrics counter block keyed by opaque DTM
	// head keys (reuse.EncodeHead values; telemetry does not decode them).
	traces      map[uint64]*RegionMetrics
	traceStores map[ir.MemID]*MemMetrics
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{
		regions:     map[ir.RegionID]*RegionMetrics{},
		mems:        map[ir.MemID]*MemMetrics{},
		traces:      map[uint64]*RegionMetrics{},
		traceStores: map[ir.MemID]*MemMetrics{},
	}
}

func (m *Metrics) region(id ir.RegionID) *RegionMetrics {
	rm := m.regions[id]
	if rm == nil {
		rm = &RegionMetrics{}
		m.regions[id] = rm
	}
	return rm
}

// Lookup implements Sink.
func (m *Metrics) Lookup(region ir.RegionID, outcome LookupOutcome) {
	rm := m.region(region)
	rm.Lookups++
	switch outcome {
	case Hit:
		rm.Hits++
	case MissCold:
		rm.MissCold++
	case MissConflict:
		rm.MissConflict++
	case MissInput:
		rm.MissInput++
	case MissMemInvalid:
		rm.MissMemInvalid++
	}
}

// Commit implements Sink.
func (m *Metrics) Commit(region ir.RegionID, stored bool) {
	rm := m.region(region)
	if stored {
		rm.Commits++
	} else {
		rm.CommitFails++
	}
}

// Evict implements Sink.
func (m *Metrics) Evict(region ir.RegionID, cause EvictCause, instances int) {
	rm := m.region(region)
	switch cause {
	case EvictCapacity:
		rm.EvictionsCapacity++
		rm.EvictedInstances += int64(instances)
	case EvictSlotLRU:
		rm.SlotOverwrites += int64(instances)
	case EvictInvalidation:
		rm.InvalidatedInstances += int64(instances)
	}
}

// Invalidate implements Sink.
func (m *Metrics) Invalidate(mem ir.MemID, fanout int) {
	mm := m.mems[mem]
	if mm == nil {
		mm = &MemMetrics{}
		m.mems[mem] = mm
	}
	mm.Invalidations++
	mm.Fanout += int64(fanout)
}

func (m *Metrics) trace(head uint64) *RegionMetrics {
	tm := m.traces[head]
	if tm == nil {
		tm = &RegionMetrics{}
		m.traces[head] = tm
	}
	return tm
}

// TraceLookup implements TraceSink.
func (m *Metrics) TraceLookup(head uint64, outcome LookupOutcome) {
	tm := m.trace(head)
	tm.Lookups++
	switch outcome {
	case Hit:
		tm.Hits++
	case MissCold:
		tm.MissCold++
	case MissConflict:
		tm.MissConflict++
	case MissInput:
		tm.MissInput++
	case MissMemInvalid:
		tm.MissMemInvalid++
	}
}

// TraceCommit implements TraceSink.
func (m *Metrics) TraceCommit(head uint64, stored bool) {
	tm := m.trace(head)
	if stored {
		tm.Commits++
	} else {
		tm.CommitFails++
	}
}

// TraceEvict implements TraceSink.
func (m *Metrics) TraceEvict(head uint64, cause EvictCause, instances int) {
	tm := m.trace(head)
	switch cause {
	case EvictCapacity:
		tm.EvictionsCapacity++
		tm.EvictedInstances += int64(instances)
	case EvictSlotLRU:
		tm.SlotOverwrites += int64(instances)
	case EvictInvalidation:
		tm.InvalidatedInstances += int64(instances)
	}
}

// TraceStore implements TraceSink.
func (m *Metrics) TraceStore(mem ir.MemID, fanout int) {
	mm := m.traceStores[mem]
	if mm == nil {
		mm = &MemMetrics{}
		m.traceStores[mem] = mm
	}
	mm.Invalidations++
	mm.Fanout += int64(fanout)
}

// TraceHead returns the counters of one DTM head (nil when never
// observed).
func (m *Metrics) TraceHead(head uint64) *RegionMetrics { return m.traces[head] }

// Region returns the counters of one region (nil when never observed).
func (m *Metrics) Region(id ir.RegionID) *RegionMetrics { return m.regions[id] }

// Mem returns the invalidation counters of one object (nil when never
// invalidated).
func (m *Metrics) Mem(id ir.MemID) *MemMetrics { return m.mems[id] }

// Summary is the compact totals block embedded in run manifests.
type Summary struct {
	Regions        int   `json:"regions"`
	Lookups        int64 `json:"lookups"`
	Hits           int64 `json:"hits"`
	MissCold       int64 `json:"miss_cold"`
	MissConflict   int64 `json:"miss_conflict"`
	MissInput      int64 `json:"miss_input"`
	MissMemInvalid int64 `json:"miss_mem_invalid"`
	Commits        int64 `json:"commits"`
	CommitFails    int64 `json:"commit_fails,omitempty"`
	Evictions      int64 `json:"evictions,omitempty"`
	Invalidated    int64 `json:"invalidated,omitempty"`
	Invalidations  int64 `json:"invalidations,omitempty"`

	// DTM totals mirror the CRB block for the trace-memoization scheme;
	// all zero (and omitted from JSON) on pure-CCR runs, keeping legacy
	// manifests byte-stable.
	DTMHeads         int   `json:"dtm_heads,omitempty"`
	DTMLookups       int64 `json:"dtm_lookups,omitempty"`
	DTMHits          int64 `json:"dtm_hits,omitempty"`
	DTMCommits       int64 `json:"dtm_commits,omitempty"`
	DTMEvictions     int64 `json:"dtm_evictions,omitempty"`
	DTMInvalidated   int64 `json:"dtm_invalidated,omitempty"`
	DTMInvalidations int64 `json:"dtm_invalidations,omitempty"`
}

// Summary folds the per-region counters into totals.
func (m *Metrics) Summary() Summary {
	s := Summary{Regions: len(m.regions)}
	for _, rm := range m.regions {
		s.Lookups += rm.Lookups
		s.Hits += rm.Hits
		s.MissCold += rm.MissCold
		s.MissConflict += rm.MissConflict
		s.MissInput += rm.MissInput
		s.MissMemInvalid += rm.MissMemInvalid
		s.Commits += rm.Commits
		s.CommitFails += rm.CommitFails
		s.Evictions += rm.EvictionsCapacity
		s.Invalidated += rm.InvalidatedInstances
	}
	for _, mm := range m.mems {
		s.Invalidations += mm.Invalidations
	}
	s.DTMHeads = len(m.traces)
	for _, tm := range m.traces {
		s.DTMLookups += tm.Lookups
		s.DTMHits += tm.Hits
		s.DTMCommits += tm.Commits
		s.DTMEvictions += tm.EvictionsCapacity
		s.DTMInvalidated += tm.InvalidatedInstances
	}
	for _, mm := range m.traceStores {
		s.DTMInvalidations += mm.Invalidations
	}
	return s
}

// RegionReport is one region's row in the JSON metrics report.
type RegionReport struct {
	Region ir.RegionID `json:"region"`
	RegionMetrics
}

// MemReport is one object's row in the JSON metrics report.
type MemReport struct {
	Mem ir.MemID `json:"mem"`
	MemMetrics
}

// TraceReport is one DTM head's row in the JSON metrics report. Head is
// the opaque reuse.EncodeHead key (function ID in the upper half, head pc
// in the lower).
type TraceReport struct {
	Head uint64 `json:"head"`
	RegionMetrics
}

// Report is the serializable form of a Metrics collection (ccrsim
// -metrics writes one).
type Report struct {
	Totals      Summary        `json:"totals"`
	Regions     []RegionReport `json:"regions"`
	Mem         []MemReport    `json:"mem,omitempty"`
	Traces      []TraceReport  `json:"traces,omitempty"`
	TraceStores []MemReport    `json:"trace_stores,omitempty"`
}

// Report snapshots the metrics, regions and objects in ID order.
func (m *Metrics) Report() Report {
	r := Report{Totals: m.Summary()}
	for id, rm := range m.regions {
		r.Regions = append(r.Regions, RegionReport{Region: id, RegionMetrics: *rm})
	}
	sort.Slice(r.Regions, func(i, j int) bool { return r.Regions[i].Region < r.Regions[j].Region })
	for id, mm := range m.mems {
		r.Mem = append(r.Mem, MemReport{Mem: id, MemMetrics: *mm})
	}
	sort.Slice(r.Mem, func(i, j int) bool { return r.Mem[i].Mem < r.Mem[j].Mem })
	for head, tm := range m.traces {
		r.Traces = append(r.Traces, TraceReport{Head: head, RegionMetrics: *tm})
	}
	sort.Slice(r.Traces, func(i, j int) bool { return r.Traces[i].Head < r.Traces[j].Head })
	for id, mm := range m.traceStores {
		r.TraceStores = append(r.TraceStores, MemReport{Mem: id, MemMetrics: *mm})
	}
	sort.Slice(r.TraceStores, func(i, j int) bool { return r.TraceStores[i].Mem < r.TraceStores[j].Mem })
	return r
}

// JSON renders the report as indented JSON.
func (m *Metrics) JSON() ([]byte, error) {
	return json.MarshalIndent(m.Report(), "", "  ")
}
