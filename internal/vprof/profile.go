package vprof

import "ccr/internal/ir"

// Profile is the completed RPS output consumed by the region-formation
// heuristics. Instruction-level queries take ir.InstrRef positions.
type Profile struct {
	prog   *ir.Program
	exec   []int64
	taken  []int64
	values map[int]*ValueCounter
	loads  map[int]*loadProf

	// Loops maps each profiled inner loop to its recurrence profile.
	Loops map[LoopKey]*LoopProfile

	// TotalDyn is the total dynamic instruction count of the profiled run.
	TotalDyn int64
}

// gidx converts a reference to its global instruction index.
func (p *Profile) gidx(ref ir.InstrRef) int {
	f := p.prog.Func(ref.Func)
	if f == nil {
		return -1
	}
	return int(f.InstrAddr(ref.Block, ref.Index) >> 2)
}

// Exec returns the execution count of the instruction.
func (p *Profile) Exec(ref ir.InstrRef) int64 {
	g := p.gidx(ref)
	if g < 0 || g >= len(p.exec) {
		return 0
	}
	return p.exec[g]
}

// BlockExec returns the execution count of a block (the count of its first
// instruction; empty blocks report 0).
func (p *Profile) BlockExec(f ir.FuncID, b ir.BlockID) int64 {
	return p.Exec(ir.InstrRef{Func: f, Block: b, Index: 0})
}

// Invariance returns the fraction of the instruction's executions covered
// by its k most frequent input tuples — Invariance_R[k](i)/Exec(i) of the
// paper's heuristic function (1). Instructions with no profiled values
// (immediates, address materialization) are perfectly invariant.
func (p *Profile) Invariance(ref ir.InstrRef, k int) float64 {
	g := p.gidx(ref)
	c := p.values[g]
	if c == nil {
		in := p.prog.InstrAt(ref)
		if in != nil && (in.Op == ir.MovI || in.Op == ir.Lea || in.Op == ir.Nop) {
			return 1.0
		}
		return 0
	}
	return c.Invariance(k)
}

// Distinct returns the saturating count of distinct input tuples observed
// for the instruction (the "limited set of values" analysis of §4.4).
func (p *Profile) Distinct(ref ir.InstrRef) int {
	c := p.values[p.gidx(ref)]
	if c == nil {
		return 0
	}
	return c.Distinct()
}

// MemReuse returns, for a load, the fraction of executions whose referenced
// object had not been stored to since the load's previous execution —
// heuristic function (2) of §4.4. Non-load instructions report 0.
func (p *Profile) MemReuse(ref ir.InstrRef) float64 {
	lp := p.loads[p.gidx(ref)]
	if lp == nil || lp.execs == 0 {
		return 0
	}
	// A load's first execution cannot be a reuse; rate over executions.
	return float64(lp.reuses) / float64(lp.execs)
}

// TakenRatio returns the fraction of a conditional branch's executions that
// were taken.
func (p *Profile) TakenRatio(ref ir.InstrRef) float64 {
	g := p.gidx(ref)
	if g < 0 || g >= len(p.exec) || p.exec[g] == 0 {
		return 0
	}
	return float64(p.taken[g]) / float64(p.exec[g])
}

// EdgeWeight estimates the execution weight of the CFG edge leaving the
// instruction at ref toward target. For a conditional branch the taken
// count (or its complement) is used; unconditional successors inherit the
// instruction weight.
func (p *Profile) EdgeWeight(ref ir.InstrRef, taken bool) int64 {
	g := p.gidx(ref)
	if g < 0 || g >= len(p.exec) {
		return 0
	}
	in := p.prog.InstrAt(ref)
	if in == nil {
		return 0
	}
	if in.Op.IsCondBranch() {
		if taken {
			return p.taken[g]
		}
		return p.exec[g] - p.taken[g]
	}
	return p.exec[g]
}

// Loop returns the profile of the inner loop headed at (f, header), or nil.
func (p *Profile) Loop(f ir.FuncID, header ir.BlockID) *LoopProfile {
	return p.Loops[LoopKey{Func: f, Header: header}]
}
