package vprof

import (
	"testing"
	"testing/quick"

	"ccr/internal/emu"
	"ccr/internal/ir"
)

func TestValueCounterTopK(t *testing.T) {
	c := newValueCounter()
	for i := 0; i < 70; i++ {
		c.Observe(1, 1)
	}
	for i := 0; i < 20; i++ {
		c.Observe(2, 2)
	}
	for i := 0; i < 10; i++ {
		c.Observe(int64(100+i), 0) // ten singletons
	}
	if c.Total() != 100 {
		t.Fatalf("total = %d", c.Total())
	}
	if inv := c.Invariance(1); inv < 0.65 || inv > 0.75 {
		t.Fatalf("top-1 invariance = %f, want ≈ 0.70", inv)
	}
	if inv := c.Invariance(5); inv < 0.90 {
		t.Fatalf("top-5 invariance = %f, want ≥ 0.90", inv)
	}
	if c.Distinct() != 12 {
		t.Fatalf("distinct = %d, want 12", c.Distinct())
	}
}

// TestValueCounterSpaceSavingOverestimates: the space-saving approximation
// never undercounts the true top-k weight (standard property of the
// algorithm: counts are upper bounds).
func TestValueCounterSpaceSavingOverestimates(t *testing.T) {
	f := func(vals []uint8) bool {
		c := newValueCounter()
		exact := map[int64]int64{}
		for _, v := range vals {
			x := int64(v % 40) // up to 40 distinct values, over capacity 16
			c.Observe(x, 0)
			exact[x]++
		}
		if len(vals) == 0 {
			return c.TopK(5) == 0
		}
		// Exact top-5.
		var counts []int64
		for _, n := range exact {
			counts = append(counts, n)
		}
		// selection of 5 largest
		var top5 int64
		for k := 0; k < 5; k++ {
			mi, mv := -1, int64(-1)
			for i, v := range counts {
				if v > mv {
					mi, mv = i, v
				}
			}
			if mi < 0 {
				break
			}
			top5 += mv
			counts[mi] = -1
		}
		return c.TopK(5) >= top5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// profiled builds and profiles a loop program: main(n) sums table[i&3]
// over n iterations, with a store to a second object every 16 iterations.
func profiled(t *testing.T, n int64) (*ir.Program, *Profile) {
	t.Helper()
	pb := ir.NewProgramBuilder("p")
	tab := pb.ReadOnlyObject("tab", []int64{4, 5, 6, 7})
	buf := pb.Object("buf", 8, nil)
	f := pb.Func("main", 1)
	entry := f.NewBlock()
	head := f.NewBlock()
	body := f.NewBlock()
	st := f.NewBlock()
	latch := f.NewBlock()
	exit := f.NewBlock()
	i, s, base, v, tmp, bb := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	entry.MovI(i, 0)
	entry.MovI(s, 0)
	entry.Lea(base, tab, 0)
	head.Bge(i, f.Param(0), exit.ID())
	body.AndI(v, i, 3)
	body.Add(v, base, v)
	body.Ld(v, v, 0, tab)
	body.Add(s, s, v)
	body.AndI(tmp, i, 15)
	body.BneI(tmp, 15, latch.ID())
	st.Lea(bb, buf, 0)
	st.AndI(tmp, s, 7)
	st.Add(bb, bb, tmp)
	st.St(bb, 0, s, buf)
	latch.AddI(i, i, 1)
	latch.Jmp(head.ID())
	exit.Ret(s)
	p := pb.Build()
	ir.MustVerify(p)
	pr := NewProfiler(p)
	m := emu.New(p)
	m.Trace = pr.Tracer()
	if _, err := m.Run(n); err != nil {
		t.Fatalf("run: %v", err)
	}
	return p, pr.Finish()
}

func TestExecCounts(t *testing.T) {
	p, prof := profiled(t, 64)
	// body[0] executes 64 times.
	ref := ir.InstrRef{Func: 0, Block: 2, Index: 0}
	if got := prof.Exec(ref); got != 64 {
		t.Fatalf("exec = %d, want 64", got)
	}
	if prof.BlockExec(0, 2) != 64 {
		t.Fatal("block exec")
	}
	if prof.TotalDyn != countDyn(t, p, 64) {
		t.Fatalf("TotalDyn = %d", prof.TotalDyn)
	}
}

func countDyn(t *testing.T, p *ir.Program, arg int64) int64 {
	m := emu.New(p)
	if _, err := m.Run(arg); err != nil {
		t.Fatal(err)
	}
	return m.Stats.DynInstrs
}

func TestInvarianceOfNarrowDomain(t *testing.T) {
	_, prof := profiled(t, 256)
	// The load in body has only 4 distinct (addr, value) tuples.
	ld := ir.InstrRef{Func: 0, Block: 2, Index: 2}
	if inv := prof.Invariance(ld, 5); inv < 0.99 {
		t.Fatalf("load invariance = %f, want ~1", inv)
	}
	if d := prof.Distinct(ld); d != 4 {
		t.Fatalf("distinct tuples = %d, want 4", d)
	}
	// The accumulator add (s, s, v) has unique left operand each time.
	acc := ir.InstrRef{Func: 0, Block: 2, Index: 3}
	if inv := prof.Invariance(acc, 5); inv > 0.5 {
		t.Fatalf("accumulator invariance = %f, want low", inv)
	}
}

func TestMemReuseRatio(t *testing.T) {
	_, prof := profiled(t, 256)
	ld := ir.InstrRef{Func: 0, Block: 2, Index: 2}
	// tab is read-only: every re-execution sees unchanged memory.
	if mr := prof.MemReuse(ld); mr < 0.99 {
		t.Fatalf("mem reuse = %f, want ~1", mr)
	}
}

func TestTakenRatioAndEdgeWeight(t *testing.T) {
	_, prof := profiled(t, 256)
	// body's BneI (index 5) is taken 15/16 of the time.
	br := ir.InstrRef{Func: 0, Block: 2, Index: 5}
	tr := prof.TakenRatio(br)
	if tr < 0.90 || tr > 0.95 {
		t.Fatalf("taken ratio = %f, want 15/16", tr)
	}
	taken := prof.EdgeWeight(br, true)
	fall := prof.EdgeWeight(br, false)
	if taken+fall != 256 || fall != 16 {
		t.Fatalf("edge weights taken=%d fall=%d", taken, fall)
	}
}

func TestLoopProfileRecurrence(t *testing.T) {
	// Loop invocations via repeated calls with recurring args.
	pb := ir.NewProgramBuilder("lp")
	tab := pb.ReadOnlyObject("tab", []int64{1, 2, 3, 4, 5, 6, 7, 8})
	g := pb.Func("scan", 1)
	ge := g.NewBlock()
	gh := g.NewBlock()
	gb := g.NewBlock()
	gl := g.NewBlock()
	gx := g.NewBlock()
	s, i, base, v := g.NewReg(), g.NewReg(), g.NewReg(), g.NewReg()
	ge.MovI(s, 0)
	ge.MovI(i, 0)
	ge.Lea(base, tab, 0)
	gh.Bge(i, g.Param(0), gx.ID())
	gb.Add(v, base, i)
	gb.Ld(v, v, 0, tab)
	gb.Add(s, s, v)
	gl.AddI(i, i, 1)
	gl.Jmp(gh.ID())
	gx.Ret(s)
	f := pb.Func("main", 1)
	pb.SetMain(f.ID())
	e := f.NewBlock()
	h := f.NewBlock()
	bo := f.NewBlock()
	x := f.NewBlock()
	k, acc, r, ln := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(acc, 0)
	h.Bge(k, f.Param(0), x.ID())
	bo.AndI(ln, k, 3)
	bo.AddI(ln, ln, 2) // lengths 2..5, recurring
	bo.Call(r, g.ID(), ln)
	bo.Add(acc, acc, r)
	bo.AddI(k, k, 1)
	bo.Jmp(h.ID())
	x.Ret(acc)
	p := pb.Build()
	ir.MustVerify(p)
	pr := NewProfiler(p)
	m := emu.New(p)
	m.Trace = pr.Tracer()
	if _, err := m.Run(64); err != nil {
		t.Fatal(err)
	}
	prof := pr.Finish()
	lp := prof.Loop(g.ID(), 1)
	if lp == nil {
		t.Fatal("no loop profile for scan's loop")
	}
	if lp.Invocations != 64 {
		t.Fatalf("invocations = %d, want 64", lp.Invocations)
	}
	// Lengths cycle 2,3,4,5 — every invocation beyond the first four
	// matches a record in the 8-deep history.
	if lp.ReuseOpportunity() < 0.9 {
		t.Fatalf("reuse opportunity = %f", lp.ReuseOpportunity())
	}
	if lp.MultiIterRatio() != 1.0 {
		t.Fatalf("multi-iteration ratio = %f", lp.MultiIterRatio())
	}
}

func TestLoopProfileMemoryBreaksRecurrence(t *testing.T) {
	// A loop over a table whose contents change between every invocation
	// must show no reuse opportunity.
	pb := ir.NewProgramBuilder("mem")
	tab := pb.Object("tab", 4, []int64{1, 2, 3, 4})
	g := pb.Func("scan", 0)
	ge := g.NewBlock()
	gh := g.NewBlock()
	gb := g.NewBlock()
	gl := g.NewBlock()
	gx := g.NewBlock()
	s, i, base, v := g.NewReg(), g.NewReg(), g.NewReg(), g.NewReg()
	ge.MovI(s, 0)
	ge.MovI(i, 0)
	ge.Lea(base, tab, 0)
	gh.BgeI(i, 4, gx.ID())
	gb.Add(v, base, i)
	gb.Ld(v, v, 0, tab)
	gb.Add(s, s, v)
	gl.AddI(i, i, 1)
	gl.Jmp(gh.ID())
	gx.Ret(s)
	f := pb.Func("main", 1)
	pb.SetMain(f.ID())
	e := f.NewBlock()
	h := f.NewBlock()
	bo := f.NewBlock()
	x := f.NewBlock()
	k, acc, r, p0 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(acc, 0)
	h.Bge(k, f.Param(0), x.ID())
	bo.Call(r, g.ID())
	bo.Add(acc, acc, r)
	bo.Lea(p0, tab, 0)
	bo.St(p0, 0, k, tab) // mutate before next invocation
	bo.AddI(k, k, 1)
	bo.Jmp(h.ID())
	x.Ret(acc)
	p := pb.Build()
	ir.MustVerify(p)
	pr := NewProfiler(p)
	m := emu.New(p)
	m.Trace = pr.Tracer()
	if _, err := m.Run(32); err != nil {
		t.Fatal(err)
	}
	lp := pr.Finish().Loop(g.ID(), 1)
	if lp == nil || lp.Invocations != 32 {
		t.Fatalf("loop profile: %+v", lp)
	}
	if lp.ReuseOpportunity() > 0.05 {
		t.Fatalf("mutating table must kill recurrence: %f", lp.ReuseOpportunity())
	}
}
