package vprof

import "testing"

// TestTopRuns pins the run-ranking export the specialization generator
// consumes: weights are exact per-run sums of the instruction-level exec
// counts, ordering is weight-descending with deterministic tiebreaks, and
// the heaviest run is the loop body (where the dynamic instructions are).
func TestTopRuns(t *testing.T) {
	p, prof := profiled(t, 64)
	all := prof.TopRuns(0)
	if len(all) == 0 {
		t.Fatal("no ranked runs")
	}
	for i := 1; i < len(all); i++ {
		if all[i].Weight > all[i-1].Weight {
			t.Fatalf("ranking not weight-descending at %d: %+v > %+v", i, all[i], all[i-1])
		}
	}
	dec := p.Decoded()
	for _, r := range all {
		df := dec.Funcs[r.Func]
		if !df.EntryPC[r.Head] {
			t.Fatalf("ranked head %d is not a run entry", r.Head)
		}
		if r.End != df.RunEnd[r.Head] {
			t.Fatalf("rank end %d, want RunEnd %d", r.End, df.RunEnd[r.Head])
		}
		var want int64
		base := int(df.Base >> 2)
		for j := r.Head; j <= r.End; j++ {
			want += prof.exec[base+int(j)]
		}
		if r.Weight != want {
			t.Fatalf("run %d weight %d, want exec sum %d", r.Head, r.Weight, want)
		}
	}
	// The heaviest run is the 6-instruction loop body (6*64 dynamic
	// instructions), ahead of the 2-instruction latch and 1-instruction
	// header runs.
	df := dec.Funcs[all[0].Func]
	bodyPC := df.BlockPC[2]
	if all[0].Head != bodyPC {
		t.Fatalf("top run head %d, want loop body %d (ranking: %+v)", all[0].Head, bodyPC, all[:3])
	}
	if k := prof.TopRuns(3); len(k) != 3 {
		t.Fatalf("TopRuns(3) returned %d entries", len(k))
	}
}
