package vprof

// valueKey is the profiled input tuple of one instruction execution.
type valueKey struct {
	a, b int64
}

// ValueCounter approximates the most-frequent input tuples of an
// instruction with the space-saving algorithm: a fixed-capacity counter
// table where the minimum-count victim is replaced (inheriting its count)
// when a new tuple arrives at capacity. TopK weights are therefore upper
// bounds, which matches the paper's use of profiled invariance as an
// optimistic reuse estimate.
type ValueCounter struct {
	counts map[valueKey]int64
	cap    int
	// distinct saturates at distinctCap and estimates the variety of the
	// instruction's input stream (the "limited set of values" check).
	distinct    int
	seenOnce    map[valueKey]struct{}
	total       int64
	distinctCap int
}

// counterCapacity is the table size; comfortably above the paper's
// five tracked invariant values.
const counterCapacity = 16

// distinctSaturation bounds the distinct-value estimator's memory.
const distinctSaturation = 64

func newValueCounter() *ValueCounter {
	return &ValueCounter{
		counts:      make(map[valueKey]int64, counterCapacity),
		cap:         counterCapacity,
		seenOnce:    make(map[valueKey]struct{}, distinctSaturation),
		distinctCap: distinctSaturation,
	}
}

// Observe records one execution with input tuple (a, b).
func (c *ValueCounter) Observe(a, b int64) {
	k := valueKey{a, b}
	c.total++
	if _, ok := c.seenOnce[k]; !ok && c.distinct < c.distinctCap {
		c.seenOnce[k] = struct{}{}
		c.distinct++
	}
	if _, ok := c.counts[k]; ok {
		c.counts[k]++
		return
	}
	if len(c.counts) < c.cap {
		c.counts[k] = 1
		return
	}
	// Space-saving replacement: evict the minimum and inherit its count.
	var minKey valueKey
	minVal := int64(-1)
	for kk, v := range c.counts {
		if minVal < 0 || v < minVal {
			minKey, minVal = kk, v
		}
	}
	delete(c.counts, minKey)
	c.counts[k] = minVal + 1
}

// Total returns the number of observations.
func (c *ValueCounter) Total() int64 { return c.total }

// Distinct returns the (saturating) count of distinct input tuples seen.
func (c *ValueCounter) Distinct() int { return c.distinct }

// TopK returns the combined weight of the k most frequent tuples.
func (c *ValueCounter) TopK(k int) int64 {
	if k <= 0 || len(c.counts) == 0 {
		return 0
	}
	// Selection over a ≤16-entry table; no need for sorting machinery.
	top := make([]int64, 0, k)
	for _, v := range c.counts {
		if len(top) < k {
			top = append(top, v)
			continue
		}
		mi := 0
		for i := 1; i < len(top); i++ {
			if top[i] < top[mi] {
				mi = i
			}
		}
		if v > top[mi] {
			top[mi] = v
		}
	}
	var sum int64
	for _, v := range top {
		sum += v
	}
	return sum
}

// Invariance returns TopK(k)/Total — the fraction of executions covered by
// the k most frequent input tuples (heuristic function 1 of §4.4).
func (c *ValueCounter) Invariance(k int) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.TopK(k)) / float64(c.total)
}
