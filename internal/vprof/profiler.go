// Package vprof implements the Reuse Profiling System (RPS) of the paper
// (§4.2): a value-profiling pass that reports, for every static
// instruction, its execution weight and input-value invariance; for every
// load, the stability of its referenced memory; and for every inner loop,
// the recurrence of its invocation inputs. The profile drives the
// region-formation heuristics of §4.4.
//
// Cyclic recurrence is profiled the way the CRB hardware would observe it:
// each invocation records the registers actually consumed before being
// defined (path-sensitive "used inputs") plus the version stamps of the
// objects the loop loads; a later invocation is a reuse opportunity when
// all recorded inputs of one of the last eight records match its entry
// state. Static live-in signatures would be too conservative — the paper's
// ckbrkpts example (Figure 3) is reusable precisely because the hot path
// never reads the varying address operand.
package vprof

import (
	"ccr/internal/analysis"
	"ccr/internal/emu"
	"ccr/internal/ir"
)

// InvariantK is the number of tracked invariant values used by the
// heuristics ("setting ... the number of invariant values to five", §4.4).
const InvariantK = 5

// HistoryRecords is the invocation-history depth for cyclic recurrence
// profiling, matching the eight records of the paper's limit study.
const HistoryRecords = 8

// maxTrackedInputs bounds per-invocation input recording; invocations
// consuming more registers than a computation instance could hold are
// never reusable anyway.
const maxTrackedInputs = 16

// LoopKey identifies a natural loop by function and header block.
type LoopKey struct {
	Func   ir.FuncID
	Header ir.BlockID
}

// LoopProfile aggregates cyclic-recurrence information for one inner loop.
type LoopProfile struct {
	// Invocations counts entries into the loop from outside.
	Invocations int64
	// ReusableInvocations counts invocations whose entry state matched
	// the used-input record of one of the last HistoryRecords
	// invocations.
	ReusableInvocations int64
	// MultiIterInvocations counts invocations executing >1 iteration.
	MultiIterInvocations int64
	// TotalIterations accumulates header executions.
	TotalIterations int64
}

// ReuseOpportunity is the fraction of invocations with recurring inputs.
func (lp *LoopProfile) ReuseOpportunity() float64 {
	if lp.Invocations == 0 {
		return 0
	}
	return float64(lp.ReusableInvocations) / float64(lp.Invocations)
}

// MultiIterRatio is the fraction of invocations with multiple iterations.
func (lp *LoopProfile) MultiIterRatio() float64 {
	if lp.Invocations == 0 {
		return 0
	}
	return float64(lp.MultiIterInvocations) / float64(lp.Invocations)
}

type loadProf struct {
	execs   int64
	reuses  int64
	lastVer uint64
	lastAny uint64
	primed  bool
}

// loopInfo is the static description of one profiled inner loop.
type loopInfo struct {
	key     LoopKey
	blocks  map[ir.BlockID]bool
	objs    []ir.MemID
	anyLoad bool // loop contains loads with unknown objects
	barrier bool // loop contains stores or calls: not a reuse candidate
	prof    *LoopProfile
}

// regVal is one recorded used-input.
type regVal struct {
	reg ir.Reg
	val int64
}

// invRecord is one completed invocation's reuse-relevant state.
type invRecord struct {
	inputs   []regVal
	objVers  []uint64
	anonVer  uint64
	overflow bool // too many inputs: never matches
}

// loopAct is an in-flight invocation being recorded.
type loopAct struct {
	loop     *loopInfo
	iters    int64
	inputs   []regVal
	defined  map[ir.Reg]bool
	objVers  []uint64
	anonVer  uint64
	overflow bool
	matched  bool
}

// Profiler consumes an emulation event stream and accumulates the RPS
// profile. Use Tracer() as the Machine trace hook and Finish() afterwards.
type Profiler struct {
	prog *ir.Program

	exec  []int64
	taken []int64

	values map[int]*ValueCounter
	loads  map[int]*loadProf

	objVer  []uint64
	anonVer uint64

	headerLoop []map[ir.BlockID]*loopInfo // by func
	loops      map[LoopKey]*loopInfo

	// history[key] is the ring of past invocation records.
	history map[LoopKey][]*invRecord

	depth     int
	lastBlock []ir.BlockID // per depth
	lastFunc  []ir.FuncID
	acts      []*loopAct // per depth, nil when no loop active

	totalDyn int64
}

// NewProfiler prepares a profiler for the linked program p.
func NewProfiler(p *ir.Program) *Profiler {
	pr := &Profiler{
		prog:       p,
		exec:       make([]int64, p.TextLen),
		taken:      make([]int64, p.TextLen),
		values:     map[int]*ValueCounter{},
		loads:      map[int]*loadProf{},
		objVer:     make([]uint64, len(p.Objects)),
		headerLoop: make([]map[ir.BlockID]*loopInfo, len(p.Funcs)),
		loops:      map[LoopKey]*loopInfo{},
		history:    map[LoopKey][]*invRecord{},
		lastBlock:  []ir.BlockID{ir.NoBlock},
		lastFunc:   []ir.FuncID{ir.NoFunc},
		acts:       []*loopAct{nil},
	}
	for _, f := range p.Funcs {
		pr.headerLoop[f.ID] = map[ir.BlockID]*loopInfo{}
		g := analysis.BuildCFG(f)
		dom := analysis.BuildDomTree(g)
		for _, l := range analysis.FindLoops(g, dom) {
			if !l.Inner() {
				continue
			}
			li := &loopInfo{
				key:    LoopKey{f.ID, l.Header},
				blocks: map[ir.BlockID]bool{},
				prof:   &LoopProfile{},
			}
			objSeen := map[ir.MemID]bool{}
			for _, b := range l.Blocks {
				li.blocks[b] = true
				for i := range f.Blocks[b].Instrs {
					in := &f.Blocks[b].Instrs[i]
					switch in.Op {
					case ir.St, ir.Call, ir.Ret, ir.Inval:
						li.barrier = true
					case ir.Ld:
						if in.Mem == ir.NoMem {
							li.anyLoad = true
						} else if !objSeen[in.Mem] {
							objSeen[in.Mem] = true
							li.objs = append(li.objs, in.Mem)
						}
					}
				}
			}
			pr.headerLoop[f.ID][l.Header] = li
			pr.loops[li.key] = li
		}
	}
	return pr
}

// Tracer returns the event hook to install on an emu.Machine.
func (pr *Profiler) Tracer() emu.Tracer { return pr.observe }

func (pr *Profiler) observe(ev *emu.Event) {
	pr.totalDyn++
	gidx := int(ev.PC >> 2)
	pr.exec[gidx]++
	in := ev.Instr

	pr.trackLoops(ev)

	switch {
	case in.Op.IsBinaryALU():
		pr.counter(gidx).Observe(ev.Val1, ev.Val2)
	case in.Op == ir.Mov:
		pr.counter(gidx).Observe(ev.Val1, 0)
	case in.Op == ir.Ld:
		pr.counter(gidx).Observe(ev.Addr, ev.Result)
		pr.observeLoad(gidx, in.Mem)
	case in.Op == ir.St:
		if in.Mem != ir.NoMem {
			pr.objVer[in.Mem]++
		} else {
			pr.anonVer++
		}
	case in.Op.IsCondBranch():
		pr.counter(gidx).Observe(ev.Val1, ev.Val2)
	case in.Op == ir.Call:
		// Call-argument recurrence drives function-level region
		// selection. The event's register view is the callee frame,
		// whose parameters hold the argument values.
		var a0, a1 int64
		if len(in.Args) > 0 && len(ev.Regs) > 1 {
			a0 = ev.Regs[1]
		}
		if len(in.Args) > 1 && len(ev.Regs) > 2 {
			a1 = ev.Regs[2]
		}
		pr.counter(gidx).Observe(a0, a1)
	}
	if in.Op.IsCondBranch() && ev.Taken {
		pr.taken[gidx]++
	}

	// Call/return adjust the frame depth for loop tracking.
	switch in.Op {
	case ir.Call:
		pr.depth++
		if pr.depth >= len(pr.lastBlock) {
			pr.lastBlock = append(pr.lastBlock, ir.NoBlock)
			pr.lastFunc = append(pr.lastFunc, ir.NoFunc)
			pr.acts = append(pr.acts, nil)
		} else {
			pr.lastBlock[pr.depth] = ir.NoBlock
			pr.lastFunc[pr.depth] = ir.NoFunc
			pr.acts[pr.depth] = nil
		}
	case ir.Ret:
		pr.finishAct(pr.depth)
		if pr.depth > 0 {
			pr.depth--
		}
	}
}

func (pr *Profiler) counter(gidx int) *ValueCounter {
	c := pr.values[gidx]
	if c == nil {
		c = newValueCounter()
		pr.values[gidx] = c
	}
	return c
}

func (pr *Profiler) observeLoad(gidx int, obj ir.MemID) {
	lp := pr.loads[gidx]
	if lp == nil {
		lp = &loadProf{}
		pr.loads[gidx] = lp
	}
	lp.execs++
	var ver uint64
	if obj != ir.NoMem {
		ver = pr.objVer[obj]
	}
	if lp.primed && lp.lastVer == ver && lp.lastAny == pr.anonVer && obj != ir.NoMem {
		lp.reuses++
	}
	lp.primed = true
	lp.lastVer = ver
	lp.lastAny = pr.anonVer
}

// trackLoops maintains per-frame loop activations, recording used inputs
// CRB-style and matching them against the invocation history.
func (pr *Profiler) trackLoops(ev *emu.Event) {
	d := pr.depth
	fid := ev.Func.ID
	cur := pr.acts[d]

	if cur != nil && (cur.loop.key.Func != fid || !cur.loop.blocks[ev.Block]) {
		// Control left the active loop.
		pr.finishAct(d)
		cur = nil
	}

	if ev.Index == 0 {
		if li := pr.headerLoop[fid][ev.Block]; li != nil {
			prev := pr.lastBlock[d]
			backEdge := cur != nil && cur.loop == li && prev != ir.NoBlock &&
				li.blocks[prev] && pr.lastFunc[d] == fid
			if backEdge {
				cur.iters++
				li.prof.TotalIterations++
			} else {
				pr.finishAct(d)
				li.prof.Invocations++
				li.prof.TotalIterations++
				act := &loopAct{
					loop:    li,
					iters:   1,
					defined: make(map[ir.Reg]bool, 8),
					objVers: pr.snapshotVers(li),
					anonVer: pr.anonVer,
				}
				act.matched = pr.matchHistory(li.key, ev.Regs, act)
				if act.matched {
					li.prof.ReusableInvocations++
				}
				pr.acts[d] = act
				cur = act
			}
		}
	}

	// Record used inputs for the active invocation.
	if cur != nil && !cur.loop.barrier {
		in := ev.Instr
		switch in.Op {
		case ir.Nop, ir.MovI, ir.Jmp:
		default:
			if in.Src1 != ir.NoReg {
				cur.noteUse(in.Src1, ev.Val1)
			}
			if in.Src2 != ir.NoReg {
				cur.noteUse(in.Src2, ev.Val2)
			}
		}
		if dr := in.Def(); dr != ir.NoReg {
			cur.defined[dr] = true
		}
	}

	pr.lastBlock[d] = ev.Block
	pr.lastFunc[d] = fid
}

func (a *loopAct) noteUse(r ir.Reg, v int64) {
	if a.overflow || a.defined[r] {
		return
	}
	for _, rv := range a.inputs {
		if rv.reg == r {
			return
		}
	}
	if len(a.inputs) >= maxTrackedInputs {
		a.overflow = true
		return
	}
	a.inputs = append(a.inputs, regVal{reg: r, val: v})
}

func (pr *Profiler) snapshotVers(li *loopInfo) []uint64 {
	if len(li.objs) == 0 {
		return nil
	}
	vs := make([]uint64, len(li.objs))
	for i, o := range li.objs {
		vs[i] = pr.objVer[o]
	}
	return vs
}

// matchHistory reports whether the current entry state (register file and
// memory versions snapshotted in act) satisfies any recorded invocation:
// every used input of the record holds the same value now, and the loop's
// object versions are unchanged since the record was made.
func (pr *Profiler) matchHistory(key LoopKey, regs []int64, act *loopAct) bool {
	for _, rec := range pr.history[key] {
		if rec.overflow {
			continue
		}
		if !equalVers(rec.objVers, act.objVers) || rec.anonVer != act.anonVer {
			continue
		}
		ok := true
		for _, rv := range rec.inputs {
			if int(rv.reg) >= len(regs) || regs[rv.reg] != rv.val {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func equalVers(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (pr *Profiler) finishAct(d int) {
	act := pr.acts[d]
	if act == nil {
		return
	}
	if act.iters > 1 {
		act.loop.prof.MultiIterInvocations++
	}
	if !act.loop.barrier {
		rec := &invRecord{
			inputs:   act.inputs,
			objVers:  act.objVers,
			anonVer:  act.anonVer,
			overflow: act.overflow,
		}
		pr.pushHistory(act.loop.key, rec)
	}
	pr.acts[d] = nil
}

func (pr *Profiler) pushHistory(key LoopKey, rec *invRecord) {
	h := pr.history[key]
	if len(h) >= HistoryRecords {
		copy(h, h[1:])
		h[len(h)-1] = rec
	} else {
		h = append(h, rec)
	}
	pr.history[key] = h
}

// Finish closes open loop activations and returns the completed profile.
func (pr *Profiler) Finish() *Profile {
	for d := range pr.acts {
		pr.finishAct(d)
	}
	loops := make(map[LoopKey]*LoopProfile, len(pr.loops))
	for k, li := range pr.loops {
		loops[k] = li.prof
	}
	return &Profile{
		prog:     pr.prog,
		exec:     pr.exec,
		taken:    pr.taken,
		values:   pr.values,
		loads:    pr.loads,
		Loops:    loops,
		TotalDyn: pr.totalDyn,
	}
}

// DebugHistory returns a human-readable dump of the invocation history of
// the loop at (f, header); for debugging only.
func (pr *Profiler) DebugHistory(f ir.FuncID, header ir.BlockID) string {
	out := ""
	for _, rec := range pr.history[LoopKey{f, header}] {
		out += "rec:"
		for _, rv := range rec.inputs {
			out += " r" + itoa(int(rv.reg)) + "=" + itoa64(rv.val)
		}
		if rec.overflow {
			out += " OVERFLOW"
		}
		out += " vers="
		for _, v := range rec.objVers {
			out += itoa(int(v)) + ","
		}
		out += "\n"
	}
	return out
}

func itoa(v int) string { return itoa64(int64(v)) }

func itoa64(v int64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	if v == 0 {
		return "0"
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
