package vprof

// Run ranking: the TopRuns export consumed by the hot-region
// specialization generator (internal/specgen, cmd/ccrgen). It projects
// the instruction-level execution profile onto the predecoded form's
// straight-line runs, so the generator picks regions exactly where the
// dynamic instructions were observed.

import (
	"sort"

	"ccr/internal/ir"
)

// RunRank is one straight-line run of the predecoded program, ranked by
// profiled dynamic weight.
type RunRank struct {
	Func ir.FuncID
	// Head is the run's entry flat PC; End the PC of the control
	// transfer (or sentinel) ending it — [Head, End] as in
	// ir.DecodedFunc.RunEnd.
	Head, End int32
	// Weight is the total dynamic instruction count observed inside the
	// run. Overlapping suffix runs each count their own span, so Weight
	// ranks where execution time goes, not exclusive ownership.
	Weight int64
}

// TopRuns ranks every run-entry head of the profiled program by dynamic
// weight and returns the k heaviest (all of them when k <= 0). Runs with
// zero observed weight are omitted; ties order deterministically by
// (func, head) so generation from a fixed workload is reproducible.
func (p *Profile) TopRuns(k int) []RunRank {
	dec := p.prog.Decoded()
	var out []RunRank
	for _, df := range dec.Funcs {
		base := int(df.Base >> 2)
		for pc := 0; pc < len(df.Code)-1; pc++ {
			if !df.EntryPC[pc] {
				continue
			}
			var w int64
			for j := pc; j <= int(df.RunEnd[pc]); j++ {
				if g := base + j; g >= 0 && g < len(p.exec) {
					w += p.exec[g]
				}
			}
			if w > 0 {
				out = append(out, RunRank{Func: df.Fn.ID, Head: int32(pc), End: df.RunEnd[pc], Weight: w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Weight != b.Weight {
			return a.Weight > b.Weight
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Head < b.Head
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
