package workloads

import "ccr/internal/ir"

func init() { register("m88ksim", buildM88ksim) }

// buildM88ksim models 124.m88ksim, the paper's flagship benchmark: a
// processor simulator whose hot path checks a breakpoint table before
// decoding every simulated instruction. The ckbrkpts function is the
// paper's Figure 3 example — a loop over a 16-entry table that is reusable
// as a whole because its common executed path (no breakpoints set) never
// reads the varying address operand, and the table changes only when one
// of a handful of functions updates it.
func buildM88ksim(s Scale) *Benchmark {
	pb := ir.NewProgramBuilder("m88ksim")

	// brktable: 16 entries of [code, adr] pairs; all zero = no breakpoints.
	brktable := pb.Object("brktable", 32, nil)
	// decode: read-only opcode → class table.
	decodeInit := make([]int64, 64)
	r := newRNG(0x88)
	for i := range decodeInit {
		decodeInit[i] = int64(r.intn(8))
	}
	decode := pb.ReadOnlyObject("decode", decodeInit)
	// Simulated instruction stream: opcode(6 bits)<<16 | addr field.
	mk := func(seed uint64, card int) []int64 {
		ops := genSkewed(seed, s.N, card)
		out := make([]int64, s.N)
		rr := newRNG(seed ^ 0xABCD)
		for i := range out {
			out[i] = ops[i]<<16 | int64(rr.intn(1<<12))
		}
		return out
	}
	istream := pb.ReadOnlyObject("istream", concat(mk(101, 20), mk(202, 24)))
	results := pb.Object("results", 64, nil)
	selseq := pb.ReadOnlyObject("selseq",
		concat(genSelSeq(0x8A, s.N, 36), genSelSeq(0x8B, s.N, 36)))
	mix := addMixer(pb)
	wide := addWideScan(pb, decode, 63)
	variants := addVariantKernels(pb, "exec", 36, 0x8C, decode, 63,
		[]ir.MemID{brktable}, 31)

	// ckbrkpts(addr): scan the breakpoint table; found=1 when an armed
	// entry matches addr &^ 3.
	ck := pb.Func("ckbrkpts", 1)
	addr := ck.Param(0)
	ckEntry := ck.NewBlock()
	ckHead := ck.NewBlock()
	ckBody := ck.NewBlock()
	ckCmp := ck.NewBlock()
	ckLatch := ck.NewBlock()
	ckMatch := ck.NewBlock()
	ckExit := ck.NewBlock()
	found, i, base, p, code, a := ck.NewReg(), ck.NewReg(), ck.NewReg(), ck.NewReg(), ck.NewReg(), ck.NewReg()
	ckEntry.MovI(found, 0)
	ckEntry.MovI(i, 0)
	ckEntry.Lea(base, brktable, 0)
	ckHead.BgeI(i, 16, ckExit.ID())
	ckBody.ShlI(p, i, 1)
	ckBody.Add(p, base, p)
	ckBody.Ld(code, p, 0, brktable)
	ckBody.BeqI(code, 0, ckLatch.ID())
	ckCmp.Ld(a, p, 1, brktable)
	ckCmp.AndI(a, a, ^int64(3))
	ckCmp.Beq(a, addr, ckMatch.ID())
	ckLatch.AddI(i, i, 1)
	ckLatch.Jmp(ckHead.ID())
	ckMatch.MovI(found, 1)
	ckMatch.Jmp(ckExit.ID())
	ckExit.Ret(found)

	// simDecode(instr): extract the opcode (varying input) and then run a
	// table-driven classification whose inputs — just the opcode — recur
	// heavily: the classification block is an acyclic stateless region.
	sd := pb.Func("sim_decode", 1)
	instr := sd.Param(0)
	sdEntry := sd.NewBlock()
	sdHot := sd.NewBlock()
	sdExit := sd.NewBlock()
	sdSlow := sd.NewBlock()
	op, cls, x, y := sd.NewReg(), sd.NewReg(), sd.NewReg(), sd.NewReg()
	dbase := sd.NewReg()
	sdEntry.SraI(op, instr, 16)
	sdEntry.AndI(op, op, 63)
	sdHot.Lea(dbase, decode, 0)
	sdHot.Add(x, dbase, op)
	sdHot.Ld(cls, x, 0, decode)
	sdHot.MulI(x, cls, 5)
	sdHot.Add(x, x, op)
	sdHot.AndI(y, op, 7)
	sdHot.Shl(y, cls, y)
	sdHot.Add(x, x, y)
	sdHot.BgtI(cls, 5, sdSlow.ID())
	sdExit.Ret(x)
	sdSlow.MulI(x, x, 3)
	sdSlow.AddI(x, x, 11)
	sdSlow.Jmp(sdExit.ID())

	// main(dataset): simulate Rounds passes over the instruction stream;
	// a temporary breakpoint is set and reset rarely (the paper's
	// settmpbrk/rsttmpbrk pattern), invalidating recorded scans. Between
	// kernel calls, mix models the simulator housekeeping no reuse scheme
	// captures, and wide_scan adds recurring-but-wide computations that
	// count as potential yet exceed the instance banks.
	f := pb.Func("main", 1)
	ds := f.Param(0)
	mEntry := f.NewBlock()
	rHead := f.NewBlock()
	jInit := f.NewBlock()
	jHead := f.NewBlock()
	jBody := f.NewBlock()
	jChk := f.NewBlock()
	jWide := f.NewBlock()
	jBrk := f.NewBlock()
	jLatch := f.NewBlock()
	rLatch := f.NewBlock()
	mExit := f.NewBlock()
	total, rr, j, ibase, w, pc, hit, d2, tmp, tb := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	mrounds := f.NewReg()
	a1, a2, a3, a4, a5, a6 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	tmp2 := f.NewReg()
	z := f.NewReg()
	sel, dv, sbase := f.NewReg(), f.NewReg(), f.NewReg()
	va, vb := f.NewReg(), f.NewReg()
	mEntry.MovI(total, 0)
	mEntry.MovI(rr, 0)
	mEntry.MovI(mrounds, 6)
	mEntry.MulI(sbase, ds, int64(s.N))
	mEntry.Lea(tmp2, selseq, 0)
	mEntry.Add(sbase, sbase, tmp2)
	mEntry.MulI(ibase, ds, int64(s.N))
	mEntry.Lea(tmp2, istream, 0)
	mEntry.Add(ibase, ibase, tmp2)
	rHead.BgeI(rr, int64(s.Rounds), mExit.ID())
	jInit.MovI(j, 0)
	jHead.BgeI(j, int64(s.N), rLatch.ID())
	jBody.Add(w, ibase, j)
	jBody.Ld(w, w, 0, istream)
	jBody.ShlI(pc, j, 2)
	jBody.Call(hit, ck.ID(), pc)
	jBody.Add(total, total, hit)
	jBody.Call(d2, sd.ID(), w)
	jBody.Add(total, total, d2)
	jBody.Call(total, mix, total, mrounds)
	// Execute-stage handler dispatch (the long tail of small kernels).
	jBody.Add(sel, sbase, j)
	jBody.Ld(sel, sel, 0, selseq)
	jBody.XorI(va, sel, 9)
	jBody.MulI(vb, sel, 3)
	jBody.AndI(vb, vb, 31)
	emitDispatch(f, jBody, jChk.ID(), sel, dv,
		[8]ir.Reg{sel, va, vb, va, vb, sel, va, vb}, variants)
	jChk.Add(total, total, dv)
	jChk.AndI(tmp, j, 3)
	jChk.BneI(tmp, 0, jLatch.ID())
	// Every 4th instruction: the wide-interface scan (potential-only).
	jWide.SraI(a1, w, 16)
	jWide.AndI(a1, a1, 15)
	jWide.SraI(a2, w, 17)
	jWide.AndI(a2, a2, 7)
	jWide.SraI(a3, w, 18)
	jWide.AndI(a3, a3, 7)
	jWide.SraI(a4, w, 19)
	jWide.AndI(a4, a4, 7)
	jWide.SraI(a5, w, 20)
	jWide.AndI(a5, a5, 3)
	jWide.SraI(a6, w, 21)
	jWide.AndI(a6, a6, 3)
	jWide.Call(d2, wide, a1, a2, a3, a4, a5, a6)
	jWide.Add(total, total, d2)
	jWide.RemI(tmp, j, int64(s.N/2+1))
	jWide.BneI(tmp, int64(s.N/2), jLatch.ID())
	// Arm then immediately disarm a temporary breakpoint (rare), so the
	// common ckbrkpts path stays breakpoint-free on both data sets while
	// the table's recorded computations are invalidated.
	jBrk.Lea(tb, brktable, 6)
	jBrk.St(tb, 0, rr, brktable)
	jBrk.MovI(z, 0)
	jBrk.St(tb, 0, z, brktable)
	jLatch.AddI(j, j, 1)
	jLatch.Jmp(jHead.ID())
	rLatch.Lea(tb, results, 0)
	rLatch.AndI(tmp, rr, 63)
	rLatch.Add(tb, tb, tmp)
	rLatch.St(tb, 0, total, results)
	rLatch.AddI(rr, rr, 1)
	rLatch.Jmp(rHead.ID())
	mExit.Ret(total)

	return &Benchmark{
		Name:  "m88ksim",
		Paper: "124.m88ksim",
		Prog:  pb.Build(),
		Train: []int64{DatasetTrain},
		Ref:   []int64{DatasetRef},
		About: "Processor simulator: per-instruction breakpoint-table scan (Figure 3) and table-driven decode; few large, hot, rarely-invalidated regions.",
	}
}
