package workloads

import "ccr/internal/ir"

func init() {
	register("gcc", buildGcc)
	register("go", buildGo)
}

// buildGcc models 126.gcc: a compiler front end with many small,
// moderately reused kernels — identifier hashing against a read-only
// keyword table, operator-precedence lookups, constant folding and a
// tree-node cost walk over a slowly mutating node pool. No single region
// dominates, giving gcc its middling speedup.
func buildGcc(s Scale) *Benchmark {
	pb := ir.NewProgramBuilder("gcc")

	kw := pb.ReadOnlyObject("keywords", func() []int64 {
		t := make([]int64, 64)
		r := newRNG(0x6C)
		for i := range t {
			t[i] = int64(r.intn(512))
		}
		return t
	}())
	prec := pb.ReadOnlyObject("prec", func() []int64 {
		t := make([]int64, 32)
		for i := range t {
			t[i] = int64((i*3 + 1) & 15)
		}
		return t
	}())
	nodes := pb.Object("nodes", 48, func() []int64 {
		t := make([]int64, 48)
		r := newRNG(0x6D)
		for i := range t {
			t[i] = int64(r.intn(64))
		}
		return t
	}())
	toks := pb.ReadOnlyObject("toks",
		concat(genSkewed(0x71, s.N, 16), genSkewed(0x72, s.N, 18)))
	obj := pb.Object("objout", 64, nil)
	// Auxiliary writable tables the case handlers consult (rarely
	// mutated alongside the node pool).
	typetab := pb.Object("typetab", 32, genUniform(0x6E, 32, 40))
	consttab := pb.Object("consttab", 32, genUniform(0x6F, 32, 40))
	// selseq: which of the ~80 case handlers each token drives — a hot
	// head plus a warm plateau, as in a real compiler's opcode mix.
	selseq := pb.ReadOnlyObject("selseq",
		concat(genSelSeq(0x75, s.N, 112), genSelSeq(0x76, s.N, 112)))
	mix := addMixer(pb)
	wide := addWideScan(pb, kw, 63)
	variants := addVariantKernels(pb, "case", 112, 0x77, kw, 63,
		[]ir.MemID{nodes, typetab, consttab}, 31)

	// hashIdent(tok): keyword-table probe on a small hash domain.
	hi := pb.Func("hash_ident", 1)
	tk := hi.Param(0)
	hEntry := hi.NewBlock()
	hHot := hi.NewBlock()
	hExit := hi.NewBlock()
	hh, hb, hv := hi.NewReg(), hi.NewReg(), hi.NewReg()
	hEntry.MulI(hh, tk, 31)
	hEntry.AndI(hh, hh, 63)
	hHot.Lea(hb, kw, 0)
	hHot.Add(hb, hb, hh)
	hHot.Ld(hv, hb, 0, kw)
	hHot.Xor(hv, hv, hh)
	hHot.AndI(hv, hv, 255)
	hHot.Jmp(hExit.ID())
	hExit.Ret(hv)

	// foldPrec(op, lhs): precedence lookup + constant folding.
	fp := pb.Func("fold_prec", 2)
	op, lhs := fp.Param(0), fp.Param(1)
	fEntry := fp.NewBlock()
	fHot := fp.NewBlock()
	fExit := fp.NewBlock()
	pv, pbr, acc := fp.NewReg(), fp.NewReg(), fp.NewReg()
	fEntry.AndI(pv, op, 31)
	fHot.Lea(pbr, prec, 0)
	fHot.Add(pbr, pbr, pv)
	fHot.Ld(pv, pbr, 0, prec)
	fHot.Mul(acc, pv, lhs)
	fHot.AddI(acc, acc, 7)
	fHot.SraI(acc, acc, 2)
	fHot.Jmp(fExit.ID())
	fExit.Ret(acc)

	// treeCost(kind): walk 6 node slots — cyclic MD over the node pool.
	tc := pb.Func("tree_cost", 1)
	kind := tc.Param(0)
	tEntry := tc.NewBlock()
	tHead := tc.NewBlock()
	tBody := tc.NewBlock()
	tLatch := tc.NewBlock()
	tExit := tc.NewBlock()
	cost, k, nb, np, nv := tc.NewReg(), tc.NewReg(), tc.NewReg(), tc.NewReg(), tc.NewReg()
	off := tc.NewReg()
	tEntry.MovI(cost, 0)
	tEntry.MovI(k, 0)
	tEntry.Lea(nb, nodes, 0)
	tEntry.AndI(off, kind, 7)
	tEntry.MulI(off, off, 5)
	tHead.BgeI(k, 6, tExit.ID())
	tBody.Add(np, off, k)
	tBody.AndI(np, np, 47)
	tBody.Add(np, nb, np)
	tBody.Ld(nv, np, 0, nodes)
	tBody.Add(cost, cost, nv)
	tLatch.AddI(k, k, 1)
	tLatch.Jmp(tHead.ID())
	tExit.Ret(cost)

	f := pb.Func("main", 1)
	ds := f.Param(0)
	mEntry := f.NewBlock()
	rHead := f.NewBlock()
	jInit := f.NewBlock()
	jHead := f.NewBlock()
	jBody := f.NewBlock()
	jChk := f.NewBlock()
	jMut := f.NewBlock()
	jLatch := f.NewBlock()
	rLatch := f.NewBlock()
	mExit := f.NewBlock()
	total, rr, j, tbase, tv, hv2, pv2, cv, tmp, nb2 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	ob := f.NewReg()
	mrounds := f.NewReg()
	g1, g2, g3 := f.NewReg(), f.NewReg(), f.NewReg()
	sel, dv, sbase := f.NewReg(), f.NewReg(), f.NewReg()
	a1, a2, a3, a4, a5 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	mEntry.MovI(mrounds, 4)
	mEntry.MulI(sbase, ds, int64(s.N))
	mEntry.Lea(tmp, selseq, 0)
	mEntry.Add(sbase, sbase, tmp)
	mEntry.MovI(total, 0)
	mEntry.MovI(rr, 0)
	mEntry.MulI(tbase, ds, int64(s.N))
	mEntry.Lea(tmp, toks, 0)
	mEntry.Add(tbase, tbase, tmp)
	rHead.BgeI(rr, int64(s.Rounds), mExit.ID())
	jInit.MovI(j, 0)
	jHead.BgeI(j, int64(s.N), rLatch.ID())
	jBody.Add(tmp, tbase, j)
	jBody.Ld(tv, tmp, 0, toks)
	jBody.Call(hv2, hi.ID(), tv)
	jBody.Add(total, total, hv2)
	jBody.Call(pv2, fp.ID(), tv, hv2)
	jBody.Add(total, total, pv2)
	jBody.Call(cv, tc.ID(), tv)
	jBody.Add(total, total, cv)
	jBody.Call(total, mix, total, mrounds)
	// Type-unification walk with a wide recurring interface — potential
	// the instance banks cannot hold.
	jBody.AndI(g1, tv, 15)
	jBody.ShrI(g2, tv, 1)
	jBody.AndI(g2, g2, 7)
	jBody.ShrI(g3, tv, 2)
	jBody.AndI(g3, g3, 7)
	jBody.Call(cv, wide, g1, g2, g3, g1, g2, g3)
	jBody.Add(total, total, cv)
	// Case-handler dispatch: the long tail of small reusable kernels.
	jBody.Add(sel, sbase, j)
	jBody.Ld(sel, sel, 0, selseq)
	jBody.XorI(a1, sel, 3)
	jBody.MulI(a2, sel, 5)
	jBody.AndI(a2, a2, 63)
	jBody.Add(a3, tv, rr)
	jBody.AndI(a3, a3, 15)
	jBody.MulI(a4, tv, 3)
	jBody.Add(a4, a4, j)
	jBody.AndI(a4, a4, 15)
	jBody.AndI(a5, sel, 7)
	emitDispatch(f, jBody, jChk.ID(), sel, dv,
		[8]ir.Reg{sel, a1, a2, a3, a4, a5, a1, a2}, variants)
	jChk.Add(total, total, dv)
	jChk.RemI(tmp, j, int64(s.N+1))
	jChk.BneI(tmp, int64(s.N/4), jLatch.ID())
	// Occasional tree rewrite: mutate one node slot and a type entry.
	jMut.Lea(nb2, nodes, 0)
	jMut.AndI(tmp, total, 47)
	jMut.Add(nb2, nb2, tmp)
	jMut.St(nb2, 0, rr, nodes)
	jMut.Lea(nb2, typetab, 0)
	jMut.AndI(tmp, rr, 31)
	jMut.Add(nb2, nb2, tmp)
	jMut.St(nb2, 0, total, typetab)
	jLatch.AddI(j, j, 1)
	jLatch.Jmp(jHead.ID())
	rLatch.Lea(ob, obj, 0)
	rLatch.AndI(tmp, rr, 63)
	rLatch.Add(ob, ob, tmp)
	rLatch.St(ob, 0, total, obj)
	rLatch.AddI(rr, rr, 1)
	rLatch.Jmp(rHead.ID())
	mExit.Ret(total)

	return &Benchmark{
		Name:  "gcc",
		Paper: "126.gcc",
		Prog:  pb.Build(),
		Train: []int64{DatasetTrain},
		Ref:   []int64{DatasetRef},
		About: "Compiler front end: keyword hashing, precedence folding and a tree-cost walk over a slowly mutating node pool — many mid-weight regions, no dominator.",
	}
}

// buildGo models 099.go: board evaluation over a frequently mutating board.
// Pattern scans are cyclic MD regions, but every simulated move stores to
// the board and invalidates them, so only within-move repetition survives —
// the suite's weakest reuse, matching the paper's limited go speedup.
func buildGo(s Scale) *Benchmark {
	pb := ir.NewProgramBuilder("go")
	const bsize = 128

	board := pb.Object("board", bsize, func() []int64 {
		t := make([]int64, bsize)
		r := newRNG(0x99)
		for i := range t {
			t[i] = int64(r.intn(3))
		}
		return t
	}())
	patterns := pb.ReadOnlyObject("patterns", func() []int64 {
		t := make([]int64, 27)
		for i := range t {
			t[i] = int64((i*7 + 2) % 19)
		}
		return t
	}())
	moves := pb.ReadOnlyObject("moves",
		concat(genSkewed(0x91, s.N, 28), genSkewed(0x92, s.N, 30)))
	score := pb.Object("score", 32, nil)
	gosel := pb.ReadOnlyObject("gosel",
		concat(genSelSeq(0x9A, s.N, 10), genSelSeq(0x9B, s.N, 10)))
	mix := addMixer(pb)
	goVariants := addVariantKernels(pb, "tact", 10, 0x9C, patterns, 15,
		[]ir.MemID{board}, 127)

	// evalPoint(pos): scan a 9-point neighbourhood of the board.
	ep := pb.Func("eval_point", 1)
	pos := ep.Param(0)
	eEntry := ep.NewBlock()
	eHead := ep.NewBlock()
	eBody := ep.NewBlock()
	eLatch := ep.NewBlock()
	eExit := ep.NewBlock()
	acc, k, bb, p, v := ep.NewReg(), ep.NewReg(), ep.NewReg(), ep.NewReg(), ep.NewReg()
	h := ep.NewReg()
	eEntry.MovI(acc, 0)
	eEntry.MovI(k, 0)
	eEntry.Lea(bb, board, 0)
	eHead.BgeI(k, 9, eExit.ID())
	eBody.Add(p, pos, k)
	eBody.AndI(p, p, int64(bsize-1))
	eBody.Add(p, bb, p)
	eBody.Ld(v, p, 0, board)
	eBody.MulI(h, v, 3)
	eBody.Add(acc, acc, h)
	eBody.Add(acc, acc, k)
	eLatch.AddI(k, k, 1)
	eLatch.Jmp(eHead.ID())
	eExit.Ret(acc)

	// patScore(hash): read-only pattern weight — stateless dispatch.
	ps := pb.Func("pat_score", 1)
	hsh := ps.Param(0)
	pEntry := ps.NewBlock()
	pHot := ps.NewBlock()
	pExit := ps.NewBlock()
	pi, pbs, pw := ps.NewReg(), ps.NewReg(), ps.NewReg()
	pEntry.RemI(pi, hsh, 27)
	pHot.Lea(pbs, patterns, 0)
	pHot.Add(pbs, pbs, pi)
	pHot.Ld(pw, pbs, 0, patterns)
	pHot.MulI(pw, pw, 5)
	pHot.Add(pw, pw, pi)
	pHot.Jmp(pExit.ID())
	pExit.Ret(pw)

	f := pb.Func("main", 1)
	ds := f.Param(0)
	mEntry := f.NewBlock()
	rHead := f.NewBlock()
	jInit := f.NewBlock()
	jHead := f.NewBlock()
	jBody := f.NewBlock()
	jChk := f.NewBlock()
	jLatch := f.NewBlock()
	rMove := f.NewBlock()
	mExit := f.NewBlock()
	total, rr, j, mbase, mv, evv, pv, tmp, bb2, sb := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	mrounds := f.NewReg()
	sel, dv, sbase := f.NewReg(), f.NewReg(), f.NewReg()
	mEntry.MovI(mrounds, 40)
	mEntry.MulI(sbase, ds, int64(s.N))
	mEntry.Lea(tmp, gosel, 0)
	mEntry.Add(sbase, sbase, tmp)
	mEntry.MovI(total, 0)
	mEntry.MovI(rr, 0)
	mEntry.MulI(mbase, ds, int64(s.N))
	mEntry.Lea(tmp, moves, 0)
	mEntry.Add(mbase, mbase, tmp)
	rHead.BgeI(rr, int64(s.Rounds), mExit.ID())
	jInit.MovI(j, 0)
	jHead.BgeI(j, 32, rMove.ID())
	jBody.AndI(tmp, j, int64(s.N-1))
	jBody.Add(tmp, mbase, tmp)
	jBody.Ld(mv, tmp, 0, moves)
	jBody.Call(evv, ep.ID(), mv)
	jBody.Add(total, total, evv)
	jBody.Call(pv, ps.ID(), evv)
	jBody.Add(total, total, pv)
	jBody.Call(total, mix, total, mrounds)
	jBody.AndI(sel, j, int64(s.N-1))
	jBody.Add(sel, sbase, sel)
	jBody.Ld(sel, sel, 0, gosel)
	emitDispatch(f, jBody, jChk.ID(), sel, dv,
		[8]ir.Reg{sel, mv, sel, mv, sel, mv, sel, mv}, goVariants)
	jChk.Add(total, total, dv)
	jLatch.AddI(j, j, 1)
	jLatch.Jmp(jHead.ID())
	// Play a move after a short evaluation burst: the board mutation
	// invalidates every recorded scan, so only within-burst repetition
	// survives — the suite's weakest reuse.
	rMove.Lea(bb2, board, 0)
	rMove.AndI(tmp, total, int64(bsize-1))
	rMove.Add(bb2, bb2, tmp)
	rMove.St(bb2, 0, rr, board)
	rMove.Lea(sb, score, 0)
	rMove.AndI(tmp, rr, 31)
	rMove.Add(sb, sb, tmp)
	rMove.St(sb, 0, total, score)
	rMove.AddI(rr, rr, 1)
	rMove.Jmp(rHead.ID())
	mExit.Ret(total)

	return &Benchmark{
		Name:  "go",
		Paper: "099.go",
		Prog:  pb.Build(),
		Train: []int64{DatasetTrain},
		Ref:   []int64{DatasetRef},
		About: "Go engine: neighbourhood scans over a board mutated every move — reuse survives only within a move's evaluations (weakest of the suite).",
	}
}
