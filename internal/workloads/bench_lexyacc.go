package workloads

import "ccr/internal/ir"

func init() {
	register("lex", buildLex)
	register("yacc", buildYacc)
}

// automaton builds the shared table data for the two table-driven UNIX
// tools: a transition table over (state, symbol) and a per-state action
// table, both read-only.
func automaton(seed uint64, states, syms int) (trans, action []int64) {
	r := newRNG(seed)
	trans = make([]int64, states*syms)
	for i := range trans {
		// Real scanners and parsers spend most of their time in a few
		// hot states ("in identifier", "in whitespace"): bias the
		// transition table heavily toward low-numbered states so the
		// (state, symbol) working set is small.
		switch {
		case r.intn(100) < 85:
			trans[i] = 0
		case r.intn(100) < 70:
			trans[i] = int64(1 + r.intn(2))
		default:
			trans[i] = int64(r.intn(states))
		}
	}
	action = make([]int64, states)
	for i := range action {
		action[i] = int64(r.intn(6))
	}
	return trans, action
}

// buildLex models the UNIX lex scanner: a DFA stepped once per input
// character. The (state, char) domain is small and heavily skewed, so the
// table-driven step — several dependent lookups and arithmetic — is a
// stateless region with two register inputs (group SL_2) that hits almost
// always.
func buildLex(s Scale) *Benchmark {
	const states, syms = 16, 32
	pb := ir.NewProgramBuilder("lex")
	transInit, actionInit := automaton(0x1E, states, syms)
	trans := pb.ReadOnlyObject("trans", transInit)
	action := pb.ReadOnlyObject("action", actionInit)
	input := pb.ReadOnlyObject("input",
		concat(genSkewed(71, s.N, 9), genSkewed(72, s.N, 14)))
	tokens := pb.Object("tokens", 64, nil)
	lexsel := pb.ReadOnlyObject("lexsel",
		concat(genSelSeq(0x7A, s.N, 10), genSelSeq(0x7B, s.N, 10)))
	mix := addMixer(pb)
	lexVariants := addVariantKernels(pb, "tok", 10, 0x7C, action, 15, nil, 0)

	// dfaStep(state, ch) → state*64 + act: the hot region. The accept
	// adjustment is branchless so the whole step is one reusable block.
	dfa := pb.Func("dfa_step", 2)
	st, ch := dfa.Param(0), dfa.Param(1)
	dHot := dfa.NewBlock()
	dExit := dfa.NewBlock()
	nx, act, tb, ab, idx, sel := dfa.NewReg(), dfa.NewReg(), dfa.NewReg(), dfa.NewReg(), dfa.NewReg(), dfa.NewReg()
	dHot.MulI(idx, st, syms)
	dHot.Add(idx, idx, ch)
	dHot.Lea(tb, trans, 0)
	dHot.Add(tb, tb, idx)
	dHot.Ld(nx, tb, 0, trans)
	dHot.Lea(ab, action, 0)
	dHot.Add(ab, ab, nx)
	dHot.Ld(act, ab, 0, action)
	// act += (act > 3) ? act+1 : 0, without a branch.
	dHot.SltI(sel, act, 4)
	dHot.SubI(sel, sel, 1) // 0 when act<4, -1 otherwise
	dHot.AddI(idx, act, 1)
	dHot.And(idx, idx, sel)
	dHot.Add(act, act, idx)
	dHot.ShlI(nx, nx, 6)
	dHot.Add(nx, nx, act)
	dHot.Jmp(dExit.ID())
	dExit.Ret(nx)

	f := pb.Func("main", 1)
	ds := f.Param(0)
	mEntry := f.NewBlock()
	rHead := f.NewBlock()
	jInit := f.NewBlock()
	jHead := f.NewBlock()
	jBody := f.NewBlock()
	jChk := f.NewBlock()
	jTok := f.NewBlock()
	jLatch := f.NewBlock()
	rLatch := f.NewBlock()
	mExit := f.NewBlock()
	total, rr, j, ibase, cv, stv, step, tmp, tkb := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	mrounds := f.NewReg()
	sel, dv, sbase := f.NewReg(), f.NewReg(), f.NewReg()
	mEntry.MovI(mrounds, 1)
	mEntry.MovI(total, 0)
	mEntry.MulI(sbase, ds, int64(s.N))
	mEntry.Lea(tmp, lexsel, 0)
	mEntry.Add(sbase, sbase, tmp)
	mEntry.MovI(rr, 0)
	mEntry.MulI(ibase, ds, int64(s.N))
	mEntry.Lea(tmp, input, 0)
	mEntry.Add(ibase, ibase, tmp)
	rHead.BgeI(rr, int64(s.Rounds), mExit.ID())
	jInit.MovI(j, 0)
	jInit.MovI(stv, 0)
	jHead.BgeI(j, int64(s.N), rLatch.ID())
	jBody.Add(tmp, ibase, j)
	jBody.Ld(cv, tmp, 0, input)
	jBody.Call(step, dfa.ID(), stv, cv)
	jBody.SraI(stv, step, 6)
	jBody.AndI(tmp, step, 63)
	jBody.Add(total, total, tmp)
	jBody.Call(total, mix, total, mrounds)
	jBody.Add(sel, sbase, j)
	jBody.Ld(sel, sel, 0, lexsel)
	emitDispatch(f, jBody, jChk.ID(), sel, dv,
		[8]ir.Reg{sel, cv, sel, cv, sel, cv, sel, cv}, lexVariants)
	jChk.Add(total, total, dv)
	jChk.AndI(tmp, total, 1)
	jChk.BeqI(tmp, 0, jLatch.ID())
	// Token boundary: record it (the store that keeps lex realistic).
	jTok.Lea(tkb, tokens, 0)
	jTok.AndI(tmp, total, 63)
	jTok.Add(tkb, tkb, tmp)
	jTok.St(tkb, 0, stv, tokens)
	jLatch.AddI(j, j, 1)
	jLatch.Jmp(jHead.ID())
	rLatch.AddI(rr, rr, 1)
	rLatch.Jmp(rHead.ID())
	mExit.Ret(total)

	return &Benchmark{
		Name:  "lex",
		Paper: "lex",
		Prog:  pb.Build(),
		Train: []int64{DatasetTrain},
		Ref:   []int64{DatasetRef},
		About: "DFA scanner: per-character table-driven step over a small (state, char) domain — strong SL_2 stateless reuse.",
	}
}

// buildYacc models the UNIX yacc LR parser: an action lookup on
// (state, token) plus a rule-reduction inner loop whose trip count is the
// rule's RHS length — a cyclic stateless region with recurring inputs.
func buildYacc(s Scale) *Benchmark {
	const states, toks = 24, 16
	pb := ir.NewProgramBuilder("yacc")
	actInit, gotoInit := automaton(0xAC, states, toks)
	actTab := pb.ReadOnlyObject("act_tab", actInit)
	gotoTab := pb.ReadOnlyObject("goto_tab", gotoInit)
	// rhslen: read-only rule → RHS length table (2..4 symbols).
	rhs := make([]int64, 16)
	r := newRNG(0x9A)
	for i := range rhs {
		rhs[i] = int64(2 + r.intn(3))
	}
	rhsLen := pb.ReadOnlyObject("rhs_len", rhs)
	weights := pb.ReadOnlyObject("weights", func() []int64 {
		w := make([]int64, 8)
		for i := range w {
			w[i] = int64(i*5 + 3)
		}
		return w
	}())
	input := pb.ReadOnlyObject("input",
		concat(genSkewed(81, s.N, 10), genSkewed(82, s.N, 12)))
	stack := pb.Object("stack", 256, nil)
	selseq := pb.ReadOnlyObject("selseq",
		concat(genSelSeq(0x4A, s.N, 16), genSelSeq(0x4B, s.N, 16)))
	mix := addMixer(pb)
	variants := addVariantKernels(pb, "rule", 16, 0x4C, weights, 7, nil, 0)

	// reduceCost(rule): cyclic stateless region — walk the rule's RHS
	// accumulating weights; the rule id recurs heavily.
	rd := pb.Func("reduce_cost", 1)
	rule := rd.Param(0)
	rEntry := rd.NewBlock()
	rHead := rd.NewBlock()
	rBody := rd.NewBlock()
	rLatch := rd.NewBlock()
	rExit := rd.NewBlock()
	cost, k, ln, lb, wb, wv := rd.NewReg(), rd.NewReg(), rd.NewReg(), rd.NewReg(), rd.NewReg(), rd.NewReg()
	t2 := rd.NewReg()
	rEntry.Lea(lb, rhsLen, 0)
	rEntry.AndI(t2, rule, 15)
	rEntry.Add(lb, lb, t2)
	rEntry.Ld(ln, lb, 0, rhsLen)
	rEntry.MovI(cost, 0)
	rEntry.MovI(k, 0)
	rHead.Bge(k, ln, rExit.ID())
	rBody.Add(wv, rule, k)
	rBody.AndI(wv, wv, 7)
	rBody.Lea(wb, weights, 0)
	rBody.Add(wb, wb, wv)
	rBody.Ld(wv, wb, 0, weights)
	rBody.Add(cost, cost, wv)
	rLatch.AddI(k, k, 1)
	rLatch.Jmp(rHead.ID())
	rExit.Ret(cost)

	// parseAction(state, tok): stateless action/goto lookup region.
	pa := pb.Func("parse_action", 2)
	st, tk := pa.Param(0), pa.Param(1)
	pHot := pa.NewBlock()
	pExit := pa.NewBlock()
	av, gv, ab, gb, ix := pa.NewReg(), pa.NewReg(), pa.NewReg(), pa.NewReg(), pa.NewReg()
	pHot.MulI(ix, st, toks)
	pHot.Add(ix, ix, tk)
	pHot.Lea(ab, actTab, 0)
	pHot.Add(ab, ab, ix)
	pHot.Ld(av, ab, 0, actTab)
	pHot.Lea(gb, gotoTab, 0)
	pHot.Add(gb, gb, av)
	pHot.Ld(gv, gb, 0, gotoTab)
	pHot.ShlI(gv, gv, 4)
	pHot.Add(gv, gv, av)
	pHot.Jmp(pExit.ID())
	pExit.Ret(gv)

	f := pb.Func("main", 1)
	ds := f.Param(0)
	mEntry := f.NewBlock()
	oHead := f.NewBlock()
	jInit := f.NewBlock()
	jHead := f.NewBlock()
	jBody := f.NewBlock()
	jChk := f.NewBlock()
	jRed := f.NewBlock()
	jLatch := f.NewBlock()
	oLatch := f.NewBlock()
	mExit := f.NewBlock()
	total, rr, j, ibase, tok, stv, actv, rulev, costv, tmp := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	sb, sp := f.NewReg(), f.NewReg()
	mrounds := f.NewReg()
	sel, dv, sbase := f.NewReg(), f.NewReg(), f.NewReg()
	mEntry.MovI(mrounds, 3)
	mEntry.MovI(total, 0)
	mEntry.MulI(sbase, ds, int64(s.N))
	mEntry.Lea(tmp, selseq, 0)
	mEntry.Add(sbase, sbase, tmp)
	mEntry.MovI(rr, 0)
	mEntry.MovI(sp, 0)
	mEntry.MulI(ibase, ds, int64(s.N))
	mEntry.Lea(tmp, input, 0)
	mEntry.Add(ibase, ibase, tmp)
	oHead.BgeI(rr, int64(s.Rounds), mExit.ID())
	jInit.MovI(j, 0)
	jInit.MovI(stv, 0)
	jHead.BgeI(j, int64(s.N), oLatch.ID())
	jBody.Add(tmp, ibase, j)
	jBody.Ld(tok, tmp, 0, input)
	jBody.Call(actv, pa.ID(), stv, tok)
	jBody.SraI(stv, actv, 4)
	jBody.AndI(stv, stv, 23)
	jBody.AndI(rulev, actv, 15)
	// Push the state (parse stack store, outside any region).
	jBody.Lea(sb, stack, 0)
	jBody.AndI(tmp, sp, 255)
	jBody.Add(sb, sb, tmp)
	jBody.St(sb, 0, stv, stack)
	jBody.AddI(sp, sp, 1)
	jBody.Call(total, mix, total, mrounds)
	// Semantic-action dispatch.
	jBody.Add(sel, sbase, j)
	jBody.Ld(sel, sel, 0, selseq)
	emitDispatch(f, jBody, jChk.ID(), sel, dv,
		[8]ir.Reg{sel, rulev, stv, sel, rulev, stv, sel, rulev}, variants)
	jChk.Add(total, total, dv)
	jChk.AndI(tmp, tok, 3)
	jChk.BneI(tmp, 0, jLatch.ID())
	jRed.Call(costv, rd.ID(), rulev)
	jRed.Add(total, total, costv)
	jLatch.AddI(j, j, 1)
	jLatch.Jmp(jHead.ID())
	oLatch.Add(total, total, stv)
	oLatch.AddI(rr, rr, 1)
	oLatch.Jmp(oHead.ID())
	mExit.Ret(total)

	return &Benchmark{
		Name:  "yacc",
		Paper: "yacc",
		Prog:  pb.Build(),
		Train: []int64{DatasetTrain},
		Ref:   []int64{DatasetRef},
		About: "LR parser: (state, token) action lookups and a rule-reduction loop over read-only tables — stateless acyclic and cyclic reuse.",
	}
}
