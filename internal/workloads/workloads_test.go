package workloads

import (
	"testing"

	"ccr/internal/core"
	"ccr/internal/ir"
)

// TestAllBenchmarksPipeline runs every registered benchmark end to end at
// Tiny scale: compile with the training input, then check architectural
// equivalence between base and CCR programs on both inputs.
func TestAllBenchmarksPipeline(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b := Load(name, Tiny)
			opts := core.DefaultOptions()
			cr, err := core.Compile(b.Prog, b.Train, opts)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, args := range [][]int64{b.Train, b.Ref} {
				want, err := core.RunFunctional(b.Prog, nil, args, 0)
				if err != nil {
					t.Fatalf("base run %v: %v", args, err)
				}
				got, err := core.RunFunctional(cr.Prog, &opts.CRB, args, 0)
				if err != nil {
					t.Fatalf("ccr run %v: %v", args, err)
				}
				if got.Result != want.Result {
					t.Fatalf("args %v: ccr result %d != base %d", args, got.Result, want.Result)
				}
			}
		})
	}
}

// TestBenchmarksDeterministic ensures program construction is reproducible.
func TestBenchmarksDeterministic(t *testing.T) {
	for _, name := range Names() {
		a := Load(name, Tiny)
		b := Load(name, Tiny)
		if a.Prog.Dump() != b.Prog.Dump() {
			t.Errorf("%s: non-deterministic program construction", name)
		}
	}
}

// TestM88ksimShape checks the flagship benchmark's expected structure: a
// cyclic memory-dependent region (the breakpoint scan) plus stateless
// decode regions, high reuse, and a solid speedup.
func TestM88ksimShape(t *testing.T) {
	b := Load("m88ksim", Small)
	opts := core.DefaultOptions()
	cr, err := core.Compile(b.Prog, b.Train, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var cyclicMD, statelessN int
	for _, pl := range cr.Plans {
		if pl.Kind == ir.Cyclic && pl.Class == ir.MemoryDependent {
			cyclicMD++
		}
		if pl.Class == ir.Stateless {
			statelessN++
		}
	}
	if cyclicMD == 0 {
		t.Errorf("expected a cyclic MD region (ckbrkpts scan); plans: %d", len(cr.Plans))
	}
	if statelessN == 0 {
		t.Errorf("expected stateless decode regions")
	}
	base, err := core.Simulate(b.Prog, nil, opts.Uarch, b.Train, 0)
	if err != nil {
		t.Fatalf("simulate base: %v", err)
	}
	ccr, err := core.Simulate(cr.Prog, &opts.CRB, opts.Uarch, b.Train, 0)
	if err != nil {
		t.Fatalf("simulate ccr: %v", err)
	}
	if ccr.Result != base.Result {
		t.Fatalf("result mismatch: %d vs %d", ccr.Result, base.Result)
	}
	sp := core.Speedup(base, ccr)
	if sp < 1.2 {
		t.Errorf("m88ksim speedup %.3f, want ≥ 1.2 (base=%d ccr=%d cycles, hits=%d misses=%d)",
			sp, base.Cycles, ccr.Cycles, ccr.Emu.ReuseHits, ccr.Emu.ReuseMisses)
	}
}
