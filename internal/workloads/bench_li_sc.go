package workloads

import "ccr/internal/ir"

func init() {
	register("li", buildLi)
	register("sc", buildSc)
}

// buildLi models 130.li, the xlisp interpreter: symbol lookup scans an
// association list that changes only on rare (re)definitions, and the
// evaluator dispatches on a small set of node types through read-only
// tables — cyclic memory-dependent reuse plus stateless dispatch.
func buildLi(s Scale) *Benchmark {
	pb := ir.NewProgramBuilder("li")

	// symtab: 32 [key, val] pairs; keys 0..31 prefilled.
	symInit := make([]int64, 64)
	r := newRNG(0x11)
	for i := 0; i < 32; i++ {
		symInit[2*i] = int64(i)
		symInit[2*i+1] = int64(r.intn(1000))
	}
	symtab := pb.Object("symtab", 64, symInit)
	dispatch := pb.ReadOnlyObject("dispatch", func() []int64 {
		d := make([]int64, 16)
		rr := newRNG(0x12)
		for i := range d {
			d[i] = int64(rr.intn(7))
		}
		return d
	}())
	shift := func(vs []int64) []int64 {
		for i := range vs {
			vs[i] += 3 // lookups scan at least 4 entries (multi-iteration)
		}
		return vs
	}
	keys := pb.ReadOnlyObject("keys",
		concat(shift(genSkewed(0x21, s.N, 9)), shift(genSkewed(0x22, s.N, 11))))
	heap := pb.Object("heap", 64, nil)
	selseq := pb.ReadOnlyObject("selseq",
		concat(genSelSeq(0x2A, s.N, 72), genSelSeq(0x2B, s.N, 72)))
	mix := addMixer(pb)
	variants := addVariantKernels(pb, "eval", 72, 0x2C, dispatch, 15,
		[]ir.MemID{symtab}, 63)

	// lookup(key): scan the association list until the key matches —
	// the cyclic memory-dependent region.
	lk := pb.Func("lookup", 1)
	key := lk.Param(0)
	lEntry := lk.NewBlock()
	lHead := lk.NewBlock()
	lBody := lk.NewBlock()
	lFound := lk.NewBlock()
	lLatch := lk.NewBlock()
	lExit := lk.NewBlock()
	val, i, base, p, kv := lk.NewReg(), lk.NewReg(), lk.NewReg(), lk.NewReg(), lk.NewReg()
	lEntry.MovI(val, -1)
	lEntry.MovI(i, 0)
	lEntry.Lea(base, symtab, 0)
	lHead.BgeI(i, 32, lExit.ID())
	lBody.ShlI(p, i, 1)
	lBody.Add(p, base, p)
	lBody.Ld(kv, p, 0, symtab)
	lBody.Bne(kv, key, lLatch.ID())
	lFound.Ld(val, p, 1, symtab)
	lFound.Jmp(lExit.ID())
	lLatch.AddI(i, i, 1)
	lLatch.Jmp(lHead.ID())
	lExit.Ret(val)

	// evalNode(v): type dispatch + small arithmetic, read-only table.
	ev := pb.Func("eval_node", 1)
	nv := ev.Param(0)
	eEntry := ev.NewBlock()
	eHot := ev.NewBlock()
	eExit := ev.NewBlock()
	ty, db, h, acc := ev.NewReg(), ev.NewReg(), ev.NewReg(), ev.NewReg()
	eEntry.AndI(ty, nv, 15)
	eHot.Lea(db, dispatch, 0)
	eHot.Add(db, db, ty)
	eHot.Ld(h, db, 0, dispatch)
	eHot.MulI(acc, h, 13)
	eHot.Add(acc, acc, ty)
	eHot.ShlI(h, h, 2)
	eHot.Add(acc, acc, h)
	eHot.Jmp(eExit.ID())
	eExit.Ret(acc)

	f := pb.Func("main", 1)
	ds := f.Param(0)
	mEntry := f.NewBlock()
	rHead := f.NewBlock()
	jInit := f.NewBlock()
	jHead := f.NewBlock()
	jBody := f.NewBlock()
	jChk := f.NewBlock()
	jDef := f.NewBlock()
	jLatch := f.NewBlock()
	rLatch := f.NewBlock()
	mExit := f.NewBlock()
	total, rr, j, kbase, kv2, vv, evv, tmp, sb, hb := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	mrounds := f.NewReg()
	sel, dv, sbase := f.NewReg(), f.NewReg(), f.NewReg()
	va, vb := f.NewReg(), f.NewReg()
	mEntry.MovI(mrounds, 5)
	mEntry.MovI(total, 0)
	mEntry.MulI(sbase, ds, int64(s.N))
	mEntry.Lea(tmp, selseq, 0)
	mEntry.Add(sbase, sbase, tmp)
	mEntry.MovI(rr, 0)
	mEntry.MulI(kbase, ds, int64(s.N))
	mEntry.Lea(tmp, keys, 0)
	mEntry.Add(kbase, kbase, tmp)
	rHead.BgeI(rr, int64(s.Rounds), mExit.ID())
	jInit.MovI(j, 0)
	jHead.BgeI(j, int64(s.N), rLatch.ID())
	jBody.Add(tmp, kbase, j)
	jBody.Ld(kv2, tmp, 0, keys)
	jBody.Call(vv, lk.ID(), kv2)
	jBody.Add(total, total, vv)
	jBody.Call(evv, ev.ID(), vv)
	jBody.Add(total, total, evv)
	jBody.Call(total, mix, total, mrounds)
	// Evaluator case dispatch.
	jBody.Add(sel, sbase, j)
	jBody.Ld(sel, sel, 0, selseq)
	jBody.XorI(va, sel, 5)
	jBody.MulI(vb, sel, 7)
	jBody.AndI(vb, vb, 63)
	emitDispatch(f, jBody, jChk.ID(), sel, dv,
		[8]ir.Reg{sel, va, vb, va, vb, sel, va, vb}, variants)
	jChk.Add(total, total, dv)
	jChk.RemI(tmp, j, int64(s.N+1))
	jChk.BneI(tmp, int64(s.N/3), jLatch.ID())
	// Rare (defun): redefine one symbol's value, invalidating lookups.
	jDef.Lea(sb, symtab, 0)
	jDef.AndI(tmp, rr, 31)
	jDef.ShlI(tmp, tmp, 1)
	jDef.Add(sb, sb, tmp)
	jDef.St(sb, 1, total, symtab)
	jLatch.AddI(j, j, 1)
	jLatch.Jmp(jHead.ID())
	rLatch.Lea(hb, heap, 0)
	rLatch.AndI(tmp, rr, 63)
	rLatch.Add(hb, hb, tmp)
	rLatch.St(hb, 0, total, heap)
	rLatch.AddI(rr, rr, 1)
	rLatch.Jmp(rHead.ID())
	mExit.Ret(total)

	return &Benchmark{
		Name:  "li",
		Paper: "130.li",
		Prog:  pb.Build(),
		Train: []int64{DatasetTrain},
		Ref:   []int64{DatasetRef},
		About: "Lisp interpreter: association-list symbol lookup (cyclic MD, invalidated by rare redefinitions) and read-only type dispatch.",
	}
}

// buildSc models 072.sc, the spreadsheet calculator: formula cells are
// recomputed every round by summing fixed 8-cell ranges; the cell array is
// edited in small patches between recalculations. Each formula is one
// recurring invocation of the range-sum loop, so the number of computation
// instances bounds how many formulas stay resident.
func buildSc(s Scale) *Benchmark {
	pb := ir.NewProgramBuilder("sc")
	// Six formulas fit the 8-record profiling window and an 8-instance
	// entry, but round-robin recomputation thrashes a 4-instance entry —
	// sc's instance-count sensitivity.
	const formulas = 6

	cellsInit := make([]int64, formulas*8)
	r := newRNG(0x5C)
	for i := range cellsInit {
		cellsInit[i] = int64(r.intn(100))
	}
	cells := pb.Object("cells", int64(len(cellsInit)), cellsInit)
	fmtTab := pb.ReadOnlyObject("fmt_tab", func() []int64 {
		t := make([]int64, 16)
		for i := range t {
			t[i] = int64((i*11 + 4) & 63)
		}
		return t
	}())
	edits := pb.ReadOnlyObject("edits",
		concat(genUniform(0x61, s.N, formulas*8), genUniform(0x62, s.N, formulas*8)))
	// fseq: the order formulas are recomputed in, skewed toward the hot
	// ones as dependency-driven recalculation would be.
	fseq := pb.ReadOnlyObject("fseq", genSkewed(0x63, 64, formulas))
	results := pb.Object("results", formulas, nil)
	scsel := pb.ReadOnlyObject("scsel",
		concat(genSelSeq(0xCA, s.N, 8), genSelSeq(0xCB, s.N, 8)))
	mix := addMixer(pb)
	scVariants := addVariantKernels(pb, "cellop", 8, 0xCC, fmtTab, 15,
		[]ir.MemID{cells}, 31)

	// rangeSum(base): sum 8 consecutive cells — the per-formula cyclic
	// memory-dependent region, keyed by the range base address.
	rs := pb.Func("range_sum", 1)
	rb := rs.Param(0)
	rEntry := rs.NewBlock()
	rHead := rs.NewBlock()
	rBody := rs.NewBlock()
	rLatch := rs.NewBlock()
	rExit := rs.NewBlock()
	sum, k, p, v := rs.NewReg(), rs.NewReg(), rs.NewReg(), rs.NewReg()
	rEntry.MovI(sum, 0)
	rEntry.MovI(k, 0)
	rHead.BgeI(k, 8, rExit.ID())
	rBody.Add(p, rb, k)
	rBody.Ld(v, p, 0, cells)
	rBody.Add(sum, sum, v)
	rLatch.AddI(k, k, 1)
	rLatch.Jmp(rHead.ID())
	rExit.Ret(sum)

	// format(v): numeric formatting kernel over a static table.
	fm := pb.Func("format", 1)
	fv := fm.Param(0)
	fEntry := fm.NewBlock()
	fHot := fm.NewBlock()
	fExit := fm.NewBlock()
	fi, fb2, fw := fm.NewReg(), fm.NewReg(), fm.NewReg()
	fEntry.AndI(fi, fv, 15)
	fHot.Lea(fb2, fmtTab, 0)
	fHot.Add(fb2, fb2, fi)
	fHot.Ld(fw, fb2, 0, fmtTab)
	fHot.MulI(fw, fw, 3)
	fHot.Add(fw, fw, fi)
	fHot.Jmp(fExit.ID())
	fExit.Ret(fw)

	// Per round: one cell edit, then several full recalculation passes
	// (screen refreshes) — the reuse the CCR captures is across passes,
	// while each edit's invalidation forces one re-recording per formula.
	const passes = 5
	f := pb.Func("main", 1)
	ds := f.Param(0)
	mEntry := f.NewBlock()
	oHead := f.NewBlock()
	eBlock := f.NewBlock()
	pHead := f.NewBlock()
	fInit := f.NewBlock()
	fHead := f.NewBlock()
	fBody := f.NewBlock()
	fChk := f.NewBlock()
	fLatch := f.NewBlock()
	pLatch := f.NewBlock()
	oLatch := f.NewBlock()
	mExit := f.NewBlock()
	total, rr, fi2, cb, sumv, fmtv, tmp, ebase, eoff, resb := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	pp := f.NewReg()
	mrounds := f.NewReg()
	sel, dv, sbase := f.NewReg(), f.NewReg(), f.NewReg()
	mEntry.MovI(mrounds, 6)
	mEntry.MulI(sbase, ds, int64(s.N))
	mEntry.Lea(tmp, scsel, 0)
	mEntry.Add(sbase, sbase, tmp)
	mEntry.MovI(total, 0)
	mEntry.MovI(rr, 0)
	mEntry.MulI(ebase, ds, int64(s.N))
	mEntry.Lea(tmp, edits, 0)
	mEntry.Add(ebase, ebase, tmp)
	oHead.BgeI(rr, int64(s.Rounds), mExit.ID())
	// One cell edit per round (spreadsheet input), invalidating sums.
	eBlock.AndI(eoff, rr, int64(s.N-1))
	eBlock.Add(eoff, ebase, eoff)
	eBlock.Ld(eoff, eoff, 0, edits)
	eBlock.Lea(tmp, cells, 0)
	eBlock.Add(tmp, tmp, eoff)
	eBlock.St(tmp, 0, rr, cells)
	eBlock.MovI(pp, 0)
	pHead.BgeI(pp, passes, oLatch.ID())
	fInit.MovI(fi2, 0)
	fHead.BgeI(fi2, formulas, pLatch.ID())
	fBody.Add(cb, pp, fi2)
	fBody.MulI(cb, cb, 7)
	fBody.AndI(cb, cb, 63)
	fBody.Lea(tmp, fseq, 0)
	fBody.Add(cb, tmp, cb)
	fBody.Ld(cb, cb, 0, fseq)
	fBody.ShlI(cb, cb, 3)
	fBody.Lea(tmp, cells, 0)
	fBody.Add(cb, tmp, cb)
	fBody.Call(sumv, rs.ID(), cb)
	fBody.Add(total, total, sumv)
	fBody.Call(fmtv, fm.ID(), sumv)
	fBody.Add(total, total, fmtv)
	fBody.Call(total, mix, total, mrounds)
	fBody.Lea(resb, results, 0)
	fBody.Add(resb, resb, fi2)
	fBody.St(resb, 0, sumv, results)
	fBody.Add(sel, rr, fi2)
	fBody.AndI(sel, sel, int64(s.N-1))
	fBody.Add(sel, sbase, sel)
	fBody.Ld(sel, sel, 0, scsel)
	emitDispatch(f, fBody, fChk.ID(), sel, dv,
		[8]ir.Reg{sel, sumv, sel, sumv, sel, sumv, sel, sumv}, scVariants)
	fChk.Add(total, total, dv)
	fLatch.AddI(fi2, fi2, 1)
	fLatch.Jmp(fHead.ID())
	pLatch.AddI(pp, pp, 1)
	pLatch.Jmp(pHead.ID())
	oLatch.AddI(rr, rr, 1)
	oLatch.Jmp(oHead.ID())
	mExit.Ret(total)

	return &Benchmark{
		Name:  "sc",
		Paper: "072.sc",
		Prog:  pb.Build(),
		Train: []int64{DatasetTrain},
		Ref:   []int64{DatasetRef},
		About: "Spreadsheet calculator: per-formula 8-cell range sums recomputed every round with one cell edit per round — instance-count-bound cyclic MD reuse.",
	}
}
