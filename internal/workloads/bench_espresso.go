package workloads

import "ccr/internal/ir"

func init() { register("espresso", buildEspresso) }

// buildEspresso models 008.espresso, the paper's Figure 2 example: logic
// minimization dominated by the count_ones macro — a straight-line
// byte-table population count whose single input register repeats heavily —
// plus a cube-covering inner loop over read-only cube masks.
func buildEspresso(s Scale) *Benchmark {
	pb := ir.NewProgramBuilder("espresso")

	// bit_count: read-only 256-entry population-count-of-byte table.
	bc := make([]int64, 256)
	for i := range bc {
		n := int64(0)
		for v := i; v != 0; v >>= 1 {
			n += int64(v & 1)
		}
		bc[i] = n
	}
	bitCount := pb.ReadOnlyObject("bit_count", bc)

	// cubes: read-only cover masks walked by the covering loop.
	cubeWords := 16
	cubesInit := make([]int64, cubeWords)
	r := newRNG(0xE5)
	for i := range cubesInit {
		cubesInit[i] = int64(r.next() & 0xFFFFFFFF)
	}
	cubes := pb.ReadOnlyObject("cubes", cubesInit)

	// words: input truth-table words with strong value locality.
	mkWords := func(seed uint64, card int) []int64 {
		idx := genSkewed(seed, s.N, card)
		vals := make([]int64, card)
		rr := newRNG(seed ^ 0x55)
		for i := range vals {
			vals[i] = int64(rr.next() & 0xFFFFFFFF)
		}
		out := make([]int64, s.N)
		for i := range out {
			out[i] = vals[idx[i]]
		}
		return out
	}
	words := pb.ReadOnlyObject("words", concat(mkWords(11, 18), mkWords(22, 26)))
	scratch := pb.Object("scratch", 64, nil)
	selseq := pb.ReadOnlyObject("selseq",
		concat(genSelSeq(0x5A, s.N, 12), genSelSeq(0x5B, s.N, 12)))
	mix := addMixer(pb)
	wide := addWideScan(pb, bitCount, 255)
	variants := addVariantKernels(pb, "cubeop", 12, 0x5C, bitCount, 255,
		[]ir.MemID{scratch}, 63)

	// countOnes(v): the Figure 2 macro — one basic block, one input
	// register, one output register, four bit_count lookups.
	co := pb.Func("count_ones", 1)
	v := co.Param(0)
	coHot := co.NewBlock()
	coExit := co.NewBlock()
	sum, t, idx, base := co.NewReg(), co.NewReg(), co.NewReg(), co.NewReg()
	coHot.Lea(base, bitCount, 0)
	coHot.AndI(idx, v, 255)
	coHot.Add(t, base, idx)
	coHot.Ld(sum, t, 0, bitCount)
	for _, sh := range []int64{8, 16, 24} {
		x := co.NewReg()
		coHot.ShrI(x, v, sh)
		coHot.AndI(x, x, 255)
		coHot.Add(x, base, x)
		coHot.Ld(x, x, 0, bitCount)
		coHot.Add(sum, sum, x)
	}
	coHot.Jmp(coExit.ID())
	coExit.Ret(sum)

	// cover(mask): cyclic stateless region — intersect the mask against
	// every cube, counting nonempty intersections. The mask values
	// recur, so whole invocations are reusable.
	cv := pb.Func("cover", 1)
	mask := cv.Param(0)
	cvEntry := cv.NewBlock()
	cvHead := cv.NewBlock()
	cvBody := cv.NewBlock()
	cvHit := cv.NewBlock()
	cvLatch := cv.NewBlock()
	cvExit := cv.NewBlock()
	cnt, ci, cb, cp, cw := cv.NewReg(), cv.NewReg(), cv.NewReg(), cv.NewReg(), cv.NewReg()
	cvEntry.MovI(cnt, 0)
	cvEntry.MovI(ci, 0)
	cvEntry.Lea(cb, cubes, 0)
	cvHead.BgeI(ci, int64(cubeWords), cvExit.ID())
	cvBody.Add(cp, cb, ci)
	cvBody.Ld(cw, cp, 0, cubes)
	cvBody.And(cw, cw, mask)
	cvBody.BeqI(cw, 0, cvLatch.ID())
	cvHit.AddI(cnt, cnt, 1)
	cvLatch.AddI(ci, ci, 1)
	cvLatch.Jmp(cvHead.ID())
	cvExit.Ret(cnt)

	// main(dataset): pop-count every word, covering every 8th word.
	f := pb.Func("main", 1)
	ds := f.Param(0)
	mEntry := f.NewBlock()
	rHead := f.NewBlock()
	jInit := f.NewBlock()
	jHead := f.NewBlock()
	jBody := f.NewBlock()
	jChk := f.NewBlock()
	jCover := f.NewBlock()
	jLatch := f.NewBlock()
	rLatch := f.NewBlock()
	mExit := f.NewBlock()
	total, rr2, j, wbase, w, ones, cvr, tmp, sp := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	wv := f.NewReg()
	mrounds := f.NewReg()
	b1, b2, b3, b4, b5, b6 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	sel, dv, sbase := f.NewReg(), f.NewReg(), f.NewReg()
	mEntry.MovI(mrounds, 3)
	mEntry.MulI(sbase, ds, int64(s.N))
	mEntry.Lea(tmp, selseq, 0)
	mEntry.Add(sbase, sbase, tmp)
	mEntry.MovI(total, 0)
	mEntry.MovI(rr2, 0)
	mEntry.MulI(wbase, ds, int64(s.N))
	mEntry.Lea(tmp, words, 0)
	mEntry.Add(wbase, wbase, tmp)
	rHead.BgeI(rr2, int64(s.Rounds), mExit.ID())
	jInit.MovI(j, 0)
	jHead.BgeI(j, int64(s.N), rLatch.ID())
	jBody.Add(w, wbase, j)
	jBody.Ld(wv, w, 0, words)
	jBody.Call(ones, co.ID(), wv)
	jBody.Add(total, total, ones)
	jBody.Call(total, mix, total, mrounds)
	jBody.Add(sel, sbase, j)
	jBody.Ld(sel, sel, 0, selseq)
	emitDispatch(f, jBody, jChk.ID(), sel, dv,
		[8]ir.Reg{sel, wv, sel, wv, sel, wv, sel, wv}, variants)
	jChk.Add(total, total, dv)
	jChk.AndI(tmp, j, 7)
	jChk.BneI(tmp, 0, jLatch.ID())
	jCover.Call(cvr, cv.ID(), wv)
	jCover.Add(total, total, cvr)
	// Wide-interface cube statistics: recurring inputs, too many for a
	// computation instance — reuse potential the hardware cannot exploit.
	jCover.AndI(b1, wv, 255)
	jCover.ShrI(b2, wv, 8)
	jCover.AndI(b2, b2, 15)
	jCover.ShrI(b3, wv, 12)
	jCover.AndI(b3, b3, 15)
	jCover.ShrI(b4, wv, 16)
	jCover.AndI(b4, b4, 15)
	jCover.ShrI(b5, wv, 20)
	jCover.AndI(b5, b5, 15)
	jCover.ShrI(b6, wv, 24)
	jCover.AndI(b6, b6, 15)
	jCover.Call(cvr, wide, b1, b2, b3, b4, b5, b6)
	jCover.Add(total, total, cvr)
	jLatch.AddI(j, j, 1)
	jLatch.Jmp(jHead.ID())
	rLatch.Lea(sp, scratch, 0)
	rLatch.AndI(tmp, rr2, 63)
	rLatch.Add(sp, sp, tmp)
	rLatch.St(sp, 0, total, scratch)
	rLatch.AddI(rr2, rr2, 1)
	rLatch.Jmp(rHead.ID())
	mExit.Ret(total)

	return &Benchmark{
		Name:  "espresso",
		Paper: "008.espresso",
		Prog:  pb.Build(),
		Train: []int64{DatasetTrain},
		Ref:   []int64{DatasetRef},
		About: "Logic minimizer: Figure 2's count_ones byte-table popcount (single-input stateless block) plus a cube-covering loop over read-only masks.",
	}
}
