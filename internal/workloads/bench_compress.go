package workloads

import "ccr/internal/ir"

func init() { register("compress", buildCompress) }

// buildCompress models 129.compress: LZW-style compression whose hash table
// is written on nearly every symbol, so its loads never stay valid long
// enough to reuse — leaving only several small, similarly-weighted
// stateless kernels (hash mixing, ratio checks, code-size bookkeeping).
// The paper singles compress out for its flat reuse distribution
// (Figure 10) and small speedup.
func buildCompress(s Scale) *Benchmark {
	pb := ir.NewProgramBuilder("compress")

	htab := pb.Object("htab", 512, nil)
	codetab := pb.Object("codetab", 256, nil)
	input := pb.ReadOnlyObject("input",
		concat(genSkewed(31, s.N, 48), genSkewed(41, s.N, 96)))
	out := pb.Object("out", 128, nil)
	litTab := pb.ReadOnlyObject("lit_tab", func() []int64 {
		t := make([]int64, 64)
		r := newRNG(0x2E)
		for i := range t {
			t[i] = int64(r.intn(12))
		}
		return t
	}())
	selseq := pb.ReadOnlyObject("selseq",
		concat(genSelSeq(0x6A, s.N, 8), genSelSeq(0x6B, s.N, 8)))
	mix := addMixer(pb)
	variants := addVariantKernels(pb, "outop", 8, 0x6C, litTab, 63,
		[]ir.MemID{codetab}, 255)

	// hashMix(c, prefix): stateless hash kernel. Inputs vary widely, so
	// it is formed but rarely hits — exactly compress's profile.
	hm := pb.Func("hash_mix", 2)
	c, pfx := hm.Param(0), hm.Param(1)
	hmHot := hm.NewBlock()
	hmExit := hm.NewBlock()
	h, t := hm.NewReg(), hm.NewReg()
	hmHot.ShlI(h, c, 4)
	hmHot.Xor(h, h, pfx)
	hmHot.MulI(t, h, 0x9E37)
	hmHot.Xor(h, h, t)
	hmHot.AndI(h, h, 511)
	hmHot.Jmp(hmExit.ID())
	hmExit.Ret(h)

	// ratioCheck(inCount, outCount): small stateless kernel with strong
	// locality (counters move slowly).
	rc := pb.Func("ratio_check", 2)
	ic, oc := rc.Param(0), rc.Param(1)
	rcHot := rc.NewBlock()
	rcExit := rc.NewBlock()
	q, g := rc.NewReg(), rc.NewReg()
	rcHot.ShrI(q, ic, 4)
	rcHot.ShrI(g, oc, 4)
	rcHot.Sub(q, q, g)
	rcHot.SltI(g, q, 2)
	rcHot.Add(q, q, g)
	rcHot.Jmp(rcExit.ID())
	rcExit.Ret(q)

	// literalCost(ch): per-character output cost via a static table — one
	// of several similarly-weighted small stateless kernels that give
	// compress its flat reuse distribution.
	lc := pb.Func("literal_cost", 1)
	lch := lc.Param(0)
	lcHot := lc.NewBlock()
	lcExit := lc.NewBlock()
	lv, lb2 := lc.NewReg(), lc.NewReg()
	lcHot.AndI(lv, lch, 63)
	lcHot.Lea(lb2, litTab, 0)
	lcHot.Add(lb2, lb2, lv)
	lcHot.Ld(lv, lb2, 0, litTab)
	lcHot.MulI(lv, lv, 3)
	lcHot.AddI(lv, lv, 2)
	lcHot.Jmp(lcExit.ID())
	lcExit.Ret(lv)

	// flagBits(ch): a second small table-free kernel on the same domain.
	fb2f := pb.Func("flag_bits", 1)
	fch := fb2f.Param(0)
	fbHot := fb2f.NewBlock()
	fbExit := fb2f.NewBlock()
	fv2, ft := fb2f.NewReg(), fb2f.NewReg()
	fbHot.AndI(fv2, fch, 63)
	fbHot.ShrI(ft, fv2, 3)
	fbHot.Xor(fv2, fv2, ft)
	fbHot.MulI(ft, fv2, 5)
	fbHot.Add(fv2, fv2, ft)
	fbHot.AndI(fv2, fv2, 31)
	fbHot.Jmp(fbExit.ID())
	fbExit.Ret(fv2)

	// codeSize(free): bit-width bookkeeping, few distinct inputs.
	cs := pb.Func("code_size", 1)
	fr := cs.Param(0)
	csHot := cs.NewBlock()
	csExit := cs.NewBlock()
	n, b := cs.NewReg(), cs.NewReg()
	csHot.ShrI(n, fr, 6)
	csHot.AndI(n, n, 15)
	csHot.MulI(b, n, 3)
	csHot.AddI(b, b, 9)
	csHot.Jmp(csExit.ID())
	csExit.Ret(b)

	f := pb.Func("main", 1)
	ds := f.Param(0)
	mEntry := f.NewBlock()
	rHead := f.NewBlock()
	jInit := f.NewBlock()
	jHead := f.NewBlock()
	jBody := f.NewBlock()
	jChk := f.NewBlock()
	jMiss := f.NewBlock()
	jLatch := f.NewBlock()
	rLatch := f.NewBlock()
	mExit := f.NewBlock()
	total, rr, j, ibase, ch, pfx2, hv, hb, probe, bits := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	tmp, ob, ratio, free := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	cb := f.NewReg()
	mrounds, lcv := f.NewReg(), f.NewReg()
	sel, dv, sbase := f.NewReg(), f.NewReg(), f.NewReg()
	mEntry.MovI(mrounds, 4)
	mEntry.MulI(sbase, ds, int64(s.N))
	mEntry.Lea(tmp, selseq, 0)
	mEntry.Add(sbase, sbase, tmp)
	mEntry.MovI(total, 0)
	mEntry.MovI(rr, 0)
	mEntry.MovI(pfx2, 0)
	mEntry.MovI(free, 256)
	mEntry.MulI(ibase, ds, int64(s.N))
	mEntry.Lea(tmp, input, 0)
	mEntry.Add(ibase, ibase, tmp)
	rHead.BgeI(rr, int64(s.Rounds), mExit.ID())
	jInit.MovI(j, 0)
	jHead.BgeI(j, int64(s.N), rLatch.ID())
	jBody.Add(tmp, ibase, j)
	jBody.Ld(ch, tmp, 0, input)
	jBody.Call(hv, hm.ID(), ch, pfx2)
	jBody.Lea(hb, htab, 0)
	jBody.Add(hb, hb, hv)
	jBody.Ld(probe, hb, 0, htab)
	jBody.Call(lcv, lc.ID(), ch)
	jBody.Add(total, total, lcv)
	jBody.Call(lcv, fb2f.ID(), ch)
	jBody.Add(total, total, lcv)
	jBody.Call(total, mix, total, mrounds)
	jBody.Add(sel, sbase, j)
	jBody.Ld(sel, sel, 0, selseq)
	emitDispatch(f, jBody, jChk.ID(), sel, dv,
		[8]ir.Reg{sel, ch, sel, ch, sel, ch, sel, ch}, variants)
	jChk.Add(total, total, dv)
	jChk.Beq(probe, ch, jLatch.ID())
	// Hash miss: insert, update code table — the constant stores that
	// ruin compress's memory reuse.
	jMiss.St(hb, 0, ch, htab)
	jMiss.AndI(tmp, free, 255)
	jMiss.Lea(cb, codetab, 0)
	jMiss.Add(cb, cb, tmp)
	jMiss.St(cb, 0, pfx2, codetab)
	jMiss.AddI(free, free, 1)
	jMiss.Call(bits, cs.ID(), free)
	jMiss.Add(total, total, bits)
	jLatch.Mov(pfx2, ch)
	jLatch.AddI(j, j, 1)
	jLatch.Jmp(jHead.ID())
	rLatch.Call(ratio, rc.ID(), rr, free)
	rLatch.Add(total, total, ratio)
	rLatch.Lea(ob, out, 0)
	rLatch.AndI(tmp, rr, 127)
	rLatch.Add(ob, ob, tmp)
	rLatch.St(ob, 0, total, out)
	rLatch.AddI(rr, rr, 1)
	rLatch.Jmp(rHead.ID())
	mExit.Ret(total)

	return &Benchmark{
		Name:  "compress",
		Paper: "129.compress",
		Prog:  pb.Build(),
		Train: []int64{DatasetTrain},
		Ref:   []int64{DatasetRef},
		About: "LZW-style compressor: constant hash-table stores defeat memory reuse; several equally-weighted small stateless kernels give a flat reuse distribution and small speedup.",
	}
}
