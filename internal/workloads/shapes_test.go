package workloads

import (
	"testing"

	"ccr/internal/core"
	"ccr/internal/ir"
)

// compileTiny compiles a benchmark at Tiny scale with paper options.
func compileTiny(t *testing.T, name string) (*Benchmark, *core.CompileResult) {
	t.Helper()
	b := Load(name, Tiny)
	cr, err := core.Compile(b.Prog, b.Train, core.DefaultOptions())
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	return b, cr
}

// regionsOf groups a program's regions by the containing function name.
func regionsOf(cr *core.CompileResult) map[string][]*ir.Region {
	out := map[string][]*ir.Region{}
	for _, rg := range cr.Prog.Regions {
		name := cr.Prog.Func(rg.Func).Name
		out[name] = append(out[name], rg)
	}
	return out
}

// Each test below pins the structural claim DESIGN.md makes about a
// benchmark: which kernels become regions and of what class.

func TestShapeM88ksim(t *testing.T) {
	_, cr := compileTiny(t, "m88ksim")
	regs := regionsOf(cr)
	found := false
	for _, rg := range regs["ckbrkpts"] {
		if rg.Kind == ir.Cyclic && rg.Class == ir.MemoryDependent {
			found = true
		}
	}
	if !found {
		t.Error("ckbrkpts scan must form a cyclic MD region (Figure 3)")
	}
	if len(regs["sim_decode"]) == 0 {
		t.Error("decode classification should form a stateless region")
	}
	if len(regs["mix"]) != 0 {
		t.Error("the mix chain must never form a region")
	}
}

func TestShapeEspresso(t *testing.T) {
	_, cr := compileTiny(t, "espresso")
	regs := regionsOf(cr)
	var co *ir.Region
	for _, rg := range regs["count_ones"] {
		co = rg
	}
	if co == nil {
		t.Fatal("count_ones must form a region (Figure 2)")
	}
	if co.Class != ir.Stateless || len(co.Inputs) != 1 || len(co.Outputs) != 1 {
		t.Errorf("count_ones region: class %v in=%v out=%v; Figure 2 wants SL 1→1",
			co.Class, co.Inputs, co.Outputs)
	}
	if len(regs["wide_scan"]) != 0 {
		t.Error("wide_scan exceeds the instance banks and must be rejected")
	}
}

func TestShapeLexYacc(t *testing.T) {
	_, cr := compileTiny(t, "lex")
	regs := regionsOf(cr)
	ok := false
	for _, rg := range regs["dfa_step"] {
		if rg.Class == ir.Stateless && len(rg.Inputs) == 2 {
			ok = true
		}
	}
	if !ok {
		t.Error("lex dfa_step must form an SL region with (state, char) inputs")
	}
	_, cr = compileTiny(t, "yacc")
	regs = regionsOf(cr)
	if len(regs["parse_action"]) == 0 {
		t.Error("yacc parse_action must form a region")
	}
}

func TestShapeCompressPoisonedMemory(t *testing.T) {
	_, cr := compileTiny(t, "compress")
	regs := regionsOf(cr)
	if len(regs["hash_mix"]) != 0 {
		t.Error("hash_mix sees wide operand variation and must be rejected")
	}
	// The hash-table probe in main reads constantly-stored memory: no
	// region may include a load of htab.
	htab := cr.Prog.ObjectByName("htab")
	for _, rg := range cr.Prog.Regions {
		for _, m := range rg.MemObjects {
			if m == htab.ID {
				t.Errorf("region %d depends on the constantly-stored hash table", rg.ID)
			}
		}
	}
	if len(regs["literal_cost"]) == 0 {
		t.Error("literal_cost is compress's small reusable kernel")
	}
}

func TestShapeMemoryDependentSuite(t *testing.T) {
	// The benchmarks the paper singles out for memory reuse must form MD
	// regions over their characteristic tables.
	cases := []struct{ bench, fn, obj string }{
		{"li", "lookup", "symtab"},
		{"sc", "range_sum", "cells"},
		{"vortex", "validate", "db"},
		{"mpeg2enc", "sad16", "curframe"},
	}
	for _, tc := range cases {
		_, cr := compileTiny(t, tc.bench)
		obj := cr.Prog.ObjectByName(tc.obj)
		if obj == nil {
			t.Fatalf("%s: object %s missing", tc.bench, tc.obj)
		}
		found := false
		for _, rg := range cr.Prog.Regions {
			if cr.Prog.Func(rg.Func).Name != tc.fn {
				continue
			}
			for _, m := range rg.MemObjects {
				if m == obj.ID {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%s: %s must form an MD region over %s", tc.bench, tc.fn, tc.obj)
		}
	}
}

func TestShapeVariantFamilies(t *testing.T) {
	// The case-handler families must contribute many formed regions with
	// mixed group classes (the Figure 9 spread).
	for _, tc := range []struct {
		bench  string
		prefix string
		min    int
	}{
		{"gcc", "case_", 20},
		{"li", "eval_", 15},
		{"vortex", "check_", 8},
	} {
		_, cr := compileTiny(t, tc.bench)
		n := 0
		for _, rg := range cr.Prog.Regions {
			name := cr.Prog.Func(rg.Func).Name
			if len(name) >= len(tc.prefix) && name[:len(tc.prefix)] == tc.prefix {
				n++
			}
		}
		if n < tc.min {
			t.Errorf("%s: only %d %s* regions formed, want ≥ %d", tc.bench, n, tc.prefix, tc.min)
		}
	}
}

func TestInvalidationsHappen(t *testing.T) {
	// Benchmarks with mutated region memory must execute invalidations.
	for _, name := range []string{"m88ksim", "li", "sc", "vortex", "mpeg2enc", "go"} {
		b, cr := compileTiny(t, name)
		opts := core.DefaultOptions()
		res, err := core.RunFunctional(cr.Prog, &opts.CRB, b.Train, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Emu.Invalidations == 0 {
			t.Errorf("%s: expected invalidate instructions to execute", name)
		}
	}
}

func TestTrainRefDatasetsDiffer(t *testing.T) {
	for _, name := range Names() {
		b := Load(name, Tiny)
		tr, err := core.RunFunctional(b.Prog, nil, b.Train, 0)
		if err != nil {
			t.Fatalf("%s train: %v", name, err)
		}
		rf, err := core.RunFunctional(b.Prog, nil, b.Ref, 0)
		if err != nil {
			t.Fatalf("%s ref: %v", name, err)
		}
		if tr.Result == rf.Result {
			t.Errorf("%s: training and reference runs computed identical results — inputs too similar", name)
		}
	}
}
