package workloads

import "ccr/internal/ir"

func init() {
	register("ijpeg", buildIjpeg)
	register("mpeg2enc", buildMpeg2)
	register("vortex", buildVortex)
}

// buildIjpeg models 132.ijpeg: image compression whose hot kernels are
// table-driven — quantization with divides, a saturating range-limit
// lookup, and a 1-D transform pass over read-only cosine coefficients.
// Flat image regions make coefficient values recur heavily.
func buildIjpeg(s Scale) *Benchmark {
	pb := ir.NewProgramBuilder("ijpeg")

	quant := pb.ReadOnlyObject("quant", func() []int64 {
		t := make([]int64, 64)
		for i := range t {
			t[i] = int64(1 + (i*5+3)%23)
		}
		return t
	}())
	clamp := pb.ReadOnlyObject("clamp", func() []int64 {
		t := make([]int64, 256)
		for i := range t {
			v := i - 64
			if v < 0 {
				v = 0
			}
			if v > 127 {
				v = 127
			}
			t[i] = int64(v)
		}
		return t
	}())
	cosTab := pb.ReadOnlyObject("cos_tab", func() []int64 {
		t := make([]int64, 8)
		for i := range t {
			t[i] = int64([8]int{91, 88, 83, 75, 64, 50, 35, 18}[i])
		}
		return t
	}())
	coeffs := pb.ReadOnlyObject("coeffs",
		concat(genSkewed(0xA1, s.N, 14), genSkewed(0xA2, s.N, 20)))
	outbuf := pb.Object("outbuf", 64, nil)
	jsel := pb.ReadOnlyObject("jsel",
		concat(genSelSeq(0xAA, s.N, 12), genSelSeq(0xAB, s.N, 12)))
	mix := addMixer(pb)
	jVariants := addVariantKernels(pb, "huff", 12, 0xAC, clamp, 255, nil, 0)

	// quantize(c, q): divide + clamp-table saturation (group SL_2).
	qz := pb.Func("quantize", 2)
	cc, qq := qz.Param(0), qz.Param(1)
	qHot := qz.NewBlock()
	qExit := qz.NewBlock()
	qv, qb2, qi := qz.NewReg(), qz.NewReg(), qz.NewReg()
	qHot.MulI(qv, cc, 16)
	qHot.Div(qv, qv, qq)
	qHot.AddI(qi, qv, 64)
	qHot.AndI(qi, qi, 255)
	qHot.Lea(qb2, clamp, 0)
	qHot.Add(qb2, qb2, qi)
	qHot.Ld(qv, qb2, 0, clamp)
	qHot.Jmp(qExit.ID())
	qExit.Ret(qv)

	// dct1d(a, b): butterfly pass over the 8 cosine coefficients — a
	// cyclic stateless region on a recurring (a, b) pair domain.
	dc := pb.Func("dct1d", 2)
	da, db := dc.Param(0), dc.Param(1)
	dEntry := dc.NewBlock()
	dHead := dc.NewBlock()
	dBody := dc.NewBlock()
	dLatch := dc.NewBlock()
	dExit := dc.NewBlock()
	acc, k, cb, cw, t1 := dc.NewReg(), dc.NewReg(), dc.NewReg(), dc.NewReg(), dc.NewReg()
	dEntry.MovI(acc, 0)
	dEntry.MovI(k, 0)
	dEntry.Lea(cb, cosTab, 0)
	dHead.BgeI(k, 8, dExit.ID())
	dBody.Add(cw, cb, k)
	dBody.Ld(cw, cw, 0, cosTab)
	dBody.Mul(t1, cw, da)
	dBody.Add(acc, acc, t1)
	dBody.Mul(t1, cw, db)
	dBody.Sub(acc, acc, t1)
	dBody.SraI(acc, acc, 1)
	dLatch.AddI(k, k, 1)
	dLatch.Jmp(dHead.ID())
	dExit.Ret(acc)

	f := pb.Func("main", 1)
	ds := f.Param(0)
	mEntry := f.NewBlock()
	rHead := f.NewBlock()
	jInit := f.NewBlock()
	jHead := f.NewBlock()
	jBody := f.NewBlock()
	jChk := f.NewBlock()
	jLatch := f.NewBlock()
	rLatch := f.NewBlock()
	mExit := f.NewBlock()
	total, rr, j, cbase, cv, qv2, dv, tmp, qsel, ob := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	prev := f.NewReg()
	qb := f.NewReg()
	mrounds := f.NewReg()
	sel, hvv, sbase := f.NewReg(), f.NewReg(), f.NewReg()
	mEntry.MovI(mrounds, 17)
	mEntry.MulI(sbase, ds, int64(s.N))
	mEntry.Lea(tmp, jsel, 0)
	mEntry.Add(sbase, sbase, tmp)
	mEntry.MovI(total, 0)
	mEntry.MovI(rr, 0)
	mEntry.MovI(prev, 0)
	mEntry.MulI(cbase, ds, int64(s.N))
	mEntry.Lea(tmp, coeffs, 0)
	mEntry.Add(cbase, cbase, tmp)
	rHead.BgeI(rr, int64(s.Rounds), mExit.ID())
	jInit.MovI(j, 0)
	jHead.BgeI(j, int64(s.N), rLatch.ID())
	jBody.Add(tmp, cbase, j)
	jBody.Ld(cv, tmp, 0, coeffs)
	jBody.AndI(qsel, j, 63)
	jBody.Lea(qb, quant, 0)
	jBody.Add(qb, qb, qsel)
	jBody.Ld(qsel, qb, 0, quant)
	jBody.Call(qv2, qz.ID(), cv, qsel)
	jBody.Add(total, total, qv2)
	jBody.Call(dv, dc.ID(), cv, prev)
	jBody.Add(total, total, dv)
	jBody.Call(total, mix, total, mrounds)
	jBody.Add(sel, sbase, j)
	jBody.Ld(sel, sel, 0, jsel)
	emitDispatch(f, jBody, jChk.ID(), sel, hvv,
		[8]ir.Reg{sel, cv, sel, cv, sel, cv, sel, cv}, jVariants)
	jChk.Add(total, total, hvv)
	jChk.Mov(prev, cv)
	jLatch.AddI(j, j, 1)
	jLatch.Jmp(jHead.ID())
	rLatch.Lea(ob, outbuf, 0)
	rLatch.AndI(tmp, rr, 63)
	rLatch.Add(ob, ob, tmp)
	rLatch.St(ob, 0, total, outbuf)
	rLatch.AddI(rr, rr, 1)
	rLatch.Jmp(rHead.ID())
	mExit.Ret(total)

	return &Benchmark{
		Name:  "ijpeg",
		Paper: "132.ijpeg",
		Prog:  pb.Build(),
		Train: []int64{DatasetTrain},
		Ref:   []int64{DatasetRef},
		About: "JPEG codec: quantization divides, clamp-table saturation and a cosine butterfly loop over recurring coefficient pairs.",
	}
}

// buildMpeg2 models mpeg2enc: motion estimation compares macroblock rows of
// two frame buffers that change once per encoded frame; within a frame the
// same candidate pairs are compared repeatedly, and quantization divides
// recur on a small value set.
func buildMpeg2(s Scale) *Benchmark {
	pb := ir.NewProgramBuilder("mpeg2enc")
	const frameWords = 256

	mkFrame := func(seed uint64) []int64 {
		return genSkewed(seed, frameWords, 24)
	}
	ref := pb.Object("refframe", frameWords, mkFrame(0xF1))
	cur := pb.Object("curframe", frameWords, mkFrame(0xF2))
	cands := pb.ReadOnlyObject("cands",
		concat(genSkewed(0xC1, s.N, 12), genSkewed(0xC2, s.N, 19)))
	bits := pb.Object("bits", 32, nil)
	msel := pb.ReadOnlyObject("msel",
		concat(genSelSeq(0xBA, s.N, 10), genSelSeq(0xBB, s.N, 10)))
	mix := addMixer(pb)
	mVariants := addVariantKernels(pb, "bitop", 10, 0xBC, cands, 63,
		[]ir.MemID{ref}, 255)

	// sad16(a, b): sum of absolute differences over a 16-pixel row —
	// cyclic MD over both frame buffers.
	sad := pb.Func("sad16", 2)
	pa, pbr := sad.Param(0), sad.Param(1)
	sEntry := sad.NewBlock()
	sHead := sad.NewBlock()
	sBody := sad.NewBlock()
	sLatch := sad.NewBlock()
	sNeg := sad.NewBlock()
	sExit := sad.NewBlock()
	acc, k, va, vb, d := sad.NewReg(), sad.NewReg(), sad.NewReg(), sad.NewReg(), sad.NewReg()
	t1, t2 := sad.NewReg(), sad.NewReg()
	sEntry.MovI(acc, 0)
	sEntry.MovI(k, 0)
	sHead.BgeI(k, 16, sExit.ID())
	sBody.Add(t1, pa, k)
	sBody.Ld(va, t1, 0, cur)
	sBody.Add(t2, pbr, k)
	sBody.Ld(vb, t2, 0, ref)
	sBody.Sub(d, va, vb)
	sBody.BltI(d, 0, sNeg.ID())
	sLatch.Add(acc, acc, d)
	sLatch.AddI(k, k, 1)
	sLatch.Jmp(sHead.ID())
	sNeg.Sub(d, k, d) // d = -d without a zero register
	sNeg.Sub(d, d, k)
	sNeg.Jmp(sLatch.ID())
	sExit.Ret(acc)

	// quantDiv(level): divide by a recurring quantizer step.
	qd := pb.Func("quant_div", 1)
	lv := qd.Param(0)
	qEntry := qd.NewBlock()
	qHot := qd.NewBlock()
	qExit := qd.NewBlock()
	qi, qv := qd.NewReg(), qd.NewReg()
	qEntry.AndI(qi, lv, 31)
	qHot.AddI(qv, qi, 2)
	qHot.MulI(qi, qi, 100)
	qHot.Div(qv, qi, qv)
	qHot.RemI(qi, qv, 17)
	qHot.Add(qv, qv, qi)
	qHot.Jmp(qExit.ID())
	qExit.Ret(qv)

	f := pb.Func("main", 1)
	ds := f.Param(0)
	mEntry := f.NewBlock()
	rHead := f.NewBlock()
	jInit := f.NewBlock()
	jHead := f.NewBlock()
	jBody := f.NewBlock()
	jChk := f.NewBlock()
	jLatch := f.NewBlock()
	rFrame := f.NewBlock()
	mExit := f.NewBlock()
	total, rr, j, cbase2, cnd, pa2, pb2, sv, qv2, tmp := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	fb, bb := f.NewReg(), f.NewReg()
	mrounds := f.NewReg()
	sel, dvv, sbase := f.NewReg(), f.NewReg(), f.NewReg()
	mEntry.MovI(mrounds, 42)
	mEntry.MulI(sbase, ds, int64(s.N))
	mEntry.Lea(tmp, msel, 0)
	mEntry.Add(sbase, sbase, tmp)
	mEntry.MovI(total, 0)
	mEntry.MovI(rr, 0)
	mEntry.MulI(cbase2, ds, int64(s.N))
	mEntry.Lea(tmp, cands, 0)
	mEntry.Add(cbase2, cbase2, tmp)
	rHead.BgeI(rr, int64(s.Rounds), mExit.ID())
	jInit.MovI(j, 0)
	jHead.BgeI(j, 128, rFrame.ID())
	jBody.AndI(tmp, j, int64(s.N-1))
	jBody.Add(tmp, cbase2, tmp)
	jBody.Ld(cnd, tmp, 0, cands)
	jBody.ShlI(pa2, cnd, 4)
	jBody.AndI(pa2, pa2, int64(frameWords-16-1))
	jBody.Lea(tmp, cur, 0)
	jBody.Add(pa2, tmp, pa2)
	jBody.MulI(pb2, cnd, 24)
	jBody.AndI(pb2, pb2, int64(frameWords-16-1))
	jBody.Lea(tmp, ref, 0)
	jBody.Add(pb2, tmp, pb2)
	jBody.Call(sv, sad.ID(), pa2, pb2)
	jBody.Add(total, total, sv)
	jBody.Call(qv2, qd.ID(), sv)
	jBody.Add(total, total, qv2)
	jBody.Call(total, mix, total, mrounds)
	jBody.AndI(sel, j, int64(s.N-1))
	jBody.Add(sel, sbase, sel)
	jBody.Ld(sel, sel, 0, msel)
	emitDispatch(f, jBody, jChk.ID(), sel, dvv,
		[8]ir.Reg{sel, cnd, sel, cnd, sel, cnd, sel, cnd}, mVariants)
	jChk.Add(total, total, dvv)
	jLatch.AddI(j, j, 1)
	jLatch.Jmp(jHead.ID())
	// Frame boundary: motion-compensate a few pixels into both buffers.
	rFrame.Lea(fb, cur, 0)
	rFrame.AndI(tmp, rr, int64(frameWords-1))
	rFrame.Add(fb, fb, tmp)
	rFrame.St(fb, 0, total, cur)
	rFrame.Lea(fb, ref, 0)
	rFrame.AndI(tmp, total, int64(frameWords-1))
	rFrame.Add(fb, fb, tmp)
	rFrame.St(fb, 0, rr, ref)
	rFrame.Lea(bb, bits, 0)
	rFrame.AndI(tmp, rr, 31)
	rFrame.Add(bb, bb, tmp)
	rFrame.St(bb, 0, total, bits)
	rFrame.AddI(rr, rr, 1)
	rFrame.Jmp(rHead.ID())
	mExit.Ret(total)

	return &Benchmark{
		Name:  "mpeg2enc",
		Paper: "mpeg2enc",
		Prog:  pb.Build(),
		Train: []int64{DatasetTrain},
		Ref:   []int64{DatasetRef},
		About: "Video encoder: 16-pixel SAD search over two frame buffers mutated at frame boundaries, plus quantizer divides on a small level set.",
	}
}

// buildVortex models 147.vortex: an object database whose validation pass
// walks object descriptors against a read-only schema. The same objects
// are validated repeatedly between rare updates, giving strong
// memory-dependent reuse.
func buildVortex(s Scale) *Benchmark {
	pb := ir.NewProgramBuilder("vortex")
	const objects, fields = 12, 6

	db := pb.Object("db", objects*fields, func() []int64 {
		t := make([]int64, objects*fields)
		r := newRNG(0xD1)
		for i := range t {
			t[i] = int64(r.intn(50))
		}
		return t
	}())
	schema := pb.ReadOnlyObject("schema", func() []int64 {
		t := make([]int64, fields)
		for i := range t {
			t[i] = int64(10 + i*9)
		}
		return t
	}())
	queries := pb.ReadOnlyObject("queries",
		concat(genSkewed(0xE1, s.N, objects), genSkewed(0xE2, s.N, objects)))
	log := pb.Object("log", 64, nil)
	selseq := pb.ReadOnlyObject("selseq",
		concat(genSelSeq(0x3A, s.N, 24), genSelSeq(0x3B, s.N, 24)))
	mix := addMixer(pb)
	wide := addWideScan(pb, db, 63)
	variants := addVariantKernels(pb, "check", 24, 0x3C, schema, 3,
		[]ir.MemID{db}, 63)

	// validate(obase): check each field of one object against the
	// schema bound — cyclic MD over db + read-only schema.
	vd := pb.Func("validate", 1)
	obase := vd.Param(0)
	vEntry := vd.NewBlock()
	vHead := vd.NewBlock()
	vBody := vd.NewBlock()
	vBad := vd.NewBlock()
	vLatch := vd.NewBlock()
	vExit := vd.NewBlock()
	bad, k, fv, sb2, sv := vd.NewReg(), vd.NewReg(), vd.NewReg(), vd.NewReg(), vd.NewReg()
	p := vd.NewReg()
	vEntry.MovI(bad, 0)
	vEntry.MovI(k, 0)
	vEntry.Lea(sb2, schema, 0)
	vHead.BgeI(k, fields, vExit.ID())
	vBody.Add(p, obase, k)
	vBody.Ld(fv, p, 0, db)
	vBody.Add(p, sb2, k)
	vBody.Ld(sv, p, 0, schema)
	vBody.Ble(fv, sv, vLatch.ID())
	vBad.AddI(bad, bad, 1)
	vLatch.AddI(k, k, 1)
	vLatch.Jmp(vHead.ID())
	vExit.Ret(bad)

	// hashKey(q): stateless hash-index kernel.
	hk := pb.Func("hash_key", 1)
	q := hk.Param(0)
	kHot := hk.NewBlock()
	kExit := hk.NewBlock()
	h, t := hk.NewReg(), hk.NewReg()
	kHot.MulI(h, q, 2654435)
	kHot.ShrI(t, h, 8)
	kHot.Xor(h, h, t)
	kHot.AndI(h, h, 1023)
	kHot.Jmp(kExit.ID())
	kExit.Ret(h)

	f := pb.Func("main", 1)
	ds := f.Param(0)
	mEntry := f.NewBlock()
	rHead := f.NewBlock()
	jInit := f.NewBlock()
	jHead := f.NewBlock()
	jBody := f.NewBlock()
	jChk := f.NewBlock()
	jUpd := f.NewBlock()
	jLatch := f.NewBlock()
	rLatch := f.NewBlock()
	mExit := f.NewBlock()
	total, rr, j, qbase, qv, ob2, bv, hv, tmp, lb := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	dbb := f.NewReg()
	mrounds := f.NewReg()
	w1, w2 := f.NewReg(), f.NewReg()
	sel, dv, sbase := f.NewReg(), f.NewReg(), f.NewReg()
	mEntry.MovI(mrounds, 3)
	mEntry.MulI(sbase, ds, int64(s.N))
	mEntry.Lea(tmp, selseq, 0)
	mEntry.Add(sbase, sbase, tmp)
	mEntry.MovI(total, 0)
	mEntry.MovI(rr, 0)
	mEntry.MulI(qbase, ds, int64(s.N))
	mEntry.Lea(tmp, queries, 0)
	mEntry.Add(qbase, qbase, tmp)
	rHead.BgeI(rr, int64(s.Rounds), mExit.ID())
	jInit.MovI(j, 0)
	jHead.BgeI(j, int64(s.N), rLatch.ID())
	jBody.Add(tmp, qbase, j)
	jBody.Ld(qv, tmp, 0, queries)
	jBody.MulI(ob2, qv, fields)
	jBody.Lea(tmp, db, 0)
	jBody.Add(ob2, tmp, ob2)
	jBody.Call(bv, vd.ID(), ob2)
	jBody.Add(total, total, bv)
	jBody.Call(hv, hk.ID(), qv)
	jBody.Add(total, total, hv)
	jBody.Call(total, mix, total, mrounds)
	// Index-consistency sweep with a wide recurring interface.
	jBody.AndI(w1, qv, 7)
	jBody.AddI(w2, qv, 1)
	jBody.AndI(w2, w2, 7)
	jBody.Call(bv, wide, w1, w2, qv, w1, w2, qv)
	jBody.Add(total, total, bv)
	// Per-attribute consistency checks.
	jBody.Add(sel, sbase, j)
	jBody.Ld(sel, sel, 0, selseq)
	emitDispatch(f, jBody, jChk.ID(), sel, dv,
		[8]ir.Reg{sel, qv, w1, w2, qv, sel, w1, w2}, variants)
	jChk.Add(total, total, dv)
	jChk.RemI(tmp, j, int64(s.N/2+1))
	jChk.BneI(tmp, int64(s.N/2), jLatch.ID())
	// Rare database update.
	jUpd.Lea(dbb, db, 0)
	jUpd.AndI(tmp, total, int64(objects*fields-1))
	jUpd.Add(dbb, dbb, tmp)
	jUpd.St(dbb, 0, rr, db)
	jLatch.AddI(j, j, 1)
	jLatch.Jmp(jHead.ID())
	rLatch.Lea(lb, log, 0)
	rLatch.AndI(tmp, rr, 63)
	rLatch.Add(lb, lb, tmp)
	rLatch.St(lb, 0, total, log)
	rLatch.AddI(rr, rr, 1)
	rLatch.Jmp(rHead.ID())
	mExit.Ret(total)

	return &Benchmark{
		Name:  "vortex",
		Paper: "147.vortex",
		Prog:  pb.Build(),
		Train: []int64{DatasetTrain},
		Ref:   []int64{DatasetRef},
		About: "Object database: per-query descriptor validation against a read-only schema with rare updates — strong cyclic MD reuse.",
	}
}
