package workloads

import "ccr/internal/ir"

func init() { register("pgpencode", buildPGP) }

// buildPGP models pgpencode: armor (radix-64) encoding of byte triples plus
// modular-arithmetic mixing. The encode region's input tuples are drawn
// from a moderately wide recurring set, so — as the paper observes — its
// computations have "considerable dynamic variation" and the benchmark
// benefits strongly from more computation instances per entry.
func buildPGP(s Scale) *Benchmark {
	pb := ir.NewProgramBuilder("pgpencode")

	// b64: the radix-64 alphabet as small integers.
	alpha := make([]int64, 64)
	for i := range alpha {
		alpha[i] = int64((i*37 + 5) & 127)
	}
	b64 := pb.ReadOnlyObject("b64", alpha)
	// Input byte triples: skewed per-component values whose joint
	// distribution is concentrated enough to pass the formation
	// heuristics yet long-tailed across a few dozen tuples, so more
	// computation instances keep capturing more encodes — the
	// "considerable dynamic variation" the paper attributes to
	// pgpencode's stateless regions.
	mkBytes := func(seed uint64, c1, c2, c3 int) []int64 {
		out := make([]int64, s.N*3)
		r := newRNG(seed)
		pick := func(card int) int64 {
			v := 0
			for v < card-1 && r.intn(100) < 45 {
				v++
			}
			return int64(v)
		}
		for i := 0; i < s.N; i++ {
			out[3*i] = pick(c1) * 17 % 251
			out[3*i+1] = pick(c2) * 29 % 251
			out[3*i+2] = pick(c3) * 43 % 251
		}
		return out
	}
	bytesIn := pb.ReadOnlyObject("bytes",
		concat(mkBytes(0xB1, 4, 3, 2), mkBytes(0xB2, 5, 4, 3)))
	armor := pb.Object("armor", 128, nil)
	psel := pb.ReadOnlyObject("psel",
		concat(genSelSeq(0xDA, s.N, 10), genSelSeq(0xDB, s.N, 10)))
	mix := addMixer(pb)
	pVariants := addVariantKernels(pb, "armop", 10, 0xDC, b64, 63,
		[]ir.MemID{armor}, 127)

	// encodeGroup(b1, b2, b3): pack three bytes, emit four alphabet
	// values combined into one word — a stateless region with three
	// register inputs (group SL_3-like; the alphabet is static data).
	eg := pb.Func("encode_group", 3)
	x1, x2, x3 := eg.Param(0), eg.Param(1), eg.Param(2)
	gHot := eg.NewBlock()
	gExit := eg.NewBlock()
	pack, acc, t, ab := eg.NewReg(), eg.NewReg(), eg.NewReg(), eg.NewReg()
	gHot.ShlI(pack, x1, 16)
	gHot.ShlI(t, x2, 8)
	gHot.Or(pack, pack, t)
	gHot.Or(pack, pack, x3)
	gHot.Lea(ab, b64, 0)
	gHot.MovI(acc, 0)
	for _, sh := range []int64{18, 12, 6, 0} {
		u := eg.NewReg()
		gHot.ShrI(u, pack, sh)
		gHot.AndI(u, u, 63)
		gHot.Add(u, ab, u)
		gHot.Ld(u, u, 0, b64)
		gHot.ShlI(acc, acc, 7)
		gHot.Or(acc, acc, u)
	}
	gHot.Jmp(gExit.ID())
	gExit.Ret(acc)

	// mulMod(a, b): (a*b) mod 8191 then a square-and-mask mix — division
	// and multiplication issue to the multi-cycle units, so reusing this
	// region removes expensive operations.
	mm := pb.Func("mul_mod", 2)
	a, b := mm.Param(0), mm.Param(1)
	mHot := mm.NewBlock()
	mExit2 := mm.NewBlock()
	z, w := mm.NewReg(), mm.NewReg()
	mHot.Mul(z, a, b)
	mHot.RemI(z, z, 8191)
	mHot.Mul(w, z, z)
	mHot.RemI(w, w, 127)
	mHot.Add(z, z, w)
	mHot.Jmp(mExit2.ID())
	mExit2.Ret(z)

	f := pb.Func("main", 1)
	ds := f.Param(0)
	mEntry := f.NewBlock()
	rHead := f.NewBlock()
	jInit := f.NewBlock()
	jHead := f.NewBlock()
	jBody := f.NewBlock()
	jChk := f.NewBlock()
	jLatch := f.NewBlock()
	rLatch := f.NewBlock()
	mExit := f.NewBlock()
	total, rr, j, bbase, p, v1, v2, v3, grp, mixed := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	tmp, ob, key := f.NewReg(), f.NewReg(), f.NewReg()
	mrounds := f.NewReg()
	sel, dv, sbase := f.NewReg(), f.NewReg(), f.NewReg()
	mEntry.MovI(mrounds, 4)
	mEntry.MulI(sbase, ds, int64(s.N))
	mEntry.Lea(tmp, psel, 0)
	mEntry.Add(sbase, sbase, tmp)
	mEntry.MovI(total, 0)
	mEntry.MovI(rr, 0)
	mEntry.MovI(key, 77)
	mEntry.MulI(bbase, ds, int64(s.N*3))
	mEntry.Lea(tmp, bytesIn, 0)
	mEntry.Add(bbase, bbase, tmp)
	rHead.BgeI(rr, int64(s.Rounds), mExit.ID())
	jInit.MovI(j, 0)
	jHead.BgeI(j, int64(s.N), rLatch.ID())
	jBody.MulI(p, j, 3)
	jBody.Add(p, bbase, p)
	jBody.Ld(v1, p, 0, bytesIn)
	jBody.Ld(v2, p, 1, bytesIn)
	jBody.Ld(v3, p, 2, bytesIn)
	jBody.Call(grp, eg.ID(), v1, v2, v3)
	jBody.Add(total, total, grp)
	jBody.AndI(tmp, grp, 15)
	jBody.Call(mixed, mm.ID(), key, tmp)
	jBody.Add(total, total, mixed)
	jBody.Call(total, mix, total, mrounds)
	jBody.Add(sel, sbase, j)
	jBody.Ld(sel, sel, 0, psel)
	emitDispatch(f, jBody, jChk.ID(), sel, dv,
		[8]ir.Reg{sel, v1, sel, v2, sel, v3, sel, v1}, pVariants)
	jChk.Add(total, total, dv)
	jLatch.AddI(j, j, 1)
	jLatch.Jmp(jHead.ID())
	rLatch.Lea(ob, armor, 0)
	rLatch.AndI(tmp, rr, 127)
	rLatch.Add(ob, ob, tmp)
	rLatch.St(ob, 0, total, armor)
	rLatch.AddI(rr, rr, 1)
	rLatch.Jmp(rHead.ID())
	mExit.Ret(total)

	return &Benchmark{
		Name:  "pgpencode",
		Paper: "pgpencode",
		Prog:  pb.Build(),
		Train: []int64{DatasetTrain},
		Ref:   []int64{DatasetRef},
		About: "Armor encoder: radix-64 triple encoding with a wide recurring input-tuple set (CI-count sensitive) plus modular multiply mixing on the multi-cycle units.",
	}
}
