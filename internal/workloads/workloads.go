// Package workloads provides the benchmark suite of the reproduction: 13
// synthetic IR programs named after the paper's SPECINT92/95, UNIX and
// MediaBench programs (§5.1). The originals are proprietary; each synthetic
// program reconstructs the kernels and the value-locality structure the
// paper attributes to its namesake, so the CRB sweeps reproduce the same
// qualitative shapes:
//
//   - 124.m88ksim: a breakpoint-table scan (the paper's Figure 3 ckbrkpts
//     example) and a read-only decode table — few, large, hot cyclic
//     regions ⇒ the biggest speedup of the suite.
//   - pgpencode: radix-64 group encoding with a wide set of recurring
//     input tuples ⇒ most sensitive to the number of computation
//     instances per entry.
//   - 129.compress: hash-table updates poison most memory reuse; many
//     equally-weighted small regions ⇒ flat TOP-N distribution, small
//     speedup.
//   - lex/yacc: table-driven automata on small (state, symbol) domains ⇒
//     strong stateless reuse.
//
// Every program embeds a training and a reference input data set in its
// memory image; main's first argument selects the data set, so the same
// (transformed) program text serves both the training and reference runs
// of Figure 11.
package workloads

import (
	"fmt"
	"sort"
	"strings"

	"ccr/internal/ir"
)

// DatasetTrain and DatasetRef select the embedded input set via main's
// first argument.
const (
	DatasetTrain int64 = 0
	DatasetRef   int64 = 1
)

// Scale sets workload sizes: N is the input element count, Rounds the
// outer repetition count. Dynamic instruction counts grow roughly with
// N × Rounds.
type Scale struct {
	N      int
	Rounds int
}

// Predefined scales: Tiny keeps unit tests fast, Small suits integration
// tests, Medium drives the paper-figure regeneration, Large stresses.
var (
	Tiny   = Scale{N: 64, Rounds: 6}
	Small  = Scale{N: 256, Rounds: 12}
	Medium = Scale{N: 1024, Rounds: 24}
	Large  = Scale{N: 4096, Rounds: 48}
)

// Benchmark is one ready-to-run workload.
type Benchmark struct {
	Name string
	// Paper is the benchmark's name in the paper's figures.
	Paper string
	// Prog is the base (untransformed) program.
	Prog *ir.Program
	// Train and Ref are the main() argument vectors for the training and
	// reference inputs.
	Train, Ref []int64
	// About describes what the synthetic program models.
	About string
}

type builder func(s Scale) *Benchmark

var registry = map[string]builder{}

func register(name string, b builder) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workloads: duplicate benchmark %q", name))
	}
	registry[name] = b
}

// Names returns the registered benchmark names in the paper's figure order.
func Names() []string {
	order := []string{
		"espresso", "sc", "go", "m88ksim", "gcc", "compress",
		"li", "ijpeg", "vortex", "lex", "yacc", "mpeg2enc", "pgpencode",
	}
	seen := map[string]bool{}
	var out []string
	for _, n := range order {
		if _, ok := registry[n]; ok {
			out = append(out, n)
			seen[n] = true
		}
	}
	// Defensive: include any extras deterministically.
	var extra []string
	for n := range registry {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// Lookup builds the named benchmark at the given scale, returning an
// error naming the known benchmarks when the name is unknown — the
// CLI-facing counterpart of Load.
func Lookup(name string, s Scale) (*Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown benchmark %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	bench := b(s)
	ir.MustVerify(bench.Prog)
	return bench, nil
}

// Load builds the named benchmark at the given scale. It panics on unknown
// names, so it suits tests and internal callers with static names; CLI
// paths should use Lookup and surface the error.
func Load(name string, s Scale) *Benchmark {
	bench, err := Lookup(name, s)
	if err != nil {
		panic(err.Error())
	}
	return bench
}

// ParseScale maps a CLI scale name (tiny, small, medium, large) to its
// Scale.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	}
	return Scale{}, fmt.Errorf("workloads: unknown scale %q (known: tiny, small, medium, large)", name)
}

// All builds every registered benchmark at the given scale.
func All(s Scale) []*Benchmark {
	names := Names()
	out := make([]*Benchmark, 0, len(names))
	for _, n := range names {
		out = append(out, Load(n, s))
	}
	return out
}

// rng is a splitmix64 generator for deterministic synthetic data.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// skewed draws values from a domain of `card` distinct values with a
// geometric skew: low indices dominate, approximating the skewed value
// profiles the paper's value-locality studies report.
func (r *rng) skewed(card int) int {
	if card <= 1 {
		return 0
	}
	v := 0
	for v < card-1 && r.intn(100) < 58 {
		v++
	}
	// Mix so that "hot" values are not simply 0..k in order.
	return (v * 7) % card
}

// genSkewed fills a slice with n values drawn from card distinct values
// (0..card-1 remapped through a per-seed permutation) with geometric skew.
func genSkewed(seed uint64, n, card int) []int64 {
	r := newRNG(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(r.skewed(card))
	}
	return out
}

// genUniform fills a slice with n uniform values in [0, card).
func genUniform(seed uint64, n, card int) []int64 {
	r := newRNG(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(r.intn(card))
	}
	return out
}

// concat embeds the training set followed by the reference set in one
// object image; kernels index with base = dataset * len(train).
func concat(train, ref []int64) []int64 {
	out := make([]int64, 0, len(train)+len(ref))
	out = append(out, train...)
	out = append(out, ref...)
	return out
}

// addMixer adds the shared "mix" function: mix(seed, rounds) models the
// bulk of program execution that block- and region-level reuse cannot
// capture. Each iteration narrows the running seed into a small-domain
// value and computes on it — so most *individual* instructions repeat
// their inputs (the instruction-level repetition the paper's §5.2 scalar
// divides by), while the iteration's accumulator chain keeps the block-
// and loop-level signatures unique, leaving nothing for the CCR (or any
// coarse-grained scheme) to exploit. This reproduces the gap between
// high instruction repetition and much lower coarse-grain reusability
// that motivates the paper.
func addMixer(pb *ir.ProgramBuilder) ir.FuncID {
	f := pb.Func("mix", 2)
	a, n := f.Param(0), f.Param(1)
	entry := f.NewBlock()
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	i, t, v, w := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	entry.MovI(i, 0)
	head.Bge(i, n, exit.ID())
	// Narrow the unique seed (these two do not repeat)...
	body.ShrI(t, a, 9)
	body.AndI(v, t, 15)
	// ...then compute on the narrow value (these repeat individually).
	body.MulI(w, v, 13)
	body.AddI(w, w, 7)
	body.Xor(w, w, v)
	body.ShlI(v, v, 2)
	body.Add(w, w, v)
	body.MulI(t, v, 21)
	body.XorI(t, t, 5)
	body.Add(w, w, t)
	body.SraI(t, w, 3)
	body.AndI(t, t, 63)
	body.Add(w, w, t)
	// Fold back into the unique accumulator (does not repeat).
	body.Add(a, a, w)
	body.Add(a, a, i)
	body.AddI(i, i, 1)
	body.Jmp(head.ID())
	exit.Ret(a)
	return f.ID()
}

// addWideScan adds the shared "wide_scan" function: a table scan whose
// invocation inputs recur (so it counts as region-level reuse potential in
// the Figure 4 limit study) but whose live-in register set exceeds the
// eight-entry computation-instance bank, so RCR formation must reject it —
// the gap between reuse potential and exploitable reuse that separates the
// paper's Figure 4 from its Figure 8 speedups.
func addWideScan(pb *ir.ProgramBuilder, tab ir.MemID, mask int64) ir.FuncID {
	f := pb.Func("wide_scan", 6)
	x1, x2, x3, x4, x5, x6 := f.Param(0), f.Param(1), f.Param(2), f.Param(3), f.Param(4), f.Param(5)
	entry := f.NewBlock()
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	acc, i, base, p, v, t := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	entry.MovI(acc, 0)
	entry.MovI(i, 0)
	entry.Lea(base, tab, 0)
	head.BgeI(i, 8, exit.ID())
	body.Add(p, x1, i)
	body.AndI(p, p, mask)
	body.Add(p, base, p)
	body.Ld(v, p, 0, tab)
	body.Add(acc, acc, v)
	body.Add(t, x2, x3)
	body.Add(acc, acc, t)
	body.Xor(t, x4, x5)
	body.Add(acc, acc, t)
	body.Add(acc, acc, x6)
	body.AddI(i, i, 1)
	body.Jmp(head.ID())
	exit.Ret(acc)
	return f.ID()
}

// variantSpec controls one generated kernel family member.
type variantSpec struct {
	inputs  int // register inputs used: 1..8
	memObjs int // writable objects read: 0 (stateless), 1..3
	size    int // approximate body size in instructions
}

// addVariantKernels generates a family of n small kernel functions —
// the many similarly-shaped case handlers a large program (compiler,
// database, interpreter) dispatches over. Variants differ in constants,
// register-input counts (1..8, populating the SL_4/SL_6/SL_8 groups of
// Figure 9) and memory dependence (reading roTab or the writable wrTabs,
// populating the MD groups). Families of this size are what give a
// 32-entry CRB real conflict pressure in Figure 8(b).
//
// Every variant takes 8 parameters (callers pass mixes of the dispatch
// value); variant i only *uses* its first inputs(i) of them, so the
// region interfaces differ.
func addVariantKernels(pb *ir.ProgramBuilder, prefix string, n int, seed uint64,
	roTab ir.MemID, roMask int64, wrTabs []ir.MemID, wrMask int64) []ir.FuncID {
	r := newRNG(seed)
	ids := make([]ir.FuncID, n)
	for i := 0; i < n; i++ {
		spec := variantSpec{
			inputs: 1 + r.intn(3),
			size:   8 + r.intn(8),
		}
		switch {
		case r.intn(100) < 14:
			spec.inputs = 5 + r.intn(2) // SL_6 band
		case r.intn(100) < 10:
			spec.inputs = 7 + r.intn(2) // SL_8 band
		}
		if len(wrTabs) > 0 {
			switch {
			case r.intn(100) < 34:
				spec.memObjs = 1
			case r.intn(100) < 16:
				spec.memObjs = 2 + r.intn(2)
			}
		}
		ids[i] = addVariant(pb, fmt.Sprintf("%s_%02d", prefix, i), spec,
			int64(r.intn(251))+3, roTab, roMask, wrTabs, wrMask)
	}
	return ids
}

func addVariant(pb *ir.ProgramBuilder, name string, spec variantSpec, c int64,
	roTab ir.MemID, roMask int64, wrTabs []ir.MemID, wrMask int64) ir.FuncID {
	f := pb.Func(name, 8)
	hot := f.NewBlock()
	exit := f.NewBlock()
	acc, t := f.NewReg(), f.NewReg()
	// The table lookups are driven by the first (stable) parameter so
	// the variant's high-invariance prefix stays long even when its
	// trailing parameters carry medium-variety values.
	hot.MulI(acc, f.Param(0), c)
	lookup := func(tab ir.MemID, mask int64) {
		b := f.NewReg()
		hot.AndI(t, acc, mask)
		hot.Lea(b, tab, 0)
		hot.Add(b, b, t)
		hot.Ld(t, b, 0, tab)
		hot.Add(acc, acc, t)
	}
	lookup(roTab, roMask)
	for m := 0; m < spec.memObjs && m < len(wrTabs); m++ {
		lookup(wrTabs[m], wrMask)
	}
	emitted := 1 + 5*(1+spec.memObjs)
	for emitted+2*(spec.inputs-1) < spec.size {
		hot.ShlI(t, acc, (int64(emitted)%5)+1)
		hot.Xor(acc, acc, t)
		emitted += 2
	}
	for k := 1; k < spec.inputs; k++ {
		hot.Add(acc, acc, f.Param(k))
		hot.XorI(acc, acc, c+int64(k))
	}
	hot.Jmp(exit.ID())
	exit.Ret(acc)
	return f.ID()
}

// emitDispatch appends, after block `from`, a compare-and-call chain that
// invokes variants[sel % len] with the eight argument registers, placing
// the result in dest and continuing at `cont`. It creates 2·n blocks in
// layout order (test, call, test, call, …), so the caller must invoke it
// exactly where the chain belongs. The chain itself is unreusable
// control-flow glue — the case-dispatch overhead every large program
// carries.
func emitDispatch(f *ir.FuncBuilder, from *ir.BlockBuilder, cont ir.BlockID,
	sel, dest ir.Reg, args [8]ir.Reg, variants []ir.FuncID) {
	n := len(variants)
	idx := f.NewReg()
	from.RemI(idx, sel, int64(n))
	type pair struct{ test, call *ir.BlockBuilder }
	cases := make([]pair, n)
	for i := range cases {
		cases[i] = pair{test: f.NewBlock(), call: f.NewBlock()}
	}
	from.Jmp(cases[0].test.ID())
	for i, cb := range cases {
		if i+1 < n {
			cb.test.BneI(idx, int64(i), cases[i+1].test.ID())
		} else {
			cb.test.Nop() // last case: unconditional
		}
		cb.call.Call(dest, variants[i], args[0], args[1], args[2], args[3],
			args[4], args[5], args[6], args[7])
		cb.call.Jmp(cont)
	}
}

// genSelSeq draws dispatch selectors over [0, n): a skewed head (60 %)
// over the first 16 values plus a uniform plateau (40 %) so every variant
// stays warm enough to be formed while the hot few dominate.
func genSelSeq(seed uint64, count, n int) []int64 {
	r := newRNG(seed)
	out := make([]int64, count)
	head := 16
	if head > n {
		head = n
	}
	for i := range out {
		if r.intn(100) < 30 {
			out[i] = int64(r.skewed(head))
		} else {
			out[i] = int64(r.intn(n))
		}
	}
	return out
}
