// Package xform realizes region-formation plans: it rewrites the base
// program into the CCR form, inserting a reuse instruction at each region's
// inception point, marking live-out definitions and region end/exit points
// with the ISA extension attributes, and placing computation-invalidate
// instructions after every store that may write a region-registered memory
// object (paper §3.2 and §4).
package xform

import (
	"fmt"
	"sort"

	"ccr/internal/ir"
	"ccr/internal/region"
)

// Transform clones base and rewrites it according to plans. The clone is
// linked and ready to execute; base and the plans are left untouched.
// Region identifiers are assigned in plan order.
func Transform(base *ir.Program, plans []*region.Plan) (*ir.Program, error) {
	p := base.Clone()
	p.Regions = nil

	// Work on private copies: function-level splitting remaps the plans'
	// block references.
	work := make([]*region.Plan, len(plans))
	for i, pl := range plans {
		cp := *pl
		cp.Blocks = append([]ir.BlockID(nil), pl.Blocks...)
		cp.Inputs = append([]ir.Reg(nil), pl.Inputs...)
		cp.Outputs = append([]ir.Reg(nil), pl.Outputs...)
		cp.MemObjects = append([]ir.MemID(nil), pl.MemObjects...)
		work[i] = &cp
	}

	byFunc := map[ir.FuncID][]*planned{}
	rawByFunc := map[ir.FuncID][]*region.Plan{}
	for i, pl := range work {
		byFunc[pl.Func] = append(byFunc[pl.Func], &planned{plan: pl, id: ir.RegionID(i)})
		rawByFunc[pl.Func] = append(rawByFunc[pl.Func], pl)
	}
	// Give every function-level call site its own basic block before the
	// layout pass runs.
	for fid, fplans := range rawByFunc {
		if err := splitFuncLevelCalls(p.Func(fid), fplans); err != nil {
			return nil, fmt.Errorf("xform: %s: %w", p.Func(fid).Name, err)
		}
	}
	regions := make([]*ir.Region, len(plans))
	for _, f := range p.Funcs {
		fps := byFunc[f.ID]
		if len(fps) == 0 {
			continue
		}
		if err := rewriteFunc(p, f, fps, regions); err != nil {
			return nil, fmt.Errorf("xform: %s: %w", f.Name, err)
		}
	}
	p.Regions = regions
	// Plans may touch only some functions; regions slice must be dense.
	for i, r := range regions {
		if r == nil {
			return nil, fmt.Errorf("xform: plan %d produced no region", i)
		}
	}
	placeInvalidations(p)
	p.Link()
	if err := ir.Verify(p); err != nil {
		return nil, fmt.Errorf("xform: transformed program invalid: %w", err)
	}
	return p, nil
}

type planned struct {
	plan *region.Plan
	id   ir.RegionID
	// inceptionNew is the new BlockID of the inserted inception block.
	inceptionNew ir.BlockID
}

// canFallThrough reports whether control can flow off the end of the block
// into the next one.
func canFallThrough(b *ir.Block) bool {
	t := b.Terminator()
	return t == nil || (t.Op != ir.Jmp && t.Op != ir.Ret)
}

func rewriteFunc(p *ir.Program, f *ir.Func, fps []*planned, regions []*ir.Region) error {
	entryPlan := map[ir.BlockID]*planned{}
	memberPlan := map[ir.BlockID]*planned{}
	for _, fp := range fps {
		if prev, dup := entryPlan[fp.plan.Entry]; dup {
			return fmt.Errorf("plans %d and %d share entry b%d", prev.id, fp.id, fp.plan.Entry)
		}
		entryPlan[fp.plan.Entry] = fp
		for _, b := range fp.plan.Blocks {
			if prev, dup := memberPlan[b]; dup {
				return fmt.Errorf("plans %d and %d overlap at b%d", prev.id, fp.id, b)
			}
			memberPlan[b] = fp
		}
	}

	// Pass 1: decide the new layout. Before each region entry we insert
	// the inception block; if the physically preceding block is a member
	// of the same region and can fall through into the entry (an internal
	// edge, e.g. a cyclic region whose latch precedes its header), a
	// trampoline jump is inserted so the internal edge bypasses the reuse
	// instruction.
	type item struct {
		kind  int // 0 = original, 1 = inception, 2 = trampoline
		orig  ir.BlockID
		fp    *planned
		tramp ir.BlockID // trampoline jump target (original entry ID)
	}
	var layout []item
	for _, b := range f.Blocks {
		if fp := entryPlan[b.ID]; fp != nil {
			if b.ID > 0 {
				prev := f.Blocks[b.ID-1]
				if memberPlan[prev.ID] == fp && canFallThrough(prev) {
					layout = append(layout, item{kind: 2, fp: fp, tramp: b.ID})
				}
			}
			layout = append(layout, item{kind: 1, fp: fp})
		}
		layout = append(layout, item{kind: 0, orig: b.ID})
	}
	newID := map[ir.BlockID]ir.BlockID{}
	for i, it := range layout {
		if it.kind == 0 {
			newID[it.orig] = ir.BlockID(i)
		} else if it.kind == 1 {
			it.fp.inceptionNew = ir.BlockID(i)
		}
	}

	// landing returns where external control transfers to original block
	// T now arrive: the inception block when T is a region entry.
	landing := func(t ir.BlockID) ir.BlockID {
		if fp := entryPlan[t]; fp != nil {
			return fp.inceptionNew
		}
		return newID[t]
	}

	// Pass 2: materialize the new block list with rewritten targets.
	newBlocks := make([]*ir.Block, len(layout))
	for i, it := range layout {
		nb := &ir.Block{ID: ir.BlockID(i)}
		switch it.kind {
		case 1: // inception
			cont := it.fp.plan.Continuation
			nb.Instrs = []ir.Instr{{
				Op:     ir.Reuse,
				Region: it.fp.id,
				Target: landing(cont),
				Mem:    ir.NoMem,
			}}
		case 2: // trampoline: internal edge straight to the entry block
			nb.Instrs = []ir.Instr{{
				Op:     ir.Jmp,
				Target: newID[it.tramp],
				Mem:    ir.NoMem,
				Region: ir.NoRegion,
			}}
		default:
			ob := f.Blocks[it.orig]
			nb.Instrs = make([]ir.Instr, len(ob.Instrs))
			copy(nb.Instrs, ob.Instrs)
			srcPlan := memberPlan[it.orig]
			if srcPlan != nil && len(nb.Instrs) == 0 {
				// Empty member blocks (e.g. bare join points) get a nop
				// so region membership and end/exit markers have an
				// instruction to attach to.
				nb.Instrs = []ir.Instr{{Op: ir.Nop, Mem: ir.NoMem, Region: ir.NoRegion}}
			}
			for j := range nb.Instrs {
				in := &nb.Instrs[j]
				if in.Args != nil {
					in.Args = append([]ir.Reg(nil), in.Args...)
				}
				if !in.Op.IsBranch() || in.Op == ir.Call || in.Op == ir.Ret {
					continue
				}
				t := in.Target
				if tp := entryPlan[t]; tp != nil && tp == srcPlan {
					// Internal edge to the region's own entry (cyclic
					// back edge): bypass the inception block.
					in.Target = newID[t]
				} else {
					in.Target = landing(t)
				}
			}
		}
		newBlocks[i] = nb
	}

	// Pass 3: region annotations on member blocks, using the original CFG
	// shape for edge classification. Function-level regions have no member
	// instructions: the hardware contract is carried entirely by the
	// region table entry (callee, argument registers, result register).
	for _, fp := range fps {
		pl := fp.plan
		if pl.Kind == ir.FuncLevel {
			regions[fp.id] = &ir.Region{
				ID:           fp.id,
				Func:         f.ID,
				Class:        pl.Class,
				Kind:         ir.FuncLevel,
				Inception:    fp.inceptionNew,
				Body:         newID[pl.Entry],
				Continuation: landing(pl.Continuation),
				Inputs:       append([]ir.Reg(nil), pl.Inputs...),
				Outputs:      append([]ir.Reg(nil), pl.Outputs...),
				MemObjects:   append([]ir.MemID(nil), pl.MemObjects...),
				StaticSize:   pl.StaticSize,
				Callee:       pl.Callee,
			}
			continue
		}
		members := map[ir.BlockID]bool{}
		for _, b := range pl.Blocks {
			members[b] = true
		}
		outputs := map[ir.Reg]bool{}
		for _, r := range pl.Outputs {
			outputs[r] = true
		}
		for _, ob := range pl.Blocks {
			nb := newBlocks[newID[ob]]
			for j := range nb.Instrs {
				in := &nb.Instrs[j]
				in.Region = fp.id
				if d := in.Def(); d != ir.NoReg && outputs[d] {
					in.Attr |= ir.AttrLiveOut
				}
			}
			// Classify edges leaving this member block.
			origBlk := f.Blocks[ob]
			markEdges(f, origBlk, members, pl.Continuation, nb)
		}
		regions[fp.id] = &ir.Region{
			ID:           fp.id,
			Func:         f.ID,
			Class:        pl.Class,
			Kind:         pl.Kind,
			Inception:    fp.inceptionNew,
			Body:         newID[pl.Entry],
			Continuation: landing(pl.Continuation),
			Inputs:       append([]ir.Reg(nil), pl.Inputs...),
			Outputs:      append([]ir.Reg(nil), pl.Outputs...),
			MemObjects:   append([]ir.MemID(nil), pl.MemObjects...),
			StaticSize:   pl.StaticSize,
			Callee:       ir.NoFunc,
		}
	}

	f.Blocks = newBlocks
	return nil
}

// markEdges sets AttrRegionEnd on the instruction through which control
// leaves a member block toward the continuation, and AttrRegionExit on
// instructions leaving toward any other outside block. Edge shape is taken
// from the original block origBlk; attributes are applied to the rewritten
// block nb.
func markEdges(f *ir.Func, origBlk *ir.Block, members map[ir.BlockID]bool, cont ir.BlockID, nb *ir.Block) {
	if len(nb.Instrs) == 0 {
		return
	}
	last := len(nb.Instrs) - 1
	t := origBlk.Terminator()
	// Successor edges of the original block: explicit target and/or
	// fall-through. Originally-empty member blocks (now holding a nop)
	// have a pure fall-through edge.
	type edge struct{ to ir.BlockID }
	var edges []edge
	fall := origBlk.ID + 1
	switch {
	case t == nil:
		if int(fall) < len(f.Blocks) {
			edges = []edge{{fall}}
		}
	case t.Op == ir.Jmp:
		edges = []edge{{t.Target}}
	case t.Op == ir.Ret:
		return
	case t.Op.IsCondBranch():
		edges = []edge{{t.Target}}
		if int(fall) < len(f.Blocks) {
			edges = append(edges, edge{fall})
		}
	default:
		if int(fall) < len(f.Blocks) {
			edges = []edge{{fall}}
		}
	}
	for _, e := range edges {
		if members[e.to] {
			continue
		}
		if e.to == cont {
			nb.Instrs[last].Attr |= ir.AttrRegionEnd
		} else {
			nb.Instrs[last].Attr |= ir.AttrRegionExit
		}
	}
}

// placeInvalidations inserts a computation-invalidate instruction after
// every store that may write an object registered by any region. Stores
// with unknown target objects conservatively invalidate every registered
// object.
func placeInvalidations(p *ir.Program) {
	registered := map[ir.MemID]bool{}
	for _, r := range p.Regions {
		for _, m := range r.MemObjects {
			registered[m] = true
		}
	}
	if len(registered) == 0 {
		return
	}
	all := make([]ir.MemID, 0, len(registered))
	for m := range registered {
		all = append(all, m)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			needs := false
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.St && (in.Mem == ir.NoMem || registered[in.Mem]) {
					needs = true
					break
				}
			}
			if !needs {
				continue
			}
			out := make([]ir.Instr, 0, len(b.Instrs)+4)
			for i := range b.Instrs {
				in := b.Instrs[i]
				out = append(out, in)
				if in.Op != ir.St {
					continue
				}
				switch {
				case in.Mem != ir.NoMem && registered[in.Mem]:
					out = append(out, ir.Instr{Op: ir.Inval, Mem: in.Mem, Region: ir.NoRegion})
				case in.Mem == ir.NoMem:
					for _, m := range all {
						out = append(out, ir.Instr{Op: ir.Inval, Mem: m, Region: ir.NoRegion})
					}
				}
			}
			b.Instrs = out
		}
	}
}
