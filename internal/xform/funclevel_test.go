package xform

import (
	"testing"

	"ccr/internal/crb"
	"ccr/internal/emu"
	"ccr/internal/ir"
	"ccr/internal/region"
)

// buildCallShapes builds a program exercising the splitter's edge cases:
// two calls in one block, a call as a block's first instruction, and a
// call as a block's last instruction (falling through to the next block).
func buildCallShapes(t *testing.T) (*ir.Program, []*region.Plan) {
	t.Helper()
	pb := ir.NewProgramBuilder("shapes")
	g := pb.Func("pure", 1)
	gb := g.NewBlock()
	gx := g.NewBlock()
	v := g.NewReg()
	gb.AndI(v, g.Param(0), 3)
	gb.MulI(v, v, 7)
	gb.AddI(v, v, 1)
	gb.MulI(v, v, 3)
	gb.XorI(v, v, 5)
	gb.Jmp(gx.ID())
	gx.Ret(v)

	f := pb.Func("main", 1)
	pb.SetMain(f.ID())
	e := f.NewBlock()
	h := f.NewBlock()
	b1 := f.NewBlock() // two calls with arithmetic between
	b2 := f.NewBlock() // call at index 0
	b3 := f.NewBlock() // call as last instruction, falls into latch
	la := f.NewBlock()
	x := f.NewBlock()
	k, acc, s, r1, r2 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(acc, 0)
	h.Bge(k, f.Param(0), x.ID())
	b1.AndI(s, k, 3)
	b1.Call(r1, g.ID(), s)
	b1.Add(acc, acc, r1)
	b1.Call(r2, g.ID(), s)
	b1.Add(acc, acc, r2)
	b2.Call(r1, g.ID(), acc)
	b2.Add(acc, acc, r1)
	b3.AndI(s, k, 1)
	b3.Call(r2, g.ID(), s)
	la.Add(acc, acc, r2)
	la.AddI(k, k, 1)
	la.Jmp(h.ID())
	x.Ret(acc)
	p := ir.MustVerify(pb.Build())

	mkPlan := func(b ir.BlockID, i int, args []ir.Reg, dest ir.Reg) *region.Plan {
		return &region.Plan{
			Func: f.ID(), Kind: ir.FuncLevel, Class: ir.Stateless,
			CallSite: ir.InstrRef{Func: f.ID(), Block: b, Index: i},
			Callee:   g.ID(),
			Inputs:   args, Outputs: []ir.Reg{dest},
			StaticSize: 7,
		}
	}
	plans := []*region.Plan{
		mkPlan(b1.ID(), 1, []ir.Reg{s}, r1),
		mkPlan(b1.ID(), 3, []ir.Reg{s}, r2),
		mkPlan(b2.ID(), 0, []ir.Reg{acc}, r1),
		mkPlan(b3.ID(), 1, []ir.Reg{s}, r2),
	}
	return p, plans
}

func TestFuncLevelSplitShapes(t *testing.T) {
	base, plans := buildCallShapes(t)
	prog, err := Transform(base, plans)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	if len(prog.Regions) != 4 {
		t.Fatalf("regions = %d", len(prog.Regions))
	}
	for _, rg := range prog.Regions {
		if rg.Kind != ir.FuncLevel {
			t.Fatalf("region %d kind = %v", rg.ID, rg.Kind)
		}
	}
	// The input plans must be untouched (Transform works on copies).
	for _, pl := range plans {
		if pl.Entry != 0 || len(pl.Blocks) != 0 {
			t.Fatalf("caller's plan mutated: %+v", pl)
		}
	}

	// Architectural equivalence with and without a CRB, plus hit checks.
	for _, withCRB := range []bool{false, true} {
		mb := emu.New(base)
		want, err := mb.Run(200)
		if err != nil {
			t.Fatal(err)
		}
		mc := emu.New(prog)
		if withCRB {
			mc.CRB = crb.New(crb.Config{Entries: 16, Instances: 8}, prog)
		}
		got, err := mc.Run(200)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("withCRB=%v: got %d, want %d", withCRB, got, want)
		}
		if withCRB && mc.Stats.ReuseHits == 0 {
			t.Fatal("expected function-level hits")
		}
	}
}

// TestFuncLevelNoOutputs: a memoized call whose result is discarded.
func TestFuncLevelNoOutput(t *testing.T) {
	pb := ir.NewProgramBuilder("noout")
	g := pb.Func("pure", 1)
	gb := g.NewBlock()
	v := g.NewReg()
	gb.MulI(v, g.Param(0), 3)
	gb.AddI(v, v, 1)
	gb.MulI(v, v, 5)
	gb.AddI(v, v, 2)
	gb.Ret(v)
	f := pb.Func("main", 1)
	pb.SetMain(f.ID())
	e := f.NewBlock()
	h := f.NewBlock()
	bo := f.NewBlock()
	x := f.NewBlock()
	k, s := f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	h.Bge(k, f.Param(0), x.ID())
	bo.AndI(s, k, 3)
	bo.Call(ir.NoReg, g.ID(), s)
	bo.AddI(k, k, 1)
	bo.Jmp(h.ID())
	x.Ret(k)
	p := ir.MustVerify(pb.Build())
	plans := []*region.Plan{{
		Func: f.ID(), Kind: ir.FuncLevel, Class: ir.Stateless,
		CallSite: ir.InstrRef{Func: f.ID(), Block: bo.ID(), Index: 1},
		Callee:   g.ID(), Inputs: []ir.Reg{s}, StaticSize: 5,
	}}
	prog, err := Transform(p, plans)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	m := emu.New(prog)
	m.CRB = crb.New(crb.Config{Entries: 8, Instances: 8}, prog)
	got, err := m.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("result = %d", got)
	}
	if m.Stats.ReuseHits < 90 {
		t.Fatalf("hits = %d", m.Stats.ReuseHits)
	}
}
