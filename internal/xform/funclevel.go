package xform

import (
	"fmt"
	"sort"

	"ccr/internal/ir"
	"ccr/internal/region"
)

// splitFuncLevelCalls restructures a (cloned) function so that every
// function-level call site sits in its own basic block:
//
//	[pre: instrs before the call] [call: the call alone] [post: the rest]
//
// The transformer's normal layout pass can then insert the reuse inception
// in front of the call block. All branch targets and the block references
// of every plan in the same function are remapped to the new numbering.
// Control enters a split block at its first segment (pre), which is
// correct for every external edge: the call only executes after the
// preceding instructions.
func splitFuncLevelCalls(f *ir.Func, funcPlans []*region.Plan) error {
	var sites []*region.Plan
	for _, pl := range funcPlans {
		if pl.Kind == ir.FuncLevel {
			sites = append(sites, pl)
		}
	}
	if len(sites) == 0 {
		return nil
	}
	// Call indices per block, ascending.
	byBlock := map[ir.BlockID][]int{}
	planAt := map[ir.InstrRef]*region.Plan{}
	for _, pl := range sites {
		if pl.CallSite.Func != f.ID {
			return fmt.Errorf("plan call site in wrong function")
		}
		byBlock[pl.CallSite.Block] = append(byBlock[pl.CallSite.Block], pl.CallSite.Index)
		planAt[pl.CallSite] = pl
	}
	for b, idxs := range byBlock {
		sort.Ints(idxs)
		blk := f.Block(b)
		if blk == nil {
			return fmt.Errorf("call-site block b%d out of range", b)
		}
		for _, i := range idxs {
			if i >= len(blk.Instrs) || blk.Instrs[i].Op != ir.Call {
				return fmt.Errorf("call site b%d[%d] is not a call", b, i)
			}
		}
	}

	// Pass 1: new layout. remap[old] = new ID of the block's first
	// segment; callSeg/postSeg record the per-site segment IDs.
	type segment struct {
		instrs []ir.Instr
	}
	var segs []segment
	remap := make([]ir.BlockID, len(f.Blocks))
	callSeg := map[ir.InstrRef]ir.BlockID{}
	postSeg := map[ir.InstrRef]ir.BlockID{}
	for _, blk := range f.Blocks {
		remap[blk.ID] = ir.BlockID(len(segs))
		idxs := byBlock[blk.ID]
		if len(idxs) == 0 {
			segs = append(segs, segment{instrs: blk.Instrs})
			continue
		}
		start := 0
		for _, i := range idxs {
			if i > start {
				segs = append(segs, segment{instrs: blk.Instrs[start:i]})
			}
			// When the call opens the block, external edges land
			// directly on the call segment; the layout pass will route
			// them through the inception it inserts in front.
			ref := ir.InstrRef{Func: f.ID, Block: blk.ID, Index: i}
			callSeg[ref] = ir.BlockID(len(segs))
			segs = append(segs, segment{instrs: blk.Instrs[i : i+1]})
			// Whatever segment is emitted next — the next call's pre
			// segment, the next call itself, or the remainder — is where
			// control resumes after this call.
			postSeg[ref] = ir.BlockID(len(segs))
			start = i + 1
		}
		// Final segment: the remainder (possibly empty, as the landing
		// pad for the last call's fall-through / reuse continuation).
		segs = append(segs, segment{instrs: blk.Instrs[start:]})
	}

	// Pass 2: materialize blocks and retarget branches.
	newBlocks := make([]*ir.Block, len(segs))
	for i, sg := range segs {
		nb := &ir.Block{ID: ir.BlockID(i), Instrs: append([]ir.Instr(nil), sg.instrs...)}
		for j := range nb.Instrs {
			in := &nb.Instrs[j]
			if in.Op.IsBranch() && in.Op != ir.Call && in.Op != ir.Ret {
				in.Target = remap[in.Target]
			}
		}
		newBlocks[i] = nb
	}
	f.Blocks = newBlocks

	// Pass 3: remap every plan of this function.
	for _, pl := range funcPlans {
		if pl.Kind == ir.FuncLevel {
			ref := pl.CallSite
			pl.Entry = callSeg[ref]
			pl.Continuation = postSeg[ref]
			pl.Blocks = []ir.BlockID{callSeg[ref]}
			continue
		}
		for i := range pl.Blocks {
			pl.Blocks[i] = remap[pl.Blocks[i]]
		}
		pl.Entry = remap[pl.Entry]
		pl.Continuation = remap[pl.Continuation]
	}
	return nil
}
