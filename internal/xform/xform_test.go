package xform

import (
	"testing"

	"ccr/internal/alias"
	"ccr/internal/emu"
	"ccr/internal/ir"
	"ccr/internal/region"
	"ccr/internal/vprof"
)

// compile runs the front half of the pipeline (alias + profile + form) and
// transforms, returning base and transformed programs plus plans.
func compile(t *testing.T, p *ir.Program, arg int64, opts region.Options) (*ir.Program, []*region.Plan) {
	t.Helper()
	ar := alias.Analyze(p)
	ar.Annotate()
	pr := vprof.NewProfiler(p)
	m := emu.New(p)
	m.Trace = pr.Tracer()
	if _, err := m.Run(arg); err != nil {
		t.Fatalf("profile: %v", err)
	}
	plans := region.Form(p, pr.Finish(), ar, opts)
	out, err := Transform(p, plans)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	return out, plans
}

// buildScan is the canonical cyclic-region program (scan over a rarely
// mutated table).
func buildScan(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("scan")
	tab := pb.Object("tab", 8, []int64{1, 2, 3, 4, 5, 6, 7, 8})
	aux := pb.Object("aux", 4, nil)
	g := pb.Func("scan", 0)
	ge := g.NewBlock()
	gh := g.NewBlock()
	gb := g.NewBlock()
	gl := g.NewBlock()
	gx := g.NewBlock()
	s, i, base, v := g.NewReg(), g.NewReg(), g.NewReg(), g.NewReg()
	ge.MovI(s, 0)
	ge.MovI(i, 0)
	ge.Lea(base, tab, 0)
	gh.BgeI(i, 8, gx.ID())
	gb.Add(v, base, i)
	gb.Ld(v, v, 0, tab)
	gb.Add(s, s, v)
	gl.AddI(i, i, 1)
	gl.Jmp(gh.ID())
	gx.Ret(s)
	f := pb.Func("main", 1)
	pb.SetMain(f.ID())
	e := f.NewBlock()
	h := f.NewBlock()
	bo := f.NewBlock()
	mu := f.NewBlock()
	la := f.NewBlock()
	x := f.NewBlock()
	k, acc, r, tmp, p0 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(acc, 0)
	h.Bge(k, f.Param(0), x.ID())
	bo.Call(r, g.ID())
	bo.Add(acc, acc, r)
	bo.RemI(tmp, k, 50)
	bo.BneI(tmp, 0, la.ID())
	mu.Lea(p0, tab, 0)
	mu.St(p0, 2, k, tab)
	mu.Lea(p0, aux, 0)
	mu.St(p0, 0, k, aux)
	la.AddI(k, k, 1)
	la.Jmp(h.ID())
	x.Ret(acc)
	return ir.MustVerify(pb.Build())
}

func TestTransformStructure(t *testing.T) {
	base := buildScan(t)
	prog, plans := compile(t, base, 300, region.DefaultOptions())
	if len(plans) == 0 {
		t.Fatal("no plans formed")
	}
	if len(prog.Regions) != len(plans) {
		t.Fatalf("regions %d != plans %d", len(prog.Regions), len(plans))
	}
	for _, rg := range prog.Regions {
		f := prog.Func(rg.Func)
		inc := f.Block(rg.Inception)
		if len(inc.Instrs) != 1 || inc.Instrs[0].Op != ir.Reuse {
			t.Fatalf("inception b%d is not a single reuse", rg.Inception)
		}
		if inc.Instrs[0].Target != rg.Continuation {
			t.Fatalf("reuse target b%d != continuation b%d",
				inc.Instrs[0].Target, rg.Continuation)
		}
		// Member instructions are tagged; at least one region end exists.
		tagged, ends := 0, 0
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Region == rg.ID && in.Op != ir.Reuse {
					tagged++
					if in.Attr.Has(ir.AttrRegionEnd) {
						ends++
					}
				}
			}
		}
		if tagged == 0 || ends == 0 {
			t.Fatalf("region %d: tagged=%d ends=%d", rg.ID, tagged, ends)
		}
	}
	// The base program must be untouched (no reuse instructions).
	for _, f := range base.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.Reuse || b.Instrs[i].Op == ir.Inval {
					t.Fatal("base program was mutated")
				}
			}
		}
	}
}

func TestInvalidationPlacement(t *testing.T) {
	base := buildScan(t)
	prog, _ := compile(t, base, 300, region.DefaultOptions())
	registered := map[ir.MemID]bool{}
	for _, rg := range prog.Regions {
		for _, m := range rg.MemObjects {
			registered[m] = true
		}
	}
	if len(registered) == 0 {
		t.Skip("no memory-dependent regions formed")
	}
	// Every store to a registered object must be followed immediately by
	// an Inval of that object; stores to unregistered objects must not.
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.St {
					continue
				}
				wantInval := in.Mem != ir.NoMem && registered[in.Mem]
				hasInval := i+1 < len(b.Instrs) && b.Instrs[i+1].Op == ir.Inval
				if wantInval && (!hasInval || b.Instrs[i+1].Mem != in.Mem) {
					t.Fatalf("%s b%d[%d]: store to registered obj%d lacks invalidate",
						f.Name, b.ID, i, in.Mem)
				}
				if !wantInval && hasInval && b.Instrs[i+1].Mem == in.Mem {
					t.Fatalf("%s b%d[%d]: spurious invalidate", f.Name, b.ID, i)
				}
			}
		}
	}
}

func TestOverlappingPlansRejected(t *testing.T) {
	base := buildScan(t)
	alias.Analyze(base).Annotate()
	pl := &region.Plan{
		Func: 0, Kind: ir.Cyclic, Class: ir.Stateless,
		Blocks: []ir.BlockID{1, 2, 3}, Entry: 1, Continuation: 4,
	}
	dup := &region.Plan{
		Func: 0, Kind: ir.Acyclic, Class: ir.Stateless,
		Blocks: []ir.BlockID{2}, Entry: 2, Continuation: 3,
	}
	if _, err := Transform(base, []*region.Plan{pl, dup}); err == nil {
		t.Fatal("overlapping plans must be rejected")
	}
}

// TestTransformedExecutionMatches runs the transformed program both with
// and without a CRB against the base program (smoke version of the global
// property test, kept here for locality).
func TestTransformedExecutionMatches(t *testing.T) {
	base := buildScan(t)
	prog, _ := compile(t, base, 300, region.DefaultOptions())
	for _, arg := range []int64{0, 1, 7, 123, 400} {
		mb := emu.New(base)
		want, err := mb.Run(arg)
		if err != nil {
			t.Fatal(err)
		}
		mc := emu.New(prog)
		got, err := mc.Run(arg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("arg %d: got %d, want %d", arg, got, want)
		}
	}
}

// TestCyclicBackEdgeBypassesInception: the transformed loop must not pass
// through the reuse instruction on every iteration — only per invocation.
func TestCyclicBackEdgeBypassesInception(t *testing.T) {
	base := buildScan(t)
	prog, _ := compile(t, base, 300, region.DefaultOptions())
	var cyc *ir.Region
	for _, rg := range prog.Regions {
		if rg.Kind == ir.Cyclic {
			cyc = rg
		}
	}
	if cyc == nil {
		t.Skip("no cyclic region")
	}
	m := emu.New(prog)
	if _, err := m.Run(200); err != nil {
		t.Fatal(err)
	}
	lookups := m.Stats.ReuseHits + m.Stats.ReuseMisses
	// 200 invocations (plus other regions' lookups) — far fewer than the
	// ~1600 iterations the loop executes.
	if lookups > 1000 {
		t.Fatalf("reuse executed per iteration? lookups=%d", lookups)
	}
}
