// Package reuse is the scheme-neutral layer above the concrete reuse
// backends. The repo started as a reproduction of one mechanism — the
// paper's compiler-directed region reuse (CCR, internal/crb) — and this
// package generalizes that seam into a pluggable architecture: a reuse
// *scheme* names which backends are attached to the emulator, and a
// canonical Config.Key() makes every cache, store and fabric artifact
// scheme-qualified so results from different mechanisms can never alias.
//
// Two backends exist today:
//
//   - ccr: the compiler-marked region scheme of the source paper. Regions
//     are chosen at compile time, lookups happen at explicit Reuse
//     instructions, invalidation at explicit Inval instructions. The
//     backend lives in internal/crb; this package only routes to it.
//   - dtm: dynamic trace memoization in the spirit of the decanting study
//     (arXiv 1711.06672). Traces are straight-line runs the predecoder
//     already maps (ir.DecodedFunc.RunEnd), formed at runtime with no
//     compiler support, keyed by head PC + input-register signature, and
//     invalidated by watching stores. The backend is reuse.DTM.
//
// "both" attaches the two simultaneously (DTM runs over the CCR-transformed
// program, so explicit Reuse/Inval instructions shorten the runs DTM can
// trace — an honest interaction, not an idealized sum), and "off" attaches
// neither, which is bit-identical to a plain baseline run.
package reuse

import (
	"fmt"

	"ccr/internal/crb"
)

// Scheme selects which reuse backends a simulation attaches.
type Scheme string

const (
	// Off attaches no reuse machinery: the plain baseline run.
	Off Scheme = "off"
	// CCRScheme attaches the paper's compiler-directed region scheme.
	CCRScheme Scheme = "ccr"
	// DTMScheme attaches dynamic trace memoization over the base program.
	DTMScheme Scheme = "dtm"
	// BothSchemes attaches CCR and DTM together over the transformed
	// program.
	BothSchemes Scheme = "both"
)

// Schemes lists every valid scheme in canonical order.
func Schemes() []Scheme { return []Scheme{Off, CCRScheme, DTMScheme, BothSchemes} }

// ParseScheme validates a user-supplied scheme name.
func ParseScheme(s string) (Scheme, error) {
	switch Scheme(s) {
	case Off, CCRScheme, DTMScheme, BothSchemes:
		return Scheme(s), nil
	}
	return "", fmt.Errorf("reuse: unknown scheme %q (want off, ccr, dtm or both)", s)
}

// UsesCCR reports whether the scheme attaches the region-reuse backend —
// which also decides that the simulated program is the CCR-transformed one
// (Reuse/Inval instructions present) rather than the baseline.
func (s Scheme) UsesCCR() bool { return s == CCRScheme || s == BothSchemes }

// UsesDTM reports whether the scheme attaches the trace-memoization
// backend.
func (s Scheme) UsesDTM() bool { return s == DTMScheme || s == BothSchemes }

// Config is a complete scheme-qualified reuse configuration: which backends
// run and with what geometry. The zero value is Scheme "" — callers must
// set a scheme explicitly; use CCR() for the historical single-scheme case.
type Config struct {
	Scheme Scheme        `json:"scheme"`
	CRB    crb.Config    `json:"crb,omitempty"`
	DTM    DTMConfig     `json:"dtm,omitempty"`
}

// CCR wraps a bare CRB geometry in the historical single-scheme
// configuration. Every pre-existing call site that swept crb.Config routes
// through this.
func CCR(cc crb.Config) Config { return Config{Scheme: CCRScheme, CRB: cc} }

// DTMOnly builds a dtm-scheme configuration from a trace-buffer geometry.
func DTMOnly(tc DTMConfig) Config { return Config{Scheme: DTMScheme, DTM: tc} }

// Both attaches the two backends together.
func Both(cc crb.Config, tc DTMConfig) Config {
	return Config{Scheme: BothSchemes, CRB: cc, DTM: tc}
}

// Key is the canonical cache identity of the configuration. The scheme name
// is always the first component, and each backend's geometry key appears
// only when that backend is attached — so a DTM artifact can never alias a
// CCR artifact even when the numeric geometries coincide, and "off" has
// exactly one key. Irrelevant geometry fields (e.g. a CRB config carried in
// a dtm-scheme Config) are deliberately excluded: they cannot affect the
// simulation, so they must not fragment the cache.
func (c Config) Key() string {
	switch c.Scheme {
	case Off:
		return "off"
	case CCRScheme:
		return "ccr|" + c.CRB.Key()
	case DTMScheme:
		return "dtm|" + c.DTM.Key()
	case BothSchemes:
		return "both|" + c.CRB.Key() + "|" + c.DTM.Key()
	}
	return "invalid|" + string(c.Scheme)
}
