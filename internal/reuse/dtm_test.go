package reuse_test

import (
	"testing"

	"ccr/internal/crb"
	"ccr/internal/emu"
	"ccr/internal/ir"
	"ccr/internal/oracle"
	"ccr/internal/progen"
	"ccr/internal/reuse"
	"ccr/internal/workloads"
)

// digest runs prog on a fresh machine (optionally with a DTM attached and
// the engine pinned) and returns its oracle digest.
func digest(t *testing.T, prog *ir.Program, d emu.TraceBuffer, interp bool, args []int64) oracle.Digest {
	t.Helper()
	m := emu.New(prog)
	m.Interp = interp
	m.DTM = d
	c := oracle.NewCollector(prog)
	m.Trace = c.Tracer()
	res, err := m.Run(args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return c.Finish(res, m.Mem)
}

// TestDTMTransparency is the scheme's §3.1 analogue: attaching a DTM to
// the base program must leave every reuse-invariant observable —
// result, memory image, store stream, return stream — bit-identical to
// the plain run, on both engines, across every workload.
func TestDTMTransparency(t *testing.T) {
	for _, b := range workloads.All(workloads.Tiny) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			ref := digest(t, b.Prog, nil, false, b.Train)
			for _, interp := range []bool{false, true} {
				d := reuse.NewDTM(reuse.DefaultDTMConfig(), b.Prog)
				got := digest(t, b.Prog, d, interp, b.Train)
				if err := oracle.Compare(ref, got); err != nil {
					t.Fatalf("interp=%v: %v", interp, err)
				}
				st := d.Stats()
				if st.Lookups == 0 {
					t.Fatalf("interp=%v: DTM saw no eligible landings", interp)
				}
			}
		})
	}
}

// TestDTMEngineParity pins the two engines to *identical* digests — trace
// checksum and instruction count included — with the same warm-started
// DTM geometry, plus identical flat buffer statistics.
func TestDTMEngineParity(t *testing.T) {
	for _, b := range workloads.All(workloads.Tiny) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			dFast := reuse.NewDTM(reuse.DefaultDTMConfig(), b.Prog)
			fast := digest(t, b.Prog, dFast, false, b.Train)
			dInterp := reuse.NewDTM(reuse.DefaultDTMConfig(), b.Prog)
			slow := digest(t, b.Prog, dInterp, true, b.Train)
			if !fast.Equal(slow) {
				t.Fatalf("engine digests differ:\nfast:   %+v\ninterp: %+v", fast, slow)
			}
			if dFast.Stats() != dInterp.Stats() {
				t.Fatalf("engine DTM stats differ:\nfast:   %+v\ninterp: %+v", dFast.Stats(), dInterp.Stats())
			}
		})
	}
}

// TestDTMActuallyReuses guards against a vacuous transparency pass: at
// least one workload must see real trace hits at the default geometry.
func TestDTMActuallyReuses(t *testing.T) {
	hits := int64(0)
	for _, b := range workloads.All(workloads.Tiny) {
		d := reuse.NewDTM(reuse.DefaultDTMConfig(), b.Prog)
		m := emu.New(b.Prog)
		m.DTM = d
		if _, err := m.Run(b.Train...); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		st := d.Stats()
		hits += st.Hits
		if st.Hits != m.Stats.DTMHits {
			t.Fatalf("%s: buffer hits %d != machine hits %d", b.Name, st.Hits, m.Stats.DTMHits)
		}
	}
	if hits == 0 {
		t.Fatal("no workload produced a single trace hit — the scheme is inert")
	}
}

// TestDTMStoreInvalidation: a store to a watched object must kill the
// memory-dependent traces that loaded from it, and the buffer must never
// serve a stale trace afterwards (checked architecturally by the
// transparency tests; here we check the mechanism's bookkeeping).
func TestDTMStoreInvalidation(t *testing.T) {
	var withMem *workloads.Benchmark
	for _, b := range workloads.All(workloads.Tiny) {
		d := reuse.NewDTM(reuse.DefaultDTMConfig(), b.Prog)
		m := emu.New(b.Prog)
		m.DTM = d
		if _, err := m.Run(b.Train...); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if d.Stats().Invalidates > 0 {
			withMem = b
			break
		}
	}
	if withMem == nil {
		t.Skip("no small-scale workload exercises store invalidation")
	}
}

// TestSchemeKeys is the cross-scheme key-collision gate: no two distinct
// scheme configurations — in particular a CCR and a DTM artifact whose
// numeric geometries coincide — may share a canonical key.
func TestSchemeKeys(t *testing.T) {
	cc := crb.DefaultConfig()
	tc := reuse.DefaultDTMConfig()
	configs := []reuse.Config{
		{Scheme: reuse.Off},
		reuse.CCR(cc),
		reuse.CCR(crb.Config{Entries: 32, Instances: 8, Assoc: 1}),
		reuse.DTMOnly(tc),
		reuse.DTMOnly(reuse.DTMConfig{Entries: 32, Instances: 8, Assoc: 1, MinRun: 3}),
		reuse.Both(cc, tc),
		reuse.Both(crb.Config{Entries: 32, Instances: 8, Assoc: 1}, tc),
	}
	seen := map[string]reuse.Config{}
	for _, c := range configs {
		k := c.Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision: %+v and %+v both map to %q", prev, c, k)
		}
		seen[k] = c
	}
	// The numeric-coincidence case called out by the refactor: identical
	// geometry numbers under different schemes must never alias.
	a := reuse.CCR(crb.Config{Entries: 64, Instances: 4, Assoc: 2}).Key()
	b := reuse.DTMOnly(reuse.DTMConfig{Entries: 64, Instances: 4, Assoc: 2, MinRun: 1}).Key()
	if a == b {
		t.Fatalf("CCR and DTM keys alias: %q", a)
	}
	// Irrelevant geometry must not fragment the key space.
	if got := (reuse.Config{Scheme: reuse.Off, CRB: cc, DTM: tc}).Key(); got != "off" {
		t.Fatalf("off key carries irrelevant geometry: %q", got)
	}
	if reuse.DTMOnly(tc).Key() != (reuse.Config{Scheme: reuse.DTMScheme, CRB: cc, DTM: tc}).Key() {
		t.Fatal("dtm key depends on an unattached CRB geometry")
	}
}

// TestParseScheme covers the flag-surface parser.
func TestParseScheme(t *testing.T) {
	for _, s := range reuse.Schemes() {
		got, err := reuse.ParseScheme(string(s))
		if err != nil || got != s {
			t.Fatalf("ParseScheme(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := reuse.ParseScheme("hybrid"); err == nil {
		t.Fatal("ParseScheme accepted an unknown scheme")
	}
}

// TestDTMConfigKey pins the canonical geometry key format and its
// normalization.
func TestDTMConfigKey(t *testing.T) {
	if got := reuse.DefaultDTMConfig().Key(); got != "te256.ti4.ta2.mr3" {
		t.Fatalf("default key = %q", got)
	}
	// Degenerate geometries normalize to their effective shape.
	if a, b := (reuse.DTMConfig{}).Key(), (reuse.DTMConfig{Entries: 1, Instances: 1, Assoc: 1, MinRun: 1}).Key(); a != b {
		t.Fatalf("zero config key %q != clamped key %q", a, b)
	}
}

// TestHeadKeyRoundTrip pins EncodeHead/DecodeHead as exact inverses over
// representative corners; FuzzHeadKey extends this to arbitrary values.
func TestHeadKeyRoundTrip(t *testing.T) {
	cases := []struct {
		fn ir.FuncID
		pc int32
	}{
		{0, 0}, {1, 1}, {13, 1 << 20}, {1<<31 - 1, 1<<31 - 1}, {-1, -1}, {-5, 1234},
	}
	for _, c := range cases {
		fn, pc := reuse.DecodeHead(reuse.EncodeHead(c.fn, c.pc))
		if fn != c.fn || pc != c.pc {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", c.fn, c.pc, fn, pc)
		}
	}
}

// TestDTMOutOfRangeNeverPanics: the buffer is probed with identities from
// fuzzers and chaos wrappers; garbage must read as a miss, never a panic.
func TestDTMOutOfRangeNeverPanics(t *testing.T) {
	b := workloads.Load("compress", workloads.Tiny)
	d := reuse.NewDTM(reuse.DefaultDTMConfig(), b.Prog)
	regs := make([]int64, ir.RegFileCap)
	for _, fn := range []ir.FuncID{-1, 0, 1 << 20} {
		for _, pc := range []int32{-1, 0, 5, 1 << 20} {
			d.Lookup(fn, pc, regs)
			d.Begin(fn, pc, regs)
			d.Complete(fn, pc, regs)
		}
	}
	d.Abort()
	d.Store(ir.NoMem)
	d.Store(ir.MemID(1 << 20))
}

// TestDTMHeadStats: per-head accounting must cover every hit (summing to
// the flat counter) and decode to in-range program coordinates.
func TestDTMHeadStats(t *testing.T) {
	for _, b := range workloads.All(workloads.Tiny) {
		d := reuse.NewDTM(reuse.DTMConfig{Entries: 16, Instances: 2, Assoc: 1, MinRun: 3}, b.Prog)
		m := emu.New(b.Prog)
		m.DTM = d
		if _, err := m.Run(b.Train...); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		var hits, reused int64
		for _, hs := range d.HeadStats() {
			hits += hs.Hits
			reused += hs.Reused
			if int(hs.Fn) >= len(b.Prog.Funcs) || hs.Fn < 0 {
				t.Fatalf("%s: head stat names unknown function %d", b.Name, hs.Fn)
			}
		}
		st := d.Stats()
		if hits != st.Hits || reused != m.Stats.DTMReusedInstrs {
			t.Fatalf("%s: head stats (%d hits, %d reused) != flat (%d hits, %d reused)",
				b.Name, hits, reused, st.Hits, m.Stats.DTMReusedInstrs)
		}
	}
}

// FuzzHeadKey fuzzes the trace-key encoding: EncodeHead/DecodeHead must
// round-trip exactly, and probing a live buffer with arbitrary identities
// and register values must never panic. Seeded from the predecoded runs
// of a real workload plus generated random programs (progen), per the
// fuzz-target convention of this repo.
func FuzzHeadKey(f *testing.F) {
	b := workloads.Load("compress", workloads.Tiny)
	dec := b.Prog.Decoded()
	for fid, df := range dec.Funcs {
		for pc := 0; pc < len(df.Code)-1 && pc < 8; pc++ {
			f.Add(int32(fid), int32(pc), df.RunEnd[pc], int64(pc)*3)
		}
	}
	for seed := uint64(1); seed <= 4; seed++ {
		gdec := progen.Generate(seed, progen.DefaultConfig()).Decoded()
		for fid, df := range gdec.Funcs {
			for pc := 0; pc < len(df.Code)-1 && pc < 4; pc++ {
				f.Add(int32(fid), int32(pc), df.RunEnd[pc], int64(seed))
			}
		}
	}
	f.Add(int32(-1), int32(-1), int32(1<<30), int64(-1))
	d := reuse.NewDTM(reuse.DefaultDTMConfig(), b.Prog)
	regs := make([]int64, ir.RegFileCap)
	f.Fuzz(func(t *testing.T, fn, pc, landing int32, seed int64) {
		key := reuse.EncodeHead(ir.FuncID(fn), pc)
		gf, gp := reuse.DecodeHead(key)
		if gf != ir.FuncID(fn) || gp != pc {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", fn, pc, gf, gp)
		}
		for i := range regs {
			regs[i] = seed + int64(i)
		}
		d.Lookup(ir.FuncID(fn), pc, regs)
		d.Begin(ir.FuncID(fn), pc, regs)
		d.Complete(ir.FuncID(fn), landing, regs)
	})
}
