package reuse

import (
	"fmt"
	"sort"

	"ccr/internal/crb"
	"ccr/internal/ir"
	"ccr/internal/telemetry"
)

// maxTraceBank bounds the input and output register banks of one trace,
// mirroring the CRB's fixed-width instance banks (ir.RegionBankSize) but
// wider: a trace's outputs are *every* register the run writes — the
// transparency contract is exact register-file state, not live-out state —
// so runs need more room than compiler-pruned regions.
const maxTraceBank = 16

// DTMConfig is the trace-buffer geometry, the DTM analogue of crb.Config.
type DTMConfig struct {
	// Entries is the number of trace entries (head-PC slots).
	Entries int `json:"entries"`
	// Instances is the number of trace instances per entry — distinct
	// input contexts recorded for the same head.
	Instances int `json:"instances"`
	// Assoc is the entry associativity: how many distinct heads can map
	// to the same set before tag conflicts evict.
	Assoc int `json:"assoc"`
	// MinRun is the minimum dynamic length (body + ender) a straight-line
	// run must have to be trace-eligible. Short runs cost a lookup per
	// landing and save almost nothing when they hit.
	MinRun int `json:"min_run"`
}

// DefaultDTMConfig is the default trace-buffer geometry: the same total
// instance budget class as the default CRB (crb.DefaultConfig), spent on
// more heads with fewer contexts each — traces are more numerous and less
// input-polymorphic than compiler-picked regions.
func DefaultDTMConfig() DTMConfig {
	return DTMConfig{Entries: 256, Instances: 4, Assoc: 2, MinRun: 3}
}

// Key is the canonical cache identity of the geometry, the DTM analogue of
// crb.Config.Key. The "t" prefix on every field keeps the namespace
// visibly distinct from CRB keys in concatenated cache paths.
func (c DTMConfig) Key() string {
	c = c.normalized()
	return fmt.Sprintf("te%d.ti%d.ta%d.mr%d", c.Entries, c.Instances, c.Assoc, c.MinRun)
}

// normalized clamps degenerate geometries the same way crb.Config does, so
// equal effective configurations share one canonical key.
func (c DTMConfig) normalized() DTMConfig {
	if c.Entries < 1 {
		c.Entries = 1
	}
	if c.Instances < 1 {
		c.Instances = 1
	}
	if c.Assoc < 1 {
		c.Assoc = 1
	}
	if c.Assoc > c.Entries {
		c.Assoc = c.Entries
	}
	if c.MinRun < 1 {
		c.MinRun = 1
	}
	return c
}

// EncodeHead packs a trace head identity — function plus flat predecoded
// PC — into the uint64 tag the buffer is keyed by.
func EncodeHead(fn ir.FuncID, pc int32) uint64 {
	return uint64(uint32(fn))<<32 | uint64(uint32(pc))
}

// DecodeHead is the exact inverse of EncodeHead.
func DecodeHead(key uint64) (ir.FuncID, int32) {
	return ir.FuncID(int32(key >> 32)), int32(key)
}

// Trace is one reusable trace instance as handed to the engine on a hit:
// the final value of every register the run writes, and where control
// lands after the run's ender. The pointer returned by Lookup aliases a
// scratch buffer reused across calls — apply it immediately, never retain.
type Trace struct {
	Outputs []crb.RegVal
	NextPC  int32 // flat predecoded landing PC (never the sentinel slot)
	Len     int32 // dynamic instructions the hit replaces
	UsesMem bool
}

// Stats mirrors crb.Stats field-for-field so the two schemes report
// symmetrically. Lookups counts only landings at trace-eligible heads;
// ineligible landings are filtered by a static plan check before any
// buffer access. RecordFails is always zero today — the trace buffer has
// no non-memory-capable entries — and exists for report symmetry.
type Stats struct {
	Lookups     int64 // landings at eligible heads
	Hits        int64 // lookups satisfied by a resident trace
	TagMisses   int64 // head not resident (cold or conflict-evicted)
	InputMisses int64 // head resident but no input context matched
	Records     int64 // traces committed
	RecordFails int64 // always zero (symmetry with crb.Stats)
	Evictions   int64 // entry replacements (tag conflicts)
	Invalidates int64 // trace instances killed by store watching
	Begins      int64 // recordings armed
	Aborts      int64 // recordings abandoned (bad landing, reset, restart)
}

// HeadStat is the per-head reuse contribution, the DTM analogue of the
// per-region emu.RegionStats — the decanting figure's loop-shape
// decomposition is built from these.
type HeadStat struct {
	Fn     ir.FuncID `json:"fn"`
	PC     int32     `json:"pc"` // flat predecoded head PC
	Hits   int64     `json:"hits"`
	Reused int64     `json:"reused"` // dynamic instructions replaced
}

// headPlan is the static trace-eligibility analysis of one straight-line
// run, computed once per head PC and shared by every instance recorded
// there. A run is eligible when it is pure-register dataflow plus loads
// with known provenance: no stores, no calls/returns, no CCR instructions,
// and an ender that is a jump or conditional branch (so the landing set is
// statically known and replay can be validated).
type headPlan struct {
	head int32
	end  int32 // flat PC of the ender (RunEnd[head])
	n    int32 // dynamic length, end-head+1

	ins  []ir.Reg  // registers read before written, in first-use order
	outs []ir.Reg  // registers written, in first-def order
	mems []ir.MemID // writable objects loaded (deduped); empty when !usesMem

	usesMem bool

	succTarget int32 // landing when the ender is taken
	succFall   int32 // landing when a conditional ender falls through; -1 for Jmp
}

// planIneligible marks a head whose run analysis rejected tracing; cached
// so every subsequent landing there is a single pointer compare.
var planIneligible = &headPlan{}

// tinstance is one recorded trace: the input values that key it and the
// output values plus landing PC that replay it.
type tinstance struct {
	valid bool
	memOK bool // false once store watching kills a memory-dependent trace
	sig   uint64
	next  int32
	ins   []int64 // values of plan.ins at the head
	outs  []int64 // values of plan.outs at the landing
}

// tentry is one trace entry: all recorded instances of a single head.
type tentry struct {
	key       uint64
	valid     bool
	plan      *headPlan
	lastTouch uint64
	hits      int64 // per-head accounting for HeadStats
	reused    int64
	cis       []tinstance
	lastUse   []uint64
}

// pendingRec is the one in-flight trace recording. Arming it snapshots the
// head's input values; the next landing either commits (when it is one of
// the plan's two static successors) or aborts.
type pendingRec struct {
	armed bool
	fn    ir.FuncID
	plan  *headPlan
	sig   uint64
	ins   []int64
}

// DTM is the dynamic trace memoization buffer: the runtime-formed analogue
// of the CRB. It keys reusable computation by head PC + input-register
// signature over the straight-line runs the predecoder maps (RunEnd),
// forms traces with no compiler support, and invalidates memory-dependent
// traces by watching stores instead of executing explicit Inval
// instructions.
type DTM struct {
	cfg  DTMConfig
	prog *ir.Program
	dec  *ir.DecodedProgram

	sets    int
	entries []tentry
	clock   uint64

	// plans[fn][pc] caches the eligibility analysis: nil = not yet
	// analyzed, planIneligible = analyzed and rejected.
	plans [][]*headPlan

	// memHeads[m] lists every head key whose plan loads writable object
	// m; store watching walks it. memResident counts live memOK traces,
	// so the per-store fast path is one integer compare.
	memHeads    [][]uint64
	memResident int

	pending pendingRec
	scratch Trace

	stats Stats

	sink         telemetry.TraceSink
	everResident map[uint64]bool // cold/conflict attribution; sink-only

	// headAcc preserves per-head hit history across entry evictions so
	// HeadStats reflects the whole run, not just the resident set.
	headAcc map[uint64]HeadStat
}

// NewDTM builds a trace buffer for one program. Like crb.New it allocates
// the whole geometry up front from flat backing arrays; steady-state
// operation allocates nothing.
func NewDTM(cfg DTMConfig, prog *ir.Program) *DTM {
	cfg = cfg.normalized()
	sets := cfg.Entries / cfg.Assoc
	if sets < 1 {
		sets = 1
	}
	n := sets * cfg.Assoc
	d := &DTM{
		cfg:      cfg,
		prog:     prog,
		dec:      prog.Decoded(),
		sets:     sets,
		entries:  make([]tentry, n),
		plans:    make([][]*headPlan, len(prog.Funcs)),
		memHeads: make([][]uint64, len(prog.Objects)),
	}
	cis := make([]tinstance, n*cfg.Instances)
	use := make([]uint64, n*cfg.Instances)
	for i := range d.entries {
		d.entries[i].cis = cis[i*cfg.Instances : (i+1)*cfg.Instances : (i+1)*cfg.Instances]
		d.entries[i].lastUse = use[i*cfg.Instances : (i+1)*cfg.Instances : (i+1)*cfg.Instances]
	}
	d.pending.ins = make([]int64, 0, maxTraceBank)
	d.scratch.Outputs = make([]crb.RegVal, 0, maxTraceBank)
	return d
}

// Config returns the (normalized) geometry.
func (d *DTM) Config() DTMConfig { return d.cfg }

// Stats returns a snapshot of the flat counters.
func (d *DTM) Stats() Stats { return d.stats }

// ResetStats zeroes the flat counters and per-head accounting without
// discarding recorded traces — the phase-analysis warm-buffer contract,
// same as crb.ResetStats.
func (d *DTM) ResetStats() {
	d.stats = Stats{}
	for i := range d.entries {
		d.entries[i].hits = 0
		d.entries[i].reused = 0
	}
}

// SetSink attaches the telemetry sink. Like the CRB's, it must be attached
// before the first operation for cold/conflict attribution to be complete,
// and the nil-sink paths cost nothing.
func (d *DTM) SetSink(s telemetry.TraceSink) {
	d.sink = s
	if s != nil && d.everResident == nil {
		d.everResident = make(map[uint64]bool)
	}
}

// HeadStats returns the per-head reuse contributions, resident entries
// merged with evicted history, sorted by (function, head PC).
func (d *DTM) HeadStats() []HeadStat {
	acc := make(map[uint64]HeadStat)
	for i := range d.entries {
		e := &d.entries[i]
		if e.hits == 0 {
			continue
		}
		hs := acc[e.key]
		hs.Hits += e.hits
		hs.Reused += e.reused
		acc[e.key] = hs
	}
	for key, hs := range d.headAcc {
		cur := acc[key]
		cur.Hits += hs.Hits
		cur.Reused += hs.Reused
		acc[key] = cur
	}
	out := make([]HeadStat, 0, len(acc))
	for key, hs := range acc {
		hs.Fn, hs.PC = DecodeHead(key)
		out = append(out, hs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// headAcc accumulates per-head hit history across evictions so HeadStats
// survives capacity pressure. Allocated lazily on first eviction of a head
// with history.
func (d *DTM) accumulateHead(e *tentry) {
	if e.hits == 0 && e.reused == 0 {
		return
	}
	if d.headAcc == nil {
		d.headAcc = make(map[uint64]HeadStat)
	}
	hs := d.headAcc[e.key]
	hs.Hits += e.hits
	hs.Reused += e.reused
	d.headAcc[e.key] = hs
	e.hits, e.reused = 0, 0
}

// setIdx maps a head key onto its set. The packed key's low bits are
// block-structured (flat PCs cluster), so spread with a 64-bit finalizer
// before reducing.
func (d *DTM) setIdx(key uint64) int {
	h := key
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(d.sets))
}

// findEntry returns the resident entry for key, or nil.
func (d *DTM) findEntry(key uint64) *tentry {
	base := d.setIdx(key) * d.cfg.Assoc
	for i := 0; i < d.cfg.Assoc; i++ {
		e := &d.entries[base+i]
		if e.valid && e.key == key {
			return e
		}
	}
	return nil
}

// planFor returns the cached eligibility plan for (fn, head), running the
// static analysis on first touch. Out-of-range identities — possible only
// from fuzzed or chaos-perturbed callers — are ineligible, never a panic.
func (d *DTM) planFor(fn ir.FuncID, head int32) *headPlan {
	if fn < 0 || int(fn) >= len(d.plans) {
		return nil
	}
	df := d.dec.Funcs[fn]
	if head < 0 || int(head) >= len(df.Code)-1 {
		return nil
	}
	ps := d.plans[fn]
	if ps == nil {
		ps = make([]*headPlan, len(df.Code))
		d.plans[fn] = ps
	}
	p := ps[head]
	if p == nil {
		p = d.buildPlan(fn, df, head)
		ps[head] = p
	}
	if p == planIneligible {
		return nil
	}
	return p
}

// EligibleHead reports whether the run headed at flat PC head of fn is
// statically recordable. At an ineligible head both Lookup and Begin are
// unconditional no-ops (no stats, no state transitions), which is what
// lets the emulator's batch tier skip the landing hook there while no
// recording is pending (emu's headEligible fast path). The predicate is
// pure program analysis: it never changes over the DTM's lifetime.
func (d *DTM) EligibleHead(fn ir.FuncID, head int32) bool {
	return d.planFor(fn, head) != nil
}

// buildPlan runs the static trace-eligibility analysis for the run headed
// at flat PC head. See headPlan for the eligibility contract.
func (d *DTM) buildPlan(fn ir.FuncID, df *ir.DecodedFunc, head int32) *headPlan {
	sentinel := int32(len(df.Code) - 1)
	end := df.RunEnd[head]
	if end >= sentinel || end < head {
		return planIneligible // run falls off the end of the function
	}
	ender := df.Code[end].Op
	if ender != ir.Jmp && !ender.IsCondBranch() {
		return planIneligible // Call/Ret/Reuse enders have dynamic successors
	}
	n := end - head + 1
	if int(n) < d.cfg.MinRun {
		return planIneligible
	}
	p := &headPlan{head: head, end: end, n: n}
	defined := func(r ir.Reg) bool {
		for _, o := range p.outs {
			if o == r {
				return true
			}
		}
		return false
	}
	addIn := func(r ir.Reg) bool {
		if r == ir.NoReg || defined(r) {
			return true
		}
		for _, o := range p.ins {
			if o == r {
				return true
			}
		}
		if len(p.ins) == maxTraceBank {
			return false
		}
		p.ins = append(p.ins, r)
		return true
	}
	for pc := head; pc <= end; pc++ {
		in := &df.Code[pc]
		readsSrc1, readsSrc2 := false, false
		switch {
		case in.Op == ir.Nop || in.Op == ir.MovI || in.Op == ir.Jmp:
			// no register reads
		case in.Op == ir.Mov || in.Op == ir.Ld || in.Op == ir.Lea:
			readsSrc1 = true
		case in.Op == ir.Reuse:
			// Reuse classifies as a conditional branch (taken on a CRB hit),
			// but its transfer decision and register writes live in the CRB,
			// not the register file — a run ending here would memoize the
			// *reuse hit's* outputs with no input or memory dependence and
			// replay them after the CRB instance is invalidated. Never
			// replayable.
			return planIneligible
		case in.Op.IsBinaryALU() || in.Op.IsCondBranch():
			readsSrc1, readsSrc2 = true, true
		default:
			// St, Call, Ret, Inval, or anything unknown: the run has side
			// effects or dynamic control we cannot replay.
			return planIneligible
		}
		if readsSrc1 && !addIn(in.Src1) {
			return planIneligible
		}
		if readsSrc2 && in.Src2 != ir.NoReg && !addIn(in.Src2) {
			return planIneligible
		}
		if in.Op == ir.Ld {
			m := ir.MemID(in.Aux)
			if m == ir.NoMem {
				return planIneligible // unknown provenance: cannot watch stores
			}
			if !d.prog.Objects[m].ReadOnly {
				p.usesMem = true
				seen := false
				for _, o := range p.mems {
					if o == m {
						seen = true
						break
					}
				}
				if !seen {
					p.mems = append(p.mems, m)
				}
			}
		}
		if in.Op.HasDest() && in.Dest != ir.NoReg && !defined(in.Dest) {
			if len(p.outs) == maxTraceBank {
				return planIneligible
			}
			p.outs = append(p.outs, in.Dest)
		}
	}
	e := &df.Code[end]
	p.succTarget = e.Target
	p.succFall = -1
	if e.Op.IsCondBranch() {
		p.succFall = end + 1
	}
	key := EncodeHead(fn, head)
	for _, m := range p.mems {
		d.memHeads[m] = append(d.memHeads[m], key)
	}
	return p
}

// sigOfVals is the FNV-style signature of the head's input values under a
// plan's fixed input-register order — the fast filter before the exact
// value compare, same idea as the CRB's instance signatures.
func sigOfVals(regs []int64, ins []ir.Reg) uint64 {
	h := uint64(1469598103934665603)
	for _, r := range ins {
		h = (h ^ uint64(regs[r])) * 1099511628211
	}
	return h
}

// Lookup probes the buffer at a landing. On a hit it returns the scratch
// Trace (valid until the next call) and charges per-head accounting; on a
// miss it attributes the cause to telemetry when a sink is attached.
// Landings at ineligible heads return a miss without touching the buffer
// or the counters.
func (d *DTM) Lookup(fn ir.FuncID, head int32, regs []int64) (*Trace, bool) {
	plan := d.planFor(fn, head)
	if plan == nil {
		return nil, false
	}
	d.stats.Lookups++
	key := EncodeHead(fn, head)
	e := d.findEntry(key)
	if e == nil {
		d.stats.TagMisses++
		if d.sink != nil {
			out := telemetry.MissCold
			if d.everResident[key] {
				out = telemetry.MissConflict
			}
			d.sink.TraceLookup(key, out)
		}
		return nil, false
	}
	sig := sigOfVals(regs, plan.ins)
	memBlocked := false
scan:
	for i := range e.cis {
		ci := &e.cis[i]
		if !ci.valid || ci.sig != sig {
			continue
		}
		for j, r := range plan.ins {
			if ci.ins[j] != regs[r] {
				continue scan
			}
		}
		if plan.usesMem && !ci.memOK {
			memBlocked = true
			continue
		}
		d.clock++
		e.lastUse[i] = d.clock
		e.lastTouch = d.clock
		e.hits++
		e.reused += int64(plan.n)
		d.stats.Hits++
		tr := &d.scratch
		tr.Outputs = tr.Outputs[:0]
		for j, r := range plan.outs {
			tr.Outputs = append(tr.Outputs, crb.RegVal{Reg: r, Val: ci.outs[j]})
		}
		tr.NextPC = ci.next
		tr.Len = plan.n
		tr.UsesMem = plan.usesMem
		if d.sink != nil {
			d.sink.TraceLookup(key, telemetry.Hit)
		}
		return tr, true
	}
	d.stats.InputMisses++
	if d.sink != nil {
		out := telemetry.MissInput
		if memBlocked {
			out = telemetry.MissMemInvalid
		}
		d.sink.TraceLookup(key, out)
	}
	return nil, false
}

// Begin arms a recording at a missed landing: it snapshots the head's
// input values so the next landing can commit the run's outputs. Returns
// false (and arms nothing) when the head is ineligible. Arming overwrites
// any stale pending recording.
func (d *DTM) Begin(fn ir.FuncID, head int32, regs []int64) bool {
	plan := d.planFor(fn, head)
	if plan == nil {
		if d.pending.armed {
			d.Abort()
		}
		return false
	}
	p := &d.pending
	if p.armed {
		d.stats.Aborts++
	}
	p.armed = true
	p.fn = fn
	p.plan = plan
	p.ins = p.ins[:0]
	for _, r := range plan.ins {
		p.ins = append(p.ins, regs[r])
	}
	p.sig = sigOfVals(regs, plan.ins)
	d.stats.Begins++
	return true
}

// Complete finishes the pending recording at a landing. The commit is
// accepted only when the landing is one of the recorded run's two static
// successors in the same function — any other landing (fault recovery,
// reset, an engine restart) aborts. Returns whether a trace was stored.
func (d *DTM) Complete(fn ir.FuncID, landing int32, regs []int64) bool {
	p := &d.pending
	if !p.armed {
		return false
	}
	p.armed = false
	plan := p.plan
	if fn != p.fn || plan == nil {
		d.stats.Aborts++
		return false
	}
	if landing != plan.succTarget && (plan.succFall < 0 || landing != plan.succFall) {
		d.stats.Aborts++
		return false
	}
	df := d.dec.Funcs[fn]
	if int(landing) >= len(df.Code)-1 || landing < 0 {
		// A branch whose target predecodes to the sentinel slot: the
		// landing is "fell off the end" — not replayable.
		d.stats.Aborts++
		return false
	}
	e := d.ensureEntry(EncodeHead(fn, plan.head), plan)
	slot := -1
	for i := range e.cis {
		if !e.cis[i].valid {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = 0
		for i := 1; i < len(e.cis); i++ {
			if e.lastUse[i] < e.lastUse[slot] {
				slot = i
			}
		}
		ci := &e.cis[slot]
		if plan.usesMem && ci.memOK {
			d.memResident--
		}
		if d.sink != nil {
			d.sink.TraceEvict(e.key, telemetry.EvictSlotLRU, 1)
		}
	}
	ci := &e.cis[slot]
	ci.valid = true
	ci.memOK = true
	ci.sig = p.sig
	ci.next = landing
	ci.ins = append(ci.ins[:0], p.ins...)
	ci.outs = ci.outs[:0]
	for _, r := range plan.outs {
		ci.outs = append(ci.outs, regs[r])
	}
	if plan.usesMem {
		d.memResident++
	}
	d.clock++
	e.lastUse[slot] = d.clock
	e.lastTouch = d.clock
	d.stats.Records++
	if d.sink != nil {
		d.sink.TraceCommit(e.key, true)
	}
	return true
}

// ensureEntry returns the entry for key, claiming an invalid way or
// evicting the set's LRU entry if the head is not resident.
func (d *DTM) ensureEntry(key uint64, plan *headPlan) *tentry {
	base := d.setIdx(key) * d.cfg.Assoc
	var victim *tentry
	for i := 0; i < d.cfg.Assoc; i++ {
		e := &d.entries[base+i]
		if e.valid && e.key == key {
			return e
		}
		if victim == nil || !e.valid || (victim.valid && e.lastTouch < victim.lastTouch) {
			if victim == nil || victim.valid {
				victim = e
			}
		}
	}
	e := victim
	if e.valid {
		live := 0
		for i := range e.cis {
			ci := &e.cis[i]
			if !ci.valid {
				continue
			}
			live++
			if e.plan.usesMem && ci.memOK {
				d.memResident--
			}
			ci.valid = false
		}
		d.accumulateHead(e)
		d.stats.Evictions++
		if d.sink != nil && live > 0 {
			d.sink.TraceEvict(e.key, telemetry.EvictCapacity, live)
		}
	} else {
		for i := range e.cis {
			e.cis[i].valid = false
		}
	}
	e.key = key
	e.valid = true
	e.plan = plan
	e.hits, e.reused = 0, 0
	for i := range e.lastUse {
		e.lastUse[i] = 0
	}
	if d.everResident != nil {
		d.everResident[key] = true
	}
	return e
}

// Abort abandons the pending recording, if any. Machine reset and fault
// recovery call this so a half-recorded run can never commit against the
// wrong outputs.
func (d *DTM) Abort() {
	if d.pending.armed {
		d.pending.armed = false
		d.stats.Aborts++
	}
}

// Store is the invalidation channel: the engine reports every executed
// store's object and the buffer kills the memory-valid bit of every
// resident trace that loaded from it — the DTM analogue of the CCR
// scheme's explicit Inval instructions, with the compiler's alias
// knowledge replaced by store watching. A store with unknown provenance
// (ir.NoMem) conservatively kills every memory-dependent trace. Returns
// the number of traces killed. The common case — no memory-dependent
// trace resident — is a single integer compare.
func (d *DTM) Store(m ir.MemID) int {
	if d.memResident == 0 {
		return 0
	}
	n := 0
	if m >= 0 && int(m) < len(d.memHeads) {
		for _, key := range d.memHeads[m] {
			e := d.findEntry(key)
			if e == nil {
				continue
			}
			n += d.killMemTraces(e)
		}
	} else {
		for i := range d.entries {
			e := &d.entries[i]
			if !e.valid || !e.plan.usesMem {
				continue
			}
			n += d.killMemTraces(e)
		}
	}
	d.stats.Invalidates += int64(n)
	if d.sink != nil && n > 0 {
		d.sink.TraceStore(m, n)
	}
	return n
}

// killMemTraces clears the memory-valid bit of every live trace in e.
func (d *DTM) killMemTraces(e *tentry) int {
	killed := 0
	for i := range e.cis {
		ci := &e.cis[i]
		if ci.valid && ci.memOK {
			ci.memOK = false
			killed++
		}
	}
	d.memResident -= killed
	if killed > 0 && d.sink != nil {
		d.sink.TraceEvict(e.key, telemetry.EvictInvalidation, killed)
	}
	return killed
}

// ResidentTraces counts live (replayable) trace instances — test hook.
func (d *DTM) ResidentTraces() int {
	n := 0
	for i := range d.entries {
		e := &d.entries[i]
		if !e.valid {
			continue
		}
		for j := range e.cis {
			ci := &e.cis[j]
			if ci.valid && (!e.plan.usesMem || ci.memOK) {
				n++
			}
		}
	}
	return n
}

// LookupAny returns any resident trace for the head regardless of input
// match or memory validity. It exists solely as a chaos-injection seam
// (a broken input comparator / stuck valid bit cannot be expressed through
// the architectural interface) and must never be called by engines.
func (d *DTM) LookupAny(fn ir.FuncID, head int32) (*Trace, bool) {
	plan := d.planFor(fn, head)
	if plan == nil {
		return nil, false
	}
	e := d.findEntry(EncodeHead(fn, head))
	if e == nil {
		return nil, false
	}
	for i := range e.cis {
		ci := &e.cis[i]
		if !ci.valid {
			continue
		}
		return d.fillScratch(plan, ci), true
	}
	return nil, false
}

// LookupStale returns a trace whose inputs match the current registers but
// whose memory-valid bit has been cleared — the instance a correct buffer
// refuses to serve. Chaos-injection seam; see LookupAny.
func (d *DTM) LookupStale(fn ir.FuncID, head int32, regs []int64) (*Trace, bool) {
	plan := d.planFor(fn, head)
	if plan == nil || !plan.usesMem {
		return nil, false
	}
	e := d.findEntry(EncodeHead(fn, head))
	if e == nil {
		return nil, false
	}
	sig := sigOfVals(regs, plan.ins)
scan:
	for i := range e.cis {
		ci := &e.cis[i]
		if !ci.valid || ci.memOK || ci.sig != sig {
			continue
		}
		for j, r := range plan.ins {
			if ci.ins[j] != regs[r] {
				continue scan
			}
		}
		return d.fillScratch(plan, ci), true
	}
	return nil, false
}

func (d *DTM) fillScratch(plan *headPlan, ci *tinstance) *Trace {
	tr := &d.scratch
	tr.Outputs = tr.Outputs[:0]
	for j, r := range plan.outs {
		tr.Outputs = append(tr.Outputs, crb.RegVal{Reg: r, Val: ci.outs[j]})
	}
	tr.NextPC = ci.next
	tr.Len = plan.n
	tr.UsesMem = plan.usesMem
	return tr
}
