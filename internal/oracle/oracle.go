// Package oracle enforces the paper's central correctness contract (§3.1):
// dynamic computation reuse must be architecturally invisible. It distills
// an emulator run into a Digest of architectural observables — the final
// return value, the return-value stream at every ret, a streaming checksum
// of the store stream, a hash of the final memory image, and a full
// per-instruction trace checksum — and provides a differential checker,
// Compare, that verifies a CRB-on run produced exactly the state the
// skipped instructions would have produced.
//
// Not every component of a Digest is comparable across the CRB-off/CRB-on
// boundary: reuse hits legitimately skip instructions, so the trace
// checksum and dynamic instruction count differ by design. The invariant
// components are:
//
//   - Result: the program's final return value.
//   - MemHash/MemWords: the final data-memory image. Regions never contain
//     stores, so reuse cannot change what memory ends up holding.
//   - Stores/StoreCount: the ordered (address, value) store stream. Stores
//     execute outside regions on both sides, in the same order.
//   - Rets/RetCount: the ordered return-value stream. A function-level
//     reuse hit skips a call and its ret; the collector synthesizes the
//     skipped ret from the region's committed outputs, which is exact
//     unless the memoized callee itself makes calls (then RetsExact is
//     cleared and Compare skips this component).
//
// Trace and DynInstrs are identity components: they only match between
// runs of the same program under the same configuration, and exist to pin
// determinism (serial vs parallel, repeated runs).
package oracle

import (
	"fmt"
	"strings"

	"ccr/internal/emu"
	"ccr/internal/ir"
)

// Digest summarizes the architectural behaviour of one emulator run.
type Digest struct {
	// Result is the program's final return value.
	Result int64
	// MemHash and MemWords describe the final data-memory image.
	MemHash  uint64
	MemWords int
	// Stores is the streaming checksum of the (address, value) store
	// stream; StoreCount the number of executed stores.
	Stores     uint64
	StoreCount int64
	// Rets is the streaming checksum of the return-value stream (with
	// function-level reuse hits synthesized in); RetCount its length.
	// RetsExact is false when a function-level hit skipped a callee that
	// itself makes calls, making the synthesized stream an undercount.
	Rets     uint64
	RetCount int64
	RetsExact bool
	// Trace is the full per-instruction checksum and DynInstrs the traced
	// instruction count — identity components, not reuse-invariant.
	Trace     uint64
	DynInstrs int64
}

// Equal reports whether two digests are bit-identical across every
// component, including the configuration-sensitive identity ones.
func (d Digest) Equal(o Digest) bool { return d == o }

// mix folds v into the running checksum h. It is a fast, order-sensitive,
// non-cryptographic mix (splitmix64 finalizer folded FNV-style); the
// oracle needs collision resistance against accidental divergence, not
// adversaries.
func mix(h, v uint64) uint64 {
	v *= 0x9E3779B97F4A7C15
	v ^= v >> 29
	v *= 0xBF58476D1CE4E5B9
	v ^= v >> 32
	return (h ^ v) * 0x100000001B3
}

// Collector accumulates a Digest from an emulator's event stream. Attach
// its Tracer to a Machine, run, then call Finish with the run's result and
// final memory.
type Collector struct {
	prog *ir.Program
	d    Digest
	// calls[f] reports whether function f contains a call instruction —
	// precomputed so function-level reuse hits know whether the skipped
	// subtree contained nested rets the collector cannot synthesize.
	calls []bool
}

// NewCollector prepares a collector for runs of prog.
func NewCollector(prog *ir.Program) *Collector {
	c := &Collector{prog: prog}
	c.d.RetsExact = true
	c.calls = make([]bool, len(prog.Funcs))
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.Call {
					c.calls[f.ID] = true
				}
			}
		}
	}
	return c
}

// Tracer returns the event hook that feeds the digest. The returned tracer
// may be chained before another consumer by the caller.
func (c *Collector) Tracer() emu.Tracer {
	return func(ev *emu.Event) {
		d := &c.d
		d.DynInstrs++
		t := mix(d.Trace, uint64(ev.PC))
		t = mix(t, uint64(ev.Result))
		if ev.Taken {
			t = mix(t, uint64(ev.TargetPC)|1)
		}
		d.Trace = t
		switch ev.Instr.Op {
		case ir.St:
			d.Stores = mix(mix(d.Stores, uint64(ev.Addr)), uint64(ev.Val2))
			d.StoreCount++
		case ir.Ret:
			d.Rets = mix(d.Rets, uint64(ev.Result))
			d.RetCount++
		case ir.Reuse:
			if !ev.ReuseHit {
				return
			}
			rg := c.prog.Region(ev.Instr.Region)
			if rg == nil || rg.Kind != ir.FuncLevel {
				return
			}
			// The hit skipped a call and its ret: synthesize the ret value
			// from the region outputs the hit just wrote.
			for _, out := range rg.Outputs {
				d.Rets = mix(d.Rets, uint64(ev.Regs[out]))
				d.RetCount++
			}
			if rg.Callee != ir.NoFunc && c.calls[rg.Callee] {
				d.RetsExact = false
			}
		}
	}
}

// Finish seals the digest with the run's final return value and data
// memory image.
func (c *Collector) Finish(result int64, mem []int64) Digest {
	c.d.Result = result
	c.d.MemWords = len(mem)
	h := uint64(0)
	for _, w := range mem {
		h = mix(h, uint64(w))
	}
	c.d.MemHash = h
	return c.d
}

// Divergence is a transparency-contract violation: one or more invariant
// digest components differ between the reference and checked runs.
type Divergence struct {
	// Components names the mismatched observables with both values.
	Components []string
}

func (d *Divergence) Error() string {
	return "oracle: architectural divergence: " + strings.Join(d.Components, "; ")
}

// Compare checks every reuse-invariant component of got against the
// reference digest ref (typically a CRB-off run of the base program). It
// returns nil when the transparency contract holds, or a *Divergence
// naming each mismatched component.
func Compare(ref, got Digest) error {
	var div Divergence
	add := func(name string, a, b any) {
		div.Components = append(div.Components, fmt.Sprintf("%s %v != %v", name, a, b))
	}
	if ref.Result != got.Result {
		add("result", ref.Result, got.Result)
	}
	if ref.MemWords != got.MemWords {
		add("mem-words", ref.MemWords, got.MemWords)
	} else if ref.MemHash != got.MemHash {
		add("mem-hash", fmt.Sprintf("%#x", ref.MemHash), fmt.Sprintf("%#x", got.MemHash))
	}
	if ref.StoreCount != got.StoreCount {
		add("store-count", ref.StoreCount, got.StoreCount)
	} else if ref.Stores != got.Stores {
		add("store-stream", fmt.Sprintf("%#x", ref.Stores), fmt.Sprintf("%#x", got.Stores))
	}
	if ref.RetsExact && got.RetsExact {
		if ref.RetCount != got.RetCount {
			add("ret-count", ref.RetCount, got.RetCount)
		} else if ref.Rets != got.Rets {
			add("ret-stream", fmt.Sprintf("%#x", ref.Rets), fmt.Sprintf("%#x", got.Rets))
		}
	}
	if len(div.Components) == 0 {
		return nil
	}
	return &div
}
