package oracle_test

import (
	"strings"
	"testing"

	"ccr/internal/core"
	"ccr/internal/oracle"
	"ccr/internal/workloads"
)

// TestDigestDeterministic pins the identity components: two runs of the
// same program under the same configuration produce bit-identical digests,
// trace checksum and instruction count included.
func TestDigestDeterministic(t *testing.T) {
	b := workloads.Load("compress", workloads.Tiny)
	core.Prepare(b.Prog)
	d1, err := core.DigestRun(b.Prog, nil, b.Train, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := core.DigestRun(b.Prog, nil, b.Train, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(d2) {
		t.Fatalf("repeated runs digest differently:\n%+v\n%+v", d1, d2)
	}
	if d1.DynInstrs == 0 || d1.StoreCount == 0 || d1.RetCount == 0 {
		t.Fatalf("digest missing components: %+v", d1)
	}
}

// TestTransparencyAcrossCRB is the §3.1 contract on a real benchmark: the
// CCR run's invariant components match the base run's, while the identity
// components legitimately differ (reuse hits skip instructions).
func TestTransparencyAcrossCRB(t *testing.T) {
	b := workloads.Load("compress", workloads.Tiny)
	opts := core.DefaultOptions()
	cr, err := core.Compile(b.Prog, b.Train, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.DigestRun(b.Prog, nil, b.Train, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.DigestRun(cr.Prog, &opts.CRB, b.Train, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.Compare(ref, got); err != nil {
		t.Fatalf("transparency violated: %v", err)
	}
	if got.DynInstrs >= ref.DynInstrs {
		t.Fatalf("CCR run traced %d instrs, base %d: no reuse happened?", got.DynInstrs, ref.DynInstrs)
	}
}

// TestCompareNamesEachComponent exercises the checker on synthetic digests:
// every mismatched invariant component is named, the identity components
// are ignored, and the ret stream is only compared when both sides are
// exact.
func TestCompareNamesEachComponent(t *testing.T) {
	base := oracle.Digest{
		Result: 1, MemHash: 2, MemWords: 3,
		Stores: 4, StoreCount: 5, Rets: 6, RetCount: 7, RetsExact: true,
		Trace: 8, DynInstrs: 9,
	}
	if err := oracle.Compare(base, base); err != nil {
		t.Fatalf("identical digests diverge: %v", err)
	}

	identity := base
	identity.Trace, identity.DynInstrs = 1000, 2000
	if err := oracle.Compare(base, identity); err != nil {
		t.Fatalf("identity components must not participate: %v", err)
	}

	for _, tc := range []struct {
		name   string
		mutate func(*oracle.Digest)
	}{
		{"result", func(d *oracle.Digest) { d.Result++ }},
		{"mem-hash", func(d *oracle.Digest) { d.MemHash++ }},
		{"mem-words", func(d *oracle.Digest) { d.MemWords++ }},
		{"store-stream", func(d *oracle.Digest) { d.Stores++ }},
		{"store-count", func(d *oracle.Digest) { d.StoreCount++ }},
		{"ret-stream", func(d *oracle.Digest) { d.Rets++ }},
		{"ret-count", func(d *oracle.Digest) { d.RetCount++ }},
	} {
		got := base
		tc.mutate(&got)
		err := oracle.Compare(base, got)
		if err == nil {
			t.Fatalf("%s mismatch undetected", tc.name)
		}
		if !strings.Contains(err.Error(), tc.name) {
			t.Fatalf("%s mismatch reported as %q", tc.name, err)
		}
	}

	// An inexact ret stream on either side disables the ret check only.
	inexact := base
	inexact.Rets, inexact.RetCount, inexact.RetsExact = 999, 999, false
	if err := oracle.Compare(base, inexact); err != nil {
		t.Fatalf("inexact ret stream must be skipped: %v", err)
	}
	inexact.Result++
	if oracle.Compare(base, inexact) == nil {
		t.Fatal("result mismatch undetected when rets inexact")
	}
}
