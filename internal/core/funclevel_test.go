package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccr/internal/ir"
	"ccr/internal/progen"
)

// buildPureCallBench: main(n) calls a pure table-driven function with
// recurring arguments; a second impure function (it stores) must never be
// selected at function level.
func buildPureCallBench(t testing.TB, tableWritable bool) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("flb")
	var tab ir.MemID
	if tableWritable {
		tab = pb.Object("tab", 8, []int64{3, 1, 4, 1, 5, 9, 2, 6})
	} else {
		tab = pb.ReadOnlyObject("tab", []int64{3, 1, 4, 1, 5, 9, 2, 6})
	}
	log := pb.Object("log", 8, nil)

	// pure(a, b): table lookup plus arithmetic — no stores anywhere.
	pure := pb.Func("pure", 2)
	pHot := pure.NewBlock()
	pMore := pure.NewBlock()
	pExit := pure.NewBlock()
	a, b := pure.Param(0), pure.Param(1)
	v, p0 := pure.NewReg(), pure.NewReg()
	pHot.AndI(v, a, 7)
	pHot.LeaIdx(p0, tab, v, 0)
	pHot.Ld(v, p0, 0, tab)
	pHot.Mul(v, v, b)
	pHot.BgtI(v, 1000, pExit.ID())
	pMore.MulI(v, v, 3)
	pMore.AddI(v, v, 7)
	pExit.Ret(v)

	// impure(x): writes a log entry — must be rejected.
	imp := pb.Func("impure", 1)
	iB := imp.NewBlock()
	ix, ip := imp.NewReg(), imp.NewReg()
	iB.AndI(ix, imp.Param(0), 7)
	iB.Lea(ip, log, 0)
	iB.Add(ip, ip, ix)
	iB.St(ip, 0, imp.Param(0), log)
	iB.Ret(ix)

	f := pb.Func("main", 1)
	pb.SetMain(f.ID())
	e := f.NewBlock()
	h := f.NewBlock()
	bo := f.NewBlock()
	mu := f.NewBlock()
	la := f.NewBlock()
	x := f.NewBlock()
	k, acc, s1, s2, r, tmp, mp := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(acc, 0)
	h.Bge(k, f.Param(0), x.ID())
	bo.AndI(s1, k, 3)
	bo.AndI(s2, k, 1)
	bo.AddI(s2, s2, 2)
	bo.Call(r, pure.ID(), s1, s2)
	bo.Add(acc, acc, r)
	bo.Call(r, imp.ID(), k)
	bo.Add(acc, acc, r)
	bo.RemI(tmp, k, 100)
	bo.BneI(tmp, 0, la.ID())
	mu.Lea(mp, tab, 3)
	if tableWritable {
		mu.St(mp, 0, k, tab)
	} else {
		mu.Nop()
		mu.Mov(mp, mp)
	}
	la.AddI(k, k, 1)
	la.Jmp(h.ID())
	x.Ret(acc)
	return ir.MustVerify(pb.Build())
}

func funcLevelOptions() Options {
	opts := DefaultOptions()
	opts.Region.FunctionLevel = true
	return opts
}

func TestFuncLevelFormationAndReuse(t *testing.T) {
	for _, writable := range []bool{false, true} {
		base := buildPureCallBench(t, writable)
		opts := funcLevelOptions()
		cr, err := Compile(base, []int64{1000}, opts)
		if err != nil {
			t.Fatalf("writable=%v: compile: %v", writable, err)
		}
		var fl *ir.Region
		for _, rg := range cr.Prog.Regions {
			if rg.Kind == ir.FuncLevel {
				if cr.Prog.Func(rg.Callee).Name == "impure" {
					t.Fatalf("impure callee selected at function level")
				}
				fl = rg
			}
		}
		if fl == nil {
			t.Fatalf("writable=%v: no function-level region formed", writable)
		}
		wantClass := ir.Stateless
		if writable {
			wantClass = ir.MemoryDependent
		}
		if fl.Class != wantClass {
			t.Errorf("writable=%v: class = %v", writable, fl.Class)
		}
		if len(fl.Inputs) != 2 || len(fl.Outputs) != 1 {
			t.Errorf("interface: in=%v out=%v", fl.Inputs, fl.Outputs)
		}

		baseRes, err := Simulate(base, nil, opts.Uarch, []int64{1000}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ccrRes, err := Simulate(cr.Prog, &opts.CRB, opts.Uarch, []int64{1000}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ccrRes.Result != baseRes.Result {
			t.Fatalf("writable=%v: result mismatch: %d vs %d", writable, ccrRes.Result, baseRes.Result)
		}
		rs := ccrRes.Emu.Regions[fl.ID]
		if rs == nil || rs.Hits == 0 {
			t.Fatalf("writable=%v: function-level region never hit: %+v", writable, rs)
		}
		// Eight (s1, s2) combinations: hits dominate after warmup.
		if rs.Hits < 900 {
			t.Errorf("writable=%v: hits = %d", writable, rs.Hits)
		}
		if writable && ccrRes.Emu.Invalidations == 0 {
			t.Error("writable table must trigger invalidations")
		}
		if ccrRes.Cycles >= baseRes.Cycles {
			t.Errorf("writable=%v: no speedup (%d vs %d)", writable, ccrRes.Cycles, baseRes.Cycles)
		}
	}
}

func TestFuncLevelInvalidationCorrectness(t *testing.T) {
	// With the writable table mutated every 100 iterations, reusing a
	// stale result would change the architectural outcome. Sweep CRB
	// configs and compare against the base run.
	base := buildPureCallBench(t, true)
	opts := funcLevelOptions()
	cr, err := Compile(base, []int64{500}, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunFunctional(base, nil, []int64{777}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, entries := range []int{1, 4, 128} {
		cfg := opts.CRB
		cfg.Entries = entries
		got, err := RunFunctional(cr.Prog, &cfg, []int64{777}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Result != want.Result {
			t.Fatalf("entries=%d: result %d, want %d", entries, got.Result, want.Result)
		}
	}
}

// TestFuncLevelEquivalenceOnRandomPrograms extends the central equivalence
// property to the function-level extension: random programs, aggressive
// thresholds, function-level formation enabled.
func TestFuncLevelEquivalenceOnRandomPrograms(t *testing.T) {
	opts := aggressiveOptions()
	opts.Region.FunctionLevel = true
	cfg := opts.CRB
	formed := 0
	f := func(seed uint64, arg uint8) bool {
		base := progen.Generate(seed, progen.DefaultConfig())
		cr, err := Compile(base, []int64{int64(arg)}, opts)
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		for _, rg := range cr.Prog.Regions {
			if rg.Kind == ir.FuncLevel {
				formed++
			}
		}
		return runBoth(t, base, cr.Prog, &cfg, int64(arg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
	if formed == 0 {
		t.Fatal("no random program formed a function-level region; property vacuous")
	}
}
