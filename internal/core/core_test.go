package core

import (
	"testing"

	"ccr/internal/crb"
	"ccr/internal/emu"
	"ccr/internal/ir"
	"ccr/internal/oracle"
	"ccr/internal/reuse"
	"ccr/internal/workloads"
)

// buildScanBench builds an m88ksim-like benchmark: main repeatedly calls
// scan(), which walks a 16-entry table; the table changes rarely (every
// 64th outer iteration), so scan's loop is a highly reusable cyclic region.
func buildScanBench(t testing.TB) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("scanbench")
	init := make([]int64, 16)
	for i := range init {
		init[i] = int64(i * 3)
	}
	table := pb.Object("table", 16, init)

	// scan() = sum over table[i] * (i+1)
	scan := pb.Func("scan", 0)
	sEntry := scan.NewBlock()
	sHead := scan.NewBlock()
	sBody := scan.NewBlock()
	sExit := scan.NewBlock()
	sum, i, base, addr, v, w := scan.NewReg(), scan.NewReg(), scan.NewReg(), scan.NewReg(), scan.NewReg(), scan.NewReg()
	sEntry.MovI(sum, 0)
	sEntry.MovI(i, 0)
	sEntry.Lea(base, table, 0)
	sHead.BgeI(i, 16, sExit.ID())
	sBody.Add(addr, base, i)
	sBody.Ld(v, addr, 0, table)
	sBody.AddI(w, i, 1)
	sBody.Mul(v, v, w)
	sBody.Add(sum, sum, v)
	sBody.AddI(i, i, 1)
	sBody.Jmp(sHead.ID())
	sExit.Ret(sum)

	// main(iters): total += scan() each iteration; mutate table rarely.
	f := pb.Func("main", 1)
	iters := f.Param(0)
	mEntry := f.NewBlock()
	mHead := f.NewBlock()
	mCall := f.NewBlock()
	mMut := f.NewBlock()
	mLatch := f.NewBlock()
	mExit := f.NewBlock()
	total, k, r, tmp, taddr := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	mEntry.MovI(total, 0)
	mEntry.MovI(k, 0)
	mHead.Bge(k, iters, mExit.ID())
	mCall.Call(r, scan.ID())
	mCall.Add(total, total, r)
	mCall.RemI(tmp, k, 64)
	mCall.BneI(tmp, 0, mLatch.ID())
	mMut.Lea(taddr, table, 5)
	mMut.St(taddr, 0, k, table)
	mLatch.AddI(k, k, 1)
	mLatch.Jmp(mHead.ID())
	mExit.Ret(total)

	p := pb.Build()
	if err := ir.Verify(p); err != nil {
		t.Fatalf("verify base: %v", err)
	}
	return p
}

func TestEndToEndCyclicReuse(t *testing.T) {
	base := buildScanBench(t)
	opts := DefaultOptions()
	const iters = 2000

	cr, err := Compile(base, []int64{iters}, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(cr.Plans) == 0 {
		t.Fatal("no regions formed; expected the scan loop to become a cyclic region")
	}
	foundCyclic := false
	for _, pl := range cr.Plans {
		if pl.Kind == ir.Cyclic {
			foundCyclic = true
			if pl.Class != ir.MemoryDependent {
				t.Errorf("scan loop region class = %v, want MD (reads a writable table)", pl.Class)
			}
		}
	}
	if !foundCyclic {
		t.Fatalf("no cyclic region among %d plans", len(cr.Plans))
	}

	baseRes, err := Simulate(base, nil, opts.Uarch, []int64{iters}, 0)
	if err != nil {
		t.Fatalf("simulate base: %v", err)
	}
	ccrRes, err := Simulate(cr.Prog, &opts.CRB, opts.Uarch, []int64{iters}, 0)
	if err != nil {
		t.Fatalf("simulate ccr: %v", err)
	}

	if baseRes.Result != ccrRes.Result {
		t.Fatalf("architectural mismatch: base %d, ccr %d", baseRes.Result, ccrRes.Result)
	}
	if ccrRes.Emu.ReuseHits == 0 {
		t.Fatalf("no reuse hits: %+v", ccrRes.Emu)
	}
	// The table mutates every 64 invocations, so misses should be rare.
	hitRate := float64(ccrRes.Emu.ReuseHits) / float64(ccrRes.Emu.ReuseHits+ccrRes.Emu.ReuseMisses)
	if hitRate < 0.9 {
		t.Errorf("reuse hit rate %.2f, want ≥ 0.9 (hits=%d misses=%d)",
			hitRate, ccrRes.Emu.ReuseHits, ccrRes.Emu.ReuseMisses)
	}
	if ccrRes.Emu.Invalidations == 0 {
		t.Error("expected invalidate instructions to execute after table stores")
	}
	sp := Speedup(baseRes, ccrRes)
	if sp <= 1.1 {
		t.Errorf("speedup = %.3f, want > 1.1 (base %d cycles, ccr %d cycles)",
			sp, baseRes.Cycles, ccrRes.Cycles)
	}
	// Reuse must eliminate most of scan's dynamic instructions.
	if ccrRes.Emu.DynInstrs >= baseRes.Emu.DynInstrs {
		t.Errorf("ccr executed %d instrs, base %d — reuse eliminated nothing",
			ccrRes.Emu.DynInstrs, baseRes.Emu.DynInstrs)
	}
}

func TestCCRWithoutBufferMatchesBase(t *testing.T) {
	base := buildScanBench(t)
	opts := DefaultOptions()
	cr, err := Compile(base, []int64{500}, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// With no CRB, every reuse misses; the transformed program must still
	// compute the base result.
	got, err := RunFunctional(cr.Prog, nil, []int64{321}, 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want, err := RunFunctional(base, nil, []int64{321}, 0)
	if err != nil {
		t.Fatalf("run base: %v", err)
	}
	if got.Result != want.Result {
		t.Fatalf("result %d, want %d", got.Result, want.Result)
	}
}

// TestSchemeOffBitIdenticalToLegacyRun proves the reuse-scheme seam is
// inert when disabled: selecting scheme "off" through the full scheme
// plumbing must produce the complete identity digest — invariant
// components plus Trace and DynInstrs — of a hand-rolled legacy machine
// run that never touches the CRB or DTM fields. Checked on both engines
// for a synthetic benchmark and a real workload.
func TestSchemeOffBitIdenticalToLegacyRun(t *testing.T) {
	type tc struct {
		name string
		prog *ir.Program
		args []int64
	}
	cases := []tc{{"scanbench", buildScanBench(t), []int64{300}}}
	b := workloads.Load("compress", workloads.Tiny)
	cases = append(cases, tc{"compress", b.Prog, b.Train})

	legacy := func(prog *ir.Program, args []int64, interp bool) oracle.Digest {
		m := emu.New(prog)
		m.Interp = interp
		col := oracle.NewCollector(prog)
		m.Trace = col.Tracer()
		res, err := m.Run(args...)
		if err != nil {
			t.Fatalf("legacy run: %v", err)
		}
		return col.Finish(res, m.Mem)
	}
	for _, c := range cases {
		for _, interp := range []bool{false, true} {
			want := legacy(c.prog, c.args, interp)
			got, err := DigestRunReuseEngine(c.prog, reuse.Config{Scheme: reuse.Off}, c.args, 0, interp)
			if err != nil {
				t.Fatalf("%s: scheme-off run: %v", c.name, err)
			}
			if !got.Equal(want) {
				t.Errorf("%s (interp=%v): scheme off diverged from legacy run:\n got %+v\nwant %+v",
					c.name, interp, got, want)
			}
		}
	}
}

func TestEquivalenceAcrossCRBConfigs(t *testing.T) {
	base := buildScanBench(t)
	opts := DefaultOptions()
	cr, err := Compile(base, []int64{800}, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	want, err := RunFunctional(base, nil, []int64{1000}, 0)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	configs := []crb.Config{
		{Entries: 1, Instances: 1, Assoc: 1, NoMemEntriesFrac: 0},
		{Entries: 2, Instances: 1, Assoc: 1, NoMemEntriesFrac: 0},
		{Entries: 32, Instances: 4, Assoc: 1, NoMemEntriesFrac: 0},
		{Entries: 128, Instances: 16, Assoc: 1, NoMemEntriesFrac: 0},
		{Entries: 64, Instances: 8, Assoc: 4, NoMemEntriesFrac: 0},
		{Entries: 128, Instances: 8, Assoc: 1, NoMemEntriesFrac: 0.5},
		{Entries: 128, Instances: 8, Assoc: 1, NoMemEntriesFrac: 1},
	}
	for _, cfg := range configs {
		got, err := RunFunctional(cr.Prog, &cfg, []int64{1000}, 0)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if got.Result != want.Result {
			t.Fatalf("cfg %+v: result %d, want %d", cfg, got.Result, want.Result)
		}
	}
}
