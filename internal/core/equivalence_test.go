package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccr/internal/crb"
	"ccr/internal/emu"
	"ccr/internal/ir"
	"ccr/internal/progen"
)

// aggressiveOptions forms as many regions as possible — zeroed heuristic
// thresholds — so the equivalence property exercises the memoization,
// commit, reuse and invalidation machinery on arbitrary program shapes
// regardless of profitability.
func aggressiveOptions() Options {
	opts := DefaultOptions()
	opts.Region.R = 0
	opts.Region.Rm = 0
	opts.Region.MinLiveInInvariance = 0
	opts.Region.BlockReusableFrac = 0
	opts.Region.CyclicReuseOpportunity = -1
	opts.Region.CyclicMultiIter = -1
	opts.Region.MinStaticSize = 1
	opts.Region.MinExecFrac = 0
	return opts
}

// runBoth executes the base and transformed programs functionally and
// compares the architectural outcome: return value and final memory image.
func runBoth(t *testing.T, base, ccrProg *ir.Program, cfg *crb.Config, arg int64) bool {
	t.Helper()
	mb := emu.New(base)
	mb.Limit = 4_000_000
	wantRes, err := mb.Run(arg)
	if err == emu.ErrLimit {
		// Deeply nested generated loops can legitimately exceed the
		// budget; nothing to compare for this seed.
		return true
	}
	if err != nil {
		t.Logf("base run: %v", err)
		return false
	}
	mc := emu.New(ccrProg)
	mc.Limit = 8_000_000
	if cfg != nil {
		mc.CRB = crb.New(*cfg, ccrProg)
	}
	gotRes, err := mc.Run(arg)
	if err != nil {
		t.Logf("ccr run: %v", err)
		return false
	}
	if gotRes != wantRes {
		t.Logf("result mismatch: ccr %d, base %d", gotRes, wantRes)
		return false
	}
	if len(mb.Mem) != len(mc.Mem) {
		t.Logf("memory size mismatch")
		return false
	}
	for i := range mb.Mem {
		if mb.Mem[i] != mc.Mem[i] {
			t.Logf("memory mismatch at word %d: ccr %d, base %d", i, mc.Mem[i], mb.Mem[i])
			return false
		}
	}
	return true
}

// TestEquivalenceOnRandomPrograms is the central correctness property of
// the whole framework: for random programs, aggressive region formation,
// and any CRB geometry, the transformed program computes exactly the base
// program's results — reuse may only change timing.
func TestEquivalenceOnRandomPrograms(t *testing.T) {
	configs := []crb.Config{
		{Entries: 1, Instances: 1},
		{Entries: 4, Instances: 2},
		{Entries: 128, Instances: 8},
		{Entries: 16, Instances: 4, Assoc: 4},
		{Entries: 128, Instances: 8, NoMemEntriesFrac: 0.75},
	}
	opts := aggressiveOptions()
	checked := 0
	f := func(seed uint64, trainArg, runArg uint8) bool {
		base := progen.Generate(seed, progen.DefaultConfig())
		cr, err := Compile(base, []int64{int64(trainArg)}, opts)
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		if len(cr.Plans) > 0 {
			checked++
		}
		cfg := configs[seed%uint64(len(configs))]
		if !runBoth(t, base, cr.Prog, &cfg, int64(runArg)) {
			t.Logf("seed %d (plans=%d, cfg=%+v)", seed, len(cr.Plans), cfg)
			return false
		}
		// Also without any CRB: every reuse misses.
		return runBoth(t, base, cr.Prog, nil, int64(runArg)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no random program formed any region; the property was vacuous")
	}
}

// TestEquivalenceDenseStores stresses invalidation: programs with heavy
// store traffic must still reuse only valid instances.
func TestEquivalenceDenseStores(t *testing.T) {
	cfg := progen.DefaultConfig()
	cfg.StoreBias = 70
	cfg.ReadOnly = 10
	cfg.MaxDepth = 4
	opts := aggressiveOptions()
	crbCfg := crb.Config{Entries: 8, Instances: 2}
	f := func(seed uint64, arg uint8) bool {
		base := progen.Generate(seed, cfg)
		cr, err := Compile(base, []int64{3}, opts)
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		return runBoth(t, base, cr.Prog, &crbCfg, int64(arg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// TestEquivalenceOnWorkloadsDefaultOptions is covered in the workloads
// package; here we re-run random programs under the paper's default
// formation thresholds as a complement.
func TestEquivalenceDefaultThresholds(t *testing.T) {
	opts := DefaultOptions()
	crbCfg := opts.CRB
	f := func(seed uint64, arg uint8) bool {
		base := progen.Generate(seed, progen.DefaultConfig())
		cr, err := Compile(base, []int64{int64(arg)}, opts)
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		return runBoth(t, base, cr.Prog, &crbCfg, int64(arg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// TestRegionPlansRespectCaps checks the formation invariants on random
// programs: every plan fits the instance banks and accordance limits.
func TestRegionPlansRespectCaps(t *testing.T) {
	opts := aggressiveOptions()
	f := func(seed uint64) bool {
		base := progen.Generate(seed, progen.DefaultConfig())
		cr, err := Compile(base, []int64{7}, opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, pl := range cr.Plans {
			if len(pl.Inputs) > ir.RegionBankSize || len(pl.Outputs) > ir.RegionBankSize {
				t.Logf("seed %d: plan exceeds bank size: %+v", seed, pl)
				return false
			}
			if len(pl.MemObjects) > ir.RegionMaxMemObjects {
				t.Logf("seed %d: plan exceeds accordance: %+v", seed, pl)
				return false
			}
			if pl.Kind != ir.Cyclic && pl.Kind != ir.Acyclic {
				return false
			}
		}
		// The transformed program must re-verify (done inside Transform,
		// but assert regions exist when plans do).
		return len(cr.Prog.Regions) == len(cr.Plans)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
