package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccr/internal/ir"
	"ccr/internal/progen"
	"ccr/internal/workloads"
)

// TestDumpParseRoundTripWorkloads serializes every benchmark (base and
// transformed) to text and back, requiring byte-identical re-serialization
// and identical execution results.
func TestDumpParseRoundTripWorkloads(t *testing.T) {
	opts := DefaultOptions()
	for _, name := range workloads.Names() {
		b := workloads.Load(name, workloads.Tiny)
		cr, err := Compile(b.Prog, b.Train, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		for _, prog := range []*ir.Program{b.Prog, cr.Prog} {
			text := prog.Dump()
			re, err := ir.Parse(text)
			if err != nil {
				t.Fatalf("%s: parse: %v", name, err)
			}
			if err := ir.Verify(re); err != nil {
				t.Fatalf("%s: verify reparsed: %v", name, err)
			}
			if re.Dump() != text {
				t.Fatalf("%s: dump/parse/dump not a fixpoint", name)
			}
			want, err := RunFunctional(prog, nil, b.Train, 0)
			if err != nil {
				t.Fatalf("%s: run original: %v", name, err)
			}
			got, err := RunFunctional(re, nil, b.Train, 0)
			if err != nil {
				t.Fatalf("%s: run reparsed: %v", name, err)
			}
			if got.Result != want.Result {
				t.Fatalf("%s: reparsed result %d != %d", name, got.Result, want.Result)
			}
		}
	}
}

// TestDumpParseRoundTripRandom extends the round-trip property to random
// programs.
func TestDumpParseRoundTripRandom(t *testing.T) {
	f := func(seed uint64) bool {
		p := progen.Generate(seed, progen.DefaultConfig())
		text := p.Dump()
		re, err := ir.Parse(text)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return re.Dump() == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}
