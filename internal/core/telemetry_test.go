package core

import (
	"reflect"
	"testing"

	"ccr/internal/crb"
	"ccr/internal/emu"
	"ccr/internal/oracle"
	"ccr/internal/telemetry"
	"ccr/internal/workloads"
)

// TestTelemetryDoesNotPerturbSimulation is the timing-level half of the
// zero-overhead sink invariant (DESIGN.md §9): attaching the full
// telemetry bundle — metrics sink on the CRB plus the event trace teed
// into the timing tracer — must leave every architectural and
// microarchitectural observable of the run bit-identical to the
// uninstrumented path.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	base := buildScanBench(t)
	opts := DefaultOptions()
	const iters = 1000
	cr, err := Compile(base, []int64{iters}, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	plain, err := Simulate(cr.Prog, &opts.CRB, opts.Uarch, []int64{iters}, 0)
	if err != nil {
		t.Fatalf("simulate plain: %v", err)
	}
	tel := &Telemetry{Metrics: telemetry.NewMetrics(), Trace: telemetry.NewTrace(0)}
	instr, err := SimulateWith(cr.Prog, &opts.CRB, opts.Uarch, []int64{iters}, 0, tel)
	if err != nil {
		t.Fatalf("simulate instrumented: %v", err)
	}

	if plain.Result != instr.Result {
		t.Errorf("Result diverged: %d vs %d", plain.Result, instr.Result)
	}
	if plain.Cycles != instr.Cycles {
		t.Errorf("Cycles diverged: %d vs %d", plain.Cycles, instr.Cycles)
	}
	if !reflect.DeepEqual(plain.Emu, instr.Emu) {
		t.Errorf("emu stats diverged:\nplain: %+v\ninstr: %+v", plain.Emu, instr.Emu)
	}
	if plain.Uarch != instr.Uarch {
		t.Errorf("uarch stats diverged:\nplain: %+v\ninstr: %+v", plain.Uarch, instr.Uarch)
	}
	if *plain.CRB != *instr.CRB {
		t.Errorf("CRB stats diverged:\nplain: %+v\ninstr: %+v", *plain.CRB, *instr.CRB)
	}
	if tel.Trace.Total() == 0 {
		t.Error("trace collected nothing on a reuse-heavy run")
	}
}

// TestTelemetryPreservesOracleDigest is the oracle-level transparency
// gate: a CCR run with the metrics sink and event trace attached must
// produce the exact architectural digest — including the full dynamic
// trace checksum, which Compare deliberately ignores — of the same run
// uninstrumented.
func TestTelemetryPreservesOracleDigest(t *testing.T) {
	base := buildScanBench(t)
	opts := DefaultOptions()
	const iters = 800
	cr, err := Compile(base, []int64{iters}, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	plain, err := DigestRun(cr.Prog, &opts.CRB, []int64{iters}, 0)
	if err != nil {
		t.Fatalf("digest plain: %v", err)
	}

	m := emu.New(cr.Prog)
	buf := crb.New(opts.CRB, cr.Prog)
	buf.SetSink(telemetry.NewMetrics())
	m.CRB = buf
	col := oracle.NewCollector(cr.Prog)
	m.Trace = emu.Tee(col.Tracer(), emu.TelemetryTracer(telemetry.NewTrace(0)))
	res, err := m.Run(iters)
	if err != nil {
		t.Fatalf("instrumented run: %v", err)
	}
	instr := col.Finish(res, m.Mem)

	if err := oracle.Compare(plain, instr); err != nil {
		t.Fatalf("telemetry broke transparency: %v", err)
	}
	if plain != instr {
		t.Fatalf("digest identity diverged:\nplain: %+v\ninstr: %+v", plain, instr)
	}
}

// TestMetricsSumToFlatStats pins the partition invariant documented on
// RegionMetrics: the cause-attributed per-region counters, summed over all
// regions, reproduce the flat crb.Stats totals exactly. A deliberately
// tiny CRB (2 entries × 1 instance) forces conflict evictions and slot
// overwrites alongside the invalidation traffic the mutating table
// generates, so every counter pair is exercised with nonzero values.
func TestMetricsSumToFlatStats(t *testing.T) {
	b, err := workloads.Lookup("m88ksim", workloads.Small)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	cr, err := Compile(b.Prog, b.Train, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	cfg := crb.Config{Entries: 2, Instances: 1}
	tel := &Telemetry{Metrics: telemetry.NewMetrics(), Trace: telemetry.NewTrace(1 << 20)}
	res, err := SimulateWith(cr.Prog, &cfg, opts.Uarch, b.Train, 0, tel)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}

	st := *res.CRB
	s := tel.Metrics.Summary()
	check := func(name string, got, want int64) {
		t.Helper()
		if got != want {
			t.Errorf("%s: telemetry sum %d != flat stat %d", name, got, want)
		}
	}
	check("Lookups", s.Lookups, st.Lookups)
	check("Hits", s.Hits, st.Hits)
	check("TagMisses = cold+conflict", s.MissCold+s.MissConflict, st.TagMisses)
	check("InputMisses = input+mem-invalid", s.MissInput+s.MissMemInvalid, st.InputMisses)
	check("Records", s.Commits, st.Records)
	check("RecordFails", s.CommitFails, st.RecordFails)
	check("Evictions", s.Evictions, st.Evictions)
	check("Invalidates", s.Invalidated, st.Invalidates)
	check("emu Invalidations", s.Invalidations, res.Emu.Invalidations)

	// Per-object fan-out totals must also agree with the flat invalidated
	// instance count.
	var fanout int64
	for _, mr := range tel.Metrics.Report().Mem {
		fanout += mr.Fanout
	}
	check("mem fan-out", fanout, st.Invalidates)

	// The tiny geometry must actually have exercised the interesting
	// causes, or the partition check proves nothing.
	if s.MissConflict == 0 || s.Evictions == 0 {
		t.Errorf("geometry too gentle: no conflict pressure in %+v", s)
	}
	if s.Invalidated == 0 {
		t.Errorf("no invalidation traffic in %+v", s)
	}

	// Trace-side cross-check: event counts equal the emulator's own view.
	var hits, enters, invals int64
	for _, ev := range tel.Trace.Events() {
		switch ev.Kind {
		case telemetry.EventReuseHit:
			hits++
		case telemetry.EventRegionEnter:
			enters++
		case telemetry.EventInvalidate:
			invals++
		}
	}
	if tel.Trace.Dropped() != 0 {
		t.Fatalf("trace overflowed (%d dropped); raise the test capacity", tel.Trace.Dropped())
	}
	check("trace hits", hits, res.Emu.ReuseHits)
	check("trace enters", enters, res.Emu.ReuseMisses)
	check("trace invals", invals, res.Emu.Invalidations)
}
