// Package core is the top-level API of the Compiler-directed Computation
// Reuse (CCR) framework — the paper's primary contribution assembled into a
// usable pipeline:
//
//	compile:  alias analysis → value profiling (RPS) → RCR formation →
//	          CCR transformation (reuse/invalidate insertion)
//	simulate: functional emulation against a Computation Reuse Buffer,
//	          driving the cycle-level 6-issue timing model
//
// A typical use:
//
//	cr, _ := core.Compile(prog, trainArgs, core.DefaultOptions())
//	base, _ := core.Simulate(prog, nil, cfg.Uarch, refArgs)
//	ccr, _ := core.Simulate(cr.Prog, &cfg.CRB, cfg.Uarch, refArgs)
//	fmt.Println(core.Speedup(base, ccr))
package core

import (
	"fmt"

	"ccr/internal/alias"
	"ccr/internal/crb"
	"ccr/internal/emu"
	"ccr/internal/ir"
	"ccr/internal/oracle"
	"ccr/internal/region"
	"ccr/internal/reuse"
	"ccr/internal/telemetry"
	"ccr/internal/uarch"
	"ccr/internal/vprof"
	"ccr/internal/xform"
)

// Options configures the whole pipeline.
type Options struct {
	Region region.Options
	CRB    crb.Config
	// DTM is the trace-buffer geometry used by the dtm/both reuse schemes
	// (see internal/reuse); irrelevant — and excluded from cache keys —
	// when only the CCR scheme runs.
	DTM   reuse.DTMConfig
	Uarch uarch.Config
	// Limit bounds each emulated run's dynamic instructions (0 = default).
	Limit int64
}

// DefaultOptions returns the paper's configuration: §4.4 heuristics, a
// 128-entry × 8-instance direct-mapped CRB and the §5.1 machine, plus the
// default trace-buffer geometry for the DTM scheme.
func DefaultOptions() Options {
	return Options{
		Region: region.DefaultOptions(),
		CRB:    crb.DefaultConfig(),
		DTM:    reuse.DefaultDTMConfig(),
		Uarch:  uarch.DefaultConfig(),
	}
}

// CompileResult is the output of the CCR compilation pipeline.
type CompileResult struct {
	// Prog is the transformed program: reuse instructions at region
	// inception points, annotated live-outs and region ends, and
	// invalidate instructions after relevant stores.
	Prog *ir.Program
	// Plans are the selected regions on the base program.
	Plans []*region.Plan
	// Profile is the RPS profile gathered on the training run.
	Profile *vprof.Profile
	// Alias is the whole-program memory analysis.
	Alias *alias.Result
	// TrainResult is the architectural result of the profiling run.
	TrainResult int64
}

// Compile runs the CCR compiler support on base: alias analysis and
// annotation, value profiling with the given training arguments, region
// formation, and transformation. base is annotated in place with alias
// attributes; the returned Prog is an independent transformed clone.
func Compile(base *ir.Program, trainArgs []int64, opts Options) (*CompileResult, error) {
	return CompileWith(base, Prepare(base), trainArgs, opts)
}

// Prepare runs the whole-program alias analysis and writes its annotations
// into base. It is the only pipeline step that mutates the base program, so
// callers sharing one program across goroutines can Prepare it once up
// front and then compile and simulate it concurrently through CompileWith
// and Simulate, which only read it.
func Prepare(base *ir.Program) *alias.Result {
	ar := alias.Analyze(base)
	ar.Annotate()
	return ar
}

// CompileWith is Compile with the alias analysis already performed (see
// Prepare); it does not mutate base.
func CompileWith(base *ir.Program, ar *alias.Result, trainArgs []int64, opts Options) (*CompileResult, error) {
	prof, trainResult, err := ProfileRun(base, trainArgs, opts.Limit)
	if err != nil {
		return nil, fmt.Errorf("core: profiling run: %w", err)
	}

	plans := region.Form(base, prof, ar, opts.Region)
	prog, err := xform.Transform(base, plans)
	if err != nil {
		return nil, err
	}
	return &CompileResult{
		Prog:        prog,
		Plans:       plans,
		Profile:     prof,
		Alias:       ar,
		TrainResult: trainResult,
	}, nil
}

// ProfileRun executes base functionally under the RPS profiler and returns
// the finished profile and the program result.
func ProfileRun(base *ir.Program, args []int64, limit int64) (*vprof.Profile, int64, error) {
	profiler := vprof.NewProfiler(base)
	m := emu.New(base)
	m.Trace = profiler.Tracer()
	m.Limit = limit
	res, err := m.Run(args...)
	if err != nil {
		return nil, 0, err
	}
	return profiler.Finish(), res, nil
}

// SimResult is one timed run.
type SimResult struct {
	Result int64
	Cycles int64
	Emu    emu.Stats
	Uarch  uarch.Stats
	CRB    *crb.Stats // nil when run without a CRB
	// DTM and DTMHeads report the trace-memoization buffer of a dtm/both
	// run: flat counters and the per-head reuse contributions the
	// decanting figures decompose. Both nil otherwise.
	DTM      *reuse.Stats
	DTMHeads []reuse.HeadStat
}

// Telemetry bundles the opt-in observability attachments of one simulated
// run (internal/telemetry). Both fields are optional; a nil Telemetry (or
// nil fields) reproduces the uninstrumented fast path exactly.
type Telemetry struct {
	// Metrics, when non-nil, is attached to the CRB as its sink and
	// accumulates cause-attributed per-region counters.
	Metrics *telemetry.Metrics
	// Trace, when non-nil, collects reuse-relevant dynamic events; timed
	// runs stamp them with the timing model's cycle counter.
	Trace *telemetry.Trace
}

// Simulate executes prog with the cycle-level timing model. A non-nil
// crbCfg attaches a Computation Reuse Buffer, enabling the CCR extensions;
// with nil, reuse instructions (if any) always miss.
func Simulate(prog *ir.Program, crbCfg *crb.Config, ucfg uarch.Config, args []int64, limit int64) (*SimResult, error) {
	return SimulateWith(prog, crbCfg, ucfg, args, limit, nil)
}

// SimulateWith is Simulate with an optional telemetry attachment.
func SimulateWith(prog *ir.Program, crbCfg *crb.Config, ucfg uarch.Config, args []int64, limit int64, tel *Telemetry) (*SimResult, error) {
	return SimulateReuse(prog, reuseConfigOf(crbCfg), ucfg, args, limit, tel)
}

// reuseConfigOf maps the legacy optional-CRB calling convention onto the
// scheme seam: nil means no reuse hardware at all (scheme off), non-nil
// means the classic CCR configuration.
func reuseConfigOf(crbCfg *crb.Config) reuse.Config {
	if crbCfg == nil {
		return reuse.Config{Scheme: reuse.Off}
	}
	return reuse.CCR(*crbCfg)
}

// attachReuse builds and attaches the reuse backends rc selects to m,
// wiring the telemetry sink when present. Either return may be nil.
func attachReuse(m *emu.Machine, prog *ir.Program, rc reuse.Config, tel *Telemetry) (*crb.CRB, *reuse.DTM) {
	var buf *crb.CRB
	var dtm *reuse.DTM
	if rc.Scheme.UsesCCR() {
		buf = crb.New(rc.CRB, prog)
		if tel != nil && tel.Metrics != nil {
			buf.SetSink(tel.Metrics)
		}
		m.CRB = buf
	}
	if rc.Scheme.UsesDTM() {
		dtm = reuse.NewDTM(rc.DTM, prog)
		if tel != nil && tel.Metrics != nil {
			dtm.SetSink(tel.Metrics)
		}
		m.DTM = dtm
	}
	return buf, dtm
}

// SimulateReuse executes prog with the cycle-level timing model under an
// arbitrary reuse scheme: a CRB for ccr, a trace-memoization buffer for
// dtm, both side by side for both, and neither for off. It is the
// scheme-generic core that SimulateWith wraps.
func SimulateReuse(prog *ir.Program, rc reuse.Config, ucfg uarch.Config, args []int64, limit int64, tel *Telemetry) (*SimResult, error) {
	m := emu.New(prog)
	m.Limit = limit
	buf, dtm := attachReuse(m, prog, rc, tel)
	sim := uarch.NewSimulator(ucfg, prog)
	if tel != nil && tel.Trace != nil {
		tel.Trace.SetClock(sim.CycleCount)
		m.Trace = emu.Tee(sim.Tracer(), emu.TelemetryTracer(tel.Trace))
	} else {
		m.Trace = sim.Tracer()
	}
	res, err := m.Run(args...)
	if err != nil {
		return nil, err
	}
	out := &SimResult{
		Result: res,
		Emu:    m.Stats,
		Uarch:  sim.Stats(),
	}
	out.Cycles = out.Uarch.Cycles
	if buf != nil {
		st := buf.Stats()
		out.CRB = &st
	}
	if dtm != nil {
		st := dtm.Stats()
		out.DTM = &st
		out.DTMHeads = dtm.HeadStats()
	}
	return out, nil
}

// RunFunctional executes prog without timing, optionally with a CRB —
// used by correctness tests and the reuse-potential study.
func RunFunctional(prog *ir.Program, crbCfg *crb.Config, args []int64, limit int64) (*SimResult, error) {
	return RunFunctionalReuse(prog, reuseConfigOf(crbCfg), args, limit)
}

// RunFunctionalReuse is RunFunctional generalized over the reuse scheme.
func RunFunctionalReuse(prog *ir.Program, rc reuse.Config, args []int64, limit int64) (*SimResult, error) {
	m := emu.New(prog)
	m.Limit = limit
	buf, dtm := attachReuse(m, prog, rc, nil)
	res, err := m.Run(args...)
	if err != nil {
		return nil, err
	}
	out := &SimResult{Result: res, Emu: m.Stats}
	if buf != nil {
		st := buf.Stats()
		out.CRB = &st
	}
	if dtm != nil {
		st := dtm.Stats()
		out.DTM = &st
		out.DTMHeads = dtm.HeadStats()
	}
	return out, nil
}

// DigestRun executes prog functionally and returns the architectural
// digest of the run (see internal/oracle): final result, final memory
// image, and the store/return-value streams. A non-nil crbCfg attaches a
// CRB; digesting a base run with nil and a CCR run with a configuration,
// then oracle.Compare-ing the two, checks the paper's §3.1 transparency
// contract for that benchmark, input and CRB geometry.
func DigestRun(prog *ir.Program, crbCfg *crb.Config, args []int64, limit int64) (oracle.Digest, error) {
	return digestRun(prog, reuseConfigOf(crbCfg), args, limit, emu.New)
}

// DigestRunEngine is DigestRun with the execution engine pinned: interp
// true forces the legacy block-structured interpreter, false the
// predecoded engine, regardless of the CCR_ENGINE environment default.
// Comparing the two digests for one (program, config, input) point is the
// engine-equivalence gate (TestEngineDifferential, ci's sweep).
func DigestRunEngine(prog *ir.Program, crbCfg *crb.Config, args []int64, limit int64, interp bool) (oracle.Digest, error) {
	return DigestRunReuseEngine(prog, reuseConfigOf(crbCfg), args, limit, interp)
}

// DigestRunReuse is DigestRun generalized over the reuse scheme: it
// digests a run with whichever backends rc selects attached, so the
// transparency contract can be checked for ccr, dtm and both alike
// against a scheme-off base digest of the same program and input.
func DigestRunReuse(prog *ir.Program, rc reuse.Config, args []int64, limit int64) (oracle.Digest, error) {
	return digestRun(prog, rc, args, limit, emu.New)
}

// DigestRunReuseEngine is DigestRunReuse with the execution engine pinned
// (see DigestRunEngine).
func DigestRunReuseEngine(prog *ir.Program, rc reuse.Config, args []int64, limit int64, interp bool) (oracle.Digest, error) {
	return digestRun(prog, rc, args, limit, func(p *ir.Program) *emu.Machine {
		m := emu.New(p)
		m.Interp = interp
		return m
	})
}

func digestRun(prog *ir.Program, rc reuse.Config, args []int64, limit int64, newMachine func(*ir.Program) *emu.Machine) (oracle.Digest, error) {
	m := newMachine(prog)
	m.Limit = limit
	attachReuse(m, prog, rc, nil)
	col := oracle.NewCollector(prog)
	m.Trace = col.Tracer()
	res, err := m.Run(args...)
	if err != nil {
		return oracle.Digest{}, err
	}
	return col.Finish(res, m.Mem), nil
}

// Speedup returns base cycles divided by ccr cycles — the paper's
// performance metric.
func Speedup(base, ccr *SimResult) float64 {
	if ccr.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(ccr.Cycles)
}
