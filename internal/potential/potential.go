// Package potential implements the computation-reuse limit study of the
// paper's §2.3 (Figure 4): the fraction of dynamic program execution that
// is redundant at basic-block granularity and at region granularity, with
// an eight-record history per code segment.
//
// Block-level reuse considers the values a block consumes (its
// upward-exposed register uses at entry plus the version stamps of every
// memory object it loads); a dynamic block execution is reusable when that
// signature matches one of the previous eight executions. Store
// instructions are never counted reusable, and blocks containing calls or
// returns are excluded, following the paper's evaluation guidelines.
//
// Region-level reuse subsumes block reuse and adds cyclic recurrence: an
// entire inner-loop invocation is reusable when its invocation signature
// (live-in register values plus loaded-object versions) recurs within the
// history, even though the loop's individual blocks — whose index variables
// and branches change every iteration — show no block-level repetition.
// This reproduces the paper's observation that region-level mechanisms can
// exploit roughly twice the execution available to block-level approaches.
package potential

import (
	"ccr/internal/analysis"
	"ccr/internal/emu"
	"ccr/internal/ir"
)

// HistoryRecords is the per-segment history depth (8 in the paper).
const HistoryRecords = 8

// Result is the outcome of the limit study for one program run.
type Result struct {
	// TotalInstrs is the dynamic instruction count of the run.
	TotalInstrs int64
	// BlockReusable counts dynamic instructions inside reusable basic
	// block executions.
	BlockReusable int64
	// RegionReusable counts dynamic instructions covered by region-level
	// reuse (reusable loop invocations plus block reuse outside them).
	RegionReusable int64
	// InstrRepetition counts dynamic instructions whose input tuple
	// matches one of that static instruction's last eight executions —
	// the instruction-level repetition the paper's §5.2 scalars divide
	// by ("eliminates 40% of the dynamic instruction repetitions").
	InstrRepetition int64
}

// InstrRepetitionPct returns the instruction-level repetition percentage.
func (r *Result) InstrRepetitionPct() float64 {
	if r.TotalInstrs == 0 {
		return 0
	}
	return 100 * float64(r.InstrRepetition) / float64(r.TotalInstrs)
}

// BlockPct returns the block-level reuse percentage of Figure 4.
func (r *Result) BlockPct() float64 {
	if r.TotalInstrs == 0 {
		return 0
	}
	return 100 * float64(r.BlockReusable) / float64(r.TotalInstrs)
}

// RegionPct returns the region-level reuse percentage of Figure 4.
func (r *Result) RegionPct() float64 {
	if r.TotalInstrs == 0 {
		return 0
	}
	return 100 * float64(r.RegionReusable) / float64(r.TotalInstrs)
}

// blockInfo is the static description of one basic block.
type blockInfo struct {
	liveUse []ir.Reg   // upward-exposed register uses
	objs    []ir.MemID // objects loaded (deduplicated)
	anyLoad bool       // loads with unknown object
	barrier bool       // contains call/ret: never reusable
	countIn int        // reusable instructions (block size minus stores)
	size    int
}

type loopInfo struct {
	blocks  map[ir.BlockID]bool
	objs    []ir.MemID
	anyLoad bool
	barrier bool // loop contains stores or calls: never reusable as a unit
}

// regVal is one recorded used-input of an invocation.
type regVal struct {
	reg ir.Reg
	val int64
}

// invRecord is a completed invocation's reuse-relevant state: the registers
// its executed path actually consumed and the memory versions it saw.
type invRecord struct {
	inputs   []regVal
	objVers  []uint64
	anonVer  uint64
	overflow bool
}

// maxTrackedInputs bounds used-input recording per invocation.
const maxTrackedInputs = 16

type invocation struct {
	loop     *loopInfo
	key      segKey
	reusable bool
	instrs   int64
	blockHit int64 // block-reusable instructions inside the invocation
	inputs   []regVal
	defined  map[ir.Reg]bool
	objVers  []uint64
	anonVer  uint64
	overflow bool
}

func (act *invocation) noteUse(r ir.Reg, v int64) {
	if act.overflow || act.defined[r] {
		return
	}
	for _, rv := range act.inputs {
		if rv.reg == r {
			return
		}
	}
	if len(act.inputs) >= maxTrackedInputs {
		act.overflow = true
		return
	}
	act.inputs = append(act.inputs, regVal{reg: r, val: v})
}

// Analyzer consumes a dynamic event stream. Install Tracer() on an
// emu.Machine running the base program, then call Finish().
type Analyzer struct {
	prog *ir.Program

	blocks   [][]blockInfo // per func, per block
	history  map[segKey][][]int64
	loopHist map[segKey][]*invRecord

	headerLoop []map[ir.BlockID]*loopInfo
	blockLoop  []map[ir.BlockID]*loopInfo

	objVer  []uint64
	anonVer uint64

	depth     int
	lastBlock []ir.BlockID
	acts      []*invocation

	// instrHist[gidx] is the per-instruction 8-deep input-tuple ring for
	// the instruction-level repetition metric.
	instrHist map[int]*tupleRing

	// pendingBlock defers block-signature evaluation: counts accumulate
	// per dynamic block execution.
	res Result
}

type segKey struct {
	f ir.FuncID
	b ir.BlockID
}

// NewAnalyzer prepares the limit study for program p.
func NewAnalyzer(p *ir.Program) *Analyzer {
	a := &Analyzer{
		prog:       p,
		blocks:     make([][]blockInfo, len(p.Funcs)),
		history:    map[segKey][][]int64{},
		loopHist:   map[segKey][]*invRecord{},
		headerLoop: make([]map[ir.BlockID]*loopInfo, len(p.Funcs)),
		blockLoop:  make([]map[ir.BlockID]*loopInfo, len(p.Funcs)),
		objVer:     make([]uint64, len(p.Objects)),
		lastBlock:  []ir.BlockID{ir.NoBlock},
		acts:       []*invocation{nil},
		instrHist:  map[int]*tupleRing{},
	}
	for _, f := range p.Funcs {
		g := analysis.BuildCFG(f)
		dom := analysis.BuildDomTree(g)
		a.blocks[f.ID] = make([]blockInfo, len(f.Blocks))
		for _, b := range f.Blocks {
			a.blocks[f.ID][b.ID] = summarizeBlock(f, b)
		}
		a.headerLoop[f.ID] = map[ir.BlockID]*loopInfo{}
		a.blockLoop[f.ID] = map[ir.BlockID]*loopInfo{}
		for _, l := range analysis.FindLoops(g, dom) {
			if !l.Inner() {
				continue
			}
			li := &loopInfo{
				blocks: map[ir.BlockID]bool{},
			}
			objSeen := map[ir.MemID]bool{}
			for _, b := range l.Blocks {
				li.blocks[b] = true
				bi := &a.blocks[f.ID][b]
				if bi.barrier {
					li.barrier = true
				}
				for i := range f.Blocks[b].Instrs {
					in := &f.Blocks[b].Instrs[i]
					switch in.Op {
					case ir.St:
						li.barrier = true
					case ir.Ld:
						if in.Mem == ir.NoMem {
							li.anyLoad = true
						} else if !objSeen[in.Mem] {
							objSeen[in.Mem] = true
							li.objs = append(li.objs, in.Mem)
						}
					}
				}
			}
			a.headerLoop[f.ID][l.Header] = li
			for b := range li.blocks {
				a.blockLoop[f.ID][b] = li
			}
		}
	}
	return a
}

func summarizeBlock(f *ir.Func, b *ir.Block) blockInfo {
	bi := blockInfo{size: len(b.Instrs)}
	defs := analysis.NewRegSet(f.NumRegs)
	uses := analysis.NewRegSet(f.NumRegs)
	objSeen := map[ir.MemID]bool{}
	var tmp []ir.Reg
	for i := range b.Instrs {
		in := &b.Instrs[i]
		tmp = in.Uses(tmp[:0])
		for _, r := range tmp {
			if !defs.Has(r) {
				uses.Add(r)
			}
		}
		if d := in.Def(); d != ir.NoReg {
			defs.Add(d)
		}
		switch in.Op {
		case ir.Call, ir.Ret:
			bi.barrier = true
		case ir.St:
			// Stores are not reuse opportunities.
		case ir.Ld:
			if in.Mem == ir.NoMem {
				bi.anyLoad = true
			} else if !objSeen[in.Mem] {
				objSeen[in.Mem] = true
				bi.objs = append(bi.objs, in.Mem)
			}
			bi.countIn++
		default:
			bi.countIn++
		}
	}
	bi.liveUse = uses.Members()
	return bi
}

// Tracer returns the event hook to install on an emu.Machine.
func (a *Analyzer) Tracer() emu.Tracer { return a.observe }

func (a *Analyzer) observe(ev *emu.Event) {
	a.res.TotalInstrs++
	d := a.depth
	in := ev.Instr
	fid := ev.Func.ID

	a.observeRepetition(ev)

	// Invocation accounting.
	act := a.acts[d]
	if act != nil {
		if !act.loop.blocks[ev.Block] {
			a.finishAct(d)
			act = nil
		}
	}

	if ev.Index == 0 {
		// Loop invocation boundaries.
		if li := a.headerLoop[fid][ev.Block]; li != nil {
			prev := a.lastBlock[d]
			backEdge := act != nil && act.loop == li && prev != ir.NoBlock && li.blocks[prev]
			if !backEdge {
				a.finishAct(d)
				act = &invocation{
					loop:    li,
					key:     segKey{f: fid, b: ev.Block},
					defined: make(map[ir.Reg]bool, 8),
					objVers: a.snapshotVers(li),
					anonVer: a.anonVer,
				}
				if !li.barrier {
					act.reusable = a.matchLoop(act.key, ev.Regs, act)
				}
				a.acts[d] = act
			}
		}
		// Block-level signature check.
		bi := &a.blocks[fid][ev.Block]
		if !bi.barrier && bi.countIn > 0 && !bi.anyLoad {
			sig := a.blockSignature(bi, ev.Regs)
			key := segKey{f: fid, b: ev.Block + 1<<16} // separate namespace from loops
			if a.matchAndPush(key, sig) {
				a.res.BlockReusable += int64(bi.countIn)
				if act != nil {
					act.blockHit += int64(bi.countIn)
				} else {
					a.res.RegionReusable += int64(bi.countIn)
				}
			}
		}
	}

	if act != nil {
		act.instrs++
		if !act.loop.barrier {
			switch in.Op {
			case ir.Nop, ir.MovI, ir.Jmp:
			default:
				if in.Src1 != ir.NoReg {
					act.noteUse(in.Src1, ev.Val1)
				}
				if in.Src2 != ir.NoReg {
					act.noteUse(in.Src2, ev.Val2)
				}
			}
			if dr := in.Def(); dr != ir.NoReg {
				act.defined[dr] = true
			}
		}
	}

	a.lastBlock[d] = ev.Block

	switch in.Op {
	case ir.St:
		if in.Mem != ir.NoMem {
			a.objVer[in.Mem]++
		} else {
			a.anonVer++
		}
	case ir.Call:
		a.depth++
		if a.depth >= len(a.lastBlock) {
			a.lastBlock = append(a.lastBlock, ir.NoBlock)
			a.acts = append(a.acts, nil)
		} else {
			a.lastBlock[a.depth] = ir.NoBlock
			a.acts[a.depth] = nil
		}
	case ir.Ret:
		a.finishAct(a.depth)
		if a.depth > 0 {
			a.depth--
		}
	}
}

func (a *Analyzer) finishAct(d int) {
	act := a.acts[d]
	if act == nil {
		return
	}
	if act.reusable {
		a.res.RegionReusable += act.instrs
	} else {
		// Region-level subsumes block-level for execution outside
		// reusable invocations.
		a.res.RegionReusable += act.blockHit
	}
	if !act.loop.barrier {
		a.pushLoop(act.key, &invRecord{
			inputs:   act.inputs,
			objVers:  act.objVers,
			anonVer:  act.anonVer,
			overflow: act.overflow,
		})
	}
	a.acts[d] = nil
}

func (a *Analyzer) blockSignature(bi *blockInfo, regs []int64) []int64 {
	sig := make([]int64, 0, len(bi.liveUse)+len(bi.objs))
	for _, r := range bi.liveUse {
		sig = append(sig, regs[r])
	}
	for _, o := range bi.objs {
		sig = append(sig, int64(a.objVer[o]))
	}
	return sig
}

func (a *Analyzer) snapshotVers(li *loopInfo) []uint64 {
	if len(li.objs) == 0 {
		return nil
	}
	vs := make([]uint64, len(li.objs))
	for i, o := range li.objs {
		vs[i] = a.objVer[o]
	}
	return vs
}

// matchLoop applies CRB-style matching: an invocation is reusable when all
// used inputs of a recorded invocation hold the same values now and the
// loop's memory is unchanged since that record.
func (a *Analyzer) matchLoop(key segKey, regs []int64, act *invocation) bool {
	for _, rec := range a.loopHist[key] {
		if rec.overflow || rec.anonVer != act.anonVer || !equalVers(rec.objVers, act.objVers) {
			continue
		}
		ok := true
		for _, rv := range rec.inputs {
			if int(rv.reg) >= len(regs) || regs[rv.reg] != rv.val {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func (a *Analyzer) pushLoop(key segKey, rec *invRecord) {
	h := a.loopHist[key]
	if len(h) >= HistoryRecords {
		copy(h, h[1:])
		h[len(h)-1] = rec
	} else {
		h = append(h, rec)
	}
	a.loopHist[key] = h
}

func equalVers(x, y []uint64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// matchAndPush reports whether sig matches the segment history, then
// records it (LRU ring of HistoryRecords).
func (a *Analyzer) matchAndPush(key segKey, sig []int64) bool {
	h := a.history[key]
	match := false
	for _, old := range h {
		if equalSig(old, sig) {
			match = true
			break
		}
	}
	if len(h) >= HistoryRecords {
		copy(h, h[1:])
		h[len(h)-1] = sig
	} else {
		h = append(h, sig)
	}
	a.history[key] = h
	return match
}

func equalSig(x, y []int64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// Finish closes open invocations and returns the result.
func (a *Analyzer) Finish() Result {
	for d := range a.acts {
		a.finishAct(d)
	}
	return a.res
}

// Measure runs the full limit study on prog with the given arguments.
func Measure(prog *ir.Program, args []int64, limit int64) (Result, error) {
	a := NewAnalyzer(prog)
	m := emu.New(prog)
	m.Trace = a.Tracer()
	m.Limit = limit
	if _, err := m.Run(args...); err != nil {
		return Result{}, err
	}
	return a.Finish(), nil
}

// tupleRing is a fixed 8-deep ring of input tuples for one instruction.
type tupleRing struct {
	a, b [HistoryRecords]int64
	n    int
	pos  int
}

func (t *tupleRing) matchAndPush(x, y int64) bool {
	match := false
	for i := 0; i < t.n; i++ {
		if t.a[i] == x && t.b[i] == y {
			match = true
			break
		}
	}
	t.a[t.pos] = x
	t.b[t.pos] = y
	t.pos = (t.pos + 1) % HistoryRecords
	if t.n < HistoryRecords {
		t.n++
	}
	return match
}

// observeRepetition maintains the instruction-level repetition metric:
// value-producing instructions whose inputs recur within their own
// eight-execution history. Loads key on (address, object version) so a
// store to the object breaks the repetition, as in the paper's evaluation
// guidelines; stores and control transfers are not reuse opportunities.
func (a *Analyzer) observeRepetition(ev *emu.Event) {
	in := ev.Instr
	var x, y int64
	switch {
	case in.Op == ir.Ld:
		x = ev.Addr
		if in.Mem != ir.NoMem {
			y = int64(a.objVer[in.Mem])
		} else {
			y = int64(a.anonVer)
		}
	case in.Op.IsBinaryALU() || in.Op == ir.Mov:
		x, y = ev.Val1, ev.Val2
	case in.Op == ir.MovI || in.Op == ir.Lea:
		// Constant producers always repeat.
		a.res.InstrRepetition++
		return
	default:
		return
	}
	gidx := int(ev.PC >> 2)
	r := a.instrHist[gidx]
	if r == nil {
		r = &tupleRing{}
		a.instrHist[gidx] = r
	}
	if r.matchAndPush(x, y) {
		a.res.InstrRepetition++
	}
}
