package potential

import (
	"testing"

	"ccr/internal/ir"
)

// buildRepeatedScan: main(n) calls scan() n times over an unchanging table.
// Block-level reuse cannot capture the loop (its index changes every
// iteration); region-level reuse captures whole invocations — the Figure 1
// rationale.
func buildRepeatedScan(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("rs")
	tab := pb.ReadOnlyObject("tab", []int64{3, 1, 4, 1, 5, 9, 2, 6})
	g := pb.Func("scan", 0)
	ge := g.NewBlock()
	gh := g.NewBlock()
	gb := g.NewBlock()
	gl := g.NewBlock()
	gx := g.NewBlock()
	s, i, base, v := g.NewReg(), g.NewReg(), g.NewReg(), g.NewReg()
	ge.MovI(s, 0)
	ge.MovI(i, 0)
	ge.Lea(base, tab, 0)
	gh.BgeI(i, 8, gx.ID())
	gb.Add(v, base, i)
	gb.Ld(v, v, 0, tab)
	gb.Add(s, s, v)
	gl.AddI(i, i, 1)
	gl.Jmp(gh.ID())
	gx.Ret(s)
	f := pb.Func("main", 1)
	pb.SetMain(f.ID())
	e := f.NewBlock()
	h := f.NewBlock()
	bo := f.NewBlock()
	x := f.NewBlock()
	k, acc, r := f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(acc, 0)
	h.Bge(k, f.Param(0), x.ID())
	bo.Call(r, g.ID())
	bo.Add(acc, acc, r)
	bo.AddI(k, k, 1)
	bo.Jmp(h.ID())
	x.Ret(acc)
	return ir.MustVerify(pb.Build())
}

func TestRegionSubsumesBlock(t *testing.T) {
	p := buildRepeatedScan(t)
	res, err := Measure(p, []int64{128}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalInstrs == 0 {
		t.Fatal("no instructions measured")
	}
	if res.RegionReusable < res.BlockReusable {
		t.Fatalf("region (%d) must subsume block (%d)", res.RegionReusable, res.BlockReusable)
	}
	// The scan loop dominates execution and is invocation-reusable, so
	// region potential must be high, and strictly above block potential:
	// identical invocations make even per-iteration block signatures
	// recur, but only the region view covers the whole loop including
	// its first-iteration and entry overhead.
	if res.RegionPct() < 80 {
		t.Fatalf("region potential = %.1f%%, want ≥ 80%%", res.RegionPct())
	}
	if res.BlockPct() >= res.RegionPct() {
		t.Fatalf("block potential %.1f%% should be below region %.1f%%",
			res.BlockPct(), res.RegionPct())
	}
}

func TestInstructionRepetitionHigh(t *testing.T) {
	p := buildRepeatedScan(t)
	res, err := Measure(p, []int64{64}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every instruction in scan repeats its inputs across invocations
	// (after warmup), so instruction repetition must be high.
	if res.InstrRepetitionPct() < 55 {
		t.Fatalf("instruction repetition = %.1f%%", res.InstrRepetitionPct())
	}
}

// buildMutatingScan: the table changes between invocations, so neither
// blocks nor regions can be reused even though the code path is identical.
func TestMutationKillsPotential(t *testing.T) {
	pb := ir.NewProgramBuilder("ms")
	tab := pb.Object("tab", 8, []int64{3, 1, 4, 1, 5, 9, 2, 6})
	g := pb.Func("scan", 0)
	ge := g.NewBlock()
	gh := g.NewBlock()
	gb := g.NewBlock()
	gl := g.NewBlock()
	gx := g.NewBlock()
	s, i, base, v := g.NewReg(), g.NewReg(), g.NewReg(), g.NewReg()
	ge.MovI(s, 0)
	ge.MovI(i, 0)
	ge.Lea(base, tab, 0)
	gh.BgeI(i, 8, gx.ID())
	gb.Add(v, base, i)
	gb.Ld(v, v, 0, tab)
	gb.Add(s, s, v)
	gl.AddI(i, i, 1)
	gl.Jmp(gh.ID())
	gx.Ret(s)
	f := pb.Func("main", 1)
	pb.SetMain(f.ID())
	e := f.NewBlock()
	h := f.NewBlock()
	bo := f.NewBlock()
	x := f.NewBlock()
	k, acc, r, p0 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(acc, 0)
	h.Bge(k, f.Param(0), x.ID())
	bo.Call(r, g.ID())
	bo.Add(acc, acc, r)
	bo.Lea(p0, tab, 0)
	bo.St(p0, 3, k, tab)
	bo.AddI(k, k, 1)
	bo.Jmp(h.ID())
	x.Ret(acc)
	p := ir.MustVerify(pb.Build())
	res, err := Measure(p, []int64{64}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Invocation-level reuse collapses: the loop's object version changes
	// every invocation, so region potential adds (almost) nothing over the
	// block-level bookkeeping repetition (loop control still repeats).
	if res.RegionPct() > res.BlockPct()+2 {
		t.Fatalf("mutating table: region %.1f%% should collapse to block %.1f%%",
			res.RegionPct(), res.BlockPct())
	}
	if res.RegionPct() > 45 {
		t.Fatalf("mutating table: region potential = %.1f%%, want well below the clean-scan case", res.RegionPct())
	}
}

func TestHistoryDepthMatters(t *testing.T) {
	// A kernel cycling through 16 distinct inputs exceeds the 8-record
	// history: block reuse must be (nearly) zero. With 4 inputs it is
	// nearly total.
	build := func(card int64) *ir.Program {
		pb := ir.NewProgramBuilder("hd")
		g := pb.Func("kern", 1)
		gb := g.NewBlock()
		gx := g.NewBlock()
		y := g.NewReg()
		gb.MulI(y, g.Param(0), 3)
		gb.XorI(y, y, 5)
		gb.AddI(y, y, 7)
		gb.MulI(y, y, 11)
		gb.Jmp(gx.ID())
		gx.Ret(y)
		f := pb.Func("main", 1)
		pb.SetMain(f.ID())
		e := f.NewBlock()
		h := f.NewBlock()
		bo := f.NewBlock()
		x := f.NewBlock()
		k, acc, r, sel := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
		e.MovI(k, 0)
		e.MovI(acc, 0)
		h.Bge(k, f.Param(0), x.ID())
		bo.RemI(sel, k, card) // cycles 0..card-1
		bo.Call(r, g.ID(), sel)
		bo.Add(acc, acc, r)
		bo.AddI(k, k, 1)
		bo.Jmp(h.ID())
		x.Ret(acc)
		return ir.MustVerify(pb.Build())
	}
	narrow, err := Measure(build(4), []int64{256}, 0)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Measure(build(16), []int64{256}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.BlockPct() <= wide.BlockPct()+10 {
		t.Fatalf("4-value cycle (%.1f%%) must beat 16-value cycle (%.1f%%) with 8 records",
			narrow.BlockPct(), wide.BlockPct())
	}
	if wide.BlockPct() > 5 {
		t.Fatalf("16-value round-robin should defeat the 8-record history: %.1f%%", wide.BlockPct())
	}
}
