package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccr/internal/emu"
	"ccr/internal/ir"
	"ccr/internal/progen"
)

func TestConstantFolding(t *testing.T) {
	pb := ir.NewProgramBuilder("cf")
	f := pb.Func("main", 0)
	b := f.NewBlock()
	a, c, d := f.NewReg(), f.NewReg(), f.NewReg()
	b.MovI(a, 6)
	b.MovI(c, 7)
	b.Mul(d, a, c)   // foldable: 42
	b.AddI(d, d, 58) // foldable: 100
	b.Ret(d)
	p := pb.Build()
	st := Optimize(p)
	if st.Folded < 2 {
		t.Fatalf("folded = %d", st.Folded)
	}
	m := emu.New(p)
	got, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("result = %d", got)
	}
	// The multiply chain should be gone: the returned register is set by
	// a single constant move.
	last := p.Funcs[0].Blocks[0]
	for i := range last.Instrs {
		if last.Instrs[i].Op == ir.Mul || last.Instrs[i].Op == ir.Add {
			t.Fatalf("arithmetic survived folding: %s", last.Instrs[i].String())
		}
	}
}

func TestCopyPropagationAndDCE(t *testing.T) {
	pb := ir.NewProgramBuilder("cp")
	f := pb.Func("main", 1)
	b := f.NewBlock()
	x, y, z, dead := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	b.Mov(x, f.Param(0))
	b.Mov(y, x)
	b.AddI(z, y, 1)     // should become AddI(z, param, 1)
	b.MulI(dead, z, 99) // dead: result unused
	b.Ret(z)
	p := pb.Build()
	st := Optimize(p)
	if st.Propagated == 0 {
		t.Fatal("no copies propagated")
	}
	if st.Eliminated < 3 { // both movs and the dead multiply
		t.Fatalf("eliminated = %d", st.Eliminated)
	}
	add := p.Funcs[0].Blocks[0].Instrs[0]
	if add.Op != ir.Add || add.Src1 != f.Param(0) {
		t.Fatalf("expected add on the parameter, got %s", add.String())
	}
	m := emu.New(p)
	got, err := m.Run(41)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("result = %d", got)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	pb := ir.NewProgramBuilder("se")
	buf := pb.Object("buf", 4, nil)
	g := pb.Func("writer", 0)
	gb := g.NewBlock()
	gp, gv := g.NewReg(), g.NewReg()
	gb.Lea(gp, buf, 0)
	gb.MovI(gv, 9)
	gb.St(gp, 0, gv, buf)
	gb.RetI(0)
	f := pb.Func("main", 0)
	pb.SetMain(f.ID())
	b := f.NewBlock()
	r, p0, v := f.NewReg(), f.NewReg(), f.NewReg()
	b.Call(r, g.ID()) // result unused but the call stores
	b.Lea(p0, buf, 0)
	b.Ld(v, p0, 0, buf)
	b.Ret(v)
	p := pb.Build()
	Optimize(p)
	m := emu.New(p)
	got, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("store was eliminated: result = %d", got)
	}
}

// TestOptimizeEquivalence is the pass-correctness property: for random
// programs, the optimized program computes identical results and memory.
func TestOptimizeEquivalence(t *testing.T) {
	f := func(seed uint64, arg uint8) bool {
		orig := progen.Generate(seed, progen.DefaultConfig())
		optimized := orig.Clone()
		Optimize(optimized)
		if err := ir.Verify(optimized); err != nil {
			t.Logf("seed %d: verify: %v", seed, err)
			return false
		}
		m1 := emu.New(orig)
		m1.Limit = 4_000_000
		r1, err1 := m1.Run(int64(arg))
		m2 := emu.New(optimized)
		m2.Limit = 4_000_000
		r2, err2 := m2.Run(int64(arg))
		if err1 == emu.ErrLimit || err2 == emu.ErrLimit {
			return true // out of budget; nothing to compare
		}
		if (err1 == nil) != (err2 == nil) {
			t.Logf("seed %d: error divergence: %v vs %v", seed, err1, err2)
			return false
		}
		if err1 != nil {
			return true
		}
		if r1 != r2 {
			t.Logf("seed %d: result %d vs %d", seed, r1, r2)
			return false
		}
		for i := range m1.Mem {
			if m1.Mem[i] != m2.Mem[i] {
				t.Logf("seed %d: memory diverged at %d", seed, i)
				return false
			}
		}
		// The optimizer must never grow the program.
		if optimized.StaticInstrs() > orig.StaticInstrs() {
			t.Logf("seed %d: program grew", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		p := progen.Generate(seed, progen.DefaultConfig())
		Optimize(p)
		first := p.Dump()
		st := Optimize(p)
		if st.Folded+st.Propagated+st.Eliminated != 0 {
			t.Logf("seed %d: second run still changed: %+v", seed, st)
			return false
		}
		return p.Dump() == first
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(22))}); err != nil {
		t.Fatal(err)
	}
}
