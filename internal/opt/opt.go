// Package opt provides classic scalar optimizations — local constant
// folding, local copy propagation and global dead-code elimination — so
// base programs can be brought to the "best code" quality the paper's
// baseline assumes (§5.1: the IMPACT compiler's optimized output) before
// the CCR passes run. All passes are semantics-preserving; the package's
// property tests check optimized ≡ original over random programs.
package opt

import (
	"ccr/internal/analysis"
	"ccr/internal/ir"
)

// Stats counts what the optimizer changed.
type Stats struct {
	Folded     int // instructions replaced by constants
	Propagated int // copy uses rewritten to their sources
	Eliminated int // dead instructions removed
	Rounds     int
}

// Optimize runs constant folding, copy propagation and dead-code
// elimination to a fixpoint over every function of p (in place), then
// relinks. Returns what changed.
func Optimize(p *ir.Program) Stats {
	var st Stats
	for {
		st.Rounds++
		changed := 0
		for _, f := range p.Funcs {
			changed += foldConstants(f, &st)
			changed += propagateCopies(f, &st)
		}
		changed += eliminateDead(p, &st)
		if changed == 0 || st.Rounds > 50 {
			break
		}
	}
	p.Link()
	return st
}

// constVal is the lattice value for local constant tracking.
type constVal struct {
	known bool
	v     int64
}

// foldConstants performs block-local constant folding: registers defined
// by MovI (or by folded instructions) propagate into ALU operations whose
// operands are all known, which then become MovI themselves. Branches and
// memory operations are never folded (control flow and addresses stay).
func foldConstants(f *ir.Func, st *Stats) int {
	changed := 0
	consts := map[ir.Reg]constVal{}
	for _, b := range f.Blocks {
		clear(consts)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch {
			case in.Op == ir.MovI:
				consts[in.Dest] = constVal{known: true, v: in.Imm}
				continue
			case in.Op == ir.Mov:
				if c, ok := consts[in.Src1]; ok && c.known {
					*in = ir.Instr{Op: ir.MovI, Dest: in.Dest, Imm: c.v, Mem: ir.NoMem, Region: in.Region, Attr: in.Attr}
					consts[in.Dest] = c
					st.Folded++
					changed++
					continue
				}
			case in.Op.IsBinaryALU():
				a, okA := consts[in.Src1]
				bv := constVal{}
				okB := false
				if in.Src2 == ir.NoReg {
					bv, okB = constVal{known: true, v: in.Imm}, true
				} else if c, ok := consts[in.Src2]; ok {
					bv, okB = c, true
				}
				if okA && a.known && okB && bv.known {
					*in = ir.Instr{Op: ir.MovI, Dest: in.Dest, Imm: evalALU(in.Op, a.v, bv.v),
						Mem: ir.NoMem, Region: in.Region, Attr: in.Attr}
					consts[in.Dest] = constVal{known: true, v: in.Imm}
					st.Folded++
					changed++
					continue
				}
			}
			if d := in.Def(); d != ir.NoReg {
				delete(consts, d)
			}
		}
	}
	return changed
}

// evalALU mirrors the emulator's semantics exactly (including the defined
// division-by-zero and shift-masking behaviour).
func evalALU(op ir.Opcode, a, b int64) int64 {
	switch op {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	case ir.Div:
		if b == 0 {
			return 0
		}
		return a / b
	case ir.Rem:
		if b == 0 {
			return 0
		}
		return a % b
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.Shl:
		return a << (uint64(b) & 63)
	case ir.Shr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case ir.Sra:
		return a >> (uint64(b) & 63)
	case ir.Slt:
		return b2i(a < b)
	case ir.Sle:
		return b2i(a <= b)
	case ir.Seq:
		return b2i(a == b)
	case ir.Sne:
		return b2i(a != b)
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// propagateCopies rewrites block-local uses of y (where y = mov x and
// neither x nor y has been redefined since) to use x directly, making the
// copy dead for the eliminator.
func propagateCopies(f *ir.Func, st *Stats) int {
	changed := 0
	copies := map[ir.Reg]ir.Reg{} // copy dest → source
	for _, b := range f.Blocks {
		clear(copies)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			// Rewrite uses first.
			rewrite := func(r *ir.Reg) {
				if src, ok := copies[*r]; ok && *r != ir.NoReg {
					*r = src
					st.Propagated++
					changed++
				}
			}
			switch in.Op {
			case ir.Call:
				for j := range in.Args {
					rewrite(&in.Args[j])
				}
			default:
				if in.Src1 != ir.NoReg {
					rewrite(&in.Src1)
				}
				if in.Src2 != ir.NoReg {
					rewrite(&in.Src2)
				}
			}
			// Kill mappings invalidated by the definition.
			if d := in.Def(); d != ir.NoReg {
				delete(copies, d)
				for k, v := range copies {
					if v == d {
						delete(copies, k)
					}
				}
				if in.Op == ir.Mov && in.Src1 != d {
					copies[d] = in.Src1
				}
			}
		}
	}
	return changed
}

// eliminateDead removes pure instructions whose results are never used,
// iterating a backward liveness analysis per function. Loads are treated
// as pure (this IR has no faulting semantics the program relies on — the
// verifier bounds every object statically and the emulator's bounds check
// exists to catch compiler bugs, not as program behaviour). Stores, calls,
// branches and the CCR extensions always stay.
func eliminateDead(p *ir.Program, st *Stats) int {
	changed := 0
	for _, f := range p.Funcs {
		g := analysis.BuildCFG(f)
		lv := analysis.ComputeLiveness(g)
		for _, b := range f.Blocks {
			live := lv.LiveOut[b.ID].Clone()
			// Walk backwards, deleting dead pure defs.
			var keep []ir.Instr
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				d := in.Def()
				dead := d != ir.NoReg && !live.Has(d) && isPure(in.Op) &&
					// Never touch CCR-annotated instructions: region
					// membership and live-out markers are a hardware
					// contract, not ordinary dataflow.
					in.Region == ir.NoRegion && in.Attr == 0
				if dead {
					st.Eliminated++
					changed++
					continue
				}
				keep = append(keep, in)
				if d != ir.NoReg {
					live.Remove(d)
				}
				for _, u := range in.Uses(nil) {
					live.Add(u)
				}
			}
			// keep is reversed.
			for l, r := 0, len(keep)-1; l < r; l, r = l+1, r-1 {
				keep[l], keep[r] = keep[r], keep[l]
			}
			b.Instrs = keep
		}
	}
	return changed
}

// isPure reports opcodes whose only effect is writing their destination.
func isPure(op ir.Opcode) bool {
	switch op {
	case ir.St, ir.Call, ir.Ret, ir.Jmp, ir.Beq, ir.Bne, ir.Blt, ir.Bge,
		ir.Ble, ir.Bgt, ir.Reuse, ir.Inval:
		return false
	case ir.Nop:
		return false // removing nops would break empty-block invariants
	}
	return true
}
