package ir_test

import (
	"testing"

	"ccr/internal/ir"
	"ccr/internal/progen"
)

// FuzzParseRoundTrip checks that the textual IR format is a fixed point
// under print → parse → print: any input the parser accepts must dump to a
// form that parses back to a byte-identical dump. The corpus is seeded with
// generated whole programs, so the fuzzer starts from inputs that exercise
// every construct the printer emits (objects, functions, region
// annotations, attributes) rather than from scratch.
func FuzzParseRoundTrip(f *testing.F) {
	for seed := uint64(1); seed <= 4; seed++ {
		f.Add(progen.Generate(seed, progen.DefaultConfig()).Dump())
	}
	// A deliberately small program keeps the mutation engine fast: most of
	// the fuzzer's throughput comes from variations of this seed.
	small := progen.DefaultConfig()
	small.Funcs, small.Objects, small.MaxDepth, small.MaxStmts = 1, 1, 1, 2
	f.Add(progen.Generate(5, small).Dump())
	f.Fuzz(func(t *testing.T, text string) {
		p, err := ir.Parse(text)
		if err != nil {
			return // rejected inputs are out of scope
		}
		dump := p.Dump()
		p2, err := ir.Parse(dump)
		if err != nil {
			t.Fatalf("printed form rejected by the parser: %v\n%s", err, dump)
		}
		if dump2 := p2.Dump(); dump2 != dump {
			t.Fatalf("dump not a fixed point:\n--- first\n%s\n--- second\n%s", dump, dump2)
		}
	})
}
