package ir

import "fmt"

// ProgramBuilder constructs Programs. Typical use:
//
//	pb := ir.NewProgramBuilder("demo")
//	tbl := pb.ReadOnlyObject("table", vals)
//	f := pb.Func("main", 0)
//	entry := f.NewBlock()
//	...
//	prog := pb.Build()
type ProgramBuilder struct {
	prog  *Program
	funcs []*FuncBuilder
}

// NewProgramBuilder returns a builder for a program with the given name.
func NewProgramBuilder(name string) *ProgramBuilder {
	return &ProgramBuilder{prog: &Program{Name: name, Main: NoFunc}}
}

// Object declares a writable memory object of size words, optionally
// initialized with init (which may be shorter than size).
func (pb *ProgramBuilder) Object(name string, size int64, init []int64) MemID {
	return pb.addObject(name, size, init, false)
}

// ReadOnlyObject declares a read-only object sized to its initializer.
// Read-only objects never require invalidation (their loads are trivially
// determinable).
func (pb *ProgramBuilder) ReadOnlyObject(name string, init []int64) MemID {
	return pb.addObject(name, int64(len(init)), init, true)
}

func (pb *ProgramBuilder) addObject(name string, size int64, init []int64, ro bool) MemID {
	if int64(len(init)) > size {
		panic(fmt.Sprintf("ir: object %s initializer longer than size", name))
	}
	id := MemID(len(pb.prog.Objects))
	pb.prog.Objects = append(pb.prog.Objects, &MemObject{
		ID: id, Name: name, Size: size, ReadOnly: ro, Init: init,
	})
	return id
}

// Func starts a new function with the given number of parameters and
// returns its builder. The first function named "main" becomes the entry
// point unless SetMain overrides it.
func (pb *ProgramBuilder) Func(name string, nparams int) *FuncBuilder {
	id := FuncID(len(pb.prog.Funcs))
	f := &Func{ID: id, Name: name, NumParams: nparams, NumRegs: nparams}
	pb.prog.Funcs = append(pb.prog.Funcs, f)
	if name == "main" && pb.prog.Main == NoFunc {
		pb.prog.Main = id
	}
	fb := &FuncBuilder{pb: pb, fn: f}
	pb.funcs = append(pb.funcs, fb)
	return fb
}

// SetMain sets the program entry point.
func (pb *ProgramBuilder) SetMain(id FuncID) { pb.prog.Main = id }

// Build finalizes and links the program. It panics if no entry point was
// declared; structural validity is the caller's concern (see Verify).
func (pb *ProgramBuilder) Build() *Program {
	if pb.prog.Main == NoFunc {
		panic("ir: program has no main function")
	}
	pb.prog.Link()
	return pb.prog
}

// FuncBuilder constructs a single function.
type FuncBuilder struct {
	pb *ProgramBuilder
	fn *Func
}

// ID returns the function's ID, usable as a Call target.
func (fb *FuncBuilder) ID() FuncID { return fb.fn.ID }

// Param returns the register holding the i-th parameter (0-based).
func (fb *FuncBuilder) Param(i int) Reg {
	if i < 0 || i >= fb.fn.NumParams {
		panic(fmt.Sprintf("ir: %s has no parameter %d", fb.fn.Name, i))
	}
	return Reg(i + 1)
}

// NewReg allocates a fresh virtual register.
func (fb *FuncBuilder) NewReg() Reg {
	fb.fn.NumRegs++
	return Reg(fb.fn.NumRegs)
}

// NewBlock appends a new empty basic block and returns its builder.
// Blocks execute in creation order under fall-through.
func (fb *FuncBuilder) NewBlock() *BlockBuilder {
	id := BlockID(len(fb.fn.Blocks))
	b := &Block{ID: id}
	fb.fn.Blocks = append(fb.fn.Blocks, b)
	return &BlockBuilder{fb: fb, blk: b}
}

// BlockBuilder emits instructions into one basic block.
type BlockBuilder struct {
	fb  *FuncBuilder
	blk *Block
}

// ID returns the block's ID, usable as a branch target.
func (bb *BlockBuilder) ID() BlockID { return bb.blk.ID }

// Emit appends a raw instruction. A zero Region on non-reuse instructions
// is treated as "no region" (set membership through the returned pointer
// instead); a zero Mem on opcodes that do not address memory is treated as
// "no object".
func (bb *BlockBuilder) Emit(in Instr) *Instr {
	if in.Region == 0 && in.Op != Reuse {
		in.Region = NoRegion
	}
	if in.Mem == 0 && in.Op != Ld && in.Op != St && in.Op != Lea && in.Op != Inval {
		in.Mem = NoMem
	}
	bb.blk.Instrs = append(bb.blk.Instrs, in)
	return &bb.blk.Instrs[len(bb.blk.Instrs)-1]
}

func (bb *BlockBuilder) binary(op Opcode, dest, a, b Reg) *Instr {
	return bb.Emit(Instr{Op: op, Dest: dest, Src1: a, Src2: b, Mem: NoMem, Region: NoRegion})
}

func (bb *BlockBuilder) binaryImm(op Opcode, dest, a Reg, imm int64) *Instr {
	return bb.Emit(Instr{Op: op, Dest: dest, Src1: a, Src2: NoReg, Imm: imm, Mem: NoMem, Region: NoRegion})
}

// MovI loads an immediate: dest = imm.
func (bb *BlockBuilder) MovI(dest Reg, imm int64) *Instr {
	return bb.Emit(Instr{Op: MovI, Dest: dest, Imm: imm, Mem: NoMem, Region: NoRegion})
}

// Mov copies a register: dest = src.
func (bb *BlockBuilder) Mov(dest, src Reg) *Instr {
	return bb.Emit(Instr{Op: Mov, Dest: dest, Src1: src, Mem: NoMem, Region: NoRegion})
}

// Lea materializes an object address: dest = base(obj) + off.
func (bb *BlockBuilder) Lea(dest Reg, obj MemID, off int64) *Instr {
	return bb.Emit(Instr{Op: Lea, Dest: dest, Mem: obj, Imm: off, Region: NoRegion})
}

// LeaIdx materializes an indexed object address: dest = base(obj) + idx + off.
func (bb *BlockBuilder) LeaIdx(dest Reg, obj MemID, idx Reg, off int64) *Instr {
	return bb.Emit(Instr{Op: Lea, Dest: dest, Mem: obj, Src1: idx, Imm: off, Region: NoRegion})
}

// Arithmetic and logical operations, register and immediate forms.

func (bb *BlockBuilder) Add(d, a, b Reg) *Instr          { return bb.binary(Add, d, a, b) }
func (bb *BlockBuilder) AddI(d, a Reg, imm int64) *Instr { return bb.binaryImm(Add, d, a, imm) }
func (bb *BlockBuilder) Sub(d, a, b Reg) *Instr          { return bb.binary(Sub, d, a, b) }
func (bb *BlockBuilder) SubI(d, a Reg, imm int64) *Instr { return bb.binaryImm(Sub, d, a, imm) }
func (bb *BlockBuilder) Mul(d, a, b Reg) *Instr          { return bb.binary(Mul, d, a, b) }
func (bb *BlockBuilder) MulI(d, a Reg, imm int64) *Instr { return bb.binaryImm(Mul, d, a, imm) }
func (bb *BlockBuilder) Div(d, a, b Reg) *Instr          { return bb.binary(Div, d, a, b) }
func (bb *BlockBuilder) DivI(d, a Reg, imm int64) *Instr { return bb.binaryImm(Div, d, a, imm) }
func (bb *BlockBuilder) Rem(d, a, b Reg) *Instr          { return bb.binary(Rem, d, a, b) }
func (bb *BlockBuilder) RemI(d, a Reg, imm int64) *Instr { return bb.binaryImm(Rem, d, a, imm) }
func (bb *BlockBuilder) And(d, a, b Reg) *Instr          { return bb.binary(And, d, a, b) }
func (bb *BlockBuilder) AndI(d, a Reg, imm int64) *Instr { return bb.binaryImm(And, d, a, imm) }
func (bb *BlockBuilder) Or(d, a, b Reg) *Instr           { return bb.binary(Or, d, a, b) }
func (bb *BlockBuilder) OrI(d, a Reg, imm int64) *Instr  { return bb.binaryImm(Or, d, a, imm) }
func (bb *BlockBuilder) Xor(d, a, b Reg) *Instr          { return bb.binary(Xor, d, a, b) }
func (bb *BlockBuilder) XorI(d, a Reg, imm int64) *Instr { return bb.binaryImm(Xor, d, a, imm) }
func (bb *BlockBuilder) Shl(d, a, b Reg) *Instr          { return bb.binary(Shl, d, a, b) }
func (bb *BlockBuilder) ShlI(d, a Reg, imm int64) *Instr { return bb.binaryImm(Shl, d, a, imm) }
func (bb *BlockBuilder) Shr(d, a, b Reg) *Instr          { return bb.binary(Shr, d, a, b) }
func (bb *BlockBuilder) ShrI(d, a Reg, imm int64) *Instr { return bb.binaryImm(Shr, d, a, imm) }
func (bb *BlockBuilder) Sra(d, a, b Reg) *Instr          { return bb.binary(Sra, d, a, b) }
func (bb *BlockBuilder) SraI(d, a Reg, imm int64) *Instr { return bb.binaryImm(Sra, d, a, imm) }
func (bb *BlockBuilder) Slt(d, a, b Reg) *Instr          { return bb.binary(Slt, d, a, b) }
func (bb *BlockBuilder) SltI(d, a Reg, imm int64) *Instr { return bb.binaryImm(Slt, d, a, imm) }
func (bb *BlockBuilder) Sle(d, a, b Reg) *Instr          { return bb.binary(Sle, d, a, b) }
func (bb *BlockBuilder) Seq(d, a, b Reg) *Instr          { return bb.binary(Seq, d, a, b) }
func (bb *BlockBuilder) SeqI(d, a Reg, imm int64) *Instr { return bb.binaryImm(Seq, d, a, imm) }
func (bb *BlockBuilder) Sne(d, a, b Reg) *Instr          { return bb.binary(Sne, d, a, b) }
func (bb *BlockBuilder) SneI(d, a Reg, imm int64) *Instr { return bb.binaryImm(Sne, d, a, imm) }

// Ld loads: dest = M[addr+off]. obj is the alias hint (NoMem if unknown).
func (bb *BlockBuilder) Ld(dest, addr Reg, off int64, obj MemID) *Instr {
	return bb.Emit(Instr{Op: Ld, Dest: dest, Src1: addr, Imm: off, Mem: obj, Region: NoRegion})
}

// St stores: M[addr+off] = val. obj is the alias hint (NoMem if unknown).
func (bb *BlockBuilder) St(addr Reg, off int64, val Reg, obj MemID) *Instr {
	return bb.Emit(Instr{Op: St, Src1: addr, Src2: val, Imm: off, Mem: obj, Region: NoRegion})
}

// Jmp branches unconditionally to target.
func (bb *BlockBuilder) Jmp(target BlockID) *Instr {
	return bb.Emit(Instr{Op: Jmp, Target: target, Mem: NoMem, Region: NoRegion})
}

func (bb *BlockBuilder) condBr(op Opcode, a, b Reg, target BlockID) *Instr {
	return bb.Emit(Instr{Op: op, Src1: a, Src2: b, Target: target, Mem: NoMem, Region: NoRegion})
}

func (bb *BlockBuilder) condBrImm(op Opcode, a Reg, imm int64, target BlockID) *Instr {
	return bb.Emit(Instr{Op: op, Src1: a, Src2: NoReg, Imm: imm, Target: target, Mem: NoMem, Region: NoRegion})
}

func (bb *BlockBuilder) Beq(a, b Reg, t BlockID) *Instr          { return bb.condBr(Beq, a, b, t) }
func (bb *BlockBuilder) BeqI(a Reg, imm int64, t BlockID) *Instr { return bb.condBrImm(Beq, a, imm, t) }
func (bb *BlockBuilder) Bne(a, b Reg, t BlockID) *Instr          { return bb.condBr(Bne, a, b, t) }
func (bb *BlockBuilder) BneI(a Reg, imm int64, t BlockID) *Instr { return bb.condBrImm(Bne, a, imm, t) }
func (bb *BlockBuilder) Blt(a, b Reg, t BlockID) *Instr          { return bb.condBr(Blt, a, b, t) }
func (bb *BlockBuilder) BltI(a Reg, imm int64, t BlockID) *Instr { return bb.condBrImm(Blt, a, imm, t) }
func (bb *BlockBuilder) Bge(a, b Reg, t BlockID) *Instr          { return bb.condBr(Bge, a, b, t) }
func (bb *BlockBuilder) BgeI(a Reg, imm int64, t BlockID) *Instr { return bb.condBrImm(Bge, a, imm, t) }
func (bb *BlockBuilder) Ble(a, b Reg, t BlockID) *Instr          { return bb.condBr(Ble, a, b, t) }
func (bb *BlockBuilder) BleI(a Reg, imm int64, t BlockID) *Instr { return bb.condBrImm(Ble, a, imm, t) }
func (bb *BlockBuilder) Bgt(a, b Reg, t BlockID) *Instr          { return bb.condBr(Bgt, a, b, t) }
func (bb *BlockBuilder) BgtI(a Reg, imm int64, t BlockID) *Instr { return bb.condBrImm(Bgt, a, imm, t) }

// Call invokes callee with the given arguments; dest receives the return
// value (NoReg to discard it).
func (bb *BlockBuilder) Call(dest Reg, callee FuncID, args ...Reg) *Instr {
	return bb.Emit(Instr{Op: Call, Dest: dest, Callee: callee, Args: args, Mem: NoMem, Region: NoRegion})
}

// Ret returns the value in src to the caller.
func (bb *BlockBuilder) Ret(src Reg) *Instr {
	return bb.Emit(Instr{Op: Ret, Src1: src, Mem: NoMem, Region: NoRegion})
}

// RetI returns an immediate value to the caller.
func (bb *BlockBuilder) RetI(imm int64) *Instr {
	return bb.Emit(Instr{Op: Ret, Src1: NoReg, Imm: imm, Mem: NoMem, Region: NoRegion})
}

// Nop emits a no-op.
func (bb *BlockBuilder) Nop() *Instr {
	return bb.Emit(Instr{Op: Nop, Mem: NoMem, Region: NoRegion})
}
