package ir

import (
	"errors"
	"fmt"
)

// RegionBankSize is the number of register entries in each computation
// instance bank (paper §5.1: "an input and output 8-entry register array").
// The compiler guarantees every region's live-in and live-out sets fit.
const RegionBankSize = 8

// RegionMaxMemObjects is the region-accordance cap on distinguishable
// memory objects per region (paper §4.4).
const RegionMaxMemObjects = 4

// Verify checks structural validity of the program: operand ranges, branch
// targets, call targets, object references, and — for transformed programs —
// the CCR region contract (no stores or calls inside regions, determinable
// loads only, bank-size limits, marker consistency). It returns a combined
// error listing every violation found.
func Verify(p *Program) error {
	var errs []error
	bad := func(format string, a ...any) {
		errs = append(errs, fmt.Errorf(format, a...))
	}
	if p.Func(p.Main) == nil {
		bad("main function f%d out of range", p.Main)
	}
	for _, f := range p.Funcs {
		verifyFunc(p, f, bad)
	}
	for _, r := range p.Regions {
		verifyRegion(p, r, bad)
	}
	return errors.Join(errs...)
}

func verifyFunc(p *Program, f *Func, bad func(string, ...any)) {
	if len(f.Blocks) == 0 {
		bad("%s: no blocks", f.Name)
		return
	}
	if f.NumParams > f.NumRegs {
		bad("%s: %d params but only %d regs", f.Name, f.NumParams, f.NumRegs)
	}
	checkReg := func(b BlockID, i int, r Reg, what string) {
		if r < 1 || int(r) > f.NumRegs {
			bad("%s b%d[%d]: %s register r%d out of range 1..%d", f.Name, b, i, what, r, f.NumRegs)
		}
	}
	var uses []Reg
	for _, b := range f.Blocks {
		if b.ID != BlockID(indexOfBlock(f, b)) {
			bad("%s: block ID %d does not match position", f.Name, b.ID)
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op >= numOpcodes {
				bad("%s b%d[%d]: invalid opcode %d", f.Name, b.ID, i, in.Op)
				continue
			}
			if in.Op.HasDest() && in.Op != Call {
				checkReg(b.ID, i, in.Dest, "dest")
			}
			if in.Op == Call && in.Dest != NoReg {
				checkReg(b.ID, i, in.Dest, "dest")
			}
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				checkReg(b.ID, i, u, "source")
			}
			if in.Op.IsBranch() && in.Op != Call && in.Op != Ret {
				if f.Block(in.Target) == nil {
					bad("%s b%d[%d]: branch target b%d out of range", f.Name, b.ID, i, in.Target)
				}
			}
			if in.Op == Call {
				callee := p.Func(in.Callee)
				if callee == nil {
					bad("%s b%d[%d]: call target f%d out of range", f.Name, b.ID, i, in.Callee)
				} else if len(in.Args) != callee.NumParams {
					bad("%s b%d[%d]: call to %s passes %d args, wants %d",
						f.Name, b.ID, i, callee.Name, len(in.Args), callee.NumParams)
				}
			}
			switch in.Op {
			case Lea, Inval:
				if p.Object(in.Mem) == nil {
					bad("%s b%d[%d]: %s references invalid obj%d", f.Name, b.ID, i, in.Op, in.Mem)
				}
			case Ld, St:
				if in.Mem != NoMem && p.Object(in.Mem) == nil {
					bad("%s b%d[%d]: %s alias hint obj%d out of range", f.Name, b.ID, i, in.Op, in.Mem)
				}
			}
			if in.Op == St && p.Object(in.Mem) != nil && p.Object(in.Mem).ReadOnly {
				bad("%s b%d[%d]: store to read-only object %s", f.Name, b.ID, i, p.Object(in.Mem).Name)
			}
			if in.Op == Reuse && p.Region(in.Region) == nil {
				bad("%s b%d[%d]: reuse names invalid region %d", f.Name, b.ID, i, in.Region)
			}
			// Every control transfer except Call (which resumes at the
			// next instruction) must terminate its block, so blocks are
			// true basic blocks.
			if i != len(b.Instrs)-1 && in.Op.IsBranch() && in.Op != Call {
				bad("%s b%d[%d]: %s before end of block", f.Name, b.ID, i, in.Op)
			}
		}
	}
	// The final block must not fall off the end of the function.
	last := f.Blocks[len(f.Blocks)-1]
	t := last.Terminator()
	if t == nil || (t.Op != Jmp && t.Op != Ret) {
		bad("%s: final block b%d falls off the end of the function", f.Name, last.ID)
	}
}

func verifyRegion(p *Program, r *Region, bad func(string, ...any)) {
	f := p.Func(r.Func)
	if f == nil {
		bad("region %d: function f%d out of range", r.ID, r.Func)
		return
	}
	if len(r.Inputs) > RegionBankSize {
		bad("region %d: %d inputs exceeds bank size %d", r.ID, len(r.Inputs), RegionBankSize)
	}
	if len(r.Outputs) > RegionBankSize {
		bad("region %d: %d outputs exceeds bank size %d", r.ID, len(r.Outputs), RegionBankSize)
	}
	if len(r.MemObjects) > RegionMaxMemObjects {
		bad("region %d: %d memory objects exceeds accordance limit %d", r.ID, len(r.MemObjects), RegionMaxMemObjects)
	}
	if r.Class == Stateless && len(r.MemObjects) != 0 {
		bad("region %d: stateless region lists memory objects", r.ID)
	}
	inc := f.Block(r.Inception)
	if inc == nil {
		bad("region %d: inception b%d out of range", r.ID, r.Inception)
		return
	}
	if f.Block(r.Continuation) == nil || f.Block(r.Body) == nil {
		bad("region %d: body b%d or continuation b%d out of range", r.ID, r.Body, r.Continuation)
		return
	}
	// The inception block must consist of exactly the reuse instruction.
	if len(inc.Instrs) != 1 || inc.Instrs[0].Op != Reuse || inc.Instrs[0].Region != r.ID {
		bad("region %d: inception b%d is not a single reuse instruction", r.ID, r.Inception)
	}
	if r.Kind == FuncLevel {
		// A function-level region's body is a single call to the
		// memoized callee; there are no member-tagged instructions.
		body := f.Block(r.Body)
		if body == nil || len(body.Instrs) != 1 || body.Instrs[0].Op != Call ||
			body.Instrs[0].Callee != r.Callee {
			bad("region %d: function-level body b%d is not a single call to f%d", r.ID, r.Body, r.Callee)
		}
		return
	}
	memSet := make(map[MemID]bool, len(r.MemObjects))
	for _, m := range r.MemObjects {
		memSet[m] = true
	}
	sawEnd := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Region != r.ID || in.Op == Reuse {
				continue
			}
			switch in.Op {
			case St:
				bad("region %d: contains store at %s b%d[%d]", r.ID, f.Name, b.ID, i)
			case Call:
				bad("region %d: contains call at %s b%d[%d]", r.ID, f.Name, b.ID, i)
			case Ret:
				bad("region %d: contains return at %s b%d[%d]", r.ID, f.Name, b.ID, i)
			case Inval:
				bad("region %d: contains invalidate at %s b%d[%d]", r.ID, f.Name, b.ID, i)
			case Ld:
				if !in.Attr.Has(AttrDeterminable) {
					bad("region %d: non-determinable load at %s b%d[%d]", r.ID, f.Name, b.ID, i)
				}
				if in.Mem == NoMem {
					bad("region %d: load with unknown object at %s b%d[%d]", r.ID, f.Name, b.ID, i)
				} else if obj := p.Object(in.Mem); obj != nil && !obj.ReadOnly && !memSet[in.Mem] {
					// Read-only objects need no invalidation registration;
					// writable objects must be in the region memory set.
					bad("region %d: load of obj%d not in region memory set at %s b%d[%d]", r.ID, in.Mem, f.Name, b.ID, i)
				}
			}
			if in.Attr.Has(AttrRegionEnd) {
				sawEnd = true
			}
		}
	}
	if !sawEnd {
		bad("region %d: no region-end marker", r.ID)
	}
}

func indexOfBlock(f *Func, b *Block) int {
	for i, x := range f.Blocks {
		if x == b {
			return i
		}
	}
	return -1
}

// MustVerify panics if the program fails verification; a convenience for
// construction-time checking in tests and workload definitions.
func MustVerify(p *Program) *Program {
	if err := Verify(p); err != nil {
		panic(fmt.Sprintf("ir: verify %s: %v", p.Name, err))
	}
	return p
}
