package ir

import (
	"fmt"
	"strings"
)

// String renders the instruction in a compact assembly-like syntax.
func (in *Instr) String() string {
	var sb strings.Builder
	sb.WriteString(in.Op.String())
	arg := func(format string, a ...any) {
		sb.WriteByte(' ')
		fmt.Fprintf(&sb, format, a...)
	}
	rhs := func() string {
		if in.Src2 != NoReg {
			return fmt.Sprintf("r%d", in.Src2)
		}
		return fmt.Sprintf("#%d", in.Imm)
	}
	switch in.Op {
	case Nop:
	case Mov:
		arg("r%d, r%d", in.Dest, in.Src1)
	case MovI:
		arg("r%d, #%d", in.Dest, in.Imm)
	case Lea:
		if in.Src1 != NoReg {
			arg("r%d, obj%d+r%d+%d", in.Dest, in.Mem, in.Src1, in.Imm)
		} else {
			arg("r%d, obj%d+%d", in.Dest, in.Mem, in.Imm)
		}
	case Ld:
		arg("r%d, [r%d+%d]", in.Dest, in.Src1, in.Imm)
		if in.Mem != NoMem {
			arg("{obj%d}", in.Mem)
		}
	case St:
		arg("[r%d+%d], r%d", in.Src1, in.Imm, in.Src2)
		if in.Mem != NoMem {
			arg("{obj%d}", in.Mem)
		}
	case Jmp:
		arg("b%d", in.Target)
	case Beq, Bne, Blt, Bge, Ble, Bgt:
		arg("r%d, %s, b%d", in.Src1, rhs(), in.Target)
	case Call:
		args := make([]string, len(in.Args))
		for i, r := range in.Args {
			args[i] = fmt.Sprintf("r%d", r)
		}
		if in.Dest != NoReg {
			arg("r%d, f%d(%s)", in.Dest, in.Callee, strings.Join(args, ", "))
		} else {
			arg("f%d(%s)", in.Callee, strings.Join(args, ", "))
		}
	case Ret:
		if in.Src1 != NoReg {
			arg("r%d", in.Src1)
		} else {
			arg("#%d", in.Imm)
		}
	case Reuse:
		arg("region%d, hit=b%d", in.Region, in.Target)
	case Inval:
		arg("obj%d", in.Mem)
	default:
		arg("r%d, r%d, %s", in.Dest, in.Src1, rhs())
	}
	var attrs []string
	if in.Attr.Has(AttrLiveOut) {
		attrs = append(attrs, "liveout")
	}
	if in.Attr.Has(AttrRegionEnd) {
		attrs = append(attrs, "rend")
	}
	if in.Attr.Has(AttrRegionExit) {
		attrs = append(attrs, "rexit")
	}
	if in.Attr.Has(AttrDeterminable) {
		attrs = append(attrs, "det")
	}
	if len(attrs) > 0 {
		fmt.Fprintf(&sb, "  !%s", strings.Join(attrs, ","))
	}
	if in.Region != NoRegion && in.Op != Reuse {
		fmt.Fprintf(&sb, "  @region%d", in.Region)
	}
	return sb.String()
}

// Dump renders the function as readable pseudo-assembly.
func (f *Func) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (f%d) params=%d regs=%d\n", f.Name, f.ID, f.NumParams, f.NumRegs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.ID)
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", b.Instrs[i].String())
		}
	}
	return sb.String()
}

// Dump renders the whole program: objects (with initializer data),
// regions and functions, in the textual form Parse accepts, so
// Parse(Dump(p)) reproduces p.
func (p *Program) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s\n", p.Name)
	for _, o := range p.Objects {
		ro := ""
		if o.ReadOnly {
			ro = " readonly"
		}
		fmt.Fprintf(&sb, "object obj%d %s[%d]%s @%d\n", o.ID, o.Name, o.Size, ro, o.Base)
		if len(o.Init) > 0 {
			sb.WriteString("\tdata")
			for _, v := range o.Init {
				fmt.Fprintf(&sb, " %d", v)
			}
			sb.WriteByte('\n')
		}
	}
	for _, r := range p.Regions {
		fmt.Fprintf(&sb, "region %d %s %s %s f%d inception=b%d body=b%d cont=b%d in=%v out=%v mem=%v size=%d",
			r.ID, r.Class, r.Kind, r.Group(), r.Func, r.Inception, r.Body, r.Continuation,
			r.Inputs, r.Outputs, r.MemObjects, r.StaticSize)
		if r.Kind == FuncLevel {
			fmt.Fprintf(&sb, " callee=f%d", r.Callee)
		}
		sb.WriteByte('\n')
	}
	if p.Main != NoFunc {
		fmt.Fprintf(&sb, "main f%d\n", p.Main)
	}
	for _, f := range p.Funcs {
		sb.WriteString(f.Dump())
	}
	return sb.String()
}
