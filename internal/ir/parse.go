package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual program form produced by Program.Dump and
// reconstructs the program, so programs can be stored, diffed and shipped
// as plain text. The parsed program is linked but not verified; callers
// that want structural guarantees should run Verify.
//
// The grammar is line-oriented:
//
//	program NAME
//	object objN NAME[SIZE] [readonly] @BASE
//	        data V V V ...
//	region N SL|MD acyclic|cyclic GROUP fN inception=bN body=bN cont=bN
//	        in=[R ...] out=[R ...] mem=[M ...] size=N
//	main fN
//	func NAME (fN) params=N regs=N
//	bN:
//	        MNEMONIC OPERANDS [!attr,attr] [@regionN]
func Parse(text string) (*Program, error) {
	p := &parser{prog: &Program{Main: NoFunc}}
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("ir: parse line %d %q: %w", i+1, raw, err)
		}
	}
	p.prog.Link()
	return p.prog, nil
}

type parser struct {
	prog    *Program
	curFunc *Func
	curBlk  *Block
	lastObj *MemObject
}

func (p *parser) line(line string) error {
	switch {
	case line == "program" || strings.HasPrefix(line, "program "):
		p.prog.Name = strings.TrimSpace(strings.TrimPrefix(line, "program"))
		return nil
	case strings.HasPrefix(line, "object "):
		return p.object(line)
	case strings.HasPrefix(line, "data"):
		return p.data(line)
	case strings.HasPrefix(line, "region "):
		return p.region(line)
	case strings.HasPrefix(line, "main f"):
		n, err := strconv.Atoi(strings.TrimPrefix(line, "main f"))
		if err != nil {
			return err
		}
		p.prog.Main = FuncID(n)
		return nil
	case strings.HasPrefix(line, "func "):
		return p.function(line)
	case strings.HasPrefix(line, "b") && strings.HasSuffix(line, ":"):
		return p.block(line)
	default:
		return p.instr(line)
	}
}

func (p *parser) object(line string) error {
	// object obj3 name[16] readonly @24
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return fmt.Errorf("malformed object line")
	}
	var id int
	if _, err := fmt.Sscanf(fields[1], "obj%d", &id); err != nil {
		return err
	}
	spec := fields[2]
	lb := strings.IndexByte(spec, '[')
	rb := strings.IndexByte(spec, ']')
	if lb < 0 || rb < lb {
		return fmt.Errorf("malformed object size in %q", spec)
	}
	size, err := strconv.ParseInt(spec[lb+1:rb], 10, 64)
	if err != nil {
		return err
	}
	o := &MemObject{ID: MemID(id), Name: spec[:lb], Size: size}
	for _, f := range fields[3:] {
		if f == "readonly" {
			o.ReadOnly = true
		}
	}
	if int(o.ID) != len(p.prog.Objects) {
		return fmt.Errorf("object obj%d out of order", id)
	}
	p.prog.Objects = append(p.prog.Objects, o)
	p.lastObj = o
	return nil
}

func (p *parser) data(line string) error {
	if p.lastObj == nil {
		return fmt.Errorf("data line before any object")
	}
	for _, f := range strings.Fields(line)[1:] {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return err
		}
		p.lastObj.Init = append(p.lastObj.Init, v)
	}
	if int64(len(p.lastObj.Init)) > p.lastObj.Size {
		return fmt.Errorf("object %s initializer exceeds size", p.lastObj.Name)
	}
	return nil
}

func parseIDList[T ~int32](s string) ([]T, error) {
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	if s == "" {
		return nil, nil
	}
	var out []T
	for _, f := range strings.Fields(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, T(v))
	}
	return out, nil
}

func (p *parser) region(line string) error {
	// region 0 MD cyclic MD_3_1 f0 inception=b1 body=b2 cont=b5
	//   in=[1 3 4] out=[] mem=[0] size=6
	// The in=/out=/mem= fields use %v formatting, so the list may span
	// several space-separated fields; reassemble bracket groups first.
	fields := regroupBrackets(strings.Fields(line))
	if len(fields) < 12 {
		return fmt.Errorf("malformed region line (%d fields)", len(fields))
	}
	r := &Region{}
	id, err := strconv.Atoi(fields[1])
	if err != nil {
		return err
	}
	r.ID = RegionID(id)
	switch fields[2] {
	case "SL":
		r.Class = Stateless
	case "MD":
		r.Class = MemoryDependent
	default:
		return fmt.Errorf("unknown region class %q", fields[2])
	}
	switch fields[3] {
	case "acyclic":
		r.Kind = Acyclic
	case "cyclic":
		r.Kind = Cyclic
	case "funclevel":
		r.Kind = FuncLevel
	default:
		return fmt.Errorf("unknown region kind %q", fields[3])
	}
	r.Callee = NoFunc
	// fields[4] is the derived group label; ignored on input.
	var fid int
	if _, err := fmt.Sscanf(fields[5], "f%d", &fid); err != nil {
		return err
	}
	r.Func = FuncID(fid)
	for _, f := range fields[6:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("malformed region field %q", f)
		}
		switch key {
		case "inception", "body", "cont":
			var b int
			if _, err := fmt.Sscanf(val, "b%d", &b); err != nil {
				return err
			}
			switch key {
			case "inception":
				r.Inception = BlockID(b)
			case "body":
				r.Body = BlockID(b)
			case "cont":
				r.Continuation = BlockID(b)
			}
		case "in":
			if r.Inputs, err = parseIDList[Reg](val); err != nil {
				return err
			}
		case "out":
			if r.Outputs, err = parseIDList[Reg](val); err != nil {
				return err
			}
		case "mem":
			if r.MemObjects, err = parseIDList[MemID](val); err != nil {
				return err
			}
		case "size":
			if r.StaticSize, err = strconv.Atoi(val); err != nil {
				return err
			}
		case "callee":
			var cf int
			if _, err := fmt.Sscanf(val, "f%d", &cf); err != nil {
				return err
			}
			r.Callee = FuncID(cf)
		}
	}
	if int(r.ID) != len(p.prog.Regions) {
		return fmt.Errorf("region %d out of order", r.ID)
	}
	p.prog.Regions = append(p.prog.Regions, r)
	return nil
}

// regroupBrackets joins fields so that "in=[1" "3" "4]" becomes one field.
func regroupBrackets(fields []string) []string {
	var out []string
	depth := 0
	for _, f := range fields {
		if depth > 0 {
			out[len(out)-1] += " " + f
		} else {
			out = append(out, f)
		}
		depth += strings.Count(f, "[") - strings.Count(f, "]")
		if depth < 0 {
			depth = 0
		}
	}
	return out
}

func (p *parser) function(line string) error {
	// func main (f0) params=1 regs=9
	var name string
	var id, params, regs int
	if _, err := fmt.Sscanf(line, "func %s (f%d) params=%d regs=%d", &name, &id, &params, &regs); err != nil {
		return err
	}
	f := &Func{ID: FuncID(id), Name: name, NumParams: params, NumRegs: regs}
	if int(f.ID) != len(p.prog.Funcs) {
		return fmt.Errorf("function f%d out of order", id)
	}
	p.prog.Funcs = append(p.prog.Funcs, f)
	p.curFunc = f
	p.curBlk = nil
	if name == "main" && p.prog.Main == NoFunc {
		p.prog.Main = f.ID
	}
	return nil
}

func (p *parser) block(line string) error {
	if p.curFunc == nil {
		return fmt.Errorf("block outside function")
	}
	var id int
	if _, err := fmt.Sscanf(line, "b%d:", &id); err != nil {
		return err
	}
	if id != len(p.curFunc.Blocks) {
		return fmt.Errorf("block b%d out of order", id)
	}
	b := &Block{ID: BlockID(id)}
	p.curFunc.Blocks = append(p.curFunc.Blocks, b)
	p.curBlk = b
	return nil
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, int(numOpcodes))
	for op := Opcode(0); op < numOpcodes; op++ {
		m[op.String()] = op
	}
	return m
}()

func (p *parser) instr(line string) error {
	if p.curBlk == nil {
		return fmt.Errorf("instruction outside block")
	}
	in := Instr{Mem: NoMem, Region: NoRegion}

	// Trailing "@regionN" marker.
	if i := strings.LastIndex(line, "@region"); i >= 0 {
		n, err := strconv.Atoi(strings.TrimSpace(line[i+len("@region"):]))
		if err != nil {
			return err
		}
		in.Region = RegionID(n)
		line = strings.TrimSpace(line[:i])
	}
	// Trailing "!attr,attr" marker.
	if i := strings.LastIndex(line, "!"); i >= 0 {
		for _, a := range strings.Split(line[i+1:], ",") {
			switch strings.TrimSpace(a) {
			case "liveout":
				in.Attr |= AttrLiveOut
			case "rend":
				in.Attr |= AttrRegionEnd
			case "rexit":
				in.Attr |= AttrRegionExit
			case "det":
				in.Attr |= AttrDeterminable
			default:
				return fmt.Errorf("unknown attribute %q", a)
			}
		}
		line = strings.TrimSpace(line[:i])
	}

	mnemonic, rest, _ := strings.Cut(line, " ")
	op, ok := opByName[mnemonic]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	in.Op = op
	rest = strings.TrimSpace(rest)
	if err := p.operands(&in, rest); err != nil {
		return err
	}
	p.curBlk.Instrs = append(p.curBlk.Instrs, in)
	return nil
}

// operand scanners ----------------------------------------------------

func scanReg(s string) (Reg, error) {
	var n int
	if _, err := fmt.Sscanf(s, "r%d", &n); err != nil {
		return NoReg, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func scanBlock(s string) (BlockID, error) {
	var n int
	if _, err := fmt.Sscanf(s, "b%d", &n); err != nil {
		return NoBlock, fmt.Errorf("bad block %q", s)
	}
	return BlockID(n), nil
}

func scanImm(s string) (int64, error) {
	if !strings.HasPrefix(s, "#") {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return strconv.ParseInt(s[1:], 10, 64)
}

// rhs parses either "rN" into Src2 or "#imm" into Imm.
func rhs(in *Instr, s string) error {
	if strings.HasPrefix(s, "r") {
		r, err := scanReg(s)
		if err != nil {
			return err
		}
		in.Src2 = r
		return nil
	}
	imm, err := scanImm(s)
	if err != nil {
		return err
	}
	in.Src2 = NoReg
	in.Imm = imm
	return nil
}

func (p *parser) operands(in *Instr, rest string) error {
	args := splitArgs(rest)
	switch in.Op {
	case Nop:
		return nil
	case Mov:
		return p.take2(in, args, func(d, s Reg) { in.Dest, in.Src1 = d, s })
	case MovI:
		if len(args) != 2 {
			return fmt.Errorf("movi wants 2 operands")
		}
		d, err := scanReg(args[0])
		if err != nil {
			return err
		}
		imm, err := scanImm(args[1])
		if err != nil {
			return err
		}
		in.Dest, in.Imm = d, imm
		return nil
	case Lea:
		// lea r6, obj1+0   |   lea r6, obj1+r3+4
		if len(args) != 2 {
			return fmt.Errorf("lea wants 2 operands")
		}
		d, err := scanReg(args[0])
		if err != nil {
			return err
		}
		in.Dest = d
		parts := strings.Split(args[1], "+")
		var obj int
		if _, err := fmt.Sscanf(parts[0], "obj%d", &obj); err != nil {
			return err
		}
		in.Mem = MemID(obj)
		switch len(parts) {
		case 2:
			imm, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return err
			}
			in.Imm = imm
		case 3:
			r, err := scanReg(parts[1])
			if err != nil {
				return err
			}
			imm, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				return err
			}
			in.Src1, in.Imm = r, imm
		default:
			return fmt.Errorf("malformed lea address %q", args[1])
		}
		return nil
	case Ld:
		// ld r3, [r4+0] {obj1}
		if len(args) < 2 {
			return fmt.Errorf("ld wants 2+ operands")
		}
		d, err := scanReg(args[0])
		if err != nil {
			return err
		}
		in.Dest = d
		return p.memOperand(in, args[1:])
	case St:
		// st [r1+0], r2 {obj0}
		if len(args) < 2 {
			return fmt.Errorf("st wants 2+ operands")
		}
		v, err := scanReg(args[1])
		if err != nil {
			return err
		}
		in.Src2 = v
		return p.memOperand(in, append([]string{args[0]}, args[2:]...))
	case Jmp:
		if len(args) != 1 {
			return fmt.Errorf("jmp wants 1 operand")
		}
		b, err := scanBlock(args[0])
		if err != nil {
			return err
		}
		in.Target = b
		return nil
	case Beq, Bne, Blt, Bge, Ble, Bgt:
		if len(args) != 3 {
			return fmt.Errorf("branch wants 3 operands")
		}
		s1, err := scanReg(args[0])
		if err != nil {
			return err
		}
		in.Src1 = s1
		if err := rhs(in, args[1]); err != nil {
			return err
		}
		b, err := scanBlock(args[2])
		if err != nil {
			return err
		}
		in.Target = b
		return nil
	case Call:
		return p.call(in, rest)
	case Ret:
		if len(args) != 1 {
			return fmt.Errorf("ret wants 1 operand")
		}
		if strings.HasPrefix(args[0], "r") {
			r, err := scanReg(args[0])
			if err != nil {
				return err
			}
			in.Src1 = r
			return nil
		}
		imm, err := scanImm(args[0])
		if err != nil {
			return err
		}
		in.Imm = imm
		return nil
	case Reuse:
		// reuse region0, hit=b5
		if len(args) != 2 {
			return fmt.Errorf("reuse wants 2 operands")
		}
		var rid int
		if _, err := fmt.Sscanf(args[0], "region%d", &rid); err != nil {
			return err
		}
		in.Region = RegionID(rid)
		var b int
		if _, err := fmt.Sscanf(args[1], "hit=b%d", &b); err != nil {
			return err
		}
		in.Target = BlockID(b)
		return nil
	case Inval:
		if len(args) != 1 {
			return fmt.Errorf("inval wants 1 operand")
		}
		var obj int
		if _, err := fmt.Sscanf(args[0], "obj%d", &obj); err != nil {
			return err
		}
		in.Mem = MemID(obj)
		return nil
	default: // binary ALU: op rD, rA, (rB|#imm)
		if len(args) != 3 {
			return fmt.Errorf("%s wants 3 operands", in.Op)
		}
		d, err := scanReg(args[0])
		if err != nil {
			return err
		}
		a, err := scanReg(args[1])
		if err != nil {
			return err
		}
		in.Dest, in.Src1 = d, a
		return rhs(in, args[2])
	}
}

func (p *parser) take2(in *Instr, args []string, set func(d, s Reg)) error {
	if len(args) != 2 {
		return fmt.Errorf("%s wants 2 operands", in.Op)
	}
	d, err := scanReg(args[0])
	if err != nil {
		return err
	}
	s, err := scanReg(args[1])
	if err != nil {
		return err
	}
	set(d, s)
	return nil
}

// memOperand parses "[rN+imm]" plus an optional "{objM}" hint.
func (p *parser) memOperand(in *Instr, args []string) error {
	addr := args[0]
	if !strings.HasPrefix(addr, "[") || !strings.HasSuffix(addr, "]") {
		return fmt.Errorf("malformed address %q", addr)
	}
	body := addr[1 : len(addr)-1]
	base, off, ok := strings.Cut(body, "+")
	if !ok {
		return fmt.Errorf("malformed address %q", addr)
	}
	r, err := scanReg(base)
	if err != nil {
		return err
	}
	imm, err := strconv.ParseInt(off, 10, 64)
	if err != nil {
		return err
	}
	in.Src1, in.Imm = r, imm
	for _, extra := range args[1:] {
		if strings.HasPrefix(extra, "{obj") && strings.HasSuffix(extra, "}") {
			var obj int
			if _, err := fmt.Sscanf(extra, "{obj%d}", &obj); err != nil {
				return err
			}
			in.Mem = MemID(obj)
		}
	}
	return nil
}

// call: "call r5, f2(r1, r3)" or "call f2(r1)"
func (p *parser) call(in *Instr, rest string) error {
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(rest, "r") {
		d, after, ok := strings.Cut(rest, ",")
		if !ok {
			return fmt.Errorf("malformed call %q", rest)
		}
		r, err := scanReg(strings.TrimSpace(d))
		if err != nil {
			return err
		}
		in.Dest = r
		rest = strings.TrimSpace(after)
	}
	lp := strings.IndexByte(rest, '(')
	rp := strings.LastIndexByte(rest, ')')
	if lp < 0 || rp < lp {
		return fmt.Errorf("malformed call target %q", rest)
	}
	var fid int
	if _, err := fmt.Sscanf(rest[:lp], "f%d", &fid); err != nil {
		return err
	}
	in.Callee = FuncID(fid)
	argstr := strings.TrimSpace(rest[lp+1 : rp])
	if argstr != "" {
		for _, a := range strings.Split(argstr, ",") {
			r, err := scanReg(strings.TrimSpace(a))
			if err != nil {
				return err
			}
			in.Args = append(in.Args, r)
		}
	}
	return nil
}

// splitArgs splits on commas outside brackets/braces/parens.
func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '{', '(':
			depth++
		case ']', '}', ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		case ' ':
			// "{objN}" hints follow the address without a comma.
			if depth == 0 && strings.HasPrefix(strings.TrimSpace(s[i:]), "{") {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}
