package ir

// This file implements the decode-time machinery behind the third
// execution tier (see emu's engine notes and DESIGN.md §15):
//
//   - EntryPC marks every flat PC where a straight-line run can legally be
//     entered. Superinstruction fusion must never pair across such a PC,
//     because a walk beginning there has to decode the same instruction
//     stream as a walk that fell into it from above.
//   - RunKeys gives each run a content digest over the *unfused* batch
//     form. Hot-region specializations (internal/spec) bind to a function
//     by digest, never by name, so any relink that moves an object, edits
//     an instruction, or changes a branch target silently unbinds every
//     stale specialization.
//   - RunOps/RunBr precompute each run's opcode-count and branch-count
//     deltas, generalizing the flushOpCounts forward-carry reconstruction
//     to one table lookup per run entry.
//   - fuseXCode rewrites eligible adjacent XInstr pairs into one fused
//     superinstruction that the batch loop executes in a single dispatch.
//
// Fusion is an in-place opcode rewrite: the second instruction of a pair
// keeps its slot and operands (the fused case reads them from xcode[pc+1])
// but is never entered — pairs are only formed when the second slot is not
// an entry PC, and greedy left-to-right pairing keeps pairs disjoint, so
// every legal walk through a run decodes identical superinstructions.
// PC arithmetic, RunEnd, budget charging and the per-run histograms are
// all expressed in architectural instructions and are unaffected.

// Fused superinstruction opcodes. Each XF op executes the pair
// (xcode[pc], xcode[pc+1]) in one batch-loop dispatch; the name gives the
// two underlying X opcodes. Pairs are pure ALU (no faults, no observable
// side effects) except the *Jmp enders, which fold the run's terminal
// unconditional jump into its preceding ALU op.
const (
	XFShlIAdd uint8 = XEnd + 1 + iota // Shl-RI then Add-RR
	XFShrIAndI                        // Shr-RI then And-RI
	XFSraIAndI                        // Sra-RI then And-RI
	XFMulIAddI                        // Mul-RI then Add-RI
	XFXorShlI                         // Xor-RR then Shl-RI
	XFXorIAdd                         // Xor-RI then Add-RR
	XFAddMulI                         // Add-RR then Mul-RI
	XFAddAdd                          // Add-RR then Add-RR
	XFAddAddI                         // Add-RR then Add-RI
	XFAddAndI                         // Add-RR then And-RI
	XFAddXor                          // Add-RR then Xor-RR
	XFAndILeaR                        // And-RI then Lea-R
	XFShlIXor                         // Shl-RI then Xor-RR
	XFAddIJmp                         // Add-RI then Jmp (run ender)
	XFAddLd                           // Add-RR then Ld (second slot may fault)
)

// XFFirst is the smallest fused opcode; IsFused(op) is op >= XFFirst.
const XFFirst = XFShlIAdd

// fusePairs maps an adjacent (XOp1, XOp2) pair to its fused opcode. Only
// pairs whose first op is a non-faulting, non-control ALU op may appear:
// the fused case applies op1 unconditionally before op2 runs (or faults,
// for XFAddLd), exactly as sequential execution would.
var fusePairs = map[[2]uint8]uint8{
	{XShlRI, XAddRR}: XFShlIAdd,
	{XShrRI, XAndRI}: XFShrIAndI,
	{XSraRI, XAndRI}: XFSraIAndI,
	{XMulRI, XAddRI}: XFMulIAddI,
	{XXorRR, XShlRI}: XFXorShlI,
	{XXorRI, XAddRR}: XFXorIAdd,
	{XAddRR, XMulRI}: XFAddMulI,
	{XAddRR, XAddRR}: XFAddAdd,
	{XAddRR, XAddRI}: XFAddAddI,
	{XAddRR, XAndRI}: XFAddAndI,
	{XAddRR, XXorRR}: XFAddXor,
	{XAndRI, XLeaR}:  XFAndILeaR,
	{XShlRI, XXorRR}: XFShlIXor,
	{XAddRI, XJmp}:   XFAddIJmp,
	{XAddRR, XLd}:    XFAddLd,
}

// OpCount is one opcode's execution count within a straight-line run.
type OpCount struct {
	Op Opcode
	N  int32
}

// entryPCs computes the run-entry set: the function entry, every control
// transfer's flat successor (call fall-through and post-return resume
// included), and every resolved branch/reuse target. These are exactly
// the PCs at which the batch tier can begin a run, so fusion treats them
// as unsplittable boundaries.
func entryPCs(df *DecodedFunc) []bool {
	e := make([]bool, len(df.Code))
	e[0] = true
	for i := range df.Code {
		switch df.Code[i].Op {
		case Jmp, Beq, Bne, Blt, Bge, Ble, Bgt, Call, Ret, Reuse:
			if i+1 < len(e) {
				e[i+1] = true
			}
			if t := df.Code[i].Target; t >= 0 && int(t) < len(e) {
				e[t] = true
			}
		}
	}
	return e
}

// runDeltas precomputes, for every possible run head pc, the opcode-count
// list and conditional-branch count of the run [pc, RunEnd[pc]]. The
// sentinel slot is included when a run falls off the end — its pre-charge
// is refunded through a byCorr range, mirroring the carry-sweep form.
func runDeltas(df *DecodedFunc) ([][]OpCount, []int32) {
	n := len(df.Code)
	ops := make([][]OpCount, n)
	br := make([]int32, n)
	var counts [64]int32
	for i := 0; i < n; i++ {
		end := int(df.RunEnd[i])
		var order []Opcode
		for j := i; j <= end; j++ {
			op := df.Code[j].Op
			if counts[op] == 0 {
				order = append(order, op)
			}
			counts[op]++
			switch op {
			case Beq, Bne, Blt, Bge, Ble, Bgt:
				br[i]++
			}
		}
		list := make([]OpCount, len(order))
		for k, op := range order {
			list[k] = OpCount{Op: op, N: counts[op]}
			counts[op] = 0
		}
		ops[i] = list
	}
	return ops, br
}

// fnvPrime/fnvOffset are the FNV-1a 64-bit parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvInt(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// runKeys digests every run of the unfused batch form: the head PC plus
// each member XInstr's full field contents. Folded Lea bases, Ld/St
// bounds and resolved flat targets are all inside the digest, so a key
// pins the run's complete semantics, independent of the function's text
// base. Keys are computed before fusion so they describe architectural
// content, not a particular pairing.
func runKeys(df *DecodedFunc, xcode []XInstr) []uint64 {
	keys := make([]uint64, len(df.Code))
	for pc := range df.Code {
		h := fnvInt(fnvOffset, uint64(pc))
		for j := pc; j <= int(df.RunEnd[pc]); j++ {
			x := &xcode[j]
			h = fnvInt(h, uint64(x.XOp)|uint64(x.Dest)<<8|uint64(x.Src1)<<16|uint64(x.Src2)<<24)
			h = fnvInt(h, uint64(uint32(x.Target)))
			h = fnvInt(h, uint64(x.Imm))
			h = fnvInt(h, uint64(x.ObjLo))
			h = fnvInt(h, uint64(x.ObjHi))
		}
		keys[pc] = h
	}
	return keys
}

// fuseXCode rewrites adjacent instruction pairs into fused
// superinstructions, in place. A pair (i, i+1) forms only when the table
// lists the opcode combination and i+1 is not a run-entry PC; greedy
// left-to-right scanning keeps pairs disjoint, which together with the
// entry-PC rule makes every legal walk decode the same fused stream (a
// walk can land on slot i+1 only by entering there, and entries are
// excluded). The second slot keeps its original encoding — fused cases
// read their operands from xcode[pc+1] directly.
func fuseXCode(xcode []XInstr, entry []bool) {
	for i := 0; i+1 < len(xcode); {
		if !entry[i+1] {
			if xf, ok := fusePairs[[2]uint8{xcode[i].XOp, xcode[i+1].XOp}]; ok {
				xcode[i].XOp = xf
				i += 2
				continue
			}
		}
		i++
	}
}
