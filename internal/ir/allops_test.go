package ir

import "testing"

// TestEveryOpcodeRoundTrips builds a program containing every opcode in
// every operand form the builder can emit, verifies it, and requires a
// Dump → Parse → Dump fixpoint — exhaustive coverage of the printer and
// parser over the instruction set.
func TestEveryOpcodeRoundTrips(t *testing.T) {
	pb := NewProgramBuilder("allops")
	tab := pb.ReadOnlyObject("tab", []int64{1, 2, 3, 4})
	buf := pb.Object("buf", 8, nil)

	g := pb.Func("callee", 2)
	gb := g.NewBlock()
	gv := g.NewReg()
	gb.Add(gv, g.Param(0), g.Param(1))
	gb.Ret(gv)

	f := pb.Func("main", 1)
	pb.SetMain(f.ID())
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	a, b, c, p := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()

	b0.Nop()
	b0.MovI(a, 42)
	b0.Mov(b, a)
	b0.Lea(p, tab, 1)
	b0.LeaIdx(p, buf, a, 2)
	// Register and immediate forms of every binary ALU operation.
	b0.Add(c, a, b)
	b0.AddI(c, a, 1)
	b0.Sub(c, a, b)
	b0.SubI(c, a, 2)
	b0.Mul(c, a, b)
	b0.MulI(c, a, 3)
	b0.Div(c, a, b)
	b0.DivI(c, a, 4)
	b0.Rem(c, a, b)
	b0.RemI(c, a, 5)
	b0.And(c, a, b)
	b0.AndI(c, a, 6)
	b0.Or(c, a, b)
	b0.OrI(c, a, 7)
	b0.Xor(c, a, b)
	b0.XorI(c, a, 8)
	b0.Shl(c, a, b)
	b0.ShlI(c, a, 9)
	b0.Shr(c, a, b)
	b0.ShrI(c, a, 10)
	b0.Sra(c, a, b)
	b0.SraI(c, a, 11)
	b0.Slt(c, a, b)
	b0.SltI(c, a, 12)
	b0.Sle(c, a, b)
	b0.Seq(c, a, b)
	b0.SeqI(c, a, 13)
	b0.Sne(c, a, b)
	b0.SneI(c, a, 14)
	// Memory, with and without hints.
	b0.AndI(p, a, 3)
	b0.LeaIdx(p, buf, p, 0)
	b0.St(p, 0, a, buf)
	b0.Ld(c, p, 0, buf)
	b0.St(p, 1, a, NoMem)
	b0.Ld(c, p, 1, NoMem)
	// Calls (with and without results) and the full branch set.
	b0.Call(c, g.ID(), a, b)
	b0.Call(NoReg, g.ID(), a, b)
	b0.Beq(a, b, b2.ID())
	b1.Bne(a, b, b2.ID())
	b2.BltI(a, 100, b3.ID())
	b3.Bge(a, b, b3.ID())
	bx := f.NewBlock()
	bx.Ble(a, b, bx.ID())
	by := f.NewBlock()
	by.BgtI(a, 5, by.ID())
	bz := f.NewBlock()
	bz.Jmp(bw(f, tab, a))
	p2 := pb.Build()
	if err := Verify(p2); err != nil {
		t.Fatalf("verify: %v", err)
	}
	text := p2.Dump()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if q.Dump() != text {
		t.Fatal("dump/parse/dump not a fixpoint over the full opcode set")
	}
	if err := Verify(q); err != nil {
		t.Fatalf("verify reparsed: %v", err)
	}
	// Every opcode except the CCR extensions must appear in the text
	// (reuse/inval are covered by the transformed-program round trips).
	for op := Opcode(0); op < numOpcodes; op++ {
		if op == Reuse || op == Inval {
			continue
		}
		found := false
		for _, f := range q.Funcs {
			for _, blk := range f.Blocks {
				for i := range blk.Instrs {
					if blk.Instrs[i].Op == op {
						found = true
					}
				}
			}
		}
		if !found {
			t.Errorf("opcode %s missing from the round-trip program", op)
		}
	}
}

// bw emits a terminal block ending in RetI and returns its ID, letting the
// final Jmp target a real block.
func bw(f *FuncBuilder, tab MemID, a Reg) BlockID {
	end := f.NewBlock()
	end.RetI(0)
	return end.ID()
}
