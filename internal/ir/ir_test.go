package ir

import (
	"strings"
	"testing"
)

func smallProg(t *testing.T) *Program {
	t.Helper()
	pb := NewProgramBuilder("small")
	tab := pb.ReadOnlyObject("tab", []int64{1, 2, 3, 4})
	buf := pb.Object("buf", 8, nil)
	f := pb.Func("main", 1)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	x, a := f.NewReg(), f.NewReg()
	b0.Lea(a, tab, 0)
	b0.AndI(x, f.Param(0), 3)
	b0.Add(a, a, x)
	b0.Ld(x, a, 0, tab)
	b0.Lea(a, buf, 0)
	b0.St(a, 0, x, buf)
	b0.BgtI(x, 2, b1.ID())
	b1.Ret(x)
	p := pb.Build()
	if err := Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return p
}

func TestLinkLayout(t *testing.T) {
	p := smallProg(t)
	if p.MemWords != 4+8 {
		t.Fatalf("MemWords = %d", p.MemWords)
	}
	if p.Objects[0].Base != 0 || p.Objects[1].Base != 4 {
		t.Fatalf("bases = %d, %d", p.Objects[0].Base, p.Objects[1].Base)
	}
	if p.TextLen != p.StaticInstrs() {
		t.Fatalf("TextLen %d != static instrs %d", p.TextLen, p.StaticInstrs())
	}
	mem := p.InitialMemory()
	if mem[2] != 3 || mem[4] != 0 {
		t.Fatalf("initial memory wrong: %v", mem)
	}
}

func TestInstrAddrMonotonic(t *testing.T) {
	p := smallProg(t)
	f := p.Funcs[0]
	var prev int64 = -4
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			a := f.InstrAddr(b.ID, i)
			if a != prev+4 {
				t.Fatalf("address gap at b%d[%d]: %d after %d", b.ID, i, a, prev)
			}
			prev = a
		}
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Program
		want  string
	}{
		{"bad branch target", func() *Program {
			pb := NewProgramBuilder("x")
			f := pb.Func("main", 0)
			b := f.NewBlock()
			b.Jmp(99)
			return pb.prog
		}, "branch target"},
		{"register out of range", func() *Program {
			pb := NewProgramBuilder("x")
			f := pb.Func("main", 0)
			b := f.NewBlock()
			b.Emit(Instr{Op: Add, Dest: 50, Src1: 51, Src2: 52})
			b.RetI(0)
			return pb.prog
		}, "out of range"},
		{"fallthrough off end", func() *Program {
			pb := NewProgramBuilder("x")
			f := pb.Func("main", 0)
			b := f.NewBlock()
			r := f.NewReg()
			b.MovI(r, 1)
			return pb.prog
		}, "falls off the end"},
		{"branch mid-block", func() *Program {
			pb := NewProgramBuilder("x")
			f := pb.Func("main", 0)
			b := f.NewBlock()
			r := f.NewReg()
			b.BeqI(r, 0, b.ID())
			b.MovI(r, 1)
			b.RetI(0)
			return pb.prog
		}, "before end of block"},
		{"store to read-only", func() *Program {
			pb := NewProgramBuilder("x")
			tab := pb.ReadOnlyObject("tab", []int64{1})
			f := pb.Func("main", 0)
			b := f.NewBlock()
			r := f.NewReg()
			b.Lea(r, tab, 0)
			b.St(r, 0, r, tab)
			b.RetI(0)
			return pb.prog
		}, "read-only"},
		{"call arity mismatch", func() *Program {
			pb := NewProgramBuilder("x")
			g := pb.Func("g", 2)
			gb := g.NewBlock()
			gb.RetI(0)
			f := pb.Func("main", 0)
			pb.SetMain(f.ID())
			b := f.NewBlock()
			r := f.NewReg()
			b.Call(r, g.ID(), r)
			b.Ret(r)
			return pb.prog
		}, "passes 1 args, wants 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.build()
			p.Link()
			err := Verify(p)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestVerifyRegionContract(t *testing.T) {
	// Build a transformed-looking program by hand with a region violation:
	// a store inside the region.
	pb := NewProgramBuilder("x")
	buf := pb.Object("buf", 4, nil)
	f := pb.Func("main", 0)
	inc := f.NewBlock()
	body := f.NewBlock()
	cont := f.NewBlock()
	r := f.NewReg()
	inc.Emit(Instr{Op: Reuse, Region: 0, Target: cont.ID()})
	body.Lea(r, buf, 0)
	body.St(r, 0, r, buf)
	body.Nop()
	cont.RetI(0)
	p := pb.prog
	p.Regions = []*Region{{
		ID: 0, Func: f.ID(), Inception: inc.ID(), Body: body.ID(), Continuation: cont.ID(),
	}}
	// Tag body instructions as region members, mark the last as end.
	for i := range p.Funcs[0].Blocks[1].Instrs {
		p.Funcs[0].Blocks[1].Instrs[i].Region = 0
	}
	p.Funcs[0].Blocks[1].Instrs[2].Attr |= AttrRegionEnd
	p.Link()
	err := Verify(p)
	if err == nil || !strings.Contains(err.Error(), "contains store") {
		t.Fatalf("expected region store violation, got %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := smallProg(t)
	q := p.Clone()
	q.Funcs[0].Blocks[0].Instrs[0].Imm = 999
	q.Objects[0].Init[0] = 777
	if p.Funcs[0].Blocks[0].Instrs[0].Imm == 999 {
		t.Fatal("instruction mutation leaked into original")
	}
	if p.Objects[0].Init[0] == 777 {
		t.Fatal("object init mutation leaked into original")
	}
	if p.Dump() == "" || q.Name != p.Name {
		t.Fatal("clone metadata")
	}
}

func TestUsesAndDef(t *testing.T) {
	cases := []struct {
		in   Instr
		uses []Reg
		def  Reg
	}{
		{Instr{Op: Add, Dest: 3, Src1: 1, Src2: 2}, []Reg{1, 2}, 3},
		{Instr{Op: Add, Dest: 3, Src1: 1, Src2: NoReg, Imm: 5}, []Reg{1}, 3},
		{Instr{Op: St, Src1: 1, Src2: 2}, []Reg{1, 2}, NoReg},
		{Instr{Op: Ld, Dest: 4, Src1: 1}, []Reg{1}, 4},
		{Instr{Op: Call, Dest: 5, Args: []Reg{1, 2, 3}}, []Reg{1, 2, 3}, 5},
		{Instr{Op: Ret, Src1: 2}, []Reg{2}, NoReg},
		{Instr{Op: Ret, Src1: NoReg, Imm: 1}, nil, NoReg},
		{Instr{Op: Jmp, Target: 0}, nil, NoReg},
		{Instr{Op: Beq, Src1: 1, Src2: 2}, []Reg{1, 2}, NoReg},
		{Instr{Op: Reuse}, nil, NoReg},
		{Instr{Op: MovI, Dest: 2, Imm: 7}, nil, 2},
		{Instr{Op: Lea, Dest: 2, Src1: 1, Mem: 0}, []Reg{1}, 2},
	}
	for _, tc := range cases {
		got := tc.in.Uses(nil)
		if len(got) != len(tc.uses) {
			t.Fatalf("%s: uses = %v, want %v", tc.in.Op, got, tc.uses)
		}
		for i := range got {
			if got[i] != tc.uses[i] {
				t.Fatalf("%s: uses = %v, want %v", tc.in.Op, got, tc.uses)
			}
		}
		if d := tc.in.Def(); d != tc.def {
			t.Fatalf("%s: def = %v, want %v", tc.in.Op, d, tc.def)
		}
	}
}

func TestOpcodeMetadata(t *testing.T) {
	if !Beq.IsCondBranch() || !Reuse.IsCondBranch() || Jmp.IsCondBranch() {
		t.Fatal("cond-branch classification")
	}
	if Mul.FU() != FUFloat || Ld.FU() != FUMem || Add.FU() != FUInt || Call.FU() != FUBranch {
		t.Fatal("FU classification")
	}
	if Ld.Latency() != 2 || Add.Latency() != 1 || Div.Latency() != 8 {
		t.Fatal("latency table")
	}
	if !Slt.IsCompare() || Add.IsCompare() {
		t.Fatal("compare classification")
	}
	for op := Opcode(0); op < numOpcodes; op++ {
		if op.String() == "op?" {
			t.Fatalf("opcode %d missing name", op)
		}
	}
}

func TestRegionGroupNames(t *testing.T) {
	r := &Region{Class: Stateless, Inputs: []Reg{1, 2, 3}}
	if g := r.Group(); g != "SL_3" {
		t.Fatalf("group = %s", g)
	}
	r = &Region{Class: MemoryDependent, Inputs: []Reg{1, 2}, MemObjects: []MemID{0, 1}}
	if g := r.Group(); g != "MD_2_2" {
		t.Fatalf("group = %s", g)
	}
}

func TestDumpContainsStructure(t *testing.T) {
	p := smallProg(t)
	d := p.Dump()
	for _, want := range []string{"program small", "object obj0 tab[4] readonly", "func main", "ld ", "st "} {
		if !strings.Contains(d, want) {
			t.Fatalf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestInstrAt(t *testing.T) {
	p := smallProg(t)
	in := p.InstrAt(InstrRef{Func: 0, Block: 0, Index: 3})
	if in == nil || in.Op != Ld {
		t.Fatalf("InstrAt = %v", in)
	}
	if p.InstrAt(InstrRef{Func: 0, Block: 9, Index: 0}) != nil {
		t.Fatal("out-of-range block should be nil")
	}
	if p.InstrAt(InstrRef{Func: 5, Block: 0, Index: 0}) != nil {
		t.Fatal("out-of-range func should be nil")
	}
}
