package ir

import "testing"

// buildAddChain assembles main(n) with a three-Add chain whose middle
// instruction is a branch target:
//
//	b0: add0 (r1 = n+n)
//	b1: add1 (r2 = r1+r1)   <- Bgt back-edge target
//	    add2 (r3 = r2+r2)
//	b2: Bgt n, r3 -> b1
//	b3: Ret r3
//
// The (add0, add1) pair is fusable by opcode but add1 is a run-entry PC,
// so only (add1, add2) may fuse.
func buildAddChain(t *testing.T) (*Program, *DecodedFunc) {
	t.Helper()
	pb := NewProgramBuilder("fuse")
	f := pb.Func("main", 1)
	n := f.Param(0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	r1, r2, r3 := f.NewReg(), f.NewReg(), f.NewReg()
	b0.Add(r1, n, n)
	b1.Add(r2, r1, r1)
	b1.Add(r3, r2, r2)
	b2.Bgt(n, r3, b1.ID())
	b3.Ret(r3)
	p := pb.Build()
	if err := Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return p, p.Decoded().Funcs[f.ID()]
}

// TestFuseRespectsEntryPCs pins both sides of the entry rule: a fusable
// pair whose second slot is a branch target stays unfused, while the next
// pair (fully inside the run) is rewritten, second slot encoding intact.
func TestFuseRespectsEntryPCs(t *testing.T) {
	_, df := buildAddChain(t)
	if df.XCode == nil {
		t.Fatal("chain function has no XCode")
	}
	// Flat layout: 0 add0, 1 add1, 2 add2, 3 bgt, 4 ret, 5 sentinel.
	if !df.EntryPC[0] || !df.EntryPC[1] || df.EntryPC[2] {
		t.Fatalf("EntryPC = %v, want entries at 0 (func) and 1 (target) only in the chain", df.EntryPC)
	}
	if got := df.XCode[0].XOp; got != XAddRR {
		t.Errorf("pc 0: XOp = %d, want unfused XAddRR %d (pair would cover entry pc 1)", got, XAddRR)
	}
	if got := df.XCode[1].XOp; got != XFAddAdd {
		t.Errorf("pc 1: XOp = %d, want fused XFAddAdd %d", got, XFAddAdd)
	}
	if got := df.XCode[2].XOp; got != XAddRR {
		t.Errorf("pc 2 (second slot of pair): XOp = %d, want original XAddRR %d", got, XAddRR)
	}
}

// TestFuseInvariants checks the global pairing rules on every decoded
// function of a program: a fused slot's successor is never an entry PC,
// lies inside the same run, and keeps an unfused encoding (disjoint
// pairs).
func TestFuseInvariants(t *testing.T) {
	p, _ := buildCFG(t)
	for _, df := range p.Decoded().Funcs {
		if df.XCode == nil {
			continue
		}
		for pc := range df.XCode {
			if df.XCode[pc].XOp < XFFirst {
				continue
			}
			if pc+1 >= len(df.XCode) {
				t.Fatalf("fused op at last slot %d", pc)
			}
			if df.EntryPC[pc+1] {
				t.Errorf("pc %d: fused pair covers entry PC %d", pc, pc+1)
			}
			if df.RunEnd[pc] < int32(pc)+1 {
				t.Errorf("pc %d: pair crosses run end %d", pc, df.RunEnd[pc])
			}
			if df.XCode[pc+1].XOp >= XFFirst {
				t.Errorf("pc %d and %d both fused (pairs must be disjoint)", pc, pc+1)
			}
		}
	}
}

// TestRunKeysStableAcrossRelink pins digest determinism (same content =>
// same keys, the property spec binding relies on) and sensitivity (any
// instruction edit changes the keys of every run covering it).
func TestRunKeysStableAcrossRelink(t *testing.T) {
	p, df := buildAddChain(t)
	before := append([]uint64(nil), df.RunKeys...)
	p.Link()
	df2 := p.Decoded().Funcs[df.Fn.ID]
	for pc, k := range df2.RunKeys {
		if before[pc] != k {
			t.Fatalf("RunKeys[%d] changed across no-op relink: %#x -> %#x", pc, before[pc], k)
		}
	}

	// Edit the add at flat pc 2 (change its dest): every run containing
	// pc 2 must change keys; runs after it must not.
	f := p.Func(df.Fn.ID)
	var edited bool
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if len(b.Instrs) == 2 && i == 1 {
				b.Instrs[i].Src2 = NoReg // r2+r2 becomes r2+0: RI shape
				edited = true
			}
		}
	}
	if !edited {
		t.Fatal("chain body instruction not found")
	}
	p.Link()
	df3 := p.Decoded().Funcs[df.Fn.ID]
	for pc := 0; pc <= 2; pc++ { // runs headed at 0..2 all cover pc 2
		if df3.RunKeys[pc] == before[pc] {
			t.Errorf("RunKeys[%d] unchanged after editing a covered instruction", pc)
		}
	}
	ret := len(df3.Code) - 2 // the Ret run does not cover pc 2
	if df3.RunKeys[ret] != before[ret] {
		t.Errorf("RunKeys[%d] (Ret run) changed by an edit outside the run", ret)
	}
}

// TestRunDeltas cross-checks the precomputed per-run histograms against a
// direct scan of the flat code, including the sentinel-inclusion rule for
// runs that fall off the end.
func TestRunDeltas(t *testing.T) {
	p, _ := buildCFG(t)
	for _, df := range p.Decoded().Funcs {
		for pc := range df.Code {
			end := int(df.RunEnd[pc])
			var want [64]int64
			var wantBr int32
			for j := pc; j <= end; j++ {
				op := df.Code[j].Op
				want[op]++
				switch op {
				case Beq, Bne, Blt, Bge, Ble, Bgt:
					wantBr++
				}
			}
			var got [64]int64
			var total int64
			for _, oc := range df.RunOps[pc] {
				got[oc.Op] += int64(oc.N)
				total += int64(oc.N)
			}
			if got != want {
				t.Fatalf("RunOps[%d] = %v, want per-op counts %v", pc, got, want)
			}
			if total != int64(end-pc)+1 {
				t.Fatalf("RunOps[%d] covers %d slots, want %d", pc, total, end-pc+1)
			}
			if df.RunBr[pc] != wantBr {
				t.Fatalf("RunBr[%d] = %d, want %d", pc, df.RunBr[pc], wantBr)
			}
		}
	}
}
