package ir

import (
	"strings"
	"testing"
)

func TestParseRoundTripSmall(t *testing.T) {
	p := smallProg(t)
	text := p.Dump()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Verify(q); err != nil {
		t.Fatalf("verify parsed: %v", err)
	}
	if got := q.Dump(); got != text {
		t.Fatalf("round trip mismatch:\n--- original\n%s\n--- reparsed\n%s", text, got)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{
		"program x\nfunc main (f0) params=0 regs=1\nb0:\n\tfrobnicate r1\n",
		"program x\nfunc main (f0) params=0 regs=1\n\tadd r1, r1, r1\n", // instr before block
		"program x\nobject obj5 tab[4] @0\n",                            // out-of-order object
		"program x\nfunc main (f0) params=0 regs=1\nb3:\n",              // out-of-order block
	}
	for _, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Fatalf("expected parse error for %q", text)
		}
	}
}

func TestParseTransformedProgramText(t *testing.T) {
	// A hand-written transformed program exercising the CCR syntax:
	// reuse, inval, attributes and region annotations.
	text := `program demo
object obj0 tab[4] @0
	data 10 20 30 40
region 0 MD acyclic MD_1_1 f0 inception=b1 body=b2 cont=b3 in=[2] out=[3] mem=[0] size=3
main f0
func main (f0) params=1 regs=5
b0:
	and r2, r1, #3
b1:
	reuse region0, hit=b3
b2:
	lea r4, obj0+r2+0  @region0
	ld r3, [r4+0] {obj0}  !liveout,det  @region0
	add r3, r3, #1  !liveout,rend  @region0
b3:
	ret r3
`
	p, err := Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Round trip preserves everything.
	if got := p.Dump(); got != text {
		t.Fatalf("round trip mismatch:\n--- in\n%s\n--- out\n%s", text, got)
	}
	// Semantic spot checks.
	rg := p.Region(0)
	if rg == nil || rg.Class != MemoryDependent || rg.MemObjects[0] != 0 {
		t.Fatalf("region: %+v", rg)
	}
	ld := p.InstrAt(InstrRef{Func: 0, Block: 2, Index: 1})
	if ld.Op != Ld || !ld.Attr.Has(AttrLiveOut) || !ld.Attr.Has(AttrDeterminable) || ld.Region != 0 {
		t.Fatalf("load: %s", ld.String())
	}
}

func TestParsePreservesCallsAndBranches(t *testing.T) {
	text := `program calls
main f1
func helper (f0) params=2 regs=3
b0:
	add r3, r1, r2
	ret r3
func main (f1) params=1 regs=4
b0:
	movi r2, #7
	call r3, f0(r1, r2)
	beq r3, #0, b2
b1:
	add r3, r3, #1
b2:
	ret r3
`
	p, err := Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if p.Main != 1 {
		t.Fatalf("main = f%d", p.Main)
	}
	call := p.InstrAt(InstrRef{Func: 1, Block: 0, Index: 1})
	if call.Op != Call || call.Callee != 0 || len(call.Args) != 2 || call.Dest != 3 {
		t.Fatalf("call: %s", call.String())
	}
	if got := p.Dump(); got != text {
		t.Fatalf("round trip:\n%s\nvs\n%s", text, got)
	}
}

func TestSplitArgs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"r1, r2, #5", []string{"r1", "r2", "#5"}},
		{"r3, [r4+0] {obj1}", []string{"r3", "[r4+0]", "{obj1}"}},
		{"r5, f2(r1, r3)", []string{"r5", "f2(r1, r3)"}},
		{"", nil},
	}
	for _, tc := range cases {
		got := splitArgs(tc.in)
		if len(got) != len(tc.want) {
			t.Fatalf("splitArgs(%q) = %v, want %v", tc.in, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("splitArgs(%q) = %v, want %v", tc.in, got, tc.want)
			}
		}
	}
}

func TestParseErrorsIncludeLine(t *testing.T) {
	_, err := Parse("program x\nfunc main (f0) params=0 regs=1\nb0:\n\tbogus r1\n")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error should name the line: %v", err)
	}
}
