package ir

import "testing"

// FuzzParse feeds arbitrary text to the IR parser: it must never panic,
// and anything it accepts must re-serialize to a fixpoint after one
// normalization round trip.
func FuzzParse(f *testing.F) {
	f.Add("program x\nfunc main (f0) params=0 regs=1\nb0:\n\tret #0\n")
	f.Add(`program demo
object obj0 tab[4] @0
	data 10 20 30 40
main f0
func main (f0) params=1 regs=5
b0:
	and r2, r1, #3
	lea r4, obj0+r2+0
	ld r3, [r4+0] {obj0}
	ret r3
`)
	f.Add("region 0 MD cyclic MD_1_1 f0 inception=b1 body=b2 cont=b3 in=[2] out=[3] mem=[0] size=3")
	f.Add("\tadd r1, r2, r3  !liveout  @region0")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(text)
		if err != nil {
			return
		}
		// Accepted input: one Dump/Parse cycle must reach a fixpoint.
		d1 := p.Dump()
		q, err := Parse(d1)
		if err != nil {
			t.Fatalf("re-parse of own dump failed: %v\n%s", err, d1)
		}
		if d2 := q.Dump(); d2 != d1 {
			t.Fatalf("dump not a fixpoint:\n%s\nvs\n%s", d1, d2)
		}
	})
}
