package ir

// Clone returns a deep copy of the program. The CCR transformation clones
// the base program before rewriting so the baseline and transformed
// versions can be simulated side by side.
func (p *Program) Clone() *Program {
	q := &Program{
		Name:     p.Name,
		Main:     p.Main,
		MemWords: p.MemWords,
		TextLen:  p.TextLen,
	}
	q.Funcs = make([]*Func, len(p.Funcs))
	for i, f := range p.Funcs {
		q.Funcs[i] = f.Clone()
	}
	q.Objects = make([]*MemObject, len(p.Objects))
	for i, o := range p.Objects {
		co := *o
		co.Init = append([]int64(nil), o.Init...)
		q.Objects[i] = &co
	}
	q.Regions = make([]*Region, len(p.Regions))
	for i, r := range p.Regions {
		q.Regions[i] = r.Clone()
	}
	return q
}

// Clone returns a deep copy of the function.
func (f *Func) Clone() *Func {
	g := &Func{
		ID:        f.ID,
		Name:      f.Name,
		NumRegs:   f.NumRegs,
		NumParams: f.NumParams,
		textBase:  f.textBase,
	}
	g.Blocks = make([]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &Block{ID: b.ID, Instrs: make([]Instr, len(b.Instrs))}
		copy(nb.Instrs, b.Instrs)
		for j := range nb.Instrs {
			if nb.Instrs[j].Args != nil {
				nb.Instrs[j].Args = append([]Reg(nil), nb.Instrs[j].Args...)
			}
		}
		g.Blocks[i] = nb
	}
	return g
}

// Clone returns a deep copy of the region descriptor.
func (r *Region) Clone() *Region {
	cr := *r
	cr.Inputs = append([]Reg(nil), r.Inputs...)
	cr.Outputs = append([]Reg(nil), r.Outputs...)
	cr.MemObjects = append([]MemID(nil), r.MemObjects...)
	return &cr
}
