package ir

import "testing"

// buildCFG assembles a function exercising the predecode edge shapes:
//
//	b0: entry, fallthrough-only (no terminator)
//	b1: empty
//	b2: empty
//	b3: self-loop body ending in a conditional back-edge to itself
//	b4: exit
//
// Branch targets that cross the empty blocks must resolve to the next real
// instruction, the self-loop target to the loop head itself.
func buildCFG(t *testing.T) (*Program, *Func) {
	t.Helper()
	pb := NewProgramBuilder("edges")
	f := pb.Func("main", 1)
	n := f.Param(0)
	b0 := f.NewBlock()
	b1 := f.NewBlock() // empty
	b2 := f.NewBlock() // empty
	b3 := f.NewBlock()
	b4 := f.NewBlock()
	i, s := f.NewReg(), f.NewReg()
	b0.MovI(i, 0)
	b0.MovI(s, 0)
	// b0 has no terminator: falls through b1 and b2 (both empty) into b3.
	b3.Add(s, s, i)
	b3.AddI(i, i, 1)
	b3.Blt(i, n, b3.ID()) // self-loop
	b4.Ret(s)
	_ = b1
	_ = b2
	p := pb.Build()
	if err := Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return p, p.Func(f.ID())
}

// TestPredecodeEmptyAndFallthrough pins the flat layout across empty and
// fallthrough-only blocks: empty blocks contribute no code and their
// BlockPC aliases the next real instruction, so the interpreter's iterative
// fall-through normalization disappears into pc+1.
func TestPredecodeEmptyAndFallthrough(t *testing.T) {
	p, f := buildCFG(t)
	df := p.Decoded().Funcs[f.ID]

	if got, want := len(df.Code), f.NumInstrs()+1; got != want {
		t.Fatalf("len(Code) = %d, want %d (instrs + sentinel)", got, want)
	}
	if df.Code[len(df.Code)-1].Op != OpSentinel {
		t.Fatalf("last slot is %v, want OpSentinel", df.Code[len(df.Code)-1].Op)
	}
	// Empty blocks b1, b2 alias b3's first instruction.
	if df.BlockPC[1] != df.BlockPC[3] || df.BlockPC[2] != df.BlockPC[3] {
		t.Fatalf("empty BlockPC not aliased: %v", df.BlockPC)
	}
	// The one-past-the-last-block slot is the sentinel PC.
	if got, want := df.BlockPC[len(f.Blocks)], int32(len(df.Code)-1); got != want {
		t.Fatalf("BlockPC[end] = %d, want sentinel %d", got, want)
	}
	// The self-loop branch targets the loop head's own first instruction.
	var br *PInstr
	for i := range df.Code {
		if df.Code[i].Op == Blt {
			br = &df.Code[i]
		}
	}
	if br == nil || br.Target != df.BlockPC[3] {
		t.Fatalf("self-loop target = %+v, want BlockPC[3]=%d", br, df.BlockPC[3])
	}
}

// TestPredecodeAddrRoundTrip checks the affine address law the engine's
// events rely on: for every (block, index) position, the flat PC round-trips
// through PCFor/Meta and Addr(pc) equals the interpreter's InstrAddr — so
// pcOf (instruction address) and pcAfter (address of the next slot,
// Addr(pc+1)) agree between the two forms at every position, including the
// one-past-the-end-of-a-block fall-through slots.
func TestPredecodeAddrRoundTrip(t *testing.T) {
	p, f := buildCFG(t)
	df := p.Decoded().Funcs[f.ID]
	for _, b := range f.Blocks {
		for idx := range b.Instrs {
			pc := df.PCFor(b.ID, idx)
			if mt := df.Meta[pc]; mt.Block != b.ID || int(mt.Index) != idx {
				t.Fatalf("PCFor(%d,%d)=%d round-trips to (%d,%d)", b.ID, idx, pc, mt.Block, mt.Index)
			}
			if got, want := df.Addr(pc), f.InstrAddr(b.ID, idx); got != want {
				t.Errorf("Addr(PCFor(%d,%d)) = %d, want InstrAddr %d", b.ID, idx, got, want)
			}
			// pcAfter semantics: the next slot's address is +4 in both forms.
			if got, want := df.Addr(pc+1), f.InstrAddr(b.ID, idx)+4; got != want {
				t.Errorf("Addr(pc+1) = %d, want %d", got, want)
			}
		}
	}
}

// TestPredecodeRunEnd pins the run-interval invariant the batch engine's
// per-run accounting is built on: RunEnd[pc] is the first control transfer
// (or the sentinel) at or after pc, with no control transfer strictly
// inside [pc, RunEnd[pc]).
func TestPredecodeRunEnd(t *testing.T) {
	p, f := buildCFG(t)
	df := p.Decoded().Funcs[f.ID]
	isEnd := func(op Opcode) bool {
		switch op {
		case Jmp, Beq, Bne, Blt, Bge, Ble, Bgt, Call, Ret, Reuse, OpSentinel:
			return true
		}
		return false
	}
	for pc := range df.Code {
		re := df.RunEnd[pc]
		if re < int32(pc) || int(re) >= len(df.Code) {
			t.Fatalf("RunEnd[%d] = %d out of range", pc, re)
		}
		if !isEnd(df.Code[re].Op) {
			t.Fatalf("RunEnd[%d] = %d is %v, not a run ender", pc, re, df.Code[re].Op)
		}
		for q := pc; int32(q) < re; q++ {
			if isEnd(df.Code[q].Op) {
				t.Fatalf("control op %v inside run [%d,%d)", df.Code[q].Op, pc, re)
			}
		}
	}
}

// TestPredecodeRegionTargets covers reuse-region decoding, including a
// function-level region whose continuation is the reuse instruction's own
// block (the xform/funclevel shape: Reuse falls through to a Call and the
// taken edge skips it).
func TestPredecodeRegionTargets(t *testing.T) {
	pb := NewProgramBuilder("regions")
	callee := pb.Func("leaf", 1)
	cb := callee.NewBlock()
	cb.Ret(callee.Param(0))

	f := pb.Func("main", 1)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	r := f.NewReg()
	b0.Emit(Instr{Op: Reuse, Region: 0, Target: b1.ID(), Mem: NoMem})
	b0.Call(r, callee.ID(), f.Param(0))
	b1.Ret(r)
	pb.SetMain(f.ID())
	p := pb.Build()

	df := p.Decoded().Funcs[f.ID()]
	if df.Code[0].Op != Reuse || df.Code[0].Target != df.BlockPC[b1.ID()] {
		t.Fatalf("reuse target = %+v, want flat PC of b1 (%d)", df.Code[0], df.BlockPC[b1.ID()])
	}
	if RegionID(df.Code[0].Aux) != 0 {
		t.Fatalf("reuse region aux = %d, want 0", df.Code[0].Aux)
	}
	// The reuse ends its run (a transfer either way), the call the next.
	if df.RunEnd[0] != 0 || df.RunEnd[1] != 1 {
		t.Fatalf("RunEnd = %v, want reuse and call each ending their own run", df.RunEnd[:2])
	}
}

// TestPredecodeInvalidTargetFaults pins the sentinel contract: an
// out-of-range branch target decodes to the sentinel PC rather than a wild
// flat PC, so taking it raises the fell-off-the-end fault.
func TestPredecodeInvalidTargetFaults(t *testing.T) {
	pb := NewProgramBuilder("wild")
	f := pb.Func("main", 0)
	b := f.NewBlock()
	b.Emit(Instr{Op: Jmp, Target: 99, Mem: NoMem, Region: NoRegion})
	p := pb.Build()

	df := p.Decoded().Funcs[f.ID()]
	sentinel := int32(len(df.Code) - 1)
	if df.Code[0].Target != sentinel {
		t.Fatalf("invalid target resolved to %d, want sentinel %d", df.Code[0].Target, sentinel)
	}
}

// TestPredecodeBatchShapes checks both sides of the batch-decode gate: a
// function of ordinary shape gets an XCode parallel to Code with the
// operand-shape-specialized opcodes, while a degenerate instruction (an ALU
// op with a NoReg source, which only hand-built programs can contain)
// leaves the whole function careful-only.
func TestPredecodeBatchShapes(t *testing.T) {
	p, f := buildCFG(t)
	df := p.Decoded().Funcs[f.ID]
	if df.XCode == nil {
		t.Fatal("ordinary function has no XCode")
	}
	if len(df.XCode) != len(df.Code) {
		t.Fatalf("XCode length %d != Code length %d", len(df.XCode), len(df.Code))
	}
	wantOps := map[Opcode]uint8{MovI: XMovI, Blt: XBltRR, Ret: XRetR, OpSentinel: XEnd}
	for pc := range df.Code {
		if want, ok := wantOps[df.Code[pc].Op]; ok {
			if got := df.XCode[pc].XOp; got != want && got < XFFirst {
				t.Errorf("pc %d (%v): XOp = %d, want %d", pc, df.Code[pc].Op, got, want)
			}
		}
	}
	// The operand shape picks the RR vs RI specialization. The first slot
	// of a fused pair is rewritten to a superinstruction opcode (pinned
	// separately in fuse_test.go); every other slot keeps its shape.
	for pc := range df.Code {
		in := &df.Code[pc]
		if in.Op != Add {
			continue
		}
		want := XAddRR
		if in.Src2 == NoReg {
			want = XAddRI
		}
		if got := df.XCode[pc].XOp; got != want && got < XFFirst {
			t.Errorf("pc %d add (src2=%d): XOp = %d, want %d", pc, in.Src2, got, want)
		}
	}

	// Degenerate shape: Add with Src1 == NoReg is unbatchable.
	pb := NewProgramBuilder("degenerate")
	g := pb.Func("main", 0)
	b := g.NewBlock()
	r := g.NewReg()
	b.Emit(Instr{Op: Add, Dest: r, Src1: NoReg, Src2: NoReg, Imm: 7, Mem: NoMem, Region: NoRegion})
	b.RetI(0)
	p2 := pb.Build()
	if df2 := p2.Decoded().Funcs[g.ID()]; df2.XCode != nil {
		t.Fatal("degenerate function must be careful-only (XCode == nil)")
	}
}

// TestDecodedCacheInvalidation checks Decoded() is rebuilt after Link, so
// program transformation between runs can never execute stale flat code.
func TestDecodedCacheInvalidation(t *testing.T) {
	p, _ := buildCFG(t)
	d1 := p.Decoded()
	if p.Decoded() != d1 {
		t.Fatal("Decoded() not cached between calls")
	}
	p.Link()
	if p.Decoded() == d1 {
		t.Fatal("Decoded() cache survived Link")
	}
}
