package ir

// This file implements the predecoded ("flattened") program representation
// the execution engine runs on. At link time each function's basic blocks
// are lowered into one dense PInstr array in block order, with every
// operand the hot loop needs resolved up front:
//
//   - control-flow targets become flat PCs (empty blocks are resolved to
//     the next real instruction, so the interpreter's iterative
//     fall-through walk disappears),
//   - the byte address of every instruction is an affine function of its
//     flat PC (Base + 4*pc), eliminating the per-event InstrAddr/pcOf
//     block arithmetic,
//   - Lea base addresses and Ld/St hinted-object bounds are folded in, so
//     the hot loop never chases *MemObject pointers.
//
// Fall-through needs no representation at all: blocks are contiguous, so
// the successor of flat PC p is p+1, exactly mirroring the block-ordered
// fall-through semantics of the CFG form (empty blocks execute nothing on
// either representation). A PC of len(Code) is the "fell off the end of
// the function" sentinel.
//
// PInstr is deliberately packed to 48 bytes: the per-opcode identifier
// fields (callee, memory object, region) occupy one shared Aux slot, and
// the CFG coordinates plus the back-pointer to the original instruction
// live in a parallel PMeta array that only the cold paths (trace events,
// faults, memoization look-ahead) touch. Keeping the hot array small is
// what lets whole functions sit in L1 during emulation.
//
// The decoded form is a pure cache: it holds pointers back into the
// Program (PMeta.Src, DecodedFunc.Fn) and never owns semantic state, so
// consumers observing instructions through events see the live *Instr.

// OpSentinel is the opcode of the pseudo-instruction appended after each
// function's last real instruction. It exists only in the decoded form:
// falling through to it (or taking an unresolvable branch target, which
// decodes to its PC) raises the "fell off end of function" fault without a
// per-iteration end-of-code test in the hot loop. It is never counted in
// Stats.ByOp; 63 is far above numOpcodes but still inside the ByOp array.
const OpSentinel Opcode = 63

// RegFileCap is the minimum capacity of every register file the emulator
// allocates for functions with fewer registers. Sizing the backing array
// to a fixed power of two lets the batch engine view it as a *[RegFileCap]
// array and index it with uint8 register numbers, which provably cannot go
// out of bounds — the bounds checks vanish from the hot loop. Functions
// with NumRegs >= RegFileCap simply aren't batch-decodable (XCode == nil).
const RegFileCap = 256

// PInstr is one predecoded instruction: the fields the execution hot loop
// needs, and nothing else (see PMeta for the cold remainder).
type PInstr struct {
	Op   Opcode
	Attr Attr

	Dest Reg
	Src1 Reg
	Src2 Reg // NoReg selects Imm, as in Instr

	// Target is the flat PC a branch or reuse instruction transfers to:
	// the first real instruction at or after the target block, or
	// len(Code) when the target resolves past the end of the function.
	// It is -1 for non-branching opcodes.
	Target int32

	// Aux is the per-opcode identifier operand: the FuncID of a Call, the
	// MemID of a Ld/St/Lea/Inval (NoMem when unhinted), or the RegionID
	// of a Reuse. Zero otherwise.
	Aux int32

	Imm int64

	// ObjLo and ObjHi are precomputed object bounds: for Ld/St with a
	// static object hint they are the hinted object's [Base, Base+Size)
	// word range (ObjHi is -1 when unhinted); for Lea, ObjLo is the
	// object's base address.
	ObjLo, ObjHi int64
}

// PMeta is the cold per-instruction metadata, parallel to DecodedFunc.Code:
// the CFG coordinates and the original instruction, needed only for trace
// events, fault reporting, and memoization bookkeeping.
type PMeta struct {
	Block BlockID
	Index int32
	// Src is the original instruction this PInstr was decoded from.
	Src *Instr
}

// XInstr is the batch-mode form of one instruction: a 32-byte record whose
// opcode is specialized by operand shape (register-register vs immediate)
// so the batch loop's cases are straight-line loads and stores with no
// NoReg selects, and whose register numbers are uint8 so indexing the
// *[RegFileCap]int64 register file needs no bounds checks. Identifier
// operands that only cold paths need (the callee of a call, the region of
// a reuse, the object of an invalidate) are packed into ObjLo; Ld/St keep
// their hinted bounds in ObjLo/ObjHi and recover the object for fault
// messages through PMeta.
type XInstr struct {
	XOp  uint8
	Dest uint8
	Src1 uint8
	Src2 uint8

	// Target is the flat PC of a control transfer (same encoding as
	// PInstr.Target).
	Target int32

	// Imm is the immediate operand; for Lea it is pre-folded to
	// base+offset.
	Imm int64

	// ObjLo/ObjHi are the Ld/St hinted-object bounds (ObjHi < 0 when
	// unhinted); for Call, Reuse and Inval, ObjLo carries the callee,
	// region, or object identifier instead.
	ObjLo, ObjHi int64
}

// Batch opcodes. The R/I suffix gives the Src2 shape; ops requiring a real
// (non-NoReg) register operand are only emitted when the decode proves it,
// otherwise the whole function is left without an XCode and runs on the
// careful loop.
const (
	XBad uint8 = iota // unbatchable slot; never present in a built XCode
	XNop
	XMovR // Dest = Src1
	XMovI // Dest = Imm
	XLeaR // Dest = Imm + Src1 (Imm pre-folded with the object base)
	XLeaI // Dest = Imm
	XAddRR
	XAddRI
	XSubRR
	XSubRI
	XMulRR
	XMulRI
	XDivRR
	XDivRI
	XRemRR
	XRemRI
	XAndRR
	XAndRI
	XOrRR
	XOrRI
	XXorRR
	XXorRI
	XShlRR
	XShlRI
	XShrRR
	XShrRI
	XSraRR
	XSraRI
	XSltRR
	XSltRI
	XSleRR
	XSleRI
	XSeqRR
	XSeqRI
	XSneRR
	XSneRI
	XLd // Dest = mem[Src1+Imm], hint bounds in ObjLo/ObjHi
	XSt // mem[Src1+Imm] = Src2
	XJmp
	XBeqRR
	XBeqRI
	XBneRR
	XBneRI
	XBltRR
	XBltRI
	XBgeRR
	XBgeRI
	XBleRR
	XBleRI
	XBgtRR
	XBgtRI
	XCall // callee in ObjLo
	XRetR // return Src1
	XRetI // return Imm
	XReuse // region in ObjLo
	XInval // object in ObjLo
	XEnd   // the OpSentinel slot
)

// DecodedFunc is the flat form of one function.
type DecodedFunc struct {
	Fn   *Func
	Code []PInstr
	Meta []PMeta // parallel to Code

	// XCode is the batch-specialized form, parallel to Code (including the
	// sentinel slot). It is nil when any instruction has a shape the batch
	// loop doesn't specialize (degenerate NoReg operands, unknown opcodes)
	// or when the register file exceeds RegFileCap; such functions execute
	// on the careful loop only.
	XCode []XInstr

	// RunEnd[pc] is the flat PC of the control-transfer instruction (or
	// sentinel) that ends the straight-line run containing pc. Every
	// execution entering at pc runs exactly the instructions [pc,
	// RunEnd[pc]] before transferring control, which is what lets the
	// batch loop account instruction counts per run instead of per
	// instruction.
	RunEnd []int32

	// BlockPC[b] is the flat PC of block b's first instruction; for an
	// empty block it is the PC of the next real instruction in block
	// order. BlockPC[len(Fn.Blocks)] is the sentinel PC (== len(Code)-1).
	BlockPC []int32

	// Base is the byte address of flat PC 0; the instruction at flat PC p
	// has byte address Base + 4*p. This equality holds for every (block,
	// index) position because Link assigns text addresses contiguously in
	// block order — see TestPredecodeAddrRoundTrip.
	Base int64

	// EntryPC[pc] marks the flat PCs where a run can be entered: the
	// function entry, every control transfer's successor, and every
	// resolved branch/reuse target. Superinstruction fusion never pairs
	// across an entry (see superinstr.go), and region ranking treats
	// entries as the run heads.
	EntryPC []bool

	// RunKeys[pc] is a content digest (FNV-1a) of the unfused batch form
	// of the run [pc, RunEnd[pc]]; hot-region specializations bind to a
	// function by matching these digests. Nil when XCode is nil.
	RunKeys []uint64

	// RunOps[pc] and RunBr[pc] are the precomputed per-run statistics
	// deltas of the run [pc, RunEnd[pc]]: the opcode-count list and the
	// conditional-branch count. flushOpCounts folds one of these per run
	// entry instead of carry-sweeping the whole text.
	RunOps [][]OpCount
	RunBr  []int32
}

// PCFor returns the flat PC of the instruction at (b, idx). It is the
// inverse of the Meta coordinates of the PInstr it designates.
func (df *DecodedFunc) PCFor(b BlockID, idx int) int32 {
	return df.BlockPC[b] + int32(idx)
}

// Addr returns the byte address of the given flat PC (also valid for the
// one-past-the-end sentinel).
func (df *DecodedFunc) Addr(pc int32) int64 {
	return df.Base + 4*int64(pc)
}

// DecodedProgram is the predecoded view of a whole linked program.
type DecodedProgram struct {
	Prog  *Program
	Funcs []*DecodedFunc // indexed by FuncID
}

// Decoded returns the predecoded form of the program, building and
// caching it on first use. The cache is invalidated by Link, so the
// decoded form always reflects the current layout; concurrent callers may
// race to build it, in which case one result wins and the duplicates are
// discarded (decoding is deterministic, so every candidate is identical).
// Link must have run.
func (p *Program) Decoded() *DecodedProgram {
	if d := p.decoded.Load(); d != nil {
		return d
	}
	d := decodeProgram(p)
	if p.decoded.CompareAndSwap(nil, d) {
		return d
	}
	return p.decoded.Load()
}

func decodeProgram(p *Program) *DecodedProgram {
	d := &DecodedProgram{Prog: p, Funcs: make([]*DecodedFunc, len(p.Funcs))}
	for _, f := range p.Funcs {
		d.Funcs[f.ID] = decodeFunc(p, f)
	}
	return d
}

func decodeFunc(p *Program, f *Func) *DecodedFunc {
	n := f.NumInstrs()
	df := &DecodedFunc{
		Fn:      f,
		Code:    make([]PInstr, 0, n+1),
		Meta:    make([]PMeta, 0, n+1),
		BlockPC: make([]int32, len(f.Blocks)+1),
		Base:    int64(f.textBase) * 4,
	}
	pc := int32(0)
	for _, b := range f.Blocks {
		df.BlockPC[b.ID] = pc
		for i := range b.Instrs {
			in := &b.Instrs[i]
			pi := PInstr{
				Op:     in.Op,
				Attr:   in.Attr,
				Dest:   in.Dest,
				Src1:   in.Src1,
				Src2:   in.Src2,
				Imm:    in.Imm,
				Target: -1,
			}
			switch in.Op {
			case Call:
				pi.Aux = int32(in.Callee)
			case Reuse:
				pi.Aux = int32(in.Region)
			case Lea:
				pi.Aux = int32(in.Mem)
				pi.ObjLo = p.Objects[in.Mem].Base
			case Ld, St:
				pi.Aux = int32(in.Mem)
				if in.Mem != NoMem {
					o := p.Objects[in.Mem]
					pi.ObjLo, pi.ObjHi = o.Base, o.Base+o.Size
				} else {
					pi.ObjHi = -1 // no hinted-bounds check
				}
			case Inval:
				pi.Aux = int32(in.Mem)
			}
			df.Code = append(df.Code, pi)
			df.Meta = append(df.Meta, PMeta{Block: b.ID, Index: int32(i), Src: in})
			pc++
		}
	}
	df.BlockPC[len(f.Blocks)] = pc
	// The sentinel slot: falling through here (or branching to an
	// unresolvable target, below) is the "fell off end of function" fault.
	df.Code = append(df.Code, PInstr{Op: OpSentinel, Target: -1})
	df.Meta = append(df.Meta, PMeta{Block: BlockID(len(f.Blocks)), Index: 0})
	sentinel := int32(len(df.Code) - 1)
	// Second pass: resolve block targets to flat PCs (targets may be
	// forward references). An out-of-range target — which only an
	// unverified program can hold — resolves to the sentinel so taking it
	// faults instead of corrupting the PC.
	for i := range df.Code {
		pi := &df.Code[i]
		switch pi.Op {
		case Jmp, Beq, Bne, Blt, Bge, Ble, Bgt, Reuse:
			t := df.Meta[i].Src.Target
			if t >= 0 && int(t) < len(f.Blocks) {
				pi.Target = df.BlockPC[t]
			} else {
				pi.Target = sentinel
			}
		}
	}
	// RunEnd: walk backwards so each slot inherits the next control
	// transfer (the sentinel ends the final run).
	df.RunEnd = make([]int32, len(df.Code))
	df.RunEnd[sentinel] = sentinel
	for i := int(sentinel) - 1; i >= 0; i-- {
		switch df.Code[i].Op {
		case Jmp, Beq, Bne, Blt, Bge, Ble, Bgt, Call, Ret, Reuse:
			df.RunEnd[i] = int32(i)
		default:
			df.RunEnd[i] = df.RunEnd[i+1]
		}
	}
	df.EntryPC = entryPCs(df)
	df.RunOps, df.RunBr = runDeltas(df)
	df.XCode = batchDecode(df)
	if df.XCode != nil {
		// Digest the architectural (unfused) batch form, then fuse pairs
		// in place; keys must not depend on which pairs were picked.
		df.RunKeys = runKeys(df, df.XCode)
		fuseXCode(df.XCode, df.EntryPC)
	}
	return df
}

// batchDecode builds the operand-shape-specialized batch form, or returns
// nil if any instruction can't be specialized (the careful loop then runs
// the whole function).
func batchDecode(df *DecodedFunc) []XInstr {
	if df.Fn.NumRegs+1 > RegFileCap {
		return nil
	}
	maxReg := Reg(df.Fn.NumRegs)
	reg := func(r Reg) (uint8, bool) {
		return uint8(r), r >= 0 && r <= maxReg
	}
	xcode := make([]XInstr, len(df.Code))
	for i := range df.Code {
		in := &df.Code[i]
		xi := &xcode[i]
		xi.Target = in.Target
		xi.Imm = in.Imm
		d, dok := reg(in.Dest)
		s1, s1ok := reg(in.Src1)
		s2, s2ok := reg(in.Src2)
		if !dok || !s1ok || !s2ok {
			return nil
		}
		xi.Dest, xi.Src1, xi.Src2 = d, s1, s2
		r1 := in.Src1 != NoReg // real register operands
		r2 := in.Src2 != NoReg
		// alu picks the RR or RI variant of a binary ALU op; rr must be
		// rr+1 == ri, as laid out in the constant block.
		alu := func(rr uint8) bool {
			if !r1 {
				return false
			}
			xi.XOp = rr
			if !r2 {
				xi.XOp = rr + 1
			}
			return true
		}
		ok := true
		switch in.Op {
		case Nop:
			xi.XOp = XNop
		case Mov:
			if r1 {
				xi.XOp = XMovR
			} else {
				xi.XOp, xi.Imm = XMovI, 0
			}
		case MovI:
			xi.XOp = XMovI
		case Lea:
			xi.Imm = in.ObjLo + in.Imm
			if r1 {
				xi.XOp = XLeaR
			} else {
				xi.XOp = XLeaI
			}
		case Add:
			ok = alu(XAddRR)
		case Sub:
			ok = alu(XSubRR)
		case Mul:
			ok = alu(XMulRR)
		case Div:
			ok = alu(XDivRR)
		case Rem:
			ok = alu(XRemRR)
		case And:
			ok = alu(XAndRR)
		case Or:
			ok = alu(XOrRR)
		case Xor:
			ok = alu(XXorRR)
		case Shl:
			ok = alu(XShlRR)
		case Shr:
			ok = alu(XShrRR)
		case Sra:
			ok = alu(XSraRR)
		case Slt:
			ok = alu(XSltRR)
		case Sle:
			ok = alu(XSleRR)
		case Seq:
			ok = alu(XSeqRR)
		case Sne:
			ok = alu(XSneRR)
		case Ld:
			ok = r1
			xi.XOp = XLd
			xi.ObjLo, xi.ObjHi = in.ObjLo, in.ObjHi
		case St:
			ok = r1 && r2
			xi.XOp = XSt
			xi.ObjLo, xi.ObjHi = in.ObjLo, in.ObjHi
		case Jmp:
			xi.XOp = XJmp
		case Beq:
			ok = alu(XBeqRR)
		case Bne:
			ok = alu(XBneRR)
		case Blt:
			ok = alu(XBltRR)
		case Bge:
			ok = alu(XBgeRR)
		case Ble:
			ok = alu(XBleRR)
		case Bgt:
			ok = alu(XBgtRR)
		case Call:
			xi.XOp = XCall
			xi.ObjLo = int64(in.Aux)
		case Ret:
			if r1 {
				xi.XOp = XRetR
			} else {
				xi.XOp = XRetI
			}
		case Reuse:
			xi.XOp = XReuse
			xi.ObjLo = int64(in.Aux)
		case Inval:
			xi.XOp = XInval
			xi.ObjLo = int64(in.Aux)
		case OpSentinel:
			xi.XOp = XEnd
		default:
			ok = false
		}
		if !ok {
			return nil
		}
	}
	return xcode
}
