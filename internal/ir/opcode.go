package ir

// Opcode enumerates the IR instruction set. The operand shapes are:
//
//	arithmetic/logical  Dest = Src1 op (Src2 | Imm)
//	Mov                 Dest = Src1
//	MovI                Dest = Imm
//	Lea                 Dest = base(Mem) + (Src1|0) + Imm
//	Ld                  Dest = M[Src1 + Imm]        (Mem = alias hint)
//	St                  M[Src1 + Imm] = Src2        (Mem = alias hint)
//	Jmp                 goto Target
//	Beq..Bgt            if Src1 cmp (Src2|Imm) goto Target, else fall through
//	Call                Dest = Callee(Args...)
//	Ret                 return (Src1|Imm)
//	Reuse               CCR reuse: on hit goto Target, else fall through
//	Inval               CCR invalidate: discard instances depending on Mem
//	Nop                 no effect
type Opcode uint8

const (
	Nop Opcode = iota

	// Data movement.
	Mov  // Dest = Src1
	MovI // Dest = Imm
	Lea  // Dest = base(Mem) + Src1? + Imm

	// Integer arithmetic. Executes on the integer ALUs except Mul, Div
	// and Rem, which issue to the two multi-cycle (FP/multiplier) units,
	// matching the PA-7100's FPU-resident multiplier.
	Add
	Sub
	Mul
	Div // quotient; division by zero yields 0 (emulator-defined)
	Rem // remainder; modulo zero yields 0

	// Bitwise and shifts. Shift counts are taken modulo 64.
	And
	Or
	Xor
	Shl
	Shr // logical right shift
	Sra // arithmetic right shift

	// Comparisons producing 0 or 1.
	Slt // Dest = Src1 <  rhs
	Sle // Dest = Src1 <= rhs
	Seq // Dest = Src1 == rhs
	Sne // Dest = Src1 != rhs

	// Memory.
	Ld
	St

	// Control flow.
	Jmp
	Beq
	Bne
	Blt
	Bge
	Ble
	Bgt
	Call
	Ret

	// CCR instruction-set extensions (paper §3.2).
	Reuse
	Inval

	numOpcodes
)

// FUClass is the functional-unit class an opcode issues to in the 6-issue
// machine model: 4 integer ALUs, 2 memory ports, 2 multi-cycle (FP) units,
// 1 branch unit.
type FUClass uint8

const (
	FUInt FUClass = iota
	FUMem
	FUFloat
	FUBranch
	FUNone // Nop consumes an issue slot but no unit
)

type opInfo struct {
	name     string
	fu       FUClass
	hasDest  bool
	isBranch bool // may redirect control flow
	isCond   bool // conditional branch (falls through when untaken)
	latency  int  // result latency in cycles (base machine)
}

var opTable = [numOpcodes]opInfo{
	Nop:   {"nop", FUNone, false, false, false, 1},
	Mov:   {"mov", FUInt, true, false, false, 1},
	MovI:  {"movi", FUInt, true, false, false, 1},
	Lea:   {"lea", FUInt, true, false, false, 1},
	Add:   {"add", FUInt, true, false, false, 1},
	Sub:   {"sub", FUInt, true, false, false, 1},
	Mul:   {"mul", FUFloat, true, false, false, 3},
	Div:   {"div", FUFloat, true, false, false, 8},
	Rem:   {"rem", FUFloat, true, false, false, 8},
	And:   {"and", FUInt, true, false, false, 1},
	Or:    {"or", FUInt, true, false, false, 1},
	Xor:   {"xor", FUInt, true, false, false, 1},
	Shl:   {"shl", FUInt, true, false, false, 1},
	Shr:   {"shr", FUInt, true, false, false, 1},
	Sra:   {"sra", FUInt, true, false, false, 1},
	Slt:   {"slt", FUInt, true, false, false, 1},
	Sle:   {"sle", FUInt, true, false, false, 1},
	Seq:   {"seq", FUInt, true, false, false, 1},
	Sne:   {"sne", FUInt, true, false, false, 1},
	Ld:    {"ld", FUMem, true, false, false, 2},
	St:    {"st", FUMem, false, false, false, 1},
	Jmp:   {"jmp", FUBranch, false, true, false, 1},
	Beq:   {"beq", FUBranch, false, true, true, 1},
	Bne:   {"bne", FUBranch, false, true, true, 1},
	Blt:   {"blt", FUBranch, false, true, true, 1},
	Bge:   {"bge", FUBranch, false, true, true, 1},
	Ble:   {"ble", FUBranch, false, true, true, 1},
	Bgt:   {"bgt", FUBranch, false, true, true, 1},
	Call:  {"call", FUBranch, true, true, false, 1},
	Ret:   {"ret", FUBranch, false, true, false, 1},
	Reuse: {"reuse", FUBranch, false, true, true, 1},
	Inval: {"inval", FUMem, false, false, false, 1},
}

// String returns the mnemonic of the opcode.
func (op Opcode) String() string {
	if op >= numOpcodes {
		return "op?"
	}
	return opTable[op].name
}

// FU returns the functional-unit class the opcode issues to.
func (op Opcode) FU() FUClass { return opTable[op].fu }

// HasDest reports whether the opcode writes a destination register.
func (op Opcode) HasDest() bool { return opTable[op].hasDest }

// IsBranch reports whether the opcode may redirect control flow.
func (op Opcode) IsBranch() bool { return opTable[op].isBranch }

// IsCondBranch reports whether the opcode is a conditional branch that
// falls through when untaken (the reuse instruction behaves as one: taken
// on a reuse hit, fall-through into the region body on a miss).
func (op Opcode) IsCondBranch() bool { return opTable[op].isCond }

// Latency returns the base result latency of the opcode in cycles
// (integer ops 1 cycle, loads 2 cycles, per the HP PA-7100 model of §5.1).
func (op Opcode) Latency() int { return opTable[op].latency }

// IsCompare reports whether the opcode is a comparison producing 0/1.
func (op Opcode) IsCompare() bool { return op >= Slt && op <= Sne }

// IsBinaryALU reports whether the opcode is a two-operand ALU operation
// (arithmetic, bitwise, shift or comparison).
func (op Opcode) IsBinaryALU() bool { return op >= Add && op <= Sne }

// OpClass buckets opcodes for workload characterization (the decanting
// analysis groups eliminated instructions by these classes). Coarser than
// FUClass: it separates the cheap ALU ops from the multi-cycle ones and
// data movement from real computation, which is the distinction that
// matters when asking *what kind* of work a reuse scheme eliminates.
type OpClass uint8

const (
	ClassMove    OpClass = iota // Mov, MovI, Lea, Nop
	ClassALU                    // Add, Sub, bitwise, shifts
	ClassMulDiv                 // Mul, Div, Rem (multi-cycle units)
	ClassCompare                // Slt..Sne
	ClassLoad                   // Ld
	ClassStore                  // St
	ClassBranch                 // Jmp, Beq..Bgt
	ClassCall                   // Call, Ret
	ClassCCR                    // Reuse, Inval (scheme overhead)
	NumOpClasses
)

// String returns the class label used in figure rows.
func (c OpClass) String() string {
	switch c {
	case ClassMove:
		return "move"
	case ClassALU:
		return "alu"
	case ClassMulDiv:
		return "muldiv"
	case ClassCompare:
		return "compare"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassCall:
		return "call"
	case ClassCCR:
		return "ccr"
	}
	return "class?"
}

// Class returns the opcode's characterization bucket.
func (op Opcode) Class() OpClass {
	switch {
	case op == Nop || op == Mov || op == MovI || op == Lea:
		return ClassMove
	case op == Mul || op == Div || op == Rem:
		return ClassMulDiv
	case op.IsCompare():
		return ClassCompare
	case op.IsBinaryALU():
		return ClassALU
	case op == Ld:
		return ClassLoad
	case op == St:
		return ClassStore
	case op == Call || op == Ret:
		return ClassCall
	case op == Reuse || op == Inval:
		return ClassCCR
	case op.IsBranch():
		return ClassBranch
	}
	return ClassMove
}

// Uses returns the source registers the instruction reads, appending them
// to dst and returning the extended slice. NoReg operands are skipped.
func (in *Instr) Uses(dst []Reg) []Reg {
	switch in.Op {
	case Nop, MovI, Jmp, Reuse, Inval:
	case Lea:
		if in.Src1 != NoReg {
			dst = append(dst, in.Src1)
		}
	case Mov:
		dst = append(dst, in.Src1)
	case Ld:
		dst = append(dst, in.Src1)
	case St:
		dst = append(dst, in.Src1, in.Src2)
	case Call:
		dst = append(dst, in.Args...)
	case Ret:
		if in.Src1 != NoReg {
			dst = append(dst, in.Src1)
		}
	default: // binary ALU ops and conditional branches
		dst = append(dst, in.Src1)
		if in.Src2 != NoReg {
			dst = append(dst, in.Src2)
		}
	}
	return dst
}

// Def returns the register the instruction defines, or NoReg.
func (in *Instr) Def() Reg {
	if in.Op.HasDest() {
		return in.Dest
	}
	return NoReg
}
