// Package ir defines the low-level intermediate representation used by the
// CCR (Compiler-directed Computation Reuse) framework.
//
// The IR is a RISC-flavoured register-transfer language in the spirit of the
// IMPACT compiler's Lcode: functions are explicit control-flow graphs of
// basic blocks, instructions operate on function-local virtual registers,
// and memory is a flat word-addressed array carved into named objects.
// The CCR instruction-set extensions from the paper (the reuse and
// invalidate instructions, and the live-out / region-end / region-exit
// instruction attributes) are first-class parts of the instruction set.
package ir

import (
	"fmt"
	"sync/atomic"
)

// Reg names a virtual register within a function. Register 0 (NoReg) is the
// "absent operand" marker; valid registers are 1..NumRegs.
type Reg int32

// NoReg marks an absent register operand. A binary instruction whose Src2 is
// NoReg takes its second operand from the Imm field instead.
const NoReg Reg = 0

// BlockID indexes a basic block within a function's Blocks slice.
type BlockID int32

// NoBlock marks an absent branch target.
const NoBlock BlockID = -1

// FuncID indexes a function within a program's Funcs slice.
type FuncID int32

// NoFunc marks an absent callee.
const NoFunc FuncID = -1

// MemID indexes a named memory object within a program's Objects slice.
type MemID int32

// NoMem marks a load or store whose underlying object is statically unknown
// (an anonymous access). Anonymous accesses are never determinable and so
// can never be part of a reusable computation region.
const NoMem MemID = -1

// RegionID indexes a reusable computation region within a program's Regions
// slice.
type RegionID int32

// NoRegion marks instructions that belong to no reuse region.
const NoRegion RegionID = -1

// Attr is a bit set of the CCR instruction attributes the compiler uses to
// communicate region structure to the hardware (paper §3.2).
type Attr uint8

const (
	// AttrLiveOut marks an instruction whose destination register is
	// live-out of the enclosing reuse region: during memoization mode the
	// hardware records the result in the output bank of the instance.
	AttrLiveOut Attr = 1 << iota
	// AttrRegionEnd marks a region finish point: executing this
	// instruction in memoization mode commits the computation instance.
	AttrRegionEnd
	// AttrRegionExit marks a side exit: leaving the region through this
	// instruction aborts memoization mode without recording.
	AttrRegionExit
	// AttrDeterminable marks a load whose complete set of potential store
	// sites is known at compile time (alias analysis annotation, §4.1).
	AttrDeterminable
)

// Has reports whether all attribute bits of q are set in a.
func (a Attr) Has(q Attr) bool { return a&q == q }

// Instr is a single IR instruction. The operand fields used depend on the
// opcode; see the Opcode documentation for each shape. The zero value is a
// Nop.
type Instr struct {
	Op   Opcode
	Dest Reg // destination register (NoReg if none)
	Src1 Reg // first source operand
	Src2 Reg // second source operand; NoReg selects the Imm field
	Imm  int64

	Target BlockID // branch target (branches and Reuse)
	Callee FuncID  // callee (Call)
	Args   []Reg   // argument registers (Call)

	Mem    MemID    // static object hint for Ld/St/Lea/Inval; NoMem if unknown
	Attr   Attr     // CCR instruction attributes
	Region RegionID // enclosing reuse region (NoRegion outside regions)
}

// Block is a basic block: a straight-line instruction sequence. Control
// falls through to the next block in function order unless the final
// instruction is an unconditional transfer (Jmp, Ret) or a taken branch.
type Block struct {
	ID     BlockID
	Instrs []Instr
}

// Terminator returns the last instruction of the block, or nil if the block
// is empty.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// Func is a single function: an ordered list of basic blocks forming a CFG.
// Execution enters at Blocks[0]. Virtual registers 1..NumRegs are local to
// an activation; registers 1..NumParams receive the call arguments.
type Func struct {
	ID        FuncID
	Name      string
	NumRegs   int // highest register index in use
	NumParams int // arguments arrive in registers 1..NumParams
	Blocks    []*Block

	// textBase is the global index of the function's first instruction,
	// assigned by Program.Link; instruction addresses feed the I-cache
	// model.
	textBase int
}

// Block returns the block with the given ID, or nil if out of range.
func (f *Func) Block(id BlockID) *Block {
	if id < 0 || int(id) >= len(f.Blocks) {
		return nil
	}
	return f.Blocks[id]
}

// NumInstrs returns the static instruction count of the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// InstrAddr returns the byte address of the instruction at position pos
// within block b, for instruction-cache modelling. Link must have run.
func (f *Func) InstrAddr(b BlockID, pos int) int64 {
	idx := f.textBase
	for _, blk := range f.Blocks[:b] {
		idx += len(blk.Instrs)
	}
	return int64(idx+pos) * 4
}

// MemObject is a named, statically allocated memory object. Objects are the
// granularity of the paper's memory-dependence reasoning: loads are
// "determinable" when their object is known, and invalidate instructions
// name the object whose dependent computation instances must be discarded.
type MemObject struct {
	ID       MemID
	Name     string
	Size     int64   // size in 64-bit words
	ReadOnly bool    // object is never stored to after initialization
	Init     []int64 // initial contents (zero-filled to Size)

	// Base is the object's word address in the linked flat memory,
	// assigned by Program.Link.
	Base int64
}

// RegionClass distinguishes the two deterministic-computation classes of the
// paper (§4.1).
type RegionClass uint8

const (
	// Stateless regions compute purely from register inputs.
	Stateless RegionClass = iota
	// MemoryDependent regions also read named memory objects whose store
	// sites are completely known at compile time.
	MemoryDependent
)

func (c RegionClass) String() string {
	if c == Stateless {
		return "SL"
	}
	return "MD"
}

// RegionKind distinguishes acyclic path regions, cyclic (loop) regions,
// and function-level regions (the §6 extension: an entire call — calling
// convention included — is the reusable computation).
type RegionKind uint8

const (
	Acyclic RegionKind = iota
	Cyclic
	FuncLevel
)

func (k RegionKind) String() string {
	switch k {
	case Acyclic:
		return "acyclic"
	case Cyclic:
		return "cyclic"
	default:
		return "funclevel"
	}
}

// Region describes one reusable computation region after transformation.
// It is the compiler-to-hardware contract: the reuse instruction at the
// inception block indexes the CRB with ID, the input and output register
// lists bound here size the computation-instance banks, and MemObjects
// lists every named object the region's loads may read (the invalidation
// set).
type Region struct {
	ID    RegionID
	Func  FuncID
	Class RegionClass
	Kind  RegionKind

	Inception    BlockID // block holding the reuse instruction
	Body         BlockID // first block of the computation code
	Continuation BlockID // where control resumes after reuse or finish

	Inputs     []Reg   // live-in registers (≤ 8)
	Outputs    []Reg   // live-out registers (≤ 8)
	MemObjects []MemID // distinguishable objects read by the region (≤ 4)

	// Callee is the memoized function of a FuncLevel region (NoFunc
	// otherwise); Inputs are then the call's argument registers in the
	// calling function and Outputs the call's destination register.
	Callee FuncID

	// StaticSize is the number of static instructions inside the region
	// body, used for the computation-group reporting of Figure 9.
	StaticSize int
}

// Group returns the computation-group label used by the paper's Figure 9,
// e.g. "SL_4" for a stateless region with up to 4 register inputs or
// "MD_3_1" for a memory-dependent region with 3 register inputs and one
// distinguishable memory object.
func (r *Region) Group() string {
	if r.Class == Stateless {
		return fmt.Sprintf("SL_%d", len(r.Inputs))
	}
	return fmt.Sprintf("MD_%d_%d", len(r.Inputs), len(r.MemObjects))
}

// Program is a linked unit: functions, named memory objects, and (after the
// CCR transformation) the region table.
type Program struct {
	Name    string
	Funcs   []*Func
	Main    FuncID
	Objects []*MemObject
	Regions []*Region

	// MemWords is the total words of linked memory, valid after Link.
	MemWords int64
	// TextLen is the total static instruction count, valid after Link.
	TextLen int

	// decoded caches the predecoded execution form (see predecode.go);
	// Link invalidates it so it always matches the current layout.
	decoded atomic.Pointer[DecodedProgram]
}

// Func returns the function with the given ID, or nil.
func (p *Program) Func(id FuncID) *Func {
	if id < 0 || int(id) >= len(p.Funcs) {
		return nil
	}
	return p.Funcs[id]
}

// FuncByName returns the first function with the given name, or nil.
func (p *Program) FuncByName(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Object returns the memory object with the given ID, or nil.
func (p *Program) Object(id MemID) *MemObject {
	if id < 0 || int(id) >= len(p.Objects) {
		return nil
	}
	return p.Objects[id]
}

// ObjectByName returns the first object with the given name, or nil.
func (p *Program) ObjectByName(name string) *MemObject {
	for _, o := range p.Objects {
		if o.Name == name {
			return o
		}
	}
	return nil
}

// Region returns the region with the given ID, or nil.
func (p *Program) Region(id RegionID) *Region {
	if id < 0 || int(id) >= len(p.Regions) {
		return nil
	}
	return p.Regions[id]
}

// Link assigns object base addresses and function text addresses. It must
// be called after construction and after any transformation that changes
// code layout, and before emulation or simulation.
func (p *Program) Link() {
	p.decoded.Store(nil)
	var base int64
	for _, o := range p.Objects {
		o.Base = base
		base += o.Size
	}
	p.MemWords = base
	text := 0
	for _, f := range p.Funcs {
		f.textBase = text
		text += f.NumInstrs()
	}
	p.TextLen = text
}

// InitialMemory builds the linked flat memory image: every object's Init
// words copied to its base, remainder zero. Link must have run.
func (p *Program) InitialMemory() []int64 {
	mem := make([]int64, p.MemWords)
	for _, o := range p.Objects {
		copy(mem[o.Base:o.Base+o.Size], o.Init)
	}
	return mem
}

// StaticInstrs returns the total static instruction count of the program.
func (p *Program) StaticInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// InstrRef identifies one static instruction by position. It is the shared
// key type of the profiling, alias and region-formation passes.
type InstrRef struct {
	Func  FuncID
	Block BlockID
	Index int
}

// InstrAt resolves a reference, or returns nil when out of range.
func (p *Program) InstrAt(ref InstrRef) *Instr {
	f := p.Func(ref.Func)
	if f == nil {
		return nil
	}
	b := f.Block(ref.Block)
	if b == nil || ref.Index < 0 || ref.Index >= len(b.Instrs) {
		return nil
	}
	return &b.Instrs[ref.Index]
}
