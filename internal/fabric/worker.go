package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"ccr/internal/experiments"
	"ccr/internal/obsv"
	"ccr/internal/store"
	"ccr/internal/workloads"
)

// The worker re-exec contract: the coordinator spawns its own executable
// with EnvWorker set, and main (or TestMain) calls MaybeWorker before
// doing anything else. The worker then speaks the JSONL cell protocol on
// stdin/stdout until stdin closes.
const (
	EnvWorker   = "CCR_FABRIC_WORKER"
	EnvScale    = "CCR_FABRIC_SCALE"
	EnvStore    = "CCR_FABRIC_STORE"
	EnvRevision = "CCR_FABRIC_REVISION"
	// EnvSpans, when non-empty, is the span-log directory the worker
	// records its per-cell compute/store-hit spans into (worker-<pid>).
	EnvSpans = "CCR_FABRIC_SPANS"
)

// workerResult is one response line on the worker's stdout: the cell it
// answers, its output or error, and the worker process's cumulative store
// counters (so the coordinator can aggregate hit rates across shards
// without sharing memory).
type workerResult struct {
	Cell  string       `json:"cell"`
	Out   *CellOut     `json:"out,omitempty"`
	Err   string       `json:"err,omitempty"`
	Store *store.Stats `json:"store,omitempty"`
}

// MaybeWorker turns the current process into a fabric worker when the
// re-exec environment says so; otherwise it returns immediately. Call it
// first thing in main — a worker never reaches the caller's own flow.
func MaybeWorker() {
	if os.Getenv(EnvWorker) == "" {
		return
	}
	if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fabric worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// WorkerMain runs the worker side of the cell protocol: read one CellSpec
// JSON line, compute it on a local suite (store-backed when EnvStore is
// set), answer with one workerResult line, repeat until EOF. A cell error
// is an answer, not a crash — only protocol-level failures (undecodable
// input, unwritable output) end the worker.
func WorkerMain(r io.Reader, w io.Writer) error {
	scaleName := os.Getenv(EnvScale)
	if scaleName == "" {
		scaleName = "tiny"
	}
	scale, err := workloads.ParseScale(scaleName)
	if err != nil {
		return err
	}
	cfg := experiments.DefaultConfig()
	cfg.Scale = scale
	if dir := os.Getenv(EnvStore); dir != "" {
		rev := os.Getenv(EnvRevision)
		if rev == "" {
			rev = store.DefaultRevision()
		}
		st, err := store.Open(store.Options{Dir: dir, Revision: rev})
		if err != nil {
			return err
		}
		cfg.Store = st
	}
	suite := experiments.NewSuite(cfg)

	var spans *obsv.SpanLog
	if dir := os.Getenv(EnvSpans); dir != "" {
		if spans, err = obsv.OpenSpanLog(dir, fmt.Sprintf("worker-%d", os.Getpid())); err != nil {
			return err
		}
		defer spans.Close()
	}

	dec := json.NewDecoder(r)
	enc := json.NewEncoder(w)
	for {
		var spec CellSpec
		if err := dec.Decode(&spec); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("fabric worker: decode spec: %w", err)
		}
		spanStart := spans.Now()
		var before store.Stats
		if st := suite.Store(); spans != nil && st != nil {
			before = st.Stats()
		}
		res := workerResult{Cell: spec.ID()}
		if out, err := computeCell(suite, spec); err != nil {
			res.Err = strings.ReplaceAll(err.Error(), "\n", " ")
		} else {
			res.Out = &out
		}
		phase := "compute"
		if st := suite.Store(); spans != nil && st != nil {
			after := st.Stats()
			if after.Hits > before.Hits && after.Puts == before.Puts {
				phase = "store-hit"
			}
		}
		if res.Err == "" {
			spans.EmitPhase(spec.ID(), phase, "worker", -1, spanStart, "")
		} else {
			spans.EmitPhase(spec.ID(), "attempt", "worker", -1, spanStart, res.Err)
		}
		if suite.Store() != nil {
			st := suite.Store().Stats()
			res.Store = &st
		}
		if err := enc.Encode(res); err != nil {
			return fmt.Errorf("fabric worker: encode result: %w", err)
		}
	}
}
