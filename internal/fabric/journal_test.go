package fabric

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testRecord(cell string, speedup float64) Record {
	return Record{
		Cell: cell,
		Out: CellOut{
			Speedup:  speedup,
			Verified: true,
		},
		Slot:    "w0",
		Seconds: 0.25,
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		testRecord("compress/train/default", 1.5),
		testRecord("compress/ref/default", 1.25),
		testRecord("lex/train/128E,8CI", 2.0),
	}
	for _, r := range recs {
		if _, err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	done, torn, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Error("clean journal reported torn")
	}
	if len(done) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(done), len(recs))
	}
	for _, r := range recs {
		got, ok := done[r.Cell]
		if !ok {
			t.Fatalf("cell %s missing after reload", r.Cell)
		}
		if got != r {
			t.Errorf("cell %s diverged: %+v vs %+v", r.Cell, got, r)
		}
	}
}

func TestLoadJournalAbsentIsEmpty(t *testing.T) {
	done, torn, err := LoadJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || torn || len(done) != 0 {
		t.Fatalf("absent journal: done=%v torn=%v err=%v", done, torn, err)
	}
}

// TestJournalTornTail: a mid-append kill leaves an unterminated final
// line; load discards it, and RecoverJournal truncates it so resumed
// appends cannot fuse into the garbage.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(testRecord("a/train/default", 1.5)); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(testRecord("b/train/default", 1.75)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the kill: half of a third record, no newline.
	torn := append(append([]byte{}, full...), []byte(`{"cell":"c/train/def`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	done, wasTorn, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !wasTorn {
		t.Error("torn tail not reported")
	}
	if len(done) != 2 {
		t.Fatalf("loaded %d records from torn journal, want 2", len(done))
	}

	// Recovery truncates, and a post-recovery append lands cleanly.
	j2, done2, wasTorn2, err := RecoverJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !wasTorn2 || len(done2) != 2 {
		t.Fatalf("recover: torn=%v done=%d", wasTorn2, len(done2))
	}
	if _, err := j2.Append(testRecord("c/train/default", 2.0)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	done3, torn3, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn3 || len(done3) != 3 {
		t.Fatalf("after recovery+append: torn=%v done=%d, want clean 3", torn3, len(done3))
	}
}

// TestJournalCorruptInteriorErrors: garbage on a newline-terminated line
// is not a torn tail — it means the file is not a journal, and trusting
// any of it would be wrong.
func TestJournalCorruptInteriorErrors(t *testing.T) {
	for name, content := range map[string]string{
		"garbage line":    `{"cell":"a","out":{}}` + "\n" + "not json\n" + `{"cell":"b","out":{}}` + "\n",
		"terminated junk": "\x00\x01\x02\n",
		"missing cell":    `{"out":{}}` + "\n",
		"fused records":   `{"cell":"a","out":{}}{"cell":"b","out":{}}` + "\n",
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "journal.jsonl")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := LoadJournal(path); err == nil {
				t.Errorf("corrupt journal loaded without error")
			} else if !strings.Contains(err.Error(), "journal") {
				t.Errorf("error does not identify the journal: %v", err)
			}
		})
	}
}

// TestJournalDuplicateFirstWins: records are deterministic, so a
// duplicated cell (two runs racing one journal) resolves to the first
// record rather than erroring a resumable sweep.
func TestJournalDuplicateFirstWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	first := testRecord("a/train/default", 1.5)
	second := testRecord("a/train/default", 1.5)
	second.Slot = "w1"
	if _, err := j.Append(first); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(second); err != nil {
		t.Fatal(err)
	}
	j.Close()
	done, _, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || done["a/train/default"].Slot != "w0" {
		t.Fatalf("duplicate resolution wrong: %+v", done)
	}
}
