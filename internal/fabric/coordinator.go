package fabric

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ccr/internal/experiments"
	"ccr/internal/obsv"
	"ccr/internal/oracle"
	"ccr/internal/serve"
	"ccr/internal/store"
	"ccr/internal/workloads"
)

// Config drives one fabric run.
type Config struct {
	// Dir is the run's state directory: journal.jsonl (the resume log),
	// digests.json and manifest.json land here.
	Dir string
	// ScaleName selects the workload scale by CLI name (default "tiny").
	ScaleName string
	// Benches restricts the plan to these benchmarks (empty = all).
	Benches []string
	// Workers is the local worker-subprocess count. With zero workers and
	// no remotes the coordinator computes every cell inline, serially —
	// the reference mode every sharded run must byte-match.
	Workers int
	// Remotes lists ccrd daemon addresses to shard onto alongside (or
	// instead of) local workers.
	Remotes []string
	// StoreDir roots the shared content-addressed artifact store; empty
	// disables store layering (cells still journal, partial pipeline work
	// is not reused).
	StoreDir string
	// Revision is the store revision (default store.DefaultRevision()).
	Revision string
	// Lease bounds one cell's time on one slot; an expired lease kills
	// the worker (or abandons the remote call) and requeues the cell
	// (default 2m).
	Lease time.Duration
	// MaxRestarts bounds per-slot worker respawns before the slot gives
	// up (default 3). Backoff is the respawn delay base, doubled per
	// consecutive restart (default 100ms).
	MaxRestarts int
	Backoff     time.Duration
	// Exe is the worker executable (default: this executable, re-exec'd
	// with the EnvWorker contract).
	Exe string
	// SpanDir, when set, records per-process span logs under it — the
	// coordinator writes coord-<pid>.jsonl, spawned workers get the dir via
	// EnvSpans and write worker-<pid>.jsonl — for `ccrviz timeline`. Empty
	// disables span recording entirely (the SpanLog stays nil).
	SpanDir string
	// Log receives supervision events (default slog.Default()).
	Log *slog.Logger

	// HookAfterCell, when set, runs after every journaled cell with the
	// number of cells completed so far by this process — the chaos seam
	// kill-tolerance tests use to die at a deterministic point.
	HookAfterCell func(done int)
	// HookOnSpawn, when set, observes every spawned local worker (test
	// seam for process-fault injection).
	HookOnSpawn func(slot, pid int)
}

// SlotRecord is one slot's share of a run.
type SlotRecord struct {
	Slot     string `json:"slot"`
	Cells    int    `json:"cells"`
	Restarts int    `json:"restarts,omitempty"`
	GaveUp   bool   `json:"gave_up,omitempty"`
}

// Manifest is the fabric run's structured record: plan size, how much was
// resumed vs computed, every supervision event class, and the aggregated
// artifact-store counters with the resume-effectiveness hit rate.
type Manifest struct {
	Scale         string       `json:"scale"`
	Revision      string       `json:"revision"`
	Start         time.Time    `json:"start"`
	WallSeconds   float64      `json:"wall_seconds"`
	Cells         int          `json:"cells"`
	Resumed       int          `json:"resumed"`
	Computed      int          `json:"computed"`
	TornTail      bool         `json:"torn_tail,omitempty"`
	Requeues      int          `json:"requeues,omitempty"`
	Restarts      int          `json:"restarts,omitempty"`
	LeaseExpiries int          `json:"lease_expiries,omitempty"`
	Failed        []string     `json:"failed,omitempty"`
	Slots         []SlotRecord `json:"slots,omitempty"`
	Store         *store.Stats `json:"store,omitempty"`
	// StoreHitRate is hits/(hits+misses) across every shard — the resume
	// acceptance metric (a rerun over a warm store approaches 1).
	StoreHitRate float64 `json:"store_hit_rate,omitempty"`
}

// DigestRow is one digests.json entry, in plan order.
type DigestRow struct {
	Cell string  `json:"cell"`
	Out  CellOut `json:"out"`
}

// Result is what Run hands back (and persists under Dir).
type Result struct {
	Manifest Manifest
	Digests  []DigestRow
}

// sched is the cell dispatcher: a work queue with outstanding-lease
// accounting. Slots pull with next(), then either complete, fail or
// requeue; next() blocks while cells are outstanding because a requeue
// may put them back.
type sched struct {
	mu          sync.Mutex
	cond        *sync.Cond
	queue       []int
	outstanding int
	failed      map[int]string
	aborted     bool
}

func newSched(queue []int) *sched {
	s := &sched{queue: queue, failed: map[int]string{}}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *sched) next() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && s.outstanding > 0 && !s.aborted {
		s.cond.Wait()
	}
	if s.aborted || len(s.queue) == 0 {
		return 0, false
	}
	i := s.queue[0]
	s.queue = s.queue[1:]
	s.outstanding++
	return i, true
}

func (s *sched) complete() {
	s.mu.Lock()
	s.outstanding--
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *sched) fail(i int, msg string) {
	s.mu.Lock()
	s.failed[i] = msg
	s.outstanding--
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *sched) requeue(i int) {
	s.mu.Lock()
	s.outstanding--
	s.queue = append(s.queue, i)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// abandon fails every cell still queued (no live slots remain to run
// them) and wakes all waiters.
func (s *sched) abandon() {
	s.mu.Lock()
	for _, i := range s.queue {
		s.failed[i] = "abandoned: no live slots"
	}
	s.queue = nil
	s.aborted = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

type coordinator struct {
	cfg     Config
	plan    []CellSpec
	sched   *sched
	journal *Journal
	log     *slog.Logger
	spans   *obsv.SpanLog // nil without Config.SpanDir; all emits nil-safe

	mu       sync.Mutex
	done     map[string]Record
	man      Manifest
	liveSlot int
	retried  map[int]bool // cells that have been requeued at least once
}

// Run executes (or resumes) one fabric sweep. Cells already present in
// Dir's journal are skipped; the rest are sharded across the configured
// slots. It returns the run's result after writing digests.json and
// manifest.json, with a non-nil error when any cell permanently failed.
func Run(cfg Config) (*Result, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fabric: Config.Dir is required")
	}
	if cfg.ScaleName == "" {
		cfg.ScaleName = "tiny"
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 2 * time.Minute
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.Revision == "" {
		cfg.Revision = store.DefaultRevision()
	}
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	scale, err := workloads.ParseScale(cfg.ScaleName)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: state dir: %w", err)
	}

	// The plan only needs the benchmark list and sweep matrix, not any
	// computed artifact, so building it from a bare suite is cheap.
	planCfg := experiments.DefaultConfig()
	planCfg.Scale = scale
	plan := Plan(experiments.NewSuite(planCfg))
	if len(cfg.Benches) > 0 {
		want := map[string]bool{}
		for _, b := range cfg.Benches {
			want[b] = true
		}
		var sub []CellSpec
		for _, spec := range plan {
			if want[spec.Bench] {
				sub = append(sub, spec)
			}
		}
		if len(sub) == 0 {
			return nil, fmt.Errorf("fabric: bench filter %v matches no plan cells", cfg.Benches)
		}
		plan = sub
	}

	journal, prior, torn, err := RecoverJournal(filepath.Join(cfg.Dir, "journal.jsonl"))
	if err != nil {
		return nil, err
	}
	defer journal.Close()
	if torn {
		cfg.Log.Warn("fabric: discarded torn journal tail")
	}

	c := &coordinator{
		cfg:     cfg,
		plan:    plan,
		journal: journal,
		log:     cfg.Log,
		done:    map[string]Record{},
		retried: map[int]bool{},
		man: Manifest{
			Scale: cfg.ScaleName, Revision: cfg.Revision,
			Start: time.Now(), Cells: len(plan), TornTail: torn,
		},
	}
	if cfg.SpanDir != "" {
		sl, err := obsv.OpenSpanLog(cfg.SpanDir, fmt.Sprintf("coord-%d", os.Getpid()))
		if err != nil {
			return nil, err
		}
		defer sl.Close()
		c.spans = sl
	}
	var pending []int
	for i, spec := range plan {
		if rec, ok := prior[spec.ID()]; ok {
			c.done[spec.ID()] = rec
			c.man.Resumed++
		} else {
			pending = append(pending, i)
		}
	}
	c.sched = newSched(pending)

	if err := c.runSlots(scale); err != nil {
		return nil, err
	}

	c.man.WallSeconds = time.Since(c.man.Start).Seconds()
	if st := c.man.Store; st != nil && st.Hits+st.Misses > 0 {
		c.man.StoreHitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	for i, msg := range c.sched.failed {
		c.man.Failed = append(c.man.Failed, plan[i].ID()+": "+msg)
	}
	sort.Strings(c.man.Failed)
	sort.Slice(c.man.Slots, func(i, j int) bool { return c.man.Slots[i].Slot < c.man.Slots[j].Slot })

	res := &Result{Manifest: c.man}
	for _, spec := range plan {
		if rec, ok := c.done[spec.ID()]; ok {
			res.Digests = append(res.Digests, DigestRow{Cell: spec.ID(), Out: rec.Out})
		}
	}
	if err := writeJSON(filepath.Join(cfg.Dir, "digests.json"), res.Digests); err != nil {
		return nil, err
	}
	if err := writeJSON(filepath.Join(cfg.Dir, "manifest.json"), &res.Manifest); err != nil {
		return nil, err
	}
	if n := len(c.man.Failed); n > 0 {
		return res, fmt.Errorf("fabric: %d/%d cells failed (first: %s)", n, len(plan), c.man.Failed[0])
	}
	return res, nil
}

// runSlots starts every configured slot and waits for the sweep to drain.
// Inline mode (no workers, no remotes) runs on the calling goroutine.
func (c *coordinator) runSlots(scale workloads.Scale) error {
	if c.cfg.Workers == 0 && len(c.cfg.Remotes) == 0 {
		return c.runInline(scale)
	}
	c.liveSlot = c.cfg.Workers + len(c.cfg.Remotes)
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c.finishSlot(c.runLocalSlot(w))
		}(w)
	}
	for _, addr := range c.cfg.Remotes {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			c.finishSlot(c.runRemoteSlot(addr))
		}(addr)
	}
	wg.Wait()
	return nil
}

// finishSlot records a slot's accounting and abandons the queue when the
// last live slot gave up with work remaining.
func (c *coordinator) finishSlot(rec SlotRecord) {
	c.mu.Lock()
	c.man.Slots = append(c.man.Slots, rec)
	c.man.Restarts += rec.Restarts
	c.liveSlot--
	last := c.liveSlot == 0
	c.mu.Unlock()
	if last {
		c.sched.abandon()
	}
}

// recordDone journals one computed cell and updates the run accounting.
// The commit span it emits is the one span kind that carries the cell's
// journal sequence number — the anchor the timeline merge validates
// exactly-once coverage against.
func (c *coordinator) recordDone(i int, out CellOut, slot string, secs float64) error {
	commitStart := c.spans.Now()
	rec := Record{Cell: c.plan[i].ID(), Out: out, Slot: slot, Seconds: secs}
	seq, err := c.journal.Append(rec)
	if err != nil {
		return err
	}
	c.spans.EmitPhase(rec.Cell, "commit", slot, seq, commitStart, "")
	c.mu.Lock()
	c.done[rec.Cell] = rec
	c.man.Computed++
	n := c.man.Computed
	c.mu.Unlock()
	c.sched.complete()
	if c.cfg.HookAfterCell != nil {
		c.cfg.HookAfterCell(n)
	}
	return nil
}

func (c *coordinator) noteRequeue(i int, slot, cause string) {
	c.mu.Lock()
	c.man.Requeues++
	if cause == "lease expired" {
		c.man.LeaseExpiries++
	}
	c.retried[i] = true
	c.mu.Unlock()
	now := c.spans.Now()
	c.spans.EmitPhase(c.plan[i].ID(), "requeue", slot, -1, now, cause)
	c.log.Warn("fabric: cell requeued", "cell", c.plan[i].ID(), "slot", slot, "cause", cause)
	c.sched.requeue(i)
}

// leasePhase names a slot-side cell span: "retry" after any requeue of
// the cell, "lease" on the first attempt.
func (c *coordinator) leasePhase(i int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.retried[i] {
		return "retry"
	}
	return "lease"
}

func (c *coordinator) addStoreStats(st *store.Stats) {
	if st == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.man.Store == nil {
		c.man.Store = &store.Stats{}
	}
	c.man.Store.Puts += st.Puts
	c.man.Store.Hits += st.Hits
	c.man.Store.Misses += st.Misses
	c.man.Store.Stale += st.Stale
	c.man.Store.Corrupt += st.Corrupt
}

// runInline computes every pending cell serially on the calling
// goroutine — the byte-identity reference for every sharded mode.
func (c *coordinator) runInline(scale workloads.Scale) error {
	sCfg := experiments.DefaultConfig()
	sCfg.Scale = scale
	if c.cfg.StoreDir != "" {
		st, err := store.Open(store.Options{Dir: c.cfg.StoreDir, Revision: c.cfg.Revision})
		if err != nil {
			return err
		}
		sCfg.Store = st
	}
	suite := experiments.NewSuite(sCfg)
	for {
		i, ok := c.sched.next()
		if !ok {
			break
		}
		start := time.Now()
		spanStart := c.spans.Now()
		var before store.Stats
		if st := suite.Store(); c.spans != nil && st != nil {
			before = st.Stats()
		}
		out, err := computeCell(suite, c.plan[i])
		if err != nil {
			c.spans.EmitPhase(c.plan[i].ID(), "attempt", "inline", -1, spanStart, err.Error())
			c.sched.fail(i, err.Error())
			continue
		}
		// A cell fully served from the store did puts-free hits; anything
		// else counts as computed work.
		phase := "compute"
		if st := suite.Store(); c.spans != nil && st != nil {
			after := st.Stats()
			if after.Hits > before.Hits && after.Puts == before.Puts {
				phase = "store-hit"
			}
		}
		c.spans.EmitPhase(c.plan[i].ID(), phase, "inline", -1, spanStart, "")
		if err := c.recordDone(i, out, "inline", time.Since(start).Seconds()); err != nil {
			return err
		}
	}
	if st := suite.Store(); st != nil {
		stats := st.Stats()
		c.addStoreStats(&stats)
	}
	c.man.Slots = append(c.man.Slots, SlotRecord{Slot: "inline", Cells: c.man.Computed})
	return nil
}

// ---- local worker slots ----

// workerProc is one live worker subprocess.
type workerProc struct {
	cmd     *exec.Cmd
	stdin   *json.Encoder
	closeIn func() error
	results chan workerResult
}

func (c *coordinator) spawnWorker() (*workerProc, error) {
	exe := c.cfg.Exe
	if exe == "" {
		var err error
		if exe, err = os.Executable(); err != nil {
			return nil, fmt.Errorf("fabric: worker executable: %w", err)
		}
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		EnvWorker+"=1",
		EnvScale+"="+c.cfg.ScaleName,
		EnvStore+"="+c.cfg.StoreDir,
		EnvRevision+"="+c.cfg.Revision,
		EnvSpans+"="+c.cfg.SpanDir,
	)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("fabric: spawn worker: %w", err)
	}
	w := &workerProc{
		cmd: cmd, stdin: json.NewEncoder(stdin), closeIn: stdin.Close,
		results: make(chan workerResult),
	}
	go func() {
		dec := json.NewDecoder(stdout)
		for {
			var res workerResult
			if err := dec.Decode(&res); err != nil {
				close(w.results)
				cmd.Wait()
				return
			}
			w.results <- res
		}
	}()
	return w, nil
}

func (w *workerProc) kill() {
	if w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	w.closeIn()
	// Drain until the reader goroutine observes EOF and reaps the child.
	for range w.results {
	}
}

// runLocalSlot supervises one worker slot: spawn, feed cells, journal
// results; on death or lease expiry kill, requeue and respawn with
// exponential backoff, giving up after MaxRestarts consecutive failures.
func (c *coordinator) runLocalSlot(slot int) SlotRecord {
	name := fmt.Sprintf("w%d", slot)
	rec := SlotRecord{Slot: name}
	restarts := 0
	for {
		w, err := c.spawnWorker()
		if err == nil {
			if c.cfg.HookOnSpawn != nil {
				c.cfg.HookOnSpawn(slot, w.cmd.Process.Pid)
			}
			before := rec.Cells
			drained := c.serveWorker(name, w, &rec)
			w.kill()
			if drained {
				return rec
			}
			// An incarnation that completed cells before dying resets the
			// budget: give-up is for workers that crash without making
			// progress, not for occasional faults across a long sweep.
			if rec.Cells > before {
				restarts = 0
			}
		} else {
			c.log.Warn("fabric: worker spawn failed", "slot", name, "err", err)
		}
		restarts++
		rec.Restarts++
		if restarts > c.cfg.MaxRestarts {
			c.log.Error("fabric: slot giving up", "slot", name, "restarts", rec.Restarts)
			rec.GaveUp = true
			return rec
		}
		time.Sleep(c.cfg.Backoff << (restarts - 1))
	}
}

// serveWorker feeds cells to one worker incarnation until the queue
// drains (returns true) or the worker must be replaced (returns false:
// died, protocol confusion, or lease expiry — the cell is requeued).
func (c *coordinator) serveWorker(name string, w *workerProc, rec *SlotRecord) bool {
	var lastStore *store.Stats
	defer func() { c.addStoreStats(lastStore) }()
	lease := time.NewTimer(c.cfg.Lease)
	defer lease.Stop()
	for {
		i, ok := c.sched.next()
		if !ok {
			return true
		}
		start := time.Now()
		phase := c.leasePhase(i)
		spanStart := c.spans.Now()
		if err := w.stdin.Encode(c.plan[i]); err != nil {
			c.noteRequeue(i, name, "worker write failed")
			return false
		}
		if !lease.Stop() {
			select {
			case <-lease.C:
			default:
			}
		}
		lease.Reset(c.cfg.Lease)
		select {
		case res, alive := <-w.results:
			if !alive {
				c.noteRequeue(i, name, "worker died")
				return false
			}
			if res.Cell != c.plan[i].ID() {
				c.noteRequeue(i, name, "protocol mismatch: got "+res.Cell)
				return false
			}
			lastStore = res.Store
			if res.Err != "" {
				c.spans.EmitPhase(c.plan[i].ID(), "attempt", name, -1, spanStart, res.Err)
				c.sched.fail(i, res.Err)
				continue
			}
			c.spans.EmitPhase(c.plan[i].ID(), phase, name, -1, spanStart, "")
			if err := c.recordDone(i, *res.Out, name, time.Since(start).Seconds()); err != nil {
				c.log.Error("fabric: journal append failed", "err", err)
				c.sched.fail(i, "journal: "+err.Error())
				continue
			}
			rec.Cells++
		case <-lease.C:
			c.noteRequeue(i, name, "lease expired")
			return false
		}
	}
}

// ---- remote (ccrd) slots ----

// runRemoteSlot shards cells onto one ccrd daemon: each cell is two
// digest-carrying simulate calls (base and CCR). Connection failures
// requeue the cell and redial with the same bounded-restart budget as a
// local worker; server-reported cell errors are permanent.
func (c *coordinator) runRemoteSlot(addr string) SlotRecord {
	name := "remote:" + addr
	rec := SlotRecord{Slot: name}
	restarts := 0
	for {
		cl, err := serve.DialRetry(addr, serve.DialOptions{}, c.cfg.Lease)
		if err == nil {
			drained := c.serveRemote(name, cl, &rec)
			cl.Close()
			if drained {
				return rec
			}
		} else {
			c.log.Warn("fabric: remote dial failed", "addr", addr, "err", err)
		}
		restarts++
		rec.Restarts++
		if restarts > c.cfg.MaxRestarts {
			c.log.Error("fabric: remote slot giving up", "slot", name, "restarts", rec.Restarts)
			rec.GaveUp = true
			return rec
		}
		time.Sleep(c.cfg.Backoff << (restarts - 1))
	}
}

func (c *coordinator) serveRemote(name string, cl *serve.Client, rec *SlotRecord) bool {
	for {
		i, ok := c.sched.next()
		if !ok {
			return true
		}
		start := time.Now()
		phase := c.leasePhase(i)
		spanStart := c.spans.Now()
		out, err, transient := c.remoteCell(cl, c.plan[i])
		if err != nil {
			if transient {
				c.noteRequeue(i, name, "remote: "+err.Error())
				return false
			}
			c.spans.EmitPhase(c.plan[i].ID(), "attempt", name, -1, spanStart, err.Error())
			c.sched.fail(i, err.Error())
			continue
		}
		c.spans.EmitPhase(c.plan[i].ID(), phase, name, -1, spanStart, "")
		if err := c.recordDone(i, out, name, time.Since(start).Seconds()); err != nil {
			c.sched.fail(i, "journal: "+err.Error())
			continue
		}
		rec.Cells++
	}
}

// remoteCell computes one cell over the wire under the lease: the lease
// timer closing the client is what unblocks a hung call.
func (c *coordinator) remoteCell(cl *serve.Client, spec CellSpec) (out CellOut, err error, transient bool) {
	type answer struct {
		out CellOut
		err error
	}
	ch := make(chan answer, 1)
	timer := time.AfterFunc(c.cfg.Lease, func() { cl.Close() })
	go func() {
		o, e := remoteCompute(cl, c.cfg.ScaleName, spec)
		ch <- answer{o, e}
	}()
	a := <-ch
	expired := !timer.Stop()
	if expired {
		return CellOut{}, fmt.Errorf("lease expired"), true
	}
	if a.err != nil {
		// Distinguish a dead connection from a server-reported cell
		// error: a liveness probe succeeds only on a healthy connection.
		if cl.Ping(1) != nil {
			return CellOut{}, a.err, true
		}
		return CellOut{}, a.err, false
	}
	return a.out, nil, false
}

func remoteCompute(cl *serve.Client, scaleName string, spec CellSpec) (CellOut, error) {
	base, err := cl.Simulate(serve.SimulateReq{
		Bench: spec.Bench, Scale: scaleName, Dataset: spec.Dataset,
		Base: true, Digest: true,
	})
	if err != nil {
		return CellOut{}, err
	}
	req := serve.SimulateReq{
		Bench: spec.Bench, Scale: scaleName, Dataset: spec.Dataset,
		Scheme: string(spec.Reuse.Scheme), Digest: true,
	}
	if spec.Reuse.Scheme.UsesCCR() {
		req.CRB = &serve.CRBGeom{
			Entries: spec.Reuse.CRB.Entries, Instances: spec.Reuse.CRB.Instances,
			Assoc: spec.Reuse.CRB.Assoc, NoMemFrac: spec.Reuse.CRB.NoMemEntriesFrac,
		}
	}
	if spec.Reuse.Scheme.UsesDTM() {
		req.DTM = &serve.DTMGeom{
			Entries: spec.Reuse.DTM.Entries, Instances: spec.Reuse.DTM.Instances,
			Assoc: spec.Reuse.DTM.Assoc, MinRun: spec.Reuse.DTM.MinRun,
		}
	}
	ccr, err := cl.Simulate(req)
	if err != nil {
		return CellOut{}, err
	}
	if base.Digest == nil || ccr.Digest == nil {
		return CellOut{}, fmt.Errorf("remote answered without digests")
	}
	out := CellOut{Base: *base.Digest, CCR: *ccr.Digest}
	if ccr.Cycles != 0 {
		// Same formula as core.Speedup, so remote and local cells agree
		// bit-for-bit.
		out.Speedup = float64(base.Cycles) / float64(ccr.Cycles)
	}
	out.Verified = oracle.Compare(out.Base, out.CCR) == nil
	return out, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
