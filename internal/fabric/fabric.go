// Package fabric is the crash-safe resumable experiment fabric: it shards
// the transparency/speedup sweep grid across supervised local worker
// processes and remote ccrd daemons, journals every completed cell to an
// append-only manifest, and — layered over the content-addressed artifact
// store of internal/store — resumes a killed sweep by skipping completed
// cells and reloading partial pipeline artifacts instead of recomputing.
//
// The durability contract is differential: a sweep that is SIGKILLed at
// any point and resumed must produce a digests.json byte-identical to an
// uninterrupted serial run. That holds because every cell is a pure
// deterministic function of (benchmark bytes, dataset, reuse-scheme
// configuration, build revision), the journal only records fully computed
// cells (torn tails are discarded on load), and the store quarantines —
// never serves — entries that fail integrity or revision checks.
package fabric

import (
	"fmt"

	"ccr/internal/experiments"
	"ccr/internal/oracle"
	"ccr/internal/reuse"
	"ccr/internal/workloads"
)

// CellSpec names one sweep cell: a (benchmark, dataset, reuse scheme
// configuration) point of the verification/speedup grid. It is the unit
// of sharding, journaling and lease accounting.
type CellSpec struct {
	Bench   string       `json:"bench"`
	Dataset string       `json:"dataset"` // "train" or "ref"
	Label   string       `json:"label"`   // sweep-point label, e.g. "128E,8CI"
	Reuse   reuse.Config `json:"reuse"`
}

// ID is the cell's stable identity across runs, processes and machines —
// the journal key a resume matches against. The reuse scheme is part of
// the identity, so a CCR and a DTM cell whose labels or geometries
// coincide can never satisfy each other's journal entry.
func (c CellSpec) ID() string {
	return c.Bench + "/" + c.Dataset + "/" + string(c.Reuse.Scheme) + "/" + c.Label
}

// CellOut is one completed cell's result: both sides of the transparency
// check plus the paper's speedup metric. It round-trips through JSON
// exactly (integers and float64 shortest-form), which is what makes a
// journal-reloaded cell byte-identical to a freshly computed one.
type CellOut struct {
	Base     oracle.Digest `json:"base"`
	CCR      oracle.Digest `json:"ccr"`
	Speedup  float64       `json:"speedup"`
	Verified bool          `json:"verified"`
}

// Plan enumerates the sweep grid in canonical order — bench-major, then
// dataset, then sweep point, exactly the layout of the serial verification
// sweep — so every run of the same scale shards and journals the same cell
// set and digests.json compares byte-for-byte across modes.
func Plan(s *experiments.Suite) []CellSpec {
	points := experiments.VerifySweepPoints(s)
	var plan []CellSpec
	for _, b := range s.Benches {
		for _, ds := range []string{"train", "ref"} {
			for _, pt := range points {
				plan = append(plan, CellSpec{
					Bench: b.Name, Dataset: ds, Label: pt.Label, Reuse: pt.Reuse,
				})
			}
		}
	}
	return plan
}

// datasetArgs resolves a spec's dataset onto the benchmark's argument
// vector.
func datasetArgs(b *workloads.Benchmark, dataset string) ([]int64, error) {
	switch dataset {
	case "train":
		return b.Train, nil
	case "ref":
		return b.Ref, nil
	}
	return nil, fmt.Errorf("fabric: unknown dataset %q", dataset)
}

// computeCell runs one cell on a suite: base digest, CCR digest, speedup,
// and the §3.1 transparency verdict. Pure and deterministic — the whole
// fabric rests on that.
func computeCell(s *experiments.Suite, spec CellSpec) (CellOut, error) {
	var b *workloads.Benchmark
	for _, cand := range s.Benches {
		if cand.Name == spec.Bench {
			b = cand
			break
		}
	}
	if b == nil {
		return CellOut{}, fmt.Errorf("fabric: unknown benchmark %q", spec.Bench)
	}
	args, err := datasetArgs(b, spec.Dataset)
	if err != nil {
		return CellOut{}, err
	}
	base, err := s.BaseDigest(b, args)
	if err != nil {
		return CellOut{}, err
	}
	ccr, err := s.ReuseDigest(b, args, spec.Reuse)
	if err != nil {
		return CellOut{}, err
	}
	sp, err := s.SpeedupPoint(b, args, spec.Reuse)
	if err != nil {
		return CellOut{}, err
	}
	return CellOut{
		Base:     base,
		CCR:      ccr,
		Speedup:  sp,
		Verified: oracle.Compare(base, ccr) == nil,
	}, nil
}
