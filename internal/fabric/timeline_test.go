package fabric

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"ccr/internal/obsv"
)

// TestSpansInlineRun: an inline sweep with SpanDir set writes a
// coordinator span log whose commit spans cover the journal exactly
// once, and the merged timeline validates and parses.
func TestSpansInlineRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full tiny sweep")
	}
	dir := t.TempDir()
	cfg := testConfig(t, dir)
	cfg.SpanDir = filepath.Join(dir, "spans")
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	procs, err := obsv.ReadSpanDir(cfg.SpanDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 1 || !strings.HasPrefix(procs[0].Proc, "coord-") {
		t.Fatalf("span logs = %+v, want one coord log", procs)
	}
	phases := map[string]int{}
	for _, s := range procs[0].Spans {
		phases[s.Phase]++
	}
	if phases["commit"] != res.Manifest.Cells || phases["compute"] != res.Manifest.Cells {
		t.Errorf("phases = %v, want %d commits and computes", phases, res.Manifest.Cells)
	}

	cells, torn, err := JournalCellOrder(filepath.Join(dir, "journal.jsonl"))
	if err != nil || torn {
		t.Fatalf("journal order: torn=%v err=%v", torn, err)
	}
	if len(cells) != res.Manifest.Cells {
		t.Fatalf("journal order has %d cells, want %d", len(cells), res.Manifest.Cells)
	}
	var buf bytes.Buffer
	if err := obsv.WriteTimeline(&buf, procs, cells); err != nil {
		t.Fatalf("timeline merge rejected a clean run: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		OtherData   struct {
			JournalCells int  `json:"journal_cells"`
			ExtraCells   int  `json:"extra_cells"`
			Torn         bool `json:"torn"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if doc.OtherData.JournalCells != len(cells) || doc.OtherData.ExtraCells != 0 || doc.OtherData.Torn {
		t.Errorf("timeline metadata %+v", doc.OtherData)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("timeline has no events")
	}
}

// TestKillResumeTimeline is the tentpole's distributed-timeline gate: a
// sharded coordinator SIGKILLs itself mid-sweep, a second coordinator
// resumes in the same dir, and the span logs of all four processes
// (two coordinator incarnations, their workers) merge into one timeline
// whose commit spans cover the journal union exactly once across the
// kill/resume seam.
func TestKillResumeTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns coordinator subprocess trees for full tiny sweeps")
	}
	dir := t.TempDir()
	spanDir := filepath.Join(dir, "spans")
	storeDir := filepath.Join(t.TempDir(), "store")
	t.Setenv("CCR_FABRIC_TEST_SPANS", spanDir)

	// One worker keeps recordDone serial, so the SIGKILL cannot land
	// between another slot's journal fsync and its commit-span write.
	state := spawnCoordinator(t, dir, storeDir, 1, 5)
	if ws, ok := state.Sys().(syscall.WaitStatus); !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("coordinator did not die by SIGKILL: %v", state)
	}
	state = spawnCoordinator(t, dir, storeDir, 1, 0)
	if !state.Success() {
		t.Fatalf("resumed coordinator failed: %v", state)
	}

	procs, err := obsv.ReadSpanDir(spanDir)
	if err != nil {
		t.Fatal(err)
	}
	var coords, workers int
	for _, p := range procs {
		switch {
		case strings.HasPrefix(p.Proc, "coord-"):
			coords++
		case strings.HasPrefix(p.Proc, "worker-"):
			workers++
		}
	}
	if coords < 2 || workers < 2 {
		t.Fatalf("span logs %d coords / %d workers, want both incarnations: %+v",
			coords, workers, names(procs))
	}

	cells, torn, err := JournalCellOrder(filepath.Join(dir, "journal.jsonl"))
	if err != nil || torn {
		t.Fatalf("journal order after resume: torn=%v err=%v", torn, err)
	}
	var buf bytes.Buffer
	if err := obsv.WriteTimeline(&buf, procs, cells); err != nil {
		t.Fatalf("kill/resume timeline failed exactly-once validation: %v", err)
	}

	// Cross-check: commit events in the rendered trace equal the journal
	// union, each exactly once.
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Args struct {
				Cell string `json:"cell"`
				Seq  int64  `json:"seq"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	commits := map[string]int{}
	seqs := map[int64]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "commit" && ev.Ph == "X" {
			commits[ev.Args.Cell]++
			seqs[ev.Args.Seq] = true
		}
	}
	if len(commits) != len(cells) {
		t.Fatalf("trace has %d committed cells, journal %d", len(commits), len(cells))
	}
	for cell, n := range commits {
		if n != 1 {
			t.Errorf("cell %s committed %d times in trace", cell, n)
		}
	}
	// Sequence numbers are a permutation of 0..n-1: the resumed journal
	// seeded its counter past the pre-kill records.
	for want := int64(0); want < int64(len(cells)); want++ {
		if !seqs[want] {
			t.Errorf("no commit span carries seq %d", want)
		}
	}
}

func names(procs []obsv.ProcSpans) []string {
	var out []string
	for _, p := range procs {
		out = append(out, p.Proc)
	}
	return out
}

// TestJournalCellOrder pins ordering and torn-tail semantics.
func TestJournalCellOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if cells, torn, err := JournalCellOrder(path); err != nil || torn || cells != nil {
		t.Fatalf("missing journal: cells=%v torn=%v err=%v", cells, torn, err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, cell := range []string{"b", "a", "c"} {
		seq, err := j.Append(Record{Cell: cell, Out: CellOut{}})
		if err != nil {
			t.Fatal(err)
		}
		if seq != int64(i) {
			t.Errorf("seq for %s = %d, want %d", cell, seq, i)
		}
	}
	j.Close()
	cells, torn, err := JournalCellOrder(path)
	if err != nil || torn {
		t.Fatalf("torn=%v err=%v", torn, err)
	}
	if want := []string{"b", "a", "c"}; len(cells) != 3 || cells[0] != want[0] || cells[1] != want[1] || cells[2] != want[2] {
		t.Fatalf("order = %v, want %v", cells, want)
	}

	// A torn tail is reported but does not disturb the valid prefix, and
	// RecoverJournal seeds the next sequence number past the survivors.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"cell":"d"`)
	f.Close()
	cells, torn, err = JournalCellOrder(path)
	if err != nil || !torn || len(cells) != 3 {
		t.Fatalf("torn tail: cells=%v torn=%v err=%v", cells, torn, err)
	}
	j2, done, torn2, err := RecoverJournal(path)
	if err != nil || !torn2 || len(done) != 3 {
		t.Fatalf("recover: done=%d torn=%v err=%v", len(done), torn2, err)
	}
	defer j2.Close()
	seq, err := j2.Append(Record{Cell: "d", Out: CellOut{}})
	if err != nil || seq != 3 {
		t.Fatalf("post-recovery seq = %d (err %v), want 3", seq, err)
	}
}
