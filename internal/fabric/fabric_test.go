package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"ccr/internal/experiments"
	"ccr/internal/serve"
	"ccr/internal/workloads"
)

// TestMain is the re-exec hub: the coordinator spawns this test binary as
// its workers (MaybeWorker), the kill/resume tests spawn it as a child
// coordinator that SIGKILLs itself mid-sweep, and the lease test turns
// the first worker incarnation into a hang.
func TestMain(m *testing.M) {
	if p := os.Getenv("CCR_FABRIC_TEST_HANG_ONCE"); p != "" && os.Getenv(EnvWorker) != "" {
		if _, err := os.Stat(p); os.IsNotExist(err) {
			os.WriteFile(p, []byte("hung\n"), 0o644)
			io.Copy(io.Discard, os.Stdin) // hang until the coordinator kills us
			os.Exit(0)
		}
	}
	MaybeWorker()
	if os.Getenv("CCR_FABRIC_TEST_COORD") == "1" {
		coordMain()
	}
	os.Exit(m.Run())
}

// coordMain runs a fabric coordinator configured entirely from the
// environment — the subprocess side of the kill/resume differential test.
func coordMain() {
	workers, _ := strconv.Atoi(os.Getenv("CCR_FABRIC_TEST_WORKERS"))
	dieAfter, _ := strconv.Atoi(os.Getenv("CCR_FABRIC_TEST_DIEAFTER"))
	cfg := Config{
		Dir:       os.Getenv("CCR_FABRIC_TEST_DIR"),
		ScaleName: "tiny",
		Benches:   testBenches,
		Workers:   workers,
		StoreDir:  os.Getenv("CCR_FABRIC_TEST_STORE"),
		Revision:  "fabric-test",
		SpanDir:   os.Getenv("CCR_FABRIC_TEST_SPANS"),
	}
	if dieAfter > 0 {
		cfg.HookAfterCell = func(n int) {
			if n >= dieAfter {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	if _, err := Run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "coord:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// testBenches keeps fabric sweeps small: 2 benches × 2 datasets × the
// sweep matrix instead of the full 13-bench grid.
var testBenches = []string{"compress", "lex"}

func testConfig(t *testing.T, dir string) Config {
	t.Helper()
	return Config{
		Dir:       dir,
		ScaleName: "tiny",
		Benches:   testBenches,
		Revision:  "fabric-test",
		Lease:     2 * time.Minute,
	}
}

// runSerial produces the reference digests.json: inline serial mode.
func runSerial(t *testing.T, dir string) *Result {
	t.Helper()
	res, err := Run(testConfig(t, dir))
	if err != nil {
		t.Fatalf("serial fabric run failed: %v", err)
	}
	return res
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPlanCanonicalOrder(t *testing.T) {
	cfg := experiments.DefaultConfig()
	cfg.Scale = workloads.Tiny
	s := experiments.NewSuite(cfg)
	plan := Plan(s)
	points := experiments.VerifySweepPoints(s)
	if want := len(s.Benches) * 2 * len(points); len(plan) != want {
		t.Fatalf("plan has %d cells, want %d", len(plan), want)
	}
	seen := map[string]bool{}
	for _, spec := range plan {
		if seen[spec.ID()] {
			t.Fatalf("duplicate cell id %s", spec.ID())
		}
		seen[spec.ID()] = true
	}
	// Deterministic: two plans enumerate identically.
	again := Plan(s)
	for i := range plan {
		if plan[i] != again[i] {
			t.Fatalf("plan not deterministic at %d: %+v vs %+v", i, plan[i], again[i])
		}
	}
}

// TestInlineRunCompletes: the reference mode computes every planned cell,
// journals them, and reports a verified sweep.
func TestInlineRunCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("full tiny sweep")
	}
	dir := t.TempDir()
	res := runSerial(t, dir)
	if res.Manifest.Computed != res.Manifest.Cells || res.Manifest.Resumed != 0 {
		t.Fatalf("inline run: %+v", res.Manifest)
	}
	if len(res.Digests) != res.Manifest.Cells {
		t.Fatalf("digests rows %d != cells %d", len(res.Digests), res.Manifest.Cells)
	}
	for _, row := range res.Digests {
		if !row.Out.Verified {
			t.Errorf("cell %s not transparency-verified", row.Cell)
		}
		if row.Out.Speedup <= 0 {
			t.Errorf("cell %s speedup %v", row.Cell, row.Out.Speedup)
		}
	}
	done, torn, err := LoadJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil || torn {
		t.Fatalf("journal after clean run: torn=%v err=%v", torn, err)
	}
	if len(done) != res.Manifest.Cells {
		t.Fatalf("journal has %d cells, want %d", len(done), res.Manifest.Cells)
	}
}

// TestWorkersMatchSerial is the sharding half of the differential gate:
// a sweep sharded across worker subprocesses must write a digests.json
// byte-identical to the inline serial run.
func TestWorkersMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses for a full tiny sweep")
	}
	serialDir, workerDir := t.TempDir(), t.TempDir()
	runSerial(t, serialDir)

	cfg := testConfig(t, workerDir)
	cfg.Workers = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("sharded run failed: %v", err)
	}
	if res.Manifest.Computed != res.Manifest.Cells {
		t.Fatalf("sharded run: %+v", res.Manifest)
	}
	var active int
	for _, s := range res.Manifest.Slots {
		if s.Cells > 0 {
			active++
		}
	}
	if active < 2 {
		t.Errorf("work not sharded: slots %+v", res.Manifest.Slots)
	}

	serial := readFile(t, filepath.Join(serialDir, "digests.json"))
	sharded := readFile(t, filepath.Join(workerDir, "digests.json"))
	if !bytes.Equal(serial, sharded) {
		t.Fatal("sharded digests.json diverged from serial")
	}
}

// TestResumeSkipsCompleted: a second Run over the same dir finds the
// journal complete and computes nothing.
func TestResumeSkipsCompleted(t *testing.T) {
	if testing.Short() {
		t.Skip("full tiny sweep")
	}
	dir := t.TempDir()
	first := runSerial(t, dir)
	second, err := Run(testConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if second.Manifest.Resumed != first.Manifest.Cells || second.Manifest.Computed != 0 {
		t.Fatalf("resume over complete journal: %+v", second.Manifest)
	}
	a, _ := json.Marshal(first.Digests)
	b, _ := json.Marshal(second.Digests)
	if !bytes.Equal(a, b) {
		t.Fatal("resumed digests diverged from original")
	}
}

// TestRemoteSlotMatchesSerial shards the sweep onto an in-process ccrd
// daemon and requires byte-identical digests — the cross-machine half of
// the determinism story.
func TestRemoteSlotMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full tiny sweep through the daemon")
	}
	serialDir, remoteDir := t.TempDir(), t.TempDir()
	runSerial(t, serialDir)

	sock := filepath.Join(t.TempDir(), "ccrd.sock")
	srv := serve.NewServer(serve.Config{Jobs: 2})
	ln, err := serve.Listen("unix:" + sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Drain()
		srv.Wait()
	})

	cfg := testConfig(t, remoteDir)
	cfg.Remotes = []string{"unix:" + sock}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("remote run failed: %v", err)
	}
	if res.Manifest.Computed != res.Manifest.Cells {
		t.Fatalf("remote run: %+v", res.Manifest)
	}
	serial := readFile(t, filepath.Join(serialDir, "digests.json"))
	remote := readFile(t, filepath.Join(remoteDir, "digests.json"))
	if !bytes.Equal(serial, remote) {
		t.Fatal("remote digests.json diverged from serial")
	}
}
