package fabric

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzJournal drives the journal parser with arbitrary bytes: every input
// must decode, error, or report a torn tail — never panic — and whatever
// is accepted must satisfy the journal invariants (cell ids present, the
// valid prefix newline-terminated, reparse idempotent).
func FuzzJournal(f *testing.F) {
	rec, _ := json.Marshal(testRecord("a/train/default", 1.5))
	f.Add(append(rec, '\n'))
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	f.Add(append(rec, append([]byte{'\n'}, rec[:len(rec)/2]...)...)) // torn tail
	f.Add([]byte("not json\n"))
	f.Add([]byte(`{"cell":""}` + "\n"))
	f.Add([]byte(`{"cell":"x","out":{"speedup":1e999}}` + "\n"))
	f.Add([]byte{0xff, 0xfe, 0x00, '\n'})
	f.Add(bytes.Repeat([]byte(`{"cell":"x","out":{}}`+"\n"), 5))

	f.Fuzz(func(t *testing.T, data []byte) {
		done, good, err := parseJournal(data)
		if err != nil {
			return // rejected outright: fine
		}
		if good > len(data) {
			t.Fatalf("valid prefix %d exceeds input length %d", good, len(data))
		}
		if good > 0 && data[good-1] != '\n' {
			t.Fatalf("valid prefix does not end at a newline")
		}
		for cell := range done {
			if cell == "" {
				t.Fatal("accepted a record without a cell id")
			}
		}
		// The accepted prefix must reparse to the same state (what a
		// resumed run after truncation would see).
		done2, good2, err2 := parseJournal(data[:good])
		if err2 != nil || good2 != good || len(done2) != len(done) {
			t.Fatalf("reparse of valid prefix diverged: err=%v good=%d/%d done=%d/%d",
				err2, good2, good, len(done2), len(done))
		}
	})
}
