package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Record is one journal line: a fully completed cell and where/when it
// ran. Records are append-only; a cell appearing twice (e.g. two runs
// racing the same journal) is tolerated on load — the outputs are
// deterministic, so duplicates are identical and the first wins.
type Record struct {
	Cell    string  `json:"cell"`
	Out     CellOut `json:"out"`
	Slot    string  `json:"slot,omitempty"`
	Seconds float64 `json:"seconds,omitempty"`
}

// Journal is the fabric's append-only completion log: one JSON object per
// line, each line written in a single contiguous write and fsynced before
// the cell counts as done. A process killed mid-append therefore leaves at
// most one unterminated final line; anything ending in a newline is a
// complete record.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	seq int64 // next record's journal sequence number
}

// OpenJournal opens (creating if absent) the journal at path for
// appending. Use RecoverJournal to resume over an existing file — it
// truncates a torn tail first, which a blind append would otherwise merge
// the next record into.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fabric: open journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append durably records one completed cell: marshal, one write, fsync.
// The record is visible to a subsequent load only if the whole line made
// it to disk. The returned sequence number is the record's position in
// journal order — RecoverJournal seeds it past the resumed cells, so it
// is the global virtual-time coordinate the timeline merge lays spans
// out by (callers never append a cell that is already journaled).
func (j *Journal) Append(r Record) (int64, error) {
	if r.Cell == "" {
		return 0, fmt.Errorf("fabric: journal record without cell id")
	}
	line, err := json.Marshal(r)
	if err != nil {
		return 0, fmt.Errorf("fabric: journal marshal: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return 0, fmt.Errorf("fabric: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return 0, fmt.Errorf("fabric: journal sync: %w", err)
	}
	seq := j.seq
	j.seq++
	return seq, nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// LoadJournal reads a journal back into a cell→record map. An
// unterminated final line — the signature of a mid-append kill — is
// discarded and reported via torn. A terminated line that does not decode
// is not a torn tail (single-write appends make completed lines whole):
// it means the file is not a valid journal, and that is an error — never
// a panic, and never partial trust.
func LoadJournal(path string) (done map[string]Record, torn bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]Record{}, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("fabric: read journal: %w", err)
	}
	done, good, err := parseJournal(data)
	if err != nil {
		return nil, false, err
	}
	return done, good < len(data), nil
}

// RecoverJournal prepares path for a resumed run: load the completed
// cells, truncate a torn tail if present, and reopen for appending.
func RecoverJournal(path string) (*Journal, map[string]Record, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, false, fmt.Errorf("fabric: read journal: %w", err)
	}
	done, good, perr := parseJournal(data)
	if perr != nil {
		return nil, nil, false, perr
	}
	torn := good < len(data)
	if torn {
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, nil, false, fmt.Errorf("fabric: truncate torn journal tail: %w", err)
		}
	}
	j, err := OpenJournal(path)
	if err != nil {
		return nil, nil, false, err
	}
	j.seq = int64(len(done))
	return j, done, torn, nil
}

// JournalCellOrder returns the journal's cells in first-occurrence order
// — the authoritative virtual-time axis for the sweep timeline (wall
// clocks across killed and resumed processes cannot be compared; journal
// order can). It validates via the same parser as LoadJournal, then
// re-scans the valid prefix for ordering.
func JournalCellOrder(path string) (cells []string, torn bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("fabric: read journal: %w", err)
	}
	done, good, err := parseJournal(data)
	if err != nil {
		return nil, false, err
	}
	seen := make(map[string]bool, len(done))
	for _, raw := range bytes.Split(data[:good], []byte{'\n'}) {
		line := bytes.TrimSpace(raw)
		if len(line) == 0 {
			continue
		}
		var rec Record
		if uerr := strictUnmarshal(line, &rec); uerr != nil {
			return nil, false, fmt.Errorf("fabric: journal reparse: %v", uerr)
		}
		if !seen[rec.Cell] {
			seen[rec.Cell] = true
			cells = append(cells, rec.Cell)
		}
	}
	return cells, good < len(data), nil
}

// parseJournal decodes journal bytes, returning the completed cells and
// the byte length of the valid newline-terminated prefix. It is the fuzz
// surface: arbitrary input must decode, error, or truncate — never panic.
func parseJournal(data []byte) (map[string]Record, int, error) {
	done := map[string]Record{}
	off, lineno := 0, 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated tail: torn mid-append
		}
		line := bytes.TrimSpace(data[off : off+nl])
		lineno++
		if len(line) > 0 {
			var rec Record
			if err := strictUnmarshal(line, &rec); err != nil {
				return nil, 0, fmt.Errorf("fabric: journal line %d: %v", lineno, err)
			}
			if rec.Cell == "" {
				return nil, 0, fmt.Errorf("fabric: journal line %d: record without cell id", lineno)
			}
			if _, dup := done[rec.Cell]; !dup {
				done[rec.Cell] = rec
			}
		}
		off += nl + 1
	}
	return done, off, nil
}

// strictUnmarshal decodes one journal line, rejecting trailing data after
// the object (two records fused onto one line must not silently merge).
func strictUnmarshal(line []byte, rec *Record) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	if err := dec.Decode(rec); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after record")
	}
	return nil
}
