package fabric

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"
)

// ---- chaos class 1: worker SIGKILL ----

// TestWorkerKillRecovery SIGKILLs the only worker after its first
// journaled cell. The supervisor must requeue the in-flight cell, respawn
// the worker, finish the sweep, and still match the serial digests.
func TestWorkerKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker subprocesses")
	}
	serialDir, chaosDir := t.TempDir(), t.TempDir()
	runSerial(t, serialDir)

	var mu sync.Mutex
	var pid int
	killed := false
	cfg := testConfig(t, chaosDir)
	cfg.Workers = 1
	cfg.HookOnSpawn = func(slot, p int) {
		mu.Lock()
		pid = p
		mu.Unlock()
	}
	cfg.HookAfterCell = func(n int) {
		mu.Lock()
		defer mu.Unlock()
		if !killed && n >= 1 && pid != 0 {
			killed = true
			syscall.Kill(pid, syscall.SIGKILL)
			// Give the kill time to land so the fault is a real mid-sweep
			// death, not a no-op after the queue drained.
			time.Sleep(50 * time.Millisecond)
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("sweep did not survive a worker SIGKILL: %v", err)
	}
	if !killed {
		t.Fatal("fault was never injected")
	}
	if res.Manifest.Restarts < 1 {
		t.Errorf("no worker restart recorded: %+v", res.Manifest)
	}
	if res.Manifest.Computed != res.Manifest.Cells {
		t.Errorf("sweep incomplete after recovery: %+v", res.Manifest)
	}
	serial := readFile(t, filepath.Join(serialDir, "digests.json"))
	chaos := readFile(t, filepath.Join(chaosDir, "digests.json"))
	if !bytes.Equal(serial, chaos) {
		t.Fatal("digests diverged after worker kill + recovery")
	}
}

// TestWorkerGivesUpAfterMaxRestarts: a worker that can never start (bogus
// executable) exhausts its restart budget; the run fails with abandoned
// cells instead of hanging.
func TestWorkerGivesUpAfterMaxRestarts(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	cfg.Workers = 1
	cfg.Exe = filepath.Join(t.TempDir(), "no-such-worker")
	cfg.MaxRestarts = 2
	cfg.Backoff = time.Millisecond
	res, err := Run(cfg)
	if err == nil {
		t.Fatal("run with an unstartable worker reported success")
	}
	if res == nil {
		t.Fatal("no result alongside the failure")
	}
	var gaveUp bool
	for _, s := range res.Manifest.Slots {
		gaveUp = gaveUp || s.GaveUp
	}
	if !gaveUp {
		t.Errorf("slot did not record give-up: %+v", res.Manifest.Slots)
	}
	if len(res.Manifest.Failed) != res.Manifest.Cells {
		t.Errorf("expected every cell abandoned, got %d/%d",
			len(res.Manifest.Failed), res.Manifest.Cells)
	}
}

// ---- chaos class 2: lease expiry (hung worker) ----

// TestLeaseExpiryReassignsCell: the first worker incarnation hangs on its
// first cell (TestMain's HANG_ONCE hook). The lease must expire, the cell
// requeue, and the respawned — now healthy — worker finish the sweep.
func TestLeaseExpiryReassignsCell(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	marker := filepath.Join(t.TempDir(), "hung-once")
	t.Setenv("CCR_FABRIC_TEST_HANG_ONCE", marker)

	cfg := testConfig(t, t.TempDir())
	cfg.Workers = 1
	cfg.Lease = 500 * time.Millisecond
	cfg.Backoff = 10 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("sweep did not survive a hung worker: %v", err)
	}
	if _, err := os.Stat(marker); err != nil {
		t.Fatal("hang fault was never injected")
	}
	if res.Manifest.LeaseExpiries < 1 {
		t.Errorf("no lease expiry recorded: %+v", res.Manifest)
	}
	if res.Manifest.Requeues < 1 || res.Manifest.Restarts < 1 {
		t.Errorf("hung worker not requeued+restarted: %+v", res.Manifest)
	}
	if res.Manifest.Computed != res.Manifest.Cells {
		t.Errorf("sweep incomplete: %+v", res.Manifest)
	}
}

// ---- chaos classes 3 and 4: torn and stale store artifacts ----

// corruptOneStoreObject truncates one stored entry in place — the torn-
// write fault a mid-kill leaves if rename durability is ever violated.
func corruptOneStoreObject(t *testing.T, storeDir string) string {
	t.Helper()
	var victim string
	filepath.Walk(filepath.Join(storeDir, "objects"), func(path string, info os.FileInfo, err error) error {
		if err == nil && victim == "" && info.Mode().IsRegular() {
			victim = path
		}
		return nil
	})
	if victim == "" {
		t.Fatal("store has no objects to corrupt")
	}
	data := readFile(t, victim)
	if err := os.WriteFile(victim, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	return victim
}

// TestTornStoreWriteQuarantinedAndRecomputed: a truncated store entry
// must be quarantined (logged cause, counted) and its cell recomputed —
// with the final digests still byte-identical to the clean run.
func TestTornStoreWriteQuarantinedAndRecomputed(t *testing.T) {
	if testing.Short() {
		t.Skip("full tiny sweep")
	}
	storeDir := filepath.Join(t.TempDir(), "store")
	dirA, dirB := t.TempDir(), t.TempDir()

	cfg := testConfig(t, dirA)
	cfg.StoreDir = storeDir
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	corruptOneStoreObject(t, storeDir)

	cfg2 := testConfig(t, dirB)
	cfg2.StoreDir = storeDir
	res, err := Run(cfg2)
	if err != nil {
		t.Fatalf("rerun over a torn store entry failed: %v", err)
	}
	if res.Manifest.Store == nil || res.Manifest.Store.Corrupt < 1 {
		t.Errorf("torn entry not detected: %+v", res.Manifest.Store)
	}
	if n, _ := filepath.Glob(filepath.Join(storeDir, "quarantine", "*")); len(n) == 0 {
		t.Error("torn entry was not quarantined")
	}
	a := readFile(t, filepath.Join(dirA, "digests.json"))
	b := readFile(t, filepath.Join(dirB, "digests.json"))
	if !bytes.Equal(a, b) {
		t.Fatal("digests diverged after torn store entry")
	}
}

// TestStaleRevisionArtifactsRecomputed: artifacts persisted by another
// build revision must be treated as misses (counted stale, never served)
// and recomputed under the current revision.
func TestStaleRevisionArtifactsRecomputed(t *testing.T) {
	if testing.Short() {
		t.Skip("full tiny sweep")
	}
	storeDir := filepath.Join(t.TempDir(), "store")
	dirA, dirB := t.TempDir(), t.TempDir()

	cfg := testConfig(t, dirA)
	cfg.StoreDir = storeDir
	cfg.Revision = "old-build"
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	cfg2 := testConfig(t, dirB)
	cfg2.StoreDir = storeDir
	cfg2.Revision = "new-build"
	res, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Manifest.Store
	if st == nil || st.Stale < 1 {
		t.Errorf("stale-revision artifacts not detected: %+v", st)
	}
	if st != nil && st.Hits != 0 {
		t.Errorf("another revision's artifacts were served: %+v", st)
	}
	a := readFile(t, filepath.Join(dirA, "digests.json"))
	b := readFile(t, filepath.Join(dirB, "digests.json"))
	if !bytes.Equal(a, b) {
		t.Fatal("digests diverged across revisions (simulation nondeterminism?)")
	}
}

// ---- the kill/resume differential gate ----

// spawnCoordinator re-execs this test binary as a fabric coordinator
// (TestMain's COORD hook) and waits for it, returning how it ended.
func spawnCoordinator(t *testing.T, dir, storeDir string, workers, dieAfter int) *os.ProcessState {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"CCR_FABRIC_TEST_COORD=1",
		"CCR_FABRIC_TEST_DIR="+dir,
		"CCR_FABRIC_TEST_STORE="+storeDir,
		"CCR_FABRIC_TEST_WORKERS="+strconv.Itoa(workers),
		"CCR_FABRIC_TEST_DIEAFTER="+strconv.Itoa(dieAfter),
	)
	cmd.Stderr = os.Stderr
	cmd.Run()
	return cmd.ProcessState
}

// TestKillResumeDifferential is the tentpole's acceptance gate, run
// against a real separate coordinator process:
//
//  1. serial uninterrupted run → reference digests.json
//  2. fresh dir: coordinator SIGKILLs itself mid-sweep (after N cells)
//  3. same dir: resumed coordinator completes the remainder
//  4. the combined journal covers every cell exactly once, and
//     digests.json is byte-identical to the reference
//  5. one more run over the warm store: hit rate ≥ 0.9 in the manifest,
//     and nothing recomputed
func TestKillResumeDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns coordinator subprocesses for full tiny sweeps")
	}
	serialDir := t.TempDir()
	ref := runSerial(t, serialDir)
	refBytes := readFile(t, filepath.Join(serialDir, "digests.json"))

	killDir := t.TempDir()
	storeDir := filepath.Join(t.TempDir(), "store")
	const dieAfter = 8

	state := spawnCoordinator(t, killDir, storeDir, 0, dieAfter)
	if ws, ok := state.Sys().(syscall.WaitStatus); !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("coordinator did not die by SIGKILL: %v", state)
	}
	killedDone, _, err := LoadJournal(filepath.Join(killDir, "journal.jsonl"))
	if err != nil {
		t.Fatalf("journal unreadable after SIGKILL: %v", err)
	}
	if len(killedDone) < dieAfter || len(killedDone) >= ref.Manifest.Cells {
		t.Fatalf("kill point implausible: %d cells journaled of %d", len(killedDone), ref.Manifest.Cells)
	}

	state = spawnCoordinator(t, killDir, storeDir, 0, 0)
	if !state.Success() {
		t.Fatalf("resumed coordinator failed: %v", state)
	}

	// Every cell exactly once across the combined journal.
	data := readFile(t, filepath.Join(killDir, "journal.jsonl"))
	counts := map[string]int{}
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var rec Record
		if err := strictUnmarshal(line, &rec); err != nil {
			t.Fatalf("journal line undecodable after resume: %v", err)
		}
		counts[rec.Cell]++
	}
	if len(counts) != ref.Manifest.Cells {
		t.Fatalf("journal covers %d cells, want %d", len(counts), ref.Manifest.Cells)
	}
	for cell, n := range counts {
		if n != 1 {
			t.Errorf("cell %s journaled %d times", cell, n)
		}
	}

	resumed := readFile(t, filepath.Join(killDir, "digests.json"))
	if !bytes.Equal(refBytes, resumed) {
		t.Fatal("kill/resume digests.json diverged from uninterrupted serial")
	}

	// A rerun over the warm store reloads everything: the ≥90% hit-rate
	// acceptance bar, reported in the manifest.
	warmDir := t.TempDir()
	state = spawnCoordinator(t, warmDir, storeDir, 0, 0)
	if !state.Success() {
		t.Fatalf("warm rerun failed: %v", state)
	}
	var man Manifest
	if err := jsonUnmarshalFile(filepath.Join(warmDir, "manifest.json"), &man); err != nil {
		t.Fatal(err)
	}
	if man.StoreHitRate < 0.9 {
		t.Errorf("warm-store hit rate %.3f < 0.9 (%+v)", man.StoreHitRate, man.Store)
	}
	if man.Store == nil || man.Store.Puts != 0 {
		t.Errorf("warm rerun recomputed artifacts: %+v", man.Store)
	}
	warm := readFile(t, filepath.Join(warmDir, "digests.json"))
	if !bytes.Equal(refBytes, warm) {
		t.Fatal("warm-store digests.json diverged from serial")
	}
}

// TestKillResumeWithWorkers repeats the kill/resume gate with the sweep
// sharded across worker subprocesses on both sides of the kill.
func TestKillResumeWithWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns coordinator+worker subprocess trees")
	}
	serialDir := t.TempDir()
	runSerial(t, serialDir)
	refBytes := readFile(t, filepath.Join(serialDir, "digests.json"))

	killDir := t.TempDir()
	storeDir := filepath.Join(t.TempDir(), "store")
	state := spawnCoordinator(t, killDir, storeDir, 2, 6)
	if ws, ok := state.Sys().(syscall.WaitStatus); !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("coordinator did not die by SIGKILL: %v", state)
	}
	state = spawnCoordinator(t, killDir, storeDir, 2, 0)
	if !state.Success() {
		t.Fatalf("resumed sharded coordinator failed: %v", state)
	}
	resumed := readFile(t, filepath.Join(killDir, "digests.json"))
	if !bytes.Equal(refBytes, resumed) {
		t.Fatal("sharded kill/resume digests.json diverged from serial")
	}
}

func jsonUnmarshalFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
