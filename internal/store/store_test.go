package store

import (
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type artifact struct {
	Name   string `json:"name"`
	Cycles int64  `json:"cycles"`
}

func openTest(t *testing.T, rev string) *Store {
	t.Helper()
	s, err := Open(Options{
		Dir:      filepath.Join(t.TempDir(), "store"),
		Revision: rev,
		Log:      slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError})),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, "rev1")
	want := artifact{Name: "compress", Cycles: 12345}
	if err := s.Put("sim", "compress|train", want); err != nil {
		t.Fatal(err)
	}
	var got artifact
	ok, err := s.Get("sim", "compress|train", &got)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v; want hit", ok, err)
	}
	if got != want {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
	if st := s.Stats(); st.Puts != 1 || st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetMissOnAbsent(t *testing.T) {
	s := openTest(t, "")
	var got artifact
	ok, err := s.Get("sim", "nothing", &got)
	if err != nil || ok {
		t.Fatalf("Get absent = %v, %v; want clean miss", ok, err)
	}
	if st := s.Stats(); st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutOverwrites(t *testing.T) {
	s := openTest(t, "")
	if err := s.Put("sim", "k", artifact{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("sim", "k", artifact{Cycles: 2}); err != nil {
		t.Fatal(err)
	}
	var got artifact
	if ok, _ := s.Get("sim", "k", &got); !ok || got.Cycles != 2 {
		t.Fatalf("after overwrite got %+v (hit=%v), want Cycles=2", got, ok)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

// TestCorruptEntryQuarantined proves the headline robustness property: a
// torn or garbage entry is never served and never panics — it is moved to
// quarantine with a recorded cause and the key reports a miss, so the
// caller recomputes.
func TestCorruptEntryQuarantined(t *testing.T) {
	cases := map[string]func(path string){
		"truncated": func(path string) {
			data, _ := os.ReadFile(path)
			os.WriteFile(path, data[:len(data)/2], 0o644)
		},
		"garbage": func(path string) {
			os.WriteFile(path, []byte("not json at all"), 0o644)
		},
		"bitflip": func(path string) {
			data, _ := os.ReadFile(path)
			// Flip a byte inside the payload (past the envelope prefix).
			i := strings.Index(string(data), `"payload"`) + 20
			data[i] ^= 0x20
			os.WriteFile(path, data, 0o644)
		},
		"empty": func(path string) {
			os.WriteFile(path, nil, 0o644)
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			s := openTest(t, "r")
			if err := s.Put("sim", "victim", artifact{Name: "x", Cycles: 7}); err != nil {
				t.Fatal(err)
			}
			corrupt(s.EntryPath("sim", "victim"))
			var got artifact
			ok, err := s.Get("sim", "victim", &got)
			if err != nil {
				t.Fatalf("corrupt entry returned error %v, want quiet miss", err)
			}
			if ok {
				t.Fatalf("corrupt entry served: %+v", got)
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("stats = %+v, want Corrupt=1", st)
			}
			if n, _ := s.Quarantined(); n != 1 {
				t.Fatalf("quarantined = %d, want 1", n)
			}
			// The cause sidecar names the bad entry.
			des, _ := os.ReadDir(filepath.Join(s.Dir(), "quarantine"))
			foundCause := false
			for _, de := range des {
				if strings.HasSuffix(de.Name(), ".cause") {
					b, _ := os.ReadFile(filepath.Join(s.Dir(), "quarantine", de.Name()))
					if strings.Contains(string(b), "victim") {
						foundCause = true
					}
				}
			}
			if !foundCause {
				t.Fatal("no cause sidecar naming the quarantined key")
			}
			// The key is free again: recompute and re-Put succeeds.
			if err := s.Put("sim", "victim", artifact{Cycles: 8}); err != nil {
				t.Fatal(err)
			}
			if ok, _ := s.Get("sim", "victim", &got); !ok || got.Cycles != 8 {
				t.Fatalf("recomputed entry not served: %+v (hit=%v)", got, ok)
			}
		})
	}
}

// TestStaleRevisionIsMiss proves revision invalidation: an entry written
// by a different build is a counted miss (not corruption — the entry is
// intact, just untrusted), and a fresh Put replaces it.
func TestStaleRevisionIsMiss(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	old, err := Open(Options{Dir: dir, Revision: "old-rev"})
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Put("sim", "k", artifact{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	cur, err := Open(Options{Dir: dir, Revision: "new-rev"})
	if err != nil {
		t.Fatal(err)
	}
	var got artifact
	ok, err := cur.Get("sim", "k", &got)
	if err != nil || ok {
		t.Fatalf("stale entry served (hit=%v err=%v)", ok, err)
	}
	st := cur.Stats()
	if st.Stale != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v, want Stale=1 Corrupt=0", st)
	}
	if n, _ := cur.Quarantined(); n != 0 {
		t.Fatal("stale entry was quarantined; it should just be skipped")
	}
	if err := cur.Put("sim", "k", artifact{Cycles: 2}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := cur.Get("sim", "k", &got); !ok || got.Cycles != 2 {
		t.Fatalf("replacement entry not served: %+v (hit=%v)", got, ok)
	}
}

// TestWrongIdentityQuarantined: a valid entry copied to the wrong address
// (or a hash-collision ghost) must not satisfy the key it did not record.
func TestWrongIdentityQuarantined(t *testing.T) {
	s := openTest(t, "")
	if err := s.Put("sim", "a", artifact{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(s.EntryPath("sim", "a"))
	other := s.EntryPath("sim", "b")
	os.MkdirAll(filepath.Dir(other), 0o755)
	os.WriteFile(other, data, 0o644)
	var got artifact
	if ok, err := s.Get("sim", "b", &got); ok || err != nil {
		t.Fatalf("misplaced entry served (hit=%v err=%v)", ok, err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want Corrupt=1", st)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := openTest(t, "")
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := []string{"x", "y", "z"}[i%3]
			if err := s.Put("sim", key, artifact{Name: key, Cycles: 42}); err != nil {
				t.Error(err)
			}
			var got artifact
			if ok, err := s.Get("sim", key, &got); err != nil {
				t.Error(err)
			} else if ok && got.Cycles != 42 {
				t.Errorf("got %+v", got)
			}
		}(i)
	}
	wg.Wait()
	var got artifact
	for _, key := range []string{"x", "y", "z"} {
		if ok, err := s.Get("sim", key, &got); !ok || err != nil {
			t.Fatalf("key %s: hit=%v err=%v", key, ok, err)
		}
	}
}

func TestDecodeEntryRejects(t *testing.T) {
	good, _ := json.Marshal(Entry{
		Format: EntryFormat, Kind: "k", Key: "key",
		Checksum: payloadChecksum([]byte(`{"a":1}`)), Payload: json.RawMessage(`{"a":1}`),
	})
	if _, err := DecodeEntry(good); err != nil {
		t.Fatalf("good entry rejected: %v", err)
	}
	bad := []string{
		``, `{}`, `[1,2]`, `{"format":1}`,
		`{"format":2,"kind":"k","key":"x","checksum":"00","payload":{}}`,
		`{"format":1,"kind":"k","key":"x","checksum":"00","payload":{"a":1}}`,
		`{"format":1,"kind":"","key":"x","checksum":"00","payload":{"a":1}}`,
	}
	for _, in := range bad {
		if _, err := DecodeEntry([]byte(in)); err == nil {
			t.Errorf("DecodeEntry(%q) accepted, want error", in)
		}
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open with empty dir succeeded")
	}
}
