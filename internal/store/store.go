// Package store is the content-addressed, on-disk artifact store under
// the experiment fabric: a durable layer beneath the experiments.Suite
// single-flight caches so compilations, simulations and oracle digests
// persist across processes, and the substrate the resumable sweep
// coordinator (internal/fabric) checks to skip completed cells.
//
// Durability contract:
//
//   - Every entry is written atomically: the envelope is serialized to a
//     private temp file in the store's tmp/ directory, fsynced, and
//     renamed into place. A crash (or SIGKILL) mid-write leaves at worst
//     an orphaned temp file, never a half-written entry under objects/.
//   - Every entry is integrity-checked on read: the envelope records a
//     SHA-256 checksum of the payload plus the kind and key it was stored
//     under. A torn, truncated or tampered entry — or one whose file name
//     does not match its recorded identity — is quarantined with a logged
//     cause and reported as a miss, never served and never a panic.
//   - Every entry records the build revision that produced it. An entry
//     from a different revision is stale: counted, reported as a miss,
//     and overwritten by the next Put. Simulation results are only
//     trusted from the exact code that computed them.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync/atomic"

	"ccr/internal/buildinfo"
)

// EntryFormat is the on-disk envelope format version. Entries with any
// other format value are quarantined (a future format is indistinguishable
// from corruption to an old reader, and must never be half-understood).
const EntryFormat = 1

// Entry is the on-disk envelope of one artifact.
type Entry struct {
	Format   int    `json:"format"`
	Kind     string `json:"kind"`
	Key      string `json:"key"`
	Revision string `json:"revision,omitempty"`
	// Checksum is the SHA-256 of the raw payload bytes, hex-encoded.
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// DecodeEntry parses and validates an entry envelope: well-formed JSON,
// the supported format, a non-empty kind and key, and a payload matching
// the recorded checksum. It returns an error — never panics — on any
// truncated, torn or garbage input (FuzzEntry pins this).
func DecodeEntry(data []byte) (*Entry, error) {
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("store: undecodable entry: %w", err)
	}
	if e.Format != EntryFormat {
		return nil, fmt.Errorf("store: entry format %d, want %d", e.Format, EntryFormat)
	}
	if e.Kind == "" || e.Key == "" {
		return nil, fmt.Errorf("store: entry missing kind or key")
	}
	if len(e.Payload) == 0 {
		return nil, fmt.Errorf("store: entry has empty payload")
	}
	if sum := payloadChecksum(e.Payload); sum != e.Checksum {
		return nil, fmt.Errorf("store: payload checksum %s, envelope says %s", sum, e.Checksum)
	}
	return &e, nil
}

func payloadChecksum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// Stats counts store outcomes since Open.
type Stats struct {
	// Puts counts entries written; Hits and Misses count Get outcomes
	// (every non-hit Get is a miss, whatever the cause).
	Puts   int64 `json:"puts"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Stale counts misses caused by a revision mismatch; Corrupt counts
	// misses that quarantined an undecodable or mislabeled entry. Both
	// are included in Misses.
	Stale   int64 `json:"stale,omitempty"`
	Corrupt int64 `json:"corrupt,omitempty"`
}

// Options configures Open.
type Options struct {
	// Dir is the store root; objects/, quarantine/ and tmp/ live under it.
	Dir string
	// Revision is the build identity stamped into every written entry and
	// required of every read one; entries from any other revision are
	// stale. An empty revision (unstamped build) only matches entries
	// written by unstamped builds.
	Revision string
	// Log receives one warning per quarantined entry (nil = slog.Default).
	Log *slog.Logger
}

// Store is a content-addressed artifact store rooted at one directory.
// All methods are safe for concurrent use by multiple goroutines and —
// thanks to atomic write-rename — by multiple processes sharing the root.
type Store struct {
	dir      string
	revision string
	log      *slog.Logger

	puts, hits, misses, stale, corrupt atomic.Int64
}

// Open creates (if needed) and opens the store rooted at opts.Dir.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	for _, sub := range []string{"objects", "quarantine", "tmp"} {
		if err := os.MkdirAll(filepath.Join(opts.Dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", opts.Dir, err)
		}
	}
	log := opts.Log
	if log == nil {
		log = slog.Default()
	}
	return &Store{dir: opts.Dir, revision: opts.Revision, log: log}, nil
}

// DefaultRevision derives the artifact-store revision from the running
// binary's build identity. Unstamped builds (tests, `go run`) fall back to
// module+go version — coarser, but still refusing artifacts from a
// different toolchain.
func DefaultRevision() string {
	bi := buildinfo.Get()
	if bi.Revision != "" {
		rev := bi.Revision
		if bi.Modified {
			rev += "+dirty"
		}
		return rev
	}
	mod := bi.Module
	if mod == "" {
		mod = "ccr"
	}
	return mod + "@" + bi.GoVersion
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// Revision returns the build identity entries are stamped with.
func (s *Store) Revision() string { return s.revision }

// Stats returns the outcome counters.
func (s *Store) Stats() Stats {
	return Stats{
		Puts: s.puts.Load(), Hits: s.hits.Load(), Misses: s.misses.Load(),
		Stale: s.stale.Load(), Corrupt: s.corrupt.Load(),
	}
}

// path maps (kind, key) to the entry's object path: content addressing by
// the SHA-256 of the identity, fanned out over 256 subdirectories.
func (s *Store) path(kind, key string) string {
	sum := sha256.Sum256([]byte(kind + "\x00" + key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, "objects", name[:2], name+".json")
}

// Put stores v under (kind, key), replacing any existing entry. The write
// is atomic: concurrent writers (goroutines or processes) racing on one
// key each rename a complete entry into place and the last one wins —
// with deterministic artifacts every racer writes identical bytes anyway.
func (s *Store) Put(kind, key string, v any) error {
	if kind == "" || key == "" {
		return fmt.Errorf("store: put with empty kind or key")
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: marshal %s/%s: %w", kind, key, err)
	}
	data, err := json.Marshal(Entry{
		Format: EntryFormat, Kind: kind, Key: key, Revision: s.revision,
		Checksum: payloadChecksum(payload), Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("store: marshal envelope %s/%s: %w", kind, key, err)
	}
	path := s.path(kind, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "put-*")
	if err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	// fsync before rename: the entry must be durable before it becomes
	// visible, or a crash could expose a named-but-empty artifact.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	s.puts.Add(1)
	return nil
}

// Get loads the entry stored under (kind, key) into out (a pointer for
// json.Unmarshal) and reports whether it was found. Corrupt entries are
// quarantined and stale-revision entries skipped; both are misses, and
// neither is an error — the caller recomputes, and a later Put overwrites.
func (s *Store) Get(kind, key string, out any) (bool, error) {
	path := s.path(kind, key)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		s.misses.Add(1)
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: get %s/%s: %w", kind, key, err)
	}
	e, err := DecodeEntry(data)
	if err != nil {
		s.quarantine(path, kind, key, err.Error())
		return false, nil
	}
	if e.Kind != kind || e.Key != key {
		// The file's recorded identity disagrees with its address — a
		// misplaced or tampered entry must never satisfy this key.
		s.quarantine(path, kind, key,
			fmt.Sprintf("entry identifies as %s/%s", e.Kind, e.Key))
		return false, nil
	}
	if e.Revision != s.revision {
		s.misses.Add(1)
		s.stale.Add(1)
		return false, nil
	}
	if err := json.Unmarshal(e.Payload, out); err != nil {
		// The payload passed its checksum but does not decode into the
		// caller's type: a schema drift within one revision. Quarantine —
		// recomputation owns the key now.
		s.quarantine(path, kind, key, fmt.Sprintf("payload undecodable: %v", err))
		return false, nil
	}
	s.hits.Add(1)
	return true, nil
}

// quarantine moves a bad entry file out of objects/ into quarantine/,
// writing a sidecar .cause file naming why, and counts the corruption.
// The entry's key is then free: the next Get misses and the next Put
// writes a fresh entry.
func (s *Store) quarantine(path, kind, key, cause string) {
	s.misses.Add(1)
	s.corrupt.Add(1)
	dst := filepath.Join(s.dir, "quarantine", filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		// Fall back to removal: a corrupt entry must not remain readable.
		os.Remove(path)
		dst = "(unpreserved: " + err.Error() + ")"
	} else {
		os.WriteFile(dst+".cause", []byte(fmt.Sprintf("kind: %s\nkey: %s\ncause: %s\n",
			kind, key, cause)), 0o644)
	}
	s.log.Warn("store: quarantined corrupt entry",
		"kind", kind, "key", key, "cause", cause, "moved_to", dst)
}

// Quarantined returns the number of entries currently in quarantine/.
func (s *Store) Quarantined() (int, error) {
	des, err := os.ReadDir(filepath.Join(s.dir, "quarantine"))
	if err != nil {
		return 0, err
	}
	n := 0
	for _, de := range des {
		if filepath.Ext(de.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}

// Len walks objects/ and returns the number of resident entries.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(filepath.Join(s.dir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}

// EntryPath returns the object path an entry for (kind, key) would occupy
// — the seam the chaos fault injector uses to tear or restamp real
// entries in durability tests.
func (s *Store) EntryPath(kind, key string) string { return s.path(kind, key) }
