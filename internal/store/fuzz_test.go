package store

import (
	"encoding/json"
	"testing"
)

// FuzzEntry pins the store's corruption contract at the parser level:
// DecodeEntry must classify every input — truncated, torn, bit-flipped or
// garbage — as either a valid entry or an error, and never panic. It is
// the durability mirror of the wire protocol's FuzzWireRoundTrip.
func FuzzEntry(f *testing.F) {
	valid, _ := json.Marshal(Entry{
		Format: EntryFormat, Kind: "ccr_sim", Key: "compress|train|e128.i8.a1.nm0",
		Revision: "abc123", Checksum: payloadChecksum([]byte(`{"cycles":99}`)),
		Payload: json.RawMessage(`{"cycles":99}`),
	})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])   // torn mid-write
	f.Add([]byte(`{}`))           // empty object
	f.Add([]byte(`{"format":1}`)) // missing fields
	f.Add([]byte(`[]`))           // wrong JSON shape
	f.Add([]byte("\x00\x01\x02")) // binary garbage
	f.Add([]byte(``))             // empty file
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEntry(data)
		if err != nil {
			return
		}
		// Anything accepted must satisfy the validated invariants.
		if e.Format != EntryFormat || e.Kind == "" || e.Key == "" {
			t.Fatalf("DecodeEntry accepted invalid entry: %+v", e)
		}
		if payloadChecksum(e.Payload) != e.Checksum {
			t.Fatal("DecodeEntry accepted checksum mismatch")
		}
		// Re-encoding an accepted entry must round-trip.
		out, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		e2, err := DecodeEntry(out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if e2.Kind != e.Kind || e2.Key != e.Key || e2.Checksum != e.Checksum {
			t.Fatal("entry round trip diverged")
		}
	})
}
