// Package gen carries the committed hot-region specializations for the
// built-in workloads: one ccrgen-generated file per workload, each
// registering natively compiled region bodies in internal/spec at init
// time. The emulator blank-imports this package, so the third execution
// tier is armed for the shipped workloads out of the box; programs whose
// run digests don't match (transformed, edited, or user-built programs)
// simply never bind them.
//
// Regeneration is deterministic — CI's gen-check step runs go generate
// and fails on any diff in *_gen.go files.
package gen

//go:generate go run ccr/cmd/ccrgen -out .
