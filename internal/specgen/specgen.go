// Package specgen selects hot control regions from a vprof run ranking
// and compiles them to specialized Go source — the generator behind
// cmd/ccrgen and the committed internal/specgen/gen files.
//
// A region is a set of straight-line runs of one function, closed under
// the runs' control successors up to a size budget: typically an inner
// loop (header, body, latch) or a hot straight block. Region bodies are
// emitted as register-renamed Go functions implementing the spec.Fn
// contract — constants (folded Lea bases, Ld/St bounds, immediates,
// branch targets) are baked in, registers become locals, and each run
// charges the instruction budget exactly as the batch tier would, so the
// careful tier's limit endgame and the oracle digests are unaffected.
// Every member run is pinned by its ir.RunKeys content digest, so a
// regenerated program that changed in any way simply unbinds the region.
package specgen

import (
	"sort"

	"ccr/internal/ir"
	"ccr/internal/vprof"
)

// Options bound region selection.
type Options struct {
	// TopK is how many ranked runs seed region growth (0: 24).
	TopK int
	// MaxInstrs bounds the member instructions per region (0: 512).
	MaxInstrs int
}

func (o Options) topK() int {
	if o.TopK <= 0 {
		return 24
	}
	return o.TopK
}

func (o Options) maxInstrs() int {
	if o.MaxInstrs <= 0 {
		return 512
	}
	return o.MaxInstrs
}

// Region is one selected specialization region.
type Region struct {
	Func *ir.DecodedFunc
	// Heads are the member run heads, ascending. Every member run
	// [h, RunEnd[h]] is fully contained in the region's generated body;
	// control leaving the member set exits the specialization.
	Heads []int32
	// HasStore reports whether any member instruction is a store.
	HasStore bool
}

// SelectRegions grows one region around each of the heaviest ranked runs
// (skipping seeds already absorbed by an earlier region) and returns them
// ordered by (function name, first head) for deterministic generation.
func SelectRegions(dec *ir.DecodedProgram, ranks []vprof.RunRank, opt Options) []Region {
	covered := map[ir.FuncID]map[int32]bool{}
	var out []Region
	seeds := ranks
	if k := opt.topK(); len(seeds) > k {
		seeds = seeds[:k]
	}
	for _, rk := range seeds {
		if int(rk.Func) >= len(dec.Funcs) {
			continue
		}
		if covered[rk.Func][rk.Head] {
			continue
		}
		df := dec.Funcs[rk.Func]
		heads, hasStore, ok := grow(df, rk.Head, opt.maxInstrs())
		if !ok {
			continue
		}
		cv := covered[rk.Func]
		if cv == nil {
			cv = map[int32]bool{}
			covered[rk.Func] = cv
		}
		for _, h := range heads {
			cv[h] = true
		}
		out = append(out, Region{Func: df, Heads: heads, HasStore: hasStore})
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Func.Fn.Name != b.Func.Fn.Name {
			return a.Func.Fn.Name < b.Func.Fn.Name
		}
		return a.Heads[0] < b.Heads[0]
	})
	return out
}

// grow BFS-closes the region from seed over run successors: each member
// run must be specializable (runEligible) and fit the instruction budget;
// successors that don't qualify become region exits. Fails only when the
// seed itself is not specializable.
func grow(df *ir.DecodedFunc, seed int32, maxInstrs int) (heads []int32, hasStore bool, ok bool) {
	if df.XCode == nil || df.RunKeys == nil || !runEligible(df, seed) {
		return nil, false, false
	}
	members := map[int32]bool{}
	total := 0
	queue := []int32{seed}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if members[h] {
			continue
		}
		end := df.RunEnd[h]
		n := int(end-h) + 1
		if total+n > maxInstrs {
			continue // becomes an exit
		}
		members[h] = true
		total += n
		var succs [2]int32
		ns := 0
		switch df.Code[end].Op {
		case ir.Jmp:
			succs[0] = df.Code[end].Target
			ns = 1
		default: // a conditional branch (runEligible admits nothing else)
			succs[0] = df.Code[end].Target
			succs[1] = end + 1
			ns = 2
		}
		for _, s := range succs[:ns] {
			if !members[s] && runEligible(df, s) {
				queue = append(queue, s)
			}
		}
	}
	for h := range members {
		heads = append(heads, h)
		for j := h; j <= df.RunEnd[h]; j++ {
			if df.Code[j].Op == ir.St {
				hasStore = true
			}
		}
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	return heads, hasStore, true
}

// runEligible reports whether the run headed at h can be a region member:
// it must end in a plain jump or conditional branch (never Call, Ret,
// Reuse, or the sentinel — those are observation or frame points the
// engine owns) and contain only ALU, move, and memory operations.
func runEligible(df *ir.DecodedFunc, h int32) bool {
	if h < 0 || int(h) >= len(df.Code)-1 {
		return false
	}
	end := df.RunEnd[h]
	if int(end) >= len(df.Code)-1 {
		return false // falls off the end
	}
	switch df.Code[end].Op {
	case ir.Jmp, ir.Beq, ir.Bne, ir.Blt, ir.Bge, ir.Ble, ir.Bgt:
	default:
		return false
	}
	for j := h; j <= end; j++ {
		op := df.Code[j].Op
		switch {
		case op == ir.Nop || op == ir.Mov || op == ir.MovI || op == ir.Lea:
		case op.IsBinaryALU():
		case op == ir.Ld || op == ir.St:
		case op == ir.Jmp || op.IsCondBranch():
			// Reuse is IsCondBranch but was excluded as the ender above
			// and can't appear mid-run; still, be explicit.
			if op == ir.Reuse {
				return false
			}
		default:
			return false
		}
	}
	return true
}
