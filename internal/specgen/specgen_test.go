package specgen_test

// The generator's output is part of the repository (internal/specgen/gen)
// and CI regenerates it, so these tests pin the two properties that make
// that workflow sound: generation is a pure function of the workload
// (byte-identical across runs), and the committed files are what the
// current generator produces.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ccr/internal/core"
	"ccr/internal/specgen"
	"ccr/internal/workloads"
)

// genFor regenerates one workload's specialization source with the same
// parameters cmd/ccrgen uses by default.
func genFor(t *testing.T, name string) []byte {
	t.Helper()
	b, err := workloads.Lookup(name, workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := core.ProfileRun(b.Prog, b.Train, 0)
	if err != nil {
		t.Fatalf("%s: profile: %v", name, err)
	}
	regions := specgen.SelectRegions(b.Prog.Decoded(), prof.TopRuns(24),
		specgen.Options{TopK: 24, MaxInstrs: 512})
	src, err := specgen.Generate("gen", b.Name, "tiny", regions)
	if err != nil {
		t.Fatalf("%s: generate: %v", name, err)
	}
	return src
}

// TestGenerateDeterministic: two independent profile+select+generate
// passes over a freshly built workload must agree to the byte.
func TestGenerateDeterministic(t *testing.T) {
	a := genFor(t, "m88ksim")
	b := genFor(t, "m88ksim")
	if !bytes.Equal(a, b) {
		t.Fatal("generation is not deterministic for m88ksim")
	}
	if len(a) == 0 {
		t.Fatal("m88ksim produced no specializations")
	}
}

// TestCommittedSpecsAreClean regenerates every workload and compares
// against the committed gen/*_gen.go files — the in-tree version of CI's
// gen-check step. Skipped under -short (CI's test job): the profiling
// pass over all workloads takes a few hundred milliseconds and CI checks
// the same property via go generate + git diff.
func TestCommittedSpecsAreClean(t *testing.T) {
	if testing.Short() {
		t.Skip("regeneration sweep skipped in -short (CI gen-check covers it)")
	}
	for _, name := range workloads.Names() {
		src := genFor(t, name)
		path := filepath.Join("gen", name+"_gen.go")
		committed, err := os.ReadFile(path)
		if src == nil {
			if err == nil {
				t.Errorf("%s: no regions generated but %s is committed", name, path)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: committed file missing: %v (run go generate ./internal/specgen/gen)", name, err)
			continue
		}
		if !bytes.Equal(src, committed) {
			t.Errorf("%s: committed %s is stale (run go generate ./internal/specgen/gen)", name, path)
		}
	}
}
