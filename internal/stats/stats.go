// Package stats provides the small numeric and formatting helpers the
// experiment drivers share.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean (0 for empty input; non-positive
// values are skipped).
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Pct renders a fraction as a percentage string.
func Pct(x float64) string { return fmt.Sprintf("%5.1f%%", 100*x) }

// Table renders an aligned text table: header plus rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if i == 0 {
				sb.WriteString(c)
				sb.WriteString(strings.Repeat(" ", pad))
			} else {
				sb.WriteString(strings.Repeat(" ", pad))
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}
