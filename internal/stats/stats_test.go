package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("mean = %f", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean")
	}
	got := GeoMean([]float64{2, 8})
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean = %f, want 4", got)
	}
	// Non-positive values are skipped.
	got = GeoMean([]float64{-1, 0, 2, 8})
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean with junk = %f, want 4", got)
	}
}

// Property: geomean ≤ mean for positive inputs (AM–GM inequality).
func TestAMGMInequality(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)/100 + 0.01
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.305); got != " 30.5%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := Table{Header: []string{"name", "value"}}
	tb.Add("a", "1")
	tb.Add("longer-name", "123456")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All rows render at the same width.
	w := len(lines[2])
	if len(lines[3]) != w {
		t.Fatalf("misaligned rows:\n%s", out)
	}
	if !strings.Contains(lines[3], "longer-name") || !strings.HasSuffix(lines[3], "123456") {
		t.Fatalf("row content:\n%s", out)
	}
}
