// Package spec is the hot-region specialization registry: the table of
// natively-compiled straight-line region bodies that the emulator's third
// execution tier consults when it binds a decoded program.
//
// A specialization is a plain Go function implementing a whole control
// region (one or more straight-line runs, typically a hot loop) of some
// emulated function. Generated code (internal/specgen, cmd/ccrgen)
// registers regions from init functions; the engine binds a region to a
// decoded function only when every entry's content digest matches the
// function's ir.DecodedFunc.RunKeys, so a relink, an edited instruction,
// or a moved memory object silently unbinds every stale specialization —
// there is no way to run a spec against code it was not generated from.
package spec

import (
	"sort"
	"sync"

	"ccr/internal/ir"
)

// Fn executes a specialized region.
//
// Contract (mirrors the batch tier's per-run accounting exactly):
//   - pc is a flat PC of the bound function and must be one of the
//     region's entries; rem is the remaining dynamic-instruction budget.
//   - At each run entry [h, RunEnd[h]] the body first checks the run's
//     full cost k against rem: if rem < k it stops with npc = h (the
//     careful tier then owns the limit endgame); otherwise it charges
//     rem -= k, increments cnt[h], and executes the run.
//   - taken counts conditional branches taken inside the region
//     (unconditional jumps never count, matching the interpreter).
//   - fault == -1: normal exit, npc is the next PC outside the region
//     (or an entry whose run no longer fits the budget).
//     fault == -2: pc was not a known entry; no state was touched and
//     the caller falls back to the batch tier.
//     fault >= 0: a Ld/St bounds fault at flat PC fault; the faulting
//     run is charged and all register writes up to the fault are in rp
//     (the engine reconstructs the message and refunds the tail).
//   - All registers the region writes are stored back to rp on every
//     exit path before returning.
type Fn func(rp *[ir.RegFileCap]int64, mem []int64, cnt []int64, rem int64, pc int32) (npc int32, remOut int64, taken int64, fault int32)

// HeadKey identifies one region entry: a flat PC and the content digest
// of the run headed there (ir.DecodedFunc.RunKeys[PC]).
type HeadKey struct {
	PC  int32
	Key uint64
}

// Region is one registered specialization.
type Region struct {
	// Name identifies the region in diagnostics (workload, function and
	// entry PC, e.g. "m88ksim/mix@2").
	Name string
	// Entries are the flat PCs at which the region may be entered, each
	// pinned by its run digest. A region binds to a decoded function only
	// if every entry matches, which transitively pins every member run
	// (regions are closed: member runs only reach other entries or exits).
	Entries []HeadKey
	// HasStore reports whether any member run contains a store; the
	// engine then refuses to enter the region while function-level memo
	// markers are pending (stores must drop them synchronously).
	HasStore bool
	// Fn is the compiled region body.
	Fn Fn
}

var (
	mu      sync.RWMutex
	regions []Region
)

// Register adds a region to the registry. Generated code calls this from
// init; when two regions claim the same entry of the same function, the
// one later in Regions() order (name-sorted) wins at binding time.
func Register(r Region) {
	mu.Lock()
	defer mu.Unlock()
	regions = append(regions, r)
}

// Unregister removes every region with the given name and reports whether
// any was removed. Machines bound before the call keep their bindings;
// new machines will not see the region (tests use this to pin the
// invalidation discipline).
func Unregister(name string) bool {
	mu.Lock()
	defer mu.Unlock()
	kept := regions[:0]
	removed := false
	for _, r := range regions {
		if r.Name == name {
			removed = true
			continue
		}
		kept = append(kept, r)
	}
	regions = kept
	return removed
}

// Regions returns a stable snapshot of the registry, sorted by name with
// registration order as the tiebreak.
func Regions() []Region {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Region, len(regions))
	copy(out, regions)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
