package uarch

import (
	"ccr/internal/emu"
	"ccr/internal/ir"
)

// This file adds a dynamically scheduled (out-of-order) variant of the
// timing model. §3.3 notes the CCR mechanism "contains relevant material
// applicable to a generic dynamically scheduled superscalar processor";
// this model lets the reproduction ask how much of the reuse benefit
// survives when the machine can already extract ILP across dependences:
// reuse still eliminates work (fetch bandwidth, functional units, load
// ports) but no longer shortcuts latency the scheduler could hide.
//
// The model is trace-driven: each instruction is fetched in order at up to
// IssueWidth per cycle, dispatches into an idealized window bounded only
// by the reorder buffer, issues when its operands and a functional unit
// are ready (possibly out of order), and retires in order. Branch
// mispredictions redirect fetch after the branch issues.

// oooState holds the out-of-order scheduling structures.
type oooState struct {
	// fetchHead is the cycle the next instruction can fetch.
	fetchHead int64
	// fetched counts instructions fetched in the fetchHead cycle.
	fetched int

	// retire ring: completion cycles of the last ROBSize instructions,
	// in fetch order; fetch stalls until the instruction leaving the
	// window has retired. lastRetire enforces in-order retirement.
	retireAt   []int64
	robIdx     int
	lastRetire int64

	// fuWindow approximates per-cycle issue-slot and unit occupancy for
	// out-of-order issue (issue cycles are not monotone, so the in-order
	// single-bucket trick does not apply).
	fuTag   []int64
	fuSlots []int
	fuUsed  [][4]int
}

const fuWindowSize = 1024

func newOOOState(robSize int) *oooState {
	if robSize <= 0 {
		robSize = 64
	}
	return &oooState{
		retireAt: make([]int64, robSize),
		fuTag:    make([]int64, fuWindowSize),
		fuSlots:  make([]int, fuWindowSize),
		fuUsed:   make([][4]int, fuWindowSize),
	}
}

// issueAtOOO finds the first cycle ≥ want with a free issue slot and unit.
func (s *Simulator) issueAtOOO(want int64, fu ir.FUClass) int64 {
	o := s.ooo
	for c := want; ; c++ {
		b := c % fuWindowSize
		if o.fuTag[b] != c {
			o.fuTag[b] = c
			o.fuSlots[b] = 0
			o.fuUsed[b] = [4]int{}
		}
		limit := s.fuLimit(fu)
		if o.fuSlots[b] < s.cfg.IssueWidth && (fu == ir.FUNone || o.fuUsed[b][fu] < limit) {
			o.fuSlots[b]++
			if fu != ir.FUNone {
				o.fuUsed[b][fu]++
			}
			return c
		}
		s.stats.StallFU++
	}
}

// oooFetch returns the fetch cycle for the next instruction, honouring
// fetch bandwidth, the I-cache and the reorder-buffer bound.
func (s *Simulator) oooFetch(pc int64) int64 {
	o := s.ooo
	// ROB bound: the slot we are about to reuse must have retired.
	if oldest := o.retireAt[o.robIdx]; oldest > o.fetchHead {
		o.fetchHead = oldest
		o.fetched = 0
	}
	if !s.icache.access(pc) {
		s.stats.ICacheMisses++
		s.stats.StallICache += int64(s.cfg.MissPenalty)
		o.fetchHead += int64(s.cfg.MissPenalty)
		o.fetched = 0
	}
	if o.fetched >= s.cfg.IssueWidth {
		o.fetchHead++
		o.fetched = 0
	}
	o.fetched++
	return o.fetchHead
}

// oooRetire records the instruction's completion in fetch order.
func (s *Simulator) oooRetire(done int64) {
	o := s.ooo
	if done < o.lastRetire {
		done = o.lastRetire
	}
	o.lastRetire = done
	o.retireAt[o.robIdx] = done
	o.robIdx = (o.robIdx + 1) % len(o.retireAt)
	if done > s.stats.Cycles {
		s.stats.Cycles = done
	}
}

// observeOOO is the out-of-order counterpart of observe.
func (s *Simulator) observeOOO(ev *emu.Event) {
	cfg := &s.cfg
	in := ev.Instr
	s.stats.Instrs++
	o := s.ooo

	if s.objVer != nil && in.Op == ir.St && in.Mem != ir.NoMem {
		s.objVer[in.Mem]++
	}

	fetch := s.oooFetch(ev.PC)

	if in.Op == ir.Reuse {
		s.observeReuseOOO(ev, fetch)
		return
	}

	// Operand readiness (dispatch waits for sources, not program order).
	ready := fetch + 1
	switch in.Op {
	case ir.Call:
		for _, a := range in.Args {
			if r := s.ready(a); r > ready {
				ready = r
			}
		}
	default:
		if r := s.ready(in.Src1); r > ready {
			ready = r
		}
		if in.Src2 != ir.NoReg {
			if r := s.ready(in.Src2); r > ready {
				ready = r
			}
		}
	}

	issue := s.issueAtOOO(ready, in.Op.FU())
	lat := int64(in.Op.Latency())
	done := issue + lat

	switch in.Op {
	case ir.Ld:
		s.stats.DCacheAccess++
		if !s.dcache.access(ev.Addr * 8) {
			s.stats.DCacheMisses++
			s.stats.StallDCache += int64(cfg.MissPenalty)
			done += int64(cfg.MissPenalty)
		}
		s.setReady(in.Dest, done)
	case ir.St:
		s.stats.DCacheAccess++
		if !s.dcache.access(ev.Addr * 8) {
			s.stats.DCacheMisses++
		}
	case ir.Jmp:
		// Direct jumps redirect at decode; a one-cycle bubble.
		o.fetchHead = fetch + 1 + int64(cfg.TakenBubble)
		o.fetched = 0
	case ir.Beq, ir.Bne, ir.Blt, ir.Bge, ir.Ble, ir.Bgt:
		s.stats.CondBranches++
		predTaken, predTarget := s.btb.predict(ev.PC)
		correct := predTaken == ev.Taken && (!ev.Taken || predTarget == ev.TargetPC)
		s.btb.update(ev.PC, ev.Taken, ev.TargetPC)
		if !correct {
			s.stats.Mispredicts++
			s.stats.StallBranch += int64(cfg.MispredictPenalty)
			// Fetch resumes only after the branch resolves.
			o.fetchHead = done + int64(cfg.MispredictPenalty)
			o.fetched = 0
		}
	case ir.Call:
		o.fetchHead = fetch + 1 + int64(cfg.TakenBubble)
		o.fetched = 0
		nf := simFrame{ready: make([]int64, 16+len(in.Args)), pendingRet: in.Dest}
		for i := range in.Args {
			nf.setParam(ir.Reg(i+1), issue+1)
		}
		s.frames = append(s.frames, nf)
	case ir.Ret:
		o.fetchHead = fetch + 1 + int64(cfg.TakenBubble)
		o.fetched = 0
		retReady := issue + 1
		if in.Src1 != ir.NoReg {
			if r := s.ready(in.Src1); r > retReady {
				retReady = r
			}
		}
		dest := s.frame().pendingRet
		if len(s.frames) > 1 {
			s.frames = s.frames[:len(s.frames)-1]
			if dest != ir.NoReg {
				s.setReady(dest, retReady)
			} else if retReady > s.frame().frameMax {
				s.frame().frameMax = retReady
			}
		}
	case ir.Inval:
	default:
		if d := in.Def(); d != ir.NoReg {
			s.setReady(d, done)
		}
	}
	s.oooRetire(done)
}

// observeReuseOOO models the reuse pipeline tasks on the dynamically
// scheduled machine.
func (s *Simulator) observeReuseOOO(ev *emu.Event, fetch int64) {
	cfg := &s.cfg
	o := s.ooo
	want := fetch + 1
	if rg := s.prog.Region(ev.Instr.Region); rg != nil {
		for _, r := range rg.Inputs {
			if rd := s.ready(r); rd > want {
				want = rd
			}
		}
	}
	issue := s.issueAtOOO(want, ir.FUBranch)
	validate := int64(cfg.ReuseValidateCycles)
	if cfg.SpeculativeValidation {
		validate = 0
	}
	access := issue + int64(cfg.ReuseAccessCycles) + validate

	if ev.ReuseHit {
		s.stats.ReuseHits++
		s.stats.ReuseInstrs += int64(ev.ReusedInstrs)
		commitCycles := int64(0)
		if ev.ReuseOut > 0 {
			commitCycles = int64((ev.ReuseOut + cfg.ReuseCommitWidth - 1) / cfg.ReuseCommitWidth)
		}
		done := access + commitCycles
		s.stats.ReuseCycles += done - issue
		if rg := s.prog.Region(ev.Instr.Region); rg != nil {
			for _, out := range rg.Outputs {
				s.setReady(out, done)
			}
		}
		o.fetchHead = fetch + 1 + int64(cfg.TakenBubble)
		o.fetched = 0
		s.oooRetire(done)
	} else {
		s.stats.ReuseMisses++
		s.stats.MemoizedRuns++
		penalty := int64(cfg.ReuseFailPenalty)
		if cfg.SpeculativeValidation {
			penalty++
		}
		s.stats.StallReuse += penalty
		o.fetchHead = access + penalty
		o.fetched = 0
		s.oooRetire(access)
	}
}
