package uarch

// cache is a direct-mapped cache model: it tracks only hit/miss, since the
// timing model charges a flat miss penalty.
type cache struct {
	lineShift uint
	mask      int64
	tags      []int64
	valid     []bool
}

func newCache(sizeBytes, lineBytes int) *cache {
	lines := sizeBytes / lineBytes
	if lines < 1 {
		lines = 1
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &cache{
		lineShift: shift,
		mask:      int64(lines - 1),
		tags:      make([]int64, lines),
		valid:     make([]bool, lines),
	}
}

// access looks up the byte address, allocating the line; it reports a hit.
func (c *cache) access(addr int64) bool {
	line := addr >> c.lineShift
	idx := line & c.mask
	if c.valid[idx] && c.tags[idx] == line {
		return true
	}
	c.valid[idx] = true
	c.tags[idx] = line
	return false
}

// btb is the branch target buffer: direct-mapped 2-bit saturating counters
// with a stored target for direction-and-target prediction.
type btb struct {
	mask    int64
	tags    []int64
	ctr     []uint8
	targets []int64
	valid   []bool
}

func newBTB(entries int) *btb {
	if entries < 1 {
		entries = 1
	}
	return &btb{
		mask:    int64(entries - 1),
		tags:    make([]int64, entries),
		ctr:     make([]uint8, entries),
		targets: make([]int64, entries),
		valid:   make([]bool, entries),
	}
}

// predict returns the predicted direction and target for the branch at pc.
// Unknown branches predict not-taken (fall through).
func (b *btb) predict(pc int64) (taken bool, target int64) {
	idx := (pc >> 2) & b.mask
	if !b.valid[idx] || b.tags[idx] != pc {
		return false, 0
	}
	return b.ctr[idx] >= 2, b.targets[idx]
}

// update trains the entry with the actual outcome.
func (b *btb) update(pc int64, taken bool, target int64) {
	idx := (pc >> 2) & b.mask
	if !b.valid[idx] || b.tags[idx] != pc {
		b.valid[idx] = true
		b.tags[idx] = pc
		if taken {
			b.ctr[idx] = 2
		} else {
			b.ctr[idx] = 1
		}
		b.targets[idx] = target
		return
	}
	if taken {
		if b.ctr[idx] < 3 {
			b.ctr[idx]++
		}
		b.targets[idx] = target
	} else if b.ctr[idx] > 0 {
		b.ctr[idx]--
	}
}
