package uarch

import (
	"testing"

	"ccr/internal/emu"
	"ccr/internal/ir"
)

// timeWith runs p under a given configuration.
func timeWith(t *testing.T, cfg Config, p *ir.Program, args ...int64) (Stats, int64) {
	t.Helper()
	m := emu.New(p)
	sim := NewSimulator(cfg, p)
	m.Trace = sim.Tracer()
	res, err := m.Run(args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return sim.Stats(), res
}

// buildRepetitiveKernel: main(n) repeatedly computes a multiply chain on a
// 4-value input. The chain sits in its own basic block whose only
// upward-exposed input is the narrow selector, so instruction-, block- and
// region-level reuse can all capture it; the loop bookkeeping lives in
// separate blocks.
func buildRepetitiveKernel(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("rk")
	f := pb.Func("main", 1)
	e := f.NewBlock()
	h := f.NewBlock()
	bSel := f.NewBlock()
	bKern := f.NewBlock()
	bAcc := f.NewBlock()
	x := f.NewBlock()
	k, acc, sel, v := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(acc, 0)
	h.Bge(k, f.Param(0), x.ID())
	bSel.AndI(sel, k, 3)
	bSel.Nop() // keep the selector block separate from the kernel block
	bKern.MulI(v, sel, 3)
	bKern.MulI(v, v, 5)
	bKern.MulI(v, v, 7)
	bKern.AddI(v, v, 9)
	bKern.XorI(v, v, 1)
	bKern.Nop()
	bAcc.Add(acc, acc, v)
	bAcc.AddI(k, k, 1)
	bAcc.Jmp(h.ID())
	x.Ret(acc)
	return ir.MustVerify(pb.Build())
}

func TestInstrReuseBaselineSpeedsUp(t *testing.T) {
	p := buildRepetitiveKernel(t)
	base, baseRes := timeWith(t, DefaultConfig(), p, 2048)
	cfg := DefaultConfig()
	cfg.InstrReuse = true
	rb, rbRes := timeWith(t, cfg, p, 2048)
	if rbRes != baseRes {
		t.Fatalf("instruction reuse changed the result: %d vs %d", rbRes, baseRes)
	}
	if rb.InstrReuseHits == 0 {
		t.Fatal("no instruction-reuse hits on a repetitive kernel")
	}
	if rb.Cycles >= base.Cycles {
		t.Fatalf("instruction reuse did not help: %d vs %d cycles", rb.Cycles, base.Cycles)
	}
}

func TestBlockReuseBaselineSpeedsUp(t *testing.T) {
	p := buildRepetitiveKernel(t)
	base, baseRes := timeWith(t, DefaultConfig(), p, 2048)
	cfg := DefaultConfig()
	cfg.BlockReuse = true
	br, brRes := timeWith(t, cfg, p, 2048)
	if brRes != baseRes {
		t.Fatalf("block reuse changed the result: %d vs %d", brRes, baseRes)
	}
	if br.BlockReuseHits == 0 {
		t.Fatal("no block-reuse hits")
	}
	if br.Cycles >= base.Cycles {
		t.Fatalf("block reuse did not help: %d vs %d cycles", br.Cycles, base.Cycles)
	}
	// The kernel block (b2) has 7 instructions; hits skip all of them.
	perHit := float64(br.BlockReuseInstrs) / float64(br.BlockReuseHits)
	if perHit < 6 {
		t.Fatalf("reused %f instructions per block hit", perHit)
	}
}

// TestBaselineLoadInvalidation: stores must invalidate load-carrying
// entries in both baselines.
func TestBaselineLoadInvalidation(t *testing.T) {
	pb := ir.NewProgramBuilder("bl")
	tab := pb.Object("tab", 4, []int64{5, 6, 7, 8})
	f := pb.Func("main", 1)
	e := f.NewBlock()
	h := f.NewBlock()
	b := f.NewBlock()
	x := f.NewBlock()
	k, acc, sel, v, p0 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(acc, 0)
	h.Bge(k, f.Param(0), x.ID())
	b.AndI(sel, k, 3)
	b.LeaIdx(p0, tab, sel, 0)
	b.Ld(v, p0, 0, tab)
	b.Add(acc, acc, v)
	b.Lea(p0, tab, 2)
	b.St(p0, 0, k, tab) // mutate every iteration
	b.AddI(k, k, 1)
	b.Jmp(h.ID())
	x.Ret(acc)
	p := ir.MustVerify(pb.Build())
	for _, mode := range []string{"instr", "block"} {
		cfg := DefaultConfig()
		if mode == "instr" {
			cfg.InstrReuse = true
		} else {
			cfg.BlockReuse = true
		}
		_, got := timeWith(t, cfg, p, 256)
		_, want := timeWith(t, DefaultConfig(), p, 256)
		if got != want {
			t.Fatalf("%s reuse changed results under stores: %d vs %d", mode, got, want)
		}
	}
}

func TestBlockReuseIneligibleBlocks(t *testing.T) {
	// Blocks containing stores or calls must never be block-reused.
	pb := ir.NewProgramBuilder("in")
	buf := pb.Object("buf", 4, nil)
	f := pb.Func("main", 1)
	e := f.NewBlock()
	h := f.NewBlock()
	b := f.NewBlock()
	x := f.NewBlock()
	k, p0 := f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	h.Bge(k, f.Param(0), x.ID())
	b.Lea(p0, buf, 0)
	b.St(p0, 0, k, buf)
	b.AddI(k, k, 1)
	b.Jmp(h.ID())
	x.Ret(k)
	p := ir.MustVerify(pb.Build())
	cfg := DefaultConfig()
	cfg.BlockReuse = true
	st, _ := timeWith(t, cfg, p, 128)
	if st.BlockReuseHits != 0 {
		t.Fatalf("store-carrying block reused %d times", st.BlockReuseHits)
	}
}
