package uarch_test

import (
	"testing"

	"ccr/internal/core"
	"ccr/internal/ir"
)

// TestReuseHitTiming: a reuse hit costs only a few cycles while the
// replaced region body costs many — measured through the full pipeline.
func TestReuseTimingThroughPipeline(t *testing.T) {
	// Build a tiny benchmark with a hot reusable function body.
	pb := ir.NewProgramBuilder("rt")
	tab := pb.ReadOnlyObject("tab", []int64{5, 9, 2, 7})
	g := pb.Func("kern", 1)
	gb := g.NewBlock()
	ge := g.NewBlock()
	x, b2 := g.NewReg(), g.NewReg()
	gb.AndI(x, g.Param(0), 3)
	gb.Lea(b2, tab, 0)
	gb.Add(b2, b2, x)
	gb.Ld(x, b2, 0, tab)
	gb.MulI(x, x, 3)
	gb.MulI(x, x, 5)
	gb.MulI(x, x, 7)
	gb.Jmp(ge.ID())
	ge.Ret(x)
	f := pb.Func("main", 1)
	e := f.NewBlock()
	h := f.NewBlock()
	bo := f.NewBlock()
	ex := f.NewBlock()
	i, s, r, narrowed := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(i, 0)
	e.MovI(s, 0)
	h.BgeI(i, 4096, ex.ID())
	bo.AndI(narrowed, i, 3)
	bo.Call(r, g.ID(), narrowed)
	bo.Add(s, s, r)
	bo.AddI(i, i, 1)
	bo.Jmp(h.ID())
	ex.Ret(s)
	base := pb.Build()
	ir.MustVerify(base)

	opts := core.DefaultOptions()
	cr, err := core.Compile(base, []int64{0}, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	baseRes, err := core.Simulate(base, nil, opts.Uarch, []int64{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ccrRes, err := core.Simulate(cr.Prog, &opts.CRB, opts.Uarch, []int64{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ccrRes.Result != baseRes.Result {
		t.Fatalf("mismatch: %d vs %d", ccrRes.Result, baseRes.Result)
	}
	// The kernel has 4 recurring inputs (i&3): after warmup every call is
	// a reuse hit, replacing three dependent multiplies (9 cycles) and a
	// load with a ~4-cycle reuse — a clear win.
	if ccrRes.Cycles >= baseRes.Cycles {
		t.Fatalf("expected speedup: base %d, ccr %d cycles", baseRes.Cycles, ccrRes.Cycles)
	}
	if ccrRes.Uarch.ReuseHits < 4000 {
		t.Fatalf("reuse hits = %d", ccrRes.Uarch.ReuseHits)
	}
}
