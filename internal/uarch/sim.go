package uarch

import (
	"ccr/internal/emu"
	"ccr/internal/ir"
)

// Simulator is the in-order timing model. Install Tracer() on an
// emu.Machine, run the program, then read Stats(). One Simulator models one
// run.
type Simulator struct {
	cfg  Config
	prog *ir.Program

	icache *cache
	dcache *cache
	btb    *btb

	// head is the earliest cycle the next instruction may issue
	// (the in-order constraint).
	head int64
	// slot bookkeeping for the cycle currently being filled.
	curCycle  int64
	slotsUsed int
	fuUsed    [4]int // indexed by ir.FUClass for FUInt..FUBranch

	// regReady tracks per-frame register readiness; frames parallels the
	// emulator's call stack. frameMax is the latest write-back in the
	// frame, used for the reuse-instruction interlock (§3.3).
	frames []simFrame

	// Reuse-baseline state (nil / zero unless enabled in Config).
	irb    *instrRB
	brb    *blockRB
	bskip  blockSkip
	objVer []uint64

	// ooo holds the dynamically scheduled machine's state (nil for the
	// paper's in-order model).
	ooo *oooState

	stats Stats
}

type simFrame struct {
	ready    []int64
	frameMax int64
	// pendingRet is the caller register that receives the callee result.
	pendingRet ir.Reg
}

// NewSimulator builds a timing model of the given machine configuration
// for one run of prog (the region table resolves reuse live-out sets).
func NewSimulator(cfg Config, prog *ir.Program) *Simulator {
	s := &Simulator{
		cfg:    cfg,
		prog:   prog,
		icache: newCache(cfg.ICacheBytes, cfg.LineBytes),
		dcache: newCache(cfg.DCacheBytes, cfg.LineBytes),
		btb:    newBTB(cfg.BTBEntries),
	}
	s.frames = append(s.frames, simFrame{ready: make([]int64, 256)})
	if cfg.InstrReuse {
		n := cfg.InstrRBEntries
		if n <= 0 {
			n = 1024
		}
		s.irb = newInstrRB(n)
	}
	if cfg.BlockReuse {
		entries, insts := cfg.BlockRBEntries, cfg.BlockRBInstances
		if entries <= 0 {
			entries = 128
		}
		if insts <= 0 {
			insts = 8
		}
		s.brb = newBlockRB(prog, entries, insts)
	}
	if cfg.InstrReuse || cfg.BlockReuse {
		s.objVer = make([]uint64, len(prog.Objects))
	}
	if cfg.OutOfOrder {
		s.ooo = newOOOState(cfg.ROBSize)
	}
	return s
}

// Tracer returns the event hook to install on an emu.Machine.
func (s *Simulator) Tracer() emu.Tracer {
	if s.ooo != nil {
		return s.observeOOO
	}
	return s.observe
}

// Stats returns the accumulated timing counters; Cycles is the current
// completion time.
func (s *Simulator) Stats() Stats {
	st := s.stats
	if s.ooo != nil {
		if s.ooo.lastRetire > st.Cycles {
			st.Cycles = s.ooo.lastRetire
		}
		return st
	}
	st.Cycles = s.head
	if len(s.frames) > 0 && s.frames[len(s.frames)-1].frameMax > st.Cycles {
		st.Cycles = s.frames[len(s.frames)-1].frameMax
	}
	return st
}

// CycleCount returns the current completion-time estimate — the same
// value Stats().Cycles reports — for use as a telemetry timestamp clock.
func (s *Simulator) CycleCount() int64 { return s.Stats().Cycles }

func (s *Simulator) frame() *simFrame { return &s.frames[len(s.frames)-1] }

func (s *Simulator) ready(r ir.Reg) int64 {
	if r == ir.NoReg {
		return 0
	}
	f := s.frame()
	if int(r) >= len(f.ready) {
		return 0
	}
	return f.ready[r]
}

func (s *Simulator) setReady(r ir.Reg, cyc int64) {
	if r == ir.NoReg {
		return
	}
	f := s.frame()
	for int(r) >= len(f.ready) {
		f.ready = append(f.ready, make([]int64, len(f.ready)+16)...)
	}
	f.ready[r] = cyc
	if cyc > f.frameMax {
		f.frameMax = cyc
	}
}

// issueAt finds the first cycle ≥ want with a free issue slot and a free
// unit of class fu, charging FU-stall cycles for the wait.
func (s *Simulator) issueAt(want int64, fu ir.FUClass) int64 {
	if want < s.head {
		want = s.head
	}
	if want > s.curCycle {
		s.curCycle = want
		s.slotsUsed = 0
		s.fuUsed = [4]int{}
	}
	for {
		limit := s.fuLimit(fu)
		if s.slotsUsed < s.cfg.IssueWidth && (fu == ir.FUNone || s.fuUsed[fu] < limit) {
			s.slotsUsed++
			if fu != ir.FUNone {
				s.fuUsed[fu]++
			}
			return s.curCycle
		}
		s.curCycle++
		s.slotsUsed = 0
		s.fuUsed = [4]int{}
		s.stats.StallFU++
	}
}

func (s *Simulator) fuLimit(fu ir.FUClass) int {
	switch fu {
	case ir.FUInt:
		return s.cfg.IntALUs
	case ir.FUMem:
		return s.cfg.MemPorts
	case ir.FUFloat:
		return s.cfg.FPUnits
	case ir.FUBranch:
		return s.cfg.BranchUnits
	}
	return s.cfg.IssueWidth
}

func (s *Simulator) observe(ev *emu.Event) {
	cfg := &s.cfg
	in := ev.Instr
	s.stats.Instrs++

	// Object-version tracking for the reuse baselines.
	if s.objVer != nil && in.Op == ir.St && in.Mem != ir.NoMem {
		s.objVer[in.Mem]++
	}

	// Block-level reuse baseline: a reused block's instructions cost
	// nothing beyond the lookup-and-commit charged at the block start.
	if s.brb != nil && s.observeBlockReuse(ev, s.head) {
		return
	}

	// Instruction fetch: an I-cache miss stalls the front end.
	fetch := s.head
	if !s.icache.access(ev.PC) {
		s.stats.ICacheMisses++
		s.stats.StallICache += int64(cfg.MissPenalty)
		fetch += int64(cfg.MissPenalty)
	}

	if in.Op == ir.Reuse {
		s.observeReuse(ev, fetch)
		return
	}

	// Instruction-level reuse baseline.
	if s.irb != nil && s.observeInstrReuse(ev, fetch) {
		return
	}

	// Operand readiness.
	want := fetch
	dep := false
	switch in.Op {
	case ir.Call:
		for _, a := range in.Args {
			if r := s.ready(a); r > want {
				want, dep = r, true
			}
		}
	default:
		if r := s.ready(in.Src1); r > want {
			want, dep = r, true
		}
		if in.Src2 != ir.NoReg {
			if r := s.ready(in.Src2); r > want {
				want, dep = r, true
			}
		}
	}
	if dep {
		s.stats.StallDep += want - fetch
	}

	issue := s.issueAt(want, in.Op.FU())
	lat := int64(in.Op.Latency())

	switch in.Op {
	case ir.Ld:
		s.stats.DCacheAccess++
		if !s.dcache.access(ev.Addr * 8) {
			s.stats.DCacheMisses++
			s.stats.StallDCache += int64(cfg.MissPenalty)
			lat += int64(cfg.MissPenalty)
		}
		s.setReady(in.Dest, issue+lat)
	case ir.St:
		// Write-allocate, store-buffered: misses allocate without
		// stalling the pipeline.
		s.stats.DCacheAccess++
		if !s.dcache.access(ev.Addr * 8) {
			s.stats.DCacheMisses++
		}
	case ir.Jmp:
		s.redirect(issue, int64(cfg.TakenBubble))
	case ir.Beq, ir.Bne, ir.Blt, ir.Bge, ir.Ble, ir.Bgt:
		s.stats.CondBranches++
		predTaken, predTarget := s.btb.predict(ev.PC)
		correct := predTaken == ev.Taken && (!ev.Taken || predTarget == ev.TargetPC)
		s.btb.update(ev.PC, ev.Taken, ev.TargetPC)
		if !correct {
			s.stats.Mispredicts++
			s.stats.StallBranch += int64(cfg.MispredictPenalty)
			s.redirect(issue, int64(cfg.MispredictPenalty))
		} else if ev.Taken {
			s.stats.StallBranch += int64(cfg.TakenBubble)
			s.redirect(issue, int64(cfg.TakenBubble))
		}
	case ir.Call:
		s.redirect(issue, int64(cfg.TakenBubble))
		// Push the callee frame: parameters become ready one cycle
		// after the call issues.
		nf := simFrame{ready: make([]int64, 16+len(in.Args)), pendingRet: in.Dest}
		for i := range in.Args {
			nf.setParam(ir.Reg(i+1), issue+1)
		}
		s.frames = append(s.frames, nf)
	case ir.Ret:
		s.redirect(issue, int64(cfg.TakenBubble))
		retReady := issue + 1
		if in.Src1 != ir.NoReg {
			if r := s.ready(in.Src1); r > retReady {
				retReady = r
			}
		}
		dest := s.frame().pendingRet
		if len(s.frames) > 1 {
			s.frames = s.frames[:len(s.frames)-1]
			if dest != ir.NoReg {
				s.setReady(dest, retReady)
			} else if retReady > s.frame().frameMax {
				s.frame().frameMax = retReady
			}
		}
	case ir.Inval:
		// One memory-port operation; the CRB invalidation proceeds off
		// the critical path.
	default:
		if d := in.Def(); d != ir.NoReg {
			s.setReady(d, issue+lat)
		}
	}

	if s.head < issue {
		s.head = issue
	}
}

func (sf *simFrame) setParam(r ir.Reg, cyc int64) {
	for int(r) >= len(sf.ready) {
		sf.ready = append(sf.ready, make([]int64, len(sf.ready)+16)...)
	}
	sf.ready[r] = cyc
	if cyc > sf.frameMax {
		sf.frameMax = cyc
	}
}

// redirect models a front-end redirect: no instruction issues for the next
// `bubble` cycles after the transfer.
func (s *Simulator) redirect(issue, bubble int64) {
	next := issue + 1 + bubble
	if next > s.head {
		s.head = next
	}
}

// observeReuse models the four reuse pipeline tasks of §3.3: CRB access,
// architectural-state read (interlocked against in-flight writes),
// instance validation, and live-out commit on a hit — or the
// misprediction-like redirect on a failed reuse.
func (s *Simulator) observeReuse(ev *emu.Event, fetch int64) {
	cfg := &s.cfg
	// Read-state interlock (§3.3): the reuse instruction waits for the
	// summary set — the registers any resident instance may compare —
	// which the region table bounds by the static input list. In-flight
	// writes to other registers do not stall the lookup.
	want := fetch
	if rg := s.prog.Region(ev.Instr.Region); rg != nil {
		for _, r := range rg.Inputs {
			if rd := s.ready(r); rd > want {
				want = rd
			}
		}
	}
	if want > fetch {
		s.stats.StallDep += want - fetch
	}
	issue := s.issueAt(want, ir.FUBranch)
	validate := int64(cfg.ReuseValidateCycles)
	if cfg.SpeculativeValidation {
		// Validation proceeds in the shadow of the committed values.
		validate = 0
	}
	access := issue + int64(cfg.ReuseAccessCycles) + validate

	if ev.ReuseHit {
		s.stats.ReuseHits++
		s.stats.ReuseInstrs += int64(ev.ReusedInstrs)
		// Commit the live-out values, ReuseCommitWidth per cycle.
		commitCycles := int64(0)
		if ev.ReuseOut > 0 {
			commitCycles = int64((ev.ReuseOut + cfg.ReuseCommitWidth - 1) / cfg.ReuseCommitWidth)
		}
		done := access + commitCycles
		s.stats.ReuseCycles += done - issue
		if r := s.prog.Region(ev.Instr.Region); r != nil {
			for _, out := range r.Outputs {
				s.setReady(out, done)
			}
		}
		// Control transfers to the continuation like a taken branch.
		s.redirect(done-1, int64(cfg.TakenBubble))
	} else {
		s.stats.ReuseMisses++
		s.stats.MemoizedRuns++
		// Failed reuse: the pipeline is cleared and fetch is redirected
		// to the computation code (§3.3), a mispredict-like delay. A
		// failed value speculation additionally squashes the forwarded
		// results.
		penalty := int64(cfg.ReuseFailPenalty)
		if cfg.SpeculativeValidation {
			penalty++
		}
		s.stats.StallReuse += penalty
		s.redirect(access-1+validateRecovery(cfg), penalty)
	}
	if s.head < issue {
		s.head = issue
	}
}

// validateRecovery is the extra cycle a speculative validation needs to
// confirm before a miss can redirect (the validation it skipped).
func validateRecovery(cfg *Config) int64 {
	if cfg.SpeculativeValidation {
		return int64(cfg.ReuseValidateCycles)
	}
	return 0
}
