package uarch

import (
	"testing"

	"ccr/internal/emu"
	"ccr/internal/ir"
)

func TestCacheDirectMapped(t *testing.T) {
	c := newCache(1024, 32) // 32 lines
	if c.access(0) {
		t.Fatal("cold miss expected")
	}
	if !c.access(0) || !c.access(31) {
		t.Fatal("same line must hit")
	}
	if c.access(32) {
		t.Fatal("next line is cold")
	}
	// Address 1024 maps to line index 0 again and evicts address 0.
	if c.access(1024) {
		t.Fatal("conflicting line is cold")
	}
	if c.access(0) {
		t.Fatal("address 0 should have been evicted")
	}
}

func TestBTBTwoBitCounter(t *testing.T) {
	b := newBTB(16)
	pc, tgt := int64(0x40), int64(0x80)
	if taken, _ := b.predict(pc); taken {
		t.Fatal("unknown branch predicts not-taken")
	}
	b.update(pc, true, tgt) // allocates with counter 2 (weakly taken)
	if taken, gotTgt := b.predict(pc); !taken || gotTgt != tgt {
		t.Fatal("after one taken update, predict taken with target")
	}
	b.update(pc, false, 0) // 2 → 1
	if taken, _ := b.predict(pc); taken {
		t.Fatal("counter should have decayed below threshold")
	}
	b.update(pc, true, tgt) // 1 → 2
	b.update(pc, true, tgt) // 2 → 3 (saturates)
	b.update(pc, true, tgt)
	b.update(pc, false, 0) // 3 → 2: still predicts taken (hysteresis)
	if taken, _ := b.predict(pc); !taken {
		t.Fatal("saturating counter should keep predicting taken")
	}
}

// timeProgram runs prog through the emulator + simulator, returning stats.
func timeProgram(t *testing.T, p *ir.Program, args ...int64) Stats {
	t.Helper()
	m := emu.New(p)
	sim := NewSimulator(DefaultConfig(), p)
	m.Trace = sim.Tracer()
	if _, err := m.Run(args...); err != nil {
		t.Fatalf("run: %v", err)
	}
	return sim.Stats()
}

// TestDependentChainLatency: N dependent adds take ≥ N cycles; N
// independent adds take ≈ N/4 issue cycles (4 integer ALUs).
func TestDependencyVsParallelIssue(t *testing.T) {
	const n = 64
	// Both variants execute the same instruction count (so front-end
	// effects like cold I-cache misses are identical); only the
	// dependence structure differs.
	dep := func() *ir.Program {
		pb := ir.NewProgramBuilder("dep")
		f := pb.Func("main", 1)
		b := f.NewBlock()
		regs := make([]ir.Reg, n)
		for i := range regs {
			regs[i] = f.NewReg()
			b.MovI(regs[i], int64(i))
		}
		r := regs[0]
		for i := 0; i < n; i++ {
			b.AddI(r, r, 1)
		}
		b.Ret(r)
		return pb.Build()
	}()
	indep := func() *ir.Program {
		pb := ir.NewProgramBuilder("indep")
		f := pb.Func("main", 1)
		b := f.NewBlock()
		regs := make([]ir.Reg, n)
		for i := range regs {
			regs[i] = f.NewReg()
			b.MovI(regs[i], int64(i))
		}
		for i := 0; i < n; i++ {
			b.AddI(regs[i], regs[i], 1)
		}
		b.Ret(regs[0])
		return pb.Build()
	}()
	ds := timeProgram(t, dep, 0)
	is := timeProgram(t, indep, 0)
	if ds.Cycles < n {
		t.Fatalf("dependent chain of %d adds took %d cycles", n, ds.Cycles)
	}
	if is.Cycles >= ds.Cycles {
		t.Fatalf("independent adds (%d cycles) should be faster than dependent (%d)",
			is.Cycles, ds.Cycles)
	}
	// 4 ALUs: the 2n independent int ops need at least 2n/4 cycles.
	if is.Cycles < int64(2*n/4) {
		t.Fatalf("independent adds too fast: %d cycles for %d ops", is.Cycles, 2*n)
	}
}

// TestFPUnitContention: Mul issues to the 2 multi-cycle units, so 2·k
// independent multiplies need ≥ k issue slots on those units.
func TestFPUnitContention(t *testing.T) {
	const n = 32
	pb := ir.NewProgramBuilder("mul")
	f := pb.Func("main", 1)
	b := f.NewBlock()
	regs := make([]ir.Reg, n)
	for i := range regs {
		regs[i] = f.NewReg()
		b.MovI(regs[i], int64(i))
	}
	for i := range regs {
		b.MulI(regs[i], regs[i], 3)
	}
	b.Ret(regs[0])
	st := timeProgram(t, pb.Build(), 0)
	if st.Cycles < n/2 {
		t.Fatalf("%d independent muls on 2 units took only %d cycles", n, st.Cycles)
	}
}

// TestBranchMispredictCost: an unpredictable branch pattern costs far more
// than a monotone one.
func TestBranchMispredictCost(t *testing.T) {
	build := func(vals []int64) *ir.Program {
		pb := ir.NewProgramBuilder("br")
		tab := pb.ReadOnlyObject("tab", vals)
		f := pb.Func("main", 0)
		entry := f.NewBlock()
		head := f.NewBlock()
		body := f.NewBlock()
		skip := f.NewBlock()
		latch := f.NewBlock()
		exit := f.NewBlock()
		i, s, base, v := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
		entry.MovI(i, 0)
		entry.MovI(s, 0)
		entry.Lea(base, tab, 0)
		head.BgeI(i, int64(len(vals)), exit.ID())
		body.Add(v, base, i)
		body.Ld(v, v, 0, tab)
		body.BeqI(v, 0, latch.ID())
		skip.AddI(s, s, 1)
		latch.AddI(i, i, 1)
		latch.Jmp(head.ID())
		exit.Ret(s)
		return pb.Build()
	}
	n := 2048
	stable := make([]int64, n) // always 0: perfectly predictable
	alternating := make([]int64, n)
	for i := range alternating {
		// Pseudo-random pattern the 2-bit counters cannot learn.
		alternating[i] = int64((i*1103515245 + 12345) >> 7 & 1)
	}
	ss := timeProgram(t, build(stable))
	as := timeProgram(t, build(alternating))
	if as.Mispredicts <= ss.Mispredicts {
		t.Fatalf("alternating pattern should mispredict more: %d vs %d",
			as.Mispredicts, ss.Mispredicts)
	}
	if as.Cycles <= ss.Cycles {
		t.Fatalf("mispredictions must cost cycles: %d vs %d", as.Cycles, ss.Cycles)
	}
}

// TestDCacheMissCost: striding beyond the cache costs more than re-walking
// one line.
func TestDCacheMissCost(t *testing.T) {
	build := func(words, stride int64) *ir.Program {
		pb := ir.NewProgramBuilder("dc")
		tab := pb.ReadOnlyObject("tab", make([]int64, words))
		f := pb.Func("main", 0)
		entry := f.NewBlock()
		head := f.NewBlock()
		body := f.NewBlock()
		exit := f.NewBlock()
		i, s, base, v, idx := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
		entry.MovI(i, 0)
		entry.MovI(s, 0)
		entry.Lea(base, tab, 0)
		head.BgeI(i, 4096, exit.ID())
		body.MulI(idx, i, stride)
		body.AndI(idx, idx, words-1)
		body.Add(idx, base, idx)
		body.Ld(v, idx, 0, tab)
		body.Add(s, s, v)
		body.AddI(i, i, 1)
		body.Jmp(head.ID())
		exit.Ret(s)
		return pb.Build()
	}
	// 32 KB D-cache = 4096 words; a 64 K-word table at stride 7 misses
	// constantly, a 64-word table never misses after warmup.
	hot := timeProgram(t, build(64, 1))
	cold := timeProgram(t, build(64*1024, 7))
	if cold.DCacheMisses < hot.DCacheMisses+1000 {
		t.Fatalf("expected heavy D-cache misses: hot=%d cold=%d",
			hot.DCacheMisses, cold.DCacheMisses)
	}
	if cold.Cycles <= hot.Cycles {
		t.Fatalf("cache misses must cost cycles: %d vs %d", cold.Cycles, hot.Cycles)
	}
}

func TestIPCBounded(t *testing.T) {
	pb := ir.NewProgramBuilder("ipc")
	f := pb.Func("main", 1)
	b := f.NewBlock()
	r := f.NewReg()
	b.MovI(r, 1)
	b.Ret(r)
	st := timeProgram(t, pb.Build(), 0)
	if ipc := st.IPC(); ipc <= 0 || ipc > 6 {
		t.Fatalf("IPC %f outside (0, 6]", ipc)
	}
}

// TestOutOfOrderHidesLatency: the dynamically scheduled machine overlaps
// a dependent multiply chain across independent loop iterations, beating
// the in-order machine; both remain architecturally identical.
func TestOutOfOrderHidesLatency(t *testing.T) {
	pb := ir.NewProgramBuilder("ooo")
	f := pb.Func("main", 1)
	e := f.NewBlock()
	h := f.NewBlock()
	b := f.NewBlock()
	x := f.NewBlock()
	k, acc, v := f.NewReg(), f.NewReg(), f.NewReg()
	e.MovI(k, 0)
	e.MovI(acc, 0)
	h.Bge(k, f.Param(0), x.ID())
	// A 3-deep multiply chain per iteration, independent across
	// iterations except for the final accumulate.
	b.MulI(v, k, 3)
	b.MulI(v, v, 5)
	b.MulI(v, v, 7)
	b.Add(acc, acc, v)
	b.AddI(k, k, 1)
	b.Jmp(h.ID())
	x.Ret(acc)
	p := ir.MustVerify(pb.Build())

	inorder := timeProgram(t, p, 1024)
	cfg := DefaultConfig()
	cfg.OutOfOrder = true
	cfg.ROBSize = 64
	m := emu.New(p)
	sim := NewSimulator(cfg, p)
	m.Trace = sim.Tracer()
	if _, err := m.Run(1024); err != nil {
		t.Fatal(err)
	}
	ooo := sim.Stats()
	if ooo.Cycles >= inorder.Cycles {
		t.Fatalf("out-of-order (%d) should beat in-order (%d) on independent chains",
			ooo.Cycles, inorder.Cycles)
	}
	if ooo.Instrs != inorder.Instrs {
		t.Fatalf("instruction counts differ: %d vs %d", ooo.Instrs, inorder.Instrs)
	}
}

// TestOutOfOrderROBBound: a tiny reorder buffer throttles the overlap.
func TestOutOfOrderROBBound(t *testing.T) {
	p := buildRepetitiveKernel(t)
	run := func(rob int) int64 {
		cfg := DefaultConfig()
		cfg.OutOfOrder = true
		cfg.ROBSize = rob
		m := emu.New(p)
		sim := NewSimulator(cfg, p)
		m.Trace = sim.Tracer()
		if _, err := m.Run(2048); err != nil {
			t.Fatal(err)
		}
		return sim.Stats().Cycles
	}
	small, big := run(4), run(128)
	if big >= small {
		t.Fatalf("ROB 128 (%d cycles) should beat ROB 4 (%d cycles)", big, small)
	}
}
