package uarch

import (
	"ccr/internal/analysis"
	"ccr/internal/emu"
	"ccr/internal/ir"
)

// This file implements the two hardware-only reuse baselines the paper
// positions CCR against (§2.1):
//
//   - dynamic instruction reuse (Sodani & Sohi): a PC-indexed reuse buffer
//     holds (operands → result) per instruction; a hit bypasses the
//     functional unit, the result is available at issue, and a reused
//     branch resolves without misprediction.
//   - block-level reuse (Huang & Lilja): a block-indexed buffer records a
//     basic block's upward-exposed input values and its definitions; a hit
//     skips the whole block's execution.
//
// Both are pure timing mechanisms here: they never change architectural
// results (they reuse only exact matches), so they hook into the cycle
// model rather than the emulator. Both validate loads with object version
// stamps, the hardware analogue of "the referenced location has not been
// stored to since".

// instrRBEntry is one entry of the instruction reuse buffer.
type instrRBEntry struct {
	pc     int64
	v1, v2 int64
	isLoad bool
	mem    ir.MemID
	ver    uint64
	valid  bool
}

// instrRB is a 4-way set-associative reuse buffer: each set can hold
// several (operand → result) records, possibly for the same static
// instruction, so short operand cycles are still captured (Sodani & Sohi's
// scheme Sv stores one tuple per RB entry but allows several entries per
// instruction).
type instrRB struct {
	entries []instrRBEntry // sets × ways
	sets    int64
	clock   uint64
	used    []uint64
}

const instrRBWays = 4

func newInstrRB(n int) *instrRB {
	if n < instrRBWays {
		n = instrRBWays
	}
	return &instrRB{
		entries: make([]instrRBEntry, n),
		sets:    int64(n / instrRBWays),
		used:    make([]uint64, n),
	}
}

func (rb *instrRB) set(pc int64) (int64, int64) {
	s := (pc >> 2) % rb.sets
	return s * instrRBWays, s*instrRBWays + instrRBWays
}

// lookup reports whether the instruction at pc previously executed with
// the same operands (and, for loads, untouched memory).
func (rb *instrRB) lookup(pc, v1, v2 int64, isLoad bool, mem ir.MemID, ver uint64) bool {
	lo, hi := rb.set(pc)
	rb.clock++
	for i := lo; i < hi; i++ {
		e := &rb.entries[i]
		if !e.valid || e.pc != pc || e.v1 != v1 || e.v2 != v2 {
			continue
		}
		if isLoad && (e.mem != mem || e.ver != ver) {
			continue
		}
		rb.used[i] = rb.clock
		return true
	}
	return false
}

func (rb *instrRB) update(pc, v1, v2 int64, isLoad bool, mem ir.MemID, ver uint64) {
	lo, hi := rb.set(pc)
	rb.clock++
	slot := lo
	var oldest uint64 = ^uint64(0)
	for i := lo; i < hi; i++ {
		if !rb.entries[i].valid {
			slot = i
			break
		}
		if rb.used[i] < oldest {
			oldest = rb.used[i]
			slot = i
		}
	}
	rb.entries[slot] = instrRBEntry{pc: pc, v1: v1, v2: v2, isLoad: isLoad, mem: mem, ver: ver, valid: true}
	rb.used[slot] = rb.clock
}

// blockSig is one recorded execution of a basic block.
type blockSig struct {
	inputs []int64
	vers   []uint64
	valid  bool
	used   uint64
}

// blockRBEntry holds several signatures for one block (the analogue of
// computation instances).
type blockRBEntry struct {
	sigs []blockSig
	// lastUse orders entries for deterministic LRU eviction.
	lastUse uint64
}

// blockInfo is the static description the block-reuse hardware needs.
type blockInfo struct {
	eligible bool     // no stores, calls, returns, CCR ops
	inputs   []ir.Reg // upward-exposed uses
	defs     []ir.Reg // registers defined
	objs     []ir.MemID
	size     int
}

// blockRB is the block-level reuse buffer.
type blockRB struct {
	table     map[int64]*blockRBEntry // keyed by block start PC
	instances int
	capacity  int
	clock     uint64
	info      map[int64]*blockInfo // block start PC → static info
}

func newBlockRB(prog *ir.Program, capacity, instances int) *blockRB {
	b := &blockRB{
		table:     map[int64]*blockRBEntry{},
		instances: instances,
		capacity:  capacity,
		info:      map[int64]*blockInfo{},
	}
	var uses []ir.Reg
	for _, f := range prog.Funcs {
		for _, blk := range f.Blocks {
			if len(blk.Instrs) == 0 {
				continue
			}
			bi := &blockInfo{eligible: true, size: len(blk.Instrs)}
			defs := analysis.NewRegSet(f.NumRegs)
			ups := analysis.NewRegSet(f.NumRegs)
			objSeen := map[ir.MemID]bool{}
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				switch in.Op {
				case ir.St, ir.Call, ir.Ret, ir.Reuse, ir.Inval:
					bi.eligible = false
				case ir.Ld:
					if in.Mem == ir.NoMem {
						bi.eligible = false
					} else if !objSeen[in.Mem] {
						objSeen[in.Mem] = true
						bi.objs = append(bi.objs, in.Mem)
					}
				}
				uses = in.Uses(uses[:0])
				for _, r := range uses {
					if !defs.Has(r) {
						ups.Add(r)
					}
				}
				if d := in.Def(); d != ir.NoReg {
					defs.Add(d)
				}
			}
			bi.inputs = ups.Members()
			bi.defs = defs.Members()
			b.info[f.InstrAddr(blk.ID, 0)] = bi
		}
	}
	return b
}

// lookup checks whether the block starting at pc can be reused with the
// current register file and object versions. It returns the static info
// for timing on a hit.
func (b *blockRB) lookup(pc int64, regs []int64, objVer []uint64) (*blockInfo, bool) {
	bi := b.info[pc]
	if bi == nil || !bi.eligible {
		return bi, false
	}
	e := b.table[pc]
	if e == nil {
		return bi, false
	}
	b.clock++
	e.lastUse = b.clock
	for i := range e.sigs {
		s := &e.sigs[i]
		if !s.valid {
			continue
		}
		ok := true
		for j, r := range bi.inputs {
			if regs[r] != s.inputs[j] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for j, o := range bi.objs {
			if objVer[o] != s.vers[j] {
				ok = false
				break
			}
		}
		if ok {
			s.used = b.clock
			return bi, true
		}
	}
	return bi, false
}

// record stores the block's current input signature.
func (b *blockRB) record(pc int64, regs []int64, objVer []uint64) {
	bi := b.info[pc]
	if bi == nil || !bi.eligible {
		return
	}
	e := b.table[pc]
	if e == nil {
		if len(b.table) >= b.capacity {
			// Evict the least-recently-used resident block, breaking
			// ties by lowest PC, so runs are reproducible (map
			// iteration order is not).
			var victim int64
			var oldest uint64 = ^uint64(0)
			for k, v := range b.table {
				if v.lastUse < oldest || (v.lastUse == oldest && k < victim) {
					oldest = v.lastUse
					victim = k
				}
			}
			delete(b.table, victim)
		}
		e = &blockRBEntry{sigs: make([]blockSig, b.instances)}
		b.table[pc] = e
	}
	b.clock++
	e.lastUse = b.clock
	slot := 0
	var oldest uint64 = ^uint64(0)
	for i := range e.sigs {
		if !e.sigs[i].valid {
			slot = i
			break
		}
		if e.sigs[i].used < oldest {
			oldest = e.sigs[i].used
			slot = i
		}
	}
	sig := &e.sigs[slot]
	sig.valid = true
	sig.used = b.clock
	sig.inputs = sig.inputs[:0]
	for _, r := range bi.inputs {
		sig.inputs = append(sig.inputs, regs[r])
	}
	sig.vers = sig.vers[:0]
	for _, o := range bi.objs {
		sig.vers = append(sig.vers, objVer[o])
	}
}

// observeInstrReuse implements the instruction-reuse timing shortcut.
// It returns true when the event was fully handled (reused).
func (s *Simulator) observeInstrReuse(ev *emu.Event, fetch int64) bool {
	in := ev.Instr
	switch in.Op {
	case ir.St, ir.Call, ir.Ret, ir.Jmp, ir.Nop, ir.Reuse, ir.Inval:
		return false // not reuse candidates
	}
	isLoad := in.Op == ir.Ld
	var ver uint64
	mem := in.Mem
	if isLoad {
		if mem == ir.NoMem {
			return false
		}
		ver = s.objVer[mem]
	}
	v1, v2 := ev.Val1, ev.Val2
	if !s.irb.lookup(ev.PC, v1, v2, isLoad, mem, ver) {
		s.irb.update(ev.PC, v1, v2, isLoad, mem, ver)
		return false
	}
	s.stats.InstrReuseHits++
	// The instruction still occupies an issue slot (dispatch detects the
	// reuse), but needs no functional unit, its result is ready
	// immediately, and a reused branch resolves without misprediction.
	issue := s.issueAt(fetch, ir.FUNone)
	if in.Op.IsCondBranch() {
		s.btb.update(ev.PC, ev.Taken, ev.TargetPC)
		if ev.Taken {
			s.redirect(issue, int64(s.cfg.TakenBubble))
		}
	} else if d := in.Def(); d != ir.NoReg {
		s.setReady(d, issue)
	}
	if s.head < issue {
		s.head = issue
	}
	return true
}

// blockSkip tracks an in-flight block-reuse skip.
type blockSkip struct {
	active bool
	pc     int64 // start PC of the reused block
	endPC  int64 // PC of the last instruction of the block
}

// observeBlockReuse implements the block-reuse timing shortcut; returns
// true when the event belongs to a reused block and was handled.
func (s *Simulator) observeBlockReuse(ev *emu.Event, fetch int64) bool {
	if s.bskip.active {
		// Skipping the remainder of a reused block.
		if ev.PC <= s.bskip.endPC && ev.PC >= s.bskip.pc {
			return true
		}
		s.bskip.active = false
	}
	if ev.Index != 0 {
		return false
	}
	bi, hit := s.brb.lookup(ev.PC, ev.Regs, s.objVer)
	if bi == nil || !bi.eligible {
		return false
	}
	if !hit {
		s.brb.record(ev.PC, ev.Regs, s.objVer)
		return false
	}
	s.stats.BlockReuseHits++
	s.stats.BlockReuseInstrs += int64(bi.size)
	// Access + validate, then commit the block's definitions.
	issue := s.issueAt(fetch, ir.FUBranch)
	done := issue + 2 + int64((len(bi.defs)+s.cfg.ReuseCommitWidth-1)/s.cfg.ReuseCommitWidth)
	for _, d := range bi.defs {
		s.setReady(d, done)
	}
	s.redirect(done-1, int64(s.cfg.TakenBubble))
	if bi.size > 1 {
		s.bskip = blockSkip{active: true, pc: ev.PC, endPC: ev.PC + int64(bi.size-1)*4}
	}
	return true
}
