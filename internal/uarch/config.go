// Package uarch is the cycle-level timing model of the evaluation machine
// (paper §5.1): an in-order 6-issue processor with four integer ALUs, two
// memory ports, two multi-cycle (FP/multiplier) units and one branch unit;
// HP PA-7100 instruction latencies; split 32 KB direct-mapped instruction
// and data caches with 32-byte lines and a 12-cycle miss penalty; a 4K-entry
// BTB with 2-bit saturating counters and an 8-cycle misprediction penalty.
// Failed computation reuse costs a delay equal to the misprediction penalty.
//
// The simulator consumes the functional emulator's dynamic instruction
// stream (emulation-driven timing simulation), so architectural semantics
// live in one place.
package uarch

// Config selects the machine parameters. DefaultConfig reproduces §5.1.
type Config struct {
	IssueWidth  int
	IntALUs     int
	MemPorts    int
	FPUnits     int
	BranchUnits int

	// ICacheBytes/DCacheBytes with LineBytes define the two direct-mapped
	// caches; MissPenalty is charged per miss.
	ICacheBytes int
	DCacheBytes int
	LineBytes   int
	MissPenalty int

	// BTBEntries is the branch-target-buffer size (2-bit counters).
	BTBEntries int
	// MispredictPenalty is the branch misprediction bubble.
	MispredictPenalty int
	// TakenBubble is the fetch-redirect bubble for correctly predicted
	// taken branches and unconditional transfers.
	TakenBubble int

	// ReuseAccessCycles is the CRB access latency; ReuseValidateCycles is
	// the instance-validation latency (§3.3 pipeline tasks).
	ReuseAccessCycles   int
	ReuseValidateCycles int
	// ReuseFailPenalty is charged when a reuse instruction finds no
	// matching instance and execution is redirected to the region body.
	ReuseFailPenalty int
	// ReuseCommitWidth is how many live-out register results the reuse
	// hardware can retire per cycle (the paper notes the update can run
	// at a higher degree of parallelism than the original code).
	ReuseCommitWidth int
	// SpeculativeValidation models the §6 future-work idea of using
	// value-speculation techniques to hide the latency of validating
	// reuse opportunities: on a hit, the live-out values are forwarded
	// at CRB-access time and validation completes off the critical path.
	// A failed speculation (a miss) pays one extra recovery cycle on top
	// of the normal reuse-failure redirect.
	SpeculativeValidation bool

	// InstrReuse enables the dynamic instruction-reuse baseline
	// (Sodani & Sohi, §2.1): a PC-indexed buffer of InstrRBEntries
	// entries reuses individual instruction results. Runs on the base
	// program; mutually exclusive with CCR in meaningful comparisons.
	InstrReuse     bool
	InstrRBEntries int
	// BlockReuse enables the block-level reuse baseline (Huang & Lilja,
	// §2.1): up to BlockRBEntries basic blocks × BlockRBInstances
	// recorded executions each.
	BlockReuse       bool
	BlockRBEntries   int
	BlockRBInstances int

	// OutOfOrder switches the timing model to a dynamically scheduled
	// machine (idealized scheduling window bounded by ROBSize, in-order
	// fetch and retirement, same functional units and caches). §3.3
	// notes the CCR mechanism applies to such machines; this model
	// measures how much reuse benefit survives when the scheduler can
	// already hide latency.
	OutOfOrder bool
	ROBSize    int
}

// DefaultConfig returns the paper's base machine.
func DefaultConfig() Config {
	return Config{
		IssueWidth:  6,
		IntALUs:     4,
		MemPorts:    2,
		FPUnits:     2,
		BranchUnits: 1,

		ICacheBytes: 32 << 10,
		DCacheBytes: 32 << 10,
		LineBytes:   32,
		MissPenalty: 12,

		BTBEntries:        4096,
		MispredictPenalty: 8,
		TakenBubble:       1,

		ReuseAccessCycles:   1,
		ReuseValidateCycles: 1,
		ReuseFailPenalty:    8,
		ReuseCommitWidth:    6,
	}
}

// Stats aggregates timing-simulation counters.
type Stats struct {
	Cycles       int64
	Instrs       int64
	ICacheMisses int64
	DCacheMisses int64
	DCacheAccess int64

	CondBranches int64
	Mispredicts  int64

	ReuseHits   int64
	ReuseMisses int64
	ReuseInstrs int64 // dynamic instructions eliminated by reuse
	ReuseCycles int64 // cycles spent in reuse access/validate/commit
	// Baseline counters.
	InstrReuseHits   int64
	BlockReuseHits   int64
	BlockReuseInstrs int64
	StallFU          int64 // cycles lost waiting for an issue slot or unit
	StallDep         int64 // cycles lost waiting on operand dependences
	StallICache      int64
	StallDCache      int64
	StallBranch      int64 // misprediction + redirect bubbles
	StallReuse       int64 // reuse-failure redirect penalty
	MemoizedRuns     int64
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}
